// Tests for the nn substrate. The load-bearing tests are finite-difference
// gradient checks: they validate every layer's backward pass and, by
// extension, the flat gradient vector the whole sparsification stack consumes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/maxpool.h"
#include "nn/models.h"
#include "nn/relu.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedsparse::nn {
namespace {

Matrix random_batch(std::size_t batch, std::size_t features, util::Rng& rng, double scale = 1.0) {
  Matrix x(batch, features);
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal(0.0, scale));
  return x;
}

std::vector<int> random_labels(std::size_t batch, std::size_t classes, util::Rng& rng) {
  std::vector<int> y(batch);
  for (auto& v : y) v = static_cast<int>(rng.uniform_u64(classes));
  return y;
}

// Central-difference check of d(loss)/d(weights) against the analytic grad.
// Checks a subsample of coordinates to keep runtime reasonable.
void check_weight_gradients(Sequential& model, const Matrix& x, const std::vector<int>& y,
                            double tol, std::size_t max_coords = 60) {
  model.zero_grad();
  model.forward_loss_grad(x, y);
  std::vector<float> analytic(model.grad().begin(), model.grad().end());

  auto w = model.weights();
  util::Rng pick(12345);
  const std::size_t d = w.size();
  const std::size_t n_checks = std::min(max_coords, d);
  const float eps = 1e-3f;
  for (std::size_t c = 0; c < n_checks; ++c) {
    const std::size_t j = n_checks == d ? c : pick.uniform_u64(d);
    const float saved = w[j];
    w[j] = saved + eps;
    const double lp = model.forward_loss(x, y);
    w[j] = saved - eps;
    const double lm = model.forward_loss(x, y);
    w[j] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[j], numeric, tol) << "coordinate " << j;
  }
}

// Gradient w.r.t. the *input*, via Sequential with a single layer.
void check_input_gradients(Sequential& model, Matrix x, const std::vector<int>& y, double tol) {
  model.zero_grad();
  // Analytic input grad: run forward/backward manually through predict-like
  // path is not exposed; instead perturb inputs and compare to loss change
  // predicted by a full-batch re-evaluation (weak but layer-independent).
  const double base = model.forward_loss(x, y);
  (void)base;
  // Directional derivative check: random direction v, compare
  // (L(x+εv) − L(x−εv)) / 2ε against itself at two ε values (Richardson):
  util::Rng rng(77);
  Matrix v(x.rows(), x.cols());
  for (auto& e : v.flat()) e = static_cast<float>(rng.normal());
  auto eval_at = [&](float eps) {
    Matrix xp = x;
    for (std::size_t i = 0; i < xp.size(); ++i) xp.data()[i] += eps * v.data()[i];
    return model.forward_loss(xp, y);
  };
  const double d1 = (eval_at(1e-3f) - eval_at(-1e-3f)) / 2e-3;
  const double d2 = (eval_at(5e-4f) - eval_at(-5e-4f)) / 1e-3;
  EXPECT_NEAR(d1, d2, tol);  // consistency across step sizes => smoothness
}

// ----------------------------------------------------------- loss ----------

TEST(SoftmaxCrossEntropy, MatchesHandComputedValue) {
  Matrix logits(1, 3);
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(0, 2) = 3.0f;
  const std::vector<int> y{2};
  const double lse = std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  EXPECT_NEAR(SoftmaxCrossEntropy::loss_only(logits, y), lse - 3.0, 1e-9);
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOnehot) {
  Matrix logits(2, 3);
  util::Rng rng(1);
  for (auto& v : logits.flat()) v = static_cast<float>(rng.normal());
  const std::vector<int> y{0, 2};
  Matrix dlogits;
  SoftmaxCrossEntropy::loss_and_grad(logits, y, dlogits);
  Matrix sm = logits;
  SoftmaxCrossEntropy::softmax_rows(sm);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      const double expected = (sm.at(r, c) - (static_cast<int>(c) == y[r] ? 1.0 : 0.0)) / 2.0;
      EXPECT_NEAR(dlogits.at(r, c), expected, 1e-6);
    }
  }
}

TEST(SoftmaxCrossEntropy, NumericallyStableForHugeLogits) {
  Matrix logits(1, 2);
  logits.at(0, 0) = 1000.0f;
  logits.at(0, 1) = -1000.0f;
  const std::vector<int> y{0};
  const double loss = SoftmaxCrossEntropy::loss_only(logits, y);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  Matrix logits(1, 3);
  EXPECT_THROW(SoftmaxCrossEntropy::loss_only(logits, std::vector<int>{5}),
               std::invalid_argument);
  EXPECT_THROW(SoftmaxCrossEntropy::loss_only(logits, std::vector<int>{-1}),
               std::invalid_argument);
  EXPECT_THROW(SoftmaxCrossEntropy::loss_only(logits, std::vector<int>{0, 0}),
               std::invalid_argument);
}

// -------------------------------------------------- gradient checks --------

TEST(GradientCheck, LinearLayer) {
  util::Rng rng(2);
  Sequential model(8);
  model.add(std::make_unique<Linear>(8, 5));
  model.finalize(rng);
  const Matrix x = random_batch(4, 8, rng);
  check_weight_gradients(model, x, random_labels(4, 5, rng), 2e-3, model.dim());
}

TEST(GradientCheck, MlpTwoHidden) {
  util::Rng rng(3);
  auto model = mlp(10, {16, 12}, 4)(rng);
  const Matrix x = random_batch(6, 10, rng);
  check_weight_gradients(*model, x, random_labels(6, 4, rng), 2e-3);
}

TEST(GradientCheck, ConvLayer) {
  util::Rng rng(4);
  Sequential model(1 * 6 * 6);
  model.add(std::make_unique<Conv2d>(1, 6, 6, 3, 3, 1, 1));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(3 * 6 * 6, 4));
  model.finalize(rng);
  const Matrix x = random_batch(3, 36, rng);
  check_weight_gradients(model, x, random_labels(3, 4, rng), 3e-3);
}

TEST(GradientCheck, ConvWithStrideAndNoPad) {
  util::Rng rng(5);
  Sequential model(2 * 7 * 7);
  model.add(std::make_unique<Conv2d>(2, 7, 7, 4, 3, 2, 0));  // out 3x3
  model.add(std::make_unique<Linear>(4 * 3 * 3, 3));
  model.finalize(rng);
  const Matrix x = random_batch(2, 2 * 49, rng);
  check_weight_gradients(model, x, random_labels(2, 3, rng), 3e-3);
}

TEST(GradientCheck, MaxPoolPath) {
  util::Rng rng(6);
  Sequential model(1 * 8 * 8);
  model.add(std::make_unique<Conv2d>(1, 8, 8, 2, 3, 1, 1));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>(2, 8, 8, 2));
  model.add(std::make_unique<Linear>(2 * 4 * 4, 3));
  model.finalize(rng);
  const Matrix x = random_batch(3, 64, rng);
  check_weight_gradients(model, x, random_labels(3, 3, rng), 3e-3);
}

TEST(GradientCheck, FullCnnTiny) {
  util::Rng rng(7);
  auto model = cnn(1, 8, 8, 2, 3, 8, 4)(rng);
  const Matrix x = random_batch(2, 64, rng);
  check_weight_gradients(*model, x, random_labels(2, 4, rng), 4e-3);
}

TEST(GradientCheck, InputSmoothness) {
  util::Rng rng(8);
  auto model = mlp(6, {8}, 3)(rng);
  const Matrix x = random_batch(4, 6, rng);
  check_input_gradients(*model, x, random_labels(4, 3, rng), 1e-3);
}

// ------------------------------------- GEMM-routed layer equivalence -------
//
// The layers now run their math through the tiled gemm_nt/gemm_tn/gemm_nn
// kernels; these tests pin them against the seed scalar loops (per-row dot
// products / per-channel column sweeps) at atol 1e-4 — the kernels only
// differ in float summation order.

TEST(LinearLayer, GemmPathMatchesScalarReference) {
  util::Rng rng(41);
  const std::size_t batch = 7, in = 33, out = 9;
  Linear layer(in, out);
  std::vector<float> weights(layer.param_count()), grads(layer.param_count(), 0.0f);
  layer.bind({weights.data(), weights.size()}, {grads.data(), grads.size()});
  layer.init_params(rng);
  const Matrix x = random_batch(batch, in, rng);
  Matrix dy = random_batch(batch, out, rng);

  Matrix y, dx;
  layer.forward(x, y);
  layer.backward(dy, dx);

  // Scalar reference: y = xWᵀ + b; dW += dyᵀx; db += colsum dy; dx = dyW.
  const float* w = weights.data();
  const float* b = weights.data() + in * out;
  std::vector<float> gw_ref(in * out, 0.0f), gb_ref(out, 0.0f);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t o = 0; o < out; ++o) {
      double acc = b[o];
      for (std::size_t i = 0; i < in; ++i) acc += double(x.at(r, i)) * w[o * in + i];
      EXPECT_NEAR(y.at(r, o), acc, 1e-4) << "y(" << r << "," << o << ")";
      const float d = dy.at(r, o);
      gb_ref[o] += d;
      for (std::size_t i = 0; i < in; ++i) gw_ref[o * in + i] += d * x.at(r, i);
    }
    for (std::size_t i = 0; i < in; ++i) {
      double acc = 0.0;
      for (std::size_t o = 0; o < out; ++o) acc += double(dy.at(r, o)) * w[o * in + i];
      EXPECT_NEAR(dx.at(r, i), acc, 1e-4) << "dx(" << r << "," << i << ")";
    }
  }
  for (std::size_t j = 0; j < in * out; ++j) EXPECT_NEAR(grads[j], gw_ref[j], 1e-4) << "gw " << j;
  for (std::size_t o = 0; o < out; ++o) EXPECT_NEAR(grads[in * out + o], gb_ref[o], 1e-4);
}

TEST(Conv2dLayer, GemmPathMatchesDirectConvolution) {
  util::Rng rng(43);
  const std::size_t ch = 2, h = 9, wd = 9, out_ch = 3, ks = 3, stride = 1, pad = 1;
  const std::size_t batch = 3;
  Conv2d layer(ch, h, wd, out_ch, ks, stride, pad);
  std::vector<float> weights(layer.param_count()), grads(layer.param_count(), 0.0f);
  layer.bind({weights.data(), weights.size()}, {grads.data(), grads.size()});
  layer.init_params(rng);
  const auto& g = layer.geometry();
  const std::size_t oh = g.out_height(), ow = g.out_width();
  const Matrix x = random_batch(batch, ch * h * wd, rng);
  Matrix y;
  layer.forward(x, y);

  // Direct (non-im2col, non-GEMM) convolution as the ground truth.
  const float* w = weights.data();
  const float* bias = weights.data() + out_ch * g.col_rows();
  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t o = 0; o < out_ch; ++o) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          double acc = bias[o];
          for (std::size_t c = 0; c < ch; ++c) {
            for (std::size_t ky = 0; ky < ks; ++ky) {
              for (std::size_t kx = 0; kx < ks; ++kx) {
                const long iy = long(oy * stride + ky) - long(pad);
                const long ix = long(ox * stride + kx) - long(pad);
                if (iy < 0 || iy >= long(h) || ix < 0 || ix >= long(wd)) continue;
                acc += double(x.at(s, (c * h + std::size_t(iy)) * wd + std::size_t(ix))) *
                       w[((o * ch + c) * ks + ky) * ks + kx];
              }
            }
          }
          EXPECT_NEAR(y.at(s, (o * oh + oy) * ow + ox), acc, 1e-4)
              << "sample " << s << " chan " << o << " at (" << oy << "," << ox << ")";
        }
      }
    }
  }
}

TEST(Conv2dLayer, InferenceForwardSkipsColumnCacheButMatchesTraining) {
  // set_grad_enabled(false) must produce identical outputs while refusing a
  // subsequent multi-sample backward (no per-sample columns were kept).
  util::Rng rng(44);
  const std::size_t batch = 4;
  Conv2d layer(1, 6, 6, 2, 3);
  std::vector<float> weights(layer.param_count()), grads(layer.param_count(), 0.0f);
  layer.bind({weights.data(), weights.size()}, {grads.data(), grads.size()});
  layer.init_params(rng);
  const Matrix x = random_batch(batch, 36, rng);
  Matrix y_train, y_eval;
  layer.forward(x, y_train);
  layer.set_grad_enabled(false);
  layer.forward(x, y_eval);
  for (std::size_t i = 0; i < y_train.size(); ++i) {
    EXPECT_EQ(y_train.data()[i], y_eval.data()[i]) << "flat " << i;
  }
  Matrix dy(batch, y_train.cols(), 1.0f), dx;
  EXPECT_THROW(layer.backward(dy, dx), std::logic_error);
  layer.set_grad_enabled(true);
  layer.forward(x, y_train);
  EXPECT_NO_THROW(layer.backward(dy, dx));
}

TEST(LinearLayer, InferenceForwardSkipsInputCache) {
  util::Rng rng(45);
  Linear layer(5, 3);
  std::vector<float> weights(layer.param_count()), grads(layer.param_count(), 0.0f);
  layer.bind({weights.data(), weights.size()}, {grads.data(), grads.size()});
  layer.init_params(rng);
  const Matrix x = random_batch(2, 5, rng);
  Matrix y;
  layer.set_grad_enabled(false);
  layer.forward(x, y);
  Matrix dy(2, 3, 1.0f), dx;
  EXPECT_THROW(layer.backward(dy, dx), std::logic_error);
  layer.set_grad_enabled(true);
  layer.forward(x, y);
  EXPECT_NO_THROW(layer.backward(dy, dx));
}

TEST(ReLULayer, ForwardBackwardMask) {
  ReLU relu;
  Matrix x(1, 4);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 2.0f;
  x.at(0, 2) = 0.0f;
  x.at(0, 3) = 3.0f;
  Matrix y;
  relu.forward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 0.0f);
  Matrix dy(1, 4, 1.0f), dx;
  relu.backward(dy, dx);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 0.0f);  // subgradient 0 at exactly 0
}

TEST(MaxPoolLayer, SelectsMaxAndRoutesGradient) {
  MaxPool2d pool(1, 4, 4, 2);
  Matrix x(1, 16);
  for (std::size_t i = 0; i < 16; ++i) x.data()[i] = static_cast<float>(i);
  Matrix y;
  pool.forward(x, y);
  ASSERT_EQ(y.cols(), 4u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.0f);   // max of {0,1,4,5}
  EXPECT_FLOAT_EQ(y.at(0, 3), 15.0f);  // max of {10,11,14,15}
  Matrix dy(1, 4, 1.0f), dx;
  pool.backward(dy, dx);
  EXPECT_FLOAT_EQ(dx.data()[5], 1.0f);
  EXPECT_FLOAT_EQ(dx.data()[0], 0.0f);
}

TEST(MaxPoolLayer, RejectsNonDivisibleWindow) {
  EXPECT_THROW(MaxPool2d(1, 5, 4, 2), std::invalid_argument);
}

TEST(LinearLayer, ValidatesInputDim) {
  util::Rng rng(9);
  Sequential model(4);
  model.add(std::make_unique<Linear>(5, 2));  // mismatched on purpose
  EXPECT_THROW(model.finalize(rng), std::invalid_argument);
}

// -------------------------------------------------------- sequential -------

TEST(Sequential, FlatParameterLayoutIsStable) {
  util::Rng rng(10);
  auto model = mlp(4, {3}, 2)(rng);
  EXPECT_EQ(model->dim(), 4u * 3 + 3 + 3 * 2 + 2);
  const float* before = model->weights().data();
  Matrix x = random_batch(2, 4, rng);
  model->zero_grad();
  model->forward_loss_grad(x, random_labels(2, 2, rng));
  EXPECT_EQ(model->weights().data(), before);  // storage never moves
}

TEST(Sequential, SetWeightsRoundTrip) {
  util::Rng rng(11);
  auto a = mlp(4, {5}, 3)(rng);
  auto b = mlp(4, {5}, 3)(rng);
  b->set_weights(a->weights());
  const Matrix x = random_batch(3, 4, rng);
  const auto y = random_labels(3, 3, rng);
  EXPECT_DOUBLE_EQ(a->forward_loss(x, y), b->forward_loss(x, y));
  std::vector<float> wrong(3, 0.0f);
  EXPECT_THROW(b->set_weights({wrong.data(), wrong.size()}), std::invalid_argument);
}

TEST(Sequential, SgdStepDecreasesLossOnAverage) {
  util::Rng rng(12);
  auto model = mlp(6, {8}, 3)(rng);
  const Matrix x = random_batch(16, 6, rng);
  const auto y = random_labels(16, 3, rng);
  const double before = model->forward_loss(x, y);
  for (int i = 0; i < 20; ++i) {
    model->zero_grad();
    model->forward_loss_grad(x, y);
    model->sgd_step(0.1f);
  }
  EXPECT_LT(model->forward_loss(x, y), before);
}

TEST(Sequential, AccuracyComputation) {
  util::Rng rng(13);
  Sequential model(2);
  model.add(std::make_unique<Linear>(2, 2));
  model.finalize(rng);
  // Force weights: class = argmax(x) by identity weights.
  auto w = model.weights();
  w[0] = 1.0f;
  w[1] = 0.0f;
  w[2] = 0.0f;
  w[3] = 1.0f;
  w[4] = 0.0f;
  w[5] = 0.0f;
  Matrix x(2, 2);
  x.at(0, 0) = 3.0f;
  x.at(0, 1) = 1.0f;
  x.at(1, 0) = 0.0f;
  x.at(1, 1) = 2.0f;
  EXPECT_DOUBLE_EQ(model.accuracy(x, std::vector<int>{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(model.accuracy(x, std::vector<int>{1, 0}), 0.0);
}

TEST(Sequential, LifecycleErrors) {
  util::Rng rng(14);
  Sequential model(3);
  EXPECT_THROW(model.finalize(rng), std::logic_error);  // no layers
  model.add(std::make_unique<Linear>(3, 2));
  Matrix x(1, 3);
  EXPECT_THROW(model.forward_loss(x, std::vector<int>{0}), std::logic_error);  // not finalized
  model.finalize(rng);
  EXPECT_THROW(model.add(std::make_unique<ReLU>()), std::logic_error);
  EXPECT_THROW(model.finalize(rng), std::logic_error);
  Matrix wrong(1, 5);
  EXPECT_THROW(model.forward_loss(wrong, std::vector<int>{0}), std::invalid_argument);
}

// ------------------------------------------------------------ models -------

TEST(Models, FactoriesProduceExpectedGeometry) {
  util::Rng rng(15);
  auto femnist = cnn_femnist(1.0)(rng);
  EXPECT_EQ(femnist->in_features(), 28u * 28);
  EXPECT_EQ(femnist->num_classes(), 62u);
  EXPECT_GT(femnist->dim(), 400000u);  // the paper's D > 400,000

  auto cifar = cnn_cifar(0.25)(rng);
  EXPECT_EQ(cifar->in_features(), 3u * 32 * 32);
  EXPECT_EQ(cifar->num_classes(), 10u);

  auto lg = logistic(10, 3)(rng);
  EXPECT_EQ(lg->dim(), 33u);
}

TEST(Models, MakeModelDispatchesAndValidates) {
  util::Rng rng(16);
  EXPECT_EQ(make_model("mlp", 1, 4, 4, 5, 8)(rng)->num_classes(), 5u);
  EXPECT_EQ(make_model("logistic", 1, 4, 4, 5)(rng)->dim(), 16u * 5 + 5);
  EXPECT_THROW(make_model("transformer", 1, 4, 4, 5), std::invalid_argument);
  EXPECT_THROW(cnn_femnist(0.0), std::invalid_argument);
  EXPECT_THROW(cnn_femnist(1.5), std::invalid_argument);
}

TEST(Models, SameSeedSameInit) {
  util::Rng a(17), b(17);
  auto m1 = mlp(5, {4}, 3)(a);
  auto m2 = mlp(5, {4}, 3)(b);
  for (std::size_t i = 0; i < m1->dim(); ++i) {
    EXPECT_FLOAT_EQ(m1->weights()[i], m2->weights()[i]);
  }
}

// ------------------------------------------------- external weight binding --

TEST(Sequential, BindWeightsRebindsTheWholeParameterChain) {
  // Two models, same init; one is rebound to an external copy of the other's
  // weights. Every forward/backward result must be bitwise identical — the
  // contract the shared-replica round engine relies on.
  util::Rng a(21), b(21);
  auto owned = mlp(6, {5}, 3)(a);
  auto bound = mlp(6, {5}, 3)(b);
  std::vector<float> store(owned->weights().begin(), owned->weights().end());
  bound->bind_weights({store.data(), store.size()});
  EXPECT_TRUE(bound->weights_bound_externally());
  EXPECT_FALSE(owned->weights_bound_externally());
  EXPECT_EQ(bound->weights().data(), store.data());

  util::Rng data_rng(22);
  Matrix x(4, 6);
  for (auto& v : x.flat()) v = static_cast<float>(data_rng.normal());
  std::vector<int> y{0, 1, 2, 1};
  owned->zero_grad();
  bound->zero_grad();
  const double l1 = owned->forward_loss_grad(x, y);
  const double l2 = bound->forward_loss_grad(x, y);
  EXPECT_EQ(l1, l2);
  for (std::size_t i = 0; i < owned->dim(); ++i) {
    EXPECT_EQ(owned->grad()[i], bound->grad()[i]) << "grad " << i;
  }
  // sgd_step writes through to the external store, not a private copy.
  bound->sgd_step(0.1f);
  bool moved = false;
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (store[i] != owned->weights()[i]) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Sequential, BindWeightsValidatesAndRebindsCheaply) {
  util::Rng rng(23);
  auto model = mlp(4, {3}, 2)(rng);
  std::vector<float> small(model->dim() - 1, 0.0f);
  EXPECT_THROW(model->bind_weights({small.data(), small.size()}), std::invalid_argument);
  // Rebinding between two stores (the per-client path) keeps working.
  std::vector<float> s1(model->dim(), 0.5f), s2(model->dim(), -0.25f);
  model->bind_weights({s1.data(), s1.size()});
  EXPECT_EQ(model->weights().data(), s1.data());
  model->bind_weights({s2.data(), s2.size()});
  EXPECT_EQ(model->weights().data(), s2.data());
  model->bind_weights({s2.data(), s2.size()});  // idempotent
  EXPECT_EQ(model->weights().data(), s2.data());
  Sequential unfinalized(4);
  std::vector<float> any(1, 0.0f);
  EXPECT_THROW(unfinalized.bind_weights({any.data(), any.size()}), std::logic_error);
}

}  // namespace
}  // namespace fedsparse::nn
