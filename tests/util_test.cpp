// Unit tests for the util substrate: RNG, stats, CSV, thread pool, flags.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace fedsparse::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = parent.split(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next_u64() == c2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
  EXPECT_EQ(rng.uniform_u64(0), 0u);
  EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_u64(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 10 * 0.15);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.add(rng.normal());
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.variance(), 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(29);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.01);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a, b, all;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 1.5);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(3.9), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
}

TEST(EmpiricalCdf, Quantile) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
}

TEST(EmpiricalCdf, StepsDeduplicate) {
  EmpiricalCdf cdf({1.0, 1.0, 2.0});
  const auto steps = cdf.steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].first, 1.0);
  EXPECT_NEAR(steps[0].second, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(steps[1].second, 1.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
}

TEST(Csv, FormatsRoundTrip) {
  EXPECT_EQ(CsvWriter::format(1.0), "1");
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
  const double v = 0.1234567891;
  EXPECT_NEAR(std::stod(CsvWriter::format(v)), v, 1e-10);
}

TEST(Csv, WritesFile) {
  const std::string path = "/tmp/fedsparse_csv_test/out.csv";
  {
    CsvWriter w(path, /*echo_stdout=*/false);
    w.header({"a", "b"});
    w.row({1.0, 2.5});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::filesystem::remove_all("/tmp/fedsparse_csv_test");
}

TEST(Csv, QuoteEscapesPerRfc4180) {
  // Plain cells pass through verbatim.
  EXPECT_EQ(CsvWriter::quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::quote(""), "");
  EXPECT_EQ(CsvWriter::quote("spaces are fine"), "spaces are fine");
  // Commas, quotes, CR and LF force quoting; embedded quotes are doubled.
  EXPECT_EQ(CsvWriter::quote("fab,topk"), "\"fab,topk\"");
  EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::quote("cr\rcell"), "\"cr\rcell\"");
  EXPECT_EQ(CsvWriter::quote("\""), "\"\"\"\"");
}

TEST(Csv, RowTextQuotesCellsWithCommas) {
  // A method name containing a comma must not corrupt the column structure.
  const std::string path = "/tmp/fedsparse_csv_quote_test/out.csv";
  {
    CsvWriter w(path, /*echo_stdout=*/false);
    w.header({"method", "note"});
    w.row_text({"topk,adaptive", "said \"go\""});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "method,note");
  std::getline(in, line);
  EXPECT_EQ(line, "\"topk,adaptive\",\"said \"\"go\"\"\"");
  std::filesystem::remove_all("/tmp/fedsparse_csv_quote_test");
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [&](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, ExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, AutoGrainCoversLargeRange) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<unsigned char> hits(n, 0);
  // Chunks are disjoint, so each index is written by exactly one thread and
  // plain bytes are race-free.
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, RangesPartitionExactly) {
  ThreadPool pool(3);
  const std::size_t n = 10000;
  std::vector<unsigned char> hits(n, 0);
  std::atomic<int> chunks{0};
  pool.parallel_for_ranges(
      n,
      [&](std::size_t begin, std::size_t end) {
        EXPECT_LT(begin, end);
        EXPECT_LE(end, n);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
        chunks.fetch_add(1);
      },
      /*grain=*/97);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
  EXPECT_EQ(chunks.load(), static_cast<int>((n + 96) / 97));
}

TEST(ThreadPool, RangesPropagateExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_ranges(
                   1000,
                   [&](std::size_t begin, std::size_t) {
                     if (begin >= 500) throw std::runtime_error("boom");
                   },
                   /*grain=*/100),
               std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneElement) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1);
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--rounds", "100", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.get_int("rounds", 0), 100);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_string("missing", "dflt"), "dflt");
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(Flags, RejectsUnknownAndMalformed) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags(2, const_cast<char**>(argv));
  flags.get_int("rounds", 5);
  EXPECT_THROW(flags.check_unknown(), std::invalid_argument);

  const char* argv2[] = {"prog", "positional"};
  EXPECT_THROW(Flags(2, const_cast<char**>(argv2)), std::invalid_argument);

  const char* argv3[] = {"prog", "--x=abc"};
  Flags flags3(2, const_cast<char**>(argv3));
  EXPECT_THROW(flags3.get_double("x", 0.0), std::invalid_argument);
}

TEST(Splitmix, IsDeterministicAndMixes) {
  std::uint64_t s1 = 123, s2 = 123;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  std::uint64_t a = 0, b = 1;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

}  // namespace
}  // namespace fedsparse::util
