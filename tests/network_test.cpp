// Heterogeneous network & device subsystem tests: the NetworkModel straggler
// formula, fluctuation models (log-normal jitter, Markov availability), the
// scenario registry, and — most load-bearing — the equivalence suite pinning
// that an all-uniform, always-available network reproduces the homogeneous
// TimingModel simulation byte-for-byte.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "data/synthetic.h"
#include "fl/network.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/extended_sign_ogd.h"
#include "sparsify/fab_topk.h"
#include "sparsify/method.h"

namespace fedsparse::fl {
namespace {

// ------------------------------------------------------------ model units --

TEST(NetworkConfig, TrivialDetection) {
  NetworkConfig cfg;
  EXPECT_TRUE(cfg.trivial());
  cfg.profiles.assign(3, ClientProfile{});
  EXPECT_TRUE(cfg.trivial());  // explicit defaults are still the paper model
  cfg.profiles[1].uplink_rate = 0.5;
  EXPECT_FALSE(cfg.trivial());
  cfg.profiles[1] = ClientProfile{};
  cfg.rate_jitter_sigma = 0.1;
  EXPECT_FALSE(cfg.trivial());
  cfg.rate_jitter_sigma = 0.0;
  cfg.p_drop = 0.01;
  EXPECT_FALSE(cfg.trivial());
}

TEST(NetworkModel, HomogeneousRoundTimeIsBitwiseTimingModel) {
  const TimingModel nominal{10.0, 1.0, 1000};
  NetworkModel model(nominal, NetworkConfig{}, 4, 1);
  EXPECT_FALSE(model.heterogeneous());
  const std::vector<std::size_t> ids = {0, 1, 2, 3};
  const std::vector<double> uplinks = {10.0, 40.0, 20.0, 30.0};
  model.begin_round(1);
  const auto rt = model.round_time(ids, uplinks, 40.0, 40.0);
  EXPECT_EQ(rt.time, nominal.round_time(40.0, 40.0));  // same bits, same expression
  EXPECT_EQ(rt.slowest_client, -1);  // identical clients: no straggler to name
  EXPECT_EQ(model.theta(50.0, ids), nominal.theta(50.0));
  EXPECT_EQ(model.broadcast_time(ids, 40.0), nominal.comm_part(0.0, 40.0));
}

TEST(NetworkModel, StragglerFormulaMaxesComputePlusOwnUplink) {
  // Client 1 has a tiny payload on a 10x-slower link; client 0 a big payload
  // on a nominal link. The slow link must bind the round even with the
  // smaller payload — the homogeneous max-payload shortcut gets this wrong.
  const TimingModel nominal{10.0, 1.0, 1000};
  NetworkConfig cfg;
  cfg.profiles = {ClientProfile{1.0, 1.0, 1.0}, ClientProfile{0.1, 0.5, 2.0}};
  NetworkModel model(nominal, cfg, 2, 1);
  EXPECT_TRUE(model.heterogeneous());
  model.begin_round(1);
  const std::vector<std::size_t> ids = {0, 1};
  const std::vector<double> uplinks = {100.0, 20.0};
  const auto rt = model.round_time(ids, uplinks, 100.0, 60.0);
  const double t0 = 1.0 + 10.0 * 100.0 / 2000.0;              // compute + own uplink
  const double t1 = 2.0 + (10.0 * 20.0 / 2000.0) / 0.1;       // straggler
  const double down = (10.0 * 60.0 / 2000.0) / 0.5;           // slowest downlink
  EXPECT_DOUBLE_EQ(rt.time, std::max(t0, t1) + down);
  EXPECT_EQ(rt.slowest_client, 1);
  // theta: every participant uploads 2k; same max structure.
  const double k = 30.0;
  const double th0 = 1.0 + 10.0 * 60.0 / 2000.0;
  const double th1 = 2.0 + (10.0 * 60.0 / 2000.0) / 0.1;
  EXPECT_DOUBLE_EQ(model.theta(k, ids), std::max(th0, th1) + (10.0 * 60.0 / 2000.0) / 0.5);
  EXPECT_LT(model.theta(10.0, ids), model.theta(20.0, ids));  // monotone in k
  // Dropping the straggler from the participant set drops its terms.
  const std::vector<std::size_t> fast_only = {0};
  const auto rt_fast = model.round_time(fast_only, {uplinks.data(), 1}, 100.0, 60.0);
  EXPECT_DOUBLE_EQ(rt_fast.time, t0 + 10.0 * 60.0 / 2000.0);
  EXPECT_EQ(model.max_compute_multiplier(ids), 2.0);
}

TEST(NetworkModel, EmptyParticipantsCostOneIdleComputeRound) {
  NetworkModel model(TimingModel{10.0, 1.0, 1000}, NetworkConfig{}, 3, 1);
  const auto rt = model.round_time({}, {}, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(rt.time, 1.0);
  EXPECT_EQ(rt.slowest_client, -1);
}

TEST(NetworkModel, JitterIsReproducibleAndPositive) {
  NetworkConfig cfg;
  cfg.profiles.assign(4, ClientProfile{0.5, 0.8, 1.0});
  cfg.rate_jitter_sigma = 0.4;
  NetworkModel a(TimingModel{10.0, 1.0, 1000}, cfg, 4, 42);
  NetworkModel b(TimingModel{10.0, 1.0, 1000}, cfg, 4, 42);
  bool moved = false;
  double prev = 0.0;
  for (std::size_t m = 1; m <= 10; ++m) {
    a.begin_round(m);
    b.begin_round(m);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(a.uplink_rate(i), b.uplink_rate(i));  // same seed, same stream
      EXPECT_EQ(a.downlink_rate(i), b.downlink_rate(i));
      EXPECT_GT(a.uplink_rate(i), 0.0);
      EXPECT_TRUE(a.available(i));  // jitter without churn never drops anyone
    }
    if (m > 1 && a.uplink_rate(0) != prev) moved = true;
    prev = a.uplink_rate(0);
  }
  EXPECT_TRUE(moved);  // rates actually fluctuate round to round
}

TEST(NetworkModel, MarkovChainAlternatesAtExtremeProbabilities) {
  // p_drop = p_recover = 1 flips every client's state each round.
  NetworkConfig cfg;
  cfg.p_drop = 1.0;
  cfg.p_recover = 1.0;
  NetworkModel model(TimingModel{10.0, 1.0, 1000}, cfg, 8, 3);
  std::vector<bool> prev(8);
  model.begin_round(1);
  for (std::size_t i = 0; i < 8; ++i) prev[i] = model.available(i);
  for (std::size_t m = 2; m <= 6; ++m) {
    model.begin_round(m);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NE(model.available(i), prev[i]) << "round " << m << " client " << i;
      prev[i] = model.available(i);
    }
  }
}

TEST(NetworkModel, ChurnVisitsBothStates) {
  NetworkConfig cfg;
  cfg.p_drop = 0.3;
  cfg.p_recover = 0.5;
  NetworkModel model(TimingModel{10.0, 1.0, 1000}, cfg, 6, 7);
  std::size_t on_rounds = 0, off_rounds = 0;
  for (std::size_t m = 1; m <= 50; ++m) {
    model.begin_round(m);
    for (std::size_t i = 0; i < 6; ++i) (model.available(i) ? on_rounds : off_rounds)++;
  }
  EXPECT_GT(on_rounds, 0u);
  EXPECT_GT(off_rounds, 0u);
}

TEST(NetworkModel, ValidatesConfiguration) {
  const TimingModel t{10.0, 1.0, 1000};
  NetworkConfig wrong_count;
  wrong_count.profiles.assign(3, ClientProfile{});
  EXPECT_THROW(NetworkModel(t, wrong_count, 4, 1), std::invalid_argument);
  NetworkConfig bad_rate;
  bad_rate.profiles.assign(2, ClientProfile{});
  bad_rate.profiles[0].uplink_rate = 0.0;
  EXPECT_THROW(NetworkModel(t, bad_rate, 2, 1), std::invalid_argument);
  NetworkConfig bad_prob;
  bad_prob.p_drop = 1.5;
  EXPECT_THROW(NetworkModel(t, bad_prob, 2, 1), std::invalid_argument);
  NetworkConfig stranded;
  stranded.p_drop = 0.5;
  stranded.p_recover = 0.0;
  EXPECT_THROW(NetworkModel(t, stranded, 2, 1), std::invalid_argument);
  NetworkConfig bad_sigma;
  bad_sigma.rate_jitter_sigma = -0.1;
  EXPECT_THROW(NetworkModel(t, bad_sigma, 2, 1), std::invalid_argument);
}

// ------------------------------------------------------- scenario registry --

TEST(Scenarios, RegistryBuildsEveryPreset) {
  const auto names = scenario_names();
  ASSERT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    const Scenario s = make_scenario(name, 12, 5);
    EXPECT_EQ(s.name, name);
    EXPECT_FALSE(s.description.empty());
    if (!s.network.profiles.empty()) EXPECT_EQ(s.network.profiles.size(), 12u);
    // Every preset must be consumable by a NetworkModel.
    NetworkModel model(TimingModel{10.0, 1.0, 1000}, s.network, 12, 5);
    (void)model;
  }
  EXPECT_THROW(make_scenario("no_such_scenario", 4), std::invalid_argument);
}

TEST(Scenarios, UniformIsTrivialAndBimodalIsNot) {
  EXPECT_TRUE(make_scenario("uniform", 8).network.trivial());
  const Scenario bimodal = make_scenario("bimodal", 8, 3);
  EXPECT_FALSE(bimodal.network.trivial());
  std::size_t slow = 0, fast = 0;
  for (const auto& p : bimodal.network.profiles) (p.is_default() ? fast : slow)++;
  EXPECT_EQ(slow, 2u);  // n/4 stragglers
  EXPECT_EQ(fast, 6u);
  // Same (name, n, seed) => same placement; different seed => may differ.
  const Scenario again = make_scenario("bimodal", 8, 3);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(bimodal.network.profiles[i].uplink_rate, again.network.profiles[i].uplink_rate);
  }
  const Scenario wan = make_scenario("metered_wan", 8);
  EXPECT_GT(wan.money_per_value, 0.0);
  EXPECT_GT(wan.weight_money, 0.0);
  const Scenario mobile = make_scenario("longtail_mobile", 8, 2);
  EXPECT_GT(mobile.network.rate_jitter_sigma, 0.0);
  EXPECT_GT(mobile.network.p_drop, 0.0);
  // churn_heavy: most clients offline in steady state (stationary pi_on
  // below one half), which is what makes its accumulators pile up unflushed.
  const Scenario churn = make_scenario("churn_heavy", 8, 2);
  EXPECT_GT(churn.network.p_drop, 0.0);
  const double pi_on =
      churn.network.p_recover / (churn.network.p_drop + churn.network.p_recover);
  EXPECT_LT(pi_on, 0.5);
}

// ------------------------------------------------ per-client payload wiring --

TEST(RoundOutcome, ClientUplinkFallsBackToUniform) {
  sparsify::RoundOutcome out;
  out.uplink_values = 42.0;
  EXPECT_DOUBLE_EQ(out.client_uplink(0), 42.0);  // empty list: uniform payload
  out.client_uplink_values = {10.0, 42.0};
  EXPECT_DOUBLE_EQ(out.client_uplink(0), 10.0);
  EXPECT_DOUBLE_EQ(out.client_uplink(1), 42.0);
}

TEST(FabTopK, EmitsPerClientUplinkDistribution) {
  const std::size_t dim = 64, n = 3;
  std::vector<std::vector<float>> vecs(n, std::vector<float>(dim, 0.0f));
  for (std::size_t i = 0; i < dim; ++i) {
    vecs[0][i] = static_cast<float>(i % 7) - 3.0f;
    vecs[1][i] = static_cast<float>(i % 5) - 2.0f;
    vecs[2][i] = static_cast<float>(i % 3) - 1.0f;
  }
  std::vector<double> weights(n, 1.0 / 3.0);
  sparsify::RoundInput in;
  in.dim = dim;
  in.round = 1;
  in.data_weights = {weights.data(), n};
  for (const auto& v : vecs) in.client_vectors.push_back({v.data(), v.size()});
  sparsify::FabTopK method(dim);
  const auto out = method.round(in, 10);
  // Every client uploads exactly min(k, D) (index, value) pairs, and the
  // slot-aligned list must agree with the legacy max accounting.
  ASSERT_EQ(out.client_uplink_values.size(), n);
  double max_up = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_DOUBLE_EQ(out.client_uplink(s), 20.0);  // 10 pairs = 20 values
    max_up = std::max(max_up, out.client_uplink_values[s]);
  }
  EXPECT_DOUBLE_EQ(out.uplink_values, max_up);  // legacy accounting unchanged
}

// ------------------------------------------------- simulation equivalence --

data::SyntheticConfig tiny_dataset(std::uint64_t seed = 1) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = 5;
  cfg.samples_per_client = 24;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 128;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 2;
  cfg.seed = seed;
  return cfg;
}

nn::ModelFactory tiny_model() { return nn::mlp(16, {12}, 4); }

SimulationConfig fast_sim(double beta = 10.0) {
  SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 50;
  cfg.comm_time = beta;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;
  cfg.eval_test_samples = 0;
  cfg.threads = 2;
  cfg.seed = 3;
  return cfg;
}

SimulationResult run_sim(SimulationConfig cfg, const std::string& method, bool adaptive,
                         std::uint64_t data_seed = 1) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  std::unique_ptr<online::KController> controller;
  if (adaptive) {
    controller = std::make_unique<online::ExtendedSignOgd>(
        online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 10});
  } else {
    controller = std::make_unique<online::FixedK>(20.0);
  }
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::move(controller));
  return sim.run();
}

// Bitwise trace comparison: uniform profiles must change NOTHING.
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RoundRecord& ra = a.records[i];
    const RoundRecord& rb = b.records[i];
    EXPECT_EQ(ra.time, rb.time) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_continuous, rb.k_continuous) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_used, rb.k_used) << label << " round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << label << " round " << ra.round;
    EXPECT_EQ(ra.uplink_values, rb.uplink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.downlink_values, rb.downlink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << label << " round " << ra.round;
    if (std::isnan(ra.global_loss)) {
      EXPECT_TRUE(std::isnan(rb.global_loss)) << label << " round " << ra.round;
    } else {
      EXPECT_EQ(ra.global_loss, rb.global_loss) << label << " round " << ra.round;
    }
  }
  EXPECT_EQ(a.k_sequence, b.k_sequence) << label;
  EXPECT_EQ(a.contributed_totals, b.contributed_totals) << label;
  EXPECT_EQ(a.total_time, b.total_time) << label;
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
  EXPECT_EQ(a.invalid_probe_rounds, b.invalid_probe_rounds) << label;
}

class UniformNetworkEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(UniformNetworkEquivalence, FixedKTraceMatchesHomogeneousPath) {
  const std::string method = GetParam();
  const auto homogeneous = run_sim(fast_sim(), method, /*adaptive=*/false);
  SimulationConfig cfg = fast_sim();
  cfg.network.profiles.assign(5, ClientProfile{});  // explicit all-uniform
  const auto uniform = run_sim(cfg, method, /*adaptive=*/false);
  expect_identical(homogeneous, uniform, method);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, UniformNetworkEquivalence,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk",
                                           "periodic", "send_all", "fedavg"));

TEST(UniformNetworkEquivalenceAdaptive, ProbePathMatchesHomogeneousPath) {
  // The adaptive controller consumes round_time AND theta_probe — both must
  // route through the network model bit-identically when uniform.
  const auto homogeneous = run_sim(fast_sim(), "fab_topk", /*adaptive=*/true);
  SimulationConfig cfg = fast_sim();
  cfg.network.profiles.assign(5, ClientProfile{});
  const auto uniform = run_sim(cfg, "fab_topk", /*adaptive=*/true);
  expect_identical(homogeneous, uniform, "fab_topk/adaptive");
}

TEST(UniformNetworkEquivalence2, PartialParticipationMatches) {
  SimulationConfig cfg = fast_sim();
  cfg.participation = 0.4;
  const auto homogeneous = run_sim(cfg, "fab_topk", /*adaptive=*/false);
  cfg.network.profiles.assign(5, ClientProfile{});
  const auto uniform = run_sim(cfg, "fab_topk", /*adaptive=*/false);
  expect_identical(homogeneous, uniform, "fab_topk/participation");
}

// ------------------------------------------------- heterogeneous behaviour --

TEST(HeterogeneousSimulation, SlowLinksInflateTimeAndNameTheStraggler) {
  const auto uniform = run_sim(fast_sim(), "fab_topk", /*adaptive=*/false);
  SimulationConfig cfg = fast_sim();
  cfg.network.profiles.assign(5, ClientProfile{});
  cfg.network.profiles[2] = {0.1, 0.5, 2.0};  // one slow client
  const auto het = run_sim(cfg, "fab_topk", /*adaptive=*/false);
  EXPECT_GT(het.total_time, uniform.total_time);
  // Weights/learning are untouched by timing: identical loss trajectory.
  ASSERT_EQ(het.records.size(), uniform.records.size());
  for (std::size_t i = 0; i < het.records.size(); ++i) {
    EXPECT_EQ(het.records[i].train_loss, uniform.records[i].train_loss);
  }
  // The slow client binds every round (its compute multiplier alone ensures
  // it under near-equal payloads).
  std::size_t bound_by_slow = 0;
  for (const auto& r : het.records) {
    if (r.slowest_client == 2) ++bound_by_slow;
  }
  EXPECT_GT(bound_by_slow, het.records.size() / 2);
}

TEST(HeterogeneousSimulation, AdaptiveControllerShrinksKUnderStragglers) {
  // The acceptance trend behind bench/scenario_sweep: dearer effective
  // communication (a slow uplink quarter) must push the learned k down.
  auto tail_k = [&](bool bimodal) {
    SimulationConfig cfg = fast_sim(10.0);
    cfg.max_rounds = 150;
    if (bimodal) {
      cfg.network.profiles.assign(5, ClientProfile{});
      cfg.network.profiles[1] = {0.05, 0.5, 1.0};  // ~20x dearer uplink
    }
    const auto res = run_sim(cfg, "fab_topk", /*adaptive=*/true, 4);
    double tail = 0.0;
    const std::size_t tail_n = res.k_sequence.size() / 4;
    for (std::size_t i = res.k_sequence.size() - tail_n; i < res.k_sequence.size(); ++i) {
      tail += res.k_sequence[i];
    }
    return tail / static_cast<double>(tail_n);
  };
  EXPECT_GT(tail_k(false), tail_k(true));
}

TEST(HeterogeneousSimulation, ChurnSkipsRoundsButKeepsLearning) {
  SimulationConfig cfg = fast_sim(1.0);
  cfg.max_rounds = 60;
  cfg.network.p_drop = 0.3;
  cfg.network.p_recover = 0.5;
  const auto res = run_sim(cfg, "fab_topk", /*adaptive=*/false);
  EXPECT_EQ(res.rounds_run, 60u);
  EXPECT_TRUE(std::isfinite(res.final_loss));
  EXPECT_LT(res.final_loss, res.records.front().train_loss);
  // Churn must actually have excluded clients from some rounds…
  std::size_t reduced_rounds = 0, total_participants = 0;
  for (const auto& r : res.records) {
    if (r.participants < 5) ++reduced_rounds;
    total_participants += r.participants;
  }
  EXPECT_GT(reduced_rounds, 0u);
  // …and the per-client participation ledger must agree with the records.
  ASSERT_EQ(res.client_rounds_participated.size(), 5u);
  std::size_t ledger = 0;
  for (const auto v : res.client_rounds_participated) {
    ledger += v;
    EXPECT_LT(v, res.rounds_run);  // nobody was online every single round
  }
  EXPECT_EQ(ledger, total_participants);
  // Offline clients upload nothing: traffic only on participated rounds.
  for (std::size_t i = 0; i < 5; ++i) {
    if (res.client_rounds_participated[i] == 0) {
      EXPECT_EQ(res.client_uplink_values[i], 0.0);
    } else {
      EXPECT_GT(res.client_uplink_values[i], 0.0);
    }
  }
}

TEST(HeterogeneousSimulation, AllOfflineRoundIdlesWithoutCrashing) {
  // Aggressive churn on a tiny population: rounds where every client is
  // offline must idle (no server round, NaN train loss, k carried) instead
  // of crashing or corrupting the trace.
  SimulationConfig cfg = fast_sim(1.0);
  cfg.max_rounds = 80;
  cfg.network.p_drop = 0.8;
  cfg.network.p_recover = 0.3;
  auto dataset = data::make_synthetic(tiny_dataset(1));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  const auto res = sim.run();
  EXPECT_EQ(res.rounds_run, 80u);
  EXPECT_EQ(res.records.size(), 80u);
  EXPECT_EQ(res.k_sequence.size(), 80u);
  std::size_t idle_rounds = 0;
  for (const auto& r : res.records) {
    if (r.participants == 0) {
      ++idle_rounds;
      EXPECT_TRUE(std::isnan(r.train_loss)) << "round " << r.round;
      EXPECT_EQ(r.uplink_values, 0.0);
      EXPECT_EQ(r.slowest_client, -1);
    }
  }
  EXPECT_GT(idle_rounds, 0u);  // stationary P(all 5 offline) ≈ 0.73^5 ≈ 0.2
  EXPECT_TRUE(std::isfinite(res.total_time));
  EXPECT_TRUE(std::isfinite(res.final_loss));
}

TEST(HeterogeneousSimulation, DeterministicGivenSeed) {
  SimulationConfig cfg = fast_sim(1.0);
  cfg.max_rounds = 40;
  cfg.network = make_scenario("longtail_mobile", 5, 9).network;
  const auto a = run_sim(cfg, "fab_topk", /*adaptive=*/true);
  const auto b = run_sim(cfg, "fab_topk", /*adaptive=*/true);
  expect_identical(a, b, "longtail_mobile determinism");
  EXPECT_EQ(a.client_uplink_values, b.client_uplink_values);
  EXPECT_EQ(a.client_rounds_participated, b.client_rounds_participated);
}

TEST(HeterogeneousSimulation, TrafficLedgerMatchesRecordsUnderFullParticipation) {
  const auto res = run_sim(fast_sim(1.0), "fab_topk", /*adaptive=*/false);
  double downlink_sum = 0.0;
  for (const auto& r : res.records) downlink_sum += r.downlink_values;
  ASSERT_EQ(res.client_downlink_values.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(res.client_downlink_values[i], downlink_sum);  // everyone hears broadcasts
    EXPECT_GT(res.client_uplink_values[i], 0.0);
    EXPECT_EQ(res.client_rounds_participated[i], res.rounds_run);
  }
  const auto rows =
      client_traffic_rows(res.client_uplink_values, res.client_downlink_values,
                          res.client_rounds_participated);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows[0].downlink_bytes, values_to_bytes(downlink_sum));
  EXPECT_THROW(client_traffic_rows({1.0}, {}, {}), std::invalid_argument);
}

TEST(HeterogeneousSimulation, FedAvgLocalOnlyRoundsDoNotCountAsParticipation) {
  // Between synchronizations FedAvg exchanges nothing: only the
  // kWeightAverage rounds are server rounds a client "joins".
  const auto res = run_sim(fast_sim(1.0), "fedavg", /*adaptive=*/false);
  std::size_t sync_rounds = 0;
  for (const auto& r : res.records) {
    if (r.uplink_values > 0.0) ++sync_rounds;
  }
  ASSERT_GT(sync_rounds, 0u);
  ASSERT_LT(sync_rounds, res.rounds_run);  // period > 1 at k=20
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(res.client_rounds_participated[i], sync_rounds);
  }
}

TEST(ApplyScenario, InstallsNetworkAndMoneyKnobs) {
  SimulationConfig cfg;
  apply_scenario(make_scenario("metered_wan", 6), cfg);
  EXPECT_EQ(cfg.network.profiles.size(), 6u);
  EXPECT_GT(cfg.weight_money, 0.0);
  EXPECT_GT(cfg.money_per_value, 0.0);
  SimulationConfig uni;
  apply_scenario(make_scenario("uniform", 6), uni);
  EXPECT_TRUE(uni.network.trivial());
  EXPECT_EQ(uni.weight_money, 0.0);  // pure-time objective untouched
}

}  // namespace
}  // namespace fedsparse::fl
