// Property tests for the sharded round engine's building blocks: the
// k-bounded keyed tree merge must reproduce the global top-k of the union of
// per-shard top-k runs (including ties and index order), the fused
// accumulate+scan must be indistinguishable from the separate reference
// passes, and the shard plan must stay a balanced contiguous partition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sparsify/accumulator.h"
#include "sparsify/keys.h"
#include "sparsify/shard_engine.h"
#include "sparsify/topk.h"
#include "util/rng.h"

namespace fedsparse::sparsify {
namespace {

std::vector<float> random_values(std::size_t n, util::Rng& rng, double zero_prob = 0.3) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = rng.bernoulli(zero_prob) ? 0.0f : static_cast<float>(rng.normal(0.0, 1.0));
  }
  return v;
}

// Global reference: all keys of v, sorted by the total (|v| desc, idx asc)
// order, truncated to k.
std::vector<std::uint64_t> global_topk_keys(const std::vector<float>& v, std::size_t k) {
  std::vector<std::uint64_t> keys;
  keys.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) keys.push_back(make_key(v[i], i));
  std::sort(keys.begin(), keys.end(), std::greater<std::uint64_t>());
  if (keys.size() > k) keys.resize(k);
  return keys;
}

// ---------------- keyed tree merge ------------------------------------------

TEST(KeyMergeTest, MergedShardTopKEqualsGlobalTopK) {
  // Any global-top-k element is inside its own shard's top-k, so merging the
  // per-shard top-k runs and keeping k must equal the global top-k — for any
  // partition, any shard count, any k.
  util::Rng rng(42);
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u, 16u}) {
      for (const std::size_t k : {1u, 5u, 32u, 2000u}) {
        const auto v = random_values(n, rng);
        const ShardPlan plan = make_shard_plan(n, shards);
        std::vector<std::vector<std::uint64_t>> runs(plan.shards());
        for (std::size_t s = 0; s < plan.shards(); ++s) {
          for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
            runs[s].push_back(make_key(v[i], i));
          }
          std::sort(runs[s].begin(), runs[s].end(), std::greater<std::uint64_t>());
          if (runs[s].size() > k) runs[s].resize(k);
        }
        const auto merged = merge_topk_sorted_runs(runs, k);
        const auto ref = global_topk_keys(v, k);
        ASSERT_EQ(merged, ref) << "n=" << n << " shards=" << shards << " k=" << k;
      }
    }
  }
}

TEST(KeyMergeTest, TiedMagnitudesMergeInIndexOrder) {
  // Equal |value| across indices must come out ascending by index — the key
  // encoding's complemented low word — regardless of which shard holds which.
  std::vector<float> v(40, 0.0f);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i % 2 == 0) ? 0.5f : -0.5f;
  std::vector<std::vector<std::uint64_t>> runs(4);
  for (std::size_t i = 0; i < v.size(); ++i) runs[i % 4].push_back(make_key(v[i], i));
  for (auto& r : runs) std::sort(r.begin(), r.end(), std::greater<std::uint64_t>());
  const auto merged = merge_topk_sorted_runs(runs, 10);
  ASSERT_EQ(merged.size(), 10u);
  for (std::size_t p = 0; p < merged.size(); ++p) {
    EXPECT_EQ(key_index(merged[p]), p) << "tie order broken at position " << p;
  }
}

TEST(KeyMergeTest, EmptyAndAllZeroRunsAreHarmless) {
  const auto none = merge_topk_sorted_runs({}, 5);
  EXPECT_TRUE(none.empty());
  const auto empties = merge_topk_sorted_runs({{}, {}, {}}, 5);
  EXPECT_TRUE(empties.empty());
  // One real run among empties — any k cap, including k > total.
  std::vector<std::uint64_t> run = {make_key(2.0f, 3), make_key(1.0f, 1)};
  const auto merged = merge_topk_sorted_runs({{}, run, {}}, 99);
  EXPECT_EQ(merged, run);
}

TEST(KeyMergeTest, MergerReuseAcrossDifferentRunCounts) {
  // The KeyMerger's per-level buffers are reused across calls with varying
  // run counts (odd counts carry a run across levels — the aliasing trap).
  util::Rng rng(7);
  KeyMerger merger;
  for (const std::size_t shards : {5u, 2u, 9u, 16u, 3u, 1u}) {
    const std::size_t n = 200;
    const auto v = random_values(n, rng);
    const ShardPlan plan = make_shard_plan(n, shards);
    std::vector<std::vector<std::uint64_t>> owned(plan.shards());
    std::vector<std::span<const std::uint64_t>> runs;
    for (std::size_t s = 0; s < plan.shards(); ++s) {
      for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
        owned[s].push_back(make_key(v[i], i));
      }
      std::sort(owned[s].begin(), owned[s].end(), std::greater<std::uint64_t>());
      runs.push_back({owned[s].data(), owned[s].size()});
    }
    std::vector<std::uint64_t> out;
    merger.merge({runs.data(), runs.size()}, 25, out);
    EXPECT_EQ(out, global_topk_keys(v, 25)) << "shards=" << shards;
  }
}

// ---------------- fused accumulate + scan -----------------------------------

TEST(FusedScanTest, AddScanMatchesSeparatePasses) {
  // add_scan(grad, t, cap, keys) must leave the accumulator in exactly the
  // state add(grad) would, and emit exactly the keys that
  // threshold_scan_append(value(), chunk_max(), t, cap, keys) then would —
  // same sequence, same bail point, same return.
  util::Rng rng(123);
  for (const std::size_t dim : {64u, 200u, 4096u}) {
    for (int trial = 0; trial < 8; ++trial) {
      GradientAccumulator fused(dim), ref(dim);
      // Warm both with identical history (several rounds, partial resets).
      for (int r = 0; r < 3; ++r) {
        const auto g = random_values(dim, rng, 0.6);
        fused.add({g.data(), g.size()});
        ref.add({g.data(), g.size()});
      }
      const auto grad = random_values(dim, rng, 0.6);
      // Threshold drawn from the realized magnitudes so some trials pass
      // many entries and some pass few; cap small enough to bail sometimes.
      const float threshold =
          0.1f + 0.4f * static_cast<float>(rng.normal(1.0, 0.3) * rng.normal(1.0, 0.3));
      const std::size_t cap = (trial % 2 == 0) ? 16 : 100000;

      std::vector<std::uint64_t> fused_keys, ref_keys;
      const bool fused_complete =
          fused.add_scan({grad.data(), grad.size()}, threshold, cap, fused_keys);
      ref.add({grad.data(), grad.size()});
      const bool ref_complete =
          threshold_scan_append(ref.value(), ref.chunk_max(), threshold, cap, ref_keys);

      EXPECT_EQ(fused_complete, ref_complete) << "dim=" << dim << " trial=" << trial;
      EXPECT_EQ(fused_keys, ref_keys) << "dim=" << dim << " trial=" << trial;
      // Accumulator state must be bit-identical too (values AND summaries).
      const auto fv = fused.value(), rv = ref.value();
      ASSERT_EQ(fv.size(), rv.size());
      for (std::size_t i = 0; i < fv.size(); ++i) {
        ASSERT_EQ(fv[i], rv[i]) << "value diverged at " << i;
      }
      const auto fc = fused.chunk_max(), rc = ref.chunk_max();
      ASSERT_EQ(fc.size(), rc.size());
      for (std::size_t c = 0; c < fc.size(); ++c) {
        ASSERT_EQ(fc[c], rc[c]) << "chunk summary diverged at " << c;
      }
    }
  }
}

TEST(FusedScanTest, CapBailStillCompletesTheAdds) {
  // A bailed scan must not leave the accumulation half-done: every chunk is
  // still added and summarized, only the key emission stops.
  const std::size_t dim = 512;
  GradientAccumulator fused(dim), ref(dim);
  std::vector<float> grad(dim, 1.0f);
  std::vector<std::uint64_t> keys;
  const bool complete = fused.add_scan({grad.data(), grad.size()}, 0.5f, 4, keys);
  ref.add({grad.data(), grad.size()});
  EXPECT_FALSE(complete);
  EXPECT_LE(keys.size(), 4u + kAccumulatorChunk);  // bails within one chunk
  const auto fv = fused.value(), rv = ref.value();
  for (std::size_t i = 0; i < dim; ++i) ASSERT_EQ(fv[i], rv[i]);
}

TEST(FusedScanTest, RejectsNonPositiveThreshold) {
  GradientAccumulator acc(64);
  std::vector<float> grad(64, 0.0f);
  std::vector<std::uint64_t> keys;
  EXPECT_THROW((void)acc.add_scan({grad.data(), grad.size()}, 0.0f, 10, keys),
               std::invalid_argument);
}

// ---------------- shard plan -------------------------------------------------

TEST(ShardPlanTest, BalancedContiguousPartition) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 100u, 1001u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u, 200u}) {
      const ShardPlan plan = make_shard_plan(n, shards);
      ASSERT_GE(plan.shards(), 1u);
      EXPECT_LE(plan.shards(), std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(1, n))));
      EXPECT_EQ(plan.begin(0), 0u);
      EXPECT_EQ(plan.end(plan.shards() - 1), n);
      std::size_t lo = n, hi = 0;
      for (std::size_t s = 0; s < plan.shards(); ++s) {
        ASSERT_LE(plan.begin(s), plan.end(s));
        const std::size_t size = plan.end(s) - plan.begin(s);
        lo = std::min(lo, size);
        hi = std::max(hi, size);
        if (s + 1 < plan.shards()) ASSERT_EQ(plan.end(s), plan.begin(s + 1));
      }
      if (n > 0) EXPECT_LE(hi - lo, 1u) << "n=" << n << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace fedsparse::sparsify
