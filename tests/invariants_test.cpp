// Deep correctness tests: a brute-force reference implementation of the
// paper's Algorithm 1 server selection checked against the optimized
// FabTopK; a hand-traced run of Algorithm 3's pseudocode; post-run weight
// synchronization; and behavioural checks of the sign-estimation loop under
// controlled cost regimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/extended_sign_ogd.h"
#include "online/sign_ogd.h"
#include "sparsify/fab_topk.h"
#include "sparsify/topk.h"
#include "util/rng.h"

namespace fedsparse {
namespace {

// ------------- reference implementation of the paper's Algorithm 1 ---------
//
// A direct, unoptimized transcription of Section III-B: sort-based top-k,
// linear κ scan instead of binary search, std::set unions, std::map
// aggregation. Used as an oracle for the production FabTopK.

struct ReferenceResult {
  std::map<std::int32_t, double> downlink;           // j -> b_j
  std::vector<std::set<std::int32_t>> reset;         // per client J ∩ J_i
};

ReferenceResult reference_fab_topk(const std::vector<std::vector<float>>& a,
                                   const std::vector<double>& weights, std::size_t k) {
  const std::size_t n = a.size();
  // Client uploads: top-k of |a_i|, sorted strongest first (ties: low index).
  std::vector<std::vector<std::pair<std::int32_t, float>>> uploads(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<std::int32_t, float>> all;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      all.emplace_back(static_cast<std::int32_t>(j), a[i][j]);
    }
    std::stable_sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
      const float ax = std::fabs(x.second), ay = std::fabs(y.second);
      if (ax != ay) return ax > ay;
      return x.first < y.first;
    });
    all.resize(std::min(k, all.size()));
    uploads[i] = std::move(all);
  }

  // Linear scan for the largest κ with |∪ J_i^κ| <= k.
  const auto union_at = [&](std::size_t kappa) {
    std::set<std::int32_t> u;
    for (const auto& up : uploads) {
      for (std::size_t j = 0; j < std::min(kappa, up.size()); ++j) u.insert(up[j].first);
    }
    return u;
  };
  std::size_t kappa = 0;
  for (std::size_t c = 1; c <= k; ++c) {
    if (union_at(c).size() <= k) {
      kappa = c;
    } else {
      break;
    }
  }
  std::set<std::int32_t> selected = union_at(kappa);

  // Fill with the strongest elements of (∪J^{κ+1}) \ (∪J^κ).
  std::vector<std::pair<std::int32_t, float>> candidates;
  for (const auto& up : uploads) {
    if (up.size() > kappa && !selected.count(up[kappa].first)) {
      candidates.push_back(up[kappa]);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(), [](const auto& x, const auto& y) {
    const float ax = std::fabs(x.second), ay = std::fabs(y.second);
    if (ax != ay) return ax > ay;
    return x.first < y.first;
  });
  for (const auto& [idx, value] : candidates) {
    (void)value;
    if (selected.size() >= k) break;
    selected.insert(idx);
  }

  // Aggregate b_j = Σ_i w_i a_ij 1[j ∈ J_i]; record resets.
  ReferenceResult out;
  out.reset.resize(n);
  for (const std::int32_t j : selected) out.downlink[j] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [idx, value] : uploads[i]) {
      if (selected.count(idx)) {
        out.downlink[idx] += weights[i] * static_cast<double>(value);
        out.reset[i].insert(idx);
      }
    }
  }
  return out;
}

TEST(FabTopKReference, OptimizedMatchesBruteForceAcrossRandomInstances) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.uniform_u64(6);
    const std::size_t dim = 8 + rng.uniform_u64(96);
    const std::size_t k = 1 + rng.uniform_u64(std::min<std::size_t>(dim, 24));
    std::vector<std::vector<float>> a(n, std::vector<float>(dim));
    for (auto& v : a) {
      const double scale = std::exp(rng.normal(0.0, 1.5));  // heterogeneous magnitudes
      for (auto& x : v) x = static_cast<float>(rng.normal(0.0, scale));
    }
    std::vector<double> weights(n);
    double total = 0.0;
    for (auto& w : weights) {
      w = 0.1 + rng.uniform();
      total += w;
    }
    for (auto& w : weights) w /= total;

    const auto ref = reference_fab_topk(a, weights, k);

    sparsify::RoundInput in;
    in.dim = dim;
    in.round = 1;
    in.data_weights = {weights.data(), weights.size()};
    for (const auto& v : a) in.client_vectors.push_back({v.data(), v.size()});
    sparsify::FabTopK method(dim);
    const auto out = method.round(in, k);

    // Same downlink index set and (weighted) values.
    ASSERT_EQ(out.update.size(), ref.downlink.size()) << "trial " << trial;
    for (const auto& e : out.update) {
      const auto it = ref.downlink.find(e.index);
      ASSERT_NE(it, ref.downlink.end()) << "trial " << trial << " index " << e.index;
      EXPECT_NEAR(e.value, it->second, 1e-5) << "trial " << trial;
    }
    // Same per-client reset sets (the production side stores them CSR-flat).
    for (std::size_t i = 0; i < n; ++i) {
      const auto got_span = out.reset_for(i);
      std::set<std::int32_t> got(got_span.begin(), got_span.end());
      EXPECT_EQ(got, ref.reset[i]) << "trial " << trial << " client " << i;
    }
  }
}

// ----------------------- Algorithm 3 pseudocode trace -----------------------

TEST(Algorithm3Trace, FollowsPseudocodeStepByStep) {
  // kmin=10, kmax=110 => B0=100. Mu=3, alpha=1. Feed signs +1,+1,+1 ...
  online::ExtendedSignOgd::Config cfg;
  cfg.kmin = 10.0;
  cfg.kmax = 110.0;
  cfg.initial_k = 60.0;
  cfg.alpha = 1.0;
  cfg.update_window = 3;
  online::ExtendedSignOgd ogd(cfg);

  // m=1: δ = 100/√2 ≈ 70.71; k2 = P(60 − 70.71) = 10 (clipped at kmin).
  EXPECT_NEAR(ogd.delta(), 100.0 / std::sqrt(2.0), 1e-9);
  ogd.observe_sign(1);
  EXPECT_DOUBLE_EQ(ogd.current_k(), 10.0);

  // m=2: δ = 100/√4 = 50; k3 = P(10 − 50·(−1)) = 60.
  EXPECT_NEAR(ogd.delta(), 50.0, 1e-9);
  ogd.observe_sign(-1);
  EXPECT_DOUBLE_EQ(ogd.current_k(), 60.0);

  // m=3: δ = 100/√6 ≈ 40.82; k4 = P(60 − 40.82) ≈ 19.18. This is the 3rd
  // valid update => window check fires. Tracked k values {10, 60, 19.18}:
  // with α=1, candidate interval [10, 60], B' = 50. Restart requires
  // B' < (√2−1)·100 ≈ 41.42 — 50 is NOT smaller, so no restart.
  ogd.observe_sign(1);
  EXPECT_NEAR(ogd.current_k(), 60.0 - 100.0 / std::sqrt(6.0), 1e-9);
  EXPECT_EQ(ogd.instances_started(), 1u);
  EXPECT_DOUBLE_EQ(ogd.interval_lo(), 10.0);
  EXPECT_DOUBLE_EQ(ogd.interval_hi(), 110.0);

  // Next window: δ_4..δ_6 = 100/√8, 100/√10, 100/√12 ≈ 35.36, 31.62, 28.87.
  // Feed +1, −1, +1: k5 = P(19.18 − 35.36) = 10; k6 = 10 + 31.62 = 41.62;
  // k7 = 41.62 − 28.87 = 12.76. Tracked range [10, 41.62] => B' = 31.62,
  // which IS < (√2−1)·100 ≈ 41.42, and M'' = 6 ≥ M' = 0 => restart.
  ogd.observe_sign(1);
  EXPECT_DOUBLE_EQ(ogd.current_k(), 10.0);
  ogd.observe_sign(-1);
  EXPECT_NEAR(ogd.current_k(), 10.0 + 100.0 / std::sqrt(10.0), 1e-9);
  const double k6 = ogd.current_k();
  ogd.observe_sign(1);  // third valid update of the window -> fires + restarts
  EXPECT_NEAR(ogd.current_k(), k6 - 100.0 / std::sqrt(12.0), 1e-9);
  EXPECT_EQ(ogd.instances_started(), 2u);
  EXPECT_DOUBLE_EQ(ogd.interval_lo(), 10.0);
  EXPECT_NEAR(ogd.interval_hi(), 10.0 + 100.0 / std::sqrt(10.0), 1e-9);
  EXPECT_LT(ogd.interval_hi() - ogd.interval_lo(), (std::sqrt(2.0) - 1.0) * 100.0);

  // After the restart, δ resets: next δ = B_new/√2 (m − m0 = 1).
  const double b_new = ogd.interval_hi() - ogd.interval_lo();
  EXPECT_NEAR(ogd.delta(), b_new / std::sqrt(2.0), 1e-9);
}

TEST(Algorithm2Trace, DeltaAndProjectionSequence) {
  online::SignOgd ogd(online::SignOgd::Config{1.0, 101.0, 51.0});
  const double b = 100.0;
  std::vector<int> signs{1, -1, 1, 1, -1};
  double k = 51.0;
  for (std::size_t m = 1; m <= signs.size(); ++m) {
    EXPECT_NEAR(ogd.current_k(), k, 1e-9) << "m=" << m;
    const double delta = b / std::sqrt(2.0 * static_cast<double>(m));
    EXPECT_NEAR(ogd.delta(), delta, 1e-9);
    ogd.observe_sign(signs[m - 1]);
    k = std::clamp(k - delta * signs[m - 1], 1.0, 101.0);
  }
}

// ------------------------ simulation invariants -----------------------------

TEST(SimulationInvariants, AllClientsHoldIdenticalWeightsAfterGsRun) {
  data::SyntheticConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.channels = 1;
  dcfg.height = 4;
  dcfg.width = 4;
  dcfg.num_clients = 6;
  dcfg.samples_per_client = 16;
  dcfg.test_samples = 32;
  dcfg.seed = 12;
  auto factory = nn::mlp(16, {8}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  for (const char* method : {"fab_topk", "fub_topk", "unidirectional_topk", "periodic",
                             "send_all"}) {
    fl::SimulationConfig scfg;
    scfg.lr = 0.05f;
    scfg.batch = 8;
    scfg.max_rounds = 15;
    scfg.comm_time = 1.0;
    scfg.eval_every = 100;  // no mid-run eval
    scfg.threads = 2;
    fl::Simulation sim(scfg, data::make_synthetic(dcfg), factory,
                       sparsify::make_method(method, dim, 3),
                       std::make_unique<online::FixedK>(10.0));
    (void)sim.run();
    const auto w0 = sim.client_weights(0);
    for (std::size_t i = 1; i < sim.num_clients(); ++i) {
      const auto wi = sim.client_weights(i);
      for (std::size_t j = 0; j < dim; ++j) {
        ASSERT_EQ(w0[j], wi[j]) << method << ": client " << i << " coord " << j;
      }
    }
  }
}

TEST(SimulationInvariants, PartialParticipationKeepsWeightsSynchronized) {
  // Even with client sampling, the downlink is broadcast to everyone, so the
  // Algorithm 1 synchronization invariant must survive.
  data::SyntheticConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.channels = 1;
  dcfg.height = 3;
  dcfg.width = 3;
  dcfg.num_clients = 7;
  dcfg.samples_per_client = 12;
  dcfg.test_samples = 16;
  dcfg.seed = 5;
  auto factory = nn::mlp(9, {6}, 3);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::SimulationConfig scfg;
  scfg.lr = 0.05f;
  scfg.batch = 4;
  scfg.max_rounds = 25;
  scfg.comm_time = 1.0;
  scfg.eval_every = 100;
  scfg.participation = 0.4;
  scfg.threads = 2;
  fl::Simulation sim(scfg, data::make_synthetic(dcfg), factory,
                     sparsify::make_method("fab_topk", dim, 3),
                     std::make_unique<online::FixedK>(8.0));
  (void)sim.run();
  const auto w0 = sim.client_weights(0);
  for (std::size_t i = 1; i < sim.num_clients(); ++i) {
    const auto wi = sim.client_weights(i);
    for (std::size_t j = 0; j < dim; ++j) {
      ASSERT_EQ(w0[j], wi[j]) << "client " << i;
    }
  }
}

// --------------- sign-estimation loop under controlled regimes --------------

TEST(SignLoopBehaviour, CommHeavyFeedbackWalksKDown) {
  // Synthesize feedback where smaller k is genuinely better: time dominated
  // by communication, loss decrease nearly independent of k. The controller
  // must ratchet k downward.
  online::SignOgd ogd(online::SignOgd::Config{2.0, 1002.0, 800.0});
  fl::TimingModel t{100.0, 1.0, 1000};
  for (int m = 0; m < 60; ++m) {
    const double k = ogd.current_k();
    const double kp = ogd.probe_k();
    online::RoundFeedback fb;
    fb.loss_prev = 2.0;
    fb.loss_cur = 1.9;    // k-round decreases loss by 0.1
    fb.loss_probe = 1.905;  // k'-round nearly as good
    fb.probe_available = true;
    fb.round_time = t.theta(k);
    fb.theta_probe = t.theta(kp);
    ogd.observe(fb);
  }
  EXPECT_LT(ogd.current_k(), 100.0);
}

TEST(SignLoopBehaviour, ComputeHeavyFeedbackKeepsKHigh) {
  // Now the k'-probe barely decreases the loss (sparse gradients hurt) while
  // communication is almost free: k must stay high.
  online::SignOgd ogd(online::SignOgd::Config{2.0, 1002.0, 500.0});
  fl::TimingModel t{0.01, 1.0, 1000};
  for (int m = 0; m < 60; ++m) {
    const double k = ogd.current_k();
    const double kp = ogd.probe_k();
    online::RoundFeedback fb;
    fb.loss_prev = 2.0;
    fb.loss_cur = 1.9;
    fb.loss_probe = 1.99;  // probe round achieves almost nothing
    fb.probe_available = true;
    fb.round_time = t.theta(k);
    fb.theta_probe = t.theta(kp);
    ogd.observe(fb);
  }
  EXPECT_GT(ogd.current_k(), 500.0);
}

TEST(SignLoopBehaviour, InvalidRoundsFreezeK) {
  online::ExtendedSignOgd ogd(online::ExtendedSignOgd::Config{2.0, 100.0, 50.0, 1.5, 5});
  const double k0 = ogd.current_k();
  for (int m = 0; m < 10; ++m) {
    online::RoundFeedback fb;  // loss increased => estimator invalid
    fb.loss_prev = 1.0;
    fb.loss_cur = 1.1;
    fb.loss_probe = 1.2;
    fb.probe_available = true;
    fb.round_time = 1.0;
    fb.theta_probe = 1.0;
    ogd.observe(fb);
  }
  EXPECT_DOUBLE_EQ(ogd.current_k(), k0);
  EXPECT_EQ(ogd.instances_started(), 1u);
}

}  // namespace
}  // namespace fedsparse
