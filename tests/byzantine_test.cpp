// Byzantine-resilient sparse aggregation (fl/faults.h adversary models,
// sparsify/robust.h + BucketAggregator::run_robust, reputation quarantine):
//  * adversary draws are pure in (cohort seed, round, client) and cohort
//    membership is round-independent — attacked runs are replayable;
//  * every attack transform leaves the payload structurally valid and finite:
//    adversarial uploads are the robust stage's problem, not screening's;
//  * the robust statistics (trimmed mean, median, thin-support clipped mean)
//    reduce to known closed-form values on hand-built contribution groups and
//    are byte-identical across shard counts;
//  * an attacked, defended simulation trace is bitwise invariant across
//    thread counts and shard counts, and the reputation pass quarantines the
//    sign-flipping cohort through the validator's suspect-strike machinery;
//  * a recorded attacked run (sync and buffered-async) replays from the log
//    alone with zero digest mismatches at any shard count;
//  * a fuzz harness drives screening + robust reduction with adversarial
//    payload generators (duplicate/out-of-range indices, NaN/Inf, norm
//    blowups, empty and all-attacker rounds) and checks the invariants the
//    engine relies on: malformed payloads never survive the screen, surviving
//    weights stay a convex combination, the robust aggregate stays finite and
//    shard-count invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/faults.h"
#include "fl/replay.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/controller.h"
#include "sparsify/method.h"
#include "sparsify/robust.h"
#include "sparsify/shard_engine.h"
#include "sparsify/validate.h"
#include "util/rng.h"

namespace fedsparse::fl {
namespace {

data::SyntheticConfig tiny_dataset(std::uint64_t seed = 1, std::size_t clients = 10) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = clients;
  cfg.samples_per_client = 24;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 64;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 2;
  cfg.seed = seed;
  return cfg;
}

nn::ModelFactory tiny_model() { return nn::mlp(16, {12}, 4); }

SimulationConfig base_sim(std::size_t threads = 2) {
  SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 25;
  cfg.comm_time = 5.0;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;
  cfg.eval_test_samples = 0;
  cfg.threads = threads;
  cfg.seed = 7;
  return cfg;
}

SimulationResult run_fixed_k(const std::string& method, double k, SimulationConfig cfg,
                             RoundRecorder* recorder = nullptr, std::uint64_t data_seed = 1,
                             std::size_t clients = 10) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed, clients));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::make_unique<online::FixedK>(k));
  sim.set_recorder(recorder);
  return sim.run();
}

// Bitwise trace comparison including the adversary / robust-stage counters.
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RoundRecord& ra = a.records[i];
    const RoundRecord& rb = b.records[i];
    EXPECT_EQ(ra.time, rb.time) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_used, rb.k_used) << label << " round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << label << " round " << ra.round;
    EXPECT_EQ(ra.uplink_values, rb.uplink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.downlink_values, rb.downlink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << label << " round " << ra.round;
    EXPECT_EQ(ra.byzantine, rb.byzantine) << label << " round " << ra.round;
    EXPECT_EQ(ra.rejected, rb.rejected) << label << " round " << ra.round;
    EXPECT_EQ(ra.quarantined, rb.quarantined) << label << " round " << ra.round;
    EXPECT_EQ(ra.suspects, rb.suspects) << label << " round " << ra.round;
    EXPECT_EQ(ra.trust, rb.trust) << label << " round " << ra.round;
    EXPECT_EQ(ra.degraded, rb.degraded) << label << " round " << ra.round;
  }
  EXPECT_EQ(a.k_sequence, b.k_sequence) << label;
  EXPECT_EQ(a.contributed_totals, b.contributed_totals) << label;
  EXPECT_EQ(a.total_time, b.total_time) << label;
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
}

bool structurally_ok(const sparsify::SparseVector& sv, std::size_t dim) {
  std::set<std::int32_t> seen;
  for (const auto& e : sv) {
    if (!std::isfinite(e.value)) return false;
    if (e.index < 0 || static_cast<std::size_t>(e.index) >= dim) return false;
    if (!seen.insert(e.index).second) return false;
  }
  return true;
}

// ---------------- adversary models ------------------------------------------

TEST(AdversaryModel, CohortIsSeededRoundIndependentAndShared) {
  FaultConfig cfg;
  cfg.adversary.attack = AttackKind::kSignFlip;
  cfg.adversary.byzantine_fraction = 0.2;
  cfg.adversary.cohort_seed = 41;
  const FaultModel a(cfg, 7, 64);
  const FaultModel b(cfg, 99, 64);  // different SIM seed, same cohort seed

  std::size_t members = 0;
  for (std::size_t c = 0; c < 200; ++c) {
    // Colluders built from the same cohort seed agree on membership even
    // under different simulation seeds — the cohort is a shared identity,
    // not a per-run draw.
    EXPECT_EQ(a.byzantine(c), b.byzantine(c)) << "client " << c;
    if (a.byzantine(c)) ++members;
  }
  // ~20% of 200; a gross miss means the membership mixing is broken.
  EXPECT_GT(members, 15u);
  EXPECT_LT(members, 80u);

  // A different cohort seed draws a different cohort.
  FaultConfig other = cfg;
  other.adversary.cohort_seed = 42;
  const FaultModel c(other, 7, 64);
  bool any_diff = false;
  for (std::size_t i = 0; i < 200 && !any_diff; ++i) any_diff = a.byzantine(i) != c.byzantine(i);
  EXPECT_TRUE(any_diff);

  // Trivial adversary: nobody is Byzantine, the tamper seam is untouched.
  const FaultModel none(FaultConfig{}, 7, 64);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_FALSE(none.byzantine(i));
}

TEST(AdversaryModel, AttacksAreWellFormedPureAndAsAdvertised) {
  constexpr std::size_t kDim = 64;
  const sparsify::SparseVector clean{{2, 0.5f}, {7, -1.5f}, {11, 0.25f}, {40, 1.0f}};
  const auto with_attack = [](AttackKind kind) {
    FaultConfig cfg;
    cfg.adversary.attack = kind;
    cfg.adversary.byzantine_fraction = 1.0;  // everyone, so draws don't gate
    cfg.adversary.cohort_seed = 5;
    return cfg;
  };

  {  // sign flip: exact negation, nothing else moves
    const FaultModel m(with_attack(AttackKind::kSignFlip), 3, kDim);
    sparsify::SparseVector sv = clean;
    m.attack_payload(1, 0, sv);
    ASSERT_EQ(sv.size(), clean.size());
    for (std::size_t i = 0; i < sv.size(); ++i) {
      EXPECT_EQ(sv[i].index, clean[i].index);
      EXPECT_EQ(sv[i].value, -clean[i].value);
    }
  }
  {  // scale blowup: finite multiplication by adversary.scale
    const FaultModel m(with_attack(AttackKind::kScaleBlowup), 3, kDim);
    sparsify::SparseVector sv = clean;
    m.attack_payload(1, 0, sv);
    ASSERT_EQ(sv.size(), clean.size());
    for (std::size_t i = 0; i < sv.size(); ++i) {
      EXPECT_EQ(sv[i].value, clean[i].value * 20.0f);
      EXPECT_TRUE(std::isfinite(sv[i].value));
    }
    EXPECT_TRUE(structurally_ok(sv, kDim));
  }
  {  // targeted poison: shared in-bounds block, same for every cohort member
    const FaultModel m(with_attack(AttackKind::kTargetedPoison), 3, kDim);
    sparsify::SparseVector sv0 = clean;
    sparsify::SparseVector sv1 = clean;
    m.attack_payload(1, 0, sv0);
    m.attack_payload(1, 9, sv1);  // different client, same cohort
    EXPECT_TRUE(structurally_ok(sv0, kDim));
    ASSERT_EQ(sv0.size(), sv1.size());
    for (std::size_t i = 0; i < sv0.size(); ++i) {
      EXPECT_EQ(sv0[i].index, sv1[i].index);  // the cohort's shared target block
      EXPECT_LT(sv0[i].value, 0.0f);          // pushed hard in a common direction
    }
  }
  {  // colluding: shared per-coordinate sign pattern at own magnitudes
    const FaultModel m(with_attack(AttackKind::kColluding), 3, kDim);
    sparsify::SparseVector sv0 = clean;
    sparsify::SparseVector sv1{{7, 2.0f}, {11, -4.0f}};  // overlaps coords 7, 11
    m.attack_payload(1, 0, sv0);
    m.attack_payload(1, 1, sv1);
    EXPECT_TRUE(structurally_ok(sv0, kDim));
    EXPECT_TRUE(structurally_ok(sv1, kDim));
    for (const auto& e0 : sv0) {
      for (const auto& e1 : sv1) {
        if (e0.index != e1.index) continue;
        EXPECT_EQ(std::signbit(e0.value), std::signbit(e1.value))
            << "colluders disagree on coordinate " << e0.index;
      }
    }
  }
  {  // purity: the same (round, client, payload) always yields the same bits
    const FaultModel m(with_attack(AttackKind::kTargetedPoison), 3, kDim);
    const FaultModel m2(with_attack(AttackKind::kTargetedPoison), 3, kDim);
    sparsify::SparseVector once = clean;
    sparsify::SparseVector twice = clean;
    m.attack_payload(5, 2, once);
    m2.attack_payload(5, 2, twice);
    EXPECT_EQ(once, twice);
  }
}

// ---------------- robust statistics on hand-built groups --------------------

struct RobustRun {
  std::vector<float> agg;
  std::vector<std::uint32_t> stamp;
  sparsify::RobustStats stats;
};

RobustRun reduce_robust(const std::vector<sparsify::SparseVector>& uploads,
                        const std::vector<double>& weights, std::size_t dim,
                        const sparsify::RobustConfig& cfg, std::size_t shards) {
  RobustRun r;
  r.agg.assign(dim, 0.0f);
  r.stamp.assign(dim, 0);
  sparsify::BucketAggregator aggregator;
  aggregator.run_robust(uploads, weights, dim, shards, nullptr, {}, cfg, r.agg.data(),
                        r.stamp.data(), 1, r.stats);
  return r;
}

TEST(RobustReduce, TrimmedMeanAndMedianSuppressOutliersExactly) {
  // Five clients transmit coordinate 0; one is a magnitude outlier. The plain
  // weighted sum is dominated by it, the robust statistics are not.
  const std::vector<sparsify::SparseVector> uploads{
      {{0, 1.0f}}, {{0, 1.0f}}, {{0, 1.0f}}, {{0, 1.0f}}, {{0, 100.0f}}};
  const std::vector<double> weights{0.2, 0.2, 0.2, 0.2, 0.2};

  sparsify::RobustConfig cfg;
  cfg.enabled = true;
  cfg.kind = sparsify::RobustKind::kTrimmedMean;
  cfg.trim_fraction = 0.25;  // floor(0.25 * 5) = 1 trimmed per end
  cfg.min_support = 4;

  const RobustRun trimmed = reduce_robust(uploads, weights, 8, cfg, 1);
  // Survivors are three 1.0 contributions; rescaled by total weight 1.0.
  EXPECT_NEAR(trimmed.agg[0], 1.0f, 1e-6f);
  EXPECT_EQ(trimmed.stats.coords_robust, 1u);
  EXPECT_EQ(trimmed.stats.coords_thin, 0u);
  EXPECT_EQ(trimmed.stats.values_trimmed, 2u);

  cfg.kind = sparsify::RobustKind::kMedian;
  const RobustRun median = reduce_robust(uploads, weights, 8, cfg, 1);
  EXPECT_NEAR(median.agg[0], 1.0f, 1e-6f);  // total weight 1.0 × median 1.0

  // The plain weighted sum the robust statistic replaced: 0.2 · 104 = 20.8.
  std::vector<float> plain(8, 0.0f);
  std::vector<std::uint32_t> stamp(8, 0);
  sparsify::BucketAggregator aggregator;
  aggregator.run(uploads, weights, 8, 1, nullptr, {}, plain.data(), stamp.data(), 1);
  EXPECT_NEAR(plain[0], 20.8f, 1e-4f);
}

TEST(RobustReduce, ThinSupportFallsBackToClippedMean) {
  // Coordinate 0 has support 2 < min_support 4: too little overlap to trim,
  // so its plain weighted sum is kept with each contribution clamped to
  // clip_mult × the round's median |value| (1.0 here, from the four 1.0
  // entries among {1, 1, 100, 1}).
  const std::vector<sparsify::SparseVector> uploads{
      {{0, 1.0f}, {1, 1.0f}}, {{0, 100.0f}, {2, 1.0f}}};
  const std::vector<double> weights{0.25, 0.25};

  sparsify::RobustConfig cfg;
  cfg.enabled = true;
  cfg.kind = sparsify::RobustKind::kTrimmedMean;
  cfg.min_support = 4;
  cfg.clip_mult = 8.0;

  const RobustRun r = reduce_robust(uploads, weights, 8, cfg, 1);
  // 0.25 · 1 + 0.25 · clamp(100 → 8) = 2.25, instead of the plain 25.25.
  EXPECT_NEAR(r.agg[0], 2.25f, 1e-5f);
  EXPECT_EQ(r.stats.coords_robust, 0u);
  EXPECT_EQ(r.stats.coords_thin, 3u);  // all three touched coords are thin
}

TEST(RobustReduce, ByteIdenticalAcrossShardCounts) {
  // Random sparse uploads, both statistics: the robust reduce must produce
  // the same bits at every shard count, exactly like the plain reduce.
  constexpr std::size_t kDim = 512;
  util::Rng rng(314);
  std::vector<sparsify::SparseVector> uploads(40);
  std::vector<double> weights(uploads.size());
  double total_w = 0.0;
  std::vector<std::int32_t> coords(kDim);
  for (std::size_t c = 0; c < kDim; ++c) coords[c] = static_cast<std::int32_t>(c);
  for (std::size_t s = 0; s < uploads.size(); ++s) {
    rng.shuffle(coords);
    const std::size_t k = 8 + rng.uniform_u64(48);
    for (std::size_t i = 0; i < k; ++i) {
      uploads[s].push_back({coords[i], static_cast<float>(rng.normal(0.0, 2.0))});
    }
    weights[s] = rng.uniform(0.1, 1.0);
    total_w += weights[s];
  }
  for (double& w : weights) w /= total_w;

  for (const auto kind : {sparsify::RobustKind::kTrimmedMean, sparsify::RobustKind::kMedian}) {
    sparsify::RobustConfig cfg;
    cfg.enabled = true;
    cfg.kind = kind;
    const RobustRun ref = reduce_robust(uploads, weights, kDim, cfg, 1);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
      const RobustRun got = reduce_robust(uploads, weights, kDim, cfg, shards);
      EXPECT_EQ(got.stats.coords_robust, ref.stats.coords_robust) << "shards " << shards;
      EXPECT_EQ(got.stats.coords_thin, ref.stats.coords_thin) << "shards " << shards;
      EXPECT_EQ(got.stats.values_trimmed, ref.stats.values_trimmed) << "shards " << shards;
      for (std::size_t j = 0; j < kDim; ++j) {
        ASSERT_EQ(got.stamp[j] == 1u, ref.stamp[j] == 1u) << "shards " << shards << " j " << j;
        if (ref.stamp[j] == 1u) {
          ASSERT_EQ(got.agg[j], ref.agg[j]) << "shards " << shards << " j " << j;
        }
      }
    }
  }
}

// ---------------- attacked simulation: determinism + reputation -------------

SimulationConfig attacked_sim(std::size_t threads) {
  SimulationConfig cfg = base_sim(threads);
  cfg.faults.adversary.attack = AttackKind::kSignFlip;
  cfg.faults.adversary.byzantine_fraction = 0.3;
  cfg.faults.adversary.cohort_seed = 41;
  cfg.faults.seed = 99;
  cfg.validation.enabled = true;
  cfg.robust.enabled = true;
  cfg.robust.kind = sparsify::RobustKind::kTrimmedMean;
  return cfg;
}

TEST(ByzantineRun, AttackedDefendedTraceIsThreadAndShardInvariant) {
  const auto t1 = run_fixed_k("fab_topk", 20.0, attacked_sim(1));
  std::size_t byz = 0;
  for (const auto& rec : t1.records) byz += rec.byzantine;
  ASSERT_GT(byz, 0u) << "the cohort never fired; the invariance check is vacuous";

  const auto t2 = run_fixed_k("fab_topk", 20.0, attacked_sim(2));
  const auto t8 = run_fixed_k("fab_topk", 20.0, attacked_sim(8));
  expect_identical(t1, t2, "attacked/threads=1vs2");
  expect_identical(t1, t8, "attacked/threads=1vs8");

  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    SimulationConfig cfg = attacked_sim(2);
    cfg.shards = shards;
    const auto sharded = run_fixed_k("fab_topk", 20.0, cfg);
    expect_identical(t1, sharded, "attacked/shards=" + std::to_string(shards));
  }
}

TEST(ByzantineRun, CleanRunFalsePositivesStayRareAndNeverQuarantine) {
  // No adversary. An honest client with a divergent local gradient can still
  // land below the suspect-cosine threshold on a noisy round — false-positive
  // suspects are expected and tolerated. What must hold: they stay rare and
  // isolated (trust stays high), and note_aligned clears the strikes between
  // occurrences so no honest client ever accumulates the consecutive streak
  // that quarantine requires.
  SimulationConfig cfg = base_sim(2);
  cfg.robust.enabled = true;
  cfg.validation.enabled = true;
  const auto res = run_fixed_k("fab_topk", 20.0, cfg);
  std::size_t suspects = 0;
  double min_trust = 1.0;
  for (const auto& rec : res.records) {
    suspects += rec.suspects;
    min_trust = std::min(min_trust, rec.trust);
    EXPECT_EQ(rec.byzantine, 0u) << "round " << rec.round;
    EXPECT_EQ(rec.quarantined, 0u) << "round " << rec.round;
  }
  EXPECT_LT(suspects, res.records.size() / 2);  // rare: well under 1 per round
  EXPECT_GT(min_trust, 0.75);
  EXPECT_TRUE(std::isfinite(res.final_loss));
}

TEST(ByzantineRun, ReputationQuarantinesTheSignFlipCohort) {
  // 50 clients, 20% sign-flip cohort, long quarantine: the reputation pass
  // must flag the flippers (anti-aligned with the trimmed aggregate), strike
  // them through the validator, and quarantine them — after which the rounds
  // run at full trust again because the poison is gone.
  SimulationConfig cfg;
  cfg.batch = 2;
  cfg.max_rounds = 30;
  cfg.eval_every = 0;
  cfg.threads = 2;
  cfg.seed = 23;
  cfg.faults.adversary.attack = AttackKind::kSignFlip;
  cfg.faults.adversary.byzantine_fraction = 0.2;
  cfg.faults.adversary.cohort_seed = 17;
  cfg.validation.enabled = true;
  cfg.validation.quarantine_rounds = cfg.max_rounds;
  cfg.robust.enabled = true;
  cfg.robust.kind = sparsify::RobustKind::kTrimmedMean;

  data::SyntheticConfig dc;
  dc.num_classes = 4;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  dc.num_clients = 50;
  dc.samples_per_client = 4;
  dc.test_samples = 64;
  dc.seed = 23;
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, data::make_synthetic(dc), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(48.0));
  const auto res = sim.run();

  std::size_t byz = 0, suspects = 0, quarantined = 0;
  double min_trust = 1.0;
  for (const auto& rec : res.records) {
    byz += rec.byzantine;
    suspects += rec.suspects;
    quarantined += rec.quarantined;
    min_trust = std::min(min_trust, rec.trust);
  }
  EXPECT_GT(byz, 0u);
  EXPECT_GT(suspects, 0u);         // the reputation pass flagged the cohort
  EXPECT_GT(quarantined, 0u);      // and the strikes engaged quarantine
  EXPECT_LT(min_trust, 1.0);       // trust dipped while the attack was live
  // Once the cohort is quarantined the trailing rounds are clean again.
  EXPECT_EQ(res.records.back().trust, 1.0);
  EXPECT_EQ(res.records.back().suspects, 0u);
  for (const float w : sim.client_weights(0)) ASSERT_TRUE(std::isfinite(w));
}

// ---------------- record / replay of attacked runs --------------------------

TEST(ByzantineReplay, AttackedSyncRunReplaysAtEveryShardCount) {
  SimulationConfig cfg = attacked_sim(2);
  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  RoundRecorder recorder(dim, "fab_topk", 5, cfg.faults, cfg.validation, cfg.robust);
  {
    Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                   std::make_unique<online::FixedK>(20.0));
    sim.set_recorder(&recorder);
    sim.run();
  }
  const ReplayLog& log = recorder.log();
  ASSERT_GT(log.rounds.size(), 10u);
  EXPECT_TRUE(log.robust.enabled);
  bool saw_adversarial = false;
  for (const auto& r : log.rounds) {
    for (const FaultEvent& e : r.faults) saw_adversarial |= e.kind == FaultKind::kAdversarialTamper;
  }
  EXPECT_TRUE(saw_adversarial);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const ReplayResult res = replay(log, shards);
    EXPECT_EQ(res.rounds, log.rounds.size()) << "shards " << shards;
    EXPECT_EQ(res.mismatches, 0u) << "shards " << shards;
  }

  // Binary round-trip carries the robust config and still replays clean.
  const std::string path = ::testing::TempDir() + "byzantine_replay_test.bin";
  log.save(path);
  const ReplayLog loaded = ReplayLog::load(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.robust.enabled);
  EXPECT_EQ(static_cast<int>(loaded.robust.kind), static_cast<int>(log.robust.kind));
  EXPECT_EQ(loaded.fault_config.adversary.cohort_seed, log.fault_config.adversary.cohort_seed);
  const ReplayResult from_disk = replay(loaded, 8);
  EXPECT_EQ(from_disk.mismatches, 0u);
}

TEST(ByzantineReplay, AttackedBufferedAsyncRunReplays) {
  SimulationConfig cfg = attacked_sim(2);
  cfg.aggregation = AggregationMode::kBufferedAsync;
  cfg.async.buffer_size = 4;
  cfg.async.staleness_lambda = 0.25;

  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  RoundRecorder recorder(dim, "fab_topk", 5, cfg.faults, cfg.validation, cfg.robust);
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  sim.set_recorder(&recorder);
  sim.run();

  const ReplayLog& log = recorder.log();
  ASSERT_GT(log.rounds.size(), 5u);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const ReplayResult res = replay(log, shards);
    EXPECT_EQ(res.mismatches, 0u) << "shards " << shards;
  }
}

// ---------------- fuzz: screening + robust reduce under hostile inputs ------

TEST(RobustFuzz, ScreenAndRobustReduceSurviveAdversarialGenerators) {
  constexpr std::size_t kDim = 128;
  constexpr std::size_t kRounds = 150;
  util::Rng rng(2024);

  sparsify::UploadValidator validator;
  sparsify::ValidationConfig vcfg;
  vcfg.enabled = true;
  vcfg.min_valid_fraction = 0.25;
  validator.configure(vcfg);

  std::vector<std::int32_t> coords(kDim);
  for (std::size_t c = 0; c < kDim; ++c) coords[c] = static_cast<std::int32_t>(c);

  for (std::size_t round = 1; round <= kRounds; ++round) {
    const std::size_t n = 2 + rng.uniform_u64(14);
    const bool all_attackers = rng.bernoulli(0.1);  // whole flush hostile
    std::vector<sparsify::SparseVector> uploads(n);
    std::vector<double> weights(n, 1.0 / static_cast<double>(n));
    for (std::size_t s = 0; s < n; ++s) {
      sparsify::SparseVector& sv = uploads[s];
      rng.shuffle(coords);
      const std::size_t k = rng.uniform_u64(24);
      for (std::size_t i = 0; i < k; ++i) {
        sv.push_back({coords[i], static_cast<float>(rng.normal(0.0, 1.0))});
      }
      const int mutation =
          all_attackers || rng.bernoulli(0.4) ? static_cast<int>(rng.uniform_u64(6)) : -1;
      if (sv.empty() || mutation < 0) continue;
      const std::size_t victim = rng.uniform_u64(sv.size());
      switch (mutation) {
        case 0:  // duplicate index
          sv.push_back(sv[victim]);
          break;
        case 1:  // out-of-range index
          sv[victim].index = static_cast<std::int32_t>(kDim + rng.uniform_u64(1000));
          break;
        case 2:  // NaN value
          sv[victim].value = std::numeric_limits<float>::quiet_NaN();
          break;
        case 3:  // Inf value
          sv[victim].value = std::numeric_limits<float>::infinity();
          break;
        case 4:  // near-threshold norm blowup
          for (auto& e : sv) e.value *= static_cast<float>(rng.uniform(4.0, 1.0e6));
          break;
        case 5:  // adversarial-but-well-formed: sign flip (the robust stage's job)
          for (auto& e : sv) e.value = -e.value;
          break;
        default:
          break;
      }
    }

    sparsify::ValidationStats stats;
    const auto eff = validator.screen(uploads, {}, weights, kDim, round, stats);
    ASSERT_EQ(stats.checked, n) << "round " << round;

    // Invariant: nothing malformed survives the screen, ever.
    for (std::size_t s = 0; s < n; ++s) {
      ASSERT_TRUE(structurally_ok(uploads[s], kDim)) << "round " << round << " slot " << s;
    }
    // Invariant: surviving weights stay a convex combination outside
    // degraded rounds (passthrough or renormalized — either way sum 1).
    if (!stats.degraded) {
      double total = 0.0;
      for (const double w : eff) total += w;
      ASSERT_NEAR(total, 1.0, 1e-9) << "round " << round;
    }
    if (stats.degraded) continue;  // the engine skips aggregation here too

    // Robust reduce over the survivors: finite everywhere it touched, and
    // byte-identical between shard counts even on hostile rounds.
    sparsify::RobustConfig rcfg;
    rcfg.enabled = true;
    rcfg.kind = rng.bernoulli(0.5) ? sparsify::RobustKind::kTrimmedMean
                                   : sparsify::RobustKind::kMedian;
    const std::vector<double> effw(eff.begin(), eff.end());
    const RobustRun a = reduce_robust(uploads, effw, kDim, rcfg, 1);
    const RobustRun b = reduce_robust(uploads, effw, kDim, rcfg, 3);
    for (std::size_t j = 0; j < kDim; ++j) {
      ASSERT_EQ(a.stamp[j] == 1u, b.stamp[j] == 1u) << "round " << round << " j " << j;
      if (a.stamp[j] == 1u) {
        ASSERT_TRUE(std::isfinite(a.agg[j])) << "round " << round << " j " << j;
        ASSERT_EQ(a.agg[j], b.agg[j]) << "round " << round << " j " << j;
      }
    }
  }
}

}  // namespace
}  // namespace fedsparse::fl
