// Buffered-async round engine tests (fl/simulation.h, AggregationMode):
//  * zero-staleness async (accept-everything, no event triggering) must
//    reproduce the synchronized engine's traces byte-identically for every
//    upload-based method at every thread count — the barrier is the
//    degenerate schedule of the same staged pipeline, and this suite is the
//    proof that nothing on the shared path forked;
//  * staleness_weighting conserves mass (weights stay a convex combination)
//    and is a bitwise no-op on all-fresh flushes;
//  * deferred contributions are never dropped: a client beyond the buffer
//    catches up at the next flush with the right staleness, and the pending
//    buffer drains;
//  * the event timeline is built serially and is identical across thread
//    counts.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/event_timeline.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/extended_sign_ogd.h"
#include "online/factory.h"
#include "sparsify/method.h"

namespace fedsparse::fl {
namespace {

data::SyntheticConfig tiny_dataset(std::uint64_t seed = 1) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = 10;
  cfg.samples_per_client = 24;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 64;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 2;
  cfg.seed = seed;
  return cfg;
}

nn::ModelFactory tiny_model() { return nn::mlp(16, {12}, 4); }

SimulationConfig base_sim(std::size_t threads = 2) {
  SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 40;
  cfg.comm_time = 5.0;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;
  cfg.eval_test_samples = 0;
  cfg.threads = threads;
  cfg.seed = 7;
  return cfg;
}

SimulationResult run_fixed_k(const std::string& method, double k, SimulationConfig cfg,
                             std::uint64_t data_seed = 1) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::make_unique<online::FixedK>(k));
  return sim.run();
}

SimulationResult run_adaptive(const std::string& method, SimulationConfig cfg,
                              std::uint64_t data_seed = 2) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  auto controller = std::make_unique<online::ExtendedSignOgd>(
      online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 10});
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::move(controller));
  return sim.run();
}

// Bitwise trace comparison, including the async-only record fields. The two
// runs must produce the *same bits*, not merely close values.
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RoundRecord& ra = a.records[i];
    const RoundRecord& rb = b.records[i];
    EXPECT_EQ(ra.time, rb.time) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_continuous, rb.k_continuous) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_used, rb.k_used) << label << " round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << label << " round " << ra.round;
    EXPECT_EQ(ra.uplink_values, rb.uplink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.downlink_values, rb.downlink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << label << " round " << ra.round;
    EXPECT_EQ(ra.mean_staleness, rb.mean_staleness) << label << " round " << ra.round;
    EXPECT_EQ(ra.buffered_stale, rb.buffered_stale) << label << " round " << ra.round;
    if (std::isnan(ra.global_loss)) {
      EXPECT_TRUE(std::isnan(rb.global_loss)) << label << " round " << ra.round;
    } else {
      EXPECT_EQ(ra.global_loss, rb.global_loss) << label << " round " << ra.round;
      EXPECT_EQ(ra.accuracy, rb.accuracy) << label << " round " << ra.round;
    }
  }
  EXPECT_EQ(a.k_sequence, b.k_sequence) << label;
  EXPECT_EQ(a.contributed_totals, b.contributed_totals) << label;
  EXPECT_EQ(a.rounds_run, b.rounds_run) << label;
  EXPECT_EQ(a.total_time, b.total_time) << label;
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
  EXPECT_EQ(a.final_accuracy, b.final_accuracy) << label;
  EXPECT_EQ(a.invalid_probe_rounds, b.invalid_probe_rounds) << label;
}

// ---------------- zero-staleness async ≡ sync (the degenerate barrier) ------

class AsyncDegenerateBarrier : public ::testing::TestWithParam<const char*> {};

TEST_P(AsyncDegenerateBarrier, FixedKTraceMatchesSyncAtEveryThreadCount) {
  const std::string method = GetParam();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SimulationConfig sync_cfg = base_sim(threads);
    const auto sync = run_fixed_k(method, 20.0, sync_cfg);
    SimulationConfig async_cfg = base_sim(threads);
    async_cfg.aggregation = AggregationMode::kBufferedAsync;
    async_cfg.async.buffer_size = 0;   // accept every arrival
    async_cfg.async.trigger_scale = 0.0;
    const auto async = run_fixed_k(method, 20.0, async_cfg);
    expect_identical(sync, async, method + "/threads=" + std::to_string(threads));
    for (const auto& rec : async.records) {
      EXPECT_EQ(rec.mean_staleness, 0.0) << method;
      EXPECT_EQ(rec.buffered_stale, 0u) << method;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllUploadMethods, AsyncDegenerateBarrier,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk"));

TEST(AsyncDegenerateBarrier, AdaptiveControllerTraceMatchesSync) {
  // The probe path + controller damping: at zero staleness the damping
  // factor is exactly 1.0, so Algorithm 3's k-sequence must not move a bit.
  for (const char* method : {"fab_topk", "fub_topk", "unidirectional_topk"}) {
    SimulationConfig cfg = base_sim();
    cfg.max_rounds = 60;
    const auto sync = run_adaptive(method, cfg);
    cfg.aggregation = AggregationMode::kBufferedAsync;
    const auto async = run_adaptive(method, cfg);
    expect_identical(sync, async, std::string(method) + "/adaptive");
  }
}

TEST(AsyncDegenerateBarrier, PartialParticipationAndChurnMatchSync) {
  // Sampling + churn consume rng_ before the schedule is built; the async
  // branch must not shift a single draw.
  SimulationConfig cfg = base_sim();
  cfg.participation = 0.4;
  cfg.network.p_drop = 0.2;
  cfg.network.p_recover = 0.5;
  const auto sync = run_fixed_k("fab_topk", 12.0, cfg);
  cfg.aggregation = AggregationMode::kBufferedAsync;
  const auto async = run_fixed_k("fab_topk", 12.0, cfg);
  expect_identical(sync, async, "fab_topk/participation+churn");
}

TEST(AsyncEngine, FedAvgRejectsBufferedAsync) {
  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  SimulationConfig cfg = base_sim();
  cfg.aggregation = AggregationMode::kBufferedAsync;
  EXPECT_THROW(Simulation(cfg, std::move(dataset), factory, sparsify::make_method("fedavg", dim, 5),
                          std::make_unique<online::FixedK>(20.0)),
               std::invalid_argument);
}

// ---------------- staleness weighting: mass conservation --------------------

TEST(StalenessWeighting, AllFreshIsBitwiseNoOp) {
  std::vector<double> w{0.3, 0.2, 0.5};
  const std::vector<double> orig = w;
  const std::vector<std::size_t> staleness{0, 0, 0};
  staleness_weighting(w, staleness, 0.25);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(w[i], orig[i]);
}

TEST(StalenessWeighting, DiscountedWeightsStillSumToOne) {
  std::vector<double> w{0.3, 0.2, 0.5};
  const std::vector<std::size_t> staleness{0, 3, 1};
  staleness_weighting(w, staleness, 0.25);
  double total = 0.0;
  for (const double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The fresh slot gains relative mass, stale slots lose it.
  EXPECT_GT(w[0], 0.3);
  EXPECT_LT(w[1], 0.2);
  EXPECT_LT(w[2], 0.5);
}

TEST(StalenessWeighting, DiscountIsMonotoneInStaleness) {
  // Equal raw weights: the staler slot must end strictly lighter.
  std::vector<double> w{0.25, 0.25, 0.25, 0.25};
  const std::vector<std::size_t> staleness{0, 1, 2, 5};
  staleness_weighting(w, staleness, 0.5);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
  EXPECT_GT(w[2], w[3]);
  double total = 0.0;
  for (const double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// ---------------- deferral, catch-up and drain ------------------------------

TEST(AsyncEngine, DeferredUploadsCatchUpAtNextFlushWithStaleness) {
  // Homogeneous network, full participation, N=10, buffer of 4: all ten
  // arrivals tie, ids 0–3 are accepted, 4–9 defer. Next round they catch up
  // (staleness 1) alongside the four fresh accepts, emptying the buffer —
  // the schedule alternates 4-flush / 10-flush deterministically.
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 8;
  cfg.aggregation = AggregationMode::kBufferedAsync;
  cfg.async.buffer_size = 4;
  cfg.async.staleness_lambda = 0.25;
  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  const auto res = sim.run();
  ASSERT_EQ(res.records.size(), 8u);
  for (std::size_t r = 0; r < res.records.size(); ++r) {
    const RoundRecord& rec = res.records[r];
    if (r % 2 == 0) {  // accept-only round
      EXPECT_EQ(rec.participants, 4u) << "round " << rec.round;
      EXPECT_EQ(rec.mean_staleness, 0.0) << "round " << rec.round;
      EXPECT_EQ(rec.buffered_stale, 6u) << "round " << rec.round;
    } else {  // catch-up round: 4 fresh + 6 stale, buffer drained
      EXPECT_EQ(rec.participants, 10u) << "round " << rec.round;
      EXPECT_EQ(rec.mean_staleness, 0.6) << "round " << rec.round;
      EXPECT_EQ(rec.buffered_stale, 0u) << "round " << rec.round;
    }
  }
  // Mass is never dropped: every client contributed, and the run ends with
  // an empty buffer (even number of rounds).
  EXPECT_EQ(sim.pending_uploads(), 0u);
  for (const std::size_t c : res.contributed_totals) EXPECT_GT(c, 0u);
}

TEST(AsyncEngine, PendingBufferTracksRecordsUnderChurn) {
  // Churn + small buffer: offline clients hold their deferred contribution
  // until they rejoin (the catch-up flush). The recorded buffer depth must
  // equal the engine's pending count after the last round, and staleness
  // must actually materialize somewhere.
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 30;
  cfg.aggregation = AggregationMode::kBufferedAsync;
  cfg.async.buffer_size = 3;
  cfg.network.p_drop = 0.25;
  cfg.network.p_recover = 0.4;
  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  const auto res = sim.run();
  ASSERT_FALSE(res.records.empty());
  EXPECT_EQ(sim.pending_uploads(), res.records.back().buffered_stale);
  bool saw_staleness = false;
  for (const auto& rec : res.records) {
    if (rec.mean_staleness > 0.0) saw_staleness = true;
    EXPECT_TRUE(std::isfinite(rec.mean_staleness)) << "round " << rec.round;
  }
  EXPECT_TRUE(saw_staleness);
}

TEST(AsyncEngine, EventTriggeredUploadsJoinTheRound) {
  // Partial participation with triggering on: unsampled clients whose
  // accumulator mass clears the selection-threshold hint volunteer uploads,
  // so some rounds must exceed the sampled count (ceil(0.4 * 10) = 4).
  SimulationConfig cfg = base_sim();
  cfg.participation = 0.4;
  cfg.aggregation = AggregationMode::kBufferedAsync;
  cfg.async.trigger_scale = 1.0;
  const auto res = run_fixed_k("fab_topk", 12.0, cfg);
  bool triggered = false;
  for (const auto& rec : res.records) {
    if (rec.participants > 4) triggered = true;
  }
  EXPECT_TRUE(triggered);
}

// ---------------- event-order determinism -----------------------------------

TEST(AsyncEngine, EventTimelineIsIdenticalAcrossThreadCounts) {
  // The schedule is built serially from the network model alone; runs that
  // differ only in thread count must produce the same event sequence AND the
  // same full trace. (timeline() exposes the last round's schedule.)
  auto run_one = [&](std::size_t threads, std::vector<Event>& events) {
    SimulationConfig cfg = base_sim(threads);
    cfg.max_rounds = 20;
    cfg.participation = 0.6;
    cfg.aggregation = AggregationMode::kBufferedAsync;
    cfg.async.buffer_size = 3;
    cfg.network.p_drop = 0.2;
    cfg.network.p_recover = 0.5;
    auto dataset = data::make_synthetic(tiny_dataset());
    auto factory = tiny_model();
    util::Rng probe(1);
    const std::size_t dim = factory(probe)->dim();
    Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                   std::make_unique<online::FixedK>(12.0));
    const auto res = sim.run();
    const auto span = sim.timeline().events();
    events.assign(span.begin(), span.end());
    return res;
  };
  std::vector<Event> e1, e2, e8;
  const auto r1 = run_one(1, e1);
  const auto r2 = run_one(2, e2);
  const auto r8 = run_one(8, e8);
  expect_identical(r1, r2, "async/threads=1vs2");
  expect_identical(r1, r8, "async/threads=1vs8");
  ASSERT_EQ(e1.size(), e2.size());
  ASSERT_EQ(e1.size(), e8.size());
  ASSERT_FALSE(e1.empty());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].time, e2[i].time) << "event " << i;
    EXPECT_EQ(e1[i].kind, e2[i].kind) << "event " << i;
    EXPECT_EQ(e1[i].client, e2[i].client) << "event " << i;
    EXPECT_EQ(e1[i].time, e8[i].time) << "event " << i;
    EXPECT_EQ(e1[i].kind, e8[i].kind) << "event " << i;
    EXPECT_EQ(e1[i].client, e8[i].client) << "event " << i;
  }
  // The timeline always closes with the flush event.
  EXPECT_EQ(e1.back().kind, EventKind::kBufferFlush);
}

}  // namespace
}  // namespace fedsparse::fl
