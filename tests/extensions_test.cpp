// Tests for the extension features beyond the paper's evaluation:
// quantization on top of GS, the composite resource objective, partial
// client participation, and heterogeneous client compute times.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "data/synthetic.h"
#include "fl/resource.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/extended_sign_ogd.h"
#include "sparsify/fab_topk.h"
#include "sparsify/quantize.h"
#include "util/rng.h"

namespace fedsparse {
namespace {

// ------------------------------------------------------- quantization ------

TEST(Quantizer, IsUnbiasedOverRepetitions) {
  sparsify::QuantizerConfig cfg;
  cfg.levels = 4;
  cfg.seed = 1;
  sparsify::StochasticQuantizer q(cfg);
  const float original = 0.37f;
  double sum = 0.0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    sparsify::SparseVector sv{{0, original}, {1, -1.0f}};  // scale anchor = 1.0
    q.quantize(sv);
    sum += sv[0].value;
  }
  EXPECT_NEAR(sum / trials, original, 0.01);
}

TEST(Quantizer, ValuesLandOnTheGridAndKeepSign) {
  sparsify::QuantizerConfig cfg;
  cfg.levels = 5;
  sparsify::StochasticQuantizer q(cfg);
  sparsify::SparseVector sv{{0, 0.31f}, {1, -0.77f}, {2, 1.0f}};
  const float scale = q.quantize(sv);
  EXPECT_FLOAT_EQ(scale, 1.0f);
  for (const auto& e : sv) {
    const float normalized = std::fabs(e.value) / scale * 5.0f;
    EXPECT_NEAR(normalized, std::round(normalized), 1e-5);
  }
  EXPECT_LE(sv[1].value, 0.0f);
  EXPECT_GE(sv[0].value, 0.0f);
}

TEST(Quantizer, ZeroAndEmptyInputs) {
  sparsify::StochasticQuantizer q({15, 3});
  sparsify::SparseVector empty;
  EXPECT_FLOAT_EQ(q.quantize(empty), 0.0f);
  sparsify::SparseVector zeros{{0, 0.0f}, {4, 0.0f}};
  EXPECT_FLOAT_EQ(q.quantize(zeros), 0.0f);
  EXPECT_THROW(sparsify::StochasticQuantizer({0, 1}), std::invalid_argument);
}

TEST(Quantizer, BitsPerValue) {
  EXPECT_NEAR(sparsify::StochasticQuantizer({15, 1}).bits_per_value(), 5.0, 1e-9);  // 4+sign
  EXPECT_NEAR(sparsify::StochasticQuantizer({1, 1}).bits_per_value(), 2.0, 1e-9);   // 1+sign
}

TEST(QuantizedMethod, RescalesCommunicationAccounting) {
  const std::size_t dim = 64, k = 8;
  util::Rng rng(5);
  std::vector<std::vector<float>> vecs(2, std::vector<float>(dim));
  for (auto& v : vecs) {
    for (auto& x : v) x = static_cast<float>(rng.normal());
  }
  std::vector<double> weights{0.5, 0.5};
  sparsify::RoundInput in;
  in.dim = dim;
  in.round = 1;
  in.data_weights = {weights.data(), weights.size()};
  for (const auto& v : vecs) in.client_vectors.push_back({v.data(), v.size()});

  sparsify::QuantizerConfig qcfg;
  qcfg.levels = 15;  // 5 bits incl. sign
  sparsify::QuantizedMethod method(std::make_unique<sparsify::FabTopK>(dim), qcfg);
  EXPECT_EQ(method.name(), "fab_topk+q15");
  const auto out = method.round(in, k);
  // Plain FAB charges 2k = 16 values; quantized: k·(1 + 5/32) = 9.25.
  EXPECT_NEAR(out.uplink_values, 8.0 * (1.0 + 5.0 / 32.0), 1e-9);
  EXPECT_LT(out.uplink_values, 16.0);
  EXPECT_EQ(out.update.size(), k);
}

TEST(QuantizedMethod, StillConvergesInTraining) {
  data::SyntheticConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.channels = 1;
  dcfg.height = 4;
  dcfg.width = 4;
  dcfg.num_clients = 4;
  dcfg.samples_per_client = 24;
  dcfg.test_samples = 64;
  dcfg.seed = 3;
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::SimulationConfig scfg;
  scfg.lr = 0.05f;
  scfg.batch = 8;
  scfg.max_rounds = 100;
  scfg.comm_time = 1.0;
  scfg.eval_every = 20;
  scfg.eval_samples_per_client = 0;
  scfg.eval_test_samples = 0;
  scfg.threads = 2;
  fl::Simulation sim(scfg, data::make_synthetic(dcfg), factory,
                     std::make_unique<sparsify::QuantizedMethod>(
                         std::make_unique<sparsify::FabTopK>(dim), sparsify::QuantizerConfig{}),
                     std::make_unique<online::FixedK>(20.0));
  const auto res = sim.run();
  EXPECT_LT(res.final_loss, res.records.front().train_loss);
}

// ---------------------------------------------------- resource model -------

TEST(ResourceModel, PureTimeMatchesTimingModel) {
  fl::ResourceModel r;
  r.timing = fl::TimingModel{10.0, 1.0, 1000};
  EXPECT_TRUE(r.is_pure_time());
  EXPECT_DOUBLE_EQ(r.round_cost(100, 100), r.timing.round_time(100, 100));
  EXPECT_DOUBLE_EQ(r.theta_cost(50), r.timing.theta(50));
}

TEST(ResourceModel, CompositeCostIsAdditive) {
  fl::ResourceModel r;
  r.timing = fl::TimingModel{10.0, 1.0, 1000};
  r.energy_per_compute = 2.0;
  r.energy_per_value = 0.01;
  r.money_per_value = 0.001;
  r.weight_time = 1.0;
  r.weight_energy = 3.0;
  r.weight_money = 100.0;
  const double up = 200, down = 100;
  const double expected = r.timing.round_time(up, down) + 3.0 * (2.0 + 0.01 * 300) + 100.0 *
                          (0.001 * 300);
  EXPECT_NEAR(r.round_cost(up, down), expected, 1e-12);
  EXPECT_FALSE(r.is_pure_time());
}

TEST(ResourceModel, EnergyDominatedCostPushesAdaptiveKDown) {
  // Communication is free in *time* (beta ~ 0) but expensive in *energy*:
  // the controller should still learn a small k because it minimizes the
  // composite cost — the paper's "replace time with another additive
  // resource" claim, exercised end to end.
  auto run = [&](double energy_weight) {
    data::SyntheticConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.channels = 1;
    dcfg.height = 4;
    dcfg.width = 4;
    dcfg.num_clients = 5;
    dcfg.samples_per_client = 24;
    dcfg.test_samples = 64;
    dcfg.seed = 4;
    auto factory = nn::mlp(16, {12}, 4);
    util::Rng probe(1);
    const std::size_t dim = factory(probe)->dim();
    fl::SimulationConfig scfg;
    scfg.lr = 0.05f;
    scfg.batch = 8;
    scfg.max_rounds = 150;
    scfg.comm_time = 0.01;  // time cost of communication ~ none
    scfg.eval_every = 30;
    scfg.threads = 2;
    scfg.energy_per_value = 0.01;
    scfg.weight_energy = energy_weight;
    auto controller = std::make_unique<online::ExtendedSignOgd>(online::ExtendedSignOgd::Config{
        2.0, static_cast<double>(dim), 0.0, 1.5, 10});
    fl::Simulation sim(scfg, data::make_synthetic(dcfg), factory,
                       sparsify::make_method("fab_topk", dim, 5), std::move(controller));
    const auto res = sim.run();
    double tail = 0.0;
    const std::size_t tail_n = res.k_sequence.size() / 4;
    for (std::size_t i = res.k_sequence.size() - tail_n; i < res.k_sequence.size(); ++i) {
      tail += res.k_sequence[i];
    }
    return tail / static_cast<double>(tail_n);
  };
  const double k_free = run(0.0);     // no energy term: k stays large
  const double k_metered = run(30.0); // heavy energy term: k must shrink
  EXPECT_GT(k_free, k_metered);
}

// ------------------------------------------- participation / stragglers ----

fl::SimulationConfig small_sim() {
  fl::SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 40;
  cfg.comm_time = 1.0;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;
  cfg.eval_test_samples = 0;
  cfg.threads = 2;
  cfg.seed = 9;
  return cfg;
}

data::SyntheticConfig small_data(std::uint64_t seed = 8) {
  data::SyntheticConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.channels = 1;
  dcfg.height = 4;
  dcfg.width = 4;
  dcfg.num_clients = 8;
  dcfg.samples_per_client = 20;
  dcfg.test_samples = 64;
  dcfg.seed = seed;
  return dcfg;
}

fl::SimulationResult run_small(fl::SimulationConfig cfg, std::uint64_t data_seed = 8) {
  auto factory = nn::mlp(16, {8}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg, data::make_synthetic(small_data(data_seed)), factory,
                     sparsify::make_method("fab_topk", dim, 5),
                     std::make_unique<online::FixedK>(15.0));
  return sim.run();
}

TEST(Participation, ValidatesRange) {
  auto cfg = small_sim();
  cfg.participation = 0.0;
  auto factory = nn::mlp(16, {8}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  EXPECT_THROW(fl::Simulation(cfg, data::make_synthetic(small_data()), factory,
                              sparsify::make_method("fab_topk", dim, 5),
                              std::make_unique<online::FixedK>(15.0)),
               std::invalid_argument);
}

TEST(Participation, PartialSamplingStillLearnsAndSpreadsContributions) {
  auto cfg = small_sim();
  cfg.participation = 0.5;
  cfg.max_rounds = 80;
  const auto res = run_small(cfg);
  EXPECT_LT(res.final_loss, res.records.front().train_loss);
  // With 8 clients at 50% participation over 80 rounds, every client should
  // have been sampled (and hence contributed) at least once.
  for (const auto total : res.contributed_totals) EXPECT_GT(total, 0u);
  // But contributions are roughly half of the full-participation run's.
  auto full_cfg = small_sim();
  full_cfg.max_rounds = 80;
  const auto full = run_small(full_cfg);
  std::size_t part_sum = 0, full_sum = 0;
  for (const auto v : res.contributed_totals) part_sum += v;
  for (const auto v : full.contributed_totals) full_sum += v;
  EXPECT_LT(part_sum, full_sum);
}

TEST(Participation, FullParticipationSelectsEveryoneEveryRound) {
  auto cfg = small_sim();
  cfg.max_rounds = 10;
  const auto res = run_small(cfg);
  // FAB fairness: with N=8, k=15 -> everyone contributes >= 1 per round.
  for (const auto total : res.contributed_totals) {
    EXPECT_GE(total, res.rounds_run);
  }
}

TEST(Heterogeneity, StragglersInflateRoundCost) {
  auto base = small_sim();
  base.max_rounds = 20;
  const auto homogeneous = run_small(base);
  auto het = base;
  het.compute_time_spread = 0.8;
  const auto heterogeneous = run_small(het);
  EXPECT_GT(heterogeneous.total_time, homogeneous.total_time);
}

TEST(Heterogeneity, PartialParticipationCanDodgeStragglers) {
  // With sampling, some rounds exclude the slowest client, so per-round cost
  // is sometimes lower than the all-clients max — total time per round
  // (averaged) must be <= the full-participation straggler-bound run.
  auto full = small_sim();
  full.max_rounds = 40;
  full.compute_time_spread = 1.0;
  const auto all_in = run_small(full);
  auto sampled = full;
  sampled.participation = 0.25;
  const auto some_in = run_small(sampled);
  const double avg_all = all_in.total_time / static_cast<double>(all_in.rounds_run);
  const double avg_some = some_in.total_time / static_cast<double>(some_in.rounds_run);
  EXPECT_LE(avg_some, avg_all + 1e-9);
}

TEST(Heterogeneity, DeterministicGivenSeed) {
  auto cfg = small_sim();
  cfg.compute_time_spread = 0.5;
  cfg.participation = 0.5;
  const auto a = run_small(cfg);
  const auto b = run_small(cfg);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.contributed_totals, b.contributed_totals);
}

}  // namespace
}  // namespace fedsparse
