// Robustness / boundary-condition tests across the whole stack: degenerate
// client counts, extreme sparsity degrees, zero gradients, exhausted replay
// sequences, and unusual-but-legal configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/controller.h"
#include "online/extended_sign_ogd.h"
#include "sparsify/fab_topk.h"
#include "sparsify/method.h"
#include "sparsify/quantize.h"
#include "sparsify/topk.h"

namespace fedsparse {
namespace {

data::SyntheticConfig micro_data(std::size_t clients, std::size_t samples,
                                 std::uint64_t seed = 3) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 3;
  cfg.channels = 1;
  cfg.height = 3;
  cfg.width = 3;
  cfg.num_clients = clients;
  cfg.samples_per_client = samples;
  cfg.samples_spread = 0.0;
  cfg.test_samples = 32;
  cfg.seed = seed;
  return cfg;
}

fl::SimulationConfig micro_sim(std::size_t rounds) {
  fl::SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 4;
  cfg.max_rounds = rounds;
  cfg.comm_time = 1.0;
  cfg.eval_every = rounds;  // evaluate once at the end
  cfg.threads = 1;
  cfg.seed = 5;
  return cfg;
}

fl::SimulationResult run_micro(const char* method, double k, std::size_t clients,
                               std::size_t samples, std::size_t rounds) {
  auto factory = nn::mlp(9, {6}, 3);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(micro_sim(rounds), data::make_synthetic(micro_data(clients, samples)),
                     factory, sparsify::make_method(method, dim, 7),
                     std::make_unique<online::FixedK>(k));
  return sim.run();
}

struct EdgeCase {
  const char* method;
  double k;
  std::size_t clients;
};

class DegenerateConfigs : public ::testing::TestWithParam<EdgeCase> {};

TEST_P(DegenerateConfigs, RunsToCompletionWithFiniteLoss) {
  const auto [method, k, clients] = GetParam();
  const auto res = run_micro(method, k, clients, 8, 12);
  EXPECT_EQ(res.rounds_run, 12u);
  EXPECT_TRUE(std::isfinite(res.final_loss)) << method;
  EXPECT_TRUE(std::isfinite(res.total_time));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DegenerateConfigs,
    ::testing::Values(EdgeCase{"fab_topk", 1.0, 1},     // single client, k = 1
                      EdgeCase{"fab_topk", 1.0, 5},     // k < N: ⌊k/N⌋ = 0
                      EdgeCase{"fab_topk", 1e9, 3},     // k clamps to D
                      EdgeCase{"fub_topk", 1.0, 5},
                      EdgeCase{"unidirectional_topk", 2.0, 4},
                      EdgeCase{"periodic", 1.0, 2},
                      EdgeCase{"send_all", 1.0, 1},
                      EdgeCase{"fedavg", 2.0, 3}));

TEST(ZeroGradients, FabRoundOnZeroAccumulatorsIsANoopUpdate) {
  const std::size_t dim = 16;
  std::vector<std::vector<float>> zeros(3, std::vector<float>(dim, 0.0f));
  std::vector<double> weights(3, 1.0 / 3.0);
  sparsify::RoundInput in;
  in.dim = dim;
  in.round = 1;
  in.data_weights = {weights.data(), weights.size()};
  for (const auto& v : zeros) in.client_vectors.push_back({v.data(), v.size()});
  sparsify::FabTopK method(dim);
  const auto out = method.round(in, 4);
  ASSERT_EQ(out.update.size(), 4u);
  for (const auto& e : out.update) EXPECT_FLOAT_EQ(e.value, 0.0f);  // harmless update
}

TEST(ZeroGradients, TopKOfZerosIsDeterministic) {
  std::vector<float> zeros(10, 0.0f);
  const auto idx = sparsify::top_k_indices({zeros.data(), zeros.size()}, 3);
  EXPECT_EQ(idx, (std::vector<std::int32_t>{0, 1, 2}));  // index tie-break
}

TEST(ReplayExhaustion, SimulationOutlivesSequenceGracefully) {
  auto factory = nn::mlp(9, {6}, 3);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  // 3-entry sequence, 10 rounds: rounds 4..10 hold the last value.
  fl::Simulation sim(micro_sim(10), data::make_synthetic(micro_data(3, 8)), factory,
                     sparsify::make_method("fab_topk", dim, 7),
                     std::make_unique<online::ReplayK>(std::vector<double>{4.0, 8.0, 16.0}));
  const auto res = sim.run();
  ASSERT_EQ(res.k_sequence.size(), 10u);
  EXPECT_DOUBLE_EQ(res.k_sequence[0], 4.0);
  EXPECT_DOUBLE_EQ(res.k_sequence[2], 16.0);
  EXPECT_DOUBLE_EQ(res.k_sequence[9], 16.0);
}

TEST(ExtremeQuantization, OneLevelStillRuns) {
  // levels = 1 is sign-SGD-like: every transmitted value becomes ±scale or 0.
  sparsify::StochasticQuantizer q({1, 9});
  sparsify::SparseVector sv{{0, 0.9f}, {1, -0.2f}, {2, 1.0f}};
  q.quantize(sv);
  for (const auto& e : sv) {
    const float a = std::fabs(e.value);
    EXPECT_TRUE(a == 0.0f || a == 1.0f) << a;
  }
}

TEST(ExtremeQuantization, NonFiniteEntriesAreZeroedNotPropagated) {
  // Regression: a NaN entry never raises the shared max, so it used to ride
  // through rescaling untouched; an Inf entry drove the scale to Inf,
  // collapsing every finite value to 0 and turning Inf/Inf into NaN. The
  // guard zeroes non-finite entries instead; the finite ones still quantize
  // against a scale computed from finite entries only.
  sparsify::StochasticQuantizer q({8, 11});
  sparsify::SparseVector sv{{0, 1.0f},
                            {1, std::numeric_limits<float>::quiet_NaN()},
                            {2, -std::numeric_limits<float>::infinity()},
                            {3, -0.5f}};
  const float scale = q.quantize(sv);
  EXPECT_EQ(scale, 1.0f);
  for (const auto& e : sv) EXPECT_TRUE(std::isfinite(e.value)) << "index " << e.index;
  EXPECT_EQ(sv[1].value, 0.0f);
  EXPECT_EQ(sv[2].value, 0.0f);
  EXPECT_EQ(std::fabs(sv[0].value), 1.0f);  // the finite max keeps its scale

  // An all-non-finite payload has no usable magnitude at all: zero scale,
  // zeroed payload.
  sparsify::SparseVector bad{{0, std::numeric_limits<float>::infinity()},
                             {1, std::numeric_limits<float>::quiet_NaN()}};
  EXPECT_EQ(q.quantize(bad), 0.0f);
  EXPECT_EQ(bad[0].value, 0.0f);
  EXPECT_EQ(bad[1].value, 0.0f);
}

TEST(TimingEdge, ZeroCommunicationTimeIsPureCompute) {
  fl::TimingModel t{0.0, 1.0, 100};
  EXPECT_DOUBLE_EQ(t.round_time(1000, 1000), 1.0);
  EXPECT_DOUBLE_EQ(t.theta(50), 1.0);
}

TEST(ControllerEdge, TinySearchInterval) {
  online::ExtendedSignOgd ogd(online::ExtendedSignOgd::Config{2.0, 3.0, 0.0, 1.5, 4});
  for (int i = 0; i < 50; ++i) ogd.observe_sign(i % 2 ? 1 : -1);
  EXPECT_GE(ogd.current_k(), 2.0);
  EXPECT_LE(ogd.current_k(), 3.0);
}

TEST(ControllerEdge, ProbeNeverEscapesBounds) {
  online::ExtendedSignOgd ogd(online::ExtendedSignOgd::Config{2.0, 1000.0, 2.0, 1.5, 10});
  for (int i = 0; i < 30; ++i) {
    EXPECT_GE(ogd.probe_k(), 1.0);
    EXPECT_LT(ogd.probe_k(), std::max(ogd.current_k(), 2.0));
    ogd.observe_sign(1);  // keep pushing k to the bottom
  }
  EXPECT_DOUBLE_EQ(ogd.current_k(), 2.0);
  EXPECT_GE(ogd.probe_k(), 1.0);
}

TEST(DataEdge, TwoSampleClientsSurviveMinibatching) {
  const auto res = run_micro("fab_topk", 4.0, 4, 2, 8);  // 2 samples per client
  EXPECT_EQ(res.rounds_run, 8u);
  EXPECT_TRUE(std::isfinite(res.final_loss));
}

TEST(DataEdge, ManyMoreClientsThanClasses) {
  auto cfg = micro_data(12, 6);
  cfg.partition = data::PartitionKind::kOneClassPerClient;  // 12 clients, 3 classes
  const auto fed = data::make_synthetic(cfg);
  for (std::size_t c = 0; c < fed.clients.size(); ++c) {
    for (const int y : fed.clients[c].y) {
      EXPECT_EQ(y, static_cast<int>(c % 3));
    }
  }
}

TEST(QuantizedFedAvg, WrapperPassesThroughWeightAverage) {
  // Quantization only touches sparse updates; FedAvg's dense weight average
  // must pass through untouched.
  const std::size_t dim = 8;
  auto quantized = sparsify::QuantizedMethod(
      sparsify::make_method("fedavg", dim), sparsify::QuantizerConfig{});
  EXPECT_TRUE(quantized.local_update_style());
  std::vector<std::vector<float>> w(2, std::vector<float>(dim, 2.0f));
  std::vector<double> dw(2, 0.5);
  sparsify::RoundInput in;
  in.dim = dim;
  in.round = 2;  // aggregation round for period 2
  in.data_weights = {dw.data(), dw.size()};
  for (const auto& v : w) in.client_vectors.push_back({v.data(), v.size()});
  const auto out = quantized.round(in, 2);
  ASSERT_EQ(out.kind, sparsify::RoundOutcome::Kind::kWeightAverage);
  EXPECT_FLOAT_EQ(out.dense[0], 2.0f);
  EXPECT_EQ(out.uplink_values, static_cast<double>(dim));  // accounting unchanged
}

}  // namespace
}  // namespace fedsparse
