// Telemetry subsystem tests: MetricRegistry merge determinism across thread
// counts, histogram bucket placement, off-mode zero-allocation, span sink
// behavior, fl/metrics.cpp edge cases, and the two end-to-end contracts from
// the telemetry PR — an enabled run is byte-identical to a disabled run (the
// instrumentation may read clocks and bump integers but never perturb the
// simulation), and the emitted Chrome trace carries one complete span per
// pipeline stage per round.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/controller.h"
#include "sparsify/method.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace fedsparse {
namespace {

// Saves and restores the process-wide telemetry flag so tests in this binary
// (which share one registry and one flag) cannot leak state into each other.
class TelemetryGuard {
 public:
  TelemetryGuard() : prev_(util::telemetry_enabled()) {}
  ~TelemetryGuard() {
    util::set_telemetry_enabled(prev_);
    util::SpanSink::instance().discard();
  }

 private:
  bool prev_;
};

// ------------------------------------------------------------- registry ---

TEST(MetricRegistry, CounterPublishesOnlyWhileEnabled) {
  TelemetryGuard guard;
  util::MetricRegistry& reg = util::MetricRegistry::instance();
  const util::Counter c("test.stats.counter_basics");

  util::set_telemetry_enabled(false);
  c.add(5);  // disabled publish must be dropped
  util::set_telemetry_enabled(true);
  c.add(2);
  c.add();

  double value = -1.0;
  for (const util::MetricSample& s : reg.scrape()) {
    if (s.name == "test.stats.counter_basics") value = s.value;
  }
  EXPECT_EQ(value, 3.0);

  reg.reset();
  for (const util::MetricSample& s : reg.scrape()) {
    if (s.name == "test.stats.counter_basics") EXPECT_EQ(s.value, 0.0);
  }
}

TEST(MetricRegistry, KindMismatchThrows) {
  util::MetricRegistry& reg = util::MetricRegistry::instance();
  reg.counter("test.stats.kind_clash");
  EXPECT_THROW(reg.gauge("test.stats.kind_clash"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.stats.kind_clash", {1.0}), std::logic_error);
  // Same name + same kind is idempotent and returns the same id.
  EXPECT_EQ(reg.counter("test.stats.kind_clash"), reg.counter("test.stats.kind_clash"));
}

TEST(MetricRegistry, HistogramBucketBoundariesAreInclusiveUpper) {
  TelemetryGuard guard;
  util::set_telemetry_enabled(true);
  util::MetricRegistry& reg = util::MetricRegistry::instance();
  reg.reset();
  const util::Histogram h("test.stats.hist_bounds", {1.0, 2.0, 4.0});

  // le-semantics: bucket b counts v <= bounds[b]; past the last bound goes to
  // the overflow bucket.
  h.observe(0.5);
  h.observe(1.0);     // exactly on a bound stays in that bucket
  h.observe(1.5);
  h.observe(2.0);
  h.observe(2.0001);  // just past a bound spills to the next
  h.observe(4.0);
  h.observe(100.0);   // overflow

  for (const util::MetricSample& s : reg.scrape()) {
    if (s.name != "test.stats.hist_bounds") continue;
    ASSERT_EQ(s.bounds.size(), 3u);
    ASSERT_EQ(s.buckets.size(), 4u);
    EXPECT_EQ(s.buckets[0], 2u);
    EXPECT_EQ(s.buckets[1], 2u);
    EXPECT_EQ(s.buckets[2], 2u);
    EXPECT_EQ(s.buckets[3], 1u);
    EXPECT_EQ(s.value, 7.0);  // histogram sample value is the total count
    return;
  }
  FAIL() << "histogram never scraped";
}

// The same publish workload run on 1, 2, and 8 pool threads must scrape to
// identical totals: counters and histogram buckets are integer sums over
// shards, so the merge cannot depend on which thread published what.
TEST(MetricRegistry, ShardMergeIsDeterministicAcrossThreadCounts) {
  TelemetryGuard guard;
  util::set_telemetry_enabled(true);
  util::MetricRegistry& reg = util::MetricRegistry::instance();
  const util::Counter c("test.stats.merge_counter");
  const util::Histogram h("test.stats.merge_hist", {2.0, 5.0, 8.0});
  constexpr std::size_t kItems = 4096;

  struct Snapshot {
    double counter = -1.0;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Snapshot> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    reg.reset();
    util::ThreadPool pool(threads);
    pool.parallel_for(
        kItems,
        [&](std::size_t i) {
          c.add(i % 3 + 1);
          h.observe(static_cast<double>(i % 10));
        },
        /*grain=*/1);
    Snapshot snap;
    for (const util::MetricSample& s : reg.scrape()) {
      if (s.name == "test.stats.merge_counter") snap.counter = s.value;
      if (s.name == "test.stats.merge_hist") snap.buckets = s.buckets;
    }
    runs.push_back(std::move(snap));
  }

  // Absolute totals: sum over i of (i % 3 + 1), and i % 10 bucketed by
  // {<=2, <=5, <=8, overflow} -> {3, 3, 3, 1} of every 10.
  const double expected_count = static_cast<double>(kItems / 3 * 6 + (kItems % 3 >= 1 ? 1 : 0) +
                                                    (kItems % 3 >= 2 ? 2 : 0));
  for (const Snapshot& snap : runs) {
    EXPECT_EQ(snap.counter, expected_count);
    ASSERT_EQ(snap.buckets.size(), 4u);
    EXPECT_EQ(snap.buckets, runs.front().buckets);
  }
  EXPECT_EQ(runs[0].counter, runs[1].counter);
  EXPECT_EQ(runs[1].counter, runs[2].counter);
}

TEST(MetricRegistry, DisabledPublishesAllocateNoShard) {
  TelemetryGuard guard;
  util::set_telemetry_enabled(false);
  util::MetricRegistry& reg = util::MetricRegistry::instance();
  const util::Counter c("test.stats.offmode_counter");
  const util::Histogram h("test.stats.offmode_hist", {1.0});
  const std::size_t before = reg.shard_count();

  // Publishes from a thread that has never touched the registry: with
  // telemetry off they must early-return before materializing a shard.
  std::thread t([&] {
    for (int i = 0; i < 100; ++i) {
      c.add();
      h.observe(0.5);
    }
  });
  t.join();
  EXPECT_EQ(reg.shard_count(), before);
}

// ----------------------------------------------------------------- spans ---

TEST(SpanSink, DisabledScopesRecordNothing) {
  TelemetryGuard guard;
  util::set_telemetry_enabled(false);
  util::SpanSink::instance().discard();
  {
    FEDSPARSE_SPAN("test_disabled_span");
  }
  std::vector<util::Span> out;
  EXPECT_EQ(util::SpanSink::instance().drain(out), 0u);
}

TEST(SpanSink, DrainSortsByStartThenTrack) {
  TelemetryGuard guard;
  util::set_telemetry_enabled(true);
  util::SpanSink& sink = util::SpanSink::instance();
  sink.discard();
  // Recorded deliberately out of order; drain must return (start, track) order.
  sink.record("zeta", 30.0, 1.0);
  sink.record("alpha", 10.0, 2.0);
  sink.record("beta", 10.0, 3.0);
  std::vector<util::Span> out;
  ASSERT_EQ(sink.drain(out), 3u);
  EXPECT_STREQ(out[0].track, "alpha");
  EXPECT_STREQ(out[1].track, "beta");
  EXPECT_STREQ(out[2].track, "zeta");
  EXPECT_EQ(out[0].start_us, 10.0);
  EXPECT_EQ(out[2].start_us, 30.0);

  // A live scope records on destruction with a non-negative duration.
  {
    FEDSPARSE_SPAN("test_live_span");
  }
  out.clear();
  ASSERT_EQ(sink.drain(out), 1u);
  EXPECT_STREQ(out[0].track, "test_live_span");
  EXPECT_GE(out[0].dur_us, 0.0);
}

// --------------------------------------------------------- fl/metrics.cpp ---

TEST(FlMetrics, ContributionPerRoundZeroRoundsYieldsZeros) {
  const std::vector<std::size_t> totals = {40, 0, 12};
  const std::vector<double> out = fl::contribution_per_round(totals, 0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], 0.0);
}

TEST(FlMetrics, ContributionPerRoundEmptyTotalsYieldsEmpty) {
  EXPECT_TRUE(fl::contribution_per_round({}, 10).empty());
  EXPECT_TRUE(fl::contribution_per_round({}, 0).empty());
}

TEST(FlMetrics, ClientTrafficRowsRejectsMismatchedSpans) {
  const std::vector<double> up = {1.0, 2.0};
  const std::vector<double> down = {1.0, 2.0, 3.0};
  const std::vector<std::size_t> rounds = {4, 5};
  EXPECT_THROW(fl::client_traffic_rows(up, down, rounds), std::invalid_argument);
  EXPECT_THROW(fl::client_traffic_rows(up, up, {4}), std::invalid_argument);
  const auto rows = fl::client_traffic_rows(up, up, rounds);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].client, 1u);
  EXPECT_EQ(rows[1].uplink_bytes, 8.0);  // 2 values x 4 bytes
}

// ------------------------------------------- end-to-end telemetry contracts ---

data::SyntheticConfig tele_dataset() {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = 10;
  cfg.samples_per_client = 24;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 64;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 2;
  cfg.seed = 3;
  return cfg;
}

fl::SimulationResult run_sim(const std::string& method, std::size_t threads,
                             const fl::TelemetryConfig& telemetry) {
  fl::SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 20;
  cfg.comm_time = 5.0;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;
  cfg.eval_test_samples = 0;
  cfg.threads = threads;
  cfg.seed = 7;
  cfg.telemetry = telemetry;
  auto factory = nn::mlp(16, {12}, 4);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg, data::make_synthetic(tele_dataset()), factory,
                     sparsify::make_method(method, dim, 5),
                     std::make_unique<online::FixedK>(20.0));
  return sim.run();
}

void expect_identical(const fl::SimulationResult& a, const fl::SimulationResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const fl::RoundRecord& ra = a.records[i];
    const fl::RoundRecord& rb = b.records[i];
    EXPECT_EQ(ra.time, rb.time) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_continuous, rb.k_continuous) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_used, rb.k_used) << label << " round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << label << " round " << ra.round;
    EXPECT_EQ(ra.uplink_values, rb.uplink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.downlink_values, rb.downlink_values) << label << " round " << ra.round;
  }
  EXPECT_EQ(a.k_sequence, b.k_sequence) << label;
  EXPECT_EQ(a.contributed_totals, b.contributed_totals) << label;
  EXPECT_EQ(a.rounds_run, b.rounds_run) << label;
  EXPECT_EQ(a.total_time, b.total_time) << label;
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
}

// The telemetry acceptance contract: enabling spans + counters + trace export
// must not move a single bit of the simulation — instrumentation reads clocks
// and bumps integers, it never touches RNG draws or float order.
class TelemetryByteIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(TelemetryByteIdentity, OnEqualsOffAtThreads128) {
  const std::string method = GetParam();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    TelemetryGuard guard;
    const std::string tag =
        ::testing::TempDir() + "stats_ident_" + method + "_" + std::to_string(threads);
    fl::TelemetryConfig on;
    on.enabled = true;
    on.chrome_trace_path = tag + ".trace.json";
    on.metrics_jsonl_path = tag + ".metrics.jsonl";
    const auto off_run = run_sim(method, threads, fl::TelemetryConfig{});
    const auto on_run = run_sim(method, threads, on);
    expect_identical(off_run, on_run, method + "@t" + std::to_string(threads));
    std::remove(on.chrome_trace_path.c_str());
    std::remove(on.metrics_jsonl_path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(TopKMethods, TelemetryByteIdentity,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk"));

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TelemetryExport, ChromeTraceHasOneSpanPerStagePerRound) {
  TelemetryGuard guard;
  const std::string tag = ::testing::TempDir() + "stats_export";
  fl::TelemetryConfig on;
  on.enabled = true;
  on.chrome_trace_path = tag + ".trace.json";
  on.metrics_jsonl_path = tag + ".metrics.jsonl";
  const auto res = run_sim("fab_topk", 2, on);
  ASSERT_GT(res.rounds_run, 0u);

  const std::string trace = slurp(on.chrome_trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u) << "trace preamble";
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n") << "trace postamble";

  // One complete ("X") span per pipeline stage per round — the acceptance
  // criterion for the round trace.
  for (const char* stage :
       {"stage_begin", "stage_schedule", "stage_compute", "stage_server_round", "stage_probe",
        "stage_apply", "stage_account", "stage_record"}) {
    const std::string needle = std::string("\"name\":\"") + stage + "\",\"cat\":\"round\",\"ph\":\"X\"";
    EXPECT_EQ(count_occurrences(trace, needle), res.rounds_run) << stage;
  }
  // The shared pipeline stages appear too (fab_topk routes through them).
  EXPECT_GE(count_occurrences(trace, "\"name\":\"pipeline_aggregate\""), res.rounds_run);

  const std::string jsonl = slurp(on.metrics_jsonl_path);
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(count_occurrences(jsonl, "\n"), res.rounds_run);
  EXPECT_EQ(count_occurrences(jsonl, "{\"round\":"), res.rounds_run);
  EXPECT_GE(count_occurrences(jsonl, "\"uplink_bytes\":"), res.rounds_run);

  std::remove(on.chrome_trace_path.c_str());
  std::remove(on.metrics_jsonl_path.c_str());
}

}  // namespace
}  // namespace fedsparse
