// Unit tests for the tensor substrate: Matrix, GEMM variants, im2col/col2im.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tensor/im2col.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedsparse::tensor {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (auto& v : m.flat()) v = static_cast<float>(rng.normal());
  return m;
}

// Reference GEMM: direct triple loop on logical (possibly transposed) views.
Matrix naive_gemm(const Matrix& a, bool ta, const Matrix& b, bool tb, float alpha) {
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t k = ta ? a.rows() : a.cols();
  const std::size_t n = tb ? b.rows() : b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = alpha * static_cast<float>(acc);
    }
  }
  return c;
}

void expect_matrix_near(const Matrix& a, const Matrix& b, float tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Matrix, ConstructAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], 7.0f);
}

TEST(Matrix, VectorConstructorValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

struct GemmCase {
  bool ta, tb;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  util::Rng rng(42);
  const auto [ta, tb] = GetParam();
  // Logical op: (5x4) * (4x3).
  const Matrix a = ta ? random_matrix(4, 5, rng) : random_matrix(5, 4, rng);
  const Matrix b = tb ? random_matrix(3, 4, rng) : random_matrix(4, 3, rng);
  Matrix c;
  gemm(a, ta, b, tb, 2.0f, 0.0f, c);
  expect_matrix_near(c, naive_gemm(a, ta, b, tb, 2.0f), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTest,
                         ::testing::Values(GemmCase{false, false}, GemmCase{false, true},
                                           GemmCase{true, false}, GemmCase{true, true}));

TEST(Gemm, BetaAccumulates) {
  util::Rng rng(1);
  const Matrix a = random_matrix(3, 3, rng);
  const Matrix b = random_matrix(3, 3, rng);
  Matrix c(3, 3, 1.0f);
  gemm(a, false, b, false, 1.0f, 2.0f, c);
  Matrix expected = naive_gemm(a, false, b, false, 1.0f);
  for (auto& v : expected.flat()) v += 2.0f;
  expect_matrix_near(c, expected, 1e-4f);
}

TEST(Gemm, ThrowsOnDimensionMismatch) {
  Matrix a(2, 3), b(4, 5), c;
  EXPECT_THROW(gemm(a, false, b, false, 1.0f, 0.0f, c), std::invalid_argument);
}

TEST(Gemm, LargerRandomShapes) {
  util::Rng rng(77);
  const Matrix a = random_matrix(17, 23, rng);
  const Matrix b = random_matrix(23, 9, rng);
  Matrix c;
  gemm(a, false, b, false, 1.0f, 0.0f, c);
  expect_matrix_near(c, naive_gemm(a, false, b, false, 1.0f), 5e-4f);
}

TEST(Gemm, BlockedMatchesScalarReferenceAcrossTileBoundaries) {
  // Shapes chosen to cross every tile edge: MC=64 (m), KC=256 (k), NC=512 and
  // the 16-wide register tile (n), plus awkward remainders in each dimension.
  struct Shape {
    std::size_t m, k, n;
  };
  util::Rng rng(123);
  for (const auto& s : {Shape{130, 70, 90}, Shape{65, 257, 30}, Shape{3, 5, 513},
                        Shape{64, 256, 16}, Shape{1, 1, 1}, Shape{67, 300, 521}}) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix want(s.m, s.n);
    detail::gemm_nn_reference(a, b, 1.5f, want);
    Matrix got;
    gemm(a, false, b, false, 1.5f, 0.0f, got);
    ASSERT_EQ(got.rows(), s.m);
    ASSERT_EQ(got.cols(), s.n);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        // 1e-4 relative (absolute near zero): both kernels are float, they
        // only differ in summation order.
        const float tol = 1e-4f * std::max(1.0f, std::fabs(want.at(i, j)));
        EXPECT_NEAR(got.at(i, j), want.at(i, j), tol)
            << s.m << "x" << s.k << "x" << s.n << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Gemm, ThreadedMatchesSerialBitwise) {
  // Each C row belongs to exactly one thread and thread blocks are 4-aligned,
  // so every row hits the same micro-kernel as in the serial order — threading
  // must not change a single bit. alpha != 1 matters: the 4x16 kernel applies
  // alpha after k-accumulation while the tail kernel folds it per term, so a
  // misaligned block boundary would show up here.
  util::Rng rng(321);
  const Matrix a = random_matrix(150, 200, rng);
  const Matrix b = random_matrix(200, 170, rng);
  for (const float alpha : {1.0f, 1.5f}) {
    Matrix serial;
    gemm(a, false, b, false, alpha, 0.0f, serial);

    util::ThreadPool pool(4);
    set_parallel_pool(&pool);
    Matrix threaded;
    gemm(a, false, b, false, alpha, 0.0f, threaded);
    set_parallel_pool(nullptr);

    ASSERT_EQ(threaded.rows(), serial.rows());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(threaded.data()[i], serial.data()[i]) << "alpha " << alpha << " flat " << i;
    }
  }
}

// ------------------------------------------------ view GEMM entry points ---

TEST(MatrixView, SpanConstructorValidatesSize) {
  std::vector<float> buf(6, 0.0f);
  EXPECT_NO_THROW(MatrixView(std::span<float>{buf.data(), buf.size()}, 2, 3));
  EXPECT_THROW(MatrixView(std::span<float>{buf.data(), buf.size()}, 2, 2),
               std::invalid_argument);
  EXPECT_NO_THROW(ConstMatrixView(std::span<const float>{buf.data(), buf.size()}, 3, 2));
  EXPECT_THROW(ConstMatrixView(std::span<const float>{buf.data(), buf.size()}, 4, 2),
               std::invalid_argument);
}

TEST(GemmViews, RejectShapeMismatches) {
  Matrix a(3, 4), b(4, 5), c(3, 5), bad(2, 5);
  EXPECT_NO_THROW(gemm_nn(a, b, 1.0f, c));
  EXPECT_THROW(gemm_nn(a, b, 1.0f, bad), std::invalid_argument);
  EXPECT_THROW(gemm_nn(a, a, 1.0f, c), std::invalid_argument);
  Matrix bt(5, 4);
  EXPECT_NO_THROW(gemm_nt(a, bt, 1.0f, c));
  EXPECT_THROW(gemm_nt(a, b, 1.0f, c), std::invalid_argument);
  Matrix at(4, 3);
  EXPECT_NO_THROW(gemm_tn(at, b, 1.0f, c));
  EXPECT_THROW(gemm_tn(a, b, 1.0f, c), std::invalid_argument);
}

// Property sweep for the register-tiled nt/tn kernels: random shapes crossing
// the micro-kernel edges (2-row pairing and 4-wide B groups for nt, 4x16
// tiles for tn) plus degenerate 1xN / Nx1 cases.
TEST(GemmViews, NtTnMatchNaiveReferenceAcrossShapes) {
  struct Shape {
    std::size_t m, k, n;
  };
  util::Rng rng(555);
  for (const auto& s :
       {Shape{1, 1, 1}, Shape{1, 37, 1}, Shape{1, 8, 19}, Shape{19, 8, 1}, Shape{2, 16, 4},
        Shape{5, 23, 7}, Shape{32, 784, 128}, Shape{66, 1030, 65}, Shape{3, 5, 513},
        Shape{8, 576, 25}, Shape{25, 8, 576}}) {
    // gemm_nt: A (m x k) · Bᵀ with B stored (n x k).
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix bt = random_matrix(s.n, s.k, rng);
    Matrix c(s.m, s.n);
    gemm_nt(a, bt, 1.5f, c);
    const Matrix want_nt = naive_gemm(a, false, bt, true, 1.5f);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        const float tol = 1e-4f * std::max(1.0f, std::fabs(want_nt.at(i, j)));
        EXPECT_NEAR(c.at(i, j), want_nt.at(i, j), tol)
            << "nt " << s.m << "x" << s.k << "x" << s.n << " at (" << i << "," << j << ")";
      }
    }
    // gemm_tn: Aᵀ · B with A stored (k x m).
    const Matrix at = random_matrix(s.k, s.m, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix d(s.m, s.n);
    gemm_tn(at, b, 1.5f, d);
    const Matrix want_tn = naive_gemm(at, true, b, false, 1.5f);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        const float tol = 1e-4f * std::max(1.0f, std::fabs(want_tn.at(i, j)));
        EXPECT_NEAR(d.at(i, j), want_tn.at(i, j), tol)
            << "tn " << s.m << "x" << s.k << "x" << s.n << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GemmViews, AccumulateIntoExistingC) {
  // The view entry points are C += alpha·op(A)·op(B): preloaded C survives.
  util::Rng rng(556);
  const Matrix a = random_matrix(4, 9, rng);
  const Matrix bt = random_matrix(6, 9, rng);
  Matrix c(4, 6, 2.0f);
  gemm_nt(a, bt, 1.0f, c);
  const Matrix prod = naive_gemm(a, false, bt, true, 1.0f);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c.at(i, j), 2.0f + prod.at(i, j), 1e-4f);
    }
  }
}

TEST(GemmViews, ViewsOverSpansNeedNoCopy) {
  // Weights-as-flat-span is exactly how the layers call these entry points.
  std::vector<float> w = {1, 2, 3, 4, 5, 6};  // 2x3 row-major
  const ConstMatrixView wv(std::span<const float>{w.data(), w.size()}, 2, 3);
  Matrix x(1, 3);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 1.0f;
  x.at(0, 2) = 1.0f;
  Matrix y(1, 2);
  gemm_nt(x, wv, 1.0f, y);  // y = x · wᵀ
  EXPECT_FLOAT_EQ(y.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 15.0f);
}

TEST(GemmViews, NtTnThreadedMatchesSerialBitwise) {
  // nt: each C row's dot chains accumulate in a split-invariant order; tn:
  // thread blocks are 4-aligned like nn. Either way a threaded run must
  // reproduce the serial result bit for bit.
  util::Rng rng(557);
  const Matrix a = random_matrix(150, 200, rng);
  const Matrix bt = random_matrix(170, 200, rng);
  const Matrix at = random_matrix(200, 150, rng);
  const Matrix b = random_matrix(200, 170, rng);
  Matrix serial_nt(150, 170), serial_tn(150, 170);
  gemm_nt(a, bt, 1.5f, serial_nt);
  gemm_tn(at, b, 1.5f, serial_tn);

  util::ThreadPool pool(4);
  set_parallel_pool(&pool);
  Matrix threaded_nt(150, 170), threaded_tn(150, 170);
  gemm_nt(a, bt, 1.5f, threaded_nt);
  gemm_tn(at, b, 1.5f, threaded_tn);
  set_parallel_pool(nullptr);

  for (std::size_t i = 0; i < serial_nt.size(); ++i) {
    EXPECT_EQ(threaded_nt.data()[i], serial_nt.data()[i]) << "nt flat " << i;
    EXPECT_EQ(threaded_tn.data()[i], serial_tn.data()[i]) << "tn flat " << i;
  }
}

TEST(Matrix, ReshapeKeepsCapacityAndSkipsZeroFill) {
  Matrix m(8, 8, 3.0f);
  const float* before = m.data();
  m.reshape(4, 8);  // shrink: same buffer, no realloc
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.size(), 32u);           // size() tracks the logical shape
  EXPECT_EQ(m.flat().size(), 32u);
  EXPECT_FLOAT_EQ(m.at(0, 0), 3.0f);  // surviving contents untouched (not zeroed)
  m.reshape(8, 8);  // grow back within capacity: still no realloc
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(m.size(), 64u);
}

TEST(VecOps, AxpyScaleDotNorm) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{10, 20, 30};
  axpy(2.0f, {x.data(), 3}, {y.data(), 3});
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
  scale(0.5f, {y.data(), 3});
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_DOUBLE_EQ(dot({x.data(), 3}, {x.data(), 3}), 14.0);
  EXPECT_NEAR(norm2({x.data(), 3}), std::sqrt(14.0), 1e-12);
  zero({y.data(), 3});
  EXPECT_FLOAT_EQ(y[1], 0.0f);
}

TEST(Im2col, IdentityKernelGeometry) {
  // 1 channel, 3x3 image, 1x1 kernel: cols == image row-major.
  ConvGeometry g;
  g.channels = 1;
  g.height = 3;
  g.width = 3;
  g.ksize = 1;
  const float img[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  Matrix cols;
  im2col(img, g, cols);
  ASSERT_EQ(cols.rows(), 1u);
  ASSERT_EQ(cols.cols(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(cols.row(0)[i], img[i]);
}

TEST(Im2col, PaddingYieldsZeros) {
  ConvGeometry g;
  g.channels = 1;
  g.height = 2;
  g.width = 2;
  g.ksize = 3;
  g.pad = 1;
  const float img[4] = {1, 2, 3, 4};
  Matrix cols;
  im2col(img, g, cols);
  ASSERT_EQ(cols.rows(), 9u);   // 1*3*3
  ASSERT_EQ(cols.cols(), 4u);   // 2x2 output
  // Top-left kernel tap at output (0,0) reads padded (-1,-1) => 0.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  // Center tap (ky=1,kx=1) at output (0,0) reads (0,0) => 1.
  EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining adjoint
  // property that guarantees conv backward is consistent with forward.
  util::Rng rng(5);
  ConvGeometry g;
  g.channels = 2;
  g.height = 5;
  g.width = 4;
  g.ksize = 3;
  g.stride = 1;
  g.pad = 1;
  std::vector<float> x(g.image_size());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  Matrix cols;
  im2col(x.data(), g, cols);
  Matrix y(cols.rows(), cols.cols());
  for (auto& v : y.flat()) v = static_cast<float>(rng.normal());

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    lhs += static_cast<double>(cols.data()[i]) * y.data()[i];
  }
  std::vector<float> xt(g.image_size(), 0.0f);
  col2im(y, g, xt.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * xt[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, StrideTwoGeometry) {
  ConvGeometry g;
  g.channels = 1;
  g.height = 4;
  g.width = 4;
  g.ksize = 2;
  g.stride = 2;
  EXPECT_EQ(g.out_height(), 2u);
  EXPECT_EQ(g.out_width(), 2u);
  const float img[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  Matrix cols;
  im2col(img, g, cols);
  // Output (0,0) window is {1,2,5,6}; tap (0,0) reads 1, tap (1,1) reads 6.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(3, 0), 6.0f);
  // Output (1,1) window is {11,12,15,16}.
  EXPECT_FLOAT_EQ(cols.at(0, 3), 11.0f);
  EXPECT_FLOAT_EQ(cols.at(3, 3), 16.0f);
}

}  // namespace
}  // namespace fedsparse::tensor
