// Integration tests for the federated simulation: timing-model consistency,
// client mechanics, weight-synchronization invariants, convergence of every
// GS method, FedAvg ≡ send-all at period 1, and the adaptive-k plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "fl/timing.h"
#include "nn/models.h"
#include "online/extended_sign_ogd.h"
#include "online/factory.h"
#include "sparsify/method.h"

namespace fedsparse::fl {
namespace {

data::SyntheticConfig tiny_dataset(std::uint64_t seed = 1) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = 5;
  cfg.samples_per_client = 24;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 128;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 2;
  cfg.seed = seed;
  return cfg;
}

nn::ModelFactory tiny_model() { return nn::mlp(16, {12}, 4); }

SimulationConfig fast_sim(double beta = 10.0) {
  SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 60;
  cfg.comm_time = beta;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;  // tiny data: evaluate exactly
  cfg.eval_test_samples = 0;
  cfg.threads = 2;
  cfg.seed = 3;
  return cfg;
}

std::unique_ptr<Simulation> make_sim(const std::string& method, double fixed_k,
                                     SimulationConfig cfg = fast_sim(),
                                     std::uint64_t data_seed = 1) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  return std::make_unique<Simulation>(cfg, std::move(dataset), factory,
                                      sparsify::make_method(method, dim, 5),
                                      std::make_unique<online::FixedK>(fixed_k));
}

// ------------------------------------------------------------ timing -------

TEST(TimingModel, SendAllCostsExactlyBeta) {
  TimingModel t{/*comm_time=*/10.0, /*compute_time=*/1.0, /*dim=*/1000};
  EXPECT_DOUBLE_EQ(t.round_time(1000, 1000), 1.0 + 10.0);
}

TEST(TimingModel, TopKCostMatchesFormula) {
  TimingModel t{10.0, 1.0, 1000};
  // k-element GS: 2k values each way => 1 + β·2k/D.
  EXPECT_DOUBLE_EQ(t.theta(50.0), 1.0 + 10.0 * 2.0 * 50.0 / 1000.0);
}

TEST(TimingModel, FedAvgMatchedBudgetConsistency) {
  // Average FedAvg cost per round equals the k-element GS cost per round.
  const std::size_t dim = 10000;
  const std::size_t k = 100;
  TimingModel t{7.0, 1.0, dim};
  const double gs_per_round = t.theta(k) - t.compute_time;
  const std::size_t period = dim / (2 * k);
  const double fedavg_per_round =
      (t.round_time(dim, dim) - t.compute_time) / static_cast<double>(period);
  EXPECT_NEAR(gs_per_round, fedavg_per_round, 1e-9);
}

TEST(TimingModel, ThetaIsMonotoneInK) {
  TimingModel t{3.0, 1.0, 500};
  EXPECT_LT(t.theta(10), t.theta(20));
  EXPECT_THROW((TimingModel{1.0, 1.0, 0}).round_time(1, 1), std::invalid_argument);
}

// ----------------------------------------------------------- resource ------

TEST(ResourceModel, DefaultsReduceToPureTime) {
  ResourceModel r;
  r.timing = TimingModel{10.0, 1.0, 1000};
  EXPECT_TRUE(r.is_pure_time());
  EXPECT_DOUBLE_EQ(r.round_cost(100.0, 100.0), r.timing.round_time(100.0, 100.0));
  EXPECT_DOUBLE_EQ(r.theta_cost(50.0), r.timing.theta(50.0));
  r.weight_energy = 0.5;
  EXPECT_FALSE(r.is_pure_time());
  r.weight_energy = 0.0;
  r.weight_time = 0.9;
  EXPECT_FALSE(r.is_pure_time());
}

TEST(ResourceModel, CompositeCostSumsWeightedResources) {
  ResourceModel r;
  r.timing = TimingModel{10.0, 1.0, 1000};
  r.energy_per_compute = 2.0;
  r.energy_per_value = 0.01;
  r.money_per_value = 0.05;
  r.weight_time = 1.0;
  r.weight_energy = 3.0;
  r.weight_money = 7.0;
  const double up = 40.0, down = 60.0;
  const double time = r.timing.round_time(up, down);
  const double energy = 2.0 + 0.01 * (up + down);
  const double money = 0.05 * (up + down);
  EXPECT_DOUBLE_EQ(r.round_cost(up, down), time + 3.0 * energy + 7.0 * money);
  // Precomputed-time variant (the heterogeneous network path) must agree
  // when handed the same homogeneous time.
  EXPECT_EQ(r.round_cost_given_time(time, up, down), r.round_cost(up, down));
}

TEST(ResourceModel, ThetaCostIsMonotoneInK) {
  ResourceModel r;
  r.timing = TimingModel{5.0, 1.0, 2000};
  r.energy_per_value = 0.02;
  r.money_per_value = 0.01;
  r.weight_energy = 1.0;
  r.weight_money = 2.0;
  double prev = r.theta_cost(1.0);
  for (double k = 10.0; k <= 1000.0; k *= 2.0) {
    const double cur = r.theta_cost(k);
    EXPECT_GT(cur, prev) << "theta_cost not increasing at k=" << k;
    prev = cur;
  }
}

// ------------------------------------------------------------ client -------

TEST(Client, GradientAccumulatesAndResets) {
  // Clients borrow a workspace model rather than owning a replica.
  auto fed = data::make_synthetic(tiny_dataset());
  util::Rng mrng(1);
  auto model = tiny_model()(mrng);
  Client client(0, std::move(fed.clients[0]), model->dim(), 42);
  const double loss = client.compute_round_gradient(*model, 1, 8);
  EXPECT_TRUE(std::isfinite(loss));
  double mass = 0.0;
  for (const float v : client.accumulator().value()) mass += std::fabs(v);
  EXPECT_GT(mass, 0.0);
  EXPECT_GT(client.accumulator().dirty_chunks(), 0u);
  std::vector<std::int32_t> all(client.dim());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<std::int32_t>(i);
  client.accumulator().reset_indices({all.data(), all.size()});
  mass = 0.0;
  for (const float v : client.accumulator().value()) mass += std::fabs(v);
  EXPECT_EQ(mass, 0.0);
}

TEST(Client, ProbeLossShiftRestoresWeightsExactly) {
  auto fed = data::make_synthetic(tiny_dataset());
  util::Rng mrng(2);
  auto model = tiny_model()(mrng);
  Client client(0, std::move(fed.clients[0]), model->dim(), 7);
  client.compute_round_gradient(*model, 1, 8);
  std::vector<float> before(model->weights().begin(), model->weights().end());
  sparsify::SparseVector diff{{0, 0.5f}, {5, -1.0f}};
  (void)client.probe_loss_shifted(*model, diff, 0.1f);
  const auto after = model->weights();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "weight " << i << " not restored";
  }
}

TEST(Client, SparseUpdateTouchesOnlyListedCoords) {
  auto fed = data::make_synthetic(tiny_dataset());
  util::Rng mrng(3);
  auto model = tiny_model()(mrng);
  Client client(0, std::move(fed.clients[0]), model->dim(), 9);
  client.allocate_weights(model->weights());  // FedAvg / per-replica layout
  std::vector<float> before(client.weights().begin(), client.weights().end());
  client.apply_sparse_update({{2, 2.0f}, {7, -4.0f}}, 0.5f);
  const auto after = client.weights();
  EXPECT_FLOAT_EQ(after[2], before[2] - 1.0f);
  EXPECT_FLOAT_EQ(after[7], before[7] + 2.0f);
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (i != 2 && i != 7) EXPECT_EQ(after[i], before[i]);
  }
}

TEST(Client, SharedStoreClientOwnsNoWeights) {
  auto fed = data::make_synthetic(tiny_dataset());
  util::Rng mrng(4);
  auto model = tiny_model()(mrng);
  Client client(0, std::move(fed.clients[0]), model->dim(), 11);
  EXPECT_FALSE(client.owns_weights());
  EXPECT_TRUE(client.weights().empty());
  client.allocate_weights(model->weights());
  EXPECT_TRUE(client.owns_weights());
  EXPECT_EQ(client.weights().size(), model->dim());
}

// --------------------------------------------------------- simulation ------

TEST(Simulation, WeightsStaySynchronizedUnderGs) {
  // The paper's key invariant (Sec. III-A): all clients share w(m).
  auto sim = make_sim("fab_topk", 20.0);
  (void)sim->run();
  // Re-run with direct access: construct again and compare client weights
  // after a few manual rounds — easiest is to rely on Simulation internals
  // via the result of a short run and check final loss is finite. For a
  // stronger check, run two simulations with identical seeds: identical
  // traces imply synchronized determinism end to end.
  auto a = make_sim("fab_topk", 20.0)->run();
  auto b = make_sim("fab_topk", 20.0)->run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].train_loss, b.records[i].train_loss);
    EXPECT_EQ(a.records[i].k_used, b.records[i].k_used);
  }
}

struct MethodCase {
  const char* name;
  double k;
};

class EveryMethodConverges : public ::testing::TestWithParam<MethodCase> {};

TEST_P(EveryMethodConverges, LossDropsOnSeparableData) {
  const auto [name, k] = GetParam();
  SimulationConfig cfg = fast_sim(1.0);
  cfg.max_rounds = 120;
  auto sim = make_sim(name, k, cfg);
  const auto res = sim->run();
  ASSERT_FALSE(res.records.empty());
  const double first_loss = res.records.front().train_loss;
  EXPECT_TRUE(std::isfinite(res.final_loss));
  EXPECT_LT(res.final_loss, first_loss) << name;
  EXPECT_GT(res.final_accuracy, 1.0 / 4.0) << name;  // beats random guessing
}

INSTANTIATE_TEST_SUITE_P(AllMethods, EveryMethodConverges,
                         ::testing::Values(MethodCase{"fab_topk", 20},
                                           MethodCase{"fub_topk", 20},
                                           MethodCase{"unidirectional_topk", 20},
                                           MethodCase{"periodic", 20},
                                           MethodCase{"send_all", 20},
                                           MethodCase{"fedavg", 20}));

TEST(Simulation, FedAvgPeriodOneEqualsSendAllFirstRound) {
  // With aggregation every round and identical seeds, FedAvg's first-round
  // averaged weights equal send-all's first-round update applied to w(0):
  // avg_i(w − η g_i) = w − η avg_i(g_i). Compare via the recorded train loss
  // of round 2 (computed on the synchronized weights after round 1).
  SimulationConfig cfg = fast_sim(1.0);
  cfg.max_rounds = 2;
  const std::size_t dim = [] {
    util::Rng r(1);
    return tiny_model()(r)->dim();
  }();
  // fedavg with k = D/2 => period = ⌊D/(2·D/2)⌋ = 1.
  auto fedavg = make_sim("fedavg", static_cast<double>(dim) / 2.0, cfg);
  auto sendall = make_sim("send_all", static_cast<double>(dim) / 2.0, cfg);
  const auto ra = fedavg->run();
  const auto rb = sendall->run();
  ASSERT_EQ(ra.records.size(), 2u);
  ASSERT_EQ(rb.records.size(), 2u);
  EXPECT_NEAR(ra.records[1].train_loss, rb.records[1].train_loss, 1e-5);
}

TEST(Simulation, TimeAccountingMatchesTimingModel) {
  SimulationConfig cfg = fast_sim(10.0);
  cfg.max_rounds = 5;
  auto sim = make_sim("fab_topk", 10.0, cfg);
  const auto res = sim->run();
  ASSERT_EQ(res.records.size(), 5u);
  double expected = 0.0;
  TimingModel t{10.0, 1.0, sim->dim()};
  for (const auto& r : res.records) {
    expected += t.round_time(r.uplink_values, r.downlink_values);
    EXPECT_NEAR(r.time, expected, 1e-9);
  }
}

TEST(Simulation, StopsAtMaxTime) {
  SimulationConfig cfg = fast_sim(100.0);
  cfg.max_rounds = 100000;
  cfg.max_time = 50.0;
  auto sim = make_sim("send_all", 10.0, cfg);  // 101 per round => stops fast
  const auto res = sim->run();
  EXPECT_LE(res.rounds_run, 2u);
  EXPECT_GE(res.total_time, 50.0);
}

TEST(Simulation, StopsAtTargetLoss) {
  SimulationConfig cfg = fast_sim(0.1);
  cfg.max_rounds = 500;
  cfg.target_loss = 1.2;
  cfg.eval_every = 5;
  auto sim = make_sim("fab_topk", 40.0, cfg);
  const auto res = sim->run();
  EXPECT_TRUE(res.reached_target);
  EXPECT_LE(res.final_loss, 1.2);
  EXPECT_LT(res.rounds_run, 500u);
}

TEST(Simulation, SwitchAtLossReplacesController) {
  // Fig. 1 mechanism: run with large k until loss <= psi, then k = 5.
  SimulationConfig cfg = fast_sim(0.1);
  cfg.max_rounds = 300;
  cfg.eval_every = 5;
  cfg.switch_at_loss = 1.3;
  cfg.switch_to_k = 5.0;
  auto sim = make_sim("fab_topk", 100.0, cfg);
  const auto res = sim->run();
  ASSERT_GT(res.k_sequence.size(), 10u);
  EXPECT_DOUBLE_EQ(res.k_sequence.front(), 100.0);
  EXPECT_DOUBLE_EQ(res.k_sequence.back(), 5.0);  // switched at some point
}

TEST(Simulation, FairnessCountsFlowThrough) {
  SimulationConfig cfg = fast_sim(1.0);
  cfg.max_rounds = 20;
  auto sim = make_sim("fab_topk", 25.0, cfg);
  const std::size_t n = sim->num_clients();
  const auto res = sim->run();
  ASSERT_EQ(res.contributed_totals.size(), n);
  // FAB guarantees ⌊k/N⌋ = ⌊25/5⌋ = 5 elements per client per round.
  for (const auto total : res.contributed_totals) {
    EXPECT_GE(total, 5u * res.rounds_run);
  }
  const auto per_round = contribution_per_round(res.contributed_totals, res.rounds_run);
  for (const auto v : per_round) EXPECT_GE(v, 5.0);
}

TEST(Simulation, AdaptiveControllerReceivesValidFeedback) {
  SimulationConfig cfg = fast_sim(10.0);
  cfg.max_rounds = 80;
  auto dataset = data::make_synthetic(tiny_dataset(2));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  auto controller = std::make_unique<online::ExtendedSignOgd>(
      online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 10});
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::move(controller));
  const auto res = sim.run();
  EXPECT_EQ(res.k_sequence.size(), res.rounds_run);
  // k must have moved at least once (valid signs estimated), and most rounds
  // should produce valid estimates on this easy separable problem.
  bool moved = false;
  for (std::size_t i = 1; i < res.k_sequence.size(); ++i) {
    if (res.k_sequence[i] != res.k_sequence[i - 1]) moved = true;
  }
  EXPECT_TRUE(moved);
  EXPECT_LT(res.invalid_probe_rounds, res.rounds_run);
}

TEST(Simulation, ExtremeCommTimePushesAdaptiveKDown) {
  // With β huge, communication dominates: the learned k should end well below
  // its starting midpoint. With β tiny, k should stay high. (Figs. 7–8 trend.)
  auto run_with_beta = [&](double beta) {
    SimulationConfig cfg = fast_sim(beta);
    cfg.max_rounds = 150;
    auto dataset = data::make_synthetic(tiny_dataset(4));
    auto factory = tiny_model();
    util::Rng probe(1);
    const std::size_t dim = factory(probe)->dim();
    auto controller = std::make_unique<online::ExtendedSignOgd>(
        online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 10});
    Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                   std::move(controller));
    const auto res = sim.run();
    double tail = 0.0;
    const std::size_t tail_n = res.k_sequence.size() / 4;
    for (std::size_t i = res.k_sequence.size() - tail_n; i < res.k_sequence.size(); ++i) {
      tail += res.k_sequence[i];
    }
    return tail / static_cast<double>(tail_n);
  };
  const double k_cheap_comm = run_with_beta(0.01);
  const double k_dear_comm = run_with_beta(300.0);
  EXPECT_GT(k_cheap_comm, k_dear_comm);
}

TEST(Simulation, ValidatesConfiguration) {
  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  SimulationConfig bad = fast_sim();
  bad.lr = 0.0f;
  EXPECT_THROW(Simulation(bad, std::move(dataset), factory,
                          sparsify::make_method("fab_topk", dim, 5),
                          std::make_unique<online::FixedK>(5.0)),
               std::invalid_argument);
}

TEST(Evaluator, LossAndAccuracyOnKnownModel) {
  auto fed = data::make_synthetic(tiny_dataset());
  Evaluator ev(tiny_model(), 3);
  util::Rng rng(8);
  const double loss = ev.loss(fed.test, 0, rng);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, std::log(4.0), 1.5);  // random init ≈ uniform predictions
  const double acc = ev.accuracy(fed.test, 0, rng);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace fedsparse::fl
