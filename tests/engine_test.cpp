// Shared-replica round engine tests: the shared global weight store +
// per-thread workspace pool must be byte-identical to the per-replica
// reference engine (same RNG splits, same RoundOutcomes, same loss curves),
// deterministic across thread counts, and actually free of per-client model
// replicas.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/extended_sign_ogd.h"
#include "online/factory.h"
#include "sparsify/method.h"

namespace fedsparse::fl {
namespace {

data::SyntheticConfig tiny_dataset(std::uint64_t seed = 1) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = 10;
  cfg.samples_per_client = 24;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 64;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 2;
  cfg.seed = seed;
  return cfg;
}

nn::ModelFactory tiny_model() { return nn::mlp(16, {12}, 4); }

SimulationConfig engine_sim(ReplicaMode mode, std::size_t threads = 2) {
  SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 40;
  cfg.comm_time = 5.0;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;
  cfg.eval_test_samples = 0;
  cfg.threads = threads;
  cfg.seed = 7;
  cfg.replica_mode = mode;
  return cfg;
}

SimulationResult run_fixed_k(const std::string& method, double k, SimulationConfig cfg,
                             std::uint64_t data_seed = 1) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::make_unique<online::FixedK>(k));
  return sim.run();
}

SimulationResult run_adaptive(const std::string& method, SimulationConfig cfg,
                              std::uint64_t data_seed = 2) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  auto controller = std::make_unique<online::ExtendedSignOgd>(
      online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 10});
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::move(controller));
  return sim.run();
}

// Bitwise comparison of everything a run records: round traces, loss curves,
// k sequences, fairness totals. EXPECT_EQ on doubles is deliberate — the two
// engines must produce the *same bits*, not merely close values.
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RoundRecord& ra = a.records[i];
    const RoundRecord& rb = b.records[i];
    EXPECT_EQ(ra.time, rb.time) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_continuous, rb.k_continuous) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_used, rb.k_used) << label << " round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << label << " round " << ra.round;
    EXPECT_EQ(ra.uplink_values, rb.uplink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.downlink_values, rb.downlink_values) << label << " round " << ra.round;
    if (std::isnan(ra.global_loss)) {
      EXPECT_TRUE(std::isnan(rb.global_loss)) << label << " round " << ra.round;
    } else {
      EXPECT_EQ(ra.global_loss, rb.global_loss) << label << " round " << ra.round;
      EXPECT_EQ(ra.accuracy, rb.accuracy) << label << " round " << ra.round;
    }
  }
  EXPECT_EQ(a.k_sequence, b.k_sequence) << label;
  EXPECT_EQ(a.contributed_totals, b.contributed_totals) << label;
  EXPECT_EQ(a.rounds_run, b.rounds_run) << label;
  EXPECT_EQ(a.total_time, b.total_time) << label;
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
  EXPECT_EQ(a.final_accuracy, b.final_accuracy) << label;
  EXPECT_EQ(a.invalid_probe_rounds, b.invalid_probe_rounds) << label;
}

// ---------------- shared vs per-replica bitwise equivalence -----------------

class SharedVsPerReplica : public ::testing::TestWithParam<const char*> {};

TEST_P(SharedVsPerReplica, FixedKTraceIsByteIdentical) {
  const std::string method = GetParam();
  const auto shared = run_fixed_k(method, 20.0, engine_sim(ReplicaMode::kShared));
  const auto replica = run_fixed_k(method, 20.0, engine_sim(ReplicaMode::kPerReplica));
  expect_identical(shared, replica, method);
}

INSTANTIATE_TEST_SUITE_P(AllSynchronizedMethods, SharedVsPerReplica,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk",
                                           "periodic", "send_all"));

TEST(SharedReplicaEngine, AdaptiveProbePathIsByteIdentical) {
  // The adaptive controller exercises the k'-probe: per-replica shifts every
  // client's own weights, the shared engine shifts its store once centrally.
  // Identical bits required either way.
  for (const char* method : {"fab_topk", "fub_topk", "unidirectional_topk"}) {
    SimulationConfig cfg = engine_sim(ReplicaMode::kShared);
    cfg.max_rounds = 60;
    const auto shared = run_adaptive(method, cfg);
    cfg.replica_mode = ReplicaMode::kPerReplica;
    const auto replica = run_adaptive(method, cfg);
    expect_identical(shared, replica, method);
  }
}

TEST(SharedReplicaEngine, PartialParticipationIsByteIdentical) {
  // Reset lists arrive slot-indexed over the participant subset; both engines
  // must map them onto the same clients.
  SimulationConfig cfg = engine_sim(ReplicaMode::kShared);
  cfg.participation = 0.4;
  const auto shared = run_fixed_k("fab_topk", 12.0, cfg);
  cfg.replica_mode = ReplicaMode::kPerReplica;
  const auto replica = run_fixed_k("fab_topk", 12.0, cfg);
  expect_identical(shared, replica, "fab_topk/participation=0.4");
}

TEST(SharedReplicaEngine, FedAvgPathIsByteIdenticalAcrossModes) {
  // FedAvg clients own diverging weights in both modes (the workspace API is
  // the same either way); the replica_mode knob must not change a bit.
  const auto shared = run_fixed_k("fedavg", 20.0, engine_sim(ReplicaMode::kShared));
  const auto replica = run_fixed_k("fedavg", 20.0, engine_sim(ReplicaMode::kPerReplica));
  expect_identical(shared, replica, "fedavg");
}

// ---------------- workspace-reuse determinism across thread counts ----------

TEST(SharedReplicaEngine, DeterministicAcrossThreadCounts) {
  // 1 / 2 / 8 threads mean 2 / 3 / 9 workspaces and entirely different
  // task-to-workspace assignments; every trace must still be byte-identical.
  const auto t1 = run_fixed_k("fab_topk", 20.0, engine_sim(ReplicaMode::kShared, 1));
  const auto t2 = run_fixed_k("fab_topk", 20.0, engine_sim(ReplicaMode::kShared, 2));
  const auto t8 = run_fixed_k("fab_topk", 20.0, engine_sim(ReplicaMode::kShared, 8));
  expect_identical(t1, t2, "threads 1 vs 2");
  expect_identical(t1, t8, "threads 1 vs 8");
}

TEST(SharedReplicaEngine, AdaptiveDeterministicAcrossThreadCounts) {
  SimulationConfig c1 = engine_sim(ReplicaMode::kShared, 1);
  SimulationConfig c8 = engine_sim(ReplicaMode::kShared, 8);
  c1.max_rounds = c8.max_rounds = 50;
  const auto t1 = run_adaptive("fab_topk", c1);
  const auto t8 = run_adaptive("fab_topk", c8);
  expect_identical(t1, t8, "adaptive threads 1 vs 8");
}

// ---------------- tiered vs dense accumulator traversal ---------------------

// The chunk-tiered round view (accumulator chunk summaries handed to the
// methods, selection scans pruned) is a pure traversal-order optimization:
// every trace it produces must be byte-identical to the dense path of the
// same build, per method, across thread counts, and under churn.

class TieredVsDense : public ::testing::TestWithParam<const char*> {};

TEST_P(TieredVsDense, FixedKTraceIsByteIdentical) {
  const std::string method = GetParam();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SimulationConfig cfg = engine_sim(ReplicaMode::kShared, threads);
    const auto tiered = run_fixed_k(method, 20.0, cfg);
    cfg.tiered_accumulators = false;
    const auto dense = run_fixed_k(method, 20.0, cfg);
    expect_identical(tiered, dense, method + "/threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopKMethods, TieredVsDense,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk",
                                           "periodic", "send_all"));

TEST(TieredVsDense, AdaptiveProbePathIsByteIdentical) {
  // The k'-probe reruns selection through the same workspaces right after
  // the real round — the hint interplay must not depend on the traversal.
  SimulationConfig cfg = engine_sim(ReplicaMode::kShared);
  cfg.max_rounds = 60;
  const auto tiered = run_adaptive("fab_topk", cfg);
  cfg.tiered_accumulators = false;
  const auto dense = run_adaptive("fab_topk", cfg);
  expect_identical(tiered, dense, "adaptive fab_topk tiered vs dense");
}

TEST(TieredVsDense, ChurnedRoundsAreByteIdentical) {
  // Availability churn is where the tiered store earns its keep: offline
  // clients keep accumulating without flushing, then rejoin with stale-high
  // chunk bounds. Traces must still match the dense traversal bit for bit
  // at every thread count.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SimulationConfig cfg = engine_sim(ReplicaMode::kShared, threads);
    cfg.max_rounds = 50;
    cfg.network.p_drop = 0.35;
    cfg.network.p_recover = 0.3;
    cfg.network.rate_jitter_sigma = 0.2;
    cfg.participation = 0.7;
    const auto tiered = run_fixed_k("fab_topk", 15.0, cfg);
    cfg.tiered_accumulators = false;
    const auto dense = run_fixed_k("fab_topk", 15.0, cfg);
    expect_identical(tiered, dense, "churn/threads=" + std::to_string(threads));
  }
}

// ---------------- sharded round engine ---------------------------------------

// The sharded engine (per-shard arenas, fused sweeps, keyed tree merge) is a
// pure execution-strategy change: every trace must be byte-identical to the
// single-shard reference at every shard count, for every top-k method, under
// churn, partial participation, and the adaptive probe.

SimulationConfig sharded_sim(std::size_t shards, std::size_t threads = 2) {
  SimulationConfig cfg = engine_sim(ReplicaMode::kShared, threads);
  cfg.shards = shards;
  return cfg;
}

class ShardedVsSingleShard : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedVsSingleShard, FixedKTraceIsByteIdentical) {
  const std::string method = GetParam();
  const auto ref = run_fixed_k(method, 20.0, sharded_sim(1));
  for (const std::size_t shards : {2u, 8u}) {
    const auto sharded = run_fixed_k(method, 20.0, sharded_sim(shards));
    expect_identical(ref, sharded, method + "/shards=" + std::to_string(shards));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopKMethods, ShardedVsSingleShard,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk"));

TEST(ShardedEngine, AdaptiveProbePathIsByteIdentical) {
  // Probe rounds rerun the sharded selection with k' ≠ k right after the real
  // round; the per-client hint evolution must match the reference exactly.
  for (const char* method : {"fab_topk", "fub_topk", "unidirectional_topk"}) {
    SimulationConfig cfg = sharded_sim(1);
    cfg.max_rounds = 50;
    const auto ref = run_adaptive(method, cfg);
    cfg.shards = 8;
    const auto sharded = run_adaptive(method, cfg);
    expect_identical(ref, sharded, std::string(method) + " adaptive shards 1 vs 8");
  }
}

TEST(ShardedEngine, ChurnAndPartialParticipationAreByteIdentical) {
  // Fluctuating participant counts cross shard-plan boundaries every round
  // (some rounds have fewer participants than shards).
  for (const std::size_t shards : {2u, 8u}) {
    SimulationConfig cfg = sharded_sim(1);
    cfg.max_rounds = 50;
    cfg.network.p_drop = 0.35;
    cfg.network.p_recover = 0.3;
    cfg.network.rate_jitter_sigma = 0.2;
    cfg.participation = 0.7;
    const auto ref = run_fixed_k("fab_topk", 15.0, cfg);
    cfg.shards = shards;
    const auto sharded = run_fixed_k("fab_topk", 15.0, cfg);
    expect_identical(ref, sharded, "churn/shards=" + std::to_string(shards));
  }
}

TEST(ShardedEngine, AutoShardSelectionIsDeterministicAcrossThreadCounts) {
  // shards = 0 (auto) tracks the pool size: 1 / 2 / 8 threads resolve to
  // 1 / 3 / 9 shards. Identical traces required regardless.
  const auto t1 = run_fixed_k("fab_topk", 20.0, engine_sim(ReplicaMode::kShared, 1));
  const auto t2 = run_fixed_k("fab_topk", 20.0, engine_sim(ReplicaMode::kShared, 2));
  const auto t8 = run_fixed_k("fab_topk", 20.0, engine_sim(ReplicaMode::kShared, 8));
  expect_identical(t1, t2, "auto shards, threads 1 vs 2");
  expect_identical(t1, t8, "auto shards, threads 1 vs 8");
}

// ---------------- fused accumulate + prescan ---------------------------------

// The fused single-pass sweep only arms above the selection prefilter gate
// (dim >= sparsify::kTopKPrefilterMinDim), so these runs need a model wider
// than the tiny 256-dim MLP above.

data::SyntheticConfig wide_dataset(std::uint64_t seed = 3) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 10;
  cfg.channels = 1;
  cfg.height = 16;
  cfg.width = 16;
  cfg.num_clients = 6;
  cfg.samples_per_client = 20;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 64;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 3;
  cfg.seed = seed;
  return cfg;
}

SimulationResult run_wide(const std::string& method, double k, SimulationConfig cfg) {
  auto dataset = data::make_synthetic(wide_dataset());
  auto factory = nn::mlp(256, {64}, 10);  // dim 17098 >= prefilter gate
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::make_unique<online::FixedK>(k));
  return sim.run();
}

class FusedPrescan : public ::testing::TestWithParam<const char*> {};

TEST_P(FusedPrescan, TraceIsByteIdenticalToSeparatePasses) {
  // The fused sweep IS the hint filter's scan, executed one pass earlier:
  // switching it off must not move a bit, sharded or not.
  const std::string method = GetParam();
  for (const std::size_t shards : {1u, 3u}) {
    SimulationConfig cfg = sharded_sim(shards);
    cfg.max_rounds = 15;
    const auto fused = run_wide(method, 64.0, cfg);
    cfg.fused_prescan = false;
    const auto separate = run_wide(method, 64.0, cfg);
    expect_identical(fused, separate,
                     method + "/fused shards=" + std::to_string(shards));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopKMethods, FusedPrescan,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk"));

TEST(FusedPrescanTest, AdaptiveProbeInvalidatesStaleViews) {
  // Probe selections rerun with k' != k in the same round: the prescan view
  // must be ignored there (its k mismatch) without corrupting hint state.
  auto run = [](bool fused) {
    auto dataset = data::make_synthetic(wide_dataset());
    auto factory = nn::mlp(256, {64}, 10);
    util::Rng probe(1);
    const std::size_t dim = factory(probe)->dim();
    SimulationConfig cfg = sharded_sim(3);
    cfg.max_rounds = 15;
    cfg.fused_prescan = fused;
    auto controller = std::make_unique<online::ExtendedSignOgd>(
        online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 64});
    Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                   std::move(controller));
    return sim.run();
  };
  expect_identical(run(true), run(false), "adaptive fused vs separate");
}

// ---------------- weight-layout invariants ----------------------------------

TEST(SharedReplicaEngine, SynchronizedClientsResolveToTheSharedStore) {
  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(engine_sim(ReplicaMode::kShared), std::move(dataset), factory,
                 sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(10.0));
  (void)sim.run();
  // No per-client replicas: every client's weights alias the same storage.
  const auto w0 = sim.client_weights(0);
  for (std::size_t i = 1; i < sim.num_clients(); ++i) {
    EXPECT_EQ(sim.client_weights(i).data(), w0.data()) << "client " << i;
  }
}

TEST(PerReplicaEngine, ClientsOwnDistinctButIdenticalWeights) {
  // The reference engine keeps the paper's synchronization invariant the
  // hard way: n separate vectors that must stay bitwise in lockstep.
  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(engine_sim(ReplicaMode::kPerReplica), std::move(dataset), factory,
                 sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(10.0));
  (void)sim.run();
  const auto w0 = sim.client_weights(0);
  for (std::size_t i = 1; i < sim.num_clients(); ++i) {
    const auto wi = sim.client_weights(i);
    EXPECT_NE(wi.data(), w0.data()) << "client " << i;  // distinct storage
    for (std::size_t j = 0; j < dim; ++j) {
      ASSERT_EQ(w0[j], wi[j]) << "client " << i << " coord " << j;
    }
  }
}

}  // namespace
}  // namespace fedsparse::fl
