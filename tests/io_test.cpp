// Tests for the dataset file I/O (IDX and CSV): round trips, format
// validation, and error paths on malformed files.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/io.h"
#include "data/synthetic.h"

namespace fedsparse::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/fedsparse_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  // A small single-channel dataset with values in [0,1] (IDX-representable).
  Dataset sample_dataset() const {
    Dataset ds;
    ds.num_classes = 5;
    ds.channels = 1;
    ds.height = 4;
    ds.width = 3;
    ds.x.resize(7, 12);
    ds.y.resize(7);
    for (std::size_t i = 0; i < 7; ++i) {
      ds.y[i] = static_cast<int>(i % 5);
      for (std::size_t j = 0; j < 12; ++j) {
        ds.x.at(i, j) = static_cast<float>((i * 12 + j) % 256) / 255.0f;
      }
    }
    return ds;
  }

  std::string dir_;
};

TEST_F(IoTest, IdxRoundTripPreservesDataExactly) {
  const Dataset original = sample_dataset();
  save_idx_dataset(original, path("img.idx"), path("lbl.idx"));
  const Dataset loaded = load_idx_dataset(path("img.idx"), path("lbl.idx"), 5);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.height, 4u);
  EXPECT_EQ(loaded.width, 3u);
  EXPECT_EQ(loaded.y, original.y);
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      // u8 quantization: exact for multiples of 1/255.
      EXPECT_NEAR(loaded.x.at(i, j), original.x.at(i, j), 0.5f / 255.0f);
    }
  }
}

TEST_F(IoTest, IdxRejectsBadMagic) {
  {
    std::ofstream bad(path("bad.idx"), std::ios::binary);
    const char junk[16] = {0};
    bad.write(junk, sizeof(junk));
  }
  const Dataset ds = sample_dataset();
  save_idx_dataset(ds, path("img.idx"), path("lbl.idx"));
  EXPECT_THROW(load_idx_dataset(path("bad.idx"), path("lbl.idx"), 5), std::runtime_error);
  EXPECT_THROW(load_idx_dataset(path("img.idx"), path("bad.idx"), 5), std::runtime_error);
}

TEST_F(IoTest, IdxRejectsTruncatedPayload) {
  const Dataset ds = sample_dataset();
  save_idx_dataset(ds, path("img.idx"), path("lbl.idx"));
  // Truncate the image file to half.
  const auto full = std::filesystem::file_size(path("img.idx"));
  std::filesystem::resize_file(path("img.idx"), full / 2);
  EXPECT_THROW(load_idx_dataset(path("img.idx"), path("lbl.idx"), 5), std::runtime_error);
}

TEST_F(IoTest, IdxRejectsCountMismatchAndRangeErrors) {
  const Dataset ds = sample_dataset();
  save_idx_dataset(ds, path("img.idx"), path("lbl.idx"));
  Dataset fewer = ds.subset({0, 1, 2});
  save_idx_dataset(fewer, path("img3.idx"), path("lbl3.idx"));
  EXPECT_THROW(load_idx_dataset(path("img.idx"), path("lbl3.idx"), 5), std::runtime_error);
  // num_classes too small for stored labels:
  EXPECT_THROW(load_idx_dataset(path("img.idx"), path("lbl.idx"), 2), std::runtime_error);
  EXPECT_THROW(load_idx_dataset(path("absent.idx"), path("lbl.idx"), 5), std::runtime_error);
}

TEST_F(IoTest, IdxRejectsMultiChannelSave) {
  Dataset rgb;
  rgb.num_classes = 2;
  rgb.channels = 3;
  rgb.height = 2;
  rgb.width = 2;
  rgb.x.resize(1, 12);
  rgb.y = {0};
  EXPECT_THROW(save_idx_dataset(rgb, path("x.idx"), path("y.idx")), std::invalid_argument);
}

TEST_F(IoTest, CsvRoundTrip) {
  const Dataset original = sample_dataset();
  save_csv_dataset(original, path("data.csv"));
  const Dataset loaded = load_csv_dataset(path("data.csv"), 5, 1, 4, 3);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.y, original.y);
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_NEAR(loaded.x.at(i, j), original.x.at(i, j), 1e-5f);
    }
  }
}

TEST_F(IoTest, CsvSkipsCommentsAndValidates) {
  {
    std::ofstream out(path("mixed.csv"));
    out << "# comment line\n";
    out << "1,0.5,0.25\n";
    out << "\n";
    out << "0,1.0,0.0\n";
  }
  const Dataset ds = load_csv_dataset(path("mixed.csv"), 2, 1, 1, 2);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.y[0], 1);
  EXPECT_FLOAT_EQ(ds.x.at(1, 0), 1.0f);

  {
    std::ofstream out(path("ragged.csv"));
    out << "0,1.0,2.0\n0,1.0\n";
  }
  EXPECT_THROW(load_csv_dataset(path("ragged.csv"), 2, 1, 1, 2), std::runtime_error);

  {
    std::ofstream out(path("badlabel.csv"));
    out << "9,1.0,2.0\n";
  }
  EXPECT_THROW(load_csv_dataset(path("badlabel.csv"), 2, 1, 1, 2), std::runtime_error);

  // Geometry mismatch:
  EXPECT_THROW(load_csv_dataset(path("mixed.csv"), 2, 1, 1, 5), std::runtime_error);
  EXPECT_THROW(load_csv_dataset(path("absent.csv"), 2, 1, 1, 2), std::runtime_error);
}

TEST_F(IoTest, SyntheticExportImportTrainsIdentically) {
  // Export a synthetic client's data to CSV and reload: class histograms and
  // sample count must survive (full fidelity path for real-data users).
  SyntheticConfig cfg;
  cfg.num_classes = 6;
  cfg.channels = 1;
  cfg.height = 5;
  cfg.width = 5;
  cfg.num_clients = 2;
  cfg.samples_per_client = 30;
  cfg.test_samples = 16;
  cfg.seed = 42;
  const auto fed = make_synthetic(cfg);
  save_csv_dataset(fed.clients[0], path("client0.csv"));
  const Dataset back = load_csv_dataset(path("client0.csv"), 6, 1, 5, 5);
  EXPECT_EQ(back.class_histogram(), fed.clients[0].class_histogram());
  EXPECT_EQ(back.size(), fed.clients[0].size());
}

}  // namespace
}  // namespace fedsparse::data
