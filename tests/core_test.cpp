// Tests for the core trainer API: config resolution, validation, and a full
// end-to-end run through the public entry point.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/trainer.h"

namespace fedsparse::core {
namespace {

TrainerConfig tiny_config() {
  TrainerConfig cfg;
  cfg.dataset.name = "custom";
  cfg.dataset.custom.num_classes = 4;
  cfg.dataset.custom.channels = 1;
  cfg.dataset.custom.height = 4;
  cfg.dataset.custom.width = 4;
  cfg.dataset.custom.num_clients = 4;
  cfg.dataset.custom.samples_per_client = 16;
  cfg.dataset.custom.test_samples = 64;
  cfg.dataset.custom.classes_per_writer = 2;
  cfg.dataset.custom.seed = 5;
  cfg.model.name = "mlp";
  cfg.model.hidden = 8;
  cfg.method = "fab_topk";
  cfg.controller.name = "fixed";
  cfg.controller.fixed_k = 10.0;
  cfg.sim.max_rounds = 30;
  cfg.sim.batch = 8;
  cfg.sim.lr = 0.05f;
  cfg.sim.eval_every = 10;
  cfg.sim.eval_samples_per_client = 0;
  cfg.sim.eval_test_samples = 0;
  cfg.sim.threads = 2;
  return cfg;
}

TEST(ResolveDataset, KnownNamesAndErrors) {
  DatasetSpec spec;
  spec.name = "femnist";
  spec.scale = 0.1;
  EXPECT_EQ(resolve_dataset(spec).num_classes, 62u);
  spec.name = "cifar";
  EXPECT_EQ(resolve_dataset(spec).num_classes, 10u);
  spec.name = "imagenet";
  EXPECT_THROW(resolve_dataset(spec), std::invalid_argument);
}

TEST(ResolveModel, GeometryFlowsFromDataset) {
  DatasetSpec spec;
  spec.name = "femnist";
  spec.scale = 0.1;
  const auto data_cfg = resolve_dataset(spec);
  ModelSpec model;
  model.name = "mlp";
  model.hidden = 32;
  util::Rng rng(1);
  auto m = resolve_model(model, data_cfg)(rng);
  EXPECT_EQ(m->in_features(), 784u);
  EXPECT_EQ(m->num_classes(), 62u);
}

TEST(FederatedTrainer, AutoFillsControllerInterval) {
  auto cfg = tiny_config();
  cfg.controller.name = "extended_sign_ogd";
  cfg.controller.fixed_k = 0.0;
  FederatedTrainer trainer(cfg);
  EXPECT_GT(trainer.dim(), 0u);
  // kmin = max(2, 0.002 D), kmax = D were auto-filled; run must not throw.
  cfg.sim.max_rounds = 10;
  EXPECT_NO_THROW(FederatedTrainer(cfg).run());
}

TEST(FederatedTrainer, EndToEndLearns) {
  const auto cfg = tiny_config();
  FederatedTrainer trainer(cfg);
  const auto res = trainer.run();
  ASSERT_EQ(res.rounds_run, 30u);
  EXPECT_TRUE(std::isfinite(res.final_loss));
  EXPECT_LT(res.final_loss, res.records.front().train_loss);
  EXPECT_GT(res.final_accuracy, 0.25);
}

TEST(FederatedTrainer, RunsEveryMethodThroughPublicApi) {
  for (const char* method :
       {"fab_topk", "fub_topk", "unidirectional_topk", "periodic", "send_all", "fedavg"}) {
    auto cfg = tiny_config();
    cfg.method = method;
    cfg.sim.max_rounds = 10;
    const auto res = FederatedTrainer(cfg).run();
    EXPECT_EQ(res.rounds_run, 10u) << method;
    EXPECT_TRUE(std::isfinite(res.final_loss)) << method;
  }
}

TEST(FederatedTrainer, RejectsUnknownMethodAtRun) {
  auto cfg = tiny_config();
  cfg.method = "magic";
  FederatedTrainer trainer(cfg);
  EXPECT_THROW(trainer.run(), std::invalid_argument);
}

TEST(FederatedTrainer, DeterministicAcrossRuns) {
  const auto cfg = tiny_config();
  const auto a = FederatedTrainer(cfg).run();
  const auto b = FederatedTrainer(cfg).run();
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.k_sequence, b.k_sequence);
}

TEST(FederatedTrainer, ReplaySequenceThroughController) {
  // The Fig. 7/8 mechanism: record an adaptive run's k sequence, then replay
  // it via the public API against another simulation.
  auto cfg = tiny_config();
  cfg.controller.name = "extended_sign_ogd";
  cfg.controller.fixed_k = 0.0;
  cfg.sim.max_rounds = 20;
  const auto adaptive = FederatedTrainer(cfg).run();
  ASSERT_EQ(adaptive.k_sequence.size(), 20u);

  // Replay by constructing a Simulation directly with ReplayK.
  auto data_cfg = resolve_dataset(cfg.dataset);
  auto factory = resolve_model(cfg.model, data_cfg);
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  fl::Simulation sim(cfg.sim, data::make_synthetic(data_cfg), factory,
                     sparsify::make_method("fab_topk", dim, 7),
                     std::make_unique<online::ReplayK>(adaptive.k_sequence));
  const auto replayed = sim.run();
  ASSERT_EQ(replayed.k_sequence.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(replayed.k_sequence[i], adaptive.k_sequence[i]);
  }
}

}  // namespace
}  // namespace fedsparse::core
