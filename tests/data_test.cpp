// Tests for the data substrate: partitioners (non-i.i.d. structure), the
// synthetic federated generators, and minibatch sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "data/dataset.h"
#include "data/minibatch.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace fedsparse::data {
namespace {

std::vector<int> balanced_labels(std::size_t classes, std::size_t per_class) {
  std::vector<int> labels;
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) labels.push_back(static_cast<int>(c));
  }
  return labels;
}

TEST(Gamma, PositiveAndMeanMatchesShape) {
  util::Rng rng(1);
  for (double shape : {0.3, 1.0, 2.5, 10.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double g = sample_gamma(shape, rng);
      ASSERT_GT(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum / n, shape, shape * 0.1);  // E[Gamma(a,1)] = a
  }
  EXPECT_THROW(sample_gamma(0.0, rng), std::invalid_argument);
}

TEST(Dirichlet, SumsToOneAndAlphaControlsSkew) {
  util::Rng rng(2);
  auto skew = [&](double alpha) {
    double max_total = 0.0;
    for (int i = 0; i < 200; ++i) {
      const auto p = sample_dirichlet(10, alpha, rng);
      double total = 0.0, mx = 0.0;
      for (double v : p) {
        total += v;
        mx = std::max(mx, v);
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
      max_total += mx;
    }
    return max_total / 200.0;
  };
  EXPECT_GT(skew(0.1), skew(10.0));  // smaller alpha => more concentrated
}

TEST(Partition, OneClassPerClientIsPure) {
  const auto labels = balanced_labels(10, 50);
  util::Rng rng(3);
  const std::vector<std::size_t> sizes(20, 30);
  const auto owned =
      partition_indices(labels, 10, sizes, PartitionKind::kOneClassPerClient, rng);
  ASSERT_EQ(owned.size(), 20u);
  for (std::size_t c = 0; c < owned.size(); ++c) {
    ASSERT_EQ(owned[c].size(), 30u);
    for (const auto idx : owned[c]) {
      EXPECT_EQ(labels[idx], static_cast<int>(c % 10));
    }
  }
}

TEST(Partition, ByWriterLimitsClassesPerClient) {
  const auto labels = balanced_labels(20, 40);
  util::Rng rng(4);
  const std::vector<std::size_t> sizes(8, 100);
  const auto owned = partition_indices(labels, 20, sizes, PartitionKind::kByWriter, rng,
                                       /*classes_per_writer=*/5);
  for (const auto& client : owned) {
    std::set<int> classes;
    for (const auto idx : client) classes.insert(labels[idx]);
    EXPECT_LE(classes.size(), 5u);
    EXPECT_GE(classes.size(), 1u);
  }
}

TEST(Partition, IidCoversManyClasses) {
  const auto labels = balanced_labels(10, 100);
  util::Rng rng(5);
  const std::vector<std::size_t> sizes(4, 200);
  const auto owned = partition_indices(labels, 10, sizes, PartitionKind::kIid, rng);
  for (const auto& client : owned) {
    std::set<int> classes;
    for (const auto idx : client) classes.insert(labels[idx]);
    EXPECT_GE(classes.size(), 8u);  // nearly all classes present
  }
}

TEST(Partition, DirichletRespectsSizesAndValidates) {
  const auto labels = balanced_labels(6, 30);
  util::Rng rng(6);
  const std::vector<std::size_t> sizes{10, 20, 0, 5};
  const auto owned =
      partition_indices(labels, 6, sizes, PartitionKind::kDirichlet, rng, 5, 0.5);
  ASSERT_EQ(owned.size(), 4u);
  EXPECT_EQ(owned[0].size(), 10u);
  EXPECT_EQ(owned[2].size(), 0u);
  EXPECT_THROW(partition_indices(labels, 0, sizes, PartitionKind::kIid, rng),
               std::invalid_argument);
  const std::vector<int> bad_labels{0, 99};
  EXPECT_THROW(partition_indices(bad_labels, 6, sizes, PartitionKind::kIid, rng),
               std::invalid_argument);
}

TEST(Synthetic, FemnistLikeShapesMatchPaperSetting) {
  const auto cfg = femnist_like(1.0, 7);
  EXPECT_EQ(cfg.num_classes, 62u);
  EXPECT_EQ(cfg.num_clients, 156u);
  EXPECT_EQ(cfg.feature_dim(), 784u);
  EXPECT_EQ(cfg.partition, PartitionKind::kByWriter);
  EXPECT_THROW(femnist_like(0.0), std::invalid_argument);
  EXPECT_THROW(femnist_like(2.0), std::invalid_argument);
}

TEST(Synthetic, CifarLikeIsOneClassPerClient) {
  auto cfg = cifar_like(0.1, 7);
  cfg.samples_per_client = 12;
  cfg.test_samples = 64;
  const auto fed = make_synthetic(cfg);
  EXPECT_EQ(fed.num_clients(), cfg.num_clients);
  for (const auto& client : fed.clients) {
    std::set<int> classes(client.y.begin(), client.y.end());
    EXPECT_EQ(classes.size(), 1u);  // the paper's strong non-i.i.d. setting
  }
}

TEST(Synthetic, GeneratesRequestedGeometry) {
  SyntheticConfig cfg;
  cfg.num_classes = 5;
  cfg.channels = 2;
  cfg.height = 4;
  cfg.width = 3;
  cfg.num_clients = 6;
  cfg.samples_per_client = 20;
  cfg.samples_spread = 0.0;
  cfg.test_samples = 50;
  cfg.seed = 11;
  const auto fed = make_synthetic(cfg);
  ASSERT_EQ(fed.clients.size(), 6u);
  for (const auto& c : fed.clients) {
    EXPECT_EQ(c.feature_dim(), 24u);
    EXPECT_EQ(c.x.cols(), 24u);
    EXPECT_EQ(c.size(), 20u);
    EXPECT_EQ(c.num_classes, 5u);
  }
  EXPECT_EQ(fed.test.size(), 50u);
}

TEST(Synthetic, DataWeightsSumToOne) {
  auto cfg = femnist_like(0.05, 3);
  const auto fed = make_synthetic(cfg);
  const auto w = fed.data_weights();
  double total = 0.0;
  for (double v : w) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(fed.total_samples(), [&] {
    std::size_t t = 0;
    for (const auto& c : fed.clients) t += c.size();
    return t;
  }());
}

TEST(Synthetic, DeterministicForSeed) {
  auto cfg = femnist_like(0.03, 21);
  const auto a = make_synthetic(cfg);
  const auto b = make_synthetic(cfg);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  EXPECT_EQ(a.clients[0].y, b.clients[0].y);
  for (std::size_t i = 0; i < a.clients[0].x.size(); ++i) {
    EXPECT_FLOAT_EQ(a.clients[0].x.data()[i], b.clients[0].x.data()[i]);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const auto a = make_synthetic(femnist_like(0.03, 1));
  const auto b = make_synthetic(femnist_like(0.03, 2));
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.test.x.size(), b.test.x.size()); ++i) {
    if (a.test.x.data()[i] != b.test.x.data()[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ClientSizesVaryWithSpread) {
  auto cfg = femnist_like(0.2, 5);
  cfg.samples_spread = 0.6;
  const auto fed = make_synthetic(cfg);
  std::set<std::size_t> sizes;
  for (const auto& c : fed.clients) sizes.insert(c.size());
  EXPECT_GT(sizes.size(), 3u);  // lognormal spread => many distinct sizes
}

TEST(Synthetic, TestSetIsClassBalancedEnough) {
  auto cfg = femnist_like(0.1, 9);
  cfg.test_samples = 6200;
  const auto fed = make_synthetic(cfg);
  const auto hist = fed.test.class_histogram();
  for (const auto count : hist) {
    EXPECT_GT(count, 40u);  // E[count]=100; very loose lower bound
  }
}

TEST(Dataset, SubsetCopiesRows) {
  SyntheticConfig cfg;
  cfg.num_classes = 3;
  cfg.channels = 1;
  cfg.height = 2;
  cfg.width = 2;
  cfg.num_clients = 1;
  cfg.samples_per_client = 10;
  cfg.samples_spread = 0.0;
  cfg.test_samples = 4;
  const auto fed = make_synthetic(cfg);
  const auto& ds = fed.clients[0];
  const auto sub = ds.subset({0, 3, 7});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.y[1], ds.y[3]);
  for (std::size_t j = 0; j < ds.x.cols(); ++j) {
    EXPECT_FLOAT_EQ(sub.x.at(2, j), ds.x.at(7, j));
  }
  EXPECT_THROW(ds.subset({99}), std::out_of_range);
}

TEST(Minibatch, SamplesWithReplacementWithinRange) {
  auto cfg = femnist_like(0.03, 2);
  const auto fed = make_synthetic(cfg);
  util::Rng rng(4);
  const auto mb = sample_minibatch(fed.clients[0], 8, rng);
  EXPECT_EQ(mb.y.size(), 8u);
  EXPECT_EQ(mb.x.rows(), 8u);
  for (const auto idx : mb.indices) EXPECT_LT(idx, fed.clients[0].size());
}

TEST(Minibatch, SmallDatasetUsesAllSamplesOnce) {
  Dataset ds;
  ds.num_classes = 2;
  ds.channels = 1;
  ds.height = 1;
  ds.width = 2;
  ds.x.resize(3, 2);
  ds.y = {0, 1, 0};
  util::Rng rng(5);
  const auto mb = sample_minibatch(ds, 32, rng);
  EXPECT_EQ(mb.y.size(), 3u);
  EXPECT_EQ(mb.indices, (std::vector<std::size_t>{0, 1, 2}));
  Dataset empty;
  EXPECT_THROW(sample_minibatch(empty, 4, rng), std::invalid_argument);
}

TEST(Synthetic, SparsePrototypesConcentrateSignal) {
  SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 10;
  cfg.width = 10;
  cfg.num_clients = 2;
  cfg.samples_per_client = 40;
  cfg.test_samples = 16;
  cfg.noise_std = 0.0;          // isolate the prototype structure
  cfg.writer_style_std = 0.0;
  cfg.writer_gain_std = 0.0;
  cfg.prototype_sparsity = 0.1;  // 10 of 100 dims carry signal
  cfg.seed = 31;
  const auto fed = make_synthetic(cfg);
  // Without noise/style, each sample equals its class prototype: count its
  // nonzero coordinates.
  const auto& ds = fed.clients[0];
  for (std::size_t i = 0; i < ds.size(); ++i) {
    std::size_t nonzero = 0;
    for (std::size_t j = 0; j < ds.feature_dim(); ++j) {
      if (ds.x.at(i, j) != 0.0f) ++nonzero;
    }
    EXPECT_LE(nonzero, 10u);
    EXPECT_GE(nonzero, 1u);
  }
  // Norm is still class_sep (renormalized).
  double norm = 0.0;
  for (std::size_t j = 0; j < ds.feature_dim(); ++j) {
    norm += static_cast<double>(ds.x.at(0, j)) * ds.x.at(0, j);
  }
  EXPECT_NEAR(std::sqrt(norm), cfg.class_sep, 1e-4);
}

TEST(Synthetic, DensePrototypeDefaultUnchanged) {
  // prototype_sparsity = 1.0 must reproduce the historical dense behaviour
  // (every coordinate nonzero almost surely).
  SyntheticConfig cfg;
  cfg.num_classes = 2;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = 1;
  cfg.samples_per_client = 4;
  cfg.test_samples = 8;
  cfg.noise_std = 0.0;
  cfg.writer_style_std = 0.0;
  cfg.writer_gain_std = 0.0;
  cfg.seed = 7;
  const auto fed = make_synthetic(cfg);
  std::size_t nonzero = 0;
  for (std::size_t j = 0; j < 16; ++j) {
    if (fed.clients[0].x.at(0, j) != 0.0f) ++nonzero;
  }
  EXPECT_EQ(nonzero, 16u);
}

TEST(Dataset, ClassHistogram) {
  Dataset ds;
  ds.num_classes = 3;
  ds.y = {0, 1, 1, 2, 2, 2};
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist, (std::vector<std::size_t>{1, 2, 3}));
}

}  // namespace
}  // namespace fedsparse::data
