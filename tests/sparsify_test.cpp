// Tests for the sparsification library: top-k selection, the accumulator,
// FAB-top-k (fairness invariants + κ search), and every baseline method.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>

#include "sparsify/accumulator.h"
#include "sparsify/fab_topk.h"
#include "sparsify/fedavg.h"
#include "sparsify/fub_topk.h"
#include "sparsify/method.h"
#include "sparsify/periodic_k.h"
#include "sparsify/sparse_vector.h"
#include "sparsify/topk.h"
#include "sparsify/unidirectional_topk.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {
namespace {

std::vector<float> random_vector(std::size_t d, util::Rng& rng, double scale = 1.0) {
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

// Equal data weights for n clients.
std::vector<double> equal_weights(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

// Owns the data-weight vector so call sites may pass temporaries; converts
// implicitly to the RoundInput view the methods consume.
struct InputHolder {
  std::vector<double> weights;
  RoundInput in;
  operator const RoundInput&() const { return in; }  // NOLINT(google-explicit-constructor)
};

InputHolder make_input(const std::vector<std::vector<float>>& vecs, std::vector<double> weights,
                       std::size_t round = 1) {
  InputHolder h;
  h.weights = std::move(weights);
  h.in.dim = vecs.front().size();
  h.in.round = round;
  h.in.data_weights = {h.weights.data(), h.weights.size()};
  for (const auto& v : vecs) h.in.client_vectors.push_back({v.data(), v.size()});
  return h;
}

// ---------------------------------------------------------------- top-k ----

TEST(TopK, MatchesFullSortReference) {
  util::Rng rng(1);
  const auto v = random_vector(200, rng);
  for (std::size_t k : {1u, 5u, 50u, 200u}) {
    const auto got = top_k_indices({v.data(), v.size()}, k);
    // Reference: full sort by (|v| desc, idx asc).
    std::vector<std::int32_t> ref(v.size());
    std::iota(ref.begin(), ref.end(), 0);
    std::sort(ref.begin(), ref.end(), [&](std::int32_t a, std::int32_t b) {
      const float aa = std::fabs(v[a]), bb = std::fabs(v[b]);
      if (aa != bb) return aa > bb;
      return a < b;
    });
    ref.resize(k);
    EXPECT_EQ(got, ref) << "k=" << k;
  }
}

TEST(TopK, ClampsKToSize) {
  std::vector<float> v{3.0f, -1.0f};
  EXPECT_EQ(top_k_indices({v.data(), v.size()}, 10).size(), 2u);
  EXPECT_TRUE(top_k_indices({v.data(), v.size()}, 0).empty());
}

TEST(TopK, DeterministicTieBreakPrefersSmallIndex) {
  std::vector<float> v{1.0f, -1.0f, 1.0f, 0.5f};
  const auto idx = top_k_indices({v.data(), v.size()}, 2);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 1);
}

// Quickselect path vs the retained seed heap: identical (index, value)
// sequences across dimension regimes (empty, single, k-boundary, prefilter
// territory), heavy ties, and k >= D.
TEST(TopK, QuickselectMatchesHeapAcrossSizes) {
  util::Rng rng(101);
  const std::size_t k = 37;
  for (const std::size_t d : {std::size_t{0}, std::size_t{1}, k, k + 1, 10 * k, std::size_t{8192},
                              std::size_t{100000}}) {
    const auto v = random_vector(d, rng);
    const std::span<const float> vs{v.data(), v.size()};
    EXPECT_EQ(top_k_entries(vs, k), top_k_entries_heap(vs, k)) << "D=" << d;
  }
}

TEST(TopK, QuickselectMatchesHeapUnderTies) {
  util::Rng rng(103);
  for (const std::size_t d : {std::size_t{64}, std::size_t{5000}, std::size_t{20000}}) {
    // Quantize to a handful of magnitudes so the k-th boundary is a long tie
    // run and the index tie-break does real work.
    std::vector<float> v(d);
    for (auto& x : v) {
      x = static_cast<float>(rng.uniform_int(-3, 3));
    }
    const std::span<const float> vs{v.data(), v.size()};
    for (const std::size_t k : {std::size_t{1}, std::size_t{50}, d / 2, d, d + 5}) {
      EXPECT_EQ(top_k_entries(vs, k), top_k_entries_heap(vs, k)) << "D=" << d << " k=" << k;
    }
  }
}

// Regression: a mostly-zero vector (the post-reset accumulator shape) makes
// the prefilter's sampled threshold 0.0, which used to admit every entry
// (|v| >= 0 always) — the selection stayed exact but the "prefilter" was a
// silent full copy. It must now bail to the dense path and, above all, still
// match the heap reference exactly, including index-ordered zero ties.
TEST(TopK, MostlyZeroVectorMatchesHeapReference) {
  util::Rng rng(109);
  const std::size_t d = 8192;  // >= the prefilter's minimum dimension
  std::vector<float> v(d, 0.0f);
  for (std::size_t i = 0; i < d / 100; ++i) {  // 99% zeros
    v[rng.uniform_u64(d)] = static_cast<float>(rng.normal());
  }
  const std::span<const float> vs{v.data(), v.size()};
  for (const std::size_t k : {std::size_t{10}, d / 100, std::size_t{500}, d / 2}) {
    EXPECT_EQ(top_k_entries(vs, k), top_k_entries_heap(vs, k)) << "k=" << k;
  }
  // All-zero vector: pure tie-break territory.
  std::fill(v.begin(), v.end(), 0.0f);
  EXPECT_EQ(top_k_entries(vs, 64), top_k_entries_heap(vs, 64));
}

// A persistent workspace carries the previous call's k-th magnitude as a
// prefilter seed. Whatever the hint's hit/miss pattern — vectors mutating
// between calls, entries zeroed (reset), k shrinking and growing — the
// selection must stay exactly the heap reference.
TEST(TopK, ThresholdHintStaysExactAcrossMutatingRounds) {
  util::Rng rng(113);
  const std::size_t d = 16384;
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const std::span<const float> vs{v.data(), v.size()};
  TopKWorkspace ws;
  SparseVector got;
  const std::size_t ks[] = {200, 200, 50, 400, 3, 400, 200};
  for (std::size_t round = 0; round < 20; ++round) {
    const std::size_t k = ks[round % (sizeof(ks) / sizeof(ks[0]))];
    top_k_entries(vs, k, ws, got);
    EXPECT_EQ(got, top_k_entries_heap(vs, k)) << "round " << round << " k=" << k;
    // FAB-style mutation: zero the selected entries, accumulate fresh noise.
    for (const auto& e : got) v[static_cast<std::size_t>(e.index)] = 0.0f;
    for (auto& x : v) x += 0.2f * static_cast<float>(rng.normal());
  }
  // A hint surviving into a mostly-zero regime must still be exact.
  std::fill(v.begin(), v.end(), 0.0f);
  v[7] = 3.0f;
  v[9000] = -2.0f;
  top_k_entries(vs, 128, ws, got);
  EXPECT_EQ(got, top_k_entries_heap(vs, 128));
}

// Workspaces (and so threshold hints) are keyed by stable client id, not by
// participant slot: a churned round must not hand client 7's hint to client 2.
TEST(TopK, UploadsKeyWorkspacesByClientId) {
  util::Rng rng(117);
  const std::size_t d = 8192, k = 64;
  std::vector<float> a = random_vector(d, rng), b = a;
  for (auto& x : b) x *= 100.0f;  // same landscape, 100x the magnitudes
  std::vector<TopKWorkspace> ws;
  std::vector<SparseVector> uploads;
  const std::size_t ids_ab[] = {2, 7};
  top_k_uploads({{a.data(), d}, {b.data(), d}}, k, {ids_ab, 2}, ws, uploads);
  ASSERT_GE(ws.size(), 8u);
  const float hint_a = ws[2].threshold_hint;
  const float hint_b = ws[7].threshold_hint;
  EXPECT_GT(hint_a, 0.0f);
  EXPECT_FLOAT_EQ(hint_b, 100.0f * hint_a);  // each hint tracks its client
  EXPECT_EQ(ws[0].threshold_hint, 0.0f);       // untouched slots stay empty
  // Next round only client 7 participates, in slot 0: it must reuse ITS hint
  // and stay exact.
  std::vector<SparseVector> uploads2;
  const std::size_t ids_b[] = {7};
  top_k_uploads({{b.data(), d}}, k, {ids_b, 1}, ws, uploads2);
  EXPECT_EQ(uploads2[0], top_k_entries_heap({b.data(), d}, k));
  EXPECT_EQ(ws[2].threshold_hint, hint_a);  // absent client's hint untouched
}

// top_k_uploads with a registered pool must reproduce the serial loop byte
// for byte: each client owns its workspace and output slot.
TEST(TopK, PooledUploadsMatchSerial) {
  util::Rng rng(111);
  const std::size_t n = 8, d = 32768, k = 100;
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(random_vector(d, rng));
  std::vector<std::span<const float>> views;
  for (const auto& v : vecs) views.push_back({v.data(), v.size()});

  std::vector<TopKWorkspace> ws_serial, ws_pooled;
  std::vector<SparseVector> serial, pooled;
  top_k_uploads(views, k, ws_serial, serial);

  util::ThreadPool pool(4);
  tensor::set_parallel_pool(&pool);
  top_k_uploads(views, k, ws_pooled, pooled);
  tensor::set_parallel_pool(nullptr);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], pooled[i]) << "client " << i;
}

TEST(TopK, ScratchApiStopsAllocatingAfterWarmup) {
  util::Rng rng(107);
  const std::size_t d = 50000, k = 500;
  TopKWorkspace ws;
  SparseVector out;
  std::vector<std::int32_t> idx_out;
  // Two distinct inputs; warm both so the workspace holds the max capacity
  // either needs, then assert repeated calls never touch the allocator again.
  const auto v1 = random_vector(d, rng);
  const auto v2 = random_vector(d, rng);
  for (const auto* v : {&v1, &v2}) {
    top_k_entries({v->data(), v->size()}, k, ws, out);
    top_k_indices({v->data(), v->size()}, k, ws, idx_out);
  }
  const std::size_t ws_cap = ws.capacity();
  const std::size_t out_cap = out.capacity();
  const SparseEntry* out_data = out.data();
  const std::size_t idx_cap = idx_out.capacity();
  for (int round = 0; round < 10; ++round) {
    const auto& v = (round % 2 == 0) ? v1 : v2;
    top_k_entries({v.data(), v.size()}, k, ws, out);
    top_k_indices({v.data(), v.size()}, k, ws, idx_out);
    EXPECT_EQ(ws.capacity(), ws_cap) << "workspace reallocated in round " << round;
    EXPECT_EQ(out.capacity(), out_cap);
    EXPECT_EQ(out.data(), out_data) << "output buffer reallocated in round " << round;
    EXPECT_EQ(idx_out.capacity(), idx_cap);
    ASSERT_EQ(out.size(), k);
  }
}

TEST(TopK, EntriesCarryOriginalSignedValues) {
  std::vector<float> v{0.1f, -5.0f, 2.0f};
  const auto entries = top_k_entries({v.data(), v.size()}, 2);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].index, 1);
  EXPECT_FLOAT_EQ(entries[0].value, -5.0f);
  EXPECT_EQ(entries[1].index, 2);
  EXPECT_FLOAT_EQ(entries[1].value, 2.0f);
}

// --------------------------------------------------------- sparse vector ---

TEST(SparseVector, ToDenseAndAxpy) {
  SparseVector sv{{1, 2.0f}, {3, -1.0f}};
  const auto dense = to_dense(sv, 5);
  EXPECT_FLOAT_EQ(dense[1], 2.0f);
  EXPECT_FLOAT_EQ(dense[3], -1.0f);
  EXPECT_FLOAT_EQ(dense[0], 0.0f);

  std::vector<float> dst(5, 1.0f);
  axpy_sparse(2.0f, sv, {dst.data(), dst.size()});
  EXPECT_FLOAT_EQ(dst[1], 5.0f);
  EXPECT_FLOAT_EQ(dst[3], -1.0f);

  EXPECT_THROW(to_dense(SparseVector{{9, 1.0f}}, 5), std::out_of_range);
}

TEST(SparseVector, ToDenseAccumulatesDuplicateIndices) {
  // Contract: duplicated indices accumulate (matching axpy_sparse) — no
  // occurrence is silently dropped.
  SparseVector sv{{2, 1.5f}, {0, 1.0f}, {2, 2.0f}, {2, -0.5f}};
  const auto dense = to_dense(sv, 4);
  EXPECT_FLOAT_EQ(dense[2], 3.0f);
  EXPECT_FLOAT_EQ(dense[0], 1.0f);
  EXPECT_FLOAT_EQ(dense[1], 0.0f);

  std::vector<float> via_axpy(4, 0.0f);
  axpy_sparse(1.0f, sv, {via_axpy.data(), via_axpy.size()});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dense[i], via_axpy[i]);
}

TEST(SparseVector, SubtractMergesUnion) {
  SparseVector a{{1, 2.0f}, {4, 1.0f}, {7, 3.0f}};
  SparseVector b{{1, 2.0f}, {5, -1.0f}};
  const auto d = sparse_subtract(a, b);
  // index 1 cancels exactly; 4 and 7 from a; 5 negated from b.
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].index, 4);
  EXPECT_FLOAT_EQ(d[0].value, 1.0f);
  EXPECT_EQ(d[1].index, 5);
  EXPECT_FLOAT_EQ(d[1].value, 1.0f);
  EXPECT_EQ(d[2].index, 7);
}

TEST(SparseVector, SubtractEmptyCases) {
  SparseVector a{{2, 1.0f}};
  EXPECT_EQ(sparse_subtract(a, {}).size(), 1u);
  EXPECT_EQ(sparse_subtract({}, a).size(), 1u);
  EXPECT_FLOAT_EQ(sparse_subtract({}, a)[0].value, -1.0f);
  EXPECT_TRUE(sparse_subtract({}, {}).empty());
}

// ------------------------------------------------------------ accumulator --

TEST(Accumulator, AddAndResetSemantics) {
  GradientAccumulator acc(4);
  std::vector<float> g{1, 2, 3, 4};
  acc.add({g.data(), g.size()});
  acc.add({g.data(), g.size()});
  EXPECT_FLOAT_EQ(acc.value()[2], 6.0f);
  const std::int32_t idx[] = {1, 3};
  acc.reset_indices({idx, 2});
  EXPECT_FLOAT_EQ(acc.value()[1], 0.0f);
  EXPECT_FLOAT_EQ(acc.value()[3], 0.0f);
  EXPECT_FLOAT_EQ(acc.value()[0], 2.0f);
  acc.reset_all();
  EXPECT_FLOAT_EQ(acc.value()[0], 0.0f);
}

TEST(Accumulator, ValidatesDimensions) {
  GradientAccumulator acc(3);
  std::vector<float> wrong{1, 2};
  EXPECT_THROW(acc.add({wrong.data(), wrong.size()}), std::invalid_argument);
  const std::int32_t bad[] = {5};
  EXPECT_THROW(acc.reset_indices({bad, 1}), std::out_of_range);
}

// Gradient-mass conservation, property-tested against a shadow model: after
// any interleaving of (possibly sparse) adds and resets, every added value
// is either still in value() or was consumed by the reset that transmitted
// it — i.e. the tiered store matches a plain element-wise array exactly.
// (±0 compare equal; the shadow uses the same +=, so even bits agree.)
TEST(Accumulator, TieredStoreConservesMassAgainstShadowModel) {
  util::Rng rng(41);
  for (const std::size_t dim : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                                std::size_t{65}, std::size_t{1000}, std::size_t{8192}}) {
    GradientAccumulator acc(dim);
    std::vector<float> shadow(dim, 0.0f);
    std::vector<float> grad(dim);
    std::vector<std::int32_t> resets;
    for (int step = 0; step < 40; ++step) {
      const int op = static_cast<int>(rng.uniform_u64(4));
      if (op < 2) {
        // Dense or chunk-sparse add (sparse exercises the zero-group skip).
        const bool sparse = op == 1;
        for (std::size_t i = 0; i < dim; ++i) {
          const bool zero = sparse && (i / kAccumulatorChunk) % 3 != 0;
          grad[i] = zero ? 0.0f : static_cast<float>(rng.normal());
        }
        acc.add({grad.data(), grad.size()});
        for (std::size_t i = 0; i < dim; ++i) shadow[i] += grad[i];
      } else if (op == 2) {
        resets.clear();
        const std::size_t k = rng.uniform_u64(dim) + 1;
        for (std::size_t j = 0; j < k; ++j) {
          resets.push_back(static_cast<std::int32_t>(rng.uniform_u64(dim)));
        }
        acc.reset_indices({resets.data(), resets.size()});
        for (const std::int32_t idx : resets) shadow[static_cast<std::size_t>(idx)] = 0.0f;
      } else {
        acc.reset_all();
        std::fill(shadow.begin(), shadow.end(), 0.0f);
      }
      ASSERT_EQ(acc.value().size(), dim);
      for (std::size_t i = 0; i < dim; ++i) {
        ASSERT_EQ(acc.value()[i], shadow[i]) << "dim=" << dim << " step=" << step << " i=" << i;
      }
    }
  }
}

// Chunk-summary invariants under the same interleavings: every bound is a
// valid upper bound on its chunk's max |a| (exact right after an add touched
// the chunk, stale-high after resets), a zero bound means an all-zero chunk,
// the dirty count matches the bounds, and the dirty-range iterator covers
// every nonzero coordinate.
TEST(Accumulator, ChunkSummariesStayConsistentUnderInterleavedAddReset) {
  util::Rng rng(43);
  const std::size_t dim = 5000;  // 79 chunks with a partial tail
  GradientAccumulator acc(dim);
  std::vector<float> grad(dim);
  std::vector<std::int32_t> resets;
  const auto check = [&](const char* what, bool bounds_exact) {
    const auto v = acc.value();
    const auto cm = acc.chunk_max();
    ASSERT_EQ(cm.size(), accumulator_chunks(dim));
    std::size_t dirty = 0;
    for (std::size_t c = 0; c < cm.size(); ++c) {
      float mx = 0.0f;
      const std::size_t end = std::min(dim, (c + 1) * kAccumulatorChunk);
      for (std::size_t i = c * kAccumulatorChunk; i < end; ++i) {
        mx = std::max(mx, std::fabs(v[i]));
      }
      ASSERT_GE(cm[c], mx) << what << " chunk " << c << ": bound below actual max";
      if (bounds_exact) ASSERT_EQ(cm[c], mx) << what << " chunk " << c;
      if (cm[c] == 0.0f) ASSERT_EQ(mx, 0.0f) << what << " chunk " << c << ": zero bound, mass";
      dirty += cm[c] > 0.0f ? 1 : 0;
    }
    ASSERT_EQ(acc.dirty_chunks(), dirty) << what;
    // Dirty ranges must cover every nonzero coordinate exactly once.
    std::vector<bool> covered(dim, false);
    acc.for_each_dirty_range([&](std::size_t begin, std::size_t end) {
      ASSERT_LT(begin, end);
      for (std::size_t i = begin; i < end; ++i) {
        ASSERT_FALSE(covered[i]) << what << ": range overlap at " << i;
        covered[i] = true;
      }
    });
    for (std::size_t i = 0; i < dim; ++i) {
      if (v[i] != 0.0f) ASSERT_TRUE(covered[i]) << what << ": nonzero " << i << " uncovered";
    }
  };
  for (int round = 0; round < 15; ++round) {
    for (std::size_t i = 0; i < dim; ++i) {
      const bool zero = (i / kAccumulatorChunk) % 2 == round % 2;
      grad[i] = zero ? 0.0f : static_cast<float>(rng.normal());
    }
    acc.add({grad.data(), grad.size()});
    check("after add", /*bounds_exact=*/round == 0);
    resets.clear();
    for (std::size_t j = 0; j < 200; ++j) {
      resets.push_back(static_cast<std::int32_t>(rng.uniform_u64(dim)));
    }
    acc.reset_indices({resets.data(), resets.size()});
    check("after reset", /*bounds_exact=*/false);
  }
  acc.reset_all();
  check("after reset_all", /*bounds_exact=*/true);
  EXPECT_EQ(acc.dirty_chunks(), 0u);
}

// Fuzz the fused add_scan against the non-fused reference: two accumulators
// driven through the same randomized interleaving of adds, sparse adds,
// partial resets and full resets — one taking the fused accumulate+scan
// path, one taking plain add() with the reference threshold_scan_append on
// its values and bounds. At every step the fused pass must produce the exact
// key sequence, cap bail-out point and return value of the reference, both
// stores must match a dense shadow model bit-for-bit, and the chunk bounds
// must stay valid upper bounds (zero only for all-zero chunks).
TEST(Accumulator, FuzzedAddScanMatchesReferenceScanAndShadow) {
  util::Rng rng(47);
  for (const std::size_t dim :
       {std::size_t{65}, std::size_t{1000}, std::size_t{4096}}) {
    GradientAccumulator fused(dim);
    GradientAccumulator ref(dim);
    std::vector<float> shadow(dim, 0.0f);
    std::vector<float> grad(dim);
    std::vector<std::int32_t> resets;
    std::vector<std::uint64_t> fused_keys;
    std::vector<std::uint64_t> ref_keys;
    for (int step = 0; step < 60; ++step) {
      const int op = static_cast<int>(rng.uniform_u64(8));
      if (op < 5) {
        // Scan-add (dense or chunk-sparse) with a random threshold drawn from
        // the live magnitudes and a random cap, so both the pruned-scan and
        // the bail-out paths get exercised.
        const bool sparse = op & 1;
        for (std::size_t i = 0; i < dim; ++i) {
          const bool zero = sparse && (i / kAccumulatorChunk) % 3 != 0;
          grad[i] = zero ? 0.0f : static_cast<float>(rng.normal());
        }
        float threshold =
            std::fabs(shadow[rng.uniform_u64(dim)] + grad[rng.uniform_u64(dim)]);
        if (!(threshold > 0.0f)) threshold = 0.5f;
        const std::size_t cap = rng.uniform_u64(dim) + 1;
        fused_keys.clear();
        ref_keys.clear();
        const bool fused_ok =
            fused.add_scan({grad.data(), grad.size()}, threshold, cap, fused_keys);
        ref.add({grad.data(), grad.size()});
        const bool ref_ok =
            threshold_scan_append(ref.value(), ref.chunk_max(), threshold, cap, ref_keys);
        for (std::size_t i = 0; i < dim; ++i) shadow[i] += grad[i];
        ASSERT_EQ(fused_ok, ref_ok) << "dim=" << dim << " step=" << step;
        ASSERT_EQ(fused_keys, ref_keys) << "dim=" << dim << " step=" << step;
      } else if (op < 7) {
        resets.clear();
        const std::size_t k = rng.uniform_u64(dim / 4) + 1;
        for (std::size_t j = 0; j < k; ++j) {
          resets.push_back(static_cast<std::int32_t>(rng.uniform_u64(dim)));
        }
        fused.reset_indices({resets.data(), resets.size()});
        ref.reset_indices({resets.data(), resets.size()});
        for (const std::int32_t idx : resets) shadow[static_cast<std::size_t>(idx)] = 0.0f;
      } else {
        fused.reset_all();
        ref.reset_all();
        std::fill(shadow.begin(), shadow.end(), 0.0f);
      }
      // Both stores track the shadow exactly, and the summaries stay valid.
      for (std::size_t i = 0; i < dim; ++i) {
        ASSERT_EQ(fused.value()[i], shadow[i]) << "dim=" << dim << " step=" << step;
        ASSERT_EQ(ref.value()[i], shadow[i]) << "dim=" << dim << " step=" << step;
      }
      const auto cm = fused.chunk_max();
      ASSERT_EQ(cm.size(), accumulator_chunks(dim));
      std::size_t dirty = 0;
      for (std::size_t c = 0; c < cm.size(); ++c) {
        float mx = 0.0f;
        const std::size_t end = std::min(dim, (c + 1) * kAccumulatorChunk);
        for (std::size_t i = c * kAccumulatorChunk; i < end; ++i) {
          mx = std::max(mx, std::fabs(shadow[i]));
        }
        ASSERT_GE(cm[c], mx) << "dim=" << dim << " step=" << step << " chunk " << c;
        if (cm[c] == 0.0f) ASSERT_EQ(mx, 0.0f) << "dim=" << dim << " chunk " << c;
        dirty += cm[c] > 0.0f ? 1 : 0;
      }
      ASSERT_EQ(fused.dirty_chunks(), dirty) << "dim=" << dim << " step=" << step;
      ASSERT_EQ(fused.chunk_max().size(), ref.chunk_max().size());
      for (std::size_t c = 0; c < cm.size(); ++c) {
        ASSERT_EQ(cm[c], ref.chunk_max()[c])  // fused summary == plain add's
            << "dim=" << dim << " step=" << step << " chunk " << c;
      }
    }
  }
}

// A NaN gradient entry (diverged run) must not fall out of the chunk bounds:
// max reductions silently drop NaN, so add() pins such chunks to an infinite
// bound — always dirty, never pruned — and reset_all still clears them.
TEST(Accumulator, NanGradientKeepsChunkDirty) {
  const std::size_t dim = 256;  // 4 chunks
  GradientAccumulator acc(dim);
  std::vector<float> grad(dim, 0.0f);
  grad[kAccumulatorChunk + 3] = std::numeric_limits<float>::quiet_NaN();
  acc.add({grad.data(), grad.size()});
  EXPECT_EQ(acc.dirty_chunks(), 1u);
  EXPECT_EQ(acc.chunk_max()[1], std::numeric_limits<float>::infinity());
  // The poisoned chunk is never pruned (inf >= any threshold), and the
  // zero-bound guarantee stays intact for its neighbours.
  EXPECT_EQ(acc.chunk_max()[0], 0.0f);
  acc.reset_all();
  for (const float v : acc.value()) EXPECT_EQ(v, 0.0f);  // NaN actually cleared
  EXPECT_EQ(acc.dirty_chunks(), 0u);
}

// The chunk-aware selection must equal the dense path (and so the heap
// reference) bit for bit in every regime: dense vectors, mostly-zero vectors
// (including k > #nonzeros, where the full sort pads with zeros in index
// order), stale-high bounds after resets, and hint hit/miss sequences.
TEST(TopK, ChunkAwareSelectionMatchesHeapEverywhere) {
  util::Rng rng(47);
  const std::size_t d = 16384;
  GradientAccumulator acc(d);
  std::vector<float> grad(d);
  TopKWorkspace ws_tiered, ws_dense;
  SparseVector got_tiered, got_dense;
  const std::size_t ks[] = {1, 64, 500, 120, 2000, d, d + 7};
  for (int round = 0; round < 24; ++round) {
    // Rotate density: fully dense, chunk-sparse, almost-empty.
    const int mode = round % 3;
    for (std::size_t i = 0; i < d; ++i) {
      const std::size_t c = i / kAccumulatorChunk;
      const bool zero = (mode == 1 && c % 7 != 0) || (mode == 2 && c != 3 && c != 200);
      grad[i] = zero ? 0.0f : static_cast<float>(rng.normal());
    }
    acc.add({grad.data(), grad.size()});
    for (const std::size_t k : ks) {
      top_k_entries(acc.value(), acc.chunk_max(), k, ws_tiered, got_tiered);
      top_k_entries(acc.value(), k, ws_dense, got_dense);
      ASSERT_EQ(got_tiered, got_dense) << "round " << round << " k=" << k;
      ASSERT_EQ(got_tiered, top_k_entries_heap(acc.value(), k)) << "round " << round << " k=" << k;
    }
    // FAB-style consumption leaves stale-high bounds behind.
    std::vector<std::int32_t> consumed;
    for (const auto& e : got_tiered) consumed.push_back(e.index);
    acc.reset_indices({consumed.data(), consumed.size()});
    top_k_entries(acc.value(), acc.chunk_max(), 300, ws_tiered, got_tiered);
    ASSERT_EQ(got_tiered, top_k_entries_heap(acc.value(), 300)) << "post-reset round " << round;
  }
}

TEST(TopK, ChunkAwareRejectsMismatchedSummary) {
  std::vector<float> v(1000, 1.0f);
  std::vector<float> bad_summary(3, 1.0f);  // needs accumulator_chunks(1000) = 16
  TopKWorkspace ws;
  SparseVector out;
  EXPECT_THROW(top_k_entries({v.data(), v.size()}, {bad_summary.data(), bad_summary.size()}, 5,
                             ws, out),
               std::invalid_argument);
}

// -------------------------------------------------------------- FAB-top-k --

TEST(FabTopK, KappaSearchMatchesBruteForce) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_u64(5);
    const std::size_t k = 1 + rng.uniform_u64(20);
    std::vector<SparseVector> uploads(n);
    for (auto& up : uploads) {
      std::vector<float> v = random_vector(64, rng);
      up = top_k_entries({v.data(), v.size()}, k);
    }
    const std::size_t kappa = FabTopK::find_kappa(uploads, k);
    const auto union_size = [&](std::size_t kk) {
      std::set<std::int32_t> s;
      for (const auto& up : uploads) {
        for (std::size_t j = 0; j < std::min(kk, up.size()); ++j) s.insert(up[j].index);
      }
      return s.size();
    };
    EXPECT_LE(union_size(kappa), k);
    if (kappa < k) EXPECT_GT(union_size(kappa + 1), k);
  }
}

struct FabCase {
  std::size_t n, dim, k;
};

class FabTopKProperty : public ::testing::TestWithParam<FabCase> {};

TEST_P(FabTopKProperty, FairnessAndSizeInvariants) {
  const auto [n, dim, k] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 1000 + dim * 10 + k));
  std::vector<std::vector<float>> vecs;
  // Adversarial scale spread: client 0's gradients dwarf everyone else's, the
  // situation where fairness matters.
  for (std::size_t i = 0; i < n; ++i) {
    vecs.push_back(random_vector(dim, rng, i == 0 ? 100.0 : 1.0));
  }
  const auto weights = equal_weights(n);
  FabTopK method(dim);
  const auto out = method.round(make_input(vecs, weights), k);

  // Downlink has exactly min(k, #distinct uploadable) entries, unique indices.
  EXPECT_LE(out.update.size(), std::min(k, dim));
  std::set<std::int32_t> uniq;
  for (const auto& e : out.update) uniq.insert(e.index);
  EXPECT_EQ(uniq.size(), out.update.size());
  if (n * k >= k && k <= dim) {
    EXPECT_EQ(out.update.size(), std::min(k, dim));
  }

  // Fairness: every client contributes at least ⌊k/N⌋ elements.
  const std::size_t guaranteed = std::min(k, dim) / n;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(out.contributed[i], guaranteed) << "client " << i;
    EXPECT_EQ(out.contributed[i], out.reset_for(i).size());
  }
  EXPECT_EQ(out.uplink_values, 2.0 * static_cast<double>(std::min(k, dim)));
  EXPECT_EQ(out.downlink_values, 2.0 * static_cast<double>(out.update.size()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FabTopKProperty,
                         ::testing::Values(FabCase{1, 50, 10}, FabCase{3, 50, 10},
                                           FabCase{4, 100, 4}, FabCase{5, 100, 3},
                                           FabCase{8, 64, 64}, FabCase{10, 200, 20},
                                           FabCase{7, 128, 1}, FabCase{2, 32, 32}));

TEST(FabTopK, AggregationUsesDataWeightsAndUploadMembership) {
  // 2 clients, D=4. Client 0 uploads indices {0,1}; client 1 uploads {1,2}.
  // With weights (0.75, 0.25): b_0 = .75*a00, b_1 = .75*a01+.25*a11, b_2=.25*a12.
  std::vector<std::vector<float>> vecs{{4.0f, 3.0f, 0.0f, 0.1f}, {0.1f, 8.0f, 6.0f, 0.0f}};
  std::vector<double> weights{0.75, 0.25};
  FabTopK method(4);
  const auto out = method.round(make_input(vecs, weights), 2);
  // kappa=1: top-1 of each client = {0} and {1}, union={0,1} size 2 == k.
  ASSERT_EQ(out.update.size(), 2u);
  EXPECT_EQ(out.update[0].index, 0);
  EXPECT_FLOAT_EQ(out.update[0].value, 0.75f * 4.0f);
  EXPECT_EQ(out.update[1].index, 1);
  EXPECT_FLOAT_EQ(out.update[1].value, 0.75f * 3.0f + 0.25f * 8.0f);
  // Client 0 contributed {0,1}, client 1 contributed {1}.
  EXPECT_EQ(out.contributed[0], 2u);
  EXPECT_EQ(out.contributed[1], 1u);
}

TEST(FabTopK, SingleClientEqualsPlainTopK) {
  util::Rng rng(9);
  const auto v = random_vector(100, rng);
  std::vector<std::vector<float>> vecs{v};
  FabTopK method(100);
  const auto out = method.round(make_input(vecs, equal_weights(1)), 10);
  auto expected = top_k_entries({v.data(), v.size()}, 10);
  sort_by_index(expected);
  ASSERT_EQ(out.update.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out.update[i].index, expected[i].index);
    EXPECT_FLOAT_EQ(out.update[i].value, expected[i].value);
  }
}

TEST(FabTopK, KEqualsDimSelectsEverything) {
  util::Rng rng(11);
  std::vector<std::vector<float>> vecs{random_vector(16, rng), random_vector(16, rng)};
  FabTopK method(16);
  const auto out = method.round(make_input(vecs, equal_weights(2)), 16);
  EXPECT_EQ(out.update.size(), 16u);
}

TEST(FabTopK, FairnessBeatsFubUnderScaleSkew) {
  // With one dominant client, FUB excludes the weak client entirely while FAB
  // guarantees it ⌊k/N⌋ elements — the Fig. 4 (right) story. Deterministic
  // construction: the two clients' important coordinates are disjoint.
  const std::size_t dim = 256, k = 16;
  std::vector<std::vector<float>> vecs(2, std::vector<float>(dim, 0.0f));
  for (std::size_t j = 0; j < 32; ++j) vecs[0][j] = 100.0f;        // strong: 0..31
  for (std::size_t j = 32; j < 64; ++j) vecs[1][j] = 0.01f;        // weak:  32..63
  const auto weights = equal_weights(2);
  FabTopK fab(dim);
  const auto fab_out = fab.round(make_input(vecs, weights), k);
  EXPECT_GE(fab_out.contributed[1], k / 2);

  auto fub = make_method("fub_topk", dim);
  const auto fub_out = fub->round(make_input(vecs, weights), k);
  EXPECT_EQ(fub_out.contributed[1], 0u);  // weak client fully ignored
}

// ------------------------------------------------------------- baselines ---

TEST(FubTopK, SelectsGlobalTopKOfAggregate) {
  std::vector<std::vector<float>> vecs{{5.0f, 0.0f, 1.0f, 0.0f}, {-5.0f, 0.0f, 1.0f, 2.0f}};
  auto fub = make_method("fub_topk", 4);
  const auto out = fub->round(make_input(vecs, equal_weights(2)), 2);
  // Aggregates: idx0 = 0 (cancels), idx2 = 1, idx3 = 1. Uploads: each client's
  // top-2 = {0,3?} client0 uploads {0,2}, client1 uploads {0,3}.
  // Aggregate over uploads: idx0: .5*5-.5*5=0, idx2: .5*1, idx3: .5*2.
  ASSERT_EQ(out.update.size(), 2u);
  EXPECT_EQ(out.update[0].index, 2);
  EXPECT_EQ(out.update[1].index, 3);
}

TEST(UnidirectionalTopK, DownlinkIsUnionAndResetsEverything) {
  util::Rng rng(17);
  const std::size_t dim = 64, k = 8, n = 4;
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(random_vector(dim, rng));
  auto uni = make_method("unidirectional_topk", dim);
  const auto out = uni->round(make_input(vecs, equal_weights(n)), k);
  EXPECT_GE(out.update.size(), k);
  EXPECT_LE(out.update.size(), k * n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.reset_for(i).size(), k);
    EXPECT_EQ(out.contributed[i], k);
  }
  EXPECT_EQ(out.downlink_values, 2.0 * static_cast<double>(out.update.size()));
}

// Every top-k method's round must be bitwise-reproducible when the per-client
// selections run across a thread pool: identical update/reset/contributed
// payloads and identical timing charges.
TEST(TopKMethods, PooledRoundMatchesSerialByteForByte) {
  util::Rng rng(23);
  const std::size_t dim = 16384, n = 6, k = 150;
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(random_vector(dim, rng, i == 0 ? 50.0 : 1.0));
  const auto weights = equal_weights(n);

  for (const char* name : {"fab_topk", "fub_topk", "unidirectional_topk"}) {
    auto serial_method = make_method(name, dim);
    const auto serial = serial_method->round(make_input(vecs, weights), k);

    util::ThreadPool pool(4);
    tensor::set_parallel_pool(&pool);
    auto pooled_method = make_method(name, dim);
    const auto pooled = pooled_method->round(make_input(vecs, weights), k);
    tensor::set_parallel_pool(nullptr);

    EXPECT_EQ(pooled.update, serial.update) << name;
    EXPECT_EQ(pooled.reset_kind, serial.reset_kind) << name;
    EXPECT_EQ(pooled.reset_indices, serial.reset_indices) << name;
    EXPECT_EQ(pooled.reset_offsets, serial.reset_offsets) << name;
    EXPECT_EQ(pooled.contributed, serial.contributed) << name;
    EXPECT_EQ(pooled.uplink_values, serial.uplink_values) << name;
    EXPECT_EQ(pooled.downlink_values, serial.downlink_values) << name;
  }
}

TEST(PeriodicK, CoversAllCoordinatesWithinOnePass) {
  const std::size_t dim = 40, k = 7;
  util::Rng rng(21);
  std::vector<std::vector<float>> vecs{random_vector(dim, rng)};
  PeriodicK periodic(dim, 5);
  std::set<std::int32_t> seen;
  const std::size_t rounds = (dim + k - 1) / k;  // one full pass
  for (std::size_t m = 1; m <= rounds; ++m) {
    const auto out = periodic.round(make_input(vecs, equal_weights(1), m), k);
    for (const auto& e : out.update) seen.insert(e.index);
  }
  EXPECT_EQ(seen.size(), dim);  // every coordinate aggregated at least once
}

TEST(PeriodicK, ProbeRoundDoesNotAdvanceState) {
  const std::size_t dim = 30, k = 6;
  util::Rng rng(23);
  std::vector<std::vector<float>> vecs{random_vector(dim, rng)};
  PeriodicK a(dim, 9), b(dim, 9);
  // a: probe twice then real round; b: real round directly. Must match.
  (void)a.probe_round(make_input(vecs, equal_weights(1)), k);
  (void)a.probe_round(make_input(vecs, equal_weights(1)), k);
  const auto out_a = a.round(make_input(vecs, equal_weights(1)), k);
  const auto out_b = b.round(make_input(vecs, equal_weights(1)), k);
  ASSERT_EQ(out_a.update.size(), out_b.update.size());
  for (std::size_t i = 0; i < out_a.update.size(); ++i) {
    EXPECT_EQ(out_a.update[i].index, out_b.update[i].index);
  }
}

TEST(SendAll, DenseAggregateAndFullCost) {
  std::vector<std::vector<float>> vecs{{1.0f, 2.0f}, {3.0f, 4.0f}};
  auto sa = make_method("send_all", 2);
  const auto out = sa->round(make_input(vecs, equal_weights(2)), 1);
  EXPECT_EQ(out.kind, RoundOutcome::Kind::kDenseUpdate);
  ASSERT_EQ(out.dense.size(), 2u);
  EXPECT_FLOAT_EQ(out.dense[0], 2.0f);
  EXPECT_FLOAT_EQ(out.dense[1], 3.0f);
  EXPECT_EQ(out.uplink_values, 2.0);   // D values, no index overhead
  EXPECT_EQ(out.downlink_values, 2.0);
}

TEST(FedAvg, PeriodMatchesCommunicationBudget) {
  FedAvg fedavg(1000);
  EXPECT_EQ(fedavg.period(100), 5u);   // ⌊1000/200⌋
  EXPECT_EQ(fedavg.period(500), 1u);
  EXPECT_EQ(fedavg.period(1), 500u);
  EXPECT_EQ(fedavg.period(100000), 1u);  // k clamped to D
}

TEST(FedAvg, AggregatesOnlyOnPeriodBoundaries) {
  const std::size_t dim = 8;
  std::vector<std::vector<float>> weights_vec{{1, 1, 1, 1, 1, 1, 1, 1},
                                              {3, 3, 3, 3, 3, 3, 3, 3}};
  std::vector<double> dw{0.5, 0.5};
  FedAvg fedavg(dim);
  const std::size_t k = 2;  // period = 8/(2*2) = 2
  const auto r1 = fedavg.round(make_input(weights_vec, dw, 1), k);
  EXPECT_EQ(r1.kind, RoundOutcome::Kind::kLocalOnly);
  EXPECT_EQ(r1.uplink_values, 0.0);
  const auto r2 = fedavg.round(make_input(weights_vec, dw, 2), k);
  EXPECT_EQ(r2.kind, RoundOutcome::Kind::kWeightAverage);
  EXPECT_FLOAT_EQ(r2.dense[0], 2.0f);
  EXPECT_EQ(r2.uplink_values, static_cast<double>(dim));
}

// ----------------------------------------------------------- validation ----

TEST(MethodFactory, BuildsAllAndRejectsUnknown) {
  for (const char* name : {"fab_topk", "fub_topk", "unidirectional_topk", "periodic", "send_all",
                           "fedavg"}) {
    EXPECT_EQ(make_method(name, 10)->name(), name);
  }
  EXPECT_THROW(make_method("nope", 10), std::invalid_argument);
}

TEST(RoundInputValidation, CatchesBadInputs) {
  std::vector<std::vector<float>> vecs{{1.0f, 2.0f}};
  const auto good = make_input(vecs, equal_weights(1));
  EXPECT_NO_THROW(validate_round_input(good));

  auto bad = make_input(vecs, {0.5});  // does not sum to 1
  EXPECT_THROW(validate_round_input(bad), std::invalid_argument);

  auto negative = make_input(vecs, {2.0, -1.0});  // negative weight
  negative.in.client_vectors.push_back(negative.in.client_vectors[0]);
  EXPECT_THROW(validate_round_input(negative), std::invalid_argument);

  auto mismatched = make_input(vecs, equal_weights(1));
  mismatched.in.dim = 5;  // client vectors have 2 entries, not 5
  EXPECT_THROW(validate_round_input(mismatched), std::invalid_argument);

  RoundInput empty;
  empty.dim = 2;
  std::vector<double> no_w;
  empty.data_weights = {no_w.data(), no_w.size()};
  EXPECT_THROW(validate_round_input(empty), std::invalid_argument);
}

TEST(AllGsMethods, GradientMassConservation) {
  // Whatever a method resets, it must have actually consumed: indices reset at
  // a client must be a subset of that client's uploaded (or globally selected)
  // set, and the downlink values must match the weighted aggregate.
  util::Rng rng(31);
  const std::size_t dim = 128, k = 16, n = 5;
  std::vector<std::vector<float>> vecs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(random_vector(dim, rng));
  const auto weights = equal_weights(n);
  for (const char* name : {"fab_topk", "fub_topk", "unidirectional_topk", "periodic"}) {
    auto method = make_method(name, dim, 3);
    const auto out = method->round(make_input(vecs, weights), k);
    // Downlink indices unique and within range.
    std::set<std::int32_t> downlink;
    for (const auto& e : out.update) {
      EXPECT_GE(e.index, 0);
      EXPECT_LT(e.index, static_cast<std::int32_t>(dim));
      downlink.insert(e.index);
    }
    EXPECT_EQ(downlink.size(), out.update.size()) << name;
    // Resets are a subset of the downlink set (an element is only consumed if
    // it was aggregated into the global sparse gradient).
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto idx : out.reset_for(i)) {
        EXPECT_TRUE(downlink.count(idx)) << name << " client " << i;
      }
    }
  }
}

}  // namespace
}  // namespace fedsparse::sparsify
