// Fault-injection subsystem, server-side screening defense, and record/replay
// (fl/faults.h, sparsify/validate.h, fl/replay.h):
//  * FaultModel draws are pure in (seed, round, client) — the fault schedule
//    is identical across instances, thread counts and engines;
//  * the zero-fault configuration is byte-identical to a build without the
//    subsystem, for every upload method at every thread count, with the
//    screening stage enabled or disabled;
//  * injected NaN/Inf payloads never reach the global weights: the screen
//    rejects them, renormalizes the surviving weights, and degrades the round
//    when too few uploads survive;
//  * dropped uploads conserve accumulator mass (the client keeps everything
//    until its next successful upload) and trigger exponential retry backoff;
//  * a recorded faulted run replays byte-identically from the log alone, at
//    any shard count, from either the sync or the buffered-async engine;
//  * buffered-async catch-up after >= 3 missed flushes folds the deferred
//    contribution with the right staleness and drains the buffer.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/event_timeline.h"
#include "fl/faults.h"
#include "fl/replay.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/extended_sign_ogd.h"
#include "sparsify/method.h"
#include "sparsify/validate.h"

namespace fedsparse::fl {
namespace {

data::SyntheticConfig tiny_dataset(std::uint64_t seed = 1) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_clients = 10;
  cfg.samples_per_client = 24;
  cfg.samples_spread = 0.3;
  cfg.test_samples = 64;
  cfg.class_sep = 2.5;
  cfg.noise_std = 0.6;
  cfg.partition = data::PartitionKind::kByWriter;
  cfg.classes_per_writer = 2;
  cfg.seed = seed;
  return cfg;
}

nn::ModelFactory tiny_model() { return nn::mlp(16, {12}, 4); }

SimulationConfig base_sim(std::size_t threads = 2) {
  SimulationConfig cfg;
  cfg.lr = 0.05f;
  cfg.batch = 8;
  cfg.max_rounds = 40;
  cfg.comm_time = 5.0;
  cfg.eval_every = 10;
  cfg.eval_samples_per_client = 0;
  cfg.eval_test_samples = 0;
  cfg.threads = threads;
  cfg.seed = 7;
  return cfg;
}

SimulationResult run_fixed_k(const std::string& method, double k, SimulationConfig cfg,
                             RoundRecorder* recorder = nullptr, std::uint64_t data_seed = 1) {
  auto dataset = data::make_synthetic(tiny_dataset(data_seed));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method(method, dim, 5),
                 std::make_unique<online::FixedK>(k));
  sim.set_recorder(recorder);
  return sim.run();
}

// Bitwise trace comparison including the fault/defense counters: the two runs
// must produce the *same bits*, not merely close values.
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RoundRecord& ra = a.records[i];
    const RoundRecord& rb = b.records[i];
    EXPECT_EQ(ra.time, rb.time) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_continuous, rb.k_continuous) << label << " round " << ra.round;
    EXPECT_EQ(ra.k_used, rb.k_used) << label << " round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << label << " round " << ra.round;
    EXPECT_EQ(ra.uplink_values, rb.uplink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.downlink_values, rb.downlink_values) << label << " round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << label << " round " << ra.round;
    EXPECT_EQ(ra.dropped, rb.dropped) << label << " round " << ra.round;
    EXPECT_EQ(ra.corrupted, rb.corrupted) << label << " round " << ra.round;
    EXPECT_EQ(ra.rejected, rb.rejected) << label << " round " << ra.round;
    EXPECT_EQ(ra.quarantined, rb.quarantined) << label << " round " << ra.round;
    EXPECT_EQ(ra.degraded, rb.degraded) << label << " round " << ra.round;
    if (std::isnan(ra.global_loss)) {
      EXPECT_TRUE(std::isnan(rb.global_loss)) << label << " round " << ra.round;
    } else {
      EXPECT_EQ(ra.global_loss, rb.global_loss) << label << " round " << ra.round;
      EXPECT_EQ(ra.accuracy, rb.accuracy) << label << " round " << ra.round;
    }
  }
  EXPECT_EQ(a.k_sequence, b.k_sequence) << label;
  EXPECT_EQ(a.contributed_totals, b.contributed_totals) << label;
  EXPECT_EQ(a.rounds_run, b.rounds_run) << label;
  EXPECT_EQ(a.total_time, b.total_time) << label;
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
  EXPECT_EQ(a.final_accuracy, b.final_accuracy) << label;
  EXPECT_EQ(a.invalid_probe_rounds, b.invalid_probe_rounds) << label;
}

// ---------------- fault model: pure draws, backoff, corruption modes --------

TEST(FaultModel, DrawsArePureAndInstanceIndependent) {
  FaultConfig cfg;
  cfg.drop_prob = 0.3;
  cfg.corrupt_prob = 0.2;
  cfg.crash_prob = 0.1;
  const FaultModel a(cfg, 42);
  const FaultModel b(cfg, 42);
  std::size_t fired = 0;
  for (std::size_t r = 1; r <= 50; ++r) {
    for (std::size_t c = 0; c < 20; ++c) {
      EXPECT_EQ(a.drops_upload(r, c), b.drops_upload(r, c));
      EXPECT_EQ(a.corrupts(r, c), b.corrupts(r, c));
      EXPECT_EQ(a.crashes(r, c), b.crashes(r, c));
      EXPECT_EQ(a.corruption_mode(r, c), b.corruption_mode(r, c));
      if (a.drops_upload(r, c)) ++fired;
    }
  }
  // ~30% of 1000 draws; a gross miss means the mixing is broken.
  EXPECT_GT(fired, 200u);
  EXPECT_LT(fired, 400u);
  // A different seed yields a different schedule.
  const FaultModel c(cfg, 43);
  bool any_diff = false;
  for (std::size_t r = 1; r <= 50 && !any_diff; ++r) {
    for (std::size_t cl = 0; cl < 20; ++cl) {
      if (a.drops_upload(r, cl) != c.drops_upload(r, cl)) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultModel, TrivialConfigFiresNothing) {
  const FaultModel m(FaultConfig{}, 7);
  EXPECT_TRUE(m.trivial());
  for (std::size_t r = 1; r <= 20; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      EXPECT_FALSE(m.crashes(r, c));
      EXPECT_FALSE(m.drops_upload(r, c));
      EXPECT_FALSE(m.corrupts(r, c));
    }
  }
  EXPECT_FALSE(m.times_out(1.0e12));
}

TEST(FaultModel, BackoffIsExponentialAndCapped) {
  FaultConfig cfg;
  cfg.retry_backoff_base = 1;
  cfg.retry_backoff_max = 8;
  const FaultModel m(cfg, 1);
  EXPECT_EQ(m.backoff_rounds(0), 0u);
  EXPECT_EQ(m.backoff_rounds(1), 1u);
  EXPECT_EQ(m.backoff_rounds(2), 2u);
  EXPECT_EQ(m.backoff_rounds(3), 4u);
  EXPECT_EQ(m.backoff_rounds(4), 8u);
  EXPECT_EQ(m.backoff_rounds(9), 8u);  // capped
}

TEST(FaultModel, CorruptionModesTamperAsAdvertised) {
  const auto one_hot = [](CorruptionMode mode) {
    FaultConfig cfg;
    cfg.corrupt_prob = 1.0;
    for (int i = 0; i < 4; ++i) cfg.corrupt_weights[i] = 0.0;
    cfg.corrupt_weights[static_cast<int>(mode)] = 1.0;
    return cfg;
  };
  const sparsify::SparseVector clean{{2, 0.5f}, {7, -1.5f}, {11, 0.25f}};

  {
    const FaultModel m(one_hot(CorruptionMode::kNaN), 3);
    sparsify::SparseVector sv = clean;
    m.corrupt_payload(1, 0, sv);
    bool nan = false;
    for (const auto& e : sv) nan |= std::isnan(e.value);
    EXPECT_TRUE(nan);
  }
  {
    const FaultModel m(one_hot(CorruptionMode::kInf), 3);
    sparsify::SparseVector sv = clean;
    m.corrupt_payload(1, 0, sv);
    bool inf = false;
    for (const auto& e : sv) inf |= std::isinf(e.value);
    EXPECT_TRUE(inf);
  }
  {
    const FaultModel m(one_hot(CorruptionMode::kMagnitudeBlowup), 3);
    sparsify::SparseVector sv = clean;
    m.corrupt_payload(1, 0, sv);
    bool blown = false;
    for (std::size_t i = 0; i < sv.size(); ++i) {
      blown |= std::fabs(sv[i].value) > 1.0e9f * std::fabs(clean[i].value);
    }
    EXPECT_TRUE(blown);
  }
  {
    const FaultModel m(one_hot(CorruptionMode::kBitFlip), 3);
    sparsify::SparseVector sv = clean;
    m.corrupt_payload(1, 0, sv);
    EXPECT_NE(sv, clean);  // exactly one bit of one (index, value) pair flipped
  }
  // apply() is the guarded seam: it tampers iff the corruption draw fires,
  // identically on every invocation (purity). Compare bit patterns — the
  // tampered entries are NaN, so operator== would report false mismatches.
  const auto same_bits = [](const sparsify::SparseVector& a, const sparsify::SparseVector& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].index != b[i].index ||
          std::bit_cast<std::uint32_t>(a[i].value) != std::bit_cast<std::uint32_t>(b[i].value)) {
        return false;
      }
    }
    return true;
  };
  FaultConfig half = one_hot(CorruptionMode::kNaN);
  half.corrupt_prob = 0.5;
  const FaultModel m(half, 9);
  for (std::size_t c = 0; c < 8; ++c) {
    sparsify::SparseVector once = clean;
    sparsify::SparseVector twice = clean;
    m.apply(3, c, once);
    m.apply(3, c, twice);
    EXPECT_TRUE(same_bits(once, twice)) << "client " << c;
    EXPECT_EQ(!same_bits(once, clean), m.corrupts(3, c)) << "client " << c;
  }
}

// ---------------- screening: structural checks, clipping, quarantine --------

TEST(UploadValidator, DisabledOrCleanScreenIsPassthrough) {
  sparsify::UploadValidator v;
  std::vector<sparsify::SparseVector> uploads{{{0, 1.0f}, {3, 2.0f}}, {{1, -1.0f}}};
  const std::vector<double> weights{0.5, 0.5};
  sparsify::ValidationStats stats;

  // Disabled: same pointer out, uploads untouched.
  auto out = v.screen(uploads, {}, weights, 10, 1, stats);
  EXPECT_EQ(out.data(), weights.data());
  EXPECT_EQ(uploads[0].size(), 2u);

  // Enabled but clean: still the same pointer (bitwise passthrough).
  sparsify::ValidationConfig cfg;
  cfg.enabled = true;
  v.configure(cfg);
  out = v.screen(uploads, {}, weights, 10, 1, stats);
  EXPECT_EQ(out.data(), weights.data());
  EXPECT_EQ(stats.checked, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.valid_fraction, 1.0);
  EXPECT_FALSE(stats.degraded);
  EXPECT_TRUE(v.pre_screen_uplink().empty());
}

TEST(UploadValidator, RejectsBrokenPayloadsAndRenormalizes) {
  sparsify::UploadValidator v;
  sparsify::ValidationConfig cfg;
  cfg.enabled = true;
  cfg.quarantine_after = 0;       // isolate the structural checks
  cfg.min_valid_fraction = 0.25;  // 2/5 valid must NOT degrade here
  v.configure(cfg);

  std::vector<sparsify::SparseVector> uploads{
      {{0, 1.0f}, {5, 2.0f}},                                      // valid
      {{1, std::numeric_limits<float>::quiet_NaN()}},              // NaN value
      {{2, 1.0f}, {12, 1.0f}},                                     // index >= dim
      {{4, 1.0f}, {4, 1.0f}},                                      // duplicate index
      {{3, std::numeric_limits<float>::infinity()}, {6, -1.0f}}};  // Inf value
  const std::vector<double> weights{0.2, 0.2, 0.2, 0.2, 0.2};
  sparsify::ValidationStats stats;
  const auto out = v.screen(uploads, {}, weights, 12, 1, stats);

  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(stats.clipped, 0u);
  EXPECT_DOUBLE_EQ(stats.valid_fraction, 0.2);
  EXPECT_TRUE(stats.degraded);  // 0.2 < 0.25
  // Rejected payloads are emptied in place; the survivor is untouched.
  EXPECT_EQ(uploads[0].size(), 2u);
  for (std::size_t s = 1; s < uploads.size(); ++s) EXPECT_TRUE(uploads[s].empty()) << s;
  // Rejected slots carry zero weight.
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t s = 1; s < out.size(); ++s) EXPECT_EQ(out[s], 0.0) << s;
  // Airtime is charged at transmitted (pre-screen) sizes: 2 values per entry.
  const auto pre = v.pre_screen_uplink();
  ASSERT_EQ(pre.size(), 5u);
  EXPECT_EQ(pre[0], 4.0);
  EXPECT_EQ(pre[1], 2.0);
  EXPECT_EQ(pre[4], 4.0);

  // Same uploads with a permissive fraction: weights renormalize to 1.
  cfg.min_valid_fraction = 0.1;
  v.configure(cfg);
  std::vector<sparsify::SparseVector> again{
      {{0, 1.0f}, {5, 2.0f}}, {{1, std::numeric_limits<float>::quiet_NaN()}}, {{2, 1.0f}}};
  const std::vector<double> w3{0.25, 0.5, 0.25};
  const auto out3 = v.screen(again, {}, w3, 12, 2, stats);
  EXPECT_FALSE(stats.degraded);
  double total = 0.0;
  for (const double w : out3) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(out3[1], 0.0);
  EXPECT_DOUBLE_EQ(out3[0], 0.5);  // 0.25 / (0.25 + 0.25)
}

TEST(UploadValidator, ClipsNormOutliersWithoutTouchingWeights) {
  sparsify::UploadValidator v;
  sparsify::ValidationConfig cfg;
  cfg.enabled = true;
  cfg.norm_clip_mult = 4.0;
  v.configure(cfg);

  // Four unit-norm payloads and one magnitude-blowup: median 1, bound 4.
  std::vector<sparsify::SparseVector> uploads{
      {{0, 1.0f}}, {{1, 1.0f}}, {{2, 1.0f}}, {{3, 1.0f}}, {{4, 1.0e6f}}};
  const std::vector<double> weights{0.2, 0.2, 0.2, 0.2, 0.2};
  sparsify::ValidationStats stats;
  const auto out = v.screen(uploads, {}, weights, 10, 1, stats);

  EXPECT_EQ(stats.clipped, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  // Clipping alone does not reweight: bitwise passthrough of the originals.
  EXPECT_EQ(out.data(), weights.data());
  EXPECT_NEAR(uploads[4][0].value, 4.0f, 1e-3f);
  EXPECT_EQ(uploads[0][0].value, 1.0f);
}

TEST(UploadValidator, QuarantinesRepeatOffendersIdempotently) {
  sparsify::UploadValidator v;
  sparsify::ValidationConfig cfg;
  cfg.enabled = true;
  cfg.quarantine_after = 3;
  cfg.quarantine_rounds = 2;
  cfg.min_valid_fraction = 0.0;
  v.configure(cfg);

  const std::vector<std::size_t> ids{4, 9};
  const std::vector<double> weights{0.5, 0.5};
  const auto poisoned = [] {
    return std::vector<sparsify::SparseVector>{
        {{0, 1.0f}}, {{1, std::numeric_limits<float>::quiet_NaN()}}};
  };
  sparsify::ValidationStats stats;

  // Rounds 1–3: client 9 rejected each round; the probe's re-screen of the
  // same round must not double-count strikes.
  for (std::size_t r = 1; r <= 3; ++r) {
    auto uploads = poisoned();
    v.screen(uploads, ids, weights, 10, r, stats);
    EXPECT_EQ(stats.rejected, 1u) << "round " << r;
    auto reprobe = poisoned();
    v.screen(reprobe, ids, weights, 10, r, stats);  // probe re-screen
  }
  // Strike 3 at round 3 => quarantined through round 5, even for CLEAN uploads.
  for (std::size_t r = 4; r <= 5; ++r) {
    std::vector<sparsify::SparseVector> clean{{{0, 1.0f}}, {{1, 1.0f}}};
    v.screen(clean, ids, weights, 10, r, stats);
    EXPECT_EQ(stats.quarantined, 1u) << "round " << r;
    EXPECT_EQ(stats.rejected, 0u) << "round " << r;
    EXPECT_TRUE(clean[1].empty()) << "round " << r;
    EXPECT_TRUE(v.quarantined(9, r));
  }
  // Round 6: the quarantine expired; a clean upload is accepted again.
  std::vector<sparsify::SparseVector> clean{{{0, 1.0f}}, {{1, 1.0f}}};
  const auto out = v.screen(clean, ids, weights, 10, 6, stats);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(out.data(), weights.data());
  EXPECT_FALSE(v.quarantined(9, 6));

  // Non-consecutive rejections do not accumulate: a clean round in between
  // resets the strike counter, so two more strikes do not quarantine.
  for (std::size_t r = 7; r <= 8; ++r) {
    auto uploads = poisoned();
    v.screen(uploads, ids, weights, 10, r, stats);
  }
  std::vector<sparsify::SparseVector> clean2{{{0, 1.0f}}, {{1, 1.0f}}};
  v.screen(clean2, ids, weights, 10, 9, stats);
  auto uploads = poisoned();
  v.screen(uploads, ids, weights, 10, 10, stats);
  EXPECT_FALSE(v.quarantined(9, 11));
}

// ---------------- zero-fault byte-identity ----------------------------------

class ZeroFaultIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(ZeroFaultIdentity, TrivialFaultsAndScreeningMatchPlainRunBitwise) {
  const std::string method = GetParam();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto plain = run_fixed_k(method, 20.0, base_sim(threads));

    // Trivial fault model wired in (every hook short-circuits).
    SimulationConfig faults_off = base_sim(threads);
    faults_off.faults = FaultConfig{};
    const auto trivial = run_fixed_k(method, 20.0, faults_off);
    expect_identical(plain, trivial, method + "/trivial-faults/t" + std::to_string(threads));

    // Screening enabled on a clean run: nothing to reject, bitwise no-op.
    SimulationConfig screened = base_sim(threads);
    screened.validation.enabled = true;
    const auto defended = run_fixed_k(method, 20.0, screened);
    expect_identical(plain, defended, method + "/screen-on/t" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(AllUploadMethods, ZeroFaultIdentity,
                         ::testing::Values("fab_topk", "fub_topk", "unidirectional_topk"));

// ---------------- injected faults: mass, defense, determinism ---------------

TEST(FaultInjection, AllDropsHoldWeightsAndBackOffExponentially) {
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 20;
  cfg.eval_every = 0;
  cfg.faults.drop_prob = 1.0;  // no upload ever reaches the server
  cfg.faults.seed = 11;

  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  const std::vector<float> initial(sim.client_weights(0).begin(), sim.client_weights(0).end());
  const auto res = sim.run();

  // Mass conservation: nothing flushed, so the global weights never moved —
  // every gradient is still sitting in its client's accumulator.
  const auto final_w = sim.client_weights(0);
  ASSERT_EQ(final_w.size(), initial.size());
  for (std::size_t j = 0; j < initial.size(); ++j) {
    ASSERT_EQ(final_w[j], initial[j]) << "weight " << j;
  }
  for (const std::size_t c : res.contributed_totals) EXPECT_EQ(c, 0u);

  // Exponential backoff cadence: all 10 clients fail together, so upload
  // attempts land exactly at rounds 1, 3, 6, 11, 20 (backoff 1, 2, 4, 8, 8).
  ASSERT_EQ(res.records.size(), 20u);
  for (std::size_t r = 0; r < res.records.size(); ++r) {
    const bool attempt_round = r == 0 || r == 2 || r == 5 || r == 10 || r == 19;
    EXPECT_EQ(res.records[r].dropped, attempt_round ? 10u : 0u) << "round " << r + 1;
    EXPECT_EQ(res.records[r].participants, 0u) << "round " << r + 1;
    EXPECT_EQ(res.records[r].uplink_values, 0.0) << "round " << r + 1;
  }

  // The last round was an attempt round: its timeline records the losses.
  std::size_t lost = 0;
  for (const Event& e : sim.timeline().events()) {
    if (e.kind == EventKind::kUploadLost) ++lost;
  }
  EXPECT_EQ(lost, 10u);
}

TEST(FaultInjection, PoisonNeverReachesGlobalWeights) {
  // Every upload arrives tampered with NaN or Inf. The screen must reject
  // them all, degrade every round, and hold the weights — not one non-finite
  // value may reach the global store.
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 15;
  cfg.faults.corrupt_prob = 1.0;
  cfg.faults.corrupt_weights[0] = 1.0;  // NaN
  cfg.faults.corrupt_weights[1] = 1.0;  // Inf
  cfg.faults.corrupt_weights[2] = 0.0;
  cfg.faults.corrupt_weights[3] = 0.0;
  cfg.faults.seed = 13;
  cfg.validation.enabled = true;

  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  const std::vector<float> initial(sim.client_weights(0).begin(), sim.client_weights(0).end());
  const auto res = sim.run();

  for (const float w : sim.client_weights(0)) ASSERT_TRUE(std::isfinite(w));
  for (std::size_t j = 0; j < initial.size(); ++j) {
    ASSERT_EQ(sim.client_weights(0)[j], initial[j]) << "weight " << j;  // held
  }
  for (const auto& rec : res.records) {
    EXPECT_EQ(rec.corrupted, rec.participants) << "round " << rec.round;
    EXPECT_EQ(rec.rejected + rec.quarantined, rec.participants) << "round " << rec.round;
    EXPECT_TRUE(rec.degraded) << "round " << rec.round;
  }
}

TEST(FaultInjection, FaultedRunStaysFiniteWithAdaptiveController) {
  // The CI-gated graceful-degradation regime: 20% drops + 5% corruption.
  // FAB with Algorithm 3 must complete the run with finite weights, a finite
  // loss, and visible fault/defense counters.
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 50;
  cfg.faults.drop_prob = 0.2;
  cfg.faults.corrupt_prob = 0.05;
  cfg.faults.seed = 17;
  cfg.validation.enabled = true;

  auto dataset = data::make_synthetic(tiny_dataset(2));
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  auto controller = std::make_unique<online::ExtendedSignOgd>(
      online::ExtendedSignOgd::Config{2.0, static_cast<double>(dim), 0.0, 1.5, 10});
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::move(controller));
  const auto res = sim.run();

  EXPECT_EQ(res.rounds_run, 50u);
  EXPECT_TRUE(std::isfinite(res.final_loss));
  for (const float w : sim.client_weights(0)) ASSERT_TRUE(std::isfinite(w));
  for (const double k : res.k_sequence) EXPECT_TRUE(std::isfinite(k));
  std::size_t dropped = 0, corrupted = 0;
  for (const auto& rec : res.records) {
    dropped += rec.dropped;
    corrupted += rec.corrupted;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(corrupted, 0u);
}

TEST(FaultInjection, FaultedTraceIsThreadCountInvariant) {
  // The fault schedule is stateless in (seed, round, client) and screening is
  // RNG-free, so a faulted run must be byte-identical at every thread count.
  SimulationConfig cfg = base_sim(1);
  cfg.max_rounds = 25;
  cfg.faults.drop_prob = 0.15;
  cfg.faults.corrupt_prob = 0.1;
  cfg.faults.crash_prob = 0.05;
  cfg.faults.seed = 23;
  cfg.validation.enabled = true;
  const auto t1 = run_fixed_k("fab_topk", 20.0, cfg);
  cfg.threads = 2;
  const auto t2 = run_fixed_k("fab_topk", 20.0, cfg);
  cfg.threads = 8;
  const auto t8 = run_fixed_k("fab_topk", 20.0, cfg);
  expect_identical(t1, t2, "faulted/threads=1vs2");
  expect_identical(t1, t8, "faulted/threads=1vs8");
}

// ---------------- record / replay -------------------------------------------

TEST(Replay, SyncFaultedRunReplaysAtEveryShardCount) {
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 25;
  cfg.faults.drop_prob = 0.1;
  cfg.faults.corrupt_prob = 0.1;
  cfg.faults.seed = 99;
  cfg.validation.enabled = true;

  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  RoundRecorder recorder(dim, "fab_topk", 5, cfg.faults, cfg.validation);
  {
    Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                   std::make_unique<online::FixedK>(20.0));
    sim.set_recorder(&recorder);
    sim.run();
  }
  const ReplayLog& log = recorder.log();
  ASSERT_GT(log.rounds.size(), 10u);
  bool saw_fault = false;
  for (const auto& r : log.rounds) saw_fault |= !r.faults.empty();
  EXPECT_TRUE(saw_fault);

  // The log is engine-agnostic: any shard count reproduces every digest.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const ReplayResult res = replay(log, shards);
    EXPECT_EQ(res.rounds, log.rounds.size()) << "shards " << shards;
    EXPECT_EQ(res.mismatches, 0u) << "shards " << shards;
  }

  // Binary round-trip preserves the log byte-for-byte.
  const std::string path = ::testing::TempDir() + "fault_replay_test.bin";
  log.save(path);
  const ReplayLog loaded = ReplayLog::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.rounds.size(), log.rounds.size());
  for (std::size_t i = 0; i < log.rounds.size(); ++i) {
    EXPECT_EQ(loaded.rounds[i].digest, log.rounds[i].digest);
    EXPECT_EQ(loaded.rounds[i].vec_values, log.rounds[i].vec_values);
    EXPECT_EQ(loaded.rounds[i].faults, log.rounds[i].faults);
    EXPECT_EQ(loaded.rounds[i].timeline, log.rounds[i].timeline);
  }
  const ReplayResult from_disk = replay(loaded, 8);
  EXPECT_EQ(from_disk.mismatches, 0u);
}

TEST(Replay, AsyncFaultedRunReplays) {
  // Staleness-folded weights are recorded as the method saw them, so the
  // buffered-async engine's log replays without any engine at all.
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 25;
  cfg.aggregation = AggregationMode::kBufferedAsync;
  cfg.async.buffer_size = 4;
  cfg.async.staleness_lambda = 0.25;
  cfg.faults.drop_prob = 0.1;
  cfg.faults.seed = 99;
  cfg.validation.enabled = true;

  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  RoundRecorder recorder(dim, "fab_topk", 5, cfg.faults, cfg.validation);
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  sim.set_recorder(&recorder);
  sim.run();

  const ReplayLog& log = recorder.log();
  ASSERT_GT(log.rounds.size(), 10u);
  bool saw_stale_fold = false;
  for (const auto& r : log.rounds) {
    for (const Event& e : r.timeline) saw_stale_fold |= e.kind == EventKind::kBufferFlush;
  }
  EXPECT_TRUE(saw_stale_fold);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const ReplayResult res = replay(log, shards);
    EXPECT_EQ(res.mismatches, 0u) << "shards " << shards;
  }
}

// ---------------- buffered-async catch-up after >= 3 missed flushes ---------

TEST(AsyncCatchUp, TripleMissedFlushFoldsExactlyOnceWithFullStaleness) {
  // Churn keeps deferred clients offline for stretches; the catch-up flush
  // must fold a contribution that waited >= 3 flush windows, with staleness
  // equal to the full wait, and the buffer must keep draining (mass is never
  // dropped: every deferred upload eventually contributes, pending count
  // matches the records bit-for-bit).
  SimulationConfig cfg = base_sim();
  cfg.max_rounds = 60;
  cfg.eval_every = 0;
  cfg.aggregation = AggregationMode::kBufferedAsync;
  cfg.async.buffer_size = 3;
  cfg.async.staleness_lambda = 0.25;
  cfg.network.p_drop = 0.3;
  cfg.network.p_recover = 0.25;

  auto dataset = data::make_synthetic(tiny_dataset());
  auto factory = tiny_model();
  util::Rng probe(1);
  const std::size_t dim = factory(probe)->dim();
  Simulation sim(cfg, std::move(dataset), factory, sparsify::make_method("fab_topk", dim, 5),
                 std::make_unique<online::FixedK>(20.0));
  const auto res = sim.run();

  std::size_t deepest = 0;
  for (const auto& rec : res.records) {
    deepest = std::max(deepest, rec.max_staleness);
    EXPECT_TRUE(std::isfinite(rec.mean_staleness)) << "round " << rec.round;
    // max >= mean always; a flush's staleness never exceeds its round index.
    EXPECT_GE(static_cast<double>(rec.max_staleness) * static_cast<double>(rec.participants),
              rec.mean_staleness * static_cast<double>(rec.participants))
        << "round " << rec.round;
    EXPECT_LT(rec.max_staleness, rec.round) << "round " << rec.round;
  }
  EXPECT_GE(deepest, 3u) << "no catch-up after >= 3 missed flushes materialized";

  // Pending accounting is exact at the end of the run, and the folded mass
  // reached the model: every client contributed despite the churn.
  EXPECT_EQ(sim.pending_uploads(), res.records.back().buffered_stale);
  for (const float w : sim.client_weights(0)) ASSERT_TRUE(std::isfinite(w));
  std::size_t contributors = 0;
  for (const std::size_t c : res.contributed_totals) contributors += c > 0 ? 1 : 0;
  EXPECT_EQ(contributors, 10u);
}

}  // namespace
}  // namespace fedsparse::fl
