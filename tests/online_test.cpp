// Tests for the online-learning module: stochastic rounding (Def. 2), the
// derivative-sign estimator (Eqs. 10–11), Algorithm 2 (regret vs Theorem 1),
// noisy signs (Theorem 2), Algorithm 3 (restart rule), and the baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "online/continuous_bandit.h"
#include "online/controller.h"
#include "online/estimator.h"
#include "online/exp3.h"
#include "online/extended_sign_ogd.h"
#include "online/factory.h"
#include "online/regret.h"
#include "online/rounding.h"
#include "online/sign_ogd.h"
#include "online/value_based.h"

namespace fedsparse::online {
namespace {

// ----------------------------------------------------------- rounding ------

TEST(StochasticRounding, IntegerInputIsExact) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(stochastic_round_k(7.0, 100, rng), 7u);
  }
}

TEST(StochasticRounding, IsUnbiased) {
  util::Rng rng(2);
  const double k = 12.3;
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const auto r = stochastic_round_k(k, 100, rng);
    EXPECT_TRUE(r == 12u || r == 13u);
    sum += static_cast<double>(r);
  }
  EXPECT_NEAR(sum / trials, k, 0.01);  // E[round(k)] == k (Definition 2)
}

TEST(StochasticRounding, ClampsToValidRange) {
  util::Rng rng(3);
  EXPECT_EQ(stochastic_round_k(0.2, 100, rng), 1u);
  EXPECT_EQ(stochastic_round_k(1e9, 100, rng), 100u);
  EXPECT_EQ(deterministic_round_k(0.4, 100), 1u);
  EXPECT_EQ(deterministic_round_k(250.0, 100), 100u);
  EXPECT_EQ(deterministic_round_k(12.5, 100), 13u);  // round-half-away
}

// ----------------------------------------------------------- estimator -----

RoundFeedback make_feedback(double prev, double cur, double probe, double tau, double theta) {
  RoundFeedback fb;
  fb.loss_prev = prev;
  fb.loss_cur = cur;
  fb.loss_probe = probe;
  fb.probe_available = true;
  fb.round_time = tau;
  fb.theta_probe = theta;
  return fb;
}

TEST(Estimator, PositiveDerivativeWhenSmallerKIsFaster) {
  // k' drops the loss almost as much but one k'-round is much cheaper =>
  // τ̂(k') < τ(k): derivative positive, k should decrease.
  const auto fb = make_feedback(2.0, 1.0, 1.05, /*tau=*/10.0, /*theta=*/5.0);
  const auto est = estimate_derivative_sign(fb, 100.0, 90.0);
  ASSERT_TRUE(est.valid);
  // τ̂ = 5 * (1.0)/(0.95) ≈ 5.26 < 10 => (10 − 5.26)/(100−90) > 0.
  EXPECT_EQ(est.sign, 1);
  EXPECT_NEAR(est.derivative, (10.0 - 5.0 / 0.95) / 10.0, 1e-9);
}

TEST(Estimator, NegativeDerivativeWhenSmallerKIsSlower) {
  // k' barely decreases the loss: extrapolated τ̂(k') explodes => increase k.
  const auto fb = make_feedback(2.0, 1.0, 1.95, /*tau=*/10.0, /*theta=*/9.0);
  const auto est = estimate_derivative_sign(fb, 100.0, 90.0);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.sign, -1);
}

TEST(Estimator, InvalidWhenLossDidNotDecrease) {
  EXPECT_FALSE(estimate_derivative_sign(make_feedback(1.0, 1.5, 0.9, 1, 1), 10, 9).valid);
  EXPECT_FALSE(estimate_derivative_sign(make_feedback(1.0, 0.9, 1.5, 1, 1), 10, 9).valid);
  EXPECT_FALSE(estimate_derivative_sign(make_feedback(1.0, 1.0, 0.9, 1, 1), 10, 9).valid);
}

TEST(Estimator, InvalidWithoutProbeOrDegenerateK) {
  RoundFeedback fb = make_feedback(2.0, 1.0, 1.1, 1, 1);
  fb.probe_available = false;
  EXPECT_FALSE(estimate_derivative_sign(fb, 10, 9).valid);
  EXPECT_FALSE(estimate_derivative_sign(make_feedback(2, 1, 1.1, 1, 1), 10, 10).valid);
}

// ---------------------------------------------------- Algorithm 2 ----------

TEST(SignOgd, ConfigValidation) {
  EXPECT_THROW(SignOgd(SignOgd::Config{10.0, 5.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(SignOgd(SignOgd::Config{0.5, 5.0, 0.0}), std::invalid_argument);
  SignOgd ok(SignOgd::Config{2.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(ok.current_k(), 6.0);  // midpoint default
}

TEST(SignOgd, DeltaScheduleMatchesPaper) {
  SignOgd ogd(SignOgd::Config{1.0, 101.0, 50.0});
  const double b = 100.0;
  EXPECT_NEAR(ogd.delta(), b / std::sqrt(2.0), 1e-12);
  ogd.observe_sign(1);
  EXPECT_NEAR(ogd.delta(), b / std::sqrt(4.0), 1e-12);
  ogd.observe_sign(-1);
  EXPECT_NEAR(ogd.delta(), b / std::sqrt(6.0), 1e-12);
}

TEST(SignOgd, ProjectsOntoSearchInterval) {
  SignOgd ogd(SignOgd::Config{10.0, 20.0, 11.0});
  ogd.observe_sign(1);  // step δ1 ≈ 7.07 down, must clip at kmin
  EXPECT_DOUBLE_EQ(ogd.current_k(), 10.0);
  for (int i = 0; i < 50; ++i) ogd.observe_sign(-1);
  EXPECT_DOUBLE_EQ(ogd.current_k(), 20.0);
}

TEST(SignOgd, ProbeKIsBelowCurrentAndValid) {
  SignOgd ogd(SignOgd::Config{2.0, 1000.0, 500.0});
  EXPECT_LT(ogd.probe_k(), ogd.current_k());
  EXPECT_GE(ogd.probe_k(), 1.0);
  // At k == kmin the probe must still be strictly below k (or k−1 >= 1).
  SignOgd at_min(SignOgd::Config{2.0, 10.0, 2.0});
  EXPECT_LT(at_min.probe_k(), at_min.current_k());
}

TEST(SignOgd, InvalidFeedbackLeavesKUnchangedButAdvancesRound) {
  SignOgd ogd(SignOgd::Config{2.0, 100.0, 50.0});
  const double k0 = ogd.current_k();
  RoundFeedback bad;  // no losses at all
  ogd.observe(bad);
  EXPECT_DOUBLE_EQ(ogd.current_k(), k0);
  EXPECT_EQ(ogd.round_index(), 2u);
}

// Regret of Algorithm 2 with exact signs stays under GB√(2M) (Theorem 1) on
// an environment satisfying Assumptions 1–2, across several configurations.
struct RegretCase {
  double kmin, kmax, kstar, k1;
  std::size_t rounds;
};

class SignOgdRegret : public ::testing::TestWithParam<RegretCase> {};

TEST_P(SignOgdRegret, Theorem1BoundHolds) {
  const auto p = GetParam();
  QuadraticCostEnv env;
  env.k_star = p.kstar;
  env.curvature = 0.003;
  env.base = 1.0;
  env.dloss = 0.8;
  SignOgd ogd(SignOgd::Config{p.kmin, p.kmax, p.k1});
  double regret = 0.0;
  for (std::size_t m = 0; m < p.rounds; ++m) {
    const double k = ogd.current_k();
    regret += env.tau(k) - env.tau(p.kstar);
    ogd.observe_sign(env.exact_sign(k));
  }
  const double g = env.g_bound(p.kmin, p.kmax);
  const double b = p.kmax - p.kmin;
  EXPECT_LE(regret, regret_bound_exact(g, b, p.rounds));
  EXPECT_GE(regret, 0.0);
  // And the final k is near k* (sublinear regret implies convergence here).
  EXPECT_NEAR(ogd.current_k(), p.kstar, 0.25 * b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SignOgdRegret,
    ::testing::Values(RegretCase{1.0, 101.0, 30.0, 90.0, 600},
                      RegretCase{1.0, 101.0, 80.0, 10.0, 600},
                      RegretCase{10.0, 500.0, 400.0, 20.0, 800},
                      RegretCase{2.0, 50.0, 25.0, 2.0, 400},
                      RegretCase{1.0, 1001.0, 500.0, 1.0, 1000}));

TEST(SignOgdRegretNoisy, Theorem2BoundHolds) {
  // Signs flipped with probability 0.25 => H = 1/(2·0.75 − 1) = 2. Average
  // over repetitions to approximate the expectation in Theorem 2.
  QuadraticCostEnv env;
  env.k_star = 40.0;
  env.curvature = 0.002;
  env.dloss = 1.0;
  const double kmin = 1.0, kmax = 101.0, b = kmax - kmin;
  const double correct = 0.75;
  const double h = h_for_flip_probability(correct);
  const std::size_t rounds = 400;
  util::Rng rng(99);
  double total_regret = 0.0;
  const int reps = 30;
  for (int r = 0; r < reps; ++r) {
    SignOgd ogd(SignOgd::Config{kmin, kmax, 85.0});
    double regret = 0.0;
    for (std::size_t m = 0; m < rounds; ++m) {
      const double k = ogd.current_k();
      regret += env.tau(k) - env.tau(env.k_star);
      ogd.observe_sign(env.noisy_sign(k, correct, rng));
    }
    total_regret += regret;
  }
  const double avg_regret = total_regret / reps;
  const double g = env.g_bound(kmin, kmax);
  EXPECT_LE(avg_regret, regret_bound_estimated(g, h, b, rounds));
}

TEST(SignOgdRegret, TimeAveragedRegretVanishes) {
  // R(M)/M → 0: compare average regret of a short and a long horizon.
  QuadraticCostEnv env;
  env.k_star = 60.0;
  env.curvature = 0.004;
  auto run = [&](std::size_t rounds) {
    SignOgd ogd(SignOgd::Config{1.0, 201.0, 10.0});
    double regret = 0.0;
    for (std::size_t m = 0; m < rounds; ++m) {
      const double k = ogd.current_k();
      regret += env.tau(k) - env.tau(env.k_star);
      ogd.observe_sign(env.exact_sign(k));
    }
    return regret / static_cast<double>(rounds);
  };
  EXPECT_LT(run(4000), 0.25 * run(100));
}

// ---------------------------------------------------- Algorithm 3 ----------

TEST(ExtendedSignOgd, ConfigValidation) {
  EXPECT_THROW(ExtendedSignOgd(ExtendedSignOgd::Config{5.0, 2.0, 0, 1.5, 10}),
               std::invalid_argument);
  EXPECT_THROW(ExtendedSignOgd(ExtendedSignOgd::Config{1.0, 10.0, 0, 0.5, 10}),
               std::invalid_argument);
  EXPECT_THROW(ExtendedSignOgd(ExtendedSignOgd::Config{1.0, 10.0, 0, 1.5, 0}),
               std::invalid_argument);
}

TEST(ExtendedSignOgd, ShrinksSearchIntervalAroundOptimum) {
  QuadraticCostEnv env;
  env.k_star = 120.0;
  env.curvature = 0.001;
  ExtendedSignOgd ogd(ExtendedSignOgd::Config{2.0, 1000.0, 900.0, 1.5, 20});
  const double b0 = 1000.0 - 2.0;
  for (int m = 0; m < 800; ++m) {
    ogd.observe_sign(env.exact_sign(ogd.current_k()));
  }
  EXPECT_GT(ogd.instances_started(), 1u);
  EXPECT_LT(ogd.interval_hi() - ogd.interval_lo(), b0);
  EXPECT_LE(ogd.interval_lo(), env.k_star);
  EXPECT_GE(ogd.interval_hi(), env.k_star);
  EXPECT_NEAR(ogd.current_k(), env.k_star, 60.0);
}

TEST(ExtendedSignOgd, RestartRequiresShrinkFactorAndLongerRun) {
  // Feed alternating signs so the tracked k range stays wide: the candidate
  // interval never satisfies B' < (√2−1)B, so no restart may happen.
  ExtendedSignOgd ogd(ExtendedSignOgd::Config{1.0, 101.0, 50.0, 1.5, 5});
  for (int m = 0; m < 200; ++m) ogd.observe_sign(m % 2 ? 1 : -1);
  EXPECT_EQ(ogd.instances_started(), 1u);
}

TEST(ExtendedSignOgd, LowerFluctuationThanAlgorithm2LateOn) {
  // The Fig. 6 effect: once Algorithm 3 shrinks its interval, its step sizes
  // (and hence k fluctuation) are strictly smaller than Algorithm 2's.
  QuadraticCostEnv env;
  env.k_star = 50.0;
  env.curvature = 0.01;
  SignOgd a2(SignOgd::Config{1.0, 1001.0, 800.0});
  ExtendedSignOgd a3(ExtendedSignOgd::Config{1.0, 1001.0, 800.0, 1.5, 20});
  auto late_range = [&](auto& ogd) {
    double lo = 1e18, hi = -1e18;
    for (int m = 0; m < 600; ++m) {
      ogd.observe_sign(env.exact_sign(ogd.current_k()));
      if (m >= 300) {
        lo = std::min(lo, ogd.current_k());
        hi = std::max(hi, ogd.current_k());
      }
    }
    return hi - lo;
  };
  const double range2 = late_range(a2);
  const double range3 = late_range(a3);
  EXPECT_LT(range3, range2);
}

// ----------------------------------------------------- baselines -----------

TEST(ValueBased, MovesOppositeToDerivative) {
  ValueBased vb(ValueBased::Config{1.0, 101.0, 50.0});
  vb.observe_derivative(0.1);
  EXPECT_LT(vb.current_k(), 50.0);
  const double after_down = vb.current_k();
  vb.observe_derivative(-0.5);
  EXPECT_GT(vb.current_k(), after_down);
}

TEST(ValueBased, UnnormalizedStepsCanSlamIntoBounds) {
  // A huge derivative estimate (time units) swings k across the interval —
  // the instability motivating the sign-based design.
  ValueBased vb(ValueBased::Config{1.0, 101.0, 50.0});
  vb.observe_derivative(1e6);
  EXPECT_DOUBLE_EQ(vb.current_k(), 1.0);
}

TEST(Exp3, ArmsSpanRangeAndProbabilitiesAreValid) {
  Exp3 exp3(Exp3::Config{2.0, 512.0, 16, 0.2, 7});
  EXPECT_EQ(exp3.arms().size(), 16u);
  EXPECT_NEAR(exp3.arms().front(), 2.0, 1e-9);
  EXPECT_NEAR(exp3.arms().back(), 512.0, 1e-9);
  for (std::size_t i = 1; i < exp3.arms().size(); ++i) {
    EXPECT_GT(exp3.arms()[i], exp3.arms()[i - 1]);
  }
}

TEST(Exp3, LearnsToPreferCheapArm) {
  // Costs grow with distance from k* = arms[2]. After many rounds the
  // highest-weight arm must be near-optimal in cost (EXP3 cannot reliably
  // separate arms whose costs differ by epsilon, so we check cost ratio
  // rather than exact arm identity).
  Exp3 exp3(Exp3::Config{1.0, 100.0, 8, 0.3, 11});
  const double k_star = exp3.arms()[2];
  const auto cost_of = [&](double k) { return 1.0 + 0.05 * (k - k_star) * (k - k_star); };
  for (int m = 0; m < 5000; ++m) {
    RoundFeedback fb;
    fb.loss_prev = 2.0;
    fb.loss_cur = 1.0;  // constant unit loss decrease
    fb.round_time = cost_of(exp3.current_k());
    exp3.observe(fb);
  }
  const auto& w = exp3.arm_weights();
  std::size_t best = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (w[i] > w[best]) best = i;
  }
  EXPECT_LE(cost_of(exp3.arms()[best]), 3.0 * cost_of(k_star));
  // The worst arm (farthest from k*) must not dominate.
  EXPECT_NE(best, w.size() - 1);
}

TEST(Exp3, FailedRoundGetsZeroReward) {
  Exp3 exp3(Exp3::Config{1.0, 100.0, 4, 0.2, 13});
  RoundFeedback fb;
  fb.loss_prev = 1.0;
  fb.loss_cur = 2.0;  // loss increased
  fb.round_time = 5.0;
  EXPECT_NO_THROW(exp3.observe(fb));  // must not blow up on +inf cost
}

TEST(ContinuousBandit, PlaysWithinBoundsAndConverges) {
  ContinuousBandit cb(ContinuousBandit::Config{1.0, 201.0, 0.0, 0.05, 17});
  const double k_star = 60.0;
  for (int m = 0; m < 4000; ++m) {
    const double k = cb.current_k();
    EXPECT_GE(k, 1.0);
    EXPECT_LE(k, 201.0);
    RoundFeedback fb;
    fb.loss_prev = 2.0;
    fb.loss_cur = 1.0;
    fb.round_time = 1.0 + 0.002 * (k - k_star) * (k - k_star);
    cb.observe(fb);
  }
  EXPECT_NEAR(cb.center(), k_star, 60.0);  // noisy, but in the right region
}

TEST(BanditCost, TimePerUnitLossDecrease) {
  RoundFeedback fb;
  fb.loss_prev = 3.0;
  fb.loss_cur = 2.0;
  fb.round_time = 4.0;
  EXPECT_DOUBLE_EQ(bandit_round_cost(fb), 4.0);
  fb.loss_cur = 3.5;
  EXPECT_TRUE(std::isinf(bandit_round_cost(fb)));
}

// ----------------------------------------------------- misc ----------------

TEST(ReplayController, ReplaysThenHoldsLast) {
  ReplayK replay({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(replay.current_k(), 10.0);
  replay.observe({});
  EXPECT_DOUBLE_EQ(replay.current_k(), 20.0);
  replay.observe({});
  replay.observe({});
  replay.observe({});
  EXPECT_DOUBLE_EQ(replay.current_k(), 30.0);
  EXPECT_THROW(ReplayK({}), std::invalid_argument);
}

TEST(ControllerFactory, BuildsAllAndRejectsUnknown) {
  ControllerConfig cfg;
  cfg.kmin = 2.0;
  cfg.kmax = 100.0;
  for (const char* name :
       {"sign_ogd", "extended_sign_ogd", "value_based", "exp3", "continuous_bandit"}) {
    cfg.name = name;
    EXPECT_EQ(make_controller(cfg)->name(), name);
  }
  cfg.name = "fixed";
  cfg.fixed_k = 10.0;
  EXPECT_EQ(make_controller(cfg)->name(), "fixed");
  cfg.name = "bogus";
  EXPECT_THROW(make_controller(cfg), std::invalid_argument);
}

TEST(RegretBounds, FormulasAndH) {
  EXPECT_NEAR(regret_bound_exact(2.0, 10.0, 50), 2.0 * 10.0 * 10.0, 1e-9);
  EXPECT_NEAR(regret_bound_estimated(2.0, 3.0, 10.0, 50), 6.0 * 10.0 * 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(h_for_flip_probability(1.0), 1.0);  // exact signs => H = 1
  EXPECT_DOUBLE_EQ(h_for_flip_probability(0.75), 2.0);
  EXPECT_THROW(h_for_flip_probability(0.5), std::invalid_argument);
}

}  // namespace
}  // namespace fedsparse::online
