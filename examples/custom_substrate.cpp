// Driving the lower-level APIs directly: build a custom non-i.i.d. dataset
// (Dirichlet partition), a custom model, pick a method and controller by
// hand, and run the Simulation without the FederatedTrainer convenience
// wrapper. This is the extension surface a downstream user would start from
// (e.g. swapping in a new sparsification rule or a new cost signal).
//
//   ./examples/custom_substrate [--alpha=0.3] [--rounds=150]
#include <cstdio>

#include "core/fedsparse.h"

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    const double alpha = flags.get_double("alpha", 0.3, "Dirichlet concentration (lower = more skewed)");
    const long rounds = flags.get_int("rounds", 150, "training rounds");
    flags.check_unknown();

    // 1. Dataset: 10-class, 16x16 images, 8 clients, Dirichlet(alpha) skew.
    data::SyntheticConfig dcfg;
    dcfg.num_classes = 10;
    dcfg.channels = 1;
    dcfg.height = 16;
    dcfg.width = 16;
    dcfg.num_clients = 8;
    dcfg.samples_per_client = 150;
    dcfg.test_samples = 800;
    dcfg.partition = data::PartitionKind::kDirichlet;
    dcfg.dirichlet_alpha = alpha;
    dcfg.seed = 13;
    auto dataset = data::make_synthetic(dcfg);
    std::printf("dataset: %zu clients, %zu training samples, Dirichlet(%g)\n",
                dataset.num_clients(), dataset.total_samples(), alpha);
    for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
      const auto hist = dataset.clients[i].class_histogram();
      std::size_t dominant = 0;
      for (std::size_t c = 1; c < hist.size(); ++c) {
        if (hist[c] > hist[dominant]) dominant = c;
      }
      std::printf("  client %zu: %4zu samples, dominant class %zu (%zu of them)\n", i,
                  dataset.clients[i].size(), dominant, hist[dominant]);
    }

    // 2. Model: a small CNN from the nn substrate.
    auto factory = nn::cnn(1, 16, 16, 4, 8, 32, 10);
    util::Rng probe(1);
    const std::size_t dim = factory(probe)->dim();
    std::printf("model: CNN with D = %zu parameters\n", dim);

    // 3. Method + controller, assembled by hand.
    auto method = sparsify::make_method("fab_topk", dim, /*seed=*/3);
    auto controller = std::make_unique<online::ExtendedSignOgd>(online::ExtendedSignOgd::Config{
        /*kmin=*/std::max(2.0, 0.002 * static_cast<double>(dim)),
        /*kmax=*/static_cast<double>(dim),
        /*initial_k=*/0.0, /*alpha=*/1.5, /*update_window=*/15});

    // 4. Simulation.
    fl::SimulationConfig scfg;
    scfg.lr = 0.05f;
    scfg.batch = 16;
    scfg.max_rounds = static_cast<std::size_t>(rounds);
    scfg.comm_time = 10.0;
    scfg.eval_every = 25;
    scfg.seed = 17;
    fl::Simulation sim(scfg, std::move(dataset), factory, std::move(method),
                       std::move(controller));
    const auto res = sim.run();
    std::printf("\nfinal: loss=%.4f accuracy=%.4f rounds=%zu time=%.1f\n", res.final_loss,
                res.final_accuracy, res.rounds_run, res.total_time);
    std::printf("k went from %.0f to %.0f\n", res.k_sequence.front(), res.k_sequence.back());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
