// Adaptive vs fixed sparsity: the paper's core pitch, end to end.
//
// Trains the same federated task three ways — a small fixed k, a large fixed
// k, and Algorithm 3's online-adapted k — under one communication budget, and
// reports time-to-target-loss. The adaptive run should approach the better of
// the two fixed choices without knowing the communication time in advance.
//
//   ./examples/adaptive_vs_fixed [--beta=10] [--target_loss=2.5]
#include <cstdio>

#include "core/fedsparse.h"

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    const double beta = flags.get_double("beta", 10.0, "communication time of a full exchange");
    const double target = flags.get_double("target_loss", 2.5, "stop when global loss reaches");
    const long max_rounds = flags.get_int("max_rounds", 600, "safety cap on rounds");
    flags.check_unknown();

    core::TrainerConfig base;
    base.dataset.name = "femnist";
    base.dataset.scale = 0.08;
    base.model.name = "mlp";
    base.model.hidden = 32;
    base.method = "fab_topk";
    base.sim.lr = 0.05f;
    base.sim.comm_time = beta;
    base.sim.max_rounds = static_cast<std::size_t>(max_rounds);
    base.sim.target_loss = target;
    base.sim.eval_every = 10;
    base.sim.seed = 7;

    core::FederatedTrainer probe(base);
    const auto d = static_cast<double>(probe.dim());
    std::printf("D = %.0f, beta = %g, target loss = %g\n\n", d, beta, target);
    std::printf("%-24s %-10s %-12s %-12s %-10s\n", "configuration", "rounds", "time",
                "final_loss", "final_acc");

    auto report = [](const char* name, const fl::SimulationResult& r) {
      std::printf("%-24s %-10zu %-12.1f %-12.4f %-10.4f%s\n", name, r.rounds_run, r.total_time,
                  r.final_loss, r.final_accuracy, r.reached_target ? "" : "  (missed target)");
    };

    {
      core::TrainerConfig cfg = base;  // tiny k: cheap rounds, slow learning
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = d / 500.0;
      report("fixed k = D/500", core::FederatedTrainer(cfg).run());
    }
    {
      core::TrainerConfig cfg = base;  // huge k: fast learning, dear rounds
      cfg.controller.name = "fixed";
      cfg.controller.fixed_k = d / 2.0;
      report("fixed k = D/2", core::FederatedTrainer(cfg).run());
    }
    {
      core::TrainerConfig cfg = base;  // Algorithm 3 finds the trade-off online
      cfg.controller.name = "extended_sign_ogd";
      const auto res = core::FederatedTrainer(cfg).run();
      report("adaptive (Algorithm 3)", res);
      util::RunningStat tail;
      for (std::size_t i = res.k_sequence.size() / 2; i < res.k_sequence.size(); ++i) {
        tail.add(res.k_sequence[i]);
      }
      std::printf("\nadaptive k settled around %.0f (of D = %.0f) for beta = %g\n", tail.mean(),
                  d, beta);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
