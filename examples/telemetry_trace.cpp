// Telemetry walkthrough: run a small FAB-top-k training with the telemetry
// subsystem enabled, dump a Chrome trace + round-metrics JSONL, and print the
// registry's counters and gauges at the end of the run.
//
//   ./examples/telemetry_trace [--rounds=60] [--out=telemetry_out]
//
// Afterwards:
//   python3 scripts/trace_summary.py telemetry_out/metrics.jsonl \
//       --chrome telemetry_out/trace.json
// and load telemetry_out/trace.json in chrome://tracing or
// https://ui.perfetto.dev to see the per-stage / per-shard span tracks.
#include <cstdio>
#include <filesystem>

#include "core/fedsparse.h"

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    const long rounds = flags.get_int("rounds", 60, "training rounds");
    const std::string out = flags.get_string("out", "telemetry_out", "output directory");
    flags.check_unknown();
    std::filesystem::create_directories(out);

    core::TrainerConfig cfg;
    cfg.dataset.name = "femnist";
    cfg.dataset.scale = 0.08;  // ~12 clients, quick on a laptop
    cfg.model.name = "mlp";
    cfg.model.hidden = 32;
    cfg.method = "fab_topk";
    cfg.controller.name = "extended_sign_ogd";  // Algorithm 3 drives k
    cfg.sim.max_rounds = static_cast<std::size_t>(rounds);
    cfg.sim.comm_time = 10.0;
    cfg.sim.eval_every = 20;
    cfg.sim.seed = 42;

    // The whole telemetry layer hangs off these three fields. Everything is
    // dormant (and the run byte-identical) when enabled stays false.
    cfg.sim.telemetry.enabled = true;
    cfg.sim.telemetry.chrome_trace_path = out + "/trace.json";
    cfg.sim.telemetry.metrics_jsonl_path = out + "/metrics.jsonl";

    core::FederatedTrainer trainer(cfg);
    const auto result = trainer.run();
    std::printf("trained %zu rounds: loss=%.4f accuracy=%.4f\n", result.rounds_run,
                result.final_loss, result.final_accuracy);

    // The registry keeps its cumulative totals after the run — scrape and
    // print them. (The per-round values live in metrics.jsonl.)
    std::printf("\n%-32s %-10s %s\n", "metric", "kind", "value");
    for (const auto& s : util::MetricRegistry::instance().scrape()) {
      const char* kind = s.kind == util::MetricKind::kCounter  ? "counter"
                         : s.kind == util::MetricKind::kGauge ? "gauge"
                                                              : "histogram";
      if (s.value == 0.0 && s.kind != util::MetricKind::kGauge) continue;
      std::printf("%-32s %-10s %.4g", s.name.c_str(), kind, s.value);
      if (s.kind == util::MetricKind::kHistogram) {
        std::printf("  buckets:");
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (b < s.bounds.size()) {
            std::printf(" le%.0f=%llu", s.bounds[b],
                        static_cast<unsigned long long>(s.buckets[b]));
          } else {
            std::printf(" inf=%llu", static_cast<unsigned long long>(s.buckets[b]));
          }
        }
      }
      std::printf("\n");
    }

    std::printf("\nwrote %s/trace.json and %s/metrics.jsonl\n", out.c_str(), out.c_str());
    std::printf("summarize: python3 scripts/trace_summary.py %s/metrics.jsonl --chrome "
                "%s/trace.json\n", out.c_str(), out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
