// Heterogeneous networks end to end: what stragglers and churn do to a round,
// and how the adaptive controller reacts.
//
// Part 1 prices one synchronized round by hand under a bimodal fast/slow
// population — the straggler formula
//   τ_m = max_i (compute_i + uplink_i(2·|J_i|)) + downlink(broadcast)
// versus the homogeneous Section V model, for the same payloads.
//
// Part 2 trains the same federated task under "uniform" and "bimodal" with
// Algorithm 3 adapting k, then reports where k settled, who bound the rounds,
// and each client's realized bytes on the wire.
//
//   ./examples/network_scenarios [--rounds=150] [--beta=10]
#include <cstdio>

#include "core/fedsparse.h"

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    const double beta = flags.get_double("beta", 10.0, "communication time of a full exchange");
    const long rounds = flags.get_int("rounds", 150, "training rounds per scenario");
    flags.check_unknown();

    // --- Part 1: one round, priced by hand --------------------------------
    const std::size_t n = 4, dim = 10000, k = 200;
    fl::TimingModel nominal{beta, 1.0, dim};
    fl::NetworkConfig net;
    net.profiles.assign(n, fl::ClientProfile{});
    net.profiles[3] = {0.1, 0.5, 2.0};  // one DSL straggler: 10x slower uplink

    fl::NetworkModel model(nominal, net, n, /*seed=*/1);
    model.begin_round(1);
    const std::vector<std::size_t> ids = {0, 1, 2, 3};
    // Everyone uploads 2k values; the broadcast carries 2k values back.
    const std::vector<double> uplinks(n, 2.0 * static_cast<double>(k));
    const auto tau = model.round_time(ids, uplinks, 2.0 * k, 2.0 * k);
    std::printf("one round, k=%zu of D=%zu, beta=%g\n", k, dim, beta);
    std::printf("  homogeneous Section V model: tau = %.3f\n", nominal.theta(k));
    std::printf("  bimodal straggler formula:   tau = %.3f (bound by client %lld)\n\n",
                tau.time, static_cast<long long>(tau.slowest_client));

    // --- Part 2: adaptive k under three scenarios -------------------------
    // churn_heavy adds the cross-device regime: most clients offline per
    // round, accumulating locally and flushing their residuals on rejoin.
    for (const char* scenario : {"uniform", "bimodal", "churn_heavy"}) {
      core::TrainerConfig cfg;
      cfg.dataset.name = "femnist";
      cfg.dataset.scale = 0.08;
      cfg.model.name = "mlp";
      cfg.model.hidden = 32;
      cfg.method = "fab_topk";
      cfg.scenario = scenario;
      cfg.controller.name = "extended_sign_ogd";
      cfg.sim.comm_time = beta;
      cfg.sim.max_rounds = static_cast<std::size_t>(rounds);
      cfg.sim.eval_every = 10;
      cfg.sim.seed = 7;

      const auto res = core::FederatedTrainer(cfg).run();
      const auto [modal, modal_count] = res.modal_straggler();
      std::printf("%s: loss %.4f after %zu rounds (cost %.1f), adaptive k settled ~%.0f\n",
                  scenario, res.final_loss, res.rounds_run, res.total_time, res.tail_k_mean());
      const std::size_t fleet = res.client_rounds_participated.size();
      std::size_t thin_rounds = 0;  // rounds that lost clients to churn
      for (const auto& r : res.records) thin_rounds += r.participants < fleet ? 1 : 0;
      if (thin_rounds > 0) {
        std::printf("  churn: %zu/%zu rounds ran without the full fleet\n", thin_rounds,
                    res.rounds_run);
      }
      if (modal >= 0) {
        std::printf("  straggler: client %lld bound %zu/%zu rounds\n",
                    static_cast<long long>(modal), modal_count, res.rounds_run);
      } else {
        std::printf("  straggler: none (homogeneous rounds)\n");
      }
      const auto traffic = fl::client_traffic_rows(
          res.client_uplink_values, res.client_downlink_values, res.client_rounds_participated);
      double total_up = 0.0;
      for (const auto& row : traffic) total_up += row.uplink_bytes;
      std::printf("  realized uplink: %.2f MB total across %zu clients\n\n", total_up / 1e6,
                  traffic.size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
