// Quickstart: train a federated model with FAB-top-k sparsification and the
// Algorithm-3 adaptive sparsity controller, then print the learning curve.
//
//   ./examples/quickstart [--rounds=200] [--beta=10] [--method=fab_topk]
//
// This is the 20-line version of what the paper's system does end to end:
// non-i.i.d. clients, sparse gradient exchange, and online adaptation of the
// sparsity degree k to the communication/computation trade-off.
#include <cstdio>

#include "core/fedsparse.h"

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    const long rounds = flags.get_int("rounds", 200, "training rounds");
    const double beta = flags.get_double("beta", 10.0, "communication time of a full exchange");
    const std::string method = flags.get_string("method", "fab_topk", "sparsification method");
    const double lr = flags.get_double("lr", 0.05, "SGD step size");
    flags.check_unknown();

    core::TrainerConfig cfg;
    cfg.dataset.name = "femnist";   // synthetic FEMNIST-like, non-i.i.d. by writer
    cfg.dataset.scale = 0.08;       // ~12 clients — quick on a laptop
    cfg.model.name = "mlp";
    cfg.model.hidden = 32;
    cfg.method = method;
    cfg.controller.name = "extended_sign_ogd";  // Algorithm 3
    cfg.sim.max_rounds = static_cast<std::size_t>(rounds);
    cfg.sim.lr = static_cast<float>(lr);
    cfg.sim.comm_time = beta;
    cfg.sim.eval_every = 20;
    cfg.sim.seed = 42;

    core::FederatedTrainer trainer(cfg);
    std::printf("model dimension D = %zu\n", trainer.dim());
    const auto result = trainer.run();

    std::printf("\n%-8s %-12s %-10s %-10s %-8s\n", "round", "time", "loss", "accuracy", "k");
    for (const auto& [time, loss] : result.loss_curve()) {
      (void)time;
      (void)loss;
    }
    for (const auto& rec : result.records) {
      if (std::isnan(rec.global_loss)) continue;
      std::printf("%-8zu %-12.1f %-10.4f %-10.4f %-8.0f\n", rec.round, rec.time, rec.global_loss,
                  rec.accuracy, rec.k_continuous);
    }
    std::printf("\nfinal: loss=%.4f accuracy=%.4f after %zu rounds (normalized time %.1f)\n",
                result.final_loss, result.final_accuracy, result.rounds_run, result.total_time);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
