// Heterogeneous FL tasks: the paper's introduction scenario.
//
// Task A — "mobile phones in one city": fast network (small β), slow
// computation. Task B — "micro-datacenters across the world": slow network
// (large β), fast computation. The same adaptive algorithm, with no
// per-deployment tuning, should learn a *large* k for task A (communication
// is cheap, spend it) and a *small* k for task B (communication is the
// bottleneck, sparsify hard).
//
//   ./examples/heterogeneous_tasks [--rounds=250]
#include <cstdio>

#include "core/fedsparse.h"

namespace {

struct TaskSpec {
  const char* name;
  double comm_time;     // β: full-exchange time relative to...
  double compute_time;  // ...one round of local computation
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsparse;
  try {
    util::Flags flags(argc, argv);
    const long rounds = flags.get_int("rounds", 250, "training rounds per task");
    flags.check_unknown();

    const TaskSpec tasks[] = {
        {"A: city mobiles (fast net, slow compute)", 0.1, 1.0},
        {"B: global micro-DCs (slow net, fast compute)", 100.0, 1.0},
    };

    std::printf("%-48s %-12s %-14s %-12s\n", "task", "final_loss", "learned k", "k / D");
    for (const auto& task : tasks) {
      core::TrainerConfig cfg;
      cfg.dataset.name = "femnist";
      cfg.dataset.scale = 0.08;
      cfg.model.name = "mlp";
      cfg.model.hidden = 32;
      cfg.method = "fab_topk";
      cfg.controller.name = "extended_sign_ogd";
      cfg.sim.lr = 0.05f;
      cfg.sim.comm_time = task.comm_time;
      cfg.sim.compute_time = task.compute_time;
      cfg.sim.max_rounds = static_cast<std::size_t>(rounds);
      cfg.sim.eval_every = 25;
      cfg.sim.seed = 11;

      core::FederatedTrainer trainer(cfg);
      const auto d = static_cast<double>(trainer.dim());
      const auto res = trainer.run();
      util::RunningStat tail;
      for (std::size_t i = res.k_sequence.size() / 2; i < res.k_sequence.size(); ++i) {
        tail.add(res.k_sequence[i]);
      }
      std::printf("%-48s %-12.4f %-14.0f %-12.4f\n", task.name, res.final_loss, tail.mean(),
                  tail.mean() / d);
    }
    std::printf("\nexpected: task A learns a much larger sparsity degree than task B —\n"
                "the algorithm adapts k to each deployment's comm/compute trade-off.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
