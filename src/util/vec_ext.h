// Shared 8-lane vector helpers for the hot paths: the GEMM dot kernels
// (tensor/matrix.cpp), the top-k threshold scans, and the accumulator adds.
// One home for the GCC/Clang portable vector-extension idiom — GCC 12's SLP
// pass does not vectorize the equivalent scalar stripe code — with a guarded
// x86 movemask fast path: extracting a per-lane predicate through memcpy
// costs ~7 uops per 8 lanes, while vmovmskps is one, and the threshold scan
// tests a predicate for every 8 entries it touches. Non-x86 GNU targets take
// the memcpy reduction; non-GNU compilers compile the callers' scalar
// branches only (FEDSPARSE_VEC_EXT stays undefined).
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define FEDSPARSE_VEC_EXT 1

#include <cstdint>
#include <cstring>

#if defined(__AVX__)
#include <immintrin.h>
#endif

namespace fedsparse::util::vec {

inline constexpr std::size_t kLanes = 8;
typedef float v8sf __attribute__((vector_size(kLanes * sizeof(float))));
typedef std::int32_t v8si __attribute__((vector_size(kLanes * sizeof(std::int32_t))));

inline v8sf load8(const float* p) {
  v8sf v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store8(float* p, v8sf v) { std::memcpy(p, &v, sizeof v); }

/// |x| per lane (clears the sign bit; exact for every value incl. NaN).
inline v8sf abs8(v8sf x) {
  v8si b;
  std::memcpy(&b, &x, sizeof b);
  b &= 0x7fffffff;
  std::memcpy(&x, &b, sizeof x);
  return x;
}

/// Lane-wise maximum. NaN handling follows the ternary select (a > NaN is
/// false, so a NaN in `b` wins the lane) — callers that must not lose NaNs
/// reduce over abs_bits8 instead.
inline v8sf max8(v8sf a, v8sf b) { return a > b ? a : b; }

/// |x| bit patterns per lane, as signed ints. Absolute-value bits fit the
/// positive signed range, IEEE bit order equals magnitude order for non-NaN
/// values, and NaN payloads rank strictly above +inf's bits — so a signed
/// lane max over these never silently drops a NaN the way a float max does.
inline v8si abs_bits8(v8sf x) {
  v8si b;
  std::memcpy(&b, &x, sizeof b);
  b &= 0x7fffffff;
  return b;
}

/// Lane-wise signed-integer maximum.
inline v8si max8i(v8si a, v8si b) { return a > b ? a : b; }

/// Horizontal maximum of the 8 signed-int lanes.
inline std::int32_t reduce_max8i(v8si v) {
  std::int32_t l[kLanes];
  std::memcpy(l, &v, sizeof l);
  const std::int32_t a = l[0] > l[1] ? l[0] : l[1];
  const std::int32_t b = l[2] > l[3] ? l[2] : l[3];
  const std::int32_t c = l[4] > l[5] ? l[4] : l[5];
  const std::int32_t d = l[6] > l[7] ? l[6] : l[7];
  const std::int32_t ab = a > b ? a : b;
  const std::int32_t cd = c > d ? c : d;
  return ab > cd ? ab : cd;
}

/// One bit per lane of a comparison result (bit j set iff lane j is true).
inline int lane_mask(v8si m) {
#if defined(__AVX__)
  return _mm256_movemask_ps(_mm256_castsi256_ps(reinterpret_cast<__m256i>(m)));
#else
  std::int32_t w[kLanes];
  std::memcpy(w, &m, sizeof w);
  int mask = 0;
  for (std::size_t j = 0; j < kLanes; ++j) mask |= (w[j] != 0) << j;
  return mask;
#endif
}

/// True when any lane of a comparison result is set.
inline bool any_lane(v8si m) {
#if defined(__AVX__)
  return lane_mask(m) != 0;
#else
  std::int64_t w[4];
  std::memcpy(w, &m, sizeof w);
  return ((w[0] | w[1]) | (w[2] | w[3])) != 0;
#endif
}

/// Horizontal maximum of the 8 lanes (same NaN caveat as max8).
inline float reduce_max8(v8sf v) {
  float l[kLanes];
  std::memcpy(l, &v, sizeof l);
  const float a = l[0] > l[1] ? l[0] : l[1];
  const float b = l[2] > l[3] ? l[2] : l[3];
  const float c = l[4] > l[5] ? l[4] : l[5];
  const float d = l[6] > l[7] ? l[6] : l[7];
  const float ab = a > b ? a : b;
  const float cd = c > d ? c : d;
  return ab > cd ? ab : cd;
}

}  // namespace fedsparse::util::vec
#endif  // GNUC || clang
