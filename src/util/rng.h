// Deterministic random number generation for reproducible simulations.
//
// All stochastic components of fedsparse draw from `Rng`, a small
// xoshiro256**-based generator with hand-rolled distributions so that a given
// seed produces identical streams on every platform/standard library.
// `split()` derives statistically independent child streams (per client, per
// round) from a parent seed via SplitMix64, which is how the federated
// simulation keeps client behaviour reproducible regardless of the number of
// worker threads.
#pragma once

#include <cstdint>
#include <cmath>
#include <cstddef>
#include <vector>

namespace fedsparse::util {

/// SplitMix64 step: maps any 64-bit state to a well-mixed 64-bit output.
/// Used both for seeding and for deriving child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**) with portable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    cached_normal_valid_ = false;
  }

  /// Derives an independent child generator; mixing in `stream_id` gives
  /// distinct streams for e.g. (client, round) pairs.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9E6A4C15ULL + stream_id * 0xD2B74407B1CE6E93ULL);
    Rng child(splitmix64(sm));
    return child;
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next_u64(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform integer in [0, bound). Lemire's multiply-shift with rejection.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection sampling on the top bits keeps the result exactly uniform.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() noexcept {
    if (cached_normal_valid_) {
      cached_normal_valid_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    cached_normal_valid_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index from an (unnormalized) non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return uniform_u64(weights.empty() ? 1 : weights.size());
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u < 0.0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool cached_normal_valid_ = false;
};

}  // namespace fedsparse::util
