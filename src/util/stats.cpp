#include "util/stats.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace fedsparse::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  if (idx > 0) --idx;
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

std::vector<std::pair<double, double>> EmpiricalCdf::steps() const {
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 100.0) / 100.0;
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

// ------------------------------------------------------------- telemetry ---

namespace {
std::atomic<bool> g_telemetry{false};
}  // namespace

bool telemetry_enabled() noexcept { return g_telemetry.load(std::memory_order_relaxed); }

void set_telemetry_enabled(bool on) noexcept {
  g_telemetry.store(on, std::memory_order_relaxed);
}

// Registry internals. One metric table (name, kind, slot); counters index a
// per-shard counters array, histograms a per-shard flattened bucket array,
// gauges a central array written only under the enable flag (the simulation
// publishes them from its serial thread). Shards are owned by the registry
// and never freed, so a thread_local raw pointer stays valid after the
// owning thread exits and the counts it accumulated keep contributing.
struct MetricRegistry::Impl {
  struct Metric {
    std::string name;
    MetricKind kind;
    std::size_t slot;        // counter slot / gauge slot / histogram bucket base
    std::size_t buckets = 0; // histogram only: bounds.size() + 1
    std::vector<double> bounds;
  };
  struct Shard {
    std::vector<std::uint64_t> counters;
    std::vector<std::uint64_t> hbuckets;
  };

  // Registration, shard creation/growth, scrape and reset serialize on this
  // mutex; add/observe on existing slots touch only the caller's shard.
  mutable std::mutex mu;
  std::vector<Metric> metrics;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<double> gauges;      // value slots; resized under mu
  std::size_t counter_slots = 0;
  std::size_t bucket_slots = 0;

  static thread_local Shard* tls_shard;

  std::size_t find_or_add(const std::string& name, MetricKind kind,
                          std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t id = 0; id < metrics.size(); ++id) {
      if (metrics[id].name != name) continue;
      if (metrics[id].kind != kind) {
        throw std::logic_error("metric '" + name + "' re-registered with a different kind");
      }
      return id;
    }
    Metric m;
    m.name = name;
    m.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        m.slot = counter_slots++;
        break;
      case MetricKind::kGauge:
        m.slot = gauges.size();
        gauges.push_back(0.0);
        break;
      case MetricKind::kHistogram: {
        for (std::size_t i = 1; i < bounds.size(); ++i) {
          if (!(bounds[i] > bounds[i - 1])) {
            throw std::logic_error("histogram '" + name + "': bounds not strictly increasing");
          }
        }
        m.bounds = std::move(bounds);
        m.buckets = m.bounds.size() + 1;
        m.slot = bucket_slots;
        bucket_slots += m.buckets;
        break;
      }
    }
    metrics.push_back(std::move(m));
    return metrics.size() - 1;
  }

  // The calling thread's shard, sized for every metric registered so far.
  // Creation and growth are rare (first enabled publish per thread, or a
  // publish after later registrations) and take the registry mutex.
  Shard& shard() {
    Shard* s = tls_shard;
    if (s == nullptr) {
      auto owned = std::make_unique<Shard>();
      s = owned.get();
      std::lock_guard<std::mutex> lock(mu);
      s->counters.resize(counter_slots, 0);
      s->hbuckets.resize(bucket_slots, 0);
      shards.push_back(std::move(owned));
      tls_shard = s;
    }
    return *s;
  }

  void ensure_capacity(Shard& s) {
    std::lock_guard<std::mutex> lock(mu);
    if (s.counters.size() < counter_slots) s.counters.resize(counter_slots, 0);
    if (s.hbuckets.size() < bucket_slots) s.hbuckets.resize(bucket_slots, 0);
  }
};

thread_local MetricRegistry::Impl::Shard* MetricRegistry::Impl::tls_shard = nullptr;

MetricRegistry::Impl& MetricRegistry::impl() const {
  static Impl impl;
  return impl;
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry reg;
  return reg;
}

std::size_t MetricRegistry::counter(const std::string& name) {
  return impl().find_or_add(name, MetricKind::kCounter, {});
}

std::size_t MetricRegistry::gauge(const std::string& name) {
  return impl().find_or_add(name, MetricKind::kGauge, {});
}

std::size_t MetricRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  return impl().find_or_add(name, MetricKind::kHistogram, std::move(upper_bounds));
}

void MetricRegistry::add(std::size_t id, std::uint64_t n) noexcept {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  Impl::Shard& s = im.shard();
  const std::size_t slot = im.metrics[id].slot;
  if (slot >= s.counters.size()) im.ensure_capacity(s);
  s.counters[slot] += n;
}

void MetricRegistry::set(std::size_t id, double v) noexcept {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  im.gauges[im.metrics[id].slot] = v;
}

void MetricRegistry::observe(std::size_t id, double v) noexcept {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  Impl::Shard& s = im.shard();
  const Impl::Metric& m = im.metrics[id];
  if (m.slot + m.buckets > s.hbuckets.size()) im.ensure_capacity(s);
  // First bucket with v <= bound; the trailing bucket catches the overflow.
  std::size_t b = 0;
  while (b < m.bounds.size() && v > m.bounds[b]) ++b;
  ++s.hbuckets[m.slot + b];
}

std::vector<MetricSample> MetricRegistry::scrape() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<MetricSample> out;
  out.reserve(im.metrics.size());
  for (const Impl::Metric& m : im.metrics) {
    MetricSample s;
    s.name = m.name;
    s.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& sh : im.shards) {
          if (m.slot < sh->counters.size()) total += sh->counters[m.slot];
        }
        s.value = static_cast<double>(total);
        break;
      }
      case MetricKind::kGauge:
        s.value = im.gauges[m.slot];
        break;
      case MetricKind::kHistogram: {
        s.bounds = m.bounds;
        s.buckets.assign(m.buckets, 0);
        std::uint64_t total = 0;
        for (const auto& sh : im.shards) {
          if (m.slot + m.buckets > sh->hbuckets.size()) continue;
          for (std::size_t b = 0; b < m.buckets; ++b) s.buckets[b] += sh->hbuckets[m.slot + b];
        }
        for (const std::uint64_t c : s.buckets) total += c;
        s.value = static_cast<double>(total);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::reset() noexcept {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& sh : im.shards) {
    std::fill(sh->counters.begin(), sh->counters.end(), 0);
    std::fill(sh->hbuckets.begin(), sh->hbuckets.end(), 0);
  }
  std::fill(im.gauges.begin(), im.gauges.end(), 0.0);
}

std::size_t MetricRegistry::shard_count() const noexcept {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.shards.size();
}

// ----------------------------------------------------------------- spans ---

double telemetry_now_us() noexcept {
  // The epoch is the first call; all spans in a process share it so Chrome
  // trace timestamps from different threads line up.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch)
      .count();
}

struct SpanSink::Impl {
  // Bounds each thread's buffer between drains; spans beyond it are dropped
  // and counted, never silently lost.
  static constexpr std::size_t kMaxSpansPerThread = 1u << 20;

  struct Buffer {
    std::vector<Span> spans;
  };

  mutable std::mutex mu;
  std::vector<std::unique_ptr<Buffer>> buffers;
  std::atomic<std::uint64_t> overflow{0};

  static thread_local Buffer* tls_buffer;

  Buffer& buffer() {
    Buffer* b = tls_buffer;
    if (b == nullptr) {
      auto owned = std::make_unique<Buffer>();
      b = owned.get();
      std::lock_guard<std::mutex> lock(mu);
      buffers.push_back(std::move(owned));
      tls_buffer = b;
    }
    return *b;
  }
};

thread_local SpanSink::Impl::Buffer* SpanSink::Impl::tls_buffer = nullptr;

SpanSink::Impl& SpanSink::impl() const {
  static Impl impl;
  return impl;
}

SpanSink& SpanSink::instance() {
  static SpanSink sink;
  return sink;
}

void SpanSink::record(const char* track, double start_us, double dur_us) noexcept {
  Impl& im = impl();
  Impl::Buffer& b = im.buffer();
  if (b.spans.size() >= Impl::kMaxSpansPerThread) {
    im.overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.spans.push_back({track, start_us, dur_us});
}

std::size_t SpanSink::drain(std::vector<Span>& out) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const std::size_t before = out.size();
  for (const auto& b : im.buffers) {
    out.insert(out.end(), b->spans.begin(), b->spans.end());
    b->spans.clear();
  }
  // Start order is the natural trace order; ties (e.g. zero-duration spans
  // from distinct threads) break on the track name, then duration, so the
  // drained sequence is independent of buffer registration order.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
            [](const Span& a, const Span& b2) {
              if (a.start_us != b2.start_us) return a.start_us < b2.start_us;
              const int c = std::strcmp(a.track, b2.track);
              if (c != 0) return c < 0;
              return a.dur_us < b2.dur_us;
            });
  return out.size() - before;
}

void SpanSink::discard() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& b : im.buffers) b->spans.clear();
}

std::uint64_t SpanSink::overflow_count() const noexcept {
  return impl().overflow.load(std::memory_order_relaxed);
}

}  // namespace fedsparse::util
