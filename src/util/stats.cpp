#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace fedsparse::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  if (idx > 0) --idx;
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

std::vector<std::pair<double, double>> EmpiricalCdf::steps() const {
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 100.0) / 100.0;
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace fedsparse::util
