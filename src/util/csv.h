// CSV emission for experiment series.
//
// Bench binaries print the same rows/series the paper's figures plot; CsvWriter
// writes them both to stdout (for `tee`-style capture) and optionally to a
// file under an output directory so plots can be regenerated offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace fedsparse::util {

/// Writes rows of comma-separated values. All values are stringified with
/// enough precision to round-trip doubles.
class CsvWriter {
 public:
  /// Creates a writer; if `path` is non-empty the rows are also appended to
  /// that file (the file is truncated on construction). If `echo_stdout` is
  /// true every row is mirrored to stdout prefixed with `# <tag>,` so multiple
  /// series can share one stream.
  explicit CsvWriter(std::string path = {}, bool echo_stdout = true, std::string tag = {});

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  void header(const std::vector<std::string>& names);
  void row(const std::vector<double>& values);
  /// Mixed row: any cell can be text. Cells are RFC-4180 quoted as needed.
  void row_text(const std::vector<std::string>& cells);

  /// Formats a double compactly but losslessly.
  static std::string format(double v);

  /// RFC-4180 escaping: a cell containing a comma, double quote, CR or LF is
  /// wrapped in double quotes with embedded quotes doubled; anything else
  /// passes through verbatim. Applied by header()/row_text() and to the
  /// echo tag (once, at construction) so method names or tags with commas
  /// cannot corrupt the column structure.
  static std::string quote(const std::string& cell);

 private:
  void emit(const std::string& line);

  std::ofstream file_;
  bool file_open_ = false;
  bool echo_stdout_ = true;
  std::string tag_;
};

/// Ensures a directory exists (mkdir -p); returns false on failure.
bool ensure_directory(const std::string& path);

}  // namespace fedsparse::util
