// Tiny command-line flag parser for bench and example binaries.
//
// Supports `--name=value` and `--name value`. Unknown flags are an error so
// typos surface immediately. Every experiment binary documents its flags via
// `usage()`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fedsparse::util {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, char** argv);

  /// Declares a flag with a default, returning its parsed (or default) value.
  /// Declaration also whitelists the flag for `check_unknown()`.
  std::string get_string(const std::string& name, const std::string& default_value,
                         const std::string& help = {});
  double get_double(const std::string& name, double default_value, const std::string& help = {});
  long get_int(const std::string& name, long default_value, const std::string& help = {});
  bool get_bool(const std::string& name, bool default_value, const std::string& help = {});

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Throws if the command line contained flags never declared via get_*.
  void check_unknown() const;

  /// Human-readable flag summary collected from get_* calls.
  std::string usage(const std::string& program) const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, std::string> declared_;  // name -> "default | help"
};

}  // namespace fedsparse::util
