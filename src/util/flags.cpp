#include "util/flags.h"

#include <stdexcept>

namespace fedsparse::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag => boolean
    }
  }
}

std::string Flags::get_string(const std::string& name, const std::string& default_value,
                              const std::string& help) {
  declared_[name] = default_value + (help.empty() ? "" : "  # " + help);
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double Flags::get_double(const std::string& name, double default_value, const std::string& help) {
  const std::string s = get_string(name, std::to_string(default_value), help);
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + s + "'");
  }
}

long Flags::get_int(const std::string& name, long default_value, const std::string& help) {
  const std::string s = get_string(name, std::to_string(default_value), help);
  try {
    return std::stol(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + s + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool default_value, const std::string& help) {
  const std::string s = get_string(name, default_value ? "true" : "false", help);
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + s + "'");
}

void Flags::check_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (declared_.find(name) == declared_.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
  }
}

std::string Flags::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, info] : declared_) {
    out += "  --" + name + " (default: " + info + ")\n";
  }
  return out;
}

}  // namespace fedsparse::util
