#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace fedsparse::util {

namespace {
// Which pool (if any) owns the current thread, and its 1-based slot therein.
// Plain thread_locals: a worker belongs to exactly one pool for its lifetime.
thread_local const ThreadPool* tl_owner = nullptr;
thread_local std::size_t tl_slot = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

std::size_t ThreadPool::current_slot() const noexcept {
  return tl_owner == this ? tl_slot : 0;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_owner = this;
  tl_slot = worker_index + 1;  // slot 0 is reserved for non-worker threads
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::auto_grain(std::size_t n) const noexcept {
  // ~4 chunks per worker keeps the tail balanced without re-paying the atomic
  // too often; the 256 floor makes the per-chunk overhead negligible against
  // even single-instruction bodies.
  return std::max<std::size_t>(256, n / (4 * workers_.size()));
}

void ThreadPool::parallel_for_ranges(std::size_t n,
                                     const std::function<void(std::size_t, std::size_t)>& fn,
                                     std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = auto_grain(n);
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks == 1 || workers_.size() == 1) {
    fn(0, n);
    return;
  }

  // Work-stealing via a shared atomic chunk index: workers grab the next
  // chunk until exhausted. The calling thread participates too.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared = std::make_shared<Shared>();

  auto run_chunks = [shared, n, grain, chunks, &fn] {
    for (;;) {
      const std::size_t c = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(n, begin + grain);
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(shared->done_mutex);
        shared->done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.emplace(run_chunks);
  }
  cv_.notify_all();

  run_chunks();  // calling thread joins the work

  {
    std::unique_lock<std::mutex> lock(shared->done_mutex);
    shared->done_cv.wait(lock,
                         [&] { return shared->done.load(std::memory_order_acquire) >= chunks; });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_ranges(
      n, [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      grain);
}

}  // namespace fedsparse::util
