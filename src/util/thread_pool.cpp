#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace fedsparse::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Work-stealing via a shared atomic index: workers grab the next i until
  // exhausted. The calling thread participates too.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared = std::make_shared<Shared>();

  auto run_chunk = [shared, n, &fn] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(shared->done_mutex);
        shared->done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.emplace(run_chunk);
  }
  cv_.notify_all();

  run_chunk();  // calling thread joins the work

  {
    std::unique_lock<std::mutex> lock(shared->done_mutex);
    shared->done_cv.wait(lock, [&] { return shared->done.load(std::memory_order_acquire) >= n; });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace fedsparse::util
