#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fedsparse::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace fedsparse::util
