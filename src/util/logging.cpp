#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fedsparse::util {

namespace {

/// The initial level honors FEDSPARSE_LOG (debug|info|warn|error|off) so
/// benches get debug output without code changes; set_log_level still wins
/// once called.
int initial_level() {
  const char* env = std::getenv("FEDSPARSE_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(env, "off") == 0) return static_cast<int>(LogLevel::kOff);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  // Build the whole record first and emit it with ONE write: pool threads
  // logging concurrently then cannot interleave fragments of a line — stdio
  // locks each fwrite, so the record lands on stderr atomically.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace fedsparse::util
