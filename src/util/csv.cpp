#include "util/csv.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/logging.h"

namespace fedsparse::util {

CsvWriter::CsvWriter(std::string path, bool echo_stdout, std::string tag)
    : echo_stdout_(echo_stdout), tag_(quote(tag)) {
  if (!path.empty()) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) ensure_directory(p.parent_path().string());
    file_.open(path, std::ios::trunc);
    file_open_ = file_.is_open();
    if (!file_open_) log_warn() << "CsvWriter: could not open " << path;
  }
}

void CsvWriter::header(const std::vector<std::string>& names) { row_text(names); }

void CsvWriter::row(const std::vector<double>& values) {
  std::string line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line += ',';
    line += format(values[i]);
  }
  emit(line);
}

void CsvWriter::row_text(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += quote(cells[i]);
  }
  emit(line);
}

std::string CsvWriter::quote(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted += '"';
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::format(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void CsvWriter::emit(const std::string& line) {
  if (file_open_) file_ << line << '\n';
  if (echo_stdout_) {
    if (tag_.empty()) {
      std::printf("%s\n", line.c_str());
    } else {
      std::printf("%s,%s\n", tag_.c_str(), line.c_str());
    }
    std::fflush(stdout);
  }
}

bool ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return !ec;
}

}  // namespace fedsparse::util
