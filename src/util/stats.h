// Small statistics helpers: running moments, empirical CDFs, percentiles.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace fedsparse::util {

/// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set. Points are (x, P[X <= x]).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P[X <= x].
  double at(double x) const noexcept;
  /// Smallest sample x with P[X <= x] >= q, for q in (0, 1].
  double quantile(double q) const noexcept;
  std::size_t size() const noexcept { return sorted_.size(); }

  /// The full step function as (x, cdf) pairs, one per distinct sample.
  std::vector<std::pair<double, double>> steps() const;

 private:
  std::vector<double> sorted_;
};

/// Percentile (q in [0,100]) with linear interpolation; `values` is copied.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean; 0 for empty input.
double mean_of(const std::vector<double>& values) noexcept;

}  // namespace fedsparse::util
