// Small statistics helpers: running moments, empirical CDFs, percentiles —
// plus the process-wide telemetry layer: a metrics registry (counters, gauges,
// fixed-bucket histograms with lock-free per-thread shards merged
// deterministically at scrape time) and a span-based profiler
// (FEDSPARSE_SPAN RAII scopes feeding per-thread sinks).
//
// The layer lives in util/ — not fl/ — so sparsify/ and online/ can publish
// through it without a dependency on the simulation layer; the Chrome-trace
// and JSONL exporters that consume scrapes and drained spans are in
// fl/trace.h.
//
// Determinism contract: telemetry is OFF by default and every publish call is
// a branch-on-one-atomic no-op while it stays off — no allocation, no clock
// read, no RNG, so disabled runs are byte-identical to a build without the
// calls. When ON, publishes only read clocks and bump thread-local integers;
// the simulation's round traces are unchanged either way (pinned by
// tests/stats_test.cpp). Scrapes and drains are meant for quiescent points
// (round boundaries): counter totals are order-independent integer sums over
// the shards, histogram buckets are integer counts, and gauges are set from
// the serial simulation thread, so a scrape is identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fedsparse::util {

/// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set. Points are (x, P[X <= x]).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P[X <= x].
  double at(double x) const noexcept;
  /// Smallest sample x with P[X <= x] >= q, for q in (0, 1].
  double quantile(double q) const noexcept;
  std::size_t size() const noexcept { return sorted_.size(); }

  /// The full step function as (x, cdf) pairs, one per distinct sample.
  std::vector<std::pair<double, double>> steps() const;

 private:
  std::vector<double> sorted_;
};

/// Percentile (q in [0,100]) with linear interpolation; `values` is copied.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean; 0 for empty input.
double mean_of(const std::vector<double>& values) noexcept;

// ------------------------------------------------------------- telemetry ---

/// Master switch for the whole telemetry layer (registry writes + spans).
/// Off by default; every publish site is a relaxed-load branch while off.
bool telemetry_enabled() noexcept;
void set_telemetry_enabled(bool on) noexcept;

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One merged metric as seen by a scrape.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter: total. Gauge: last set value. Histogram: total observation count.
  double value = 0.0;
  /// Histogram only: inclusive upper bounds, plus one overflow bucket, so
  /// buckets.size() == bounds.size() + 1 and buckets[i] counts observations
  /// with bounds[i-1] < x <= bounds[i] (last bucket: x > bounds.back()).
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

/// Process-wide metrics registry. Registration (by name, deduplicated) takes
/// a mutex; the hot publish path touches only the calling thread's shard —
/// no locks, no atomics beyond the enable flag. Shards outlive their threads
/// so totals survive pool teardown.
class MetricRegistry {
 public:
  static MetricRegistry& instance();

  /// Register (or look up) a metric; returns a stable id for the publish
  /// calls below. Re-registering the same name with the same kind returns the
  /// same id; a kind mismatch throws std::logic_error. Histogram bounds must
  /// be strictly increasing; re-registration ignores the bounds argument.
  std::size_t counter(const std::string& name);
  std::size_t gauge(const std::string& name);
  std::size_t histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Publish. No-ops while telemetry is disabled. `id` must come from the
  /// matching register call above.
  void add(std::size_t id, std::uint64_t n = 1) noexcept;
  void set(std::size_t id, double v) noexcept;
  void observe(std::size_t id, double v) noexcept;

  /// Deterministic merged snapshot, metrics in registration order. Meant for
  /// quiescent points (no concurrent publishers).
  std::vector<MetricSample> scrape() const;

  /// Zeroes every counter/histogram shard and gauge (names stay registered).
  void reset() noexcept;

  /// Number of thread shards ever materialized — the off-mode
  /// zero-allocation test pins that disabled publishes never create one.
  std::size_t shard_count() const noexcept;

 private:
  MetricRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Typed handles over the registry: register once (cheap to copy), publish
/// through the id. Safe to construct eagerly — registration does not depend
/// on the enable flag.
class Counter {
 public:
  explicit Counter(const std::string& name) : id_(MetricRegistry::instance().counter(name)) {}
  void add(std::uint64_t n = 1) const noexcept { MetricRegistry::instance().add(id_, n); }

 private:
  std::size_t id_;
};

class Gauge {
 public:
  explicit Gauge(const std::string& name) : id_(MetricRegistry::instance().gauge(name)) {}
  void set(double v) const noexcept { MetricRegistry::instance().set(id_, v); }

 private:
  std::size_t id_;
};

class Histogram {
 public:
  Histogram(const std::string& name, std::vector<double> upper_bounds)
      : id_(MetricRegistry::instance().histogram(name, std::move(upper_bounds))) {}
  void observe(double v) const noexcept { MetricRegistry::instance().observe(id_, v); }

 private:
  std::size_t id_;
};

// ----------------------------------------------------------------- spans ---

/// One closed profiling span. `track` must be a string literal (or otherwise
/// outlive the sink drain) — the sink stores the pointer, not a copy.
struct Span {
  const char* track = nullptr;
  double start_us = 0.0;  // steady-clock µs since the process telemetry epoch
  double dur_us = 0.0;
};

/// Microseconds since the process telemetry epoch (steady clock).
double telemetry_now_us() noexcept;

/// Collects closed spans into per-thread buffers; drain() at quiescent points
/// merges, sorts by (start, track, duration) and clears. Buffers are capped
/// (overflow spans are dropped and counted) so an enabled-but-undrained
/// process cannot grow without bound.
class SpanSink {
 public:
  static MetricRegistry& registry() { return MetricRegistry::instance(); }
  static SpanSink& instance();

  void record(const char* track, double start_us, double dur_us) noexcept;
  /// Appends all buffered spans to `out` in deterministic order and clears
  /// the buffers. Returns the number of spans drained.
  std::size_t drain(std::vector<Span>& out);
  /// Drops everything buffered (e.g. stale spans from a previous run).
  void discard();
  /// Spans dropped to the per-thread cap since process start.
  std::uint64_t overflow_count() const noexcept;

 private:
  SpanSink() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII profiling scope. Reads the clock only when telemetry is enabled at
/// construction; a scope that started enabled records even if the flag flips
/// mid-scope.
class SpanScope {
 public:
  explicit SpanScope(const char* track) noexcept {
    if (telemetry_enabled()) {
      track_ = track;
      start_ = telemetry_now_us();
    }
  }
  ~SpanScope() {
    if (track_ != nullptr) {
      SpanSink::instance().record(track_, start_, telemetry_now_us() - start_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* track_ = nullptr;
  double start_ = 0.0;
};

#define FEDSPARSE_SPAN_CAT2(a, b) a##b
#define FEDSPARSE_SPAN_CAT(a, b) FEDSPARSE_SPAN_CAT2(a, b)
/// Profiles the enclosing scope under `track` (a string literal).
#define FEDSPARSE_SPAN(track) \
  ::fedsparse::util::SpanScope FEDSPARSE_SPAN_CAT(fedsparse_span_, __COUNTER__)(track)

}  // namespace fedsparse::util
