#pragma once

// Invariant contracts on the selection/aggregation layers.
//
// FEDSPARSE_CONTRACT(cond, msg) is compiled away entirely unless the build
// defines FEDSPARSE_CONTRACTS (CMake option of the same name, on in the
// sanitizer CI job). Contract sites guard invariants the optimized kernels
// rely on but cannot express in types: 64-bit selection keys are totally
// ordered descending after a merge, emitted uploads stay in-bounds and
// duplicate-free, chunk max-|a| summaries upper-bound every element they
// cover, and screening conserves aggregation mass. A violation aborts with
// the site's message — these are programmer errors, never data errors.

#ifdef FEDSPARSE_CONTRACTS

#include <cstdio>
#include <cstdlib>

namespace fedsparse::util {

[[noreturn]] inline void contract_failed(const char* cond, const char* msg, const char* file,
                                         int line) {
  std::fprintf(stderr, "fedsparse contract violated: %s [%s] at %s:%d\n", msg, cond, file, line);
  std::abort();
}

}  // namespace fedsparse::util

#define FEDSPARSE_CONTRACT(cond, msg) \
  ((cond) ? (void)0 : ::fedsparse::util::contract_failed(#cond, (msg), __FILE__, __LINE__))

#else

#define FEDSPARSE_CONTRACT(cond, msg) ((void)0)

#endif
