// Fixed-size thread pool with a blocking, chunked parallel_for.
//
// The federated simulation uses this to run per-client gradient computation
// concurrently, and the tensor GEMM threads its M-loop through it.
// Determinism is preserved because each client draws from its own RNG stream
// regardless of which worker executes it.
//
// Work is handed out in contiguous chunks ("grains") so the shared atomic and
// the std::function indirection are paid once per chunk, not once per index —
// the difference between ~5 ns and ~50 ns of overhead per element on fine
// loops.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedsparse::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Workspace slot of the executing thread in [0, size()]: this pool's
  /// workers occupy slots 1..size(), every other thread — including the
  /// parallel_for caller, which drains chunks itself — shares slot 0. A
  /// thread runs one task to completion before taking another (nested
  /// parallel_for calls drain their own chunks inline), so per-slot scratch
  /// such as the simulation's model workspaces is never used concurrently.
  std::size_t current_slot() const noexcept;

  /// Number of distinct slots current_slot() can return (size() + 1).
  std::size_t slot_count() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// invocations complete. Exceptions thrown by fn propagate (first one wins).
  ///
  /// `grain` is the number of consecutive indices a worker claims at a time.
  /// 0 selects the automatic grain max(256, n / (4 * threads)) — right for
  /// cheap per-index bodies (vector arithmetic). Pass grain = 1 when each
  /// index is heavy (per-client training) so work still spreads across
  /// workers.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Chunk interface: fn(begin, end) over disjoint ranges covering [0, n).
  /// Prefer this on hot paths — the callee loops natively over its range, so
  /// there is no per-index type-erased call at all.
  void parallel_for_ranges(std::size_t n,
                           const std::function<void(std::size_t, std::size_t)>& fn,
                           std::size_t grain = 0);

 private:
  void worker_loop(std::size_t worker_index);
  std::size_t auto_grain(std::size_t n) const noexcept;

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace fedsparse::util
