// Fixed-size thread pool with a blocking parallel_for.
//
// The federated simulation uses this to run per-client gradient computation
// concurrently. Determinism is preserved because each client draws from its
// own RNG stream regardless of which worker executes it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedsparse::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// invocations complete. Exceptions thrown by fn propagate (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace fedsparse::util
