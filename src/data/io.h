// Dataset file I/O: IDX (the MNIST/FEMNIST container format) and labelled
// CSV. Lets a downstream user run the real LEAF/FEMNIST data through the
// system instead of the synthetic substitute — point `load_idx_dataset` at
// the standard images/labels file pair.
//
// IDX format (big-endian):
//   images: magic 0x00000803, [count, rows, cols], then count*rows*cols u8
//   labels: magic 0x00000801, [count], then count u8
// Pixel bytes are scaled into [0, 1] floats.
#pragma once

#include <string>

#include "data/dataset.h"

namespace fedsparse::data {

/// Loads an images+labels IDX pair into a Dataset. Throws std::runtime_error
/// on malformed files (bad magic, truncated payload, count mismatch).
Dataset load_idx_dataset(const std::string& images_path, const std::string& labels_path,
                         std::size_t num_classes);

/// Writes a Dataset to a pair of IDX files (values are clamped to [0, 1] and
/// quantized to u8). Enables round-trip tests and exporting synthetic data.
void save_idx_dataset(const Dataset& ds, const std::string& images_path,
                      const std::string& labels_path);

/// Loads "label,f1,f2,..." rows. Feature count is inferred from the first
/// row; `channels`/`height`/`width` must multiply to it (pass 1,1,dim for
/// flat features). Lines starting with '#' are skipped.
Dataset load_csv_dataset(const std::string& path, std::size_t num_classes, std::size_t channels,
                         std::size_t height, std::size_t width);

/// Writes a Dataset as labelled CSV (round-trip counterpart).
void save_csv_dataset(const Dataset& ds, const std::string& path);

}  // namespace fedsparse::data
