// Dataset containers for the federated simulation.
//
// A Dataset is a dense (num_samples x feature_dim) matrix plus integer labels
// and the image geometry the nn layers need. Federated experiments use a
// FederatedDataset: one Dataset per client plus a held-out global test set.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace fedsparse::data {

using tensor::Matrix;

struct Dataset {
  Matrix x;                 // (num_samples x channels*height*width)
  std::vector<int> y;       // labels in [0, num_classes)
  std::size_t num_classes = 0;
  std::size_t channels = 1;
  std::size_t height = 0;
  std::size_t width = 0;

  std::size_t size() const noexcept { return y.size(); }
  std::size_t feature_dim() const noexcept { return channels * height * width; }
  bool empty() const noexcept { return y.empty(); }

  /// New dataset with the rows selected by `indices` (copies).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Per-class sample counts (length num_classes).
  std::vector<std::size_t> class_histogram() const;
};

struct FederatedDataset {
  std::vector<Dataset> clients;
  Dataset test;

  std::size_t num_clients() const noexcept { return clients.size(); }
  /// Total training samples across clients (the paper's C).
  std::size_t total_samples() const noexcept;
  /// Per-client data weights C_i / C used for aggregation.
  std::vector<double> data_weights() const;
};

}  // namespace fedsparse::data
