#include "data/io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fedsparse::data {

namespace {

constexpr std::uint32_t kImagesMagic = 0x00000803;
constexpr std::uint32_t kLabelsMagic = 0x00000801;

std::uint32_t read_u32_be(std::istream& in, const std::string& what) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) throw std::runtime_error("IDX: truncated while reading " + what);
  return (static_cast<std::uint32_t>(buf[0]) << 24) | (static_cast<std::uint32_t>(buf[1]) << 16) |
         (static_cast<std::uint32_t>(buf[2]) << 8) | static_cast<std::uint32_t>(buf[3]);
}

void write_u32_be(std::ostream& out, std::uint32_t v) {
  const unsigned char buf[4] = {static_cast<unsigned char>(v >> 24),
                                static_cast<unsigned char>(v >> 16),
                                static_cast<unsigned char>(v >> 8),
                                static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(buf), 4);
}

}  // namespace

Dataset load_idx_dataset(const std::string& images_path, const std::string& labels_path,
                         std::size_t num_classes) {
  std::ifstream images(images_path, std::ios::binary);
  if (!images.is_open()) throw std::runtime_error("IDX: cannot open " + images_path);
  if (read_u32_be(images, "images magic") != kImagesMagic) {
    throw std::runtime_error("IDX: bad magic in " + images_path);
  }
  const std::uint32_t count = read_u32_be(images, "image count");
  const std::uint32_t rows = read_u32_be(images, "rows");
  const std::uint32_t cols = read_u32_be(images, "cols");

  std::ifstream labels(labels_path, std::ios::binary);
  if (!labels.is_open()) throw std::runtime_error("IDX: cannot open " + labels_path);
  if (read_u32_be(labels, "labels magic") != kLabelsMagic) {
    throw std::runtime_error("IDX: bad magic in " + labels_path);
  }
  const std::uint32_t label_count = read_u32_be(labels, "label count");
  if (label_count != count) {
    throw std::runtime_error("IDX: image/label count mismatch (" + std::to_string(count) +
                             " vs " + std::to_string(label_count) + ")");
  }

  Dataset ds;
  ds.num_classes = num_classes;
  ds.channels = 1;
  ds.height = rows;
  ds.width = cols;
  const std::size_t dim = static_cast<std::size_t>(rows) * cols;
  ds.x.resize(count, dim);
  ds.y.resize(count);

  std::vector<unsigned char> pixel_row(dim);
  for (std::uint32_t i = 0; i < count; ++i) {
    images.read(reinterpret_cast<char*>(pixel_row.data()),
                static_cast<std::streamsize>(dim));
    if (!images) throw std::runtime_error("IDX: truncated image payload in " + images_path);
    float* out = ds.x.row(i);
    for (std::size_t j = 0; j < dim; ++j) out[j] = static_cast<float>(pixel_row[j]) / 255.0f;
    char lbl = 0;
    labels.read(&lbl, 1);
    if (!labels) throw std::runtime_error("IDX: truncated label payload in " + labels_path);
    const int label = static_cast<int>(static_cast<unsigned char>(lbl));
    if (static_cast<std::size_t>(label) >= num_classes) {
      throw std::runtime_error("IDX: label " + std::to_string(label) + " out of range");
    }
    ds.y[i] = label;
  }
  return ds;
}

void save_idx_dataset(const Dataset& ds, const std::string& images_path,
                      const std::string& labels_path) {
  if (ds.channels != 1) throw std::invalid_argument("IDX: only single-channel data supported");
  std::ofstream images(images_path, std::ios::binary | std::ios::trunc);
  if (!images.is_open()) throw std::runtime_error("IDX: cannot write " + images_path);
  write_u32_be(images, kImagesMagic);
  write_u32_be(images, static_cast<std::uint32_t>(ds.size()));
  write_u32_be(images, static_cast<std::uint32_t>(ds.height));
  write_u32_be(images, static_cast<std::uint32_t>(ds.width));
  const std::size_t dim = ds.feature_dim();
  std::vector<unsigned char> pixel_row(dim);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const float* in = ds.x.row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      const float clamped = std::clamp(in[j], 0.0f, 1.0f);
      pixel_row[j] = static_cast<unsigned char>(std::lround(clamped * 255.0f));
    }
    images.write(reinterpret_cast<const char*>(pixel_row.data()),
                 static_cast<std::streamsize>(dim));
  }

  std::ofstream labels(labels_path, std::ios::binary | std::ios::trunc);
  if (!labels.is_open()) throw std::runtime_error("IDX: cannot write " + labels_path);
  write_u32_be(labels, kLabelsMagic);
  write_u32_be(labels, static_cast<std::uint32_t>(ds.size()));
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const char lbl = static_cast<char>(ds.y[i]);
    labels.write(&lbl, 1);
  }
}

Dataset load_csv_dataset(const std::string& path, std::size_t num_classes, std::size_t channels,
                         std::size_t height, std::size_t width) {
  std::ifstream in(path);
  if (!in.is_open()) throw std::runtime_error("CSV: cannot open " + path);
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::string line;
  std::size_t dim = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string cell;
    if (!std::getline(ss, cell, ',')) continue;
    int label = 0;
    try {
      label = std::stoi(cell);
    } catch (const std::exception&) {
      throw std::runtime_error("CSV: bad label '" + cell + "' in " + path);
    }
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::runtime_error("CSV: label " + std::to_string(label) + " out of range");
    }
    std::vector<float> features;
    while (std::getline(ss, cell, ',')) {
      try {
        features.push_back(std::stof(cell));
      } catch (const std::exception&) {
        throw std::runtime_error("CSV: bad feature '" + cell + "' in " + path);
      }
    }
    if (dim == 0) {
      dim = features.size();
      if (dim == 0) throw std::runtime_error("CSV: row without features in " + path);
    } else if (features.size() != dim) {
      throw std::runtime_error("CSV: inconsistent feature count in " + path);
    }
    rows.push_back(std::move(features));
    labels.push_back(label);
  }
  if (channels * height * width != dim) {
    throw std::runtime_error("CSV: geometry " + std::to_string(channels) + "x" +
                             std::to_string(height) + "x" + std::to_string(width) +
                             " does not match feature count " + std::to_string(dim));
  }
  Dataset ds;
  ds.num_classes = num_classes;
  ds.channels = channels;
  ds.height = height;
  ds.width = width;
  ds.x.resize(rows.size(), dim);
  ds.y = std::move(labels);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), ds.x.row(i));
  }
  return ds;
}

void save_csv_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) throw std::runtime_error("CSV: cannot write " + path);
  out << "# label,features... (" << ds.size() << " samples, " << ds.feature_dim()
      << " features)\n";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    out << ds.y[i];
    const float* row = ds.x.row(i);
    for (std::size_t j = 0; j < ds.feature_dim(); ++j) out << ',' << row[j];
    out << '\n';
  }
}

}  // namespace fedsparse::data
