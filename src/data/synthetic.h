// Synthetic federated datasets standing in for FEMNIST and CIFAR-10.
//
// The real datasets are not available offline; per DESIGN.md §1 we substitute
// Gaussian-prototype class distributions with per-client ("per-writer") style
// transforms. What the GS / adaptive-k code paths consume is gradients and
// losses whose heterogeneity across clients drives all the paper's effects —
// these generators reproduce that heterogeneity with controllable knobs:
//
//  * class separability (`class_sep`) and in-class noise (`noise_std`)
//    control how fast the global loss can fall;
//  * `writer_style_std` and the partition scheme control non-i.i.d.-ness;
//  * client sample counts vary (lognormal) so the C_i/C weights matter.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "data/partition.h"

namespace fedsparse::data {

struct SyntheticConfig {
  std::size_t num_classes = 62;
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t num_clients = 156;
  /// Mean training samples per client (FEMNIST: 34659/156 ≈ 222).
  std::size_t samples_per_client = 64;
  /// Lognormal sigma for per-client size variation (0 = equal sizes).
  double samples_spread = 0.4;
  std::size_t test_samples = 1024;

  // Signal geometry. The defaults keep the class signal (inter-prototype
  // distance ≈ class_sep·√2) comfortably above the per-client style shift
  // (norm ≈ writer_style_std·√dim) so the style-free test set stays
  // learnable while clients remain visibly heterogeneous.
  double class_sep = 4.0;       // prototype norm; larger = easier problem
  double noise_std = 0.8;       // within-class isotropic noise
  /// Fraction of feature dimensions carrying class signal (rest are pure
  /// noise). 1.0 = dense prototypes. Real image data is effectively sparse
  /// (background pixels are uninformative), which is what gives top-k
  /// selection its edge over random selection — lower this toward ~0.1 to
  /// reproduce that regime (see DESIGN.md §6).
  double prototype_sparsity = 1.0;
  double writer_style_std = 0.08;  // per-client additive style shift
  double writer_gain_std = 0.08;   // per-client multiplicative gain jitter

  PartitionKind partition = PartitionKind::kByWriter;
  std::size_t classes_per_writer = 12;
  double dirichlet_alpha = 0.5;

  std::uint64_t seed = 1;

  std::size_t feature_dim() const noexcept { return channels * height * width; }
};

/// Builds per-client datasets plus a global i.i.d. test set.
FederatedDataset make_synthetic(const SyntheticConfig& cfg);

/// FEMNIST-shaped default (62 classes, 28x28x1, by-writer non-i.i.d.,
/// 156 clients). `scale` in (0,1] shrinks client count and samples for
/// CPU-budget runs while keeping the distributional structure.
SyntheticConfig femnist_like(double scale = 1.0, std::uint64_t seed = 1);

/// CIFAR-10-shaped default (10 classes, 32x32x3, 100 clients, one class per
/// client — the paper's strong non-i.i.d. setting).
SyntheticConfig cifar_like(double scale = 1.0, std::uint64_t seed = 1);

}  // namespace fedsparse::data
