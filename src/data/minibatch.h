// Minibatch sampling.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedsparse::data {

struct Minibatch {
  Matrix x;
  std::vector<int> y;
  std::vector<std::size_t> indices;  // source rows (the probe-loss sample h is drawn from these)
};

/// Uniform sampling with replacement (standard SGD minibatching). If the
/// dataset has fewer samples than `batch`, the whole dataset is used once.
Minibatch sample_minibatch(const Dataset& ds, std::size_t batch, util::Rng& rng);

}  // namespace fedsparse::data
