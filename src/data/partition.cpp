#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsparse::data {

double sample_gamma(double shape, util::Rng& rng) {
  if (shape <= 0.0) throw std::invalid_argument("sample_gamma: shape must be positive");
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double u = std::max(rng.uniform(), 1e-300);
    return sample_gamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> sample_dirichlet(std::size_t dim, double alpha, util::Rng& rng) {
  std::vector<double> out(dim);
  double total = 0.0;
  for (auto& v : out) {
    v = sample_gamma(alpha, rng);
    total += v;
  }
  if (total <= 0.0) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(dim));
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

namespace {

// Per-client class mixing weights for each partition scheme.
std::vector<double> client_class_weights(std::size_t client, std::size_t num_classes,
                                         PartitionKind kind, util::Rng& rng,
                                         std::size_t classes_per_writer, double dirichlet_alpha) {
  std::vector<double> w(num_classes, 0.0);
  switch (kind) {
    case PartitionKind::kIid:
      std::fill(w.begin(), w.end(), 1.0);
      break;
    case PartitionKind::kOneClassPerClient:
      w[client % num_classes] = 1.0;
      break;
    case PartitionKind::kByWriter: {
      // Choose a random subset of classes, then random mixing weights.
      std::vector<std::size_t> ids(num_classes);
      for (std::size_t i = 0; i < num_classes; ++i) ids[i] = i;
      rng.shuffle(ids);
      const std::size_t chosen = std::min(std::max<std::size_t>(1, classes_per_writer),
                                          num_classes);
      for (std::size_t i = 0; i < chosen; ++i) {
        // Exponential weights give a heavy skew within the chosen classes.
        w[ids[i]] = -std::log(std::max(rng.uniform(), 1e-12));
      }
      break;
    }
    case PartitionKind::kDirichlet:
      return sample_dirichlet(num_classes, dirichlet_alpha, rng);
  }
  return w;
}

}  // namespace

std::vector<std::vector<std::size_t>> partition_indices(
    const std::vector<int>& labels, std::size_t num_classes,
    const std::vector<std::size_t>& client_sizes, PartitionKind kind, util::Rng& rng,
    std::size_t classes_per_writer, double dirichlet_alpha) {
  if (num_classes == 0) throw std::invalid_argument("partition_indices: num_classes == 0");
  // Bucket pool indices by class.
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int label = labels[i];
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::invalid_argument("partition_indices: label out of range");
    }
    by_class[static_cast<std::size_t>(label)].push_back(i);
  }

  std::vector<std::vector<std::size_t>> owned(client_sizes.size());
  for (std::size_t c = 0; c < client_sizes.size(); ++c) {
    auto weights =
        client_class_weights(c, num_classes, kind, rng, classes_per_writer, dirichlet_alpha);
    // Zero out classes with no pool samples so categorical() cannot pick them.
    for (std::size_t k = 0; k < num_classes; ++k) {
      if (by_class[k].empty()) weights[k] = 0.0;
    }
    owned[c].reserve(client_sizes[c]);
    for (std::size_t s = 0; s < client_sizes[c]; ++s) {
      const std::size_t cls = rng.categorical(weights);
      const auto& bucket = by_class[cls];
      if (bucket.empty()) continue;  // pool lacks this class entirely
      owned[c].push_back(bucket[rng.uniform_u64(bucket.size())]);
    }
  }
  return owned;
}

}  // namespace fedsparse::data
