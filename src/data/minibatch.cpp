#include "data/minibatch.h"

#include <cstring>
#include <stdexcept>

namespace fedsparse::data {

Minibatch sample_minibatch(const Dataset& ds, std::size_t batch, util::Rng& rng) {
  if (ds.empty()) throw std::invalid_argument("sample_minibatch: empty dataset");
  Minibatch mb;
  if (ds.size() <= batch) {
    mb.indices.resize(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) mb.indices[i] = i;
  } else {
    mb.indices.resize(batch);
    for (auto& idx : mb.indices) idx = rng.uniform_u64(ds.size());
  }
  mb.x.reshape(mb.indices.size(), ds.x.cols());  // rows fully memcpy'd below
  mb.y.resize(mb.indices.size());
  for (std::size_t i = 0; i < mb.indices.size(); ++i) {
    std::memcpy(mb.x.row(i), ds.x.row(mb.indices[i]), ds.x.cols() * sizeof(float));
    mb.y[i] = ds.y[mb.indices[i]];
  }
  return mb;
}

}  // namespace fedsparse::data
