#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsparse::data {

namespace {

// Class prototypes: unit-norm random directions scaled by class_sep. With
// prototype_sparsity < 1, each class's signal lives on a random subset of
// coordinates (renormalized so the class separation stays constant).
std::vector<std::vector<float>> make_prototypes(const SyntheticConfig& cfg, util::Rng& rng) {
  std::vector<std::vector<float>> protos(cfg.num_classes);
  const std::size_t dim = cfg.feature_dim();
  const double sparsity = std::clamp(cfg.prototype_sparsity, 0.0, 1.0);
  const std::size_t active = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(sparsity * static_cast<double>(dim))));
  std::vector<std::int64_t> ids(dim);
  for (auto& p : protos) {
    p.assign(dim, 0.0f);
    for (std::size_t i = 0; i < dim; ++i) ids[i] = static_cast<std::int64_t>(i);
    if (active < dim) rng.shuffle(ids);
    double norm = 0.0;
    for (std::size_t i = 0; i < active; ++i) {
      const auto j = static_cast<std::size_t>(ids[i]);
      p[j] = static_cast<float>(rng.normal());
      norm += static_cast<double>(p[j]) * p[j];
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    const float s = static_cast<float>(cfg.class_sep / norm);
    for (auto& v : p) v *= s;
  }
  return protos;
}

void fill_sample(float* out, const std::vector<float>& proto, double noise_std, float gain,
                 const std::vector<float>& style, util::Rng& rng) {
  const std::size_t dim = proto.size();
  for (std::size_t i = 0; i < dim; ++i) {
    const float noise = static_cast<float>(rng.normal(0.0, noise_std));
    out[i] = gain * (proto[i] + noise) + (style.empty() ? 0.0f : style[i]);
  }
}

}  // namespace

FederatedDataset make_synthetic(const SyntheticConfig& cfg) {
  if (cfg.num_classes == 0 || cfg.num_clients == 0) {
    throw std::invalid_argument("make_synthetic: need at least one class and one client");
  }
  if (cfg.feature_dim() == 0) throw std::invalid_argument("make_synthetic: empty feature dim");

  util::Rng master(cfg.seed);
  util::Rng proto_rng = master.split(0xA001);
  const auto protos = make_prototypes(cfg, proto_rng);
  const std::size_t dim = cfg.feature_dim();

  // Per-client sample counts: lognormal around the mean, min 2.
  util::Rng size_rng = master.split(0xA002);
  std::vector<std::size_t> sizes(cfg.num_clients);
  for (auto& s : sizes) {
    const double factor =
        cfg.samples_spread > 0.0 ? std::exp(size_rng.normal(0.0, cfg.samples_spread)) : 1.0;
    s = std::max<std::size_t>(2, static_cast<std::size_t>(
                                     std::lround(static_cast<double>(cfg.samples_per_client) *
                                                 factor)));
  }

  // Per-client class mixing via the shared partitioner machinery: we build a
  // label pool with a balanced class layout purely to reuse partition_indices'
  // mixing logic; the pool index then tells us which class to synthesize.
  const std::size_t pool_per_class = 8;  // small: indices only carry the class
  std::vector<int> pool_labels(cfg.num_classes * pool_per_class);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    for (std::size_t j = 0; j < pool_per_class; ++j) {
      pool_labels[c * pool_per_class + j] = static_cast<int>(c);
    }
  }
  util::Rng part_rng = master.split(0xA003);
  const auto owned = partition_indices(pool_labels, cfg.num_classes, sizes, cfg.partition,
                                       part_rng, cfg.classes_per_writer, cfg.dirichlet_alpha);

  FederatedDataset fed;
  fed.clients.resize(cfg.num_clients);
  std::vector<std::vector<float>> client_styles(cfg.num_clients);
  std::vector<float> client_gains(cfg.num_clients, 1.0f);
  for (std::size_t c = 0; c < cfg.num_clients; ++c) {
    util::Rng rng = master.split(0xB000 + c);
    // Writer style: additive shift + gain jitter shared by the whole client.
    std::vector<float>& style = client_styles[c];
    style.assign(dim, 0.0f);
    if (cfg.writer_style_std > 0.0) {
      for (auto& v : style) v = static_cast<float>(rng.normal(0.0, cfg.writer_style_std));
    }
    const float gain = static_cast<float>(1.0 + rng.normal(0.0, cfg.writer_gain_std));
    client_gains[c] = gain;

    Dataset& ds = fed.clients[c];
    ds.num_classes = cfg.num_classes;
    ds.channels = cfg.channels;
    ds.height = cfg.height;
    ds.width = cfg.width;
    const auto& indices = owned[c];
    ds.x.resize(indices.size(), dim);
    ds.y.resize(indices.size());
    for (std::size_t s = 0; s < indices.size(); ++s) {
      const int cls = pool_labels[indices[s]];
      ds.y[s] = cls;
      fill_sample(ds.x.row(s), protos[static_cast<std::size_t>(cls)], cfg.noise_std, gain, style,
                  rng);
    }
  }

  // Global test set: uniform over classes, each sample drawn under a random
  // *training* writer's style — FEMNIST's test split comes from the same
  // writers, so the test distribution matches the training mixture.
  util::Rng test_rng = master.split(0xC001);
  Dataset& test = fed.test;
  test.num_classes = cfg.num_classes;
  test.channels = cfg.channels;
  test.height = cfg.height;
  test.width = cfg.width;
  test.x.resize(cfg.test_samples, dim);
  test.y.resize(cfg.test_samples);
  for (std::size_t s = 0; s < cfg.test_samples; ++s) {
    const auto cls = static_cast<int>(test_rng.uniform_u64(cfg.num_classes));
    const auto writer = test_rng.uniform_u64(cfg.num_clients);
    test.y[s] = cls;
    fill_sample(test.x.row(s), protos[static_cast<std::size_t>(cls)], cfg.noise_std,
                client_gains[writer], client_styles[writer], test_rng);
  }
  return fed;
}

SyntheticConfig femnist_like(double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) throw std::invalid_argument("femnist_like: scale in (0,1]");
  SyntheticConfig cfg;
  cfg.num_classes = 62;
  cfg.channels = 1;
  cfg.height = 28;
  cfg.width = 28;
  cfg.num_clients = std::max<std::size_t>(4, static_cast<std::size_t>(156 * scale));
  // Scale shrinks the client count but keeps per-client data near the paper's
  // 222 samples: with 62 classes, cutting samples too would leave only a few
  // examples per class and the task would degenerate into memorization.
  cfg.samples_per_client = 222;
  cfg.test_samples = std::max<std::size_t>(512, static_cast<std::size_t>(4073 * scale));
  cfg.partition = PartitionKind::kByWriter;
  cfg.classes_per_writer = 12;
  cfg.seed = seed;
  return cfg;
}

SyntheticConfig cifar_like(double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) throw std::invalid_argument("cifar_like: scale in (0,1]");
  SyntheticConfig cfg;
  cfg.num_classes = 10;
  cfg.channels = 3;
  cfg.height = 32;
  cfg.width = 32;
  cfg.num_clients = std::max<std::size_t>(4, static_cast<std::size_t>(100 * scale));
  cfg.samples_per_client = 500;  // see femnist_like: scale thins clients only
  cfg.test_samples = std::max<std::size_t>(512, static_cast<std::size_t>(10000 * scale));
  cfg.partition = PartitionKind::kOneClassPerClient;
  // CIFAR-like images are harder: closer prototypes, more noise.
  cfg.class_sep = 2.2;
  cfg.noise_std = 1.1;
  cfg.seed = seed;
  return cfg;
}

}  // namespace fedsparse::data
