#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace fedsparse::data {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  out.channels = channels;
  out.height = height;
  out.width = width;
  out.x.resize(indices.size(), x.cols());
  out.y.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::subset: index out of range");
    std::memcpy(out.x.row(i), x.row(src), x.cols() * sizeof(float));
    out.y[i] = y[src];
  }
  return out;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes, 0);
  for (int label : y) {
    if (label >= 0 && static_cast<std::size_t>(label) < num_classes) {
      ++hist[static_cast<std::size_t>(label)];
    }
  }
  return hist;
}

std::size_t FederatedDataset::total_samples() const noexcept {
  std::size_t total = 0;
  for (const auto& c : clients) total += c.size();
  return total;
}

std::vector<double> FederatedDataset::data_weights() const {
  const auto total = static_cast<double>(total_samples());
  std::vector<double> w(clients.size(), 0.0);
  if (total <= 0.0) return w;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    w[i] = static_cast<double>(clients[i].size()) / total;
  }
  return w;
}

}  // namespace fedsparse::data
