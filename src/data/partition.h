// Non-i.i.d. partitioners: split a pool of labeled samples across clients.
//
// Three schemes cover the paper's settings:
//  * by-writer   — each client draws from a skewed per-client class mix
//                  (FEMNIST's "each writer is a client");
//  * one-class   — each client holds exactly one class (the paper's CIFAR-10
//                  "strong non-i.i.d." setup);
//  * dirichlet   — per-client class proportions ~ Dirichlet(alpha), the
//                  standard FL heterogeneity knob (extension beyond the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace fedsparse::data {

enum class PartitionKind { kByWriter, kOneClassPerClient, kDirichlet, kIid };

/// Returns, for each client, the indices of the pool samples it owns.
/// `labels` is the pool's label array; `client_sizes` gives each client's
/// sample count (the partition draws with replacement from the pool's
/// per-class index lists, mirroring how synthetic pools are unbounded).
///
/// by-writer: each client is assigned `classes_per_writer` distinct classes
/// with random mixing weights. one-class: client i gets class (i mod K).
/// dirichlet: mixing weights ~ Dirichlet(alpha) over all classes.
std::vector<std::vector<std::size_t>> partition_indices(
    const std::vector<int>& labels, std::size_t num_classes,
    const std::vector<std::size_t>& client_sizes, PartitionKind kind, util::Rng& rng,
    std::size_t classes_per_writer = 5, double dirichlet_alpha = 0.5);

/// Gamma(shape, 1) sampler (Marsaglia–Tsang, with the alpha<1 boost). Exposed
/// for tests of the Dirichlet machinery.
double sample_gamma(double shape, util::Rng& rng);

/// Dirichlet(alpha * 1) draw of the given dimension.
std::vector<double> sample_dirichlet(std::size_t dim, double alpha, util::Rng& rng);

}  // namespace fedsparse::data
