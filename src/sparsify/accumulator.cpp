#include "sparsify/accumulator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "sparsify/topk.h"
#include "util/vec_ext.h"

namespace fedsparse::sparsify {

GradientAccumulator::GradientAccumulator(std::size_t dim)
    : a_(dim, 0.0f),
      chunk_max_(accumulator_chunks(dim), 0.0f),
      dirty_bits_((accumulator_chunks(dim) + 63) / 64, 0) {}

void GradientAccumulator::set_summary(std::size_t c, float bound) noexcept {
  chunk_max_[c] = bound;
  const std::uint64_t mask = std::uint64_t{1} << (c & 63);
  std::uint64_t& word = dirty_bits_[c >> 6];
  const bool was_dirty = (word & mask) != 0;
  const bool dirty = bound > 0.0f;
  if (dirty != was_dirty) {
    word ^= mask;
    dirty_count_ += dirty ? 1 : std::size_t(-1);
  }
}

// Adds chunk c of g into a_, updates the chunk summary, and returns the
// chunk's post-add |a| upper bound (the stored summary when the chunk was
// untouched). Both add() and add_scan() drive their sweeps through this, so
// the accumulator state they produce is identical by construction.
float GradientAccumulator::add_chunk(std::size_t c, const float* g_base) noexcept {
  float* __restrict__ a = a_.data();
  const float* __restrict__ g = g_base;
  const std::size_t n = a_.size();
  const std::size_t begin = c * kAccumulatorChunk;
  const std::size_t end = std::min(n, begin + kAccumulatorChunk);
  std::size_t i = begin;
  bool touched = false;  // any destination element written
  bool full = true;      // every element of the chunk written (bound exact)
  // The chunk max reduces over |a| BIT PATTERNS with integer compares:
  // IEEE bit order equals magnitude order for non-NaN values, and a NaN —
  // which a float max would silently drop, leaving a chunk that still
  // holds it marked clean and so skipped by reset_all and the dense
  // fallback — ranks strictly above +inf's bits and survives the
  // reduction.
  std::uint32_t bmax = 0;
#if FEDSPARSE_VEC_EXT
  namespace vec = util::vec;
  using vec::load8;
  using vec::v8sf;
  using vec::v8si;
  v8si vbmax{};
  for (; i + vec::kLanes <= end; i += vec::kLanes) {
    const v8sf gv = load8(g + i);
    if (!vec::any_lane(gv != v8sf{})) {  // all-zero source group: a unchanged
      full = false;
      continue;
    }
    v8sf av = load8(a + i);
    av += gv;
    vec::store8(a + i, av);
    vbmax = vec::max8i(vbmax, vec::abs_bits8(av));
    touched = true;
  }
  bmax = static_cast<std::uint32_t>(vec::reduce_max8i(vbmax));
#endif
  for (; i < end; ++i) {  // scalar tail (and the whole chunk without vec ext)
    a[i] += g[i];
    std::uint32_t b;
    std::memcpy(&b, a + i, sizeof b);
    bmax = std::max(bmax, b & 0x7fffffffu);
    touched = true;
  }
  if (!touched) return chunk_max_[c];  // summary still exact/valid
  // NaN bit patterns (above +inf's 0x7f800000) pin the bound to infinity:
  // always dirty, never pruned.
  constexpr std::uint32_t kInfBits = 0x7f800000u;
  float mx;
  if (bmax > kInfBits) {
    mx = std::numeric_limits<float>::infinity();
  } else {
    std::memcpy(&mx, &bmax, sizeof mx);
  }
  const float bound = full ? mx : std::max(mx, chunk_max_[c]);
  set_summary(c, bound);
  return bound;
}

// flatten: inline add_chunk into the chunk loop — the mostly-zero gradients
// of idle clients spend the whole sweep in add_chunk's skip path, where the
// call overhead itself is the cost.
__attribute__((flatten)) void GradientAccumulator::add(std::span<const float> grad) {
  if (grad.size() != a_.size()) {
    throw std::invalid_argument("GradientAccumulator::add: dimension mismatch");
  }
  for (std::size_t c = 0; c < chunk_max_.size(); ++c) add_chunk(c, grad.data());
}

bool GradientAccumulator::add_scan(std::span<const float> grad, float threshold,
                                   std::size_t cap, std::vector<std::uint64_t>& keys) {
  if (grad.size() != a_.size()) {
    throw std::invalid_argument("GradientAccumulator::add_scan: dimension mismatch");
  }
  if (!(threshold > 0.0f)) {
    throw std::invalid_argument("GradientAccumulator::add_scan: threshold must be > 0");
  }
  keys.clear();
  bool complete = true;
  const std::size_t n = a_.size();
  for (std::size_t c = 0; c < chunk_max_.size(); ++c) {
    const float bound = add_chunk(c, grad.data());
    // Once the cap bailed the scan result is already decided; the remaining
    // chunks still need their adds, just not their scans.
    if (!complete || bound < threshold) continue;
    const std::size_t begin = c * kAccumulatorChunk;
    const std::size_t end = std::min(n, begin + kAccumulatorChunk);
    if (!threshold_scan_range_append(a_.data(), begin, end, threshold, cap, keys)) {
      complete = false;
    }
  }
  return complete;
}

void GradientAccumulator::reset_indices(std::span<const std::int32_t> indices) {
  for (const std::int32_t idx : indices) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= a_.size()) {
      throw std::out_of_range("GradientAccumulator::reset_indices: index out of range");
    }
    a_[static_cast<std::size_t>(idx)] = 0.0f;
  }
}

void GradientAccumulator::reset_all() noexcept {
  for_each_dirty_range([this](std::size_t begin, std::size_t end) {
    std::memset(a_.data() + begin, 0, (end - begin) * sizeof(float));
  });
  std::fill(chunk_max_.begin(), chunk_max_.end(), 0.0f);
  std::fill(dirty_bits_.begin(), dirty_bits_.end(), 0);
  dirty_count_ = 0;
}

}  // namespace fedsparse::sparsify
