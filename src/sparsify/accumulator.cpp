#include "sparsify/accumulator.h"

#include <cstring>
#include <stdexcept>

namespace fedsparse::sparsify {

void GradientAccumulator::add(std::span<const float> grad) {
  if (grad.size() != a_.size()) {
    throw std::invalid_argument("GradientAccumulator::add: dimension mismatch");
  }
  float* __restrict__ a = a_.data();
  const float* __restrict__ g = grad.data();
  const std::size_t n = a_.size();
  for (std::size_t i = 0; i < n; ++i) a[i] += g[i];
}

void GradientAccumulator::reset_indices(std::span<const std::int32_t> indices) {
  for (const std::int32_t idx : indices) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= a_.size()) {
      throw std::out_of_range("GradientAccumulator::reset_indices: index out of range");
    }
    a_[static_cast<std::size_t>(idx)] = 0.0f;
  }
}

void GradientAccumulator::reset_all() noexcept {
  std::memset(a_.data(), 0, a_.size() * sizeof(float));
}

}  // namespace fedsparse::sparsify
