// Building blocks of the sharded server round.
//
// A sharded round partitions the participant slots into contiguous
// per-thread fleets ("shards"). Each shard works in its own arena — stamps,
// candidate key runs, scatter cursors — so the parallel phases never share a
// mutable cache line, and every cross-shard combine step is a fixed-order
// serial reduction (tree merge of sorted key runs, min-merge of prefix
// depths, prefix sums of counts). That fixed order is what makes the engine
// deterministic: the outcome is bit-identical at every shard count, because
// each combining operator either is exactly the reference loop re-ordered
// over a partition it is invariant to (min, counting, membership) or
// reproduces the reference's float addition sequence verbatim (the
// bucket-major aggregation below).
//
// Three pieces live here, shared by the top-k methods' sharded paths:
//
//  * KeyMerger / merge_topk_sorted_runs — k-bounded multi-way merge of
//    descending-sorted 64-bit key runs (keys.h) via pairwise tree reduction.
//    Because the key order is total, merging per-shard top-k runs yields
//    exactly the global top-k of the union: no re-selection.
//
//  * BucketAggregator — the weighted union-aggregate b_j = Σ w_i · a_ij over
//    per-client sparse uploads, sharded along the INDEX axis: entries
//    scatter into disjoint contiguous index buckets (bucket b owns indices
//    [b·D/B, (b+1)·D/B)), preserving client-major order inside each bucket,
//    then every bucket reduces independently. Within one index the float
//    additions run in exactly the reference's client order, so the sums are
//    bit-identical — no atomics, no reassociation.
//
//  * CsrResetBuilder — the client-major CSR reset lists + contributed
//    counts, computed as parallel count / serial prefix / parallel fill.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sparsify/method.h"
#include "sparsify/robust.h"
#include "sparsify/sparse_vector.h"

namespace fedsparse::util {
class ThreadPool;
}

namespace fedsparse::sparsify {

/// Contiguous balanced partition of n slots into at most `shards` shards
/// (never more than n; sizes differ by at most one). bounds has shards()+1
/// entries; shard s owns slots [begin(s), end(s)).
struct ShardPlan {
  std::vector<std::size_t> bounds;

  std::size_t shards() const noexcept { return bounds.empty() ? 0 : bounds.size() - 1; }
  std::size_t begin(std::size_t s) const noexcept { return bounds[s]; }
  std::size_t end(std::size_t s) const noexcept { return bounds[s + 1]; }
};

ShardPlan make_shard_plan(std::size_t n, std::size_t shards);

/// Runs fn(s) for every shard in [0, shards) — across the pool (grain 1)
/// when one is available, serially otherwise. Shard bodies must only write
/// shard-owned state; the serial fallback is then trivially equivalent.
void for_each_shard(util::ThreadPool* pool, std::size_t shards,
                    const std::function<void(std::size_t)>& fn);

/// Per-shard scratch arena. `stamp` + `token` implement O(1)-reset
/// membership over [0, dim) (an index is marked iff stamp[i] == token);
/// `aux` rides along for per-index payloads (prefix depth, slot). All
/// buffers keep their capacity across rounds.
struct ShardArena {
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> aux;
  std::uint32_t token = 0;
  std::vector<std::int32_t> touched;       // stamped indices, first-touch order
  std::vector<std::uint64_t> keys;         // per-shard sorted candidate run
  std::vector<std::uint64_t> key_scratch;  // radix ping-pong

  /// Grows the arenas to `dim` and returns a fresh token (wrap-safe: a wrap
  /// rezeroes the stamp array, once per 2^32 uses).
  std::uint32_t begin_pass(std::size_t dim);
};

/// k-bounded merge of descending-sorted key runs: out receives the first
/// min(k, total) keys of the merged descending sequence. Pairwise fixed-order
/// tree reduction — the tree shape is a function of runs.size() alone, and
/// since the key order is total (equal keys are bit-identical), the result is
/// independent of the tree shape and equals what one global sort would
/// produce. Duplicated keys across runs are kept (callers dedup by index
/// where needed).
class KeyMerger {
 public:
  void merge(std::span<const std::span<const std::uint64_t>> runs, std::size_t k,
             std::vector<std::uint64_t>& out);

 private:
  // One buffer set per reduction level (≤ log2(runs) levels), so a run
  // carried across levels can never alias a later level's output.
  std::vector<std::vector<std::vector<std::uint64_t>>> levels_;
};

/// Allocating convenience for tests and cold paths.
std::vector<std::uint64_t> merge_topk_sorted_runs(
    const std::vector<std::vector<std::uint64_t>>& runs, std::size_t k);

/// Sharded weighted union-aggregation of per-client sparse uploads into a
/// caller-owned dense arena. See the file comment for the scheme. Exactness:
/// for each index j, agg[j] accumulates w_i · v_ij over the clients in
/// ascending slot order — the reference methods' client-major loop — because
/// the scatter writes each bucket's entries in (shard asc, client asc,
/// upload order) and the bucket walk adds them left to right.
class BucketAggregator {
 public:
  /// Optional entry filter: accept only indices with stamp[idx] == token
  /// (FAB aggregates only the union-of-prefixes set J). stamp == nullptr
  /// accepts everything.
  struct Filter {
    const std::uint32_t* stamp = nullptr;
    std::uint32_t token = 0;

    bool pass(std::int32_t idx) const noexcept {
      return stamp == nullptr || stamp[static_cast<std::size_t>(idx)] == token;
    }
  };

  /// Aggregates `uploads[s]` (s < n, weight weights[s]) into agg (size dim,
  /// only touched entries written). touch_stamp/touch_token provide the
  /// first-touch dedup (caller-owned so methods can reuse their stamp
  /// arena); after the call, touched(b) lists bucket b's aggregated indices
  /// in client-major first-touch order and stamp[idx] == touch_token for
  /// exactly those indices.
  void run(const std::vector<SparseVector>& uploads, std::span<const double> weights,
           std::size_t dim, std::size_t shards, util::ThreadPool* pool, const Filter& filter,
           float* agg, std::uint32_t* touch_stamp, std::uint32_t touch_token);

  /// Robust-reduce mode: same scatter (phases 1–3) as run(), but each
  /// bucket's entries are regrouped by index — materializing every
  /// coordinate's per-client contributions in client-major order — and
  /// reduced with the robust statistic from `cfg` (robust.h) instead of the
  /// weighted sum. touched()/stamps end up exactly as run() leaves them, so
  /// downstream emit/reset stages work unchanged. Because each index group's
  /// content and order are independent of the bucket partition, the result
  /// is byte-identical across shard counts.
  void run_robust(const std::vector<SparseVector>& uploads, std::span<const double> weights,
                  std::size_t dim, std::size_t shards, util::ThreadPool* pool,
                  const Filter& filter, const RobustConfig& cfg, float* agg,
                  std::uint32_t* touch_stamp, std::uint32_t touch_token, RobustStats& stats);

  std::size_t buckets() const noexcept { return bucket_touched_.size(); }
  std::span<const std::int32_t> touched(std::size_t b) const noexcept {
    return {bucket_touched_[b].data(), bucket_touched_[b].size()};
  }
  /// Total aggregated entries across buckets (Σ touched sizes).
  std::size_t total_touched() const noexcept;

 private:
  struct Entry {
    std::int32_t index;
    float w;
    float v;
  };

  /// Phases 1–3 (count / prefix / scatter); returns the bucket count B and
  /// leaves entries_/cursors_ describing the bucket-major layout. Bucket b
  /// spans [bucket_begin(b, B), bucket_end(b, B)) of entries_.
  std::size_t scatter(const std::vector<SparseVector>& uploads, std::span<const double> weights,
                      std::size_t dim, std::size_t shards, util::ThreadPool* pool,
                      const Filter& filter);
  std::size_t bucket_begin(std::size_t b, std::size_t B) const noexcept {
    return b == 0 ? 0 : cursors_[(scatter_shards_ - 1) * B + b - 1];
  }
  std::size_t bucket_end(std::size_t b, std::size_t B) const noexcept {
    return cursors_[(scatter_shards_ - 1) * B + b];
  }

  std::vector<Entry> entries_;                         // bucket-major scatter buffer
  std::vector<std::size_t> cursors_;                   // shards × buckets bases
  std::size_t scatter_shards_ = 0;                     // S of the last scatter()
  std::vector<std::vector<std::int32_t>> bucket_touched_;
  std::vector<float> abs_scratch_;                     // robust mode: round |v| median
  std::vector<RobustStats> bucket_stats_;              // robust mode: per-bucket partials
};

/// Client-major CSR reset lists + contributed counts over uploads, with the
/// same optional membership filter: count pass (parallel per shard), serial
/// prefix, fill pass (parallel per shard). Matches the reference methods'
/// sequential build exactly — counting and filling are order-invariant over
/// a contiguous partition.
class CsrResetBuilder {
 public:
  void run(const std::vector<SparseVector>& uploads, std::size_t shards,
           util::ThreadPool* pool, const BucketAggregator::Filter& filter, RoundOutcome& out);
};

}  // namespace fedsparse::sparsify
