#include "sparsify/fedavg.h"

#include <algorithm>

namespace fedsparse::sparsify {

std::size_t FedAvg::period(std::size_t k) const {
  k = std::clamp<std::size_t>(k, 1, dim_);
  return std::max<std::size_t>(1, dim_ / (2 * k));
}

RoundOutcome FedAvg::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  RoundOutcome out;             // reset_kind stays kNone: no accumulators
  out.contributed.assign(n, 0);

  if (in.round % period(k) != 0) {
    out.kind = RoundOutcome::Kind::kLocalOnly;
    return out;
  }

  out.kind = RoundOutcome::Kind::kWeightAverage;
  out.dense.assign(dim_, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(in.data_weights[i]);
    const auto& v = in.client_vectors[i];  // local weights for FedAvg
    for (std::size_t j = 0; j < dim_; ++j) out.dense[j] += w * v[j];
  }
  // All clients' full weight vectors were aggregated this round.
  out.contributed.assign(n, dim_);
  out.uplink_values = static_cast<double>(dim_);
  out.downlink_values = static_cast<double>(dim_);
  return out;
}

}  // namespace fedsparse::sparsify
