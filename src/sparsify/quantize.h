// Gradient quantization — the compression axis the paper calls orthogonal to
// GS ("there exist other model compression techniques such as quantization
// [30], which ... can be applied together with GS").
//
// Implements the standard stochastic uniform quantizer (QSGD-style): values
// are scaled into `levels` buckets per sign and rounded stochastically so the
// quantizer is unbiased: E[dequantize(quantize(v))] = v. The combination with
// any k-element GS method is provided by QuantizedMethod, which wraps a
// Method and rescales the timing model's "values" by the compressed bit
// width (a float counts as 32 bits; indices stay full width).
#pragma once

#include <cstdint>
#include <memory>

#include "sparsify/method.h"
#include "util/rng.h"

namespace fedsparse::sparsify {

struct QuantizerConfig {
  /// Quantization levels per sign; 2^b − 1 levels ≈ b bits per value.
  std::uint32_t levels = 15;  // ≈ 4-bit
  std::uint64_t seed = 1;
};

/// Stochastic uniform quantizer over a sparse vector's values. The scale is
/// the max |value| of the vector (transmitted alongside, one float).
class StochasticQuantizer {
 public:
  explicit StochasticQuantizer(const QuantizerConfig& cfg);

  /// Quantizes in place; returns the scale used (0 for an empty/zero input).
  float quantize(SparseVector& sv);

  /// Bits per transmitted value at this level count (excluding the index).
  double bits_per_value() const noexcept;

  std::uint32_t levels() const noexcept { return levels_; }

 private:
  std::uint32_t levels_;
  util::Rng rng_;
};

/// Wraps a GS method so its downlink payload is quantized and the
/// communication accounting reflects the reduced bit width. Uplink values are
/// also charged at the quantized width (clients quantize symmetrically in a
/// real deployment; here the aggregation itself stays exact on the uplink —
/// only the *accounting* changes — while the downlink values are truly
/// quantized, which is where the model update error enters).
class QuantizedMethod final : public Method {
 public:
  QuantizedMethod(std::unique_ptr<Method> inner, const QuantizerConfig& cfg);

  std::string name() const override { return inner_->name() + "+q" + std::to_string(levels_); }
  bool local_update_style() const override { return inner_->local_update_style(); }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;
  RoundOutcome probe_round(const RoundInput& in, std::size_t k) override;

 private:
  double rescale(double values) const noexcept;

  std::unique_ptr<Method> inner_;
  StochasticQuantizer quantizer_;
  std::uint32_t levels_;
};

}  // namespace fedsparse::sparsify
