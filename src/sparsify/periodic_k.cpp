#include "sparsify/periodic_k.h"

#include <algorithm>

namespace fedsparse::sparsify {

PeriodicK::PeriodicK(std::size_t dim, std::uint64_t seed) : dim_(dim), rng_(seed) {
  permutation_.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) permutation_[i] = static_cast<std::int32_t>(i);
  reshuffle();
}

void PeriodicK::reshuffle() {
  rng_.shuffle(permutation_);
  cursor_ = 0;
}

RoundOutcome PeriodicK::probe_round(const RoundInput& in, std::size_t k) {
  // Snapshot the selection state so the probe does not advance the
  // permutation pass the real round will consume.
  const util::Rng saved_rng = rng_;
  const auto saved_perm = permutation_;
  const std::size_t saved_cursor = cursor_;
  RoundOutcome out = round(in, k);
  rng_ = saved_rng;
  permutation_ = saved_perm;
  cursor_ = saved_cursor;
  return out;
}

RoundOutcome PeriodicK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, dim_);

  // Next k coordinates of the current permutation pass; reshuffle on wrap so
  // each pass visits every coordinate exactly once.
  std::vector<std::int32_t> selected;
  selected.reserve(k);
  while (selected.size() < k) {
    if (cursor_ >= dim_) reshuffle();
    const std::size_t take = std::min(k - selected.size(), dim_ - cursor_);
    selected.insert(selected.end(), permutation_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                    permutation_.begin() + static_cast<std::ptrdiff_t>(cursor_ + take));
    cursor_ += take;
  }

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.update.reserve(k);
  for (const std::int32_t j : selected) {
    double b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      b += in.data_weights[i] *
           static_cast<double>(in.client_vectors[i][static_cast<std::size_t>(j)]);
    }
    out.update.push_back(SparseEntry{j, static_cast<float>(b)});
  }
  sort_by_index(out.update);

  // Every client's value for every selected coordinate was aggregated: one
  // shared list serves all n participants instead of n copies of it.
  out.reset_kind = RoundOutcome::ResetKind::kUniform;
  out.uniform_reset = std::move(selected);
  out.contributed.assign(n, out.uniform_reset.size());
  out.uplink_values = 2.0 * static_cast<double>(k);
  out.downlink_values = 2.0 * static_cast<double>(k);
  return out;
}

}  // namespace fedsparse::sparsify
