#include "sparsify/fub_topk.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "sparsify/keys.h"
#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

FubTopK::FubTopK(std::size_t dim) : pipe_(dim) {}

RoundOutcome FubTopK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, pipe_.dim());
  // The robust path routes through the sharded engine (at S = 1 it is the
  // reference round with the robust reduce swapped in); the defense-off
  // reference loop below stays bitwise untouched.
  if (pipe_.sharded() || pipe_.robust_enabled()) return round_sharded(in, k);

  // Stage: per-client selections threaded across the registered pool
  // (deterministic: each client owns its workspace and output slot),
  // chunk-pruned when the caller provides accumulator summaries.
  const std::vector<SparseVector>& uploads = pipe_.select_uploads(in, k);

  ValidationStats vstats;
  const std::span<const double> weights = pipe_.validate_uploads(in, vstats);
  if (vstats.degraded) {
    RoundOutcome out;
    pipe_.finish_degraded(in, out);
    out.validation = vstats;
    return out;
  }

  // Aggregate everything uploaded, then keep the top-k by |aggregate|.
  float* agg = pipe_.agg();
  std::uint32_t* stamp = pipe_.stamp();
  const std::uint32_t touched = pipe_.next_token();
  touched_list_.clear();
  for (const auto& up : uploads) {
    for (const auto& e : up) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp[idx] != touched) {
        stamp[idx] = touched;
        agg[idx] = 0.0f;
        touched_list_.push_back(e.index);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(weights[i]);
    for (const auto& e : uploads[i]) agg[static_cast<std::size_t>(e.index)] += w * e.value;
  }

  SparseVector aggregated;
  aggregated.reserve(touched_list_.size());
  for (const std::int32_t j : touched_list_) {
    aggregated.push_back(SparseEntry{j, agg[static_cast<std::size_t>(j)]});
  }
  std::sort(aggregated.begin(), aggregated.end(), [](const SparseEntry& a, const SparseEntry& b) {
    const float aa = std::fabs(a.value), bb = std::fabs(b.value);
    if (aa != bb) return aa > bb;
    return a.index < b.index;
  });
  if (aggregated.size() > k) aggregated.resize(k);

  // Membership of J for reset/contribution bookkeeping: reuse a fresh stamp.
  const std::uint32_t in_j = pipe_.next_token();
  for (const auto& e : aggregated) stamp[static_cast<std::size_t>(e.index)] = in_j;

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.validation = vstats;
  out.update = std::move(aggregated);
  sort_by_index(out.update);
  // Stage: per-client resets + contributions (an uploaded entry resets iff it
  // made the broadcast, i.e. carries the in_j stamp).
  build_reset_lists(uploads, stamp, in_j, out);
  // Stage: payload accounting — parallel uplinks charge the largest actual
  // per-client payload (matches FabTopK) rather than assuming every client
  // sent k pairs.
  pipe_.finish_payload(out);
  return out;
}

// Sharded round. The reference sorts the whole aggregated union by
// (|value| desc, index asc) and keeps k — exactly the 64-bit key order on
// (agg value, index), and the per-index keys are unique. So: bucketed
// aggregation (bit-identical sums, see shard_engine.h), per-bucket partial
// top-k via nth_element + radix sort, k-bounded tree merge of the runs. The
// merged run is the global top-k set; the reference's update/reset passes
// only consume that set (the update re-sorts by index).
RoundOutcome FubTopK::round_sharded(const RoundInput& in, std::size_t k) {
  util::ThreadPool* pool = tensor::parallel_pool();
  const ShardPlan plan = pipe_.make_plan(in.client_vectors.size());
  const std::size_t S = plan.shards();

  pipe_.select_uploads(in, k);

  ValidationStats vstats;
  const std::span<const double> weights = pipe_.validate_uploads(in, vstats);
  if (vstats.degraded) {
    RoundOutcome out;
    pipe_.finish_degraded(in, out);
    out.validation = vstats;
    return out;
  }

  RoundOutcome out;
  const BucketAggregator& aggregator =
      pipe_.robust_enabled() ? pipe_.aggregate_robust(in, weights, S, pool, /*f=*/{})
                             : pipe_.aggregate(weights, S, pool, /*f=*/{});
  if (pipe_.robust_enabled()) out.robust = pipe_.robust_stats();
  float* agg = pipe_.agg();

  const std::size_t B = aggregator.buckets();
  std::vector<ShardArena>& arenas = pipe_.arenas(B);
  for_each_shard(pool, B, [&](std::size_t b) {
    ShardArena& ar = arenas[b];
    ar.keys.clear();
    for (const std::int32_t j : aggregator.touched(b)) {
      const auto idx = static_cast<std::size_t>(j);
      ar.keys.push_back(make_key(agg[idx], idx));
    }
    if (ar.keys.size() > k) {
      std::nth_element(ar.keys.begin(), ar.keys.begin() + static_cast<std::ptrdiff_t>(k),
                       ar.keys.end(), std::greater<std::uint64_t>());
      ar.keys.resize(k);
    }
    sort_keys_desc(ar.keys, ar.key_scratch);
  });
  const auto merged = pipe_.merge_arena_keys(B, k);

  std::uint32_t* stamp = pipe_.stamp();
  const std::uint32_t in_j = pipe_.next_token();
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.validation = vstats;
  out.update.resize(merged.size());
  for (std::size_t p = 0; p < merged.size(); ++p) {
    const std::size_t idx = key_index(merged[p]);
    stamp[idx] = in_j;
    out.update[p] = SparseEntry{static_cast<std::int32_t>(idx), agg[idx]};
  }
  sort_by_index(out.update);

  pipe_.build_resets(S, pool, {stamp, in_j}, out);
  pipe_.finish_payload(out);
  return out;
}

}  // namespace fedsparse::sparsify
