#include "sparsify/fub_topk.h"

#include <algorithm>
#include <cmath>

#include "sparsify/topk.h"

namespace fedsparse::sparsify {

FubTopK::FubTopK(std::size_t dim) : dim_(dim), agg_(dim, 0.0f), stamp_(dim, 0) {}

RoundOutcome FubTopK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, dim_);

  // Per-client selections threaded across the registered pool (deterministic:
  // each client owns its workspace and output slot), chunk-pruned when the
  // caller provides accumulator summaries.
  top_k_uploads(in.client_vectors, in.client_chunk_max, k, in.client_ids, topk_ws_, uploads_);

  // Aggregate everything uploaded, then keep the top-k by |aggregate|.
  ++stamp_token_;
  const std::uint32_t touched = stamp_token_;
  touched_list_.clear();
  for (const auto& up : uploads_) {
    for (const auto& e : up) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp_[idx] != touched) {
        stamp_[idx] = touched;
        agg_[idx] = 0.0f;
        touched_list_.push_back(e.index);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(in.data_weights[i]);
    for (const auto& e : uploads_[i]) agg_[static_cast<std::size_t>(e.index)] += w * e.value;
  }

  SparseVector aggregated;
  aggregated.reserve(touched_list_.size());
  for (const std::int32_t j : touched_list_) {
    aggregated.push_back(SparseEntry{j, agg_[static_cast<std::size_t>(j)]});
  }
  std::sort(aggregated.begin(), aggregated.end(), [](const SparseEntry& a, const SparseEntry& b) {
    const float aa = std::fabs(a.value), bb = std::fabs(b.value);
    if (aa != bb) return aa > bb;
    return a.index < b.index;
  });
  if (aggregated.size() > k) aggregated.resize(k);

  // Membership of J for reset/contribution bookkeeping: reuse a fresh stamp.
  ++stamp_token_;
  const std::uint32_t in_j = stamp_token_;
  for (const auto& e : aggregated) stamp_[static_cast<std::size_t>(e.index)] = in_j;

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.update = std::move(aggregated);
  sort_by_index(out.update);
  out.reset_kind = RoundOutcome::ResetKind::kPerClient;
  out.reset_offsets.reserve(n + 1);
  out.reset_offsets.push_back(0);
  out.contributed.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : uploads_[i]) {
      if (stamp_[static_cast<std::size_t>(e.index)] == in_j) {
        out.reset_indices.push_back(e.index);
        ++out.contributed[i];
      }
    }
    out.reset_offsets.push_back(out.reset_indices.size());
  }
  // Parallel uplinks: charge the largest actual per-client payload (matches
  // FabTopK's accounting) rather than assuming every client sent k pairs;
  // the per-client distribution feeds the heterogeneous straggler max.
  set_uplink_from_uploads(uploads_, out);
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());
  return out;
}

}  // namespace fedsparse::sparsify
