#include "sparsify/fub_topk.h"

#include <algorithm>
#include <cmath>

#include "sparsify/keys.h"
#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

FubTopK::FubTopK(std::size_t dim) : dim_(dim), agg_(dim, 0.0f), stamp_(dim, 0) {}

float FubTopK::upload_threshold_hint(std::size_t client_id) const {
  if (shards_ > 1) return client_id < hints_.size() ? hints_[client_id].threshold : 0.0f;
  return client_id < topk_ws_.size() ? topk_ws_[client_id].threshold_hint : 0.0f;
}

RoundOutcome FubTopK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, dim_);
  if (shards_ > 1) return round_sharded(in, k);

  // Per-client selections threaded across the registered pool (deterministic:
  // each client owns its workspace and output slot), chunk-pruned when the
  // caller provides accumulator summaries.
  top_k_uploads(in.client_vectors, in.client_chunk_max, k, in.client_ids, topk_ws_, uploads_,
                in.client_prescan.empty() ? nullptr : &in.client_prescan);

  // Aggregate everything uploaded, then keep the top-k by |aggregate|.
  ++stamp_token_;
  const std::uint32_t touched = stamp_token_;
  touched_list_.clear();
  for (const auto& up : uploads_) {
    for (const auto& e : up) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp_[idx] != touched) {
        stamp_[idx] = touched;
        agg_[idx] = 0.0f;
        touched_list_.push_back(e.index);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(in.data_weights[i]);
    for (const auto& e : uploads_[i]) agg_[static_cast<std::size_t>(e.index)] += w * e.value;
  }

  SparseVector aggregated;
  aggregated.reserve(touched_list_.size());
  for (const std::int32_t j : touched_list_) {
    aggregated.push_back(SparseEntry{j, agg_[static_cast<std::size_t>(j)]});
  }
  std::sort(aggregated.begin(), aggregated.end(), [](const SparseEntry& a, const SparseEntry& b) {
    const float aa = std::fabs(a.value), bb = std::fabs(b.value);
    if (aa != bb) return aa > bb;
    return a.index < b.index;
  });
  if (aggregated.size() > k) aggregated.resize(k);

  // Membership of J for reset/contribution bookkeeping: reuse a fresh stamp.
  ++stamp_token_;
  const std::uint32_t in_j = stamp_token_;
  for (const auto& e : aggregated) stamp_[static_cast<std::size_t>(e.index)] = in_j;

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.update = std::move(aggregated);
  sort_by_index(out.update);
  out.reset_kind = RoundOutcome::ResetKind::kPerClient;
  out.reset_offsets.reserve(n + 1);
  out.reset_offsets.push_back(0);
  out.contributed.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : uploads_[i]) {
      if (stamp_[static_cast<std::size_t>(e.index)] == in_j) {
        out.reset_indices.push_back(e.index);
        ++out.contributed[i];
      }
    }
    out.reset_offsets.push_back(out.reset_indices.size());
  }
  // Parallel uplinks: charge the largest actual per-client payload (matches
  // FabTopK's accounting) rather than assuming every client sent k pairs;
  // the per-client distribution feeds the heterogeneous straggler max.
  set_uplink_from_uploads(uploads_, out);
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());
  return out;
}

// Sharded round. The reference sorts the whole aggregated union by
// (|value| desc, index asc) and keeps k — exactly the 64-bit key order on
// (agg value, index), and the per-index keys are unique. So: bucketed
// aggregation (bit-identical sums, see shard_engine.h), per-bucket partial
// top-k via nth_element + radix sort, k-bounded tree merge of the runs. The
// merged run is the global top-k set; the reference's update/reset passes
// only consume that set (the update re-sorts by index).
RoundOutcome FubTopK::round_sharded(const RoundInput& in, std::size_t k) {
  const std::size_t n = in.client_vectors.size();
  util::ThreadPool* pool = tensor::parallel_pool();
  const ShardPlan plan = make_shard_plan(n, shards_);
  const std::size_t S = plan.shards();

  top_k_uploads_fleet(in.client_vectors, in.client_chunk_max, k, in.client_ids, slot_ws_,
                      hints_, uploads_,
                      in.client_prescan.empty() ? nullptr : &in.client_prescan);

  ++stamp_token_;
  aggregator_.run(uploads_, in.data_weights, dim_, S, pool, /*filter=*/{}, agg_.data(),
                  stamp_.data(), stamp_token_);

  const std::size_t B = aggregator_.buckets();
  if (arenas_.size() < B) arenas_.resize(B);
  for_each_shard(pool, B, [&](std::size_t b) {
    ShardArena& ar = arenas_[b];
    ar.keys.clear();
    for (const std::int32_t j : aggregator_.touched(b)) {
      const auto idx = static_cast<std::size_t>(j);
      ar.keys.push_back(make_key(agg_[idx], idx));
    }
    if (ar.keys.size() > k) {
      std::nth_element(ar.keys.begin(), ar.keys.begin() + static_cast<std::ptrdiff_t>(k),
                       ar.keys.end(), std::greater<std::uint64_t>());
      ar.keys.resize(k);
    }
    sort_keys_desc(ar.keys, ar.key_scratch);
  });
  runs_.clear();
  for (std::size_t b = 0; b < B; ++b) {
    runs_.push_back({arenas_[b].keys.data(), arenas_[b].keys.size()});
  }
  merger_.merge({runs_.data(), runs_.size()}, k, merged_keys_);

  ++stamp_token_;
  const std::uint32_t in_j = stamp_token_;
  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.update.resize(merged_keys_.size());
  for (std::size_t p = 0; p < merged_keys_.size(); ++p) {
    const std::size_t idx = key_index(merged_keys_[p]);
    stamp_[idx] = in_j;
    out.update[p] = SparseEntry{static_cast<std::int32_t>(idx), agg_[idx]};
  }
  sort_by_index(out.update);

  resets_.run(uploads_, S, pool, {stamp_.data(), in_j}, out);
  set_uplink_from_uploads(uploads_, out);
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());
  return out;
}

}  // namespace fedsparse::sparsify
