#include "sparsify/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsparse::sparsify {

std::vector<float> to_dense(const SparseVector& sv, std::size_t dim) {
  std::vector<float> out(dim, 0.0f);
  for (const auto& e : sv) {
    if (e.index < 0 || static_cast<std::size_t>(e.index) >= dim) {
      throw std::out_of_range("to_dense: index out of range");
    }
    out[static_cast<std::size_t>(e.index)] += e.value;
  }
  return out;
}

void axpy_sparse(float alpha, const SparseVector& sv, std::span<float> dst) {
  for (const auto& e : sv) {
    dst[static_cast<std::size_t>(e.index)] += alpha * e.value;
  }
}

void sort_by_index(SparseVector& sv) {
  std::sort(sv.begin(), sv.end(),
            [](const SparseEntry& a, const SparseEntry& b) { return a.index < b.index; });
}

double l1_norm(const SparseVector& sv) {
  double s = 0.0;
  for (const auto& e : sv) s += std::fabs(static_cast<double>(e.value));
  return s;
}

SparseVector sparse_subtract(const SparseVector& a, const SparseVector& b) {
  SparseVector out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].index < b[j].index)) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j].index < a[i].index) {
      out.push_back(SparseEntry{b[j].index, -b[j].value});
      ++j;
    } else {
      const float d = a[i].value - b[j].value;
      if (d != 0.0f) out.push_back(SparseEntry{a[i].index, d});
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace fedsparse::sparsify
