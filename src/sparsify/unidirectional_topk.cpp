#include "sparsify/unidirectional_topk.h"

#include <algorithm>

#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

UnidirectionalTopK::UnidirectionalTopK(std::size_t dim) : pipe_(dim) {}

RoundOutcome UnidirectionalTopK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, pipe_.dim());
  // The robust path routes through the sharded engine (at S = 1 it is the
  // reference round with the robust reduce swapped in); the defense-off
  // reference loop below stays bitwise untouched.
  if (pipe_.sharded() || pipe_.robust_enabled()) return round_sharded(in, k);

  // Stage: per-client selections threaded across the registered pool
  // (deterministic: each client owns its workspace and output slot),
  // chunk-pruned when the caller provides accumulator summaries.
  const std::vector<SparseVector>& uploads = pipe_.select_uploads(in, k);

  ValidationStats vstats;
  const std::span<const double> weights = pipe_.validate_uploads(in, vstats);
  if (vstats.degraded) {
    RoundOutcome out;
    pipe_.finish_degraded(in, out);
    out.validation = vstats;
    return out;
  }

  float* agg = pipe_.agg();
  std::uint32_t* stamp = pipe_.stamp();
  const std::uint32_t touched = pipe_.next_token();
  union_indices_.clear();
  for (const auto& up : uploads) {
    for (const auto& e : up) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp[idx] != touched) {
        stamp[idx] = touched;
        agg[idx] = 0.0f;
        union_indices_.push_back(e.index);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(weights[i]);
    for (const auto& e : uploads[i]) agg[static_cast<std::size_t>(e.index)] += w * e.value;
  }

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.validation = vstats;
  out.update.reserve(union_indices_.size());
  for (const std::int32_t j : union_indices_) {
    out.update.push_back(SparseEntry{j, agg[static_cast<std::size_t>(j)]});
  }
  sort_by_index(out.update);

  // Stage: resets — every uploaded element is used, so clients reset their
  // full top-k sets (no membership stamp needed).
  build_reset_lists(uploads, /*stamp=*/nullptr, 0, out);
  // Stage: payload accounting — parallel uplinks charge the largest actual
  // per-client payload; downlink is the whole union, up to 2kN values.
  pipe_.finish_payload(out);
  return out;
}

// Sharded round: bucketed aggregation of the whole union (bit-identical
// sums), per-bucket index sort concatenated into the globally index-sorted
// update, and full-upload CSR resets via the parallel builder. Nothing here
// is selective, so the only equivalence obligations are the aggregation
// order (see shard_engine.h) and the update's index order (buckets are
// ascending disjoint index ranges).
RoundOutcome UnidirectionalTopK::round_sharded(const RoundInput& in, std::size_t k) {
  util::ThreadPool* pool = tensor::parallel_pool();
  const ShardPlan plan = pipe_.make_plan(in.client_vectors.size());
  const std::size_t S = plan.shards();

  pipe_.select_uploads(in, k);

  ValidationStats vstats;
  const std::span<const double> weights = pipe_.validate_uploads(in, vstats);
  if (vstats.degraded) {
    RoundOutcome out;
    pipe_.finish_degraded(in, out);
    out.validation = vstats;
    return out;
  }

  RoundOutcome out;
  if (pipe_.robust_enabled()) {
    pipe_.aggregate_robust(in, weights, S, pool, /*f=*/{});
    out.robust = pipe_.robust_stats();
  } else {
    pipe_.aggregate(weights, S, pool, /*f=*/{});
  }

  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.validation = vstats;
  pipe_.emit_update_from_buckets(pool, out);

  pipe_.build_resets(S, pool, /*f=*/{}, out);
  pipe_.finish_payload(out);
  return out;
}

}  // namespace fedsparse::sparsify
