#include "sparsify/unidirectional_topk.h"

#include <algorithm>

#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

UnidirectionalTopK::UnidirectionalTopK(std::size_t dim)
    : dim_(dim), agg_(dim, 0.0f), stamp_(dim, 0) {}

float UnidirectionalTopK::upload_threshold_hint(std::size_t client_id) const {
  if (shards_ > 1) return client_id < hints_.size() ? hints_[client_id].threshold : 0.0f;
  return client_id < topk_ws_.size() ? topk_ws_[client_id].threshold_hint : 0.0f;
}

RoundOutcome UnidirectionalTopK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, dim_);
  if (shards_ > 1) return round_sharded(in, k);

  // Per-client selections threaded across the registered pool (deterministic:
  // each client owns its workspace and output slot), chunk-pruned when the
  // caller provides accumulator summaries.
  top_k_uploads(in.client_vectors, in.client_chunk_max, k, in.client_ids, topk_ws_, uploads_,
                in.client_prescan.empty() ? nullptr : &in.client_prescan);

  ++stamp_token_;
  const std::uint32_t touched = stamp_token_;
  union_indices_.clear();
  for (const auto& up : uploads_) {
    for (const auto& e : up) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp_[idx] != touched) {
        stamp_[idx] = touched;
        agg_[idx] = 0.0f;
        union_indices_.push_back(e.index);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(in.data_weights[i]);
    for (const auto& e : uploads_[i]) agg_[static_cast<std::size_t>(e.index)] += w * e.value;
  }

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.update.reserve(union_indices_.size());
  for (const std::int32_t j : union_indices_) {
    out.update.push_back(SparseEntry{j, agg_[static_cast<std::size_t>(j)]});
  }
  sort_by_index(out.update);

  // Every uploaded element is used, so clients reset their full top-k sets.
  out.reset_kind = RoundOutcome::ResetKind::kPerClient;
  out.reset_indices.reserve(union_indices_.size());
  out.reset_offsets.reserve(n + 1);
  out.reset_offsets.push_back(0);
  out.contributed.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : uploads_[i]) out.reset_indices.push_back(e.index);
    out.reset_offsets.push_back(out.reset_indices.size());
    out.contributed[i] = uploads_[i].size();
  }
  // Parallel uplinks: charge the largest actual per-client payload (matches
  // FabTopK's accounting) rather than assuming every client sent k pairs;
  // the per-client distribution feeds the heterogeneous straggler max.
  set_uplink_from_uploads(uploads_, out);
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());  // up to 2kN
  return out;
}

// Sharded round: bucketed aggregation of the whole union (bit-identical
// sums), per-bucket index sort concatenated into the globally index-sorted
// update, and full-upload CSR resets via the parallel builder. Nothing here
// is selective, so the only equivalence obligations are the aggregation
// order (see shard_engine.h) and the update's index order (buckets are
// ascending disjoint index ranges).
RoundOutcome UnidirectionalTopK::round_sharded(const RoundInput& in, std::size_t k) {
  const std::size_t n = in.client_vectors.size();
  util::ThreadPool* pool = tensor::parallel_pool();
  const ShardPlan plan = make_shard_plan(n, shards_);
  const std::size_t S = plan.shards();

  top_k_uploads_fleet(in.client_vectors, in.client_chunk_max, k, in.client_ids, slot_ws_,
                      hints_, uploads_,
                      in.client_prescan.empty() ? nullptr : &in.client_prescan);

  ++stamp_token_;
  aggregator_.run(uploads_, in.data_weights, dim_, S, pool, /*filter=*/{}, agg_.data(),
                  stamp_.data(), stamp_token_);

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  const std::size_t B = aggregator_.buckets();
  if (arenas_.size() < B) arenas_.resize(B);
  bucket_offsets_.resize(B + 1);
  bucket_offsets_[0] = 0;
  for (std::size_t b = 0; b < B; ++b) {
    bucket_offsets_[b + 1] = bucket_offsets_[b] + aggregator_.touched(b).size();
  }
  out.update.resize(bucket_offsets_[B]);
  for_each_shard(pool, B, [&](std::size_t b) {
    ShardArena& ar = arenas_[b];
    const auto touched = aggregator_.touched(b);
    ar.touched.assign(touched.begin(), touched.end());
    std::sort(ar.touched.begin(), ar.touched.end());
    std::size_t pos = bucket_offsets_[b];
    for (const std::int32_t j : ar.touched) {
      out.update[pos++] = SparseEntry{j, agg_[static_cast<std::size_t>(j)]};
    }
  });

  resets_.run(uploads_, S, pool, /*filter=*/{}, out);
  set_uplink_from_uploads(uploads_, out);
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());
  return out;
}

}  // namespace fedsparse::sparsify
