// Always-send-all baseline: the full D-element gradient is exchanged every
// round. No index overhead (dense payload), so one round costs exactly the
// full communication time β under the paper's timing model.
#pragma once

#include "sparsify/method.h"

namespace fedsparse::sparsify {

class SendAll final : public Method {
 public:
  explicit SendAll(std::size_t dim) : dim_(dim) {}

  std::string name() const override { return "send_all"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

 private:
  std::size_t dim_;
};

}  // namespace fedsparse::sparsify
