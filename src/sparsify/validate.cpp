#include "sparsify/validate.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace fedsparse::sparsify {

namespace {

double l2_norm(const SparseVector& sv) {
  double s = 0.0;
  for (const auto& e : sv) s += static_cast<double>(e.value) * static_cast<double>(e.value);
  return std::sqrt(s);
}

}  // namespace

// Structural + finiteness screen. Selection emits magnitude-ordered payloads
// (strongest entry first), so index order carries no canonical form; the
// checks are range, no-duplicate, and finite — everything a bit-flipped
// (index, value) pair can break before it reaches the aggregation arena.
// Duplicates are caught with a round-trip-free stamp array: one token bump
// per payload, O(k) per screen, no O(D) clearing.
bool UploadValidator::structurally_valid(const SparseVector& sv, std::size_t dim) {
  if (seen_stamp_.size() < dim) seen_stamp_.assign(dim, 0);
  ++stamp_token_;
  for (const auto& e : sv) {
    if (!std::isfinite(e.value)) return false;
    if (e.index < 0 || static_cast<std::size_t>(e.index) >= dim) return false;
    if (seen_stamp_[static_cast<std::size_t>(e.index)] == stamp_token_) return false;
    seen_stamp_[static_cast<std::size_t>(e.index)] = stamp_token_;
  }
  return true;
}

bool UploadValidator::quarantined(std::size_t client_id, std::size_t round) const {
  const auto it = offenders_.find(client_id);
  return it != offenders_.end() && it->second.quarantined_until >= round;
}

void UploadValidator::note_suspect(std::size_t client_id, std::size_t round) {
  if (cfg_.quarantine_after == 0) return;
  Offender& off = offenders_[client_id];
  if (off.last_suspect_round == round) return;
  static const util::Counter c_suspects("validate.robust_suspects");
  c_suspects.add(1);
  ++off.suspect_strikes;
  off.last_suspect_round = round;
  if (off.suspect_strikes >= cfg_.quarantine_after && off.quarantined_until < round) {
    off.quarantined_until = round + cfg_.quarantine_rounds;
    off.suspect_strikes = 0;
  }
}

void UploadValidator::note_aligned(std::size_t client_id, std::size_t round) {
  const auto it = offenders_.find(client_id);
  if (it == offenders_.end()) return;
  Offender& off = it->second;
  if (off.quarantined_until >= round || off.last_suspect_round == round) return;
  off.suspect_strikes = 0;
}

std::span<const double> UploadValidator::screen(std::vector<SparseVector>& uploads,
                                                std::span<const std::size_t> client_ids,
                                                std::span<const double> weights, std::size_t dim,
                                                std::size_t round, ValidationStats& stats) {
  stats = ValidationStats{};
  stats.checked = uploads.size();
  pre_uplink_.clear();
  if (!cfg_.enabled || uploads.empty()) return weights;

  const std::size_t n = uploads.size();
  const auto cid = [&](std::size_t s) { return client_ids.empty() ? s : client_ids[s]; };

  verdict_.assign(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    if (quarantined(cid(s), round)) {
      verdict_[s] = 2;
      ++stats.quarantined;
    } else if (!structurally_valid(uploads[s], dim)) {
      verdict_[s] = 1;
      ++stats.rejected;
    }
  }

  // Norm-outlier clipping over the survivors: non-empty valid payloads vs the
  // round's median payload norm. nth_element on a scratch copy keeps this
  // O(n); the verdict pass above already filtered what the median sees.
  if (cfg_.norm_clip_mult > 0.0) {
    norms_.clear();
    for (std::size_t s = 0; s < n; ++s) {
      if (verdict_[s] == 0 && !uploads[s].empty()) norms_.push_back(l2_norm(uploads[s]));
    }
    if (norms_.size() >= 2) {
      const std::size_t mid = norms_.size() / 2;
      std::nth_element(norms_.begin(), norms_.begin() + mid, norms_.end());
      const double bound = cfg_.norm_clip_mult * norms_[mid];
      if (bound > 0.0) {
        for (std::size_t s = 0; s < n; ++s) {
          if (verdict_[s] != 0 || uploads[s].empty()) continue;
          const double norm = l2_norm(uploads[s]);
          if (norm > bound) {
            const float scale = static_cast<float>(bound / norm);
            for (auto& e : uploads[s]) e.value *= scale;
            ++stats.clipped;
          }
        }
      }
    }
  }

  // Strike bookkeeping, idempotent per round: the probe re-screens the same
  // round number and must not double-count. A clean round clears a
  // non-quarantined offender's strikes ("repeat" means consecutive rounds).
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t id = cid(s);
    if (verdict_[s] == 1) {
      Offender& off = offenders_[id];
      if (off.last_strike_round != round) {
        ++off.strikes;
        off.last_strike_round = round;
        if (cfg_.quarantine_after > 0 && off.strikes >= cfg_.quarantine_after &&
            off.quarantined_until < round) {
          off.quarantined_until = round + cfg_.quarantine_rounds;
          off.strikes = 0;
        }
      }
    } else if (verdict_[s] == 0) {
      const auto it = offenders_.find(id);
      if (it != offenders_.end() && it->second.quarantined_until < round &&
          it->second.last_strike_round != round) {
        it->second.strikes = 0;
      }
    }
  }

  const std::size_t bad = stats.rejected + stats.quarantined;
  stats.valid_fraction = static_cast<double>(n - bad) / static_cast<double>(n);

  // Telemetry: the defense's verdicts per screen. All no-ops while disabled.
  static const util::Counter c_checked("validate.checked");
  static const util::Counter c_rejected("validate.rejected");
  static const util::Counter c_clipped("validate.clipped");
  static const util::Counter c_quarantined("validate.quarantined");
  c_checked.add(stats.checked);
  if (stats.rejected > 0) c_rejected.add(stats.rejected);
  if (stats.clipped > 0) c_clipped.add(stats.clipped);
  if (stats.quarantined > 0) c_quarantined.add(stats.quarantined);

  if (bad == 0) return weights;  // clipping alone leaves weights untouched

  // Empty the rejected payloads (methods then treat them as clients with
  // nothing to send: no selection candidates, no resets, no mass consumed)
  // but remember what they transmitted — the timing model still charges the
  // airtime a poisoned upload burned.
  pre_uplink_.assign(n, 0.0);
  eff_weights_.assign(weights.begin(), weights.end());
  double total = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    pre_uplink_[s] = 2.0 * static_cast<double>(uploads[s].size());
    if (verdict_[s] != 0) {
      uploads[s].clear();
      eff_weights_[s] = 0.0;
    }
    total += eff_weights_[s];
  }

  if (stats.valid_fraction < cfg_.min_valid_fraction || total <= 0.0) {
    static const util::Counter c_degraded("validate.degraded_screens");
    c_degraded.add(1);
    stats.degraded = true;
    return {eff_weights_.data(), eff_weights_.size()};
  }
  const double inv = 1.0 / total;
  for (auto& w : eff_weights_) w *= inv;
  return {eff_weights_.data(), eff_weights_.size()};
}

}  // namespace fedsparse::sparsify
