// Periodic-k GS (baseline, refs [8],[30]): a random set of k coordinates is
// aggregated each round, cycling through a shuffled permutation of all D
// coordinates so that every element is aggregated at least once per ⌈D/k⌉
// rounds ("periodic averaging").
//
// Communication accounting note: because the selection is pseudo-random the
// indices could in principle be derived from a shared seed, halving the
// payload; we charge the full 2k index/value cost like the other GS methods
// so that all k-element schemes are compared at equal per-round budget —
// matching the paper's Fig. 4 setup.
#pragma once

#include "sparsify/method.h"

namespace fedsparse::sparsify {

class PeriodicK final : public Method {
 public:
  PeriodicK(std::size_t dim, std::uint64_t seed);

  std::string name() const override { return "periodic"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;
  RoundOutcome probe_round(const RoundInput& in, std::size_t k) override;

 private:
  std::size_t dim_;
  util::Rng rng_;
  std::vector<std::int32_t> permutation_;
  std::size_t cursor_ = 0;

  void reshuffle();
};

}  // namespace fedsparse::sparsify
