// RoundPipeline: the staged server-round machinery shared by the top-k
// methods.
//
// Before this refactor FAB / FUB / unidirectional each owned a monolithic
// round() + round_sharded() pair carrying the same state triple-booked:
// upload workspaces (per-client AND per-thread-slot + hint store), the dense
// aggregation arena with its stamp discipline, the sharded arenas / key
// merger / bucket aggregator / CSR reset builder, and the payload accounting
// tail. A synchronized round is really one composition of stages —
//
//   accumulate/select uploads → (method-specific index selection)
//     → aggregate → resets → emit update → payload accounting
//
// — and only the middle step differs between methods (FAB's κ-search + fill,
// FUB's top-k over the aggregate, unidirectional's keep-everything). The
// pipeline owns every shared stage plus the scratch it runs on; methods hold
// one pipeline and compose. The buffered-async engine (fl/simulation.h)
// drives the exact same stages — a flush is a round over the arrival buffer —
// which is what makes async ≡ sync at zero staleness testable method by
// method.
//
// Determinism contract: each stage is bit-identical across shard counts and
// thread counts (see shard_engine.h for the per-stage arguments); the
// pipeline adds no ordering decisions of its own.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparsify/method.h"
#include "sparsify/shard_engine.h"
#include "sparsify/topk.h"

namespace fedsparse::util {
class ThreadPool;
}

namespace fedsparse::sparsify {

class RoundPipeline {
 public:
  explicit RoundPipeline(std::size_t dim);

  std::size_t dim() const noexcept { return dim_; }

  /// Shard count for the sharded stages; 1 selects the per-client-workspace
  /// reference path everywhere. Must not flip between rounds: the hint store
  /// moves between per-client workspaces and the fleet ClientHint array.
  void set_sharding(std::size_t shards) noexcept;
  std::size_t shards() const noexcept { return shards_; }
  bool sharded() const noexcept { return shards_ > 1; }

  // --- stage: accumulate → prescan/select (per-client top-k uploads) --------

  /// Computes every participant's top-k upload into uploads() — through the
  /// per-client workspaces (shards == 1) or the per-slot workspaces + compact
  /// hint store (sharded) — consuming any fused prescan views the input
  /// carries. Byte-identical across both paths and every thread count.
  const std::vector<SparseVector>& select_uploads(const RoundInput& in, std::size_t k);
  std::vector<SparseVector>& uploads() noexcept { return uploads_; }

  // --- stage: screen uploads (sparsify/validate.h) --------------------------

  void set_validation(const ValidationConfig& cfg) { validator_.configure(cfg); }
  const UploadValidator& validator() const noexcept { return validator_; }

  /// Screens uploads() in place and returns the effective data weights —
  /// in.data_weights itself (same pointer) when screening is disabled or
  /// nothing was rejected, a renormalized internal span otherwise. Methods
  /// must aggregate with the RETURNED span and bail to finish_degraded()
  /// when stats.degraded is set. Runs after select_uploads (and after any
  /// tamper hook it applied), before method-specific selection, so poisoned
  /// entries never reach a κ search or the aggregation arena.
  std::span<const double> validate_uploads(const RoundInput& in, ValidationStats& stats);

  /// Degraded-round outcome: empty update, kNone resets, all-zero
  /// contributed, honest uplink accounting (rejected payloads still spent
  /// airtime), zero downlink. The engine holds weights and every client
  /// keeps its accumulated mass.
  void finish_degraded(const RoundInput& in, RoundOutcome& out) const;

  /// The |value| threshold the next depth-k selection for `client_id` would
  /// scan with, or 0 when unknown OR when the persisted hint was produced for
  /// an incompatible k (see hint_compatible in topk.h): after a churn gap the
  /// controller may have moved k far from where the client last uploaded, and
  /// arming a prescan with that stale threshold wastes the fused sweep — the
  /// hint reseeds through the normal prefilter instead.
  float threshold_hint(std::size_t client_id, std::size_t k) const;

  // --- dense aggregation arena + stamp discipline ---------------------------

  /// Dim-sized dense aggregation buffer; valid only for indices stamped by
  /// the current pass (stamp()[j] == the token that wrote them).
  float* agg() noexcept { return agg_.data(); }
  std::uint32_t* stamp() noexcept { return stamp_.data(); }
  /// A fresh stamp token (monotonic; shared by every stage of a round).
  std::uint32_t next_token() noexcept { return ++stamp_token_; }

  // --- sharded stages -------------------------------------------------------

  ShardPlan make_plan(std::size_t n) const { return make_shard_plan(n, shards_); }

  /// Per-shard arenas, grown to at least `count` (capacity persists).
  std::vector<ShardArena>& arenas(std::size_t count);

  /// k-bounded fixed-order tree merge of arenas [0, count)'s key runs.
  std::span<const std::uint64_t> merge_arena_keys(std::size_t count, std::size_t bound);

  /// Stage: sharded weighted aggregation of uploads() into agg() under an
  /// optional membership filter, stamping touched indices with a fresh token.
  /// Returns the aggregator for bucket iteration (touched lists).
  const BucketAggregator& aggregate(std::span<const double> weights, std::size_t shards,
                                    util::ThreadPool* pool, const BucketAggregator::Filter& f);

  // --- stage: robust aggregation (sparsify/robust.h) ------------------------

  void set_robust(const RobustConfig& cfg) noexcept { robust_cfg_ = cfg; }
  const RobustConfig& robust() const noexcept { return robust_cfg_; }
  bool robust_enabled() const noexcept { return !robust_cfg_.trivial(); }
  /// Robust outcome of the last aggregate_robust() call (incl. reputation).
  const RobustStats& robust_stats() const noexcept { return robust_stats_; }

  /// Drop-in replacement for aggregate() on the robust path: reduces each
  /// touched coordinate with the configured robust statistic instead of the
  /// weighted sum, then scores every contributing client by cosine alignment
  /// against the robust aggregate restricted to its own coordinates —
  /// anti-aligned clients take a reputation strike through the validator's
  /// quarantine bookkeeping, and robust_stats().mean_trust carries the
  /// round's trust for RoundFeedback damping. Leaves agg()/stamp()/touched
  /// buckets exactly as aggregate() would, so emit/reset stages compose
  /// unchanged. Like build_resets, callers must snapshot any stamp-based
  /// filter membership BEFORE this stage re-stamps with a fresh token (the
  /// scatter reads the filter before the reduce writes stamps, so passing a
  /// filter over the previous token is safe — same discipline as aggregate).
  const BucketAggregator& aggregate_robust(const RoundInput& in,
                                           std::span<const double> weights, std::size_t shards,
                                           util::ThreadPool* pool,
                                           const BucketAggregator::Filter& f);

  /// Stage: client-major CSR reset lists + contributed counts from uploads()
  /// under the same optional filter. Must run BEFORE a later stage re-stamps
  /// the filter's membership tokens.
  void build_resets(std::size_t shards, util::ThreadPool* pool,
                    const BucketAggregator::Filter& f, RoundOutcome& out);

  /// Stage: emit the aggregated update from the last aggregate() call's
  /// buckets, index-sorted (buckets are ascending disjoint index ranges, so
  /// per-bucket sorts concatenate into the global index order).
  void emit_update_from_buckets(util::ThreadPool* pool, RoundOutcome& out);

  // --- stage: payload accounting (uplink/downlink values) -------------------

  /// Fills uplink accounting from uploads() and the broadcast downlink from
  /// the update payload (2 values per (index, value) pair).
  void finish_payload(RoundOutcome& out) const;

 private:
  std::size_t dim_;
  std::size_t shards_ = 1;

  // Dense aggregation arena (sized D) + membership stamps.
  std::vector<float> agg_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_token_ = 0;

  // Selection state: per-client workspaces (single-shard) or per-thread-slot
  // workspaces + 8-byte per-client hints (sharded).
  std::vector<TopKWorkspace> topk_ws_;
  std::vector<TopKWorkspace> slot_ws_;
  std::vector<ClientHint> hints_;
  std::vector<SparseVector> uploads_;
  UploadValidator validator_;
  RobustConfig robust_cfg_;
  RobustStats robust_stats_;

  // Sharded-stage scratch.
  std::vector<ShardArena> arenas_;
  std::vector<std::span<const std::uint64_t>> runs_;
  std::vector<std::uint64_t> merged_keys_;
  std::vector<std::size_t> bucket_offsets_;
  KeyMerger merger_;
  BucketAggregator aggregator_;
  CsrResetBuilder resets_;
};

}  // namespace fedsparse::sparsify
