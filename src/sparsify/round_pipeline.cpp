#include "sparsify/round_pipeline.h"

#include <algorithm>
#include <cmath>

#include "sparsify/accumulator.h"
#include "util/contracts.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

#ifdef FEDSPARSE_CONTRACTS
namespace {

// Selection-layer invariants, checked on every emitted upload before the
// tamper seam can legitimately break them: indices in [0, D) with no
// duplicates, and — when the caller provided accumulator chunk summaries —
// every uploaded |value| within its chunk's max-|a| bound (the bound the
// chunk-pruned scans rely on for exactness).
void check_selected_uploads(const RoundInput& in, const std::vector<SparseVector>& uploads,
                            std::size_t dim) {
  std::vector<std::int32_t> sorted;
  for (std::size_t s = 0; s < uploads.size(); ++s) {
    sorted.clear();
    const std::span<const float> chunk_max =
        in.client_chunk_max.empty() ? std::span<const float>{} : in.client_chunk_max[s];
    for (const auto& e : uploads[s]) {
      FEDSPARSE_CONTRACT(e.index >= 0 && static_cast<std::size_t>(e.index) < dim,
                         "selection emitted an out-of-bounds index");
      if (!chunk_max.empty()) {
        const std::size_t c = static_cast<std::size_t>(e.index) / kAccumulatorChunk;
        FEDSPARSE_CONTRACT(c < chunk_max.size() && std::abs(e.value) <= chunk_max[c],
                           "chunk max-|a| summary does not bound an uploaded value");
      }
      sorted.push_back(e.index);
    }
    std::sort(sorted.begin(), sorted.end());
    FEDSPARSE_CONTRACT(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                       "selection emitted a duplicate index");
  }
}

}  // namespace
#endif

RoundPipeline::RoundPipeline(std::size_t dim) : dim_(dim), agg_(dim, 0.0f), stamp_(dim, 0) {}

void RoundPipeline::set_sharding(std::size_t shards) noexcept {
  shards_ = std::max<std::size_t>(1, shards);
}

const std::vector<SparseVector>& RoundPipeline::select_uploads(const RoundInput& in,
                                                               std::size_t k) {
  FEDSPARSE_SPAN("pipeline_select");
  const std::vector<PrescanView>* pre =
      in.client_prescan.empty() ? nullptr : &in.client_prescan;
  if (shards_ > 1) {
    top_k_uploads_fleet(in.client_vectors, in.client_chunk_max, k, in.client_ids, slot_ws_,
                        hints_, uploads_, pre);
  } else {
    top_k_uploads(in.client_vectors, in.client_chunk_max, k, in.client_ids, topk_ws_, uploads_,
                  pre);
  }
#ifdef FEDSPARSE_CONTRACTS
  check_selected_uploads(in, uploads_, dim_);
#endif
  if (in.tamper != nullptr) {
    for (std::size_t s = 0; s < uploads_.size(); ++s) {
      const std::size_t cid = in.client_ids.empty() ? s : in.client_ids[s];
      in.tamper->apply(in.round, cid, uploads_[s]);
    }
  }
  return uploads_;
}

std::span<const double> RoundPipeline::validate_uploads(const RoundInput& in,
                                                        ValidationStats& stats) {
  FEDSPARSE_SPAN("pipeline_screen");
  const std::span<const double> eff =
      validator_.screen(uploads_, in.client_ids, in.data_weights, dim_, in.round, stats);
#ifdef FEDSPARSE_CONTRACTS
  // Mass conservation across the screen: outside degraded rounds the
  // effective weights must remain a convex combination (sum 1), whether they
  // are the passthrough span or the renormalized internal buffer.
  if (!stats.degraded && !eff.empty()) {
    double total = 0.0;
    for (const double w : eff) total += w;
    FEDSPARSE_CONTRACT(std::abs(total - 1.0) < 1e-6,
                       "screening broke weight mass conservation");
  }
#endif
  return eff;
}

void RoundPipeline::finish_degraded(const RoundInput& in, RoundOutcome& out) const {
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.update.clear();
  out.reset_kind = RoundOutcome::ResetKind::kNone;
  out.contributed.assign(in.client_vectors.size(), 0);
  finish_payload(out);
}

float RoundPipeline::threshold_hint(std::size_t client_id, std::size_t k) const {
  float threshold = 0.0f;
  std::size_t hint_k = 0;
  if (shards_ > 1) {
    if (client_id >= hints_.size()) return 0.0f;
    threshold = hints_[client_id].threshold;
    hint_k = hints_[client_id].k;
  } else {
    if (client_id >= topk_ws_.size()) return 0.0f;
    threshold = topk_ws_[client_id].threshold_hint;
    hint_k = topk_ws_[client_id].hint_k;
  }
  return hint_compatible(hint_k, k) ? threshold : 0.0f;
}

std::vector<ShardArena>& RoundPipeline::arenas(std::size_t count) {
  if (arenas_.size() < count) arenas_.resize(count);
  return arenas_;
}

std::span<const std::uint64_t> RoundPipeline::merge_arena_keys(std::size_t count,
                                                               std::size_t bound) {
  runs_.clear();
  for (std::size_t s = 0; s < count; ++s) {
    runs_.push_back({arenas_[s].keys.data(), arenas_[s].keys.size()});
  }
  merger_.merge({runs_.data(), runs_.size()}, bound, merged_keys_);
#ifdef FEDSPARSE_CONTRACTS
  // The 64-bit selection keys are a total order; a merge of descending runs
  // must itself be descending or the top-k cut is wrong.
  for (std::size_t p = 1; p < merged_keys_.size(); ++p) {
    FEDSPARSE_CONTRACT(merged_keys_[p - 1] >= merged_keys_[p],
                       "key merge produced a non-descending run");
  }
#endif
  return {merged_keys_.data(), merged_keys_.size()};
}

const BucketAggregator& RoundPipeline::aggregate(std::span<const double> weights,
                                                 std::size_t shards, util::ThreadPool* pool,
                                                 const BucketAggregator::Filter& f) {
  FEDSPARSE_SPAN("pipeline_aggregate");
  ++stamp_token_;
  aggregator_.run(uploads_, weights, dim_, shards, pool, f, agg_.data(), stamp_.data(),
                  stamp_token_);
  return aggregator_;
}

const BucketAggregator& RoundPipeline::aggregate_robust(const RoundInput& in,
                                                        std::span<const double> weights,
                                                        std::size_t shards,
                                                        util::ThreadPool* pool,
                                                        const BucketAggregator::Filter& f) {
  FEDSPARSE_SPAN("pipeline_robust_aggregate");
  ++stamp_token_;
  aggregator_.run_robust(uploads_, weights, dim_, shards, pool, f, robust_cfg_, agg_.data(),
                         stamp_.data(), stamp_token_, robust_stats_);

  // Reputation pass: every contributing client scored by the cosine between
  // its upload and the robust aggregate restricted to the client's own
  // coordinates (membership = the indices the reduce just stamped, which is
  // exactly the filter the scatter applied). Serial in slot order — pure and
  // shard-count invariant. Trust is the weighted fraction of contributors
  // that are NOT anti-aligned. An honest client with a divergent gradient can
  // dip below the threshold on a noisy round, so clean-run trust is high but
  // not pinned at 1.0; the strike/clear pair below keeps such false positives
  // from ever reaching quarantine (that takes consecutive suspect rounds).
  double contributing_w = 0.0;
  double aligned_w = 0.0;
  for (std::size_t s = 0; s < uploads_.size(); ++s) {
    double dot = 0.0;
    double norm_up = 0.0;
    double norm_agg = 0.0;
    bool contributed = false;
    for (const auto& e : uploads_[s]) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp_[idx] != stamp_token_) continue;
      contributed = true;
      const double v = static_cast<double>(e.value);
      const double a = static_cast<double>(agg_[idx]);
      dot += v * a;
      norm_up += v * v;
      norm_agg += a * a;
    }
    if (!contributed) continue;
    const double w = weights[s];
    contributing_w += w;
    const bool anti_aligned =
        norm_up > 0.0 && norm_agg > 0.0 &&
        dot < robust_cfg_.suspect_cosine * std::sqrt(norm_up) * std::sqrt(norm_agg);
    const std::size_t cid = in.client_ids.empty() ? s : in.client_ids[s];
    if (anti_aligned) {
      ++robust_stats_.suspects;
      validator_.note_suspect(cid, in.round);
    } else {
      aligned_w += w;
      validator_.note_aligned(cid, in.round);
    }
  }
  robust_stats_.mean_trust = contributing_w > 0.0 ? aligned_w / contributing_w : 1.0;
  return aggregator_;
}

void RoundPipeline::build_resets(std::size_t shards, util::ThreadPool* pool,
                                 const BucketAggregator::Filter& f, RoundOutcome& out) {
  FEDSPARSE_SPAN("pipeline_resets");
  resets_.run(uploads_, shards, pool, f, out);
}

void RoundPipeline::emit_update_from_buckets(util::ThreadPool* pool, RoundOutcome& out) {
  FEDSPARSE_SPAN("pipeline_emit");
  const std::size_t B = aggregator_.buckets();
  if (arenas_.size() < B) arenas_.resize(B);
  bucket_offsets_.resize(B + 1);
  bucket_offsets_[0] = 0;
  for (std::size_t b = 0; b < B; ++b) {
    bucket_offsets_[b + 1] = bucket_offsets_[b] + aggregator_.touched(b).size();
  }
  out.update.resize(bucket_offsets_[B]);
  for_each_shard(pool, B, [&](std::size_t b) {
    ShardArena& ar = arenas_[b];
    const auto touched = aggregator_.touched(b);
    ar.touched.assign(touched.begin(), touched.end());
    std::sort(ar.touched.begin(), ar.touched.end());
    std::size_t pos = bucket_offsets_[b];
    for (const std::int32_t j : ar.touched) {
      out.update[pos++] = SparseEntry{j, agg_[static_cast<std::size_t>(j)]};
    }
  });
}

void RoundPipeline::finish_payload(RoundOutcome& out) const {
#ifdef FEDSPARSE_CONTRACTS
  // Every emitting path (reference sort, bucket concatenation) must deliver
  // the update strictly index-ascending and in-bounds — appliers and the
  // probe's sparse_subtract rely on it.
  for (std::size_t p = 0; p < out.update.size(); ++p) {
    FEDSPARSE_CONTRACT(out.update[p].index >= 0 &&
                           static_cast<std::size_t>(out.update[p].index) < dim_,
                       "emitted update index out of bounds");
    if (p > 0) {
      FEDSPARSE_CONTRACT(out.update[p - 1].index < out.update[p].index,
                         "emitted update not strictly index-sorted");
    }
  }
#endif
  set_uplink_from_uploads(uploads_, out);
  // Screening may have emptied rejected payloads after they crossed the wire;
  // the timing model charges the transmitted sizes, not the surviving ones.
  const auto pre = validator_.pre_screen_uplink();
  if (!pre.empty()) {
    out.uplink_values = 0.0;
    for (std::size_t s = 0; s < pre.size(); ++s) {
      out.client_uplink_values[s] = pre[s];
      out.uplink_values = std::max(out.uplink_values, pre[s]);
    }
  }
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());
}

}  // namespace fedsparse::sparsify
