#include "sparsify/round_pipeline.h"

#include <algorithm>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

RoundPipeline::RoundPipeline(std::size_t dim) : dim_(dim), agg_(dim, 0.0f), stamp_(dim, 0) {}

void RoundPipeline::set_sharding(std::size_t shards) noexcept {
  shards_ = std::max<std::size_t>(1, shards);
}

const std::vector<SparseVector>& RoundPipeline::select_uploads(const RoundInput& in,
                                                               std::size_t k) {
  FEDSPARSE_SPAN("pipeline_select");
  const std::vector<PrescanView>* pre =
      in.client_prescan.empty() ? nullptr : &in.client_prescan;
  if (shards_ > 1) {
    top_k_uploads_fleet(in.client_vectors, in.client_chunk_max, k, in.client_ids, slot_ws_,
                        hints_, uploads_, pre);
  } else {
    top_k_uploads(in.client_vectors, in.client_chunk_max, k, in.client_ids, topk_ws_, uploads_,
                  pre);
  }
  if (in.tamper != nullptr) {
    for (std::size_t s = 0; s < uploads_.size(); ++s) {
      const std::size_t cid = in.client_ids.empty() ? s : in.client_ids[s];
      in.tamper->apply(in.round, cid, uploads_[s]);
    }
  }
  return uploads_;
}

std::span<const double> RoundPipeline::validate_uploads(const RoundInput& in,
                                                        ValidationStats& stats) {
  FEDSPARSE_SPAN("pipeline_screen");
  return validator_.screen(uploads_, in.client_ids, in.data_weights, dim_, in.round, stats);
}

void RoundPipeline::finish_degraded(const RoundInput& in, RoundOutcome& out) const {
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.update.clear();
  out.reset_kind = RoundOutcome::ResetKind::kNone;
  out.contributed.assign(in.client_vectors.size(), 0);
  finish_payload(out);
}

float RoundPipeline::threshold_hint(std::size_t client_id, std::size_t k) const {
  float threshold = 0.0f;
  std::size_t hint_k = 0;
  if (shards_ > 1) {
    if (client_id >= hints_.size()) return 0.0f;
    threshold = hints_[client_id].threshold;
    hint_k = hints_[client_id].k;
  } else {
    if (client_id >= topk_ws_.size()) return 0.0f;
    threshold = topk_ws_[client_id].threshold_hint;
    hint_k = topk_ws_[client_id].hint_k;
  }
  return hint_compatible(hint_k, k) ? threshold : 0.0f;
}

std::vector<ShardArena>& RoundPipeline::arenas(std::size_t count) {
  if (arenas_.size() < count) arenas_.resize(count);
  return arenas_;
}

std::span<const std::uint64_t> RoundPipeline::merge_arena_keys(std::size_t count,
                                                               std::size_t bound) {
  runs_.clear();
  for (std::size_t s = 0; s < count; ++s) {
    runs_.push_back({arenas_[s].keys.data(), arenas_[s].keys.size()});
  }
  merger_.merge({runs_.data(), runs_.size()}, bound, merged_keys_);
  return {merged_keys_.data(), merged_keys_.size()};
}

const BucketAggregator& RoundPipeline::aggregate(std::span<const double> weights,
                                                 std::size_t shards, util::ThreadPool* pool,
                                                 const BucketAggregator::Filter& f) {
  FEDSPARSE_SPAN("pipeline_aggregate");
  ++stamp_token_;
  aggregator_.run(uploads_, weights, dim_, shards, pool, f, agg_.data(), stamp_.data(),
                  stamp_token_);
  return aggregator_;
}

void RoundPipeline::build_resets(std::size_t shards, util::ThreadPool* pool,
                                 const BucketAggregator::Filter& f, RoundOutcome& out) {
  FEDSPARSE_SPAN("pipeline_resets");
  resets_.run(uploads_, shards, pool, f, out);
}

void RoundPipeline::emit_update_from_buckets(util::ThreadPool* pool, RoundOutcome& out) {
  FEDSPARSE_SPAN("pipeline_emit");
  const std::size_t B = aggregator_.buckets();
  if (arenas_.size() < B) arenas_.resize(B);
  bucket_offsets_.resize(B + 1);
  bucket_offsets_[0] = 0;
  for (std::size_t b = 0; b < B; ++b) {
    bucket_offsets_[b + 1] = bucket_offsets_[b] + aggregator_.touched(b).size();
  }
  out.update.resize(bucket_offsets_[B]);
  for_each_shard(pool, B, [&](std::size_t b) {
    ShardArena& ar = arenas_[b];
    const auto touched = aggregator_.touched(b);
    ar.touched.assign(touched.begin(), touched.end());
    std::sort(ar.touched.begin(), ar.touched.end());
    std::size_t pos = bucket_offsets_[b];
    for (const std::int32_t j : ar.touched) {
      out.update[pos++] = SparseEntry{j, agg_[static_cast<std::size_t>(j)]};
    }
  });
}

void RoundPipeline::finish_payload(RoundOutcome& out) const {
  set_uplink_from_uploads(uploads_, out);
  // Screening may have emptied rejected payloads after they crossed the wire;
  // the timing model charges the transmitted sizes, not the surviving ones.
  const auto pre = validator_.pre_screen_uplink();
  if (!pre.empty()) {
    out.uplink_values = 0.0;
    for (std::size_t s = 0; s < pre.size(); ++s) {
      out.client_uplink_values[s] = pre[s];
      out.uplink_values = std::max(out.uplink_values, pre[s]);
    }
  }
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());
}

}  // namespace fedsparse::sparsify
