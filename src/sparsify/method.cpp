#include "sparsify/method.h"

#include <cmath>
#include <stdexcept>

#include "sparsify/accumulator.h"
#include "sparsify/fab_topk.h"
#include "sparsify/fedavg.h"
#include "sparsify/fub_topk.h"
#include "sparsify/periodic_k.h"
#include "sparsify/send_all.h"
#include "sparsify/unidirectional_topk.h"

namespace fedsparse::sparsify {

std::span<const std::int32_t> RoundOutcome::reset_for(std::size_t s) const {
  switch (reset_kind) {
    case ResetKind::kNone:
      return {};
    case ResetKind::kUniform:
      return {uniform_reset.data(), uniform_reset.size()};
    case ResetKind::kPerClient: {
      if (s + 1 >= reset_offsets.size()) {
        throw std::out_of_range("RoundOutcome::reset_for: client slot out of range");
      }
      const std::size_t begin = reset_offsets[s], end = reset_offsets[s + 1];
      return {reset_indices.data() + begin, end - begin};
    }
    case ResetKind::kAll:
      break;
  }
  throw std::logic_error("RoundOutcome::reset_for: kAll has no index list");
}

void validate_round_input(const RoundInput& in) {
  if (in.dim == 0) throw std::invalid_argument("RoundInput: dim == 0");
  if (in.client_vectors.empty()) throw std::invalid_argument("RoundInput: no clients");
  if (in.data_weights.size() != in.client_vectors.size()) {
    throw std::invalid_argument("RoundInput: data_weights size mismatch");
  }
  if (!in.client_ids.empty() && in.client_ids.size() != in.client_vectors.size()) {
    throw std::invalid_argument("RoundInput: client_ids size mismatch");
  }
  if (!in.client_prescan.empty() && in.client_prescan.size() != in.client_vectors.size()) {
    throw std::invalid_argument("RoundInput: client_prescan size mismatch");
  }
  if (!in.client_chunk_max.empty()) {
    if (in.client_chunk_max.size() != in.client_vectors.size()) {
      throw std::invalid_argument("RoundInput: client_chunk_max size mismatch");
    }
    const std::size_t chunks = accumulator_chunks(in.dim);
    for (const auto& s : in.client_chunk_max) {
      if (!s.empty() && s.size() != chunks) {
        throw std::invalid_argument("RoundInput: chunk summary does not cover dim");
      }
    }
  }
  double total = 0.0;
  for (std::size_t i = 0; i < in.client_vectors.size(); ++i) {
    if (in.client_vectors[i].size() != in.dim) {
      throw std::invalid_argument("RoundInput: client vector dimension mismatch");
    }
    if (in.data_weights[i] < 0.0) {
      throw std::invalid_argument("RoundInput: negative data weight");
    }
    total += in.data_weights[i];
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("RoundInput: data weights must sum to 1");
  }
}

void set_uplink_from_uploads(const std::vector<SparseVector>& uploads, RoundOutcome& out) {
  std::size_t max_upload = 0;
  out.client_uplink_values.clear();
  out.client_uplink_values.reserve(uploads.size());
  for (const auto& up : uploads) {
    max_upload = std::max(max_upload, up.size());
    out.client_uplink_values.push_back(2.0 * static_cast<double>(up.size()));
  }
  out.uplink_values = 2.0 * static_cast<double>(max_upload);
}

void build_reset_lists(const std::vector<SparseVector>& uploads, const std::uint32_t* stamp,
                       std::uint32_t token, RoundOutcome& out) {
  const std::size_t n = uploads.size();
  out.reset_kind = RoundOutcome::ResetKind::kPerClient;
  out.reset_indices.clear();
  out.reset_offsets.clear();
  out.reset_offsets.reserve(n + 1);
  out.reset_offsets.push_back(0);
  out.contributed.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (stamp == nullptr) {
      for (const auto& e : uploads[i]) out.reset_indices.push_back(e.index);
      out.contributed[i] = uploads[i].size();
    } else {
      std::size_t kept = 0;
      for (const auto& e : uploads[i]) {
        if (stamp[static_cast<std::size_t>(e.index)] == token) {
          out.reset_indices.push_back(e.index);
          ++kept;
        }
      }
      out.contributed[i] = kept;
    }
    out.reset_offsets.push_back(out.reset_indices.size());
  }
}

std::unique_ptr<Method> make_method(const std::string& name, std::size_t dim,
                                    std::uint64_t seed) {
  if (name == "fab_topk") return std::make_unique<FabTopK>(dim);
  if (name == "fub_topk") return std::make_unique<FubTopK>(dim);
  if (name == "unidirectional_topk") return std::make_unique<UnidirectionalTopK>(dim);
  if (name == "periodic") return std::make_unique<PeriodicK>(dim, seed);
  if (name == "send_all") return std::make_unique<SendAll>(dim);
  if (name == "fedavg") return std::make_unique<FedAvg>(dim);
  throw std::invalid_argument(
      "make_method: unknown method '" + name +
      "' (expected fab_topk|fub_topk|unidirectional_topk|periodic|send_all|fedavg)");
}

}  // namespace fedsparse::sparsify
