// 64-bit selection keys shared by the top-k kernel and the sharded round
// engine.
//
// A candidate entry (index, value) packs into one uint64: the |value| bits in
// the high word, the complemented index in the low word. IEEE-754 magnitude
// order equals unsigned integer order on the absolute-value bits (for non-NaN
// inputs), so plain descending uint64 order IS the selection's total order —
// (|v| desc, index asc) — and every partition/merge step compares one integer
// instead of two fabs() floats plus a tie branch. Because the order is total
// on distinct keys, per-shard radix-sorted key runs merge into the global
// order with a plain two-pointer walk: the property the sharded engine's
// tree reduction relies on (shard_engine.h).
#pragma once

#include <cstdint>
#include <cstring>

namespace fedsparse::sparsify {

/// |v|'s IEEE bit pattern (sign cleared). NaNs rank above +inf's bits.
inline std::uint32_t key_abs_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof b);
  return b & 0x7fffffffu;
}

/// (|value| bits << 32) | ~index. Descending uint64 = (|v| desc, index asc).
inline std::uint64_t make_key(float v, std::size_t i) {
  return (static_cast<std::uint64_t>(key_abs_bits(v)) << 32) |
         (~static_cast<std::uint32_t>(i));
}

/// Recovers the index from a key.
inline std::size_t key_index(std::uint64_t key) {
  return static_cast<std::size_t>(~static_cast<std::uint32_t>(key));
}

}  // namespace fedsparse::sparsify
