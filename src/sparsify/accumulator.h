// Per-client accumulated local gradient a_i (Algorithm 1 of the paper),
// stored as a chunk-tiered dense array.
//
// Elements not selected for a round's sparse gradient keep accumulating so
// that they eventually get large enough to be transmitted — the mechanism the
// paper credits for FAB-top-k's convergence. The accumulator conserves
// "gradient mass": every added value either is still in `value()` or was
// explicitly consumed by `reset_indices` after transmission.
//
// Tiered layout: the D-length value array is divided into fixed 64-float
// chunks, each carrying a summary `chunk_max()[c]` — an upper bound on
// max |a_j| over the chunk — and a dirty bit (set iff the bound is nonzero).
// `add` recomputes the bound of every chunk it writes in the same pass that
// performs the adds; `reset_indices` only lowers values, so the stored bound
// stays a valid (possibly stale-high) upper bound without rescanning; a zero
// bound guarantees the chunk holds only (±)zeros. The round path prunes on
// these summaries: the top-k threshold scans skip whole chunks whose bound
// cannot reach the running threshold (sparsify/topk.h), and `reset_all` only
// touches the dirty chunks — so mostly-idle clients (availability churn,
// SparsyFed-scale longtails) cost O(touched chunks), not O(D), per round.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fedsparse::sparsify {

/// Chunk width of the tiered accumulator, in floats. Shared with the
/// chunk-aware top-k entry points, which interpret a summary span s over a
/// D-length vector as s[c] bounding |v[j]| for j in chunk c.
///
/// 64 floats balances summary overhead (1.6% of D, one cache line of values
/// per bound) against pruning resolution: for the k = D/100 round regime the
/// per-chunk skip probability on a dense Gaussian-ish accumulator is
/// 0.99^64 ~ 0.53, so even fully-dirty clients skip half their chunks, while
/// idle clients skip everything but the dirty tail. Measured on the
/// reference box (D=128k hinted scan): 512-float chunks prune nothing there
/// (34 us, max of 512 draws always clears the k-th-magnitude threshold);
/// 64 -> 21.6 us with 53% skipped; 16 flips to summary-read overhead.
inline constexpr std::size_t kAccumulatorChunk = 64;

/// Number of summary chunks covering a `dim`-length vector.
inline constexpr std::size_t accumulator_chunks(std::size_t dim) noexcept {
  return (dim + kAccumulatorChunk - 1) / kAccumulatorChunk;
}

class GradientAccumulator {
 public:
  explicit GradientAccumulator(std::size_t dim);

  std::size_t dim() const noexcept { return a_.size(); }
  std::size_t num_chunks() const noexcept { return chunk_max_.size(); }

  /// a_i += grad (dimension-checked). Vectorized in 8-lane stripes; 8-lane
  /// groups whose source values are all (±)zero are skipped without touching
  /// the destination (post-reset gradients are mostly zero), and every chunk
  /// the pass writes gets its max-|a| summary recomputed in the same sweep.
  /// (A skipped +0.0 add can preserve a stored -0.0 a dense add would have
  /// flushed to +0.0; the two compare equal and tie identically under |.|.)
  void add(std::span<const float> grad);

  /// Fused accumulate + summarize + threshold-scan: performs exactly the
  /// same adds and summary updates as `add(grad)`, and in the same pass
  /// appends the 64-bit selection key of every post-add entry with
  /// |a_j| >= threshold to `keys` (ascending index order), skipping chunks
  /// whose post-add bound cannot reach the threshold. One sweep over each
  /// dirty chunk instead of three (add, summarize, scan) — the values are
  /// still hot in cache when the scan reads them. Returns false as soon as a
  /// survivor would exceed `cap`: the scan stops (keys stays a valid prefix)
  /// but the adds run to completion, so the accumulator state is identical
  /// to plain `add` in every case. The key sequence, cap bail-out point and
  /// return value match the separate reference
  /// `add(grad); threshold_scan_append(value(), chunk_max(), ...)` exactly
  /// (property-tested): a skipped chunk has bound < threshold and therefore
  /// no survivors, and surviving chunks are scanned in ascending order.
  /// `threshold` must be > 0 (a zero threshold would admit every element).
  bool add_scan(std::span<const float> grad, float threshold, std::size_t cap,
                std::vector<std::uint64_t>& keys);

  /// Zeroes the transmitted indices (Line 17 of Algorithm 1). Chunk summaries
  /// are left as stale-high upper bounds — zeroing can only lower a chunk's
  /// max, and the next `add` touching the chunk tightens the bound again.
  void reset_indices(std::span<const std::int32_t> indices);

  /// Zeroes everything (used by send-all-style methods). Only dirty chunks
  /// are written.
  void reset_all() noexcept;

  std::span<const float> value() const noexcept { return {a_.data(), a_.size()}; }

  /// Per-chunk upper bound on max |a_j|: exact for chunks untouched since
  /// their last `add`, stale-high after `reset_indices`, and 0 only when the
  /// chunk is guaranteed all-zero. Size is accumulator_chunks(dim()).
  std::span<const float> chunk_max() const noexcept {
    return {chunk_max_.data(), chunk_max_.size()};
  }

  /// Number of dirty chunks (nonzero summary) — what a round actually pays
  /// for this client instead of D.
  std::size_t dirty_chunks() const noexcept { return dirty_count_; }

  /// Visits maximal [begin, end) index ranges covering every dirty chunk in
  /// ascending order (adjacent dirty chunks coalesce into one range) — the
  /// compaction iterator for consumers that would otherwise sweep all of
  /// value(). Clean chunks hold only zeros, so for sum/scan-style consumers
  /// the visited ranges are exhaustive.
  template <typename Fn>
  void for_each_dirty_range(Fn&& fn) const {
    const std::size_t chunks = chunk_max_.size();
    std::size_t c = 0;
    while (c < chunks) {
      if (!dirty_bit(c)) {
        ++c;
        continue;
      }
      std::size_t end = c + 1;
      while (end < chunks && dirty_bit(end)) ++end;
      fn(c * kAccumulatorChunk, std::min(a_.size(), end * kAccumulatorChunk));
      c = end;
    }
  }

 private:
  bool dirty_bit(std::size_t c) const noexcept {
    return (dirty_bits_[c >> 6] >> (c & 63)) & 1u;
  }
  void set_summary(std::size_t c, float bound) noexcept;
  float add_chunk(std::size_t c, const float* g) noexcept;

  std::vector<float> a_;
  std::vector<float> chunk_max_;           // per-chunk upper bound on |a|
  std::vector<std::uint64_t> dirty_bits_;  // bit c set iff chunk_max_[c] > 0
  std::size_t dirty_count_ = 0;
};

}  // namespace fedsparse::sparsify
