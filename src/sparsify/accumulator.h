// Per-client accumulated local gradient a_i (Algorithm 1 of the paper).
//
// Elements not selected for a round's sparse gradient keep accumulating so
// that they eventually get large enough to be transmitted — the mechanism the
// paper credits for FAB-top-k's convergence. The accumulator conserves
// "gradient mass": every added value either is still in `value()` or was
// explicitly consumed by `reset_indices` after transmission.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fedsparse::sparsify {

class GradientAccumulator {
 public:
  explicit GradientAccumulator(std::size_t dim) : a_(dim, 0.0f) {}

  std::size_t dim() const noexcept { return a_.size(); }

  /// a_i += grad (dimension-checked).
  void add(std::span<const float> grad);

  /// Zeroes the transmitted indices (Line 17 of Algorithm 1).
  void reset_indices(std::span<const std::int32_t> indices);

  /// Zeroes everything (used by send-all-style methods).
  void reset_all() noexcept;

  std::span<const float> value() const noexcept { return {a_.data(), a_.size()}; }

 private:
  std::vector<float> a_;
};

}  // namespace fedsparse::sparsify
