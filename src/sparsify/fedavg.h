// FedAvg baseline (ref [2]) at matched communication budget.
//
// Clients run local SGD every round; every P = max(1, ⌊D/(2k)⌋) rounds the
// server averages the local weights (weighted by C_i/C) and broadcasts the
// result. The ⌊D/(2k)⌋ period makes FedAvg's *average* per-round
// communication equal a k-element GS method's 2k values (footnote 5 of the
// paper). This is the paper's "send-all-or-nothing" comparison point.
#pragma once

#include "sparsify/method.h"

namespace fedsparse::sparsify {

class FedAvg final : public Method {
 public:
  explicit FedAvg(std::size_t dim) : dim_(dim) {}

  std::string name() const override { return "fedavg"; }
  bool local_update_style() const override { return true; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

  /// Aggregation period for a given sparsity degree.
  std::size_t period(std::size_t k) const;

 private:
  std::size_t dim_;
};

}  // namespace fedsparse::sparsify
