#include "sparsify/send_all.h"

namespace fedsparse::sparsify {

RoundOutcome SendAll::round(const RoundInput& in, std::size_t k) {
  (void)k;  // sparsity degree is irrelevant: everything is transmitted
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kDenseUpdate;
  out.dense.assign(dim_, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(in.data_weights[i]);
    const auto& v = in.client_vectors[i];
    for (std::size_t j = 0; j < dim_; ++j) out.dense[j] += w * v[j];
  }

  // All accumulated mass is consumed every round — expressed as a flag, not
  // n materialized lists of D indices each.
  out.reset_kind = RoundOutcome::ResetKind::kAll;
  out.contributed.assign(n, dim_);
  out.uplink_values = static_cast<double>(dim_);    // dense: no index overhead
  out.downlink_values = static_cast<double>(dim_);
  return out;
}

}  // namespace fedsparse::sparsify
