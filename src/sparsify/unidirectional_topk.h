// Unidirectional top-k GS (baseline, ref [22] — Deep Gradient Compression).
//
// Clients upload their top-k; the server aggregates and broadcasts the whole
// union, which can be as large as k·N elements — the downlink blow-up that
// motivates bidirectional schemes.
//
// Shared stages live in RoundPipeline; nothing here is selective, so the
// method-specific middle is trivial (broadcast the whole aggregated union).
#pragma once

#include "sparsify/method.h"
#include "sparsify/round_pipeline.h"

namespace fedsparse::sparsify {

class UnidirectionalTopK final : public Method {
 public:
  explicit UnidirectionalTopK(std::size_t dim);

  std::string name() const override { return "unidirectional_topk"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

  /// See FabTopK::set_sharding — byte-identical at every shard count.
  void set_sharding(std::size_t shards) override { pipe_.set_sharding(shards); }
  void set_validation(const ValidationConfig& cfg) override { pipe_.set_validation(cfg); }
  void set_robust(const RobustConfig& cfg) override { pipe_.set_robust(cfg); }

  float upload_threshold_hint(std::size_t client_id, std::size_t k) const override {
    return pipe_.threshold_hint(client_id, k);
  }

 private:
  RoundOutcome round_sharded(const RoundInput& in, std::size_t k);

  RoundPipeline pipe_;
  // Per-round scratch: the uploaded union's index list.
  std::vector<std::int32_t> union_indices_;
};

}  // namespace fedsparse::sparsify
