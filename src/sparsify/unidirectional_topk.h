// Unidirectional top-k GS (baseline, ref [22] — Deep Gradient Compression).
//
// Clients upload their top-k; the server aggregates and broadcasts the whole
// union, which can be as large as k·N elements — the downlink blow-up that
// motivates bidirectional schemes.
#pragma once

#include "sparsify/method.h"
#include "sparsify/shard_engine.h"
#include "sparsify/topk.h"

namespace fedsparse::sparsify {

class UnidirectionalTopK final : public Method {
 public:
  explicit UnidirectionalTopK(std::size_t dim);

  std::string name() const override { return "unidirectional_topk"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

  /// See FabTopK::set_sharding — byte-identical at every shard count.
  void set_sharding(std::size_t shards) override {
    shards_ = std::max<std::size_t>(1, shards);
  }

  float upload_threshold_hint(std::size_t client_id) const override;

 private:
  RoundOutcome round_sharded(const RoundInput& in, std::size_t k);

  std::size_t dim_;
  std::vector<float> agg_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_token_ = 0;
  // Per-round scratch reused across rounds (zero steady-state allocations);
  // one top-k workspace per client so the selections can run in parallel.
  std::vector<TopKWorkspace> topk_ws_;
  std::vector<SparseVector> uploads_;
  std::vector<std::int32_t> union_indices_;
  // Sharded-engine state (unused while shards_ == 1).
  std::size_t shards_ = 1;
  std::vector<TopKWorkspace> slot_ws_;
  std::vector<ClientHint> hints_;
  std::vector<ShardArena> arenas_;
  std::vector<std::size_t> bucket_offsets_;
  BucketAggregator aggregator_;
  CsrResetBuilder resets_;
};

}  // namespace fedsparse::sparsify
