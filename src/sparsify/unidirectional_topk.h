// Unidirectional top-k GS (baseline, ref [22] — Deep Gradient Compression).
//
// Clients upload their top-k; the server aggregates and broadcasts the whole
// union, which can be as large as k·N elements — the downlink blow-up that
// motivates bidirectional schemes.
#pragma once

#include "sparsify/method.h"
#include "sparsify/topk.h"

namespace fedsparse::sparsify {

class UnidirectionalTopK final : public Method {
 public:
  explicit UnidirectionalTopK(std::size_t dim);

  std::string name() const override { return "unidirectional_topk"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

 private:
  std::size_t dim_;
  std::vector<float> agg_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_token_ = 0;
  // Per-round scratch reused across rounds (zero steady-state allocations);
  // one top-k workspace per client so the selections can run in parallel.
  std::vector<TopKWorkspace> topk_ws_;
  std::vector<SparseVector> uploads_;
  std::vector<std::int32_t> union_indices_;
};

}  // namespace fedsparse::sparsify
