// Top-k selection by absolute value.
//
// The per-round, per-client hot path of every top-k GS method. The production
// path is a threshold prefilter — seeded by the caller's previous k-th
// magnitude when a workspace persists across rounds, else by a strided
// sample — followed by std::nth_element quickselect: O(D) expected work
// versus the O(D log D) client sort the paper argues against (Section III-B)
// and the O(D log k) heap of the seed implementation. Ties are broken deterministically (larger |value| first,
// then smaller index), which keeps whole simulations bit-reproducible; the
// selected set is exact (identical to a full sort) regardless of sampling.
//
// Chunk-tiered entry points: every overload taking a `chunk_max` span
// composes with the tiered GradientAccumulator (sparsify/accumulator.h).
// chunk_max[c] upper-bounds |v[j]| over chunk c of kAccumulatorChunk floats,
// so the threshold scans skip whole chunks that cannot reach the running
// threshold — one float compare instead of 64 per skipped chunk — and the
// dense fallback visits only dirty chunks, padding with guaranteed zeros in
// index order when the selection must. The selected entries are bitwise
// identical to the dense path in every case: pruning only drops entries a
// positive threshold already excludes, and the zero padding reproduces the
// full sort's (|v| desc, index asc) tie order exactly.
//
// Callers on the round loop should hold a TopKWorkspace and use the
// scratch-buffer overloads: after the first call warms the buffers up, a
// round performs zero heap allocations in selection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparsify/sparse_vector.h"

namespace fedsparse::sparsify {

/// Below this dimension the prefilter's sampling pass is not worth its scan;
/// quickselect over all D entries is already cheap. Exported so the
/// simulation's fused-prescan gate matches the selection's engage condition
/// exactly — a prescan below this dimension would never be consumed.
constexpr std::size_t kTopKPrefilterMinDim = 4096;

/// Survivor cap of the hinted threshold scan for a depth-k selection. The
/// fused accumulator prescan (GradientAccumulator::add_scan) must use the
/// same cap so its bail-out point is bit-identical to hint_filter's.
constexpr std::size_t topk_hint_cap(std::size_t k) { return 8 * k + 64; }

/// Is a persisted threshold hint produced for a depth-`hint_k` selection
/// still worth seeding a depth-`k` scan with? Within a 2× band either way the
/// hinted scan usually survives (the cap leaves 8× headroom and a too-deep
/// hint only over-collects); beyond it the threshold is from a different
/// regime — a client rejoining after a churn gap during which the controller
/// moved k far away — and scanning with it either bails at the cap or keeps
/// fewer than k survivors, costing a wasted pass before the fallback reseeds.
/// Callers treat an incompatible hint as "no hint" (reseed via prefilter).
constexpr bool hint_compatible(std::size_t hint_k, std::size_t k) {
  return hint_k != 0 && hint_k <= 2 * k && k <= 2 * hint_k;
}

/// Compact per-client selection hint: the k-th |value| of the client's last
/// selection and the k that produced it. This is the only part of a
/// TopKWorkspace whose content affects future selections, so sharded fleets
/// persist one ClientHint per client (8 bytes) and share full workspaces per
/// thread slot instead of holding N of them.
struct ClientHint {
  float threshold = 0.0f;
  std::uint32_t k = 0;
};

/// Result of a client-side fused prescan (accumulate + summarize + threshold
/// scan in one pass, GradientAccumulator::add_scan). `keys` are the
/// survivors of |v| >= threshold in ascending index order, capped at
/// topk_hint_cap(k); `complete` is false when the scan bailed at the cap.
/// select() consumes a view only when (threshold, k) still match the
/// workspace hint it would have scanned with — making the fused path
/// byte-identical to the separate hint_filter scan it replaces.
struct PrescanView {
  std::span<const std::uint64_t> keys;
  float threshold = 0.0f;
  std::uint32_t k = 0;
  bool complete = false;
};

/// Reusable scratch for the quickselect path. One workspace per caller
/// (not thread-safe); capacity grows to the largest candidate set seen and
/// is then reused, so steady-state rounds allocate nothing.
struct TopKWorkspace {
  SparseVector candidates;  // the selected (index, value) pairs, strongest first

  /// Surviving candidates under selection, packed as 64-bit keys:
  /// (|value| bits << 32) | ~index. IEEE magnitude order matches unsigned
  /// integer order on the high word and the complemented index makes plain
  /// descending uint64 order exactly the (|v| desc, index asc) total order —
  /// nth_element/sort run on POD integers instead of branchy float compares.
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> key_scratch;  // radix-sort ping-pong buffer

  /// The k-th |value| of a recent selection through this workspace, and the
  /// k that produced it. Since the per-client workspaces persist across
  /// rounds, this seeds the next call's prefilter threshold directly —
  /// skipping the sampling pass of the dense O(D) scan (ROADMAP:
  /// prefilter-only first pass for the server round). The hint is replaced
  /// by an at-least-as-deep selection (k >= hint_k) or after it failed to
  /// filter: a *successful* shallower pass — the k'-probe of the
  /// derivative-sign estimator, which reruns selection right after the real
  /// round — keeps the deeper hint intact, while a failed hint always
  /// refreshes so a stale threshold costs at most one fallback pass before
  /// self-correcting. The selection stays exact either way: a hinted filter
  /// that keeps fewer than k entries falls back to the sampled prefilter,
  /// then to the dense path. 0 = no hint yet (first call, or the last pass
  /// went dense).
  float threshold_hint = 0.0f;
  std::size_t hint_k = 0;

  /// Total capacity currently held, in 8-byte entries — observable by tests
  /// that assert the steady state stops allocating.
  std::size_t capacity() const noexcept {
    return candidates.capacity() + keys.capacity() + key_scratch.capacity();
  }
};

/// Writes the k largest-|v| entries into `out` as (index, value) pairs in
/// |value|-descending order (ties: smaller index first). k is clamped to
/// v.size(). Zero allocations once `ws` and `out` have warmed capacity.
void top_k_entries(std::span<const float> v, std::size_t k, TopKWorkspace& ws, SparseVector& out);

/// Chunk-aware variant: `chunk_max` is the per-chunk |v| upper-bound summary
/// (GradientAccumulator::chunk_max; empty = no summaries, dense scans). Must
/// cover v exactly: chunk_max.size() == accumulator_chunks(v.size()).
/// `pre` optionally supplies a fused prescan (see PrescanView); nullptr or a
/// stale view (threshold/k mismatch) runs the normal hinted scan.
void top_k_entries(std::span<const float> v, std::span<const float> chunk_max, std::size_t k,
                   TopKWorkspace& ws, SparseVector& out, const PrescanView* pre = nullptr);

/// Same selection, indices only.
void top_k_indices(std::span<const float> v, std::size_t k, TopKWorkspace& ws,
                   std::vector<std::int32_t>& out);

/// Computes every client's top-k upload in one call: uploads[s] receives
/// top_k_entries(vecs[s], k) using workspaces[ids[s]] (`ids` empty = slot
/// identity; both vectors grow as needed and keep their capacity across
/// rounds). `chunk_maxes` is slot-aligned with vecs (empty vector = no
/// summaries anywhere; individual empty spans opt single clients out).
/// Keying workspaces by stable client id keeps each threshold hint
/// with its own client's accumulator when partial participation or
/// availability churn reorders the slots. When a thread pool is registered
/// via tensor::set_parallel_pool and the total work is large enough, the N
/// independent selections run across the pool — each slot has its own
/// workspace and output slot, so the result is byte-identical to the serial
/// loop regardless of scheduling.
/// `prescan` optionally supplies slot-aligned fused prescan views (nullptr =
/// none; stale views are ignored per slot).
void top_k_uploads(const std::vector<std::span<const float>>& vecs,
                   const std::vector<std::span<const float>>& chunk_maxes, std::size_t k,
                   std::span<const std::size_t> ids, std::vector<TopKWorkspace>& workspaces,
                   std::vector<SparseVector>& uploads,
                   const std::vector<PrescanView>* prescan = nullptr);

/// Fleet variant for sharded rounds: selections run through per-thread-slot
/// workspaces (one per ThreadPool slot, shared across clients) plus a compact
/// per-client hint store, instead of one full workspace per client — at
/// N=100k that is S workspaces + 8 bytes per client instead of N multi-KB
/// workspaces. Byte-identical to the per-client-workspace path: a selection
/// depends on workspace state only through (threshold_hint, hint_k), which is
/// loaded from hints[ids[s]] before each select and stored back after.
/// `hints` grows as needed and persists across rounds.
void top_k_uploads_fleet(const std::vector<std::span<const float>>& vecs,
                         const std::vector<std::span<const float>>& chunk_maxes, std::size_t k,
                         std::span<const std::size_t> ids,
                         std::vector<TopKWorkspace>& slot_workspaces,
                         std::vector<ClientHint>& hints, std::vector<SparseVector>& uploads,
                         const std::vector<PrescanView>* prescan = nullptr);

/// Dense convenience (no summaries).
void top_k_uploads(const std::vector<std::span<const float>>& vecs, std::size_t k,
                   std::span<const std::size_t> ids, std::vector<TopKWorkspace>& workspaces,
                   std::vector<SparseVector>& uploads);

/// Slot-identity convenience (ids = {}).
void top_k_uploads(const std::vector<std::span<const float>>& vecs, std::size_t k,
                   std::vector<TopKWorkspace>& workspaces, std::vector<SparseVector>& uploads);

/// Allocating conveniences over the scratch API (cold paths and tests).
std::vector<std::int32_t> top_k_indices(std::span<const float> v, std::size_t k);
SparseVector top_k_entries(std::span<const float> v, std::size_t k);

/// Seed implementation: bounded min-heap, O(D log k). Retained as the
/// reference for equivalence tests and as the "before" side of the
/// BENCH_micro.json kernel comparison.
SparseVector top_k_entries_heap(std::span<const float> v, std::size_t k);

/// Sorts keys descending (LSD radix above ~512 elements, std::sort below).
/// Keys are assumed unique; `scratch` is the radix ping-pong buffer.
/// Exported for the sharded engine's per-shard candidate runs.
void sort_keys_desc(std::vector<std::uint64_t>& keys, std::vector<std::uint64_t>& scratch);

/// Appends the key of every entry in [begin, end) with |v[i]| >= threshold,
/// in ascending index order (indices are global, not range-relative).
/// Returns false — leaving keys valid but incomplete — as soon as a survivor
/// would exceed `cap`. This is the building block the fused accumulator pass
/// shares with the hinted selection scan.
bool threshold_scan_range_append(const float* v, std::size_t begin, std::size_t end,
                                 float threshold, std::size_t cap,
                                 std::vector<std::uint64_t>& keys);

/// Chunk-pruned full-vector threshold scan (the non-fused reference for the
/// add_scan property tests): appends keys of survivors in ascending index
/// order, pruning chunks whose `chunk_max` bound is below the threshold.
bool threshold_scan_append(std::span<const float> v, std::span<const float> chunk_max,
                           float threshold, std::size_t cap,
                           std::vector<std::uint64_t>& keys);

}  // namespace fedsparse::sparsify
