// Top-k selection by absolute value.
//
// The per-round, per-client hot path of every top-k GS method. Uses a bounded
// min-heap (O(D log k)) so no O(D)-sized index buffer is allocated. Ties are
// broken deterministically (larger |value| first, then smaller index), which
// keeps whole simulations bit-reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparsify/sparse_vector.h"

namespace fedsparse::sparsify {

/// Indices of the k largest-|v| entries, sorted by |v| descending
/// (ties: smaller index first). k is clamped to v.size().
std::vector<std::int32_t> top_k_indices(std::span<const float> v, std::size_t k);

/// Same selection returned as (index, value) pairs in |value|-descending order.
SparseVector top_k_entries(std::span<const float> v, std::size_t k);

}  // namespace fedsparse::sparsify
