#include "sparsify/shard_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

namespace {

// Static track names so per-shard spans need no allocation on the hot path;
// shards are capped at 16 by the simulation's auto policy, so the overflow
// name only appears under hand-rolled configs.
const char* shard_track(std::size_t s) {
  static const char* const kNames[] = {"shard0",  "shard1",  "shard2",  "shard3",
                                       "shard4",  "shard5",  "shard6",  "shard7",
                                       "shard8",  "shard9",  "shard10", "shard11",
                                       "shard12", "shard13", "shard14", "shard15"};
  return s < 16 ? kNames[s] : "shard16+";
}

}  // namespace

ShardPlan make_shard_plan(std::size_t n, std::size_t shards) {
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(1, n)));
  ShardPlan plan;
  plan.bounds.resize(shards + 1);
  for (std::size_t s = 0; s <= shards; ++s) {
    plan.bounds[s] = n * s / shards;
  }
  return plan;
}

void for_each_shard(util::ThreadPool* pool, std::size_t shards,
                    const std::function<void(std::size_t)>& fn) {
  if (util::telemetry_enabled()) {
    // One span per shard task on its own "shardN" track — the Chrome trace
    // then shows the fan-out/imbalance of every sharded pass.
    const auto timed = [&fn](std::size_t s) {
      util::SpanScope span(shard_track(s));
      fn(s);
    };
    if (pool != nullptr && pool->size() > 1 && shards > 1) {
      pool->parallel_for(shards, timed, /*grain=*/1);
    } else {
      for (std::size_t s = 0; s < shards; ++s) timed(s);
    }
    return;
  }
  if (pool != nullptr && pool->size() > 1 && shards > 1) {
    pool->parallel_for(shards, fn, /*grain=*/1);
  } else {
    for (std::size_t s = 0; s < shards; ++s) fn(s);
  }
}

std::uint32_t ShardArena::begin_pass(std::size_t dim) {
  if (stamp.size() < dim) {
    stamp.resize(dim, 0);
    aux.resize(dim, 0);
  }
  if (++token == 0) {  // wrap: every stored stamp value is stale, rezero
    std::fill(stamp.begin(), stamp.end(), 0);
    token = 1;
  }
  return token;
}

namespace {

// Two-pointer descending merge of a and b into dst, stopping after k keys.
void merge2_desc(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                 std::size_t k, std::vector<std::uint64_t>& dst) {
  dst.clear();
  std::size_t i = 0, j = 0;
  while (dst.size() < k && i < a.size() && j < b.size()) {
    dst.push_back(a[i] >= b[j] ? a[i++] : b[j++]);
  }
  while (dst.size() < k && i < a.size()) dst.push_back(a[i++]);
  while (dst.size() < k && j < b.size()) dst.push_back(b[j++]);
}

}  // namespace

void KeyMerger::merge(std::span<const std::span<const std::uint64_t>> runs, std::size_t k,
                      std::vector<std::uint64_t>& out) {
  // Telemetry: how wide (runs) and deep (tree levels) the per-shard merges
  // run — the shard engine's load-balance signal.
  static const util::Histogram h_runs("sparsify.merge_runs", {1.0, 2.0, 4.0, 8.0, 16.0});
  static const util::Histogram h_depth("sparsify.merge_depth", {0.0, 1.0, 2.0, 3.0, 4.0});
  out.clear();
  if (runs.empty() || k == 0) return;
  h_runs.observe(static_cast<double>(runs.size()));
  if (runs.size() == 1) {
    const std::size_t take = std::min(k, runs[0].size());
    out.assign(runs[0].begin(), runs[0].begin() + static_cast<std::ptrdiff_t>(take));
    h_depth.observe(0.0);
    return;
  }
  // Each level merges the surviving runs pairwise into its own buffer set;
  // an odd run passes through to the next level by reference.
  std::vector<std::span<const std::uint64_t>> cur(runs.begin(), runs.end());
  std::vector<std::span<const std::uint64_t>> next;
  std::size_t level = 0;
  while (cur.size() > 1) {
    if (levels_.size() <= level) levels_.resize(level + 1);
    auto& bufs = levels_[level];
    const std::size_t pairs = cur.size() / 2;
    if (bufs.size() < pairs) bufs.resize(pairs);
    next.clear();
    for (std::size_t p = 0; p < pairs; ++p) {
      merge2_desc(cur[2 * p], cur[2 * p + 1], k, bufs[p]);
      next.push_back({bufs[p].data(), bufs[p].size()});
    }
    if (cur.size() % 2 != 0) next.push_back(cur.back());
    cur.swap(next);
    ++level;
  }
  const std::size_t take = std::min(k, cur[0].size());
  out.assign(cur[0].begin(), cur[0].begin() + static_cast<std::ptrdiff_t>(take));
  h_depth.observe(static_cast<double>(level));
}

std::vector<std::uint64_t> merge_topk_sorted_runs(
    const std::vector<std::vector<std::uint64_t>>& runs, std::size_t k) {
  std::vector<std::span<const std::uint64_t>> views;
  views.reserve(runs.size());
  for (const auto& r : runs) views.push_back({r.data(), r.size()});
  KeyMerger merger;
  std::vector<std::uint64_t> out;
  merger.merge({views.data(), views.size()}, k, out);
  return out;
}

std::size_t BucketAggregator::total_touched() const noexcept {
  std::size_t total = 0;
  for (const auto& t : bucket_touched_) total += t.size();
  return total;
}

std::size_t BucketAggregator::scatter(const std::vector<SparseVector>& uploads,
                                      std::span<const double> weights, std::size_t dim,
                                      std::size_t shards, util::ThreadPool* pool,
                                      const Filter& filter) {
  const std::size_t n = uploads.size();
  const ShardPlan plan = make_shard_plan(n, shards);
  const std::size_t S = plan.shards();
  scatter_shards_ = S;
  // One bucket per shard keeps both parallel phases at the same width; the
  // bucket map must be monotone in the index so buckets are contiguous
  // disjoint index ranges (the bucket walks then never share an agg entry).
  const std::size_t B = S;
  const auto bucket_of = [dim, B](std::int32_t idx) {
    return static_cast<std::size_t>(idx) * B / dim;
  };

  // Phase 1: per-(shard, bucket) entry counts.
  cursors_.assign(S * B + 1, 0);
  for_each_shard(pool, S, [&](std::size_t s) {
    std::size_t* counts = cursors_.data() + s * B;
    for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
      for (const auto& e : uploads[i]) {
        if (filter.pass(e.index)) ++counts[bucket_of(e.index)];
      }
    }
  });

  // Phase 2: exclusive prefix in (bucket, shard) order — bucket-major layout
  // with shards of the same bucket adjacent in ascending shard (= ascending
  // client) order. Serial over S·B cells.
  std::size_t pos = 0;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t s = 0; s < S; ++s) {
      std::size_t& cell = cursors_[s * B + b];
      const std::size_t c = cell;
      cell = pos;
      pos += c;
    }
  }
  entries_.resize(pos);

  // Phase 3: scatter. Each shard walks its clients in ascending slot order
  // and bumps its own cursors, so inside a bucket the entry order is
  // (client asc, upload order) — the reference aggregation sequence.
  for_each_shard(pool, S, [&](std::size_t s) {
    std::size_t* cursors = cursors_.data() + s * B;
    for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
      const float w = static_cast<float>(weights[i]);
      for (const auto& e : uploads[i]) {
        if (!filter.pass(e.index)) continue;
        entries_[cursors[bucket_of(e.index)]++] = Entry{e.index, w, e.value};
      }
    }
  });
  return B;
}

void BucketAggregator::run(const std::vector<SparseVector>& uploads,
                           std::span<const double> weights, std::size_t dim,
                           std::size_t shards, util::ThreadPool* pool, const Filter& filter,
                           float* agg, std::uint32_t* touch_stamp,
                           std::uint32_t touch_token) {
  const std::size_t B = scatter(uploads, weights, dim, shards, pool, filter);

  // Phase 4: per-bucket reduce. After phase 3 every cursor sits at its
  // segment end, so bucket b ends at cursors_[(S-1) * B + b] and starts
  // where bucket b-1 ended (bucket_begin/bucket_end).
  bucket_touched_.resize(B);
  for_each_shard(pool, B, [&](std::size_t b) {
    const std::size_t begin = bucket_begin(b, B);
    const std::size_t end = bucket_end(b, B);
    auto& touched = bucket_touched_[b];
    touched.clear();
    for (std::size_t p = begin; p < end; ++p) {
      const Entry& e = entries_[p];
      const auto idx = static_cast<std::size_t>(e.index);
      if (touch_stamp[idx] != touch_token) {
        touch_stamp[idx] = touch_token;
        agg[idx] = 0.0f;
        touched.push_back(e.index);
      }
      agg[idx] += e.w * e.v;
    }
  });
}

void BucketAggregator::run_robust(const std::vector<SparseVector>& uploads,
                                  std::span<const double> weights, std::size_t dim,
                                  std::size_t shards, util::ThreadPool* pool,
                                  const Filter& filter, const RobustConfig& cfg, float* agg,
                                  std::uint32_t* touch_stamp, std::uint32_t touch_token,
                                  RobustStats& stats) {
  const std::size_t B = scatter(uploads, weights, dim, shards, pool, filter);
  stats = RobustStats{};

  // Round-global thin-support clamp: clip_mult × the median |value| over ALL
  // transmitted (filter-passing) entries. The median VALUE of a multiset is
  // partition-invariant, so the bound is identical at every shard count.
  double clip_bound = 0.0;
  if (cfg.clip_mult > 0.0 && !entries_.empty()) {
    abs_scratch_.resize(entries_.size());
    for (std::size_t p = 0; p < entries_.size(); ++p) {
      abs_scratch_[p] = std::abs(entries_[p].v);
    }
    auto mid = abs_scratch_.begin() + static_cast<std::ptrdiff_t>(abs_scratch_.size() / 2);
    std::nth_element(abs_scratch_.begin(), mid, abs_scratch_.end());
    clip_bound = cfg.clip_mult * static_cast<double>(*mid);
  }

  // Phase 4 (robust): regroup each bucket by index — stable, so a group
  // keeps the scatter's client-major order — then reduce every group with
  // the robust statistic. All group arithmetic runs in double in a
  // partition-invariant order, so agg is byte-identical across shard counts.
  bucket_touched_.resize(B);
  bucket_stats_.assign(B, RobustStats{});
  for_each_shard(pool, B, [&](std::size_t b) {
    const std::size_t begin = bucket_begin(b, B);
    const std::size_t end = bucket_end(b, B);
    auto& touched = bucket_touched_[b];
    auto& bs = bucket_stats_[b];
    touched.clear();
    std::stable_sort(entries_.begin() + static_cast<std::ptrdiff_t>(begin),
                     entries_.begin() + static_cast<std::ptrdiff_t>(end),
                     [](const Entry& a, const Entry& c) { return a.index < c.index; });
    std::size_t g0 = begin;
    while (g0 < end) {
      std::size_t g1 = g0 + 1;
      while (g1 < end && entries_[g1].index == entries_[g0].index) ++g1;
      const std::size_t m = g1 - g0;
      const auto idx = static_cast<std::size_t>(entries_[g0].index);
      // Total transmitted weight of the group, in client order: the robust
      // statistics rescale by it so an attack-free coordinate keeps the
      // plain aggregate's magnitude.
      double total_w = 0.0;
      for (std::size_t p = g0; p < g1; ++p) total_w += static_cast<double>(entries_[p].w);
      double value = 0.0;
      if (m < cfg.min_support) {
        // Thin support: clipped weighted sum in client order.
        ++bs.coords_thin;
        for (std::size_t p = g0; p < g1; ++p) {
          double v = static_cast<double>(entries_[p].v);
          if (clip_bound > 0.0) v = std::clamp(v, -clip_bound, clip_bound);
          value += static_cast<double>(entries_[p].w) * v;
        }
      } else if (cfg.kind == RobustKind::kMedian) {
        ++bs.coords_robust;
        std::stable_sort(entries_.begin() + static_cast<std::ptrdiff_t>(g0),
                         entries_.begin() + static_cast<std::ptrdiff_t>(g1),
                         [](const Entry& a, const Entry& c) { return a.v < c.v; });
        const std::size_t mid = g0 + m / 2;
        const double med = (m % 2 != 0)
                               ? static_cast<double>(entries_[mid].v)
                               : 0.5 * (static_cast<double>(entries_[mid - 1].v) +
                                        static_cast<double>(entries_[mid].v));
        value = total_w * med;
      } else {
        std::size_t t = static_cast<std::size_t>(cfg.trim_fraction * static_cast<double>(m));
        if (2 * t >= m) t = (m - 1) / 2;
        if (t == 0) {
          // Nothing to trim at this support: plain weighted sum.
          for (std::size_t p = g0; p < g1; ++p) {
            value += static_cast<double>(entries_[p].w) * static_cast<double>(entries_[p].v);
          }
        } else {
          ++bs.coords_robust;
          bs.values_trimmed += 2 * t;
          std::stable_sort(entries_.begin() + static_cast<std::ptrdiff_t>(g0),
                           entries_.begin() + static_cast<std::ptrdiff_t>(g1),
                           [](const Entry& a, const Entry& c) { return a.v < c.v; });
          double num = 0.0;
          double den = 0.0;
          for (std::size_t p = g0 + t; p < g1 - t; ++p) {
            num += static_cast<double>(entries_[p].w) * static_cast<double>(entries_[p].v);
            den += static_cast<double>(entries_[p].w);
          }
          if (den > 0.0) {
            value = total_w * (num / den);
          } else {
            for (std::size_t p = g0; p < g1; ++p) {
              value +=
                  static_cast<double>(entries_[p].w) * static_cast<double>(entries_[p].v);
            }
          }
        }
      }
      touch_stamp[idx] = touch_token;
      agg[idx] = static_cast<float>(value);
      touched.push_back(entries_[g0].index);
      g0 = g1;
    }
  });
  for (const RobustStats& bs : bucket_stats_) {
    stats.coords_robust += bs.coords_robust;
    stats.coords_thin += bs.coords_thin;
    stats.values_trimmed += bs.values_trimmed;
  }
}

void CsrResetBuilder::run(const std::vector<SparseVector>& uploads, std::size_t shards,
                          util::ThreadPool* pool, const BucketAggregator::Filter& filter,
                          RoundOutcome& out) {
  const std::size_t n = uploads.size();
  const ShardPlan plan = make_shard_plan(n, shards);
  const std::size_t S = plan.shards();

  out.contributed.assign(n, 0);
  for_each_shard(pool, S, [&](std::size_t s) {
    for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
      std::size_t cnt = 0;
      for (const auto& e : uploads[i]) {
        if (filter.pass(e.index)) ++cnt;
      }
      out.contributed[i] = cnt;
    }
  });

  out.reset_offsets.resize(n + 1);
  out.reset_offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.reset_offsets[i + 1] = out.reset_offsets[i] + out.contributed[i];
  }
  out.reset_indices.resize(out.reset_offsets[n]);

  for_each_shard(pool, S, [&](std::size_t s) {
    for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
      std::size_t pos = out.reset_offsets[i];
      for (const auto& e : uploads[i]) {
        if (filter.pass(e.index)) out.reset_indices[pos++] = e.index;
      }
    }
  });
  out.reset_kind = RoundOutcome::ResetKind::kPerClient;
}

}  // namespace fedsparse::sparsify
