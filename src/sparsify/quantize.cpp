#include "sparsify/quantize.h"

#include <cmath>
#include <stdexcept>

namespace fedsparse::sparsify {

StochasticQuantizer::StochasticQuantizer(const QuantizerConfig& cfg)
    : levels_(cfg.levels), rng_(cfg.seed) {
  if (levels_ == 0) throw std::invalid_argument("StochasticQuantizer: levels must be positive");
}

float StochasticQuantizer::quantize(SparseVector& sv) {
  // Non-finite entries poison the shared scale (a NaN never raises the max,
  // so it survives rescaling untouched; an Inf drives the scale to Inf,
  // collapsing every finite entry to 0 and turning Inf/Inf into NaN). Zero
  // them out instead: they carry no usable magnitude, and the payload stays
  // finite no matter what upstream fed us.
  float scale = 0.0f;
  for (auto& e : sv) {
    if (!std::isfinite(e.value)) {
      e.value = 0.0f;
      continue;
    }
    scale = std::max(scale, std::fabs(e.value));
  }
  if (scale == 0.0f) return 0.0f;
  const auto levels = static_cast<float>(levels_);
  for (auto& e : sv) {
    const float normalized = std::fabs(e.value) / scale * levels;  // in [0, levels]
    const float floor_val = std::floor(normalized);
    const float frac = normalized - floor_val;
    // Stochastic rounding keeps the quantizer unbiased.
    const float bucket = floor_val + (rng_.uniform() < frac ? 1.0f : 0.0f);
    const float magnitude = bucket / levels * scale;
    e.value = e.value < 0.0f ? -magnitude : magnitude;
  }
  return scale;
}

double StochasticQuantizer::bits_per_value() const noexcept {
  return std::log2(static_cast<double>(levels_) + 1.0) + 1.0;  // + sign bit
}

QuantizedMethod::QuantizedMethod(std::unique_ptr<Method> inner, const QuantizerConfig& cfg)
    : inner_(std::move(inner)), quantizer_(cfg), levels_(cfg.levels) {
  if (!inner_) throw std::invalid_argument("QuantizedMethod: null inner method");
}

double QuantizedMethod::rescale(double values) const noexcept {
  // One "value" in the timing model is a 32-bit float. An index/value pair is
  // 2 values; quantization shrinks the value half only:
  //   2k values -> k·(1 + bits/32) values.
  const double bits = quantizer_.bits_per_value();
  return values * 0.5 * (1.0 + bits / 32.0);
}

RoundOutcome QuantizedMethod::round(const RoundInput& in, std::size_t k) {
  RoundOutcome out = inner_->round(in, k);
  if (out.kind == RoundOutcome::Kind::kSparseUpdate) {
    quantizer_.quantize(out.update);
    out.uplink_values = rescale(out.uplink_values);
    out.downlink_values = rescale(out.downlink_values);
    for (auto& v : out.client_uplink_values) v = rescale(v);
  }
  return out;
}

RoundOutcome QuantizedMethod::probe_round(const RoundInput& in, std::size_t k) {
  RoundOutcome out = inner_->probe_round(in, k);
  if (out.kind == RoundOutcome::Kind::kSparseUpdate) {
    quantizer_.quantize(out.update);
    out.uplink_values = rescale(out.uplink_values);
    out.downlink_values = rescale(out.downlink_values);
    for (auto& v : out.client_uplink_values) v = rescale(v);
  }
  return out;
}

}  // namespace fedsparse::sparsify
