// FUB-top-k: fairness-unaware bidirectional top-k (baseline, refs [28],[31]).
//
// Identical uplink to FAB-top-k, but the server simply keeps the k
// largest-|aggregate| indices among everything uploaded — no per-client
// guarantee, so clients whose gradients are small can be excluded entirely
// (the bias FAB-top-k exists to prevent; see Fig. 4 right).
//
// Shared stages live in RoundPipeline; this class owns only the FUB-specific
// middle: top-k over the aggregated union.
#pragma once

#include "sparsify/method.h"
#include "sparsify/round_pipeline.h"

namespace fedsparse::sparsify {

class FubTopK final : public Method {
 public:
  explicit FubTopK(std::size_t dim);

  std::string name() const override { return "fub_topk"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

  /// See FabTopK::set_sharding — byte-identical at every shard count.
  void set_sharding(std::size_t shards) override { pipe_.set_sharding(shards); }
  void set_validation(const ValidationConfig& cfg) override { pipe_.set_validation(cfg); }
  void set_robust(const RobustConfig& cfg) override { pipe_.set_robust(cfg); }

  float upload_threshold_hint(std::size_t client_id, std::size_t k) const override {
    return pipe_.threshold_hint(client_id, k);
  }

 private:
  RoundOutcome round_sharded(const RoundInput& in, std::size_t k);

  RoundPipeline pipe_;
  // FUB-specific per-round scratch: the aggregated union's index list.
  std::vector<std::int32_t> touched_list_;
};

}  // namespace fedsparse::sparsify
