// FAB-top-k: fairness-aware bidirectional top-k gradient sparsification.
//
// The paper's first contribution (Section III-B, Algorithm 1). Each client
// uploads the top-k entries of its accumulated gradient; the server selects
// exactly k downlink elements such that every client contributes at least
// ⌊k/N⌋ of them:
//
//   1. binary-search the largest per-client prefix length κ with
//      |∪_i J_i^κ| ≤ k  (J_i^κ = client i's κ strongest uploaded indices);
//   2. J ← ∪_i J_i^κ, then fill up to k with the strongest entries of
//      (∪_i J_i^{κ+1}) \ J;
//   3. aggregate b_j = Σ_i (C_i/C)·a_ij·1[j ∈ J_i] for j ∈ J;
//   4. clients reset accumulated entries j ∈ J ∩ J_i.
//
// Fairness guarantee: κ never drops below ⌊k/N⌋ because N·⌊k/N⌋ ≤ k.
//
// The shared stages (selection, aggregation arena, sharded scratch, reset
// builder, payload accounting) live in RoundPipeline; this class owns only
// the FAB-specific middle: the κ search and the fill.
#pragma once

#include "sparsify/method.h"
#include "sparsify/round_pipeline.h"

namespace fedsparse::sparsify {

class FabTopK final : public Method {
 public:
  explicit FabTopK(std::size_t dim);

  std::string name() const override { return "fab_topk"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

  /// Sharded round engine: shards > 1 partitions the participants into
  /// contiguous per-thread fleets (per-shard depth arenas, tree-merged fill
  /// candidates, bucketed aggregation) with byte-identical outcomes at every
  /// shard count. Selection hints move from per-client workspaces into the
  /// compact per-client hint store, so switch before the first round.
  void set_sharding(std::size_t shards) override { pipe_.set_sharding(shards); }
  void set_validation(const ValidationConfig& cfg) override { pipe_.set_validation(cfg); }
  void set_robust(const RobustConfig& cfg) override { pipe_.set_robust(cfg); }

  float upload_threshold_hint(std::size_t client_id, std::size_t k) const override {
    return pipe_.threshold_hint(client_id, k);
  }

  /// Reference κ search (hash-set based), exposed for unit tests: given
  /// per-client uploads sorted strongest-first, returns the largest
  /// κ ∈ [0, k] with |∪_i J_i^κ| ≤ k. round() uses the zero-allocation
  /// stamp-based equivalent.
  static std::size_t find_kappa(const std::vector<SparseVector>& uploads, std::size_t k);

 private:
  /// Stamp-based κ search: one O(N·k) pass counting how many *new* indices
  /// each prefix depth contributes, then a prefix-sum walk. Same result as
  /// find_kappa, no hashing, no allocation beyond the reused growth buffer.
  std::size_t find_kappa_stamped(std::size_t k);

  RoundOutcome round_sharded(const RoundInput& in, std::size_t k);

  RoundPipeline pipe_;
  // FAB-specific per-round scratch (reused; steady-state rounds allocate
  // nothing): the selected downlink set J, the (κ+1)-th fill candidates, the
  // union-growth histogram of the κ search, and the sharded κ search's merged
  // per-index min prefix depths.
  std::vector<std::int32_t> selected_;
  SparseVector fill_candidates_;
  std::vector<std::size_t> union_growth_;
  std::vector<std::uint32_t> depth_;         // global min prefix depth per index
  std::vector<std::int32_t> touched_union_;  // indices seen by any shard
};

}  // namespace fedsparse::sparsify
