// FAB-top-k: fairness-aware bidirectional top-k gradient sparsification.
//
// The paper's first contribution (Section III-B, Algorithm 1). Each client
// uploads the top-k entries of its accumulated gradient; the server selects
// exactly k downlink elements such that every client contributes at least
// ⌊k/N⌋ of them:
//
//   1. binary-search the largest per-client prefix length κ with
//      |∪_i J_i^κ| ≤ k  (J_i^κ = client i's κ strongest uploaded indices);
//   2. J ← ∪_i J_i^κ, then fill up to k with the strongest entries of
//      (∪_i J_i^{κ+1}) \ J;
//   3. aggregate b_j = Σ_i (C_i/C)·a_ij·1[j ∈ J_i] for j ∈ J;
//   4. clients reset accumulated entries j ∈ J ∩ J_i.
//
// Fairness guarantee: κ never drops below ⌊k/N⌋ because N·⌊k/N⌋ ≤ k.
#pragma once

#include "sparsify/method.h"

namespace fedsparse::sparsify {

class FabTopK final : public Method {
 public:
  explicit FabTopK(std::size_t dim);

  std::string name() const override { return "fab_topk"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

  /// Exposed for unit tests: given per-client uploads sorted strongest-first,
  /// returns the largest κ ∈ [0, k] with |∪_i J_i^κ| ≤ k.
  static std::size_t find_kappa(const std::vector<SparseVector>& uploads, std::size_t k);

 private:
  std::size_t dim_;
  // Dense scratch reused across rounds (sized D): aggregation buffer and a
  // membership stamp array (stamped with the round counter to avoid clears).
  std::vector<float> agg_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_token_ = 0;
};

}  // namespace fedsparse::sparsify
