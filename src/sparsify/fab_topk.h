// FAB-top-k: fairness-aware bidirectional top-k gradient sparsification.
//
// The paper's first contribution (Section III-B, Algorithm 1). Each client
// uploads the top-k entries of its accumulated gradient; the server selects
// exactly k downlink elements such that every client contributes at least
// ⌊k/N⌋ of them:
//
//   1. binary-search the largest per-client prefix length κ with
//      |∪_i J_i^κ| ≤ k  (J_i^κ = client i's κ strongest uploaded indices);
//   2. J ← ∪_i J_i^κ, then fill up to k with the strongest entries of
//      (∪_i J_i^{κ+1}) \ J;
//   3. aggregate b_j = Σ_i (C_i/C)·a_ij·1[j ∈ J_i] for j ∈ J;
//   4. clients reset accumulated entries j ∈ J ∩ J_i.
//
// Fairness guarantee: κ never drops below ⌊k/N⌋ because N·⌊k/N⌋ ≤ k.
#pragma once

#include "sparsify/method.h"
#include "sparsify/shard_engine.h"
#include "sparsify/topk.h"

namespace fedsparse::sparsify {

class FabTopK final : public Method {
 public:
  explicit FabTopK(std::size_t dim);

  std::string name() const override { return "fab_topk"; }
  RoundOutcome round(const RoundInput& in, std::size_t k) override;

  /// Sharded round engine: shards > 1 partitions the participants into
  /// contiguous per-thread fleets (per-shard depth arenas, tree-merged fill
  /// candidates, bucketed aggregation) with byte-identical outcomes at every
  /// shard count. Selection hints move from per-client workspaces into the
  /// compact per-client hint store, so switch before the first round.
  void set_sharding(std::size_t shards) override {
    shards_ = std::max<std::size_t>(1, shards);
  }

  float upload_threshold_hint(std::size_t client_id) const override;

  /// Reference κ search (hash-set based), exposed for unit tests: given
  /// per-client uploads sorted strongest-first, returns the largest
  /// κ ∈ [0, k] with |∪_i J_i^κ| ≤ k. round() uses the zero-allocation
  /// stamp-based equivalent.
  static std::size_t find_kappa(const std::vector<SparseVector>& uploads, std::size_t k);

 private:
  /// Stamp-based κ search: one O(N·k) pass counting how many *new* indices
  /// each prefix depth contributes, then a prefix-sum walk. Same result as
  /// find_kappa, no hashing, no allocation beyond the reused growth buffer.
  std::size_t find_kappa_stamped(std::size_t k);

  RoundOutcome round_sharded(const RoundInput& in, std::size_t k);

  std::size_t dim_;
  // Dense scratch reused across rounds (sized D): aggregation buffer and a
  // membership stamp array (stamped with the round counter to avoid clears).
  std::vector<float> agg_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_token_ = 0;
  // Per-round scratch, reused so steady-state rounds allocate nothing in the
  // selection path. One workspace per client: the N selections are
  // independent, so top_k_uploads threads them across the registered pool.
  std::vector<TopKWorkspace> topk_ws_;
  std::vector<SparseVector> uploads_;
  std::vector<std::int32_t> selected_;
  SparseVector fill_candidates_;
  std::vector<std::size_t> union_growth_;
  // Sharded-engine state (unused while shards_ == 1). Selection workspaces
  // are per thread slot + an 8-byte hint per client instead of a full
  // workspace per client — the memory knee that matters at N=100k.
  std::size_t shards_ = 1;
  std::vector<TopKWorkspace> slot_ws_;
  std::vector<ClientHint> hints_;
  std::vector<ShardArena> arenas_;
  std::vector<std::uint32_t> depth_;         // global min prefix depth per index
  std::vector<std::int32_t> touched_union_;  // indices seen by any shard
  std::vector<std::span<const std::uint64_t>> runs_;
  std::vector<std::uint64_t> merged_keys_;
  std::vector<std::size_t> bucket_offsets_;
  KeyMerger merger_;
  BucketAggregator aggregator_;
  CsrResetBuilder resets_;
};

}  // namespace fedsparse::sparsify
