// Server-side upload screening: the defense stage in front of aggregation.
//
// The paper's Algorithm 1 assumes every sampled client delivers an intact
// top-k payload; the fault model (fl/faults.h) makes lost, late, and
// corrupted uploads the common case. This layer screens every upload before
// it can touch the aggregation arena:
//
//   * structural checks — indices in [0, D) with no duplicates (selection
//     emits magnitude-ordered payloads, so order itself carries no canonical
//     form to check), every value finite. A payload failing any of them is
//     REJECTED: emptied in place and its data weight zeroed, with the
//     remaining weights renormalized so aggregates stay convex combinations
//     of client values (mass conservation survives the rejection);
//   * norm-outlier clipping — a structurally valid payload whose L2 norm
//     exceeds `norm_clip_mult` × the round's median payload norm is scaled
//     down to that bound (magnitude-blowup and low-bit corruption produce
//     finite-but-huge values the structural checks cannot catch);
//   * quarantine — a client whose payloads are rejected in
//     `quarantine_after` distinct rounds is dropped outright for the next
//     `quarantine_rounds` rounds, rejected or not;
//   * graceful degradation — when fewer than `min_valid_fraction` of the
//     flush survives screening the round is declared degraded: the method
//     skips aggregation entirely (empty update, no resets, weights held) and
//     the engine damps the sign-OGD step through RoundFeedback::validity.
//
// Determinism contract: screening is a pure function of the uploads and the
// validator's quarantine state — no RNG — so it is bitwise identical across
// thread counts, shard counts, and engines. When screening is disabled, or
// enabled but nothing is rejected, the effective weights are returned as the
// ORIGINAL span (same pointer): the zero-fault configuration stays
// byte-identical to an unscreened run.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sparsify/sparse_vector.h"

namespace fedsparse::sparsify {

/// Tamper hook applied to each upload after selection, before screening —
/// the seam through which fl::FaultModel injects payload corruption without
/// sparsify depending on fl. Implementations must be pure in
/// (round, client, payload): the same triple always produces the same
/// tampered payload, which is what makes faulted runs replayable.
class UploadTamper {
 public:
  virtual ~UploadTamper() = default;
  virtual void apply(std::size_t round, std::size_t client_id, SparseVector& payload) const = 0;
};

struct ValidationConfig {
  bool enabled = false;
  /// Clip uploads whose L2 norm exceeds this multiple of the round's median
  /// payload norm; <= 0 disables clipping.
  double norm_clip_mult = 8.0;
  /// Rejections in this many distinct rounds trigger quarantine; 0 disables.
  std::size_t quarantine_after = 3;
  /// How many rounds a quarantined client is dropped for.
  std::size_t quarantine_rounds = 5;
  /// Below this surviving fraction of the flush, the round degrades.
  double min_valid_fraction = 0.5;
};

/// Per-round screening outcome, carried on RoundOutcome so the engine can
/// surface the counters in RoundRecord / metrics.csv.
struct ValidationStats {
  std::size_t checked = 0;      // uploads screened this round
  std::size_t rejected = 0;     // structurally invalid / non-finite, emptied
  std::size_t clipped = 0;      // norm outliers scaled down
  std::size_t quarantined = 0;  // dropped because the client is quarantined
  double valid_fraction = 1.0;  // surviving slots / checked (1.0 when disabled)
  bool degraded = false;        // too few valid uploads: aggregation skipped
};

class UploadValidator {
 public:
  void configure(const ValidationConfig& cfg) { cfg_ = cfg; }
  const ValidationConfig& config() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled; }

  /// Screens `uploads` in place (rejected payloads are emptied; outliers
  /// clipped) and returns the effective data weights: `weights` itself when
  /// nothing was rejected — bitwise passthrough — or an internal buffer with
  /// rejected slots zeroed and the rest renormalized to sum to 1. On a
  /// degraded round the returned weights are NOT normalized; callers must
  /// check `stats.degraded` before aggregating. `client_ids` empty means
  /// "slot s is client s". Idempotent per round: probe rounds re-screen the
  /// same round number without double-counting quarantine strikes.
  std::span<const double> screen(std::vector<SparseVector>& uploads,
                                 std::span<const std::size_t> client_ids,
                                 std::span<const double> weights, std::size_t dim,
                                 std::size_t round, ValidationStats& stats);

  /// Pre-screening uplink size (in values) of slot `s` from the last
  /// screen() call — rejected payloads still spent airtime, so the timing
  /// model charges what was transmitted, not what survived. Empty when the
  /// last screen() rejected nothing.
  std::span<const double> pre_screen_uplink() const noexcept { return pre_uplink_; }

  /// True when client `id` is quarantined as of `round`.
  bool quarantined(std::size_t client_id, std::size_t round) const;

  /// Reputation strike from the robust-aggregation stage: client `id`'s
  /// upload passed structural screening but was anti-aligned with the robust
  /// aggregate. Tracked separately from rejection strikes — screening cannot
  /// judge these payloads (they are structurally valid), so its clean-round
  /// strike clearing must not erase them; only note_aligned does. Quarantine
  /// triggers after `quarantine_after` distinct suspect rounds, with the same
  /// per-round idempotency as screening (probe re-runs never double-count).
  void note_suspect(std::size_t client_id, std::size_t round);

  /// Counterpart: client `id` contributed and was NOT anti-aligned this
  /// round. Clears accumulated suspect strikes ("repeat offender" means
  /// consecutive suspect rounds, mirroring the rejection-strike semantics).
  void note_aligned(std::size_t client_id, std::size_t round);

 private:
  bool structurally_valid(const SparseVector& sv, std::size_t dim);

  struct Offender {
    std::size_t strikes = 0;             // distinct rounds with a rejection
    std::size_t last_strike_round = 0;   // idempotency guard for probe re-runs
    std::size_t suspect_strikes = 0;     // distinct anti-aligned rounds (robust stage)
    std::size_t last_suspect_round = 0;  // idempotency guard for probe re-runs
    std::size_t quarantined_until = 0;   // inclusive round bound; 0 = not quarantined
  };

  ValidationConfig cfg_;
  std::unordered_map<std::size_t, Offender> offenders_;
  std::vector<double> eff_weights_;
  std::vector<double> norms_;
  std::vector<double> pre_uplink_;
  std::vector<std::uint8_t> verdict_;  // 0 ok, 1 rejected, 2 quarantined
  // Duplicate-index detection without sorting: a slot is a duplicate iff its
  // stamp already equals the current token. O(k) per payload, no clearing.
  std::vector<std::uint64_t> seen_stamp_;
  std::uint64_t stamp_token_ = 0;
};

}  // namespace fedsparse::sparsify
