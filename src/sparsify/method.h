// Strategy interface for one server-side aggregation round.
//
// Every gradient-sparsification scheme the paper evaluates — FAB-top-k (the
// contribution), FUB-top-k, unidirectional top-k, periodic-k, send-all, and
// FedAvg — implements this interface so the federated simulation treats them
// uniformly. A method sees the per-client *accumulated gradients* (or, for
// FedAvg, the per-client local weights) and produces:
//
//  * the downlink payload (sparse or dense update, or averaged weights),
//  * which accumulator indices each client must reset (it transmitted them) —
//    encoded flat (CSR / uniform / all) so a round never allocates one vector
//    per client,
//  * per-client "contributed element" counts feeding the fairness CDF of
//    Fig. 4 (right),
//  * uplink/downlink payload sizes in "values" for the timing model
//    (an index/value pair counts as 2 values — footnote 5 of the paper).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sparsify/robust.h"
#include "sparsify/sparse_vector.h"
#include "sparsify/topk.h"
#include "sparsify/validate.h"
#include "util/rng.h"

namespace fedsparse::sparsify {

struct RoundInput {
  /// Per-client accumulated gradient a_i; for FedAvg-style methods, the
  /// per-client local weight vector instead.
  std::vector<std::span<const float>> client_vectors;
  /// C_i / C (sums to 1).
  ///
  /// Staleness semantics (buffered-async engine, fl/simulation.h): under
  /// AggregationMode::kBufferedAsync a "round" is a buffer flush, and a slot
  /// may carry an upload deferred from an earlier round. The engine folds the
  /// staleness discount into these weights BEFORE the method sees them —
  /// slot s's weight is (C_s/C)·1/(1 + λ·staleness_s), renormalized over the
  /// flush so the sum stays exactly 1 — so methods remain staleness-oblivious
  /// and every aggregate b_j stays a convex combination of client values
  /// (mass conservation). At zero staleness the discount is a multiplication
  /// by 1.0, bitwise invisible: the synchronized engine's weights come out
  /// identical, which is what pins async ≡ sync traces.
  std::span<const double> data_weights;
  /// Stable client ids, slot-aligned with client_vectors; empty means "slot
  /// s is client s". Methods use them to key per-client state that must
  /// survive across rounds — e.g. the top-k threshold hints — so partial
  /// participation or availability churn reordering the slots does not hand
  /// one client's state to another.
  std::span<const std::size_t> client_ids;
  /// Per-client chunk summaries of the accumulated gradients
  /// (GradientAccumulator::chunk_max, slot-aligned with client_vectors):
  /// chunk_max[c] upper-bounds |a_j| over chunk c of kAccumulatorChunk
  /// floats. Top-k methods prune their selection scans on them — whole
  /// chunks below the running threshold are skipped, so mostly-idle clients
  /// cost O(dirty chunks) instead of O(D) — with bitwise-identical outcomes.
  /// Empty vector = no summaries (dense scans); individual empty spans opt
  /// single clients out. FedAvg-style inputs (client weights) leave it empty.
  std::vector<std::span<const float>> client_chunk_max;
  /// Per-client fused prescan views (Client::add_scan results, slot-aligned
  /// with client_vectors). Empty vector = no prescans this round; a
  /// default-constructed view opts a single slot out. Top-k methods hand
  /// these to the selection, which consumes a view only when it matches the
  /// hint it would have scanned with — results are byte-identical either way.
  std::vector<PrescanView> client_prescan;
  /// Optional wire-tamper hook (fl::FaultModel): applied to each slot's
  /// upload after selection, before screening. nullptr = intact wire. Must be
  /// pure in (round, client, payload) so probe rounds and replays see the
  /// same corruption.
  const UploadTamper* tamper = nullptr;
  std::size_t dim = 0;   // D
  std::size_t round = 1; // m, 1-based
};

struct RoundOutcome {
  enum class Kind {
    kSparseUpdate,    // apply w -= eta * update to the global weights
    kDenseUpdate,     // same but dense payload (send-all)
    kWeightAverage,   // replace every client's weights (FedAvg aggregation)
    kLocalOnly,       // no communication this round (FedAvg between syncs)
  };
  Kind kind = Kind::kSparseUpdate;

  SparseVector update;                 // kSparseUpdate: the (j, b_j) pairs
  std::vector<float> dense;            // kDenseUpdate / kWeightAverage payloads

  /// Which accumulated entries each participant consumed (Line 17, Alg. 1).
  /// Three encodings replace the former per-client vector-of-vectors — two
  /// flat arrays cost two allocations per round instead of n, and the uniform
  /// encodings avoid materializing n identical lists at all:
  ///  * kPerClient — CSR: client slot s resets
  ///    reset_indices[reset_offsets[s] .. reset_offsets[s+1]) (top-k methods);
  ///  * kUniform   — every participant resets `uniform_reset` (periodic-k);
  ///  * kAll       — every participant zeroes its whole accumulator
  ///    (send-all), with no index list at all;
  ///  * kNone      — nothing to reset (FedAvg-style local-update methods).
  enum class ResetKind { kNone, kPerClient, kUniform, kAll };
  ResetKind reset_kind = ResetKind::kNone;
  std::vector<std::int32_t> reset_indices;  // kPerClient payload, client-major
  std::vector<std::size_t> reset_offsets;   // kPerClient: n+1 CSR offsets
  std::vector<std::int32_t> uniform_reset;  // kUniform payload

  /// Client slot s's reset list under kPerClient / kUniform (kNone: empty).
  /// kAll has no list — callers must check reset_kind first and use
  /// GradientAccumulator::reset_all (throws std::logic_error here).
  std::span<const std::int32_t> reset_for(std::size_t s) const;

  /// Per-client number of elements that made it into the downlink gradient.
  std::vector<std::size_t> contributed;

  /// Payload sizes in "values" for the timing model. Uplink is per client:
  /// clients transmit in parallel, so under the homogeneous TimingModel a
  /// synchronous round waits on the largest per-client payload, and the top-k
  /// methods charge 2 · max_i |J_i| — the *actual* biggest upload (an
  /// index/value pair counts as 2 values), which can be below 2k when a
  /// client had fewer than k entries to send. Downlink is the broadcast
  /// payload. Keeping these honest matters: the online controller optimizes
  /// round time directly against them.
  double uplink_values = 0.0;
  double downlink_values = 0.0;

  /// Per-participant uplink payloads in values, slot-aligned with the
  /// RoundInput. The heterogeneous fl::NetworkModel needs the full
  /// distribution (τ_m maxes compute_i + uplink_i(2·|J_i|) over clients, so
  /// a small payload on a slow link can still bind the round) and the
  /// per-client traffic metrics account realized bytes from it. Empty means
  /// "uniform": every participant transmitted `uplink_values`.
  std::vector<double> client_uplink_values;

  /// Participant slot s's uplink payload in values.
  double client_uplink(std::size_t s) const {
    return client_uplink_values.empty() ? uplink_values : client_uplink_values[s];
  }

  /// Upload-screening outcome (sparsify/validate.h). Default-initialized —
  /// valid_fraction 1, degraded false — when screening is disabled or the
  /// method has no screening stage (FedAvg-style). On a degraded round the
  /// update is empty, reset_kind is kNone, and contributed is all-zero: the
  /// engine holds the global weights and every client keeps its mass.
  ValidationStats validation;

  /// Robust-aggregation outcome (sparsify/robust.h). Default-initialized —
  /// mean_trust 1, zero counters — when the robust stage is disabled or the
  /// method has none.
  RobustStats robust;
};

class Method {
 public:
  virtual ~Method() = default;

  virtual std::string name() const = 0;

  /// FedAvg-style methods let clients run local SGD between aggregations and
  /// receive client *weights* rather than accumulated gradients.
  virtual bool local_update_style() const { return false; }

  /// Executes the server side of round `in.round` with sparsity degree k
  /// (already integer via stochastic rounding; clamped to [1, D] by callers).
  virtual RoundOutcome round(const RoundInput& in, std::size_t k) = 0;

  /// Evaluates what `round(in, k)` *would* produce without committing any
  /// internal state — used for the k'_m probe of the derivative-sign
  /// estimator (Section IV-E). Stateless methods inherit this default;
  /// stateful ones (periodic-k) override it to snapshot/restore.
  virtual RoundOutcome probe_round(const RoundInput& in, std::size_t k) { return round(in, k); }

  /// Requests the sharded round engine with `shards` client shards (top-k
  /// methods; others ignore it). 0 or 1 selects the single-shard reference
  /// path. Outcomes are byte-identical at every shard count — sharding is a
  /// scheduling decision, not a semantic one.
  virtual void set_sharding(std::size_t shards) { (void)shards; }

  /// Configures the upload-screening stage (sparsify/validate.h). Methods
  /// without a screening stage ignore it; top-k methods forward to their
  /// RoundPipeline. Disabled-by-default, and a disabled screen is a bitwise
  /// no-op on the round.
  virtual void set_validation(const ValidationConfig& cfg) { (void)cfg; }

  /// Configures the robust-aggregation stage (sparsify/robust.h). Methods
  /// without an aggregation stage ignore it; top-k methods forward to their
  /// RoundPipeline. Disabled-by-default, and the disabled stage is a bitwise
  /// no-op: the defense-off round never reaches the robust code path.
  virtual void set_robust(const RobustConfig& cfg) { (void)cfg; }

  /// The |value| threshold the next depth-`k` selection for `client_id`
  /// would scan with (its persisted hint), or 0 when unknown. The simulation
  /// uses this to seed the client-side fused prescan and the buffered-async
  /// engine compares accumulator mass against it for event-triggered uploads.
  /// Implementations must return 0 when the persisted hint was produced for a
  /// k incompatible with the requested one (hint_compatible in topk.h) — a
  /// client rejoining after a churn gap during which the controller moved k
  /// far away must reseed through the prefilter, not scan with a threshold
  /// from a different regime. Methods without per-client selection state
  /// return 0 (no prescan, no event triggering).
  virtual float upload_threshold_hint(std::size_t client_id, std::size_t k) const {
    (void)client_id;
    (void)k;
    return 0.0f;
  }
};

/// Factory: "fab_topk" | "fub_topk" | "unidirectional_topk" | "periodic" |
/// "send_all" | "fedavg". `dim` is D; `seed` feeds methods that randomize
/// (periodic-k). Throws std::invalid_argument for unknown names.
std::unique_ptr<Method> make_method(const std::string& name, std::size_t dim,
                                    std::uint64_t seed = 1);

/// Validates a RoundInput against a method call (dimension/shape checks
/// shared by all implementations). Throws std::invalid_argument.
void validate_round_input(const RoundInput& in);

/// Fills an outcome's uplink accounting from per-client top-k uploads: the
/// slot-aligned payload list (2 values per (index, value) pair) and the
/// legacy parallel-uplink max. Shared by every upload-based method so the
/// two fields cannot drift apart.
void set_uplink_from_uploads(const std::vector<SparseVector>& uploads, RoundOutcome& out);

/// Builds the client-major kPerClient reset lists + contributed counts from
/// per-client uploads on the single-shard reference path (the sharded engine
/// uses CsrResetBuilder). `stamp`/`token` give the downlink-membership test:
/// an uploaded entry is reset (and counts as contributed) iff
/// stamp[idx] == token — pass stamp == nullptr for methods whose broadcast
/// contains every uploaded index (unidirectional). Shared by the top-k
/// methods so the CSR construction cannot drift between them.
void build_reset_lists(const std::vector<SparseVector>& uploads, const std::uint32_t* stamp,
                       std::uint32_t token, RoundOutcome& out);

}  // namespace fedsparse::sparsify
