// Byzantine-resilient aggregation: the robust statistic behind the
// weighted-sum aggregate.
//
// Screening (validate.h) removes uploads that are malformed — wrong indices,
// non-finite values, absurd norms. It cannot remove uploads that are
// perfectly well-formed but adversarial: a colluding cohort that sign-flips
// its gradients, inflates them within finiteness limits, or redirects its
// payload mass onto a shared coordinate block steers the plain weighted mean
// (and, through it, the online k-controller that reads the aggregated loss
// signal) while passing every structural check.
//
// The robust stage replaces the per-coordinate weighted sum with a robust
// statistic over the clients that actually transmitted that coordinate:
//
//   * trimmed mean — sort the per-client contributions by value, drop
//     floor(trim_fraction · m) from each end, take the weighted mean of the
//     survivors, and rescale by the group's total transmitted weight so an
//     attack-free coordinate keeps the plain aggregate's magnitude;
//   * median — the weighted-support analogue: total weight × the median
//     contribution value;
//   * clipped-mean fallback — a coordinate transmitted by fewer than
//     `min_support` clients has too little overlap to trim, so its plain
//     weighted sum is kept with each contribution clamped to
//     `clip_mult` × the round's median |value| over ALL transmitted entries.
//
// After aggregation, each contributing client is scored by the cosine
// similarity between its upload and the robust aggregate restricted to the
// client's own coordinates. Anti-aligned clients (cosine below
// `suspect_cosine`) take a reputation strike through the validator's
// quarantine machinery, and the round's trust — the weighted fraction of
// contributors that are NOT anti-aligned — damps RoundFeedback so
// Algorithms 2/3 do not chase poisoned probes.
//
// Determinism contract: the statistic is a pure function of each
// coordinate's contribution group taken in client-major order (plus one
// round-global clip scalar), and that order is independent of the bucket
// partition — so robust aggregation is byte-identical across shard counts,
// exactly like the plain reduce. Disabled (the default) it is a complete
// no-op: the defense-off path never reaches this code.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fedsparse::sparsify {

enum class RobustKind : std::uint8_t {
  kTrimmedMean = 0,
  kMedian = 1,
};

struct RobustConfig {
  bool enabled = false;
  RobustKind kind = RobustKind::kTrimmedMean;
  /// Fraction of a coordinate's contributions trimmed from EACH end
  /// (trimmed-mean kind). floor(trim_fraction · m) per end, capped so at
  /// least one contribution survives.
  double trim_fraction = 0.25;
  /// Coordinates transmitted by fewer clients than this fall back to the
  /// clipped weighted sum instead of trimming.
  std::size_t min_support = 4;
  /// Thin-support clamp: |value| is clamped to this multiple of the round's
  /// median |value| over all transmitted entries; <= 0 disables the clamp.
  double clip_mult = 8.0;
  /// Contributors whose cosine against the robust aggregate (restricted to
  /// their own coordinates) falls below this take a reputation strike.
  double suspect_cosine = -0.1;

  /// True when the stage is a no-op and the plain aggregate runs unchanged.
  bool trivial() const noexcept { return !enabled; }
};

/// Per-round robust-aggregation outcome, carried on RoundOutcome next to
/// ValidationStats so the engine can surface it in RoundRecord / metrics.
struct RobustStats {
  std::size_t coords_robust = 0;    // coordinates reduced with the robust statistic
  std::size_t coords_thin = 0;      // thin-support coordinates (clipped mean)
  std::size_t values_trimmed = 0;   // individual contributions discarded by trimming
  std::size_t suspects = 0;         // contributors anti-aligned with the aggregate
  double mean_trust = 1.0;          // weighted fraction of aligned contributors
};

}  // namespace fedsparse::sparsify
