#include "sparsify/topk.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

namespace {

// Total order on (|value| desc, index asc): the same order the seed heap used,
// so the selected set and its presentation are bit-identical.
inline bool stronger_entry(const SparseEntry& a, const SparseEntry& b) {
  const float aa = std::fabs(a.value), bb = std::fabs(b.value);
  if (aa != bb) return aa > bb;
  return a.index < b.index;
}

// Below this dimension the prefilter's sampling pass is not worth its scan;
// quickselect over all D entries is already cheap.
constexpr std::size_t kPrefilterMinDim = 4096;
constexpr std::size_t kSampleSize = 512;

// Estimates an |value| threshold from a strided sample such that roughly
// 2.5*k of the D entries survive, then keeps only entries >= threshold.
// Returns false when fewer than k survive (threshold overshot) — the caller
// falls back to scanning everything. Exactness: if >= k entries pass the
// filter, the k-th largest |v| overall is >= threshold, so every true top-k
// entry passed the filter too.
bool prefilter(std::span<const float> v, std::size_t k, SparseVector& cand) {
  float sample[kSampleSize];
  const std::size_t stride = v.size() / kSampleSize;
  for (std::size_t s = 0; s < kSampleSize; ++s) sample[s] = std::fabs(v[s * stride]);
  const double frac =
      std::min(1.0, 2.5 * static_cast<double>(k) / static_cast<double>(v.size()));
  const auto rank = std::min<std::size_t>(
      kSampleSize - 1, static_cast<std::size_t>(frac * static_cast<double>(kSampleSize)));
  std::nth_element(sample, sample + rank, sample + kSampleSize, std::greater<float>());
  const float threshold = sample[rank];
  // A zero threshold admits every entry (|v| >= 0 always holds) — e.g. a
  // post-reset accumulator that is mostly exact zeros — silently turning the
  // "prefilter" into a full copy plus a wasted sampling pass. Bail out to the
  // dense path instead.
  if (threshold <= 0.0f) return false;

  cand.clear();
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::fabs(v[i]) >= threshold) {
      cand.push_back(SparseEntry{static_cast<std::int32_t>(i), v[i]});
    }
  }
  if (cand.size() >= k) return true;
  cand.clear();
  return false;
}

// Threshold scan seeded by the caller's previous k-th magnitude: no sampling
// pass, and a threshold that tracks the true cut instead of aiming at 2.5k
// survivors. The hint is used as-is: accumulated gradients mostly grow
// between rounds, so last round's k-th magnitude usually still admits >= k
// entries, and when it does not (accumulator reset shifted the cut upward,
// or k grew) the sampled prefilter takes over. Loosening the threshold
// instead would drown in the distribution's bulk — on Gaussian-ish tails
// even a 2x margin admits a large fraction of D. The cap bails out when the
// landscape shifted the other way (k shrank a lot). Conservative-exact like
// prefilter(): success requires >= k survivors, which implies every true
// top-k entry passed.
bool hint_filter(std::span<const float> v, std::size_t k, float hint, SparseVector& cand) {
  if (hint <= 0.0f) return false;
  const float threshold = hint;
  const std::size_t cap = 8 * k + 64;
  cand.clear();
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::fabs(v[i]) >= threshold) {
      if (cand.size() >= cap) {
        cand.clear();
        return false;
      }
      cand.push_back(SparseEntry{static_cast<std::int32_t>(i), v[i]});
    }
  }
  if (cand.size() >= k) return true;
  cand.clear();
  return false;
}

// Leaves the k strongest entries in ws.candidates, sorted strongest first.
void select(std::span<const float> v, std::size_t k, TopKWorkspace& ws) {
  k = std::min(k, v.size());
  SparseVector& cand = ws.candidates;
  cand.clear();
  if (k == 0) return;

  bool hint_ok = false;
  bool filtered = false;
  if (k < v.size() && v.size() >= kPrefilterMinDim) {
    hint_ok = hint_filter(v, k, ws.threshold_hint, cand);
    filtered = hint_ok || prefilter(v, k, cand);
  }
  if (!filtered) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      cand.push_back(SparseEntry{static_cast<std::int32_t>(i), v[i]});
    }
  }
  if (cand.size() > k) {
    std::nth_element(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(k), cand.end(),
                     stronger_entry);
    cand.resize(k);
  }
  std::sort(cand.begin(), cand.end(), stronger_entry);
  // Replace the hint when this selection is at least as deep as the one that
  // produced it, or when the stored hint just failed (it drifted stale — low
  // thresholds self-correct here after a cap bail-out). A successful
  // shallower pass (the k'-probe) keeps the deeper hint intact.
  if (!hint_ok || k >= ws.hint_k) {
    ws.threshold_hint = cand.empty() ? 0.0f : std::fabs(cand.back().value);
    ws.hint_k = k;
  }
}

}  // namespace

void top_k_entries(std::span<const float> v, std::size_t k, TopKWorkspace& ws, SparseVector& out) {
  select(v, k, ws);
  out.assign(ws.candidates.begin(), ws.candidates.end());
}

void top_k_indices(std::span<const float> v, std::size_t k, TopKWorkspace& ws,
                   std::vector<std::int32_t>& out) {
  select(v, k, ws);
  out.clear();
  for (const auto& e : ws.candidates) out.push_back(e.index);
}

void top_k_uploads(const std::vector<std::span<const float>>& vecs, std::size_t k,
                   std::span<const std::size_t> ids, std::vector<TopKWorkspace>& workspaces,
                   std::vector<SparseVector>& uploads) {
  const std::size_t n = vecs.size();
  uploads.resize(n);  // shrink-to-n keeps callers' per-client views exact
  std::size_t ws_needed = n;
  for (const std::size_t id : ids) ws_needed = std::max(ws_needed, id + 1);
  if (workspaces.size() < ws_needed) workspaces.resize(ws_needed);
  const auto ws_slot = [&](std::size_t s) { return ids.empty() ? s : ids[s]; };
  std::size_t total = 0;
  for (const auto& v : vecs) total += v.size();
  // Below ~64k total elements the pool dispatch costs more than the
  // selections; the FAB round this threads (N=10, D=128k) is far above it.
  constexpr std::size_t kParallelElemThreshold = 1u << 16;
  util::ThreadPool* pool = tensor::parallel_pool();
  if (pool != nullptr && pool->size() > 1 && n > 1 && total >= kParallelElemThreshold) {
    pool->parallel_for(
        n, [&](std::size_t s) { top_k_entries(vecs[s], k, workspaces[ws_slot(s)], uploads[s]); },
        /*grain=*/1);
  } else {
    for (std::size_t s = 0; s < n; ++s) {
      top_k_entries(vecs[s], k, workspaces[ws_slot(s)], uploads[s]);
    }
  }
}

void top_k_uploads(const std::vector<std::span<const float>>& vecs, std::size_t k,
                   std::vector<TopKWorkspace>& workspaces, std::vector<SparseVector>& uploads) {
  top_k_uploads(vecs, k, /*ids=*/{}, workspaces, uploads);
}

std::vector<std::int32_t> top_k_indices(std::span<const float> v, std::size_t k) {
  TopKWorkspace ws;
  std::vector<std::int32_t> out;
  top_k_indices(v, k, ws, out);
  return out;
}

SparseVector top_k_entries(std::span<const float> v, std::size_t k) {
  TopKWorkspace ws;
  SparseVector out;
  top_k_entries(v, k, ws, out);
  return out;
}

SparseVector top_k_entries_heap(std::span<const float> v, std::size_t k) {
  struct HeapItem {
    float abs_value;
    std::int32_t index;
  };
  // Min-heap ordering on (abs_value asc, index desc) so the weakest element —
  // the one a stronger candidate should evict — sits at the top.
  const auto stronger = [](const HeapItem& a, const HeapItem& b) {
    if (a.abs_value != b.abs_value) return a.abs_value > b.abs_value;
    return a.index < b.index;
  };
  k = std::min(k, v.size());
  std::vector<HeapItem> heap;
  SparseVector out;
  if (k == 0) return out;
  heap.reserve(k);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float av = std::fabs(v[i]);
    const HeapItem item{av, static_cast<std::int32_t>(i)};
    if (heap.size() < k) {
      heap.push_back(item);
      std::push_heap(heap.begin(), heap.end(), stronger);
    } else if (stronger(item, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), stronger);
      heap.back() = item;
      std::push_heap(heap.begin(), heap.end(), stronger);
    }
  }
  std::sort(heap.begin(), heap.end(), [&](const HeapItem& a, const HeapItem& b) {
    if (a.abs_value != b.abs_value) return a.abs_value > b.abs_value;
    return a.index < b.index;
  });
  out.resize(heap.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    out[i] = SparseEntry{heap[i].index, v[static_cast<std::size_t>(heap[i].index)]};
  }
  return out;
}

}  // namespace fedsparse::sparsify
