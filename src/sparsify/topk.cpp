#include "sparsify/topk.h"

#include <algorithm>
#include <cmath>

namespace fedsparse::sparsify {

namespace {

struct HeapItem {
  float abs_value;
  std::int32_t index;
};

// Min-heap ordering on (abs_value asc, index desc) so the weakest element —
// the one a stronger candidate should evict — sits at the top.
bool stronger(const HeapItem& a, const HeapItem& b) {
  if (a.abs_value != b.abs_value) return a.abs_value > b.abs_value;
  return a.index < b.index;
}

std::vector<HeapItem> select(std::span<const float> v, std::size_t k) {
  k = std::min(k, v.size());
  std::vector<HeapItem> heap;
  if (k == 0) return heap;
  heap.reserve(k);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float av = std::fabs(v[i]);
    const HeapItem item{av, static_cast<std::int32_t>(i)};
    if (heap.size() < k) {
      heap.push_back(item);
      std::push_heap(heap.begin(), heap.end(), stronger);
    } else if (stronger(item, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), stronger);
      heap.back() = item;
      std::push_heap(heap.begin(), heap.end(), stronger);
    }
  }
  // Strongest first: sort by (abs desc, index asc).
  std::sort(heap.begin(), heap.end(), [](const HeapItem& a, const HeapItem& b) {
    if (a.abs_value != b.abs_value) return a.abs_value > b.abs_value;
    return a.index < b.index;
  });
  return heap;
}

}  // namespace

std::vector<std::int32_t> top_k_indices(std::span<const float> v, std::size_t k) {
  const auto items = select(v, k);
  std::vector<std::int32_t> out(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) out[i] = items[i].index;
  return out;
}

SparseVector top_k_entries(std::span<const float> v, std::size_t k) {
  const auto items = select(v, k);
  SparseVector out(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    out[i] = SparseEntry{items[i].index, v[static_cast<std::size_t>(items[i].index)]};
  }
  return out;
}

}  // namespace fedsparse::sparsify
