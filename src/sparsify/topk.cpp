#include "sparsify/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <stdexcept>

#include "sparsify/accumulator.h"
#include "sparsify/keys.h"
#include "tensor/matrix.h"
#include "util/thread_pool.h"
#include "util/vec_ext.h"

namespace fedsparse::sparsify {

namespace {

constexpr std::size_t kSampleSize = 512;

}  // namespace

// Appends the key of every entry in [begin, end) with |v[i]| >= threshold,
// in index order. Returns false (leaving keys valid but incomplete) as soon
// as a survivor would exceed `cap` — the hinted filter's bail-out.
//
// Vectorized in 16-element strides (util/vec_ext.h): two 8-lane
// compares fold into one survivor bitmask, walked bit-by-bit with ctz, so
// the common no-survivor stride costs two compares and one well-predicted
// branch instead of 16 fabs tests. The |v| >= t predicate is evaluated as
// (v >= t) | (v <= -t) — identical for every float including ±0 (and NaN,
// which fails both forms) — and survivors append in ascending index order
// either way, so the collected key sequence matches the scalar loop exactly.
bool threshold_scan_range_append(const float* v, std::size_t begin, std::size_t end,
                                 float threshold, std::size_t cap,
                                 std::vector<std::uint64_t>& keys) {
  std::size_t i = begin;
#if FEDSPARSE_VEC_EXT
  namespace vec = util::vec;
  using vec::load8;
  using vec::v8sf;
  const v8sf tv = {threshold, threshold, threshold, threshold,
                   threshold, threshold, threshold, threshold};
  const v8sf ntv = -tv;
  for (; i + 2 * vec::kLanes <= end; i += 2 * vec::kLanes) {
    const v8sf x0 = load8(v + i);
    const v8sf x1 = load8(v + i + vec::kLanes);
    const int m0 = vec::lane_mask((x0 >= tv) | (x0 <= ntv));
    const int m1 = vec::lane_mask((x1 >= tv) | (x1 <= ntv));
    int mask = m0 | (m1 << vec::kLanes);
    while (mask != 0) {
      const auto lane = static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
      mask &= mask - 1;
      if (keys.size() >= cap) return false;
      keys.push_back(make_key(v[i + lane], i + lane));
    }
  }
#endif
  for (; i < end; ++i) {
    if (std::fabs(v[i]) >= threshold) {
      if (keys.size() >= cap) return false;
      keys.push_back(make_key(v[i], i));
    }
  }
  return true;
}

// Chunk-pruned threshold scan: chunks whose |v| upper bound is below the
// threshold contain no survivor by construction and cost one compare for
// their kAccumulatorChunk entries. Exact: pruning only skips entries a
// positive threshold already excludes, and surviving chunks are scanned in
// ascending order, so the appended key sequence is identical to the dense
// scan's.
bool threshold_scan_append(std::span<const float> v, std::span<const float> chunk_max,
                           float threshold, std::size_t cap, std::vector<std::uint64_t>& keys) {
  if (chunk_max.empty()) {
    return threshold_scan_range_append(v.data(), 0, v.size(), threshold, cap, keys);
  }
  // Pruning policy: the chunk walk only pays when chunks actually skip — at
  // high survivor fractions its data-dependent skip branch mispredicts
  // (~50/50 on a dense Gaussian accumulator with k = D/100, measured +7%
  // per selection) while saving nothing, so a strided sample of the bounds
  // estimates the surviving fraction and sends near-dense vectors down the
  // straight linear scan. Policy only: both paths collect the identical key
  // sequence, this picks the cheaper traversal.
  std::size_t sampled = 0, passing = 0;
  for (std::size_t c = 0; c < chunk_max.size(); c += 8) {
    ++sampled;
    passing += chunk_max[c] >= threshold ? 1 : 0;
  }
  if (10 * passing >= 4 * sampled) {
    return threshold_scan_range_append(v.data(), 0, v.size(), threshold, cap, keys);
  }
  for (std::size_t c = 0; c < chunk_max.size(); ++c) {
    if (chunk_max[c] < threshold) continue;
    const std::size_t begin = c * kAccumulatorChunk;
    const std::size_t end = std::min(v.size(), begin + kAccumulatorChunk);
    if (!threshold_scan_range_append(v.data(), begin, end, threshold, cap, keys)) return false;
  }
  return true;
}

namespace {

// Estimates an |value| threshold from a strided sample such that roughly
// 2.5*k of the D entries survive, then keeps only entries >= threshold.
// Returns false when fewer than k survive (threshold overshot) — the caller
// falls back to scanning everything. Exactness: if >= k entries pass the
// filter, the k-th largest |v| overall is >= threshold, so every true top-k
// entry passed the filter too.
bool prefilter(std::span<const float> v, std::size_t k, std::span<const float> chunk_max,
               std::vector<std::uint64_t>& keys) {
  float sample[kSampleSize];
  const std::size_t stride = v.size() / kSampleSize;
  for (std::size_t s = 0; s < kSampleSize; ++s) sample[s] = std::fabs(v[s * stride]);
  const double frac =
      std::min(1.0, 2.5 * static_cast<double>(k) / static_cast<double>(v.size()));
  const auto rank = std::min<std::size_t>(
      kSampleSize - 1, static_cast<std::size_t>(frac * static_cast<double>(kSampleSize)));
  std::nth_element(sample, sample + rank, sample + kSampleSize, std::greater<float>());
  const float threshold = sample[rank];
  // A zero threshold admits every entry (|v| >= 0 always holds) — e.g. a
  // post-reset accumulator that is mostly exact zeros — silently turning the
  // "prefilter" into a full copy plus a wasted sampling pass. Bail out to the
  // dense path instead.
  if (threshold <= 0.0f) return false;

  keys.clear();
  threshold_scan_append(v, chunk_max, threshold, std::numeric_limits<std::size_t>::max(), keys);
  if (keys.size() >= k) return true;
  keys.clear();
  return false;
}

// Threshold scan seeded by the caller's previous k-th magnitude: no sampling
// pass, and a threshold that tracks the true cut instead of aiming at 2.5k
// survivors. The hint is used as-is: accumulated gradients mostly grow
// between rounds, so last round's k-th magnitude usually still admits >= k
// entries, and when it does not (accumulator reset shifted the cut upward,
// or k grew) the sampled prefilter takes over. Loosening the threshold
// instead would drown in the distribution's bulk — on Gaussian-ish tails
// even a 2x margin admits a large fraction of D. The cap bails out when the
// landscape shifted the other way (k shrank a lot). Conservative-exact like
// prefilter(): success requires >= k survivors, which implies every true
// top-k entry passed.
bool hint_filter(std::span<const float> v, std::size_t k, float hint,
                 std::span<const float> chunk_max, std::vector<std::uint64_t>& keys) {
  if (hint <= 0.0f) return false;
  const std::size_t cap = topk_hint_cap(k);
  keys.clear();
  if (!threshold_scan_append(v, chunk_max, hint, cap, keys)) {
    keys.clear();
    return false;
  }
  if (keys.size() >= k) return true;
  keys.clear();
  return false;
}

// Sorts keys descending: LSD radix, 8-bit digits, buckets laid out in
// reverse digit order each pass (a stable descending pass per byte yields a
// fully descending sequence after the last one). Keys are unique, so the
// result is the exact sequence std::sort(greater<>) produces, at ~n work per
// pass instead of n log n branchy comparisons — the k-element output sort is
// the second-largest cost of a hinted selection after the scan itself.
// Passes whose digit is constant across all keys reorder nothing and are
// skipped (common in the high |value| bytes, which span a narrow exponent
// range). Small inputs stay on std::sort: below a few hundred elements the
// 256-bucket bookkeeping costs more than the comparisons.
constexpr std::size_t kRadixMinSize = 512;

}  // namespace

void sort_keys_desc(std::vector<std::uint64_t>& keys, std::vector<std::uint64_t>& scratch) {
  const std::size_t n = keys.size();
  if (n < kRadixMinSize) {
    std::sort(keys.begin(), keys.end(), std::greater<std::uint64_t>());
    return;
  }
  scratch.resize(n);
  std::uint64_t* src = keys.data();
  std::uint64_t* dst = scratch.data();
  std::size_t count[256];
  for (std::size_t pass = 0; pass < 8; ++pass) {
    const std::size_t shift = pass * 8;
    std::fill(count, count + 256, 0);
    for (std::size_t i = 0; i < n; ++i) ++count[(src[i] >> shift) & 255];
    if (std::any_of(count, count + 256, [n](std::size_t c) { return c == n; })) {
      continue;  // constant digit: a stable pass would copy src verbatim
    }
    std::size_t pos = 0;
    for (std::size_t d = 256; d-- > 0;) {  // descending digit order
      const std::size_t c = count[d];
      count[d] = pos;
      pos += c;
    }
    for (std::size_t i = 0; i < n; ++i) dst[count[(src[i] >> shift) & 255]++] = src[i];
    std::swap(src, dst);
  }
  if (src != keys.data()) std::memcpy(keys.data(), src, n * sizeof(std::uint64_t));
}

namespace {

// Dense fallback when summaries exist: clean chunks (bound 0) hold only
// (±)zeros, so collect every |v| > 0 entry from the dirty chunks first —
// O(dirty) instead of O(D). If fewer than k such entries exist the full
// sort's tail is zeros in ascending index order (|0| ties break on index),
// which the pad loop reproduces exactly, reading the stored value so even a
// -0.0 entry round-trips bit-for-bit.
void collect_tiered_dense(std::span<const float> v, std::span<const float> chunk_max,
                          std::size_t k, std::vector<std::uint64_t>& keys) {
  keys.clear();
  for (std::size_t c = 0; c < chunk_max.size(); ++c) {
    if (chunk_max[c] <= 0.0f) continue;
    const std::size_t begin = c * kAccumulatorChunk;
    const std::size_t end = std::min(v.size(), begin + kAccumulatorChunk);
    for (std::size_t i = begin; i < end; ++i) {
      if (key_abs_bits(v[i]) != 0) keys.push_back(make_key(v[i], i));
    }
  }
  if (keys.size() >= k) return;
  // Every positive-|v| entry is selected; pad with the smallest-index zeros.
  const std::size_t positives = keys.size();
  std::sort(keys.begin(), keys.end(), std::greater<std::uint64_t>());
  std::size_t need = k - positives;
  for (std::size_t c = 0; c < chunk_max.size() && need > 0; ++c) {
    const std::size_t begin = c * kAccumulatorChunk;
    const std::size_t end = std::min(v.size(), begin + kAccumulatorChunk);
    if (chunk_max[c] <= 0.0f) {
      for (std::size_t i = begin; i < end && need > 0; ++i, --need) {
        keys.push_back(make_key(v[i], i));
      }
    } else {
      for (std::size_t i = begin; i < end && need > 0; ++i) {
        if (key_abs_bits(v[i]) == 0) {
          keys.push_back(make_key(v[i], i));
          --need;
        }
      }
    }
  }
  // keys is now exactly k entries and already fully descending: positives
  // sorted above, zero keys appended in index order (= key order) below them.
}

// Leaves the k strongest entries in ws.candidates, sorted strongest first.
void select(std::span<const float> v, std::span<const float> chunk_max, std::size_t k,
            TopKWorkspace& ws, const PrescanView* pre = nullptr) {
  if (!chunk_max.empty() && chunk_max.size() != accumulator_chunks(v.size())) {
    throw std::invalid_argument("top_k: chunk summary size does not cover the vector");
  }
  k = std::min(k, v.size());
  SparseVector& cand = ws.candidates;
  std::vector<std::uint64_t>& keys = ws.keys;
  cand.clear();
  keys.clear();
  if (k == 0) return;

  bool hint_ok = false;
  bool filtered = false;
  if (k < v.size() && v.size() >= kTopKPrefilterMinDim) {
    // A fused prescan stands in for the hinted scan when it ran with exactly
    // the threshold and depth this call would use: a complete prescan with
    // >= k survivors IS hint_filter's key sequence (same threshold, same
    // topk_hint_cap(k) bail-out, same ascending chunk order), and an
    // incomplete or short one is exactly the case where hint_filter would
    // have failed — skip straight to the sampled prefilter without paying
    // the scan a second time.
    bool pre_used = false;
    if (pre != nullptr && pre->threshold > 0.0f && pre->threshold == ws.threshold_hint &&
        static_cast<std::size_t>(pre->k) == k) {
      pre_used = true;
      if (pre->complete && pre->keys.size() >= k) {
        keys.assign(pre->keys.begin(), pre->keys.end());
        hint_ok = true;
      }
    }
    if (!pre_used) hint_ok = hint_filter(v, k, ws.threshold_hint, chunk_max, keys);
    filtered = hint_ok || prefilter(v, k, chunk_max, keys);
  }
  if (!filtered) {
    if (!chunk_max.empty()) {
      collect_tiered_dense(v, chunk_max, k, keys);
    } else {
      for (std::size_t i = 0; i < v.size(); ++i) keys.push_back(make_key(v[i], i));
    }
  }
  if (keys.size() > k) {
    std::nth_element(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(k), keys.end(),
                     std::greater<std::uint64_t>());
    keys.resize(k);
    sort_keys_desc(keys, ws.key_scratch);
  } else if (!std::is_sorted(keys.begin(), keys.end(), std::greater<std::uint64_t>())) {
    sort_keys_desc(keys, ws.key_scratch);
  }
  cand.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t idx = key_index(keys[i]);
    cand[i] = SparseEntry{static_cast<std::int32_t>(idx), v[idx]};
  }
  // Replace the hint when this selection is at least as deep as the one that
  // produced it, or when the stored hint just failed (it drifted stale — low
  // thresholds self-correct here after a cap bail-out). A successful
  // shallower pass (the k'-probe) keeps the deeper hint intact.
  if (!hint_ok || k >= ws.hint_k) {
    ws.threshold_hint = cand.empty() ? 0.0f : std::fabs(cand.back().value);
    ws.hint_k = k;
  }
}

}  // namespace

void top_k_entries(std::span<const float> v, std::size_t k, TopKWorkspace& ws, SparseVector& out) {
  select(v, /*chunk_max=*/{}, k, ws);
  out.assign(ws.candidates.begin(), ws.candidates.end());
}

void top_k_entries(std::span<const float> v, std::span<const float> chunk_max, std::size_t k,
                   TopKWorkspace& ws, SparseVector& out, const PrescanView* pre) {
  select(v, chunk_max, k, ws, pre);
  out.assign(ws.candidates.begin(), ws.candidates.end());
}

void top_k_indices(std::span<const float> v, std::size_t k, TopKWorkspace& ws,
                   std::vector<std::int32_t>& out) {
  select(v, /*chunk_max=*/{}, k, ws);
  out.clear();
  for (const auto& e : ws.candidates) out.push_back(e.index);
}

namespace {

// Shared fan-out skeleton of the upload variants: runs sel(s) for every slot,
// across the pool when the work is large enough to amortize the dispatch.
void for_each_upload_slot(std::size_t n, std::size_t total_elems,
                          const std::function<void(std::size_t)>& sel) {
  // Below ~64k total elements the pool dispatch costs more than the
  // selections; the FAB round this threads (N=10, D=128k) is far above it.
  constexpr std::size_t kParallelElemThreshold = 1u << 16;
  util::ThreadPool* pool = tensor::parallel_pool();
  if (pool != nullptr && pool->size() > 1 && n > 1 && total_elems >= kParallelElemThreshold) {
    pool->parallel_for(n, sel, /*grain=*/1);
  } else {
    for (std::size_t s = 0; s < n; ++s) sel(s);
  }
}

std::span<const float> upload_summary(const std::vector<std::span<const float>>& chunk_maxes,
                                      std::size_t s) {
  return chunk_maxes.empty() ? std::span<const float>{} : chunk_maxes[s];
}

const PrescanView* upload_prescan(const std::vector<PrescanView>* prescan, std::size_t s) {
  return prescan == nullptr ? nullptr : &(*prescan)[s];
}

}  // namespace

void top_k_uploads(const std::vector<std::span<const float>>& vecs,
                   const std::vector<std::span<const float>>& chunk_maxes, std::size_t k,
                   std::span<const std::size_t> ids, std::vector<TopKWorkspace>& workspaces,
                   std::vector<SparseVector>& uploads,
                   const std::vector<PrescanView>* prescan) {
  const std::size_t n = vecs.size();
  if (!chunk_maxes.empty() && chunk_maxes.size() != n) {
    throw std::invalid_argument("top_k_uploads: chunk_maxes size mismatch");
  }
  if (prescan != nullptr && prescan->size() != n) {
    throw std::invalid_argument("top_k_uploads: prescan size mismatch");
  }
  uploads.resize(n);  // shrink-to-n keeps callers' per-client views exact
  std::size_t ws_needed = n;
  for (const std::size_t id : ids) ws_needed = std::max(ws_needed, id + 1);
  if (workspaces.size() < ws_needed) workspaces.resize(ws_needed);
  const auto ws_slot = [&](std::size_t s) { return ids.empty() ? s : ids[s]; };
  std::size_t total = 0;
  for (const auto& v : vecs) total += v.size();
  for_each_upload_slot(n, total, [&](std::size_t s) {
    top_k_entries(vecs[s], upload_summary(chunk_maxes, s), k, workspaces[ws_slot(s)],
                  uploads[s], upload_prescan(prescan, s));
  });
}

void top_k_uploads_fleet(const std::vector<std::span<const float>>& vecs,
                         const std::vector<std::span<const float>>& chunk_maxes, std::size_t k,
                         std::span<const std::size_t> ids,
                         std::vector<TopKWorkspace>& slot_workspaces,
                         std::vector<ClientHint>& hints, std::vector<SparseVector>& uploads,
                         const std::vector<PrescanView>* prescan) {
  const std::size_t n = vecs.size();
  if (!chunk_maxes.empty() && chunk_maxes.size() != n) {
    throw std::invalid_argument("top_k_uploads_fleet: chunk_maxes size mismatch");
  }
  if (prescan != nullptr && prescan->size() != n) {
    throw std::invalid_argument("top_k_uploads_fleet: prescan size mismatch");
  }
  uploads.resize(n);
  std::size_t hints_needed = n;
  for (const std::size_t id : ids) hints_needed = std::max(hints_needed, id + 1);
  if (hints.size() < hints_needed) hints.resize(hints_needed);
  util::ThreadPool* pool = tensor::parallel_pool();
  const std::size_t slots = pool != nullptr ? pool->slot_count() : 1;
  if (slot_workspaces.size() < slots) slot_workspaces.resize(slots);
  const auto hint_slot = [&](std::size_t s) { return ids.empty() ? s : ids[s]; };
  std::size_t total = 0;
  for (const auto& v : vecs) total += v.size();
  for_each_upload_slot(n, total, [&](std::size_t s) {
    // The workspace is pure scratch except for (threshold_hint, hint_k);
    // round-tripping that pair through the per-client store makes this
    // byte-identical to a dedicated per-client workspace.
    TopKWorkspace& ws = slot_workspaces[pool != nullptr ? pool->current_slot() : 0];
    ClientHint& hint = hints[hint_slot(s)];
    ws.threshold_hint = hint.threshold;
    ws.hint_k = hint.k;
    top_k_entries(vecs[s], upload_summary(chunk_maxes, s), k, ws, uploads[s],
                  upload_prescan(prescan, s));
    hint.threshold = ws.threshold_hint;
    hint.k = static_cast<std::uint32_t>(ws.hint_k);
  });
}

void top_k_uploads(const std::vector<std::span<const float>>& vecs, std::size_t k,
                   std::span<const std::size_t> ids, std::vector<TopKWorkspace>& workspaces,
                   std::vector<SparseVector>& uploads) {
  top_k_uploads(vecs, /*chunk_maxes=*/{}, k, ids, workspaces, uploads);
}

void top_k_uploads(const std::vector<std::span<const float>>& vecs, std::size_t k,
                   std::vector<TopKWorkspace>& workspaces, std::vector<SparseVector>& uploads) {
  top_k_uploads(vecs, /*chunk_maxes=*/{}, k, /*ids=*/{}, workspaces, uploads);
}

std::vector<std::int32_t> top_k_indices(std::span<const float> v, std::size_t k) {
  TopKWorkspace ws;
  std::vector<std::int32_t> out;
  top_k_indices(v, k, ws, out);
  return out;
}

SparseVector top_k_entries(std::span<const float> v, std::size_t k) {
  TopKWorkspace ws;
  SparseVector out;
  top_k_entries(v, k, ws, out);
  return out;
}

SparseVector top_k_entries_heap(std::span<const float> v, std::size_t k) {
  struct HeapItem {
    float abs_value;
    std::int32_t index;
  };
  // Min-heap ordering on (abs_value asc, index desc) so the weakest element —
  // the one a stronger candidate should evict — sits at the top.
  const auto stronger = [](const HeapItem& a, const HeapItem& b) {
    if (a.abs_value != b.abs_value) return a.abs_value > b.abs_value;
    return a.index < b.index;
  };
  k = std::min(k, v.size());
  std::vector<HeapItem> heap;
  SparseVector out;
  if (k == 0) return out;
  heap.reserve(k);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float av = std::fabs(v[i]);
    const HeapItem item{av, static_cast<std::int32_t>(i)};
    if (heap.size() < k) {
      heap.push_back(item);
      std::push_heap(heap.begin(), heap.end(), stronger);
    } else if (stronger(item, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), stronger);
      heap.back() = item;
      std::push_heap(heap.begin(), heap.end(), stronger);
    }
  }
  std::sort(heap.begin(), heap.end(), [&](const HeapItem& a, const HeapItem& b) {
    if (a.abs_value != b.abs_value) return a.abs_value > b.abs_value;
    return a.index < b.index;
  });
  out.resize(heap.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    out[i] = SparseEntry{heap[i].index, v[static_cast<std::size_t>(heap[i].index)]};
  }
  return out;
}

}  // namespace fedsparse::sparsify
