#include "sparsify/fab_topk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "sparsify/topk.h"

namespace fedsparse::sparsify {

FabTopK::FabTopK(std::size_t dim) : dim_(dim), agg_(dim, 0.0f), stamp_(dim, 0) {}

std::size_t FabTopK::find_kappa(const std::vector<SparseVector>& uploads, std::size_t k) {
  // |∪_i J_i^κ| is nondecreasing in κ, so binary search works. Evaluating the
  // union size at κ costs O(N·κ) with a hash set.
  const auto union_size = [&uploads](std::size_t kappa) {
    std::unordered_set<std::int32_t> seen;
    for (const auto& up : uploads) {
      const std::size_t take = std::min(kappa, up.size());
      for (std::size_t j = 0; j < take; ++j) seen.insert(up[j].index);
    }
    return seen.size();
  };
  std::size_t lo = 0, hi = k;  // invariant: union_size(lo) <= k
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (union_size(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::size_t FabTopK::find_kappa_stamped(std::size_t k) {
  // growth[j] = number of indices appearing first at prefix depth j+1, so
  // |∪_i J_i^κ| = growth[0] + … + growth[κ-1]. One stamp pass computes every
  // union size at once; the walk then returns the largest κ with size ≤ k.
  union_growth_.assign(k, 0);
  ++stamp_token_;
  const std::uint32_t token = stamp_token_;
  for (std::size_t j = 0; j < k; ++j) {
    for (const auto& up : uploads_) {
      if (up.size() <= j) continue;
      const auto idx = static_cast<std::size_t>(up[j].index);
      if (stamp_[idx] != token) {
        stamp_[idx] = token;
        ++union_growth_[j];
      }
    }
  }
  std::size_t size = 0, kappa = 0;
  for (std::size_t j = 0; j < k; ++j) {
    size += union_growth_[j];
    if (size > k) break;
    kappa = j + 1;
  }
  return kappa;
}

RoundOutcome FabTopK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, dim_);

  // Client side: top-k of the accumulated gradient, strongest first — the N
  // independent selections thread across the registered pool, pruning on the
  // accumulators' chunk summaries when the caller provides them. uploads_ /
  // topk_ws_ keep their capacity across rounds — no allocations once warm.
  top_k_uploads(in.client_vectors, in.client_chunk_max, k, in.client_ids, topk_ws_, uploads_);

  // Server side: fairness-aware selection.
  const std::size_t kappa = find_kappa_stamped(k);

  ++stamp_token_;
  const std::uint32_t in_j = stamp_token_;
  selected_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& up = uploads_[i];
    const std::size_t take = std::min(kappa, up.size());
    for (std::size_t j = 0; j < take; ++j) {
      const auto idx = static_cast<std::size_t>(up[j].index);
      if (stamp_[idx] != in_j) {
        stamp_[idx] = in_j;
        selected_.push_back(up[j].index);
      }
    }
  }

  // Fill to k from the (κ+1)-th candidates (the only members of
  // (∪J^{κ+1}) \ (∪J^κ)), strongest |value| first, deterministic tie-break.
  if (selected_.size() < k) {
    fill_candidates_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const auto& up = uploads_[i];
      if (up.size() > kappa) {
        const auto& e = up[kappa];
        if (stamp_[static_cast<std::size_t>(e.index)] != in_j) fill_candidates_.push_back(e);
      }
    }
    std::sort(fill_candidates_.begin(), fill_candidates_.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                const float aa = std::fabs(a.value), bb = std::fabs(b.value);
                if (aa != bb) return aa > bb;
                return a.index < b.index;
              });
    for (const auto& e : fill_candidates_) {
      if (selected_.size() >= k) break;
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp_[idx] != in_j) {
        stamp_[idx] = in_j;
        selected_.push_back(e.index);
      }
    }
  }

  // Aggregate b_j = Σ_i (C_i/C) a_ij over uploaders, for j ∈ J only, through
  // the reusable dense accumulator agg_; record per-client resets and
  // contributions in the same pass.
  for (const std::int32_t j : selected_) agg_[static_cast<std::size_t>(j)] = 0.0f;

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.reset_kind = RoundOutcome::ResetKind::kPerClient;
  out.reset_indices.reserve(selected_.size());
  out.reset_offsets.reserve(n + 1);
  out.reset_offsets.push_back(0);
  out.contributed.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(in.data_weights[i]);
    for (const auto& e : uploads_[i]) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp_[idx] == in_j) {  // j ∈ J and j ∈ J_i
        agg_[idx] += w * e.value;
        out.reset_indices.push_back(e.index);
        ++out.contributed[i];
      }
    }
    out.reset_offsets.push_back(out.reset_indices.size());
  }

  out.update.reserve(selected_.size());
  for (const std::int32_t j : selected_) {
    out.update.push_back(SparseEntry{j, agg_[static_cast<std::size_t>(j)]});
  }
  sort_by_index(out.update);

  // Clients transmit in parallel, so the synchronous round waits on the
  // largest actual per-client payload — not a flat 2k, which overcharges
  // whenever a client uploaded fewer than k entries. The full per-client
  // distribution feeds the heterogeneous network model's straggler max.
  set_uplink_from_uploads(uploads_, out);
  out.downlink_values = 2.0 * static_cast<double>(out.update.size());
  return out;
}

}  // namespace fedsparse::sparsify
