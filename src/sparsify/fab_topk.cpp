#include "sparsify/fab_topk.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sparsify/keys.h"
#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace fedsparse::sparsify {

FabTopK::FabTopK(std::size_t dim) : pipe_(dim) {}

std::size_t FabTopK::find_kappa(const std::vector<SparseVector>& uploads, std::size_t k) {
  // |∪_i J_i^κ| is nondecreasing in κ, so binary search works. Evaluating the
  // union size at κ costs O(N·κ) with a hash set.
  const auto union_size = [&uploads](std::size_t kappa) {
    std::unordered_set<std::int32_t> seen;
    for (const auto& up : uploads) {
      const std::size_t take = std::min(kappa, up.size());
      for (std::size_t j = 0; j < take; ++j) seen.insert(up[j].index);
    }
    return seen.size();
  };
  std::size_t lo = 0, hi = k;  // invariant: union_size(lo) <= k
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (union_size(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::size_t FabTopK::find_kappa_stamped(std::size_t k) {
  // growth[j] = number of indices appearing first at prefix depth j+1, so
  // |∪_i J_i^κ| = growth[0] + … + growth[κ-1]. One stamp pass computes every
  // union size at once; the walk then returns the largest κ with size ≤ k.
  union_growth_.assign(k, 0);
  std::uint32_t* stamp = pipe_.stamp();
  const std::uint32_t token = pipe_.next_token();
  for (std::size_t j = 0; j < k; ++j) {
    for (const auto& up : pipe_.uploads()) {
      if (up.size() <= j) continue;
      const auto idx = static_cast<std::size_t>(up[j].index);
      if (stamp[idx] != token) {
        stamp[idx] = token;
        ++union_growth_[j];
      }
    }
  }
  std::size_t size = 0, kappa = 0;
  for (std::size_t j = 0; j < k; ++j) {
    size += union_growth_[j];
    if (size > k) break;
    kappa = j + 1;
  }
  return kappa;
}

RoundOutcome FabTopK::round(const RoundInput& in, std::size_t k) {
  validate_round_input(in);
  const std::size_t n = in.client_vectors.size();
  k = std::clamp<std::size_t>(k, 1, pipe_.dim());
  // Dispatch on the pipeline's shard count alone (not n): the hint store must
  // not flip between the per-client workspaces and the fleet store across
  // rounds. The robust path also routes through the sharded engine (at S = 1
  // it is the reference round with the robust reduce swapped in) — the
  // defense-off reference loop below stays bitwise untouched.
  if (pipe_.sharded() || pipe_.robust_enabled()) return round_sharded(in, k);

  // Stage: client-side top-k of the accumulated gradient, strongest first —
  // the N independent selections thread across the registered pool, pruning
  // on the accumulators' chunk summaries when the caller provides them.
  const std::vector<SparseVector>& uploads = pipe_.select_uploads(in, k);

  // Stage: screen the uploads before anything server-side reads them — a
  // poisoned payload must not reach the κ search, let alone the arena.
  ValidationStats vstats;
  const std::span<const double> weights = pipe_.validate_uploads(in, vstats);
  if (vstats.degraded) {
    RoundOutcome out;
    pipe_.finish_degraded(in, out);
    out.validation = vstats;
    return out;
  }

  // Server side: fairness-aware selection.
  const std::size_t kappa = find_kappa_stamped(k);

  float* agg = pipe_.agg();
  std::uint32_t* stamp = pipe_.stamp();
  const std::uint32_t in_j = pipe_.next_token();
  selected_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& up = uploads[i];
    const std::size_t take = std::min(kappa, up.size());
    for (std::size_t j = 0; j < take; ++j) {
      const auto idx = static_cast<std::size_t>(up[j].index);
      if (stamp[idx] != in_j) {
        stamp[idx] = in_j;
        selected_.push_back(up[j].index);
      }
    }
  }

  // Fill to k from the (κ+1)-th candidates (the only members of
  // (∪J^{κ+1}) \ (∪J^κ)), strongest |value| first, deterministic tie-break.
  if (selected_.size() < k) {
    fill_candidates_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const auto& up = uploads[i];
      if (up.size() > kappa) {
        const auto& e = up[kappa];
        if (stamp[static_cast<std::size_t>(e.index)] != in_j) fill_candidates_.push_back(e);
      }
    }
    std::sort(fill_candidates_.begin(), fill_candidates_.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                const float aa = std::fabs(a.value), bb = std::fabs(b.value);
                if (aa != bb) return aa > bb;
                return a.index < b.index;
              });
    for (const auto& e : fill_candidates_) {
      if (selected_.size() >= k) break;
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp[idx] != in_j) {
        stamp[idx] = in_j;
        selected_.push_back(e.index);
      }
    }
  }

  // Stage: aggregate b_j = Σ_i (C_i/C) a_ij over uploaders, for j ∈ J only,
  // through the pipeline's dense arena.
  for (const std::int32_t j : selected_) agg[static_cast<std::size_t>(j)] = 0.0f;

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.validation = vstats;
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<float>(weights[i]);
    for (const auto& e : uploads[i]) {
      const auto idx = static_cast<std::size_t>(e.index);
      if (stamp[idx] == in_j) agg[idx] += w * e.value;  // j ∈ J and j ∈ J_i
    }
  }
  // Stage: per-client resets + contributions (an uploaded entry resets iff it
  // made the broadcast, i.e. carries the in_j stamp).
  build_reset_lists(uploads, stamp, in_j, out);

  out.update.reserve(selected_.size());
  for (const std::int32_t j : selected_) {
    out.update.push_back(SparseEntry{j, agg[static_cast<std::size_t>(j)]});
  }
  sort_by_index(out.update);

  // Stage: payload accounting. Clients transmit in parallel, so the
  // synchronous round waits on the largest actual per-client payload — not a
  // flat 2k, which overcharges whenever a client uploaded fewer than k
  // entries. The full per-client distribution feeds the heterogeneous
  // network model's straggler max.
  pipe_.finish_payload(out);
  return out;
}

// Sharded round: the same algorithm with every O(N·k) server pass split into
// per-shard arena passes plus a fixed-order serial combine. Equivalence to
// the reference path, phase by phase:
//
//  * κ — the reference's growth histogram counts indices by their MIN prefix
//    depth over all clients. Min is commutative/associative, so per-shard
//    minima min-merged in fixed shard order give the same per-index depth,
//    the same histogram, the same κ.
//  * J — the reference builds selected_ in client-major prefix order, but
//    its ORDER is never observable: the update is index-sorted at the end
//    and resets/contributions test only membership. J as a set is
//    {min depth < κ}, read off the merged depth map.
//  * Fill — the reference sorts all (κ+1)-th candidates by (|v| desc, index
//    asc) and walks with first-occurrence index dedup until k. Per-shard:
//    radix-sort the shard's candidates as 64-bit keys (the identical total
//    order), dedup within the shard (a dropped duplicate is weaker than an
//    earlier same-index key, so the reference walk would skip it too) and
//    truncate to the fill quota f = k − |J| (an entry below f distinct
//    stronger in-shard candidates has ≥ f distinct stronger candidates
//    globally — it can never be chosen). Tree-merging the runs restores the
//    exact global candidate order; the final walk is the reference walk.
//  * Aggregation / resets — BucketAggregator reproduces the client-major
//    float addition sequence per index (see shard_engine.h); CsrResetBuilder
//    is the reference's count/fill loop over a contiguous partition. The
//    builder runs FIRST: the aggregator re-stamps J's entries with its touch
//    token, consuming the in_j membership the filter reads.
RoundOutcome FabTopK::round_sharded(const RoundInput& in, std::size_t k) {
  const std::size_t n = in.client_vectors.size();
  const std::size_t dim = pipe_.dim();
  util::ThreadPool* pool = tensor::parallel_pool();
  const ShardPlan plan = pipe_.make_plan(n);
  const std::size_t S = plan.shards();

  const std::vector<SparseVector>& uploads = pipe_.select_uploads(in, k);

  ValidationStats vstats;
  const std::span<const double> weights = pipe_.validate_uploads(in, vstats);
  if (vstats.degraded) {
    RoundOutcome out;
    pipe_.finish_degraded(in, out);
    out.validation = vstats;
    return out;
  }

  // Per-shard min prefix depth of every index the shard saw.
  std::vector<ShardArena>& arenas = pipe_.arenas(S);
  for_each_shard(pool, S, [&](std::size_t s) {
    ShardArena& ar = arenas[s];
    const std::uint32_t tok = ar.begin_pass(dim);
    ar.touched.clear();
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
        const auto& up = uploads[i];
        if (up.size() <= j) continue;
        const auto idx = static_cast<std::size_t>(up[j].index);
        if (ar.stamp[idx] != tok) {
          ar.stamp[idx] = tok;
          ar.aux[idx] = static_cast<std::uint32_t>(j);
          ar.touched.push_back(up[j].index);
        }
      }
    }
  });

  // Fixed-order min-merge into the global depth map, then the same growth
  // histogram walk as find_kappa_stamped.
  if (depth_.size() < dim) depth_.resize(dim, 0);
  std::uint32_t* stamp = pipe_.stamp();
  const std::uint32_t seen = pipe_.next_token();
  touched_union_.clear();
  for (std::size_t s = 0; s < S; ++s) {
    const ShardArena& ar = arenas[s];
    for (const std::int32_t j : ar.touched) {
      const auto idx = static_cast<std::size_t>(j);
      const std::uint32_t d = ar.aux[idx];
      if (stamp[idx] != seen) {
        stamp[idx] = seen;
        depth_[idx] = d;
        touched_union_.push_back(j);
      } else if (d < depth_[idx]) {
        depth_[idx] = d;
      }
    }
  }
  union_growth_.assign(k, 0);
  for (const std::int32_t j : touched_union_) {
    ++union_growth_[depth_[static_cast<std::size_t>(j)]];
  }
  std::size_t size = 0, kappa = 0;
  for (std::size_t j = 0; j < k; ++j) {
    size += union_growth_[j];
    if (size > k) break;
    kappa = j + 1;
  }

  const std::uint32_t in_j = pipe_.next_token();
  selected_.clear();
  for (const std::int32_t j : touched_union_) {
    const auto idx = static_cast<std::size_t>(j);
    if (depth_[idx] < kappa) {
      stamp[idx] = in_j;
      selected_.push_back(j);
    }
  }

  if (selected_.size() < k) {
    const std::size_t need = k - selected_.size();
    for_each_shard(pool, S, [&](std::size_t s) {
      ShardArena& ar = arenas[s];
      ar.keys.clear();
      for (std::size_t i = plan.begin(s); i < plan.end(s); ++i) {
        const auto& up = uploads[i];
        if (up.size() > kappa) {
          const auto& e = up[kappa];
          if (stamp[static_cast<std::size_t>(e.index)] != in_j) {
            ar.keys.push_back(make_key(e.value, static_cast<std::size_t>(e.index)));
          }
        }
      }
      sort_keys_desc(ar.keys, ar.key_scratch);
      const std::uint32_t tok = ar.begin_pass(dim);
      std::size_t kept = 0;
      for (const std::uint64_t key : ar.keys) {
        const std::size_t idx = key_index(key);
        if (ar.stamp[idx] == tok) continue;
        ar.stamp[idx] = tok;
        ar.keys[kept++] = key;
        if (kept == need) break;
      }
      ar.keys.resize(kept);
    });
    std::size_t total_fill = 0;
    for (std::size_t s = 0; s < S; ++s) total_fill += arenas[s].keys.size();
    const auto merged = pipe_.merge_arena_keys(S, total_fill);
    for (const std::uint64_t key : merged) {
      if (selected_.size() >= k) break;
      const std::size_t idx = key_index(key);
      if (stamp[idx] != in_j) {
        stamp[idx] = in_j;
        selected_.push_back(static_cast<std::int32_t>(idx));
      }
    }
  }

  RoundOutcome out;
  out.kind = RoundOutcome::Kind::kSparseUpdate;
  out.validation = vstats;
  const BucketAggregator::Filter filter{stamp, in_j};
  pipe_.build_resets(S, pool, filter, out);
  if (pipe_.robust_enabled()) {
    pipe_.aggregate_robust(in, weights, S, pool, filter);
    out.robust = pipe_.robust_stats();
  } else {
    pipe_.aggregate(weights, S, pool, filter);
  }

  // Buckets are ascending disjoint index ranges, so per-bucket index sorts
  // concatenate into the globally index-sorted update the reference emits.
  // Every j ∈ J has at least one uploader (prefix members and fill
  // candidates both come from uploads), so the aggregated set IS J.
  pipe_.emit_update_from_buckets(pool, out);

  pipe_.finish_payload(out);
  return out;
}

}  // namespace fedsparse::sparsify
