// Sparse gradient representation: (index, value) pairs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fedsparse::sparsify {

struct SparseEntry {
  std::int32_t index = 0;
  float value = 0.0f;

  friend bool operator==(const SparseEntry&, const SparseEntry&) = default;
};

using SparseVector = std::vector<SparseEntry>;

/// Scatters `sv` into a dense vector of dimension `dim` (unset entries zero).
/// Duplicate-index contract: repeated indices ACCUMULATE (`+=`), matching
/// axpy_sparse — a duplicated entry contributes every occurrence, none are
/// silently dropped.
std::vector<float> to_dense(const SparseVector& sv, std::size_t dim);

/// dst[j] += alpha * value for each (j, value) in sv.
void axpy_sparse(float alpha, const SparseVector& sv, std::span<float> dst);

/// Sorts entries by index ascending (canonical order for comparison).
void sort_by_index(SparseVector& sv);

/// Sum of |value| over entries.
double l1_norm(const SparseVector& sv);

/// a − b over the union of indices; both inputs must be sorted by index.
/// Entries whose difference is exactly zero are dropped. Used to derive the
/// k'-element probe update from the k-element one (w' = w + η·(a − b) terms).
SparseVector sparse_subtract(const SparseVector& a, const SparseVector& b);

}  // namespace fedsparse::sparsify
