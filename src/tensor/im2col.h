// im2col / col2im for convolution lowering.
//
// Conv2d lowers each sample's (C, H, W) activation block into a
// (C*ksize*ksize) x (outH*outW) column matrix so the convolution becomes one
// GEMM with the (outC) x (C*ksize*ksize) filter matrix. col2im scatters
// column-space gradients back into image space (accumulating overlaps).
#pragma once

#include <cstddef>

#include "tensor/matrix.h"

namespace fedsparse::tensor {

struct ConvGeometry {
  std::size_t channels = 1;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t ksize = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_height() const noexcept { return (height + 2 * pad - ksize) / stride + 1; }
  std::size_t out_width() const noexcept { return (width + 2 * pad - ksize) / stride + 1; }
  std::size_t col_rows() const noexcept { return channels * ksize * ksize; }
  std::size_t col_cols() const noexcept { return out_height() * out_width(); }
  std::size_t image_size() const noexcept { return channels * height * width; }
};

/// image: pointer to one sample, layout C x H x W contiguous. Fills `cols`
/// (resized to col_rows x col_cols).
void im2col(const float* image, const ConvGeometry& g, Matrix& cols);

/// View variant: writes into pre-shaped external storage of exactly
/// col_rows() x col_cols() (throws std::invalid_argument otherwise). Used by
/// Conv2d to fill one row-region of its batched column cache in place.
void im2col(const float* image, const ConvGeometry& g, MatrixView cols);

/// Inverse scatter-add: accumulates `cols` back into `image` (which must hold
/// image_size() floats and should be zeroed by the caller beforehand).
void col2im(const Matrix& cols, const ConvGeometry& g, float* image);

}  // namespace fedsparse::tensor
