#include "tensor/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/thread_pool.h"

namespace fedsparse::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Matrix: data size does not match rows*cols");
  }
}

void Matrix::fill(float v) noexcept {
  for (auto& x : data_) x = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // resize (not assign): existing elements are never re-zeroed, shrink keeps
  // capacity, and size()/flat() stay exactly rows*cols for consumers.
  data_.resize(rows * cols);
}

namespace {

std::atomic<util::ThreadPool*> g_parallel_pool{nullptr};

// Cache tiles for the blocked kernel. KC rows of B (KC*NC floats) stay hot in
// L1/L2 across the whole MC sweep; MC x KC of A is streamed once per tile.
constexpr std::size_t kMC = 64;
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 512;
// Below this many multiply-adds the blocking/threading bookkeeping costs more
// than it saves; fall back to the plain kernel.
constexpr std::size_t kParallelFlopThreshold = 1 << 18;

// Register micro-kernel: a 4x16 tile of C is accumulated entirely in
// registers across the whole [k0, k1) sweep (8 SIMD accumulators under AVX2)
// and written back once — C traffic drops from O(kc) loads/stores per element
// to exactly one read-modify-write. Four C rows share each loaded B row.
constexpr std::size_t kNR = 16;

inline void kernel_4x16(const Matrix& a, const Matrix& b, float alpha, Matrix& c, std::size_t mi,
                        std::size_t k0, std::size_t k1, std::size_t nt) {
  float acc0[kNR] = {}, acc1[kNR] = {}, acc2[kNR] = {}, acc3[kNR] = {};
  for (std::size_t ki = k0; ki < k1; ++ki) {
    const float* __restrict__ brow = b.row(ki) + nt;
    const float a0 = a.at(mi, ki);
    const float a1 = a.at(mi + 1, ki);
    const float a2 = a.at(mi + 2, ki);
    const float a3 = a.at(mi + 3, ki);
    for (std::size_t j = 0; j < kNR; ++j) {
      const float bv = brow[j];
      acc0[j] += a0 * bv;
      acc1[j] += a1 * bv;
      acc2[j] += a2 * bv;
      acc3[j] += a3 * bv;
    }
  }
  float* __restrict__ c0 = c.row(mi) + nt;
  float* __restrict__ c1 = c.row(mi + 1) + nt;
  float* __restrict__ c2 = c.row(mi + 2) + nt;
  float* __restrict__ c3 = c.row(mi + 3) + nt;
  for (std::size_t j = 0; j < kNR; ++j) {
    c0[j] += alpha * acc0[j];
    c1[j] += alpha * acc1[j];
    c2[j] += alpha * acc2[j];
    c3[j] += alpha * acc3[j];
  }
}

// Column-tail variant of kernel_4x16 for nc < 16 remainder columns.
inline void kernel_4xN(const Matrix& a, const Matrix& b, float alpha, Matrix& c, std::size_t mi,
                       std::size_t k0, std::size_t k1, std::size_t n0, std::size_t n1) {
  float* __restrict__ c0 = c.row(mi) + n0;
  float* __restrict__ c1 = c.row(mi + 1) + n0;
  float* __restrict__ c2 = c.row(mi + 2) + n0;
  float* __restrict__ c3 = c.row(mi + 3) + n0;
  const std::size_t nc = n1 - n0;
  for (std::size_t ki = k0; ki < k1; ++ki) {
    const float a0 = alpha * a.at(mi, ki);
    const float a1 = alpha * a.at(mi + 1, ki);
    const float a2 = alpha * a.at(mi + 2, ki);
    const float a3 = alpha * a.at(mi + 3, ki);
    const float* __restrict__ brow = b.row(ki) + n0;
    for (std::size_t ni = 0; ni < nc; ++ni) {
      const float bv = brow[ni];
      c0[ni] += a0 * bv;
      c1[ni] += a1 * bv;
      c2[ni] += a2 * bv;
      c3[ni] += a3 * bv;
    }
  }
}

// Single-row remainder of kernel_4xN.
inline void kernel_1xN(const Matrix& a, const Matrix& b, float alpha, Matrix& c, std::size_t mi,
                       std::size_t k0, std::size_t k1, std::size_t n0, std::size_t n1) {
  float* __restrict__ crow = c.row(mi) + n0;
  const std::size_t nc = n1 - n0;
  for (std::size_t ki = k0; ki < k1; ++ki) {
    const float aik = alpha * a.at(mi, ki);
    if (aik == 0.0f) continue;
    const float* __restrict__ brow = b.row(ki) + n0;
    for (std::size_t ni = 0; ni < nc; ++ni) crow[ni] += aik * brow[ni];
  }
}

// Blocked C += alpha * A * B over the row range [m0, m1) — the unit of work
// one thread owns, so threading never splits a C row and results are
// bitwise-identical to the serial order.
void gemm_nn_rows(const Matrix& a, const Matrix& b, float alpha, Matrix& c, std::size_t m0,
                  std::size_t m1) {
  const std::size_t k = a.cols(), n = b.cols();
  for (std::size_t n0 = 0; n0 < n; n0 += kNC) {
    const std::size_t n1 = std::min(n, n0 + kNC);
    for (std::size_t k0 = 0; k0 < k; k0 += kKC) {
      const std::size_t k1 = std::min(k, k0 + kKC);
      for (std::size_t mb = m0; mb < m1; mb += kMC) {
        const std::size_t me = std::min(m1, mb + kMC);
        std::size_t mi = mb;
        for (; mi + 4 <= me; mi += 4) {
          std::size_t nt = n0;
          for (; nt + kNR <= n1; nt += kNR) kernel_4x16(a, b, alpha, c, mi, k0, k1, nt);
          if (nt < n1) kernel_4xN(a, b, alpha, c, mi, k0, k1, nt, n1);
        }
        for (; mi < me; ++mi) kernel_1xN(a, b, alpha, c, mi, k0, k1, n0, n1);
      }
    }
  }
}

void gemm_nn(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  util::ThreadPool* pool = g_parallel_pool.load(std::memory_order_acquire);
  if (pool != nullptr && pool->size() > 1 && m > 1 && m * k * n >= kParallelFlopThreshold) {
    // Thread the M loop: contiguous row blocks, ~4 per worker for balance.
    // Rounded to a multiple of 4 so every row hits the same micro-kernel
    // (4x16 vs 1xN tail) as in the serial order — bitwise-identical results.
    const std::size_t block = ((std::max<std::size_t>(4, m / (4 * pool->size())) + 3) / 4) * 4;
    pool->parallel_for_ranges(
        m, [&](std::size_t m0, std::size_t m1) { gemm_nn_rows(a, b, alpha, c, m0, m1); }, block);
  } else {
    gemm_nn_rows(a, b, alpha, c, 0, m);
  }
}

// C += alpha * A * B^T : dot products of rows — sequential in both operands.
void gemm_nt(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t mi = 0; mi < m; ++mi) {
    const float* arow = a.row(mi);
    float* crow = c.row(mi);
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* brow = b.row(ni);
      float acc = 0.0f;
      for (std::size_t ki = 0; ki < k; ++ki) acc += arow[ki] * brow[ki];
      crow[ni] += alpha * acc;
    }
  }
}

// C += alpha * A^T * B : rank-1 style updates over rows of A and B.
void gemm_tn(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t ki = 0; ki < k; ++ki) {
    const float* arow = a.row(ki);
    const float* brow = b.row(ki);
    for (std::size_t mi = 0; mi < m; ++mi) {
      const float atk = alpha * arow[mi];
      if (atk == 0.0f) continue;
      float* crow = c.row(mi);
      for (std::size_t ni = 0; ni < n; ++ni) crow[ni] += atk * brow[ni];
    }
  }
}

// C += alpha * A^T * B^T — rare; implemented via explicit index arithmetic.
void gemm_tt(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.cols(), k = a.rows(), n = b.rows();
  for (std::size_t mi = 0; mi < m; ++mi) {
    float* crow = c.row(mi);
    for (std::size_t ni = 0; ni < n; ++ni) {
      float acc = 0.0f;
      for (std::size_t ki = 0; ki < k; ++ki) acc += a.at(ki, mi) * b.at(ni, ki);
      crow[ni] += alpha * acc;
    }
  }
}

}  // namespace

void set_parallel_pool(util::ThreadPool* pool) noexcept {
  g_parallel_pool.store(pool, std::memory_order_release);
}

util::ThreadPool* parallel_pool() noexcept {
  return g_parallel_pool.load(std::memory_order_acquire);
}

namespace detail {

void gemm_nn_reference(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t mi = 0; mi < m; ++mi) {
    const float* arow = a.row(mi);
    float* crow = c.row(mi);
    for (std::size_t ki = 0; ki < k; ++ki) {
      const float aik = alpha * arow[ki];
      if (aik == 0.0f) continue;
      const float* brow = b.row(ki);
      for (std::size_t ni = 0; ni < n; ++ni) crow[ni] += aik * brow[ni];
    }
  }
}

}  // namespace detail

void gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, float alpha, float beta,
          Matrix& c) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t ka = trans_a ? a.rows() : a.cols();
  const std::size_t kb = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  if (ka != kb) throw std::invalid_argument("gemm: inner dimensions do not match");
  if (c.rows() != m || c.cols() != n) {
    if (beta != 0.0f) throw std::invalid_argument("gemm: C has wrong shape for beta != 0");
    c.resize(m, n);
  }
  if (beta == 0.0f) {
    zero(c.flat());
  } else if (beta != 1.0f) {
    scale(beta, c.flat());
  }
  if (!trans_a && !trans_b) {
    gemm_nn(a, b, alpha, c);
  } else if (!trans_a && trans_b) {
    gemm_nt(a, b, alpha, c);
  } else if (trans_a && !trans_b) {
    gemm_tn(a, b, alpha, c);
  } else {
    gemm_tt(a, b, alpha, c);
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  double acc = 0.0;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}

double norm2(std::span<const float> x) { return std::sqrt(dot(x, x)); }

void zero(std::span<float> x) { std::memset(x.data(), 0, x.size() * sizeof(float)); }

}  // namespace fedsparse::tensor
