#include "tensor/matrix.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace fedsparse::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Matrix: data size does not match rows*cols");
  }
}

void Matrix::fill(float v) noexcept {
  for (auto& x : data_) x = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

namespace {

// Inner kernel for the common non-transposed case: C[mi,:] += a_ik * B[ki,:].
// Iterating B rows in the inner loop keeps both B and C accesses sequential.
void gemm_nn(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t mi = 0; mi < m; ++mi) {
    const float* arow = a.row(mi);
    float* crow = c.row(mi);
    for (std::size_t ki = 0; ki < k; ++ki) {
      const float aik = alpha * arow[ki];
      if (aik == 0.0f) continue;
      const float* brow = b.row(ki);
      for (std::size_t ni = 0; ni < n; ++ni) crow[ni] += aik * brow[ni];
    }
  }
}

// C += alpha * A * B^T : dot products of rows — sequential in both operands.
void gemm_nt(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t mi = 0; mi < m; ++mi) {
    const float* arow = a.row(mi);
    float* crow = c.row(mi);
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* brow = b.row(ni);
      float acc = 0.0f;
      for (std::size_t ki = 0; ki < k; ++ki) acc += arow[ki] * brow[ki];
      crow[ni] += alpha * acc;
    }
  }
}

// C += alpha * A^T * B : rank-1 style updates over rows of A and B.
void gemm_tn(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t ki = 0; ki < k; ++ki) {
    const float* arow = a.row(ki);
    const float* brow = b.row(ki);
    for (std::size_t mi = 0; mi < m; ++mi) {
      const float atk = alpha * arow[mi];
      if (atk == 0.0f) continue;
      float* crow = c.row(mi);
      for (std::size_t ni = 0; ni < n; ++ni) crow[ni] += atk * brow[ni];
    }
  }
}

// C += alpha * A^T * B^T — rare; implemented via explicit index arithmetic.
void gemm_tt(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.cols(), k = a.rows(), n = b.rows();
  for (std::size_t mi = 0; mi < m; ++mi) {
    float* crow = c.row(mi);
    for (std::size_t ni = 0; ni < n; ++ni) {
      float acc = 0.0f;
      for (std::size_t ki = 0; ki < k; ++ki) acc += a.at(ki, mi) * b.at(ni, ki);
      crow[ni] += alpha * acc;
    }
  }
}

}  // namespace

void gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, float alpha, float beta,
          Matrix& c) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t ka = trans_a ? a.rows() : a.cols();
  const std::size_t kb = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  if (ka != kb) throw std::invalid_argument("gemm: inner dimensions do not match");
  if (c.rows() != m || c.cols() != n) {
    if (beta != 0.0f) throw std::invalid_argument("gemm: C has wrong shape for beta != 0");
    c.resize(m, n);
  }
  if (beta == 0.0f) {
    zero(c.flat());
  } else if (beta != 1.0f) {
    scale(beta, c.flat());
  }
  if (!trans_a && !trans_b) {
    gemm_nn(a, b, alpha, c);
  } else if (!trans_a && trans_b) {
    gemm_nt(a, b, alpha, c);
  } else if (trans_a && !trans_b) {
    gemm_tn(a, b, alpha, c);
  } else {
    gemm_tt(a, b, alpha, c);
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  double acc = 0.0;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}

double norm2(std::span<const float> x) { return std::sqrt(dot(x, x)); }

void zero(std::span<float> x) { std::memset(x.data(), 0, x.size() * sizeof(float)); }

}  // namespace fedsparse::tensor
