#include "tensor/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>

#include "util/thread_pool.h"
#include "util/vec_ext.h"

namespace fedsparse::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Matrix: data size does not match rows*cols");
  }
}

void Matrix::fill(float v) noexcept {
  for (auto& x : data_) x = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // resize (not assign): existing elements are never re-zeroed, shrink keeps
  // capacity, and size()/flat() stay exactly rows*cols for consumers.
  data_.resize(rows * cols);
}

namespace {

std::atomic<util::ThreadPool*> g_parallel_pool{nullptr};

// Cache tiles for the blocked kernel. KC rows of B (KC*NC floats) stay hot in
// L1/L2 across the whole MC sweep; MC x KC of A is streamed once per tile.
constexpr std::size_t kMC = 64;
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 512;
// Below this many multiply-adds the blocking/threading bookkeeping costs more
// than it saves; fall back to the plain kernel.
constexpr std::size_t kParallelFlopThreshold = 1 << 18;

// Register micro-kernel: a 4x16 tile of C is accumulated entirely in
// registers across the whole [k0, k1) sweep (8 SIMD accumulators under AVX2)
// and written back once — C traffic drops from O(kc) loads/stores per element
// to exactly one read-modify-write. Four C rows share each loaded B row.
//
// The kernels are templated on TransA: the same tiling serves C += A·B
// (TransA = false, A element at (mi, ki)) and C += Aᵀ·B (TransA = true,
// element at (ki, mi) — contiguous per k step, so the transposed load is
// actually the friendlier one).
constexpr std::size_t kNR = 16;

template <bool TransA>
inline float a_elem(ConstMatrixView a, std::size_t mi, std::size_t ki) {
  return TransA ? a.at(ki, mi) : a.at(mi, ki);
}

template <bool TransA>
inline void kernel_4x16(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c,
                        std::size_t mi, std::size_t k0, std::size_t k1, std::size_t nt) {
  float acc0[kNR] = {}, acc1[kNR] = {}, acc2[kNR] = {}, acc3[kNR] = {};
  for (std::size_t ki = k0; ki < k1; ++ki) {
    const float* __restrict__ brow = b.row(ki) + nt;
    const float a0 = a_elem<TransA>(a, mi, ki);
    const float a1 = a_elem<TransA>(a, mi + 1, ki);
    const float a2 = a_elem<TransA>(a, mi + 2, ki);
    const float a3 = a_elem<TransA>(a, mi + 3, ki);
    for (std::size_t j = 0; j < kNR; ++j) {
      const float bv = brow[j];
      acc0[j] += a0 * bv;
      acc1[j] += a1 * bv;
      acc2[j] += a2 * bv;
      acc3[j] += a3 * bv;
    }
  }
  float* __restrict__ c0 = c.row(mi) + nt;
  float* __restrict__ c1 = c.row(mi + 1) + nt;
  float* __restrict__ c2 = c.row(mi + 2) + nt;
  float* __restrict__ c3 = c.row(mi + 3) + nt;
  for (std::size_t j = 0; j < kNR; ++j) {
    c0[j] += alpha * acc0[j];
    c1[j] += alpha * acc1[j];
    c2[j] += alpha * acc2[j];
    c3[j] += alpha * acc3[j];
  }
}

// Column-tail variant of kernel_4x16 for nc < 16 remainder columns.
template <bool TransA>
inline void kernel_4xN(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c,
                       std::size_t mi, std::size_t k0, std::size_t k1, std::size_t n0,
                       std::size_t n1) {
  float* __restrict__ c0 = c.row(mi) + n0;
  float* __restrict__ c1 = c.row(mi + 1) + n0;
  float* __restrict__ c2 = c.row(mi + 2) + n0;
  float* __restrict__ c3 = c.row(mi + 3) + n0;
  const std::size_t nc = n1 - n0;
  for (std::size_t ki = k0; ki < k1; ++ki) {
    const float a0 = alpha * a_elem<TransA>(a, mi, ki);
    const float a1 = alpha * a_elem<TransA>(a, mi + 1, ki);
    const float a2 = alpha * a_elem<TransA>(a, mi + 2, ki);
    const float a3 = alpha * a_elem<TransA>(a, mi + 3, ki);
    const float* __restrict__ brow = b.row(ki) + n0;
    for (std::size_t ni = 0; ni < nc; ++ni) {
      const float bv = brow[ni];
      c0[ni] += a0 * bv;
      c1[ni] += a1 * bv;
      c2[ni] += a2 * bv;
      c3[ni] += a3 * bv;
    }
  }
}

// Single-row remainder of kernel_4xN.
template <bool TransA>
inline void kernel_1xN(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c,
                       std::size_t mi, std::size_t k0, std::size_t k1, std::size_t n0,
                       std::size_t n1) {
  float* __restrict__ crow = c.row(mi) + n0;
  const std::size_t nc = n1 - n0;
  for (std::size_t ki = k0; ki < k1; ++ki) {
    const float aik = alpha * a_elem<TransA>(a, mi, ki);
    if (aik == 0.0f) continue;
    const float* __restrict__ brow = b.row(ki) + n0;
    for (std::size_t ni = 0; ni < nc; ++ni) crow[ni] += aik * brow[ni];
  }
}

// Blocked C += alpha * op(A) * B over the row range [m0, m1) — the unit of
// work one thread owns, so threading never splits a C row and results are
// bitwise-identical to the serial order.
template <bool TransA>
void gemm_nx_rows(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c, std::size_t m0,
                  std::size_t m1) {
  const std::size_t k = TransA ? a.rows() : a.cols(), n = b.cols();
  for (std::size_t n0 = 0; n0 < n; n0 += kNC) {
    const std::size_t n1 = std::min(n, n0 + kNC);
    for (std::size_t k0 = 0; k0 < k; k0 += kKC) {
      const std::size_t k1 = std::min(k, k0 + kKC);
      for (std::size_t mb = m0; mb < m1; mb += kMC) {
        const std::size_t me = std::min(m1, mb + kMC);
        std::size_t mi = mb;
        for (; mi + 4 <= me; mi += 4) {
          std::size_t nt = n0;
          for (; nt + kNR <= n1; nt += kNR) kernel_4x16<TransA>(a, b, alpha, c, mi, k0, k1, nt);
          if (nt < n1) kernel_4xN<TransA>(a, b, alpha, c, mi, k0, k1, nt, n1);
        }
        for (; mi < me; ++mi) kernel_1xN<TransA>(a, b, alpha, c, mi, k0, k1, n0, n1);
      }
    }
  }
}

// Shared M-loop threading: row blocks rounded to a multiple of 4 so every row
// hits the same micro-kernel (4-row vs 1xN tail) as in the serial order —
// bitwise-identical results.
void thread_m_loop(std::size_t m, std::size_t k, std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& rows_fn) {
  util::ThreadPool* pool = g_parallel_pool.load(std::memory_order_acquire);
  if (pool != nullptr && pool->size() > 1 && m > 1 && m * k * n >= kParallelFlopThreshold) {
    const std::size_t block = ((std::max<std::size_t>(4, m / (4 * pool->size())) + 3) / 4) * 4;
    pool->parallel_for_ranges(m, rows_fn, block);
  } else {
    rows_fn(0, m);
  }
}

// --- A·Bᵀ ------------------------------------------------------------------
//
// C(mi, ni) = dot(A row mi, B row ni): both operands stream contiguously, but
// the strict-FP reduction would serialize on one accumulator, so each dot is
// striped across kStripe independent partial sums the compiler lifts to SIMD.
// The stripes recombine in a fixed pairwise order — results are deterministic
// (and, per C row, independent of the threading split).
constexpr std::size_t kStripe = 8;
// gemm_nt packing crossover. The packed path runs the 4x16 nn micro-kernel
// (~70–88 GF/s on the reference box vs ~42 for the dot kernels) but pays a
// Bᵀ transpose of k·n elements per call, worth ~15/m of the product time,
// plus the L2 pollution of the k·n scratch it leaves behind for whatever
// runs next. Standalone break-even lands near m ≈ 24, but inside a full
// layer fwd+bwd the pollution pushes it higher: batch-32 Linear measured
// net-slower packed, m=128 measured +76%. m ≥ 64 keeps both findings happy.
// Narrow C tiles (n < 32) spend half the nn kernel in its column tail and
// lose outright (8x576x25: 14 vs 47 GF/s), so they always take the dot
// kernels.
constexpr std::size_t kNtPackMinRows = 64;
constexpr std::size_t kNtPackMinCols = 32;
// B rows resident per block: kNtNB * kNtKC floats (~256 KB, L2-sized) stay
// hot across the whole [m0, m1) sweep. The k block is wider than the nn
// kernel's kKC because every block boundary costs a horizontal stripe
// reduction per C element.
constexpr std::size_t kNtNB = 64;
constexpr std::size_t kNtKC = 1024;

// GCC 12's SLP pass fails to vectorize a float[kStripe] accumulator pattern
// here (it emits per-lane scalar adds — measured ~4 GF/s vs ~25 for the other
// kernels), so the stripes use the GCC/Clang portable vector-extension type,
// which lowers to whatever SIMD the target has. The scalar #else branch keeps
// non-GNU compilers building; results are deterministic within either path
// (fixed accumulation and recombination order).
#if FEDSPARSE_VEC_EXT
#define FEDSPARSE_HAVE_VEC_EXT 1
static_assert(util::vec::kLanes == kStripe, "stripe kernels assume 8-lane vectors");
using util::vec::load8;
using util::vec::v8sf;
#endif

// Fixed pairwise recombination order — shared by both paths and by the scalar
// k tail, so dot results do not depend on the compiler branch taken.
inline float stripe_sum(const float s[kStripe]) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

// Main micro-kernel: a 2x4 tile of C dots — two A rows against four B rows —
// with one 8-lane stripe per dot. Eight independent accumulator chains cover
// the FMA latency-throughput product, every loaded B stripe is reused by both
// A rows and every A stripe by all four B rows (~41 GF/s single core vs ~14
// for a 1x4 arrangement, which is L2-bound on its unshared B streams).
//
// Each C row's chains accumulate in exactly the order the single-row kernels
// below use, so per-row results are identical whichever kernel covers the row
// — threading may split the M loop anywhere without changing a bit.
inline void kernel_nt_2x4(const float* __restrict__ a0, const float* __restrict__ a1,
                          const float* __restrict__ b0, const float* __restrict__ b1,
                          const float* __restrict__ b2, const float* __restrict__ b3,
                          std::size_t kc, float alpha, float* __restrict__ c0,
                          float* __restrict__ c1) {
  float s00[kStripe] = {}, s01[kStripe] = {}, s02[kStripe] = {}, s03[kStripe] = {};
  float s10[kStripe] = {}, s11[kStripe] = {}, s12[kStripe] = {}, s13[kStripe] = {};
  std::size_t ki = 0;
#if FEDSPARSE_HAVE_VEC_EXT
  v8sf v00{}, v01{}, v02{}, v03{}, v10{}, v11{}, v12{}, v13{};
  for (; ki + kStripe <= kc; ki += kStripe) {
    const v8sf av0 = load8(a0 + ki);
    const v8sf av1 = load8(a1 + ki);
    const v8sf bv0 = load8(b0 + ki);
    const v8sf bv1 = load8(b1 + ki);
    const v8sf bv2 = load8(b2 + ki);
    const v8sf bv3 = load8(b3 + ki);
    v00 += av0 * bv0;
    v01 += av0 * bv1;
    v02 += av0 * bv2;
    v03 += av0 * bv3;
    v10 += av1 * bv0;
    v11 += av1 * bv1;
    v12 += av1 * bv2;
    v13 += av1 * bv3;
  }
  std::memcpy(s00, &v00, sizeof s00);
  std::memcpy(s01, &v01, sizeof s01);
  std::memcpy(s02, &v02, sizeof s02);
  std::memcpy(s03, &v03, sizeof s03);
  std::memcpy(s10, &v10, sizeof s10);
  std::memcpy(s11, &v11, sizeof s11);
  std::memcpy(s12, &v12, sizeof s12);
  std::memcpy(s13, &v13, sizeof s13);
#else
  for (; ki + kStripe <= kc; ki += kStripe) {
    for (std::size_t j = 0; j < kStripe; ++j) {
      const float av0 = a0[ki + j], av1 = a1[ki + j];
      s00[j] += av0 * b0[ki + j];
      s01[j] += av0 * b1[ki + j];
      s02[j] += av0 * b2[ki + j];
      s03[j] += av0 * b3[ki + j];
      s10[j] += av1 * b0[ki + j];
      s11[j] += av1 * b1[ki + j];
      s12[j] += av1 * b2[ki + j];
      s13[j] += av1 * b3[ki + j];
    }
  }
#endif
  for (; ki < kc; ++ki) {
    const float av0 = a0[ki], av1 = a1[ki];
    s00[0] += av0 * b0[ki];
    s01[0] += av0 * b1[ki];
    s02[0] += av0 * b2[ki];
    s03[0] += av0 * b3[ki];
    s10[0] += av1 * b0[ki];
    s11[0] += av1 * b1[ki];
    s12[0] += av1 * b2[ki];
    s13[0] += av1 * b3[ki];
  }
  c0[0] += alpha * stripe_sum(s00);
  c0[1] += alpha * stripe_sum(s01);
  c0[2] += alpha * stripe_sum(s02);
  c0[3] += alpha * stripe_sum(s03);
  c1[0] += alpha * stripe_sum(s10);
  c1[1] += alpha * stripe_sum(s11);
  c1[2] += alpha * stripe_sum(s12);
  c1[3] += alpha * stripe_sum(s13);
}

// One A row against four B rows — M-tail of kernel_nt_2x4 (same per-row op
// order).
inline void kernel_nt_1x4(const float* __restrict__ a, const float* __restrict__ b0,
                          const float* __restrict__ b1, const float* __restrict__ b2,
                          const float* __restrict__ b3, std::size_t kc, float alpha,
                          float* __restrict__ c) {
  float s0[kStripe] = {}, s1[kStripe] = {}, s2[kStripe] = {}, s3[kStripe] = {};
  std::size_t ki = 0;
#if FEDSPARSE_HAVE_VEC_EXT
  v8sf v0{}, v1{}, v2{}, v3{};
  for (; ki + kStripe <= kc; ki += kStripe) {
    const v8sf av = load8(a + ki);
    v0 += av * load8(b0 + ki);
    v1 += av * load8(b1 + ki);
    v2 += av * load8(b2 + ki);
    v3 += av * load8(b3 + ki);
  }
  std::memcpy(s0, &v0, sizeof s0);
  std::memcpy(s1, &v1, sizeof s1);
  std::memcpy(s2, &v2, sizeof s2);
  std::memcpy(s3, &v3, sizeof s3);
#else
  for (; ki + kStripe <= kc; ki += kStripe) {
    for (std::size_t j = 0; j < kStripe; ++j) {
      const float av = a[ki + j];
      s0[j] += av * b0[ki + j];
      s1[j] += av * b1[ki + j];
      s2[j] += av * b2[ki + j];
      s3[j] += av * b3[ki + j];
    }
  }
#endif
  for (; ki < kc; ++ki) {
    const float av = a[ki];
    s0[0] += av * b0[ki];
    s1[0] += av * b1[ki];
    s2[0] += av * b2[ki];
    s3[0] += av * b3[ki];
  }
  c[0] += alpha * stripe_sum(s0);
  c[1] += alpha * stripe_sum(s1);
  c[2] += alpha * stripe_sum(s2);
  c[3] += alpha * stripe_sum(s3);
}

// Two A rows against one B row — N-tail of kernel_nt_2x4.
inline void kernel_nt_2x1(const float* __restrict__ a0, const float* __restrict__ a1,
                          const float* __restrict__ b, std::size_t kc, float alpha,
                          float* __restrict__ c0, float* __restrict__ c1) {
  float s0[kStripe] = {}, s1[kStripe] = {};
  std::size_t ki = 0;
#if FEDSPARSE_HAVE_VEC_EXT
  v8sf v0{}, v1{};
  for (; ki + kStripe <= kc; ki += kStripe) {
    const v8sf bv = load8(b + ki);
    v0 += load8(a0 + ki) * bv;
    v1 += load8(a1 + ki) * bv;
  }
  std::memcpy(s0, &v0, sizeof s0);
  std::memcpy(s1, &v1, sizeof s1);
#else
  for (; ki + kStripe <= kc; ki += kStripe) {
    for (std::size_t j = 0; j < kStripe; ++j) {
      s0[j] += a0[ki + j] * b[ki + j];
      s1[j] += a1[ki + j] * b[ki + j];
    }
  }
#endif
  for (; ki < kc; ++ki) {
    s0[0] += a0[ki] * b[ki];
    s1[0] += a1[ki] * b[ki];
  }
  *c0 += alpha * stripe_sum(s0);
  *c1 += alpha * stripe_sum(s1);
}

// Single-dot remainder (M-tail x N-tail).
inline void kernel_nt_1x1(const float* __restrict__ a, const float* __restrict__ b, std::size_t kc,
                          float alpha, float* __restrict__ c) {
  float s[kStripe] = {};
  std::size_t ki = 0;
#if FEDSPARSE_HAVE_VEC_EXT
  v8sf v{};
  for (; ki + kStripe <= kc; ki += kStripe) v += load8(a + ki) * load8(b + ki);
  std::memcpy(s, &v, sizeof s);
#else
  for (; ki + kStripe <= kc; ki += kStripe) {
    for (std::size_t j = 0; j < kStripe; ++j) s[j] += a[ki + j] * b[ki + j];
  }
#endif
  for (; ki < kc; ++ki) s[0] += a[ki] * b[ki];
  *c += alpha * stripe_sum(s);
}

void gemm_nt_rows(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c, std::size_t m0,
                  std::size_t m1) {
  const std::size_t k = a.cols(), n = b.rows();
  for (std::size_t n0 = 0; n0 < n; n0 += kNtNB) {
    const std::size_t n1 = std::min(n, n0 + kNtNB);
    for (std::size_t k0 = 0; k0 < k; k0 += kNtKC) {
      const std::size_t kc = std::min(k, k0 + kNtKC) - k0;
      std::size_t mi = m0;
      for (; mi + 2 <= m1; mi += 2) {
        const float* a0 = a.row(mi) + k0;
        const float* a1 = a.row(mi + 1) + k0;
        float* c0 = c.row(mi);
        float* c1 = c.row(mi + 1);
        std::size_t ni = n0;
        for (; ni + 4 <= n1; ni += 4) {
          kernel_nt_2x4(a0, a1, b.row(ni) + k0, b.row(ni + 1) + k0, b.row(ni + 2) + k0,
                        b.row(ni + 3) + k0, kc, alpha, c0 + ni, c1 + ni);
        }
        for (; ni < n1; ++ni) kernel_nt_2x1(a0, a1, b.row(ni) + k0, kc, alpha, c0 + ni, c1 + ni);
      }
      for (; mi < m1; ++mi) {
        const float* arow = a.row(mi) + k0;
        float* crow = c.row(mi);
        std::size_t ni = n0;
        for (; ni + 4 <= n1; ni += 4) {
          kernel_nt_1x4(arow, b.row(ni) + k0, b.row(ni + 1) + k0, b.row(ni + 2) + k0,
                        b.row(ni + 3) + k0, kc, alpha, crow + ni);
        }
        for (; ni < n1; ++ni) kernel_nt_1x1(arow, b.row(ni) + k0, kc, alpha, crow + ni);
      }
    }
  }
}

// C += alpha * A^T * B^T — rare; implemented via explicit index arithmetic.
void gemm_tt(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c) {
  const std::size_t m = a.cols(), k = a.rows(), n = b.rows();
  for (std::size_t mi = 0; mi < m; ++mi) {
    float* crow = c.row(mi);
    for (std::size_t ni = 0; ni < n; ++ni) {
      float acc = 0.0f;
      for (std::size_t ki = 0; ki < k; ++ki) acc += a.at(ki, mi) * b.at(ni, ki);
      crow[ni] += alpha * acc;
    }
  }
}

void check_product_shape(const char* what, std::size_t m, std::size_t ka, std::size_t kb,
                         std::size_t n, MatrixView c) {
  if (ka != kb) throw std::invalid_argument(std::string(what) + ": inner dimensions do not match");
  if (c.rows() != m || c.cols() != n) {
    throw std::invalid_argument(std::string(what) + ": C has wrong shape");
  }
}

}  // namespace

void gemm_nn(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c) {
  check_product_shape("gemm_nn", a.rows(), a.cols(), b.rows(), b.cols(), c);
  thread_m_loop(a.rows(), a.cols(), b.cols(), [&](std::size_t m0, std::size_t m1) {
    gemm_nx_rows<false>(a, b, alpha, c, m0, m1);
  });
}

void gemm_tn(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c) {
  check_product_shape("gemm_tn", a.cols(), a.rows(), b.rows(), b.cols(), c);
  thread_m_loop(a.cols(), a.rows(), b.cols(), [&](std::size_t m0, std::size_t m1) {
    gemm_nx_rows<true>(a, b, alpha, c, m0, m1);
  });
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c) {
  check_product_shape("gemm_nt", a.rows(), a.cols(), b.cols(), b.rows(), c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  // Few A rows (single-sample probe forwards) or narrow C (tiny conv dW
  // shapes): the transpose pack would cost a meaningful fraction of the
  // product itself, so the striped dot kernels stay.
  if (m < kNtPackMinRows || n < kNtPackMinCols) {
    thread_m_loop(m, k, n, [&](std::size_t m0, std::size_t m1) {
      gemm_nt_rows(a, b, alpha, c, m0, m1);
    });
    return;
  }
  // Pack Bᵀ once (k x n row-major, blocked transpose) on the calling thread,
  // then run the exact nn row kernels over it — the same 4x16 register tile
  // that puts nn/tn around twice the dot kernels' FLOP rate. The packed
  // content is independent of the M split, and thread_m_loop's blocks stay
  // 4-aligned, so threaded results remain bitwise-identical to serial.
  thread_local std::vector<float> packed;
  packed.resize(k * n);
  constexpr std::size_t kTB = 32;  // transpose tile: both streams stay in L1
  for (std::size_t k0 = 0; k0 < k; k0 += kTB) {
    const std::size_t k1 = std::min(k, k0 + kTB);
    for (std::size_t n0 = 0; n0 < n; n0 += kTB) {
      const std::size_t n1 = std::min(n, n0 + kTB);
      for (std::size_t ki = k0; ki < k1; ++ki) {
        float* prow = packed.data() + ki * n;
        for (std::size_t ni = n0; ni < n1; ++ni) prow[ni] = b.at(ni, ki);
      }
    }
  }
  const ConstMatrixView packed_view(packed.data(), k, n);
  thread_m_loop(m, k, n, [&](std::size_t m0, std::size_t m1) {
    gemm_nx_rows<false>(a, packed_view, alpha, c, m0, m1);
  });
}

void set_parallel_pool(util::ThreadPool* pool) noexcept {
  g_parallel_pool.store(pool, std::memory_order_release);
}

util::ThreadPool* parallel_pool() noexcept {
  return g_parallel_pool.load(std::memory_order_acquire);
}

namespace detail {

void gemm_nn_reference(const Matrix& a, const Matrix& b, float alpha, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t mi = 0; mi < m; ++mi) {
    const float* arow = a.row(mi);
    float* crow = c.row(mi);
    for (std::size_t ki = 0; ki < k; ++ki) {
      const float aik = alpha * arow[ki];
      if (aik == 0.0f) continue;
      const float* brow = b.row(ki);
      for (std::size_t ni = 0; ni < n; ++ni) crow[ni] += aik * brow[ni];
    }
  }
}

}  // namespace detail

void gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, float alpha, float beta,
          Matrix& c) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t ka = trans_a ? a.rows() : a.cols();
  const std::size_t kb = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  if (ka != kb) throw std::invalid_argument("gemm: inner dimensions do not match");
  if (c.rows() != m || c.cols() != n) {
    if (beta != 0.0f) throw std::invalid_argument("gemm: C has wrong shape for beta != 0");
    c.resize(m, n);
  }
  if (beta == 0.0f) {
    zero(c.flat());
  } else if (beta != 1.0f) {
    scale(beta, c.flat());
  }
  MatrixView cv(c);
  if (!trans_a && !trans_b) {
    gemm_nn(a, b, alpha, cv);
  } else if (!trans_a && trans_b) {
    gemm_nt(a, b, alpha, cv);
  } else if (trans_a && !trans_b) {
    gemm_tn(a, b, alpha, cv);
  } else {
    gemm_tt(a, b, alpha, cv);
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  double acc = 0.0;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}

double norm2(std::span<const float> x) { return std::sqrt(dot(x, x)); }

void zero(std::span<float> x) { std::memset(x.data(), 0, x.size() * sizeof(float)); }

}  // namespace fedsparse::tensor
