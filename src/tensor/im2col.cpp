#include "tensor/im2col.h"

#include <stdexcept>

namespace fedsparse::tensor {

void im2col(const float* image, const ConvGeometry& g, Matrix& cols) {
  // Every element is written by the view variant, so skip resize()'s
  // zero-fill — the caller reuses one scratch Matrix across samples/rounds
  // with no allocation.
  cols.reshape(g.col_rows(), g.col_cols());
  im2col(image, g, MatrixView(cols));
}

void im2col(const float* image, const ConvGeometry& g, MatrixView cols) {
  const std::size_t oh = g.out_height(), ow = g.out_width();
  if (cols.rows() != g.col_rows() || cols.cols() != g.col_cols()) {
    throw std::invalid_argument("im2col: view shape does not match geometry");
  }
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const float* chan = image + c * g.height * g.width;
    for (std::size_t ky = 0; ky < g.ksize; ++ky) {
      for (std::size_t kx = 0; kx < g.ksize; ++kx, ++row) {
        float* out = cols.row(row);
        std::size_t col = 0;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // signed arithmetic: padding can push the source row off the image
          const long iy = static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.pad);
          for (std::size_t ox = 0; ox < ow; ++ox, ++col) {
            const long ix = static_cast<long>(ox * g.stride + kx) - static_cast<long>(g.pad);
            const bool inside = iy >= 0 && iy < static_cast<long>(g.height) && ix >= 0 &&
                                ix < static_cast<long>(g.width);
            out[col] = inside ? chan[static_cast<std::size_t>(iy) * g.width +
                                     static_cast<std::size_t>(ix)]
                              : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Matrix& cols, const ConvGeometry& g, float* image) {
  const std::size_t oh = g.out_height(), ow = g.out_width();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    float* chan = image + c * g.height * g.width;
    for (std::size_t ky = 0; ky < g.ksize; ++ky) {
      for (std::size_t kx = 0; kx < g.ksize; ++kx, ++row) {
        const float* in = cols.row(row);
        std::size_t col = 0;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long iy = static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.pad);
          for (std::size_t ox = 0; ox < ow; ++ox, ++col) {
            const long ix = static_cast<long>(ox * g.stride + kx) - static_cast<long>(g.pad);
            const bool inside = iy >= 0 && iy < static_cast<long>(g.height) && ix >= 0 &&
                                ix < static_cast<long>(g.width);
            if (inside) {
              chan[static_cast<std::size_t>(iy) * g.width + static_cast<std::size_t>(ix)] +=
                  in[col];
            }
          }
        }
      }
    }
  }
}

}  // namespace fedsparse::tensor
