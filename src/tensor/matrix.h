// Dense row-major float matrix — the numeric workhorse under the nn substrate.
//
// Deliberately minimal: the neural-network layers only need GEMM (with
// transpose variants), elementwise ops and flat-vector BLAS-1 helpers. All
// storage is contiguous std::vector<float>, so a Matrix doubles as a flat
// parameter/gradient buffer view. MatrixView / ConstMatrixView give the same
// row-major shape over external storage (layer weight/grad spans, one sample's
// row of a batch) so GEMM runs on them without copies.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace fedsparse::util {
class ThreadPool;
}

namespace fedsparse::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  float* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const noexcept { return data_.data() + r * cols_; }

  std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const noexcept { return {data_.data(), data_.size()}; }

  void fill(float v) noexcept;
  /// Resizes and zero-fills (allocation-free when capacity suffices).
  void resize(std::size_t rows, std::size_t cols);
  /// Resizes WITHOUT re-zeroing surviving elements: grown-into elements are
  /// zero, everything else keeps its (stale) value. For scratch buffers whose
  /// every element is overwritten anyway (im2col columns) — skips resize()'s
  /// full O(rows*cols) clear and never shrinks capacity, so steady-state
  /// reuse performs no allocation at all.
  void reshape(std::size_t rows, std::size_t cols);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Non-owning mutable row-major view over `rows * cols` floats. The layers
/// wrap their flat weight/grad spans in these so GEMM consumes them directly —
/// no copy into a Matrix. A view never owns or frees; the storage must outlive
/// it.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(float* data, std::size_t rows, std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}
  MatrixView(Matrix& m) noexcept  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}
  /// Validated: throws std::invalid_argument unless s.size() == rows * cols.
  MatrixView(std::span<float> s, std::size_t rows, std::size_t cols)
      : data_(s.data()), rows_(rows), cols_(cols) {
    if (s.size() != rows * cols) {
      throw std::invalid_argument("MatrixView: span size does not match rows*cols");
    }
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  float* data() const noexcept { return data_; }
  float* row(std::size_t r) const noexcept { return data_ + r * cols_; }
  float& at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }
  std::span<float> flat() const noexcept { return {data_, rows_ * cols_}; }

 private:
  float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Read-only counterpart of MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const float* data, std::size_t rows, std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}
  ConstMatrixView(const Matrix& m) noexcept  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}
  ConstMatrixView(MatrixView v) noexcept  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()) {}
  /// Validated: throws std::invalid_argument unless s.size() == rows * cols.
  ConstMatrixView(std::span<const float> s, std::size_t rows, std::size_t cols)
      : data_(s.data()), rows_(rows), cols_(cols) {
    if (s.size() != rows * cols) {
      throw std::invalid_argument("ConstMatrixView: span size does not match rows*cols");
    }
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  const float* data() const noexcept { return data_; }
  const float* row(std::size_t r) const noexcept { return data_ + r * cols_; }
  float at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// GEMM: C = alpha * op(A) * op(B) + beta * C, with op = identity or
/// transpose controlled by `trans_a` / `trans_b`. Dimensions are validated
/// (throws std::invalid_argument on mismatch). nn, nt and tn products run the
/// register-tiled kernels below; tt (rare, no hot-path caller) stays a plain
/// loop.
void gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, float alpha, float beta,
          Matrix& c);

// --- view entry points (the layer hot path) --------------------------------
//
// All three accumulate: C += alpha * op(A) * op(B). C must already have the
// product shape (throws std::invalid_argument otherwise) and must not alias A
// or B. Each is cache-blocked (mc/kc/nc tiles) with a register micro-kernel;
// when a pool is registered via set_parallel_pool, large products split their
// M loop across it with whole-row ownership, so threaded results are
// bitwise-identical to the serial order.

/// C (m x n) += alpha * A (m x k) * B (k x n). 4x16 register tile: four C rows
/// are accumulated in registers across each kc sweep and written back once.
void gemm_nn(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c);

/// C (m x n) += alpha * A (m x k) * Bᵀ (B is n x k) — rows-dot-rows, the shape
/// of Linear::forward (x · Wᵀ) and conv dW (dy · colsᵀ). With enough A rows
/// the kernel packs Bᵀ once (blocked transpose into thread-local scratch) and
/// reuses the 4x16 nn micro-kernel, which roughly doubles the achieved FLOP
/// rate; small-m products (single-sample probe forwards) keep the original
/// dot kernels, each dot striped across 8 independent partial sums (fixed
/// recombination order, so results are deterministic) which the compiler
/// lifts to SIMD.
void gemm_nt(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c);

/// C (m x n) += alpha * Aᵀ (A is k x m) * B (k x n) — the shape of Linear
/// dW (dyᵀ · x) and conv dcols (Wᵀ · dy). Same 4x16 micro-kernel as gemm_nn
/// with the A operand addressed column-wise (contiguous per k step).
void gemm_tn(ConstMatrixView a, ConstMatrixView b, float alpha, MatrixView c);

/// Registers a thread pool for GEMM M-loop threading (nullptr = serial, the
/// default). The pool must outlive all subsequent gemm calls.
void set_parallel_pool(util::ThreadPool* pool) noexcept;
util::ThreadPool* parallel_pool() noexcept;

namespace detail {
/// Seed scalar kernel (C += alpha * A * B, unblocked triple loop). Retained
/// as the "before" reference for equivalence tests and BENCH_micro.json.
void gemm_nn_reference(const Matrix& a, const Matrix& b, float alpha, Matrix& c);
}  // namespace detail

// --- BLAS-1 style helpers on flat spans ------------------------------------

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);
/// x *= alpha
void scale(float alpha, std::span<float> x);
/// dot(x, y)
double dot(std::span<const float> x, std::span<const float> y);
/// sqrt(sum x_i^2)
double norm2(std::span<const float> x);
/// sets all elements to zero
void zero(std::span<float> x);

}  // namespace fedsparse::tensor
