// Dense row-major float matrix — the numeric workhorse under the nn substrate.
//
// Deliberately minimal: the neural-network layers only need GEMM (with
// transpose variants), elementwise ops and flat-vector BLAS-1 helpers. All
// storage is contiguous std::vector<float>, so a Matrix doubles as a flat
// parameter/gradient buffer view.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fedsparse::util {
class ThreadPool;
}

namespace fedsparse::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  float* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const noexcept { return data_.data() + r * cols_; }

  std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const noexcept { return {data_.data(), data_.size()}; }

  void fill(float v) noexcept;
  /// Resizes and zero-fills (allocation-free when capacity suffices).
  void resize(std::size_t rows, std::size_t cols);
  /// Resizes WITHOUT re-zeroing surviving elements: grown-into elements are
  /// zero, everything else keeps its (stale) value. For scratch buffers whose
  /// every element is overwritten anyway (im2col columns) — skips resize()'s
  /// full O(rows*cols) clear and never shrinks capacity, so steady-state
  /// reuse performs no allocation at all.
  void reshape(std::size_t rows, std::size_t cols);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// GEMM: C = alpha * op(A) * op(B) + beta * C, with op = identity or
/// transpose controlled by `trans_a` / `trans_b`. Dimensions are validated
/// (throws std::invalid_argument on mismatch). The non-transposed kernel is
/// cache-blocked (mc/kc/nc tiles) with a 4-row-unrolled vectorizable inner
/// kernel; when a pool is registered via set_parallel_pool, large products
/// split their M loop across it (bitwise-identical results — each C row is
/// computed by exactly one thread).
void gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, float alpha, float beta,
          Matrix& c);

/// Registers a thread pool for GEMM M-loop threading (nullptr = serial, the
/// default). The pool must outlive all subsequent gemm calls.
void set_parallel_pool(util::ThreadPool* pool) noexcept;
util::ThreadPool* parallel_pool() noexcept;

namespace detail {
/// Seed scalar kernel (C += alpha * A * B, unblocked triple loop). Retained
/// as the "before" reference for equivalence tests and BENCH_micro.json.
void gemm_nn_reference(const Matrix& a, const Matrix& b, float alpha, Matrix& c);
}  // namespace detail

// --- BLAS-1 style helpers on flat spans ------------------------------------

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);
/// x *= alpha
void scale(float alpha, std::span<float> x);
/// dot(x, y)
double dot(std::span<const float> x, std::span<const float> y);
/// sqrt(sum x_i^2)
double norm2(std::span<const float> x);
/// sets all elements to zero
void zero(std::span<float> x);

}  // namespace fedsparse::tensor
