// Continuous-bandit baseline (Flaxman et al. [37], compared in Fig. 5):
// online convex optimization with a one-point gradient estimate.
//
// Maintains a center x_m; plays k_m = x_m + δ·u_m with u_m uniform in
// {−1, +1}; after observing the (normalized) cost ĉ_m, updates
//
//   ĝ_m = (ĉ_m / δ) · u_m,      x_{m+1} = P_[kmin+δ, kmax−δ](x_m − ν_m ĝ_m),
//
// with ν_m = B·δ/√(2m) so the maximum step matches Algorithm 2's δ_m. The
// one-point estimate has O(1/δ) variance — the source of the jitter visible
// in the paper's Fig. 5 (bottom-right).
#pragma once

#include "online/controller.h"

namespace fedsparse::online {

class ContinuousBandit final : public KController {
 public:
  struct Config {
    double kmin = 1.0;
    double kmax = 1.0;
    double initial_x = 0.0;   // <=0 => midpoint
    double delta_frac = 0.05; // perturbation δ as a fraction of (kmax − kmin)
    std::uint64_t seed = 1;
  };

  explicit ContinuousBandit(const Config& cfg);

  std::string name() const override { return "continuous_bandit"; }
  double current_k() const override { return k_played_; }
  void observe(const RoundFeedback& fb) override;

  double center() const noexcept { return x_; }

 private:
  void play_next();

  double kmin_;
  double kmax_;
  double delta_;
  double x_;
  double k_played_ = 0.0;
  int u_ = 1;
  std::size_t m_ = 1;
  double max_cost_seen_ = 0.0;
  util::Rng rng_;
};

}  // namespace fedsparse::online
