// Controller factory shared by examples and the figure harnesses.
#pragma once

#include <memory>
#include <string>

#include "online/controller.h"

namespace fedsparse::online {

struct ControllerConfig {
  std::string name = "extended_sign_ogd";  // see make_controller
  /// Search interval [kmin, kmax]; non-positive values mean "auto-fill from
  /// the model dimension" (core::FederatedTrainer sets kmin = max(2, 0.002·D)
  /// and kmax = D, the paper's Fig. 5 setting).
  double kmin = 0.0;
  double kmax = 0.0;
  double initial_k = 0.0;   // <=0 => midpoint
  double alpha = 1.5;       // Algorithm 3
  std::size_t update_window = 20;  // Algorithm 3 Mu
  std::size_t exp3_arms = 64;
  double exp3_gamma = 0.1;
  double bandit_delta_frac = 0.05;
  std::uint64_t seed = 1;
  double fixed_k = 0.0;     // for name == "fixed"
};

/// names: "sign_ogd" (Algorithm 2), "extended_sign_ogd" (Algorithm 3),
/// "value_based", "exp3", "continuous_bandit", "fixed".
std::unique_ptr<KController> make_controller(const ControllerConfig& cfg);

}  // namespace fedsparse::online
