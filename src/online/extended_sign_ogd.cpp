#include "online/extended_sign_ogd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.h"

namespace fedsparse::online {

ExtendedSignOgd::ExtendedSignOgd(const Config& cfg)
    : kmin_(cfg.kmin),
      kmax_(cfg.kmax),
      alpha_(cfg.alpha),
      update_window_(cfg.update_window),
      cur_kmin_(cfg.kmin),
      cur_kmax_(cfg.kmax),
      b_(cfg.kmax - cfg.kmin),
      track_min_(std::numeric_limits<double>::infinity()),
      track_max_(0.0) {
  if (!(kmin_ >= 1.0) || !(kmax_ > kmin_)) {
    throw std::invalid_argument("ExtendedSignOgd: require 1 <= kmin < kmax");
  }
  if (alpha_ < 1.0) throw std::invalid_argument("ExtendedSignOgd: alpha must be >= 1");
  if (update_window_ == 0) throw std::invalid_argument("ExtendedSignOgd: Mu must be positive");
  k_ = cfg.initial_k > 0.0 ? project(cfg.initial_k) : 0.5 * (kmin_ + kmax_);
}

double ExtendedSignOgd::delta() const {
  // m − m0 >= 1 by construction (m0 is set to the *previous* round index).
  return b_ / std::sqrt(2.0 * static_cast<double>(m_ - m0_));
}

double ExtendedSignOgd::probe_k() const {
  double kp = k_ - 0.5 * delta();
  kp = std::max(kp, kmin_);
  if (kp >= k_) kp = std::max(1.0, k_ - 1.0);
  return kp;
}

void ExtendedSignOgd::observe(const RoundFeedback& fb) {
  const SignEstimate est = estimate_derivative_sign(fb, k_, probe_k());
  if (!est.valid) {
    publish_controller_invalid();
    post_update(/*updated=*/false);  // Lines 6–7 are skipped (paper, Sec. IV-E)
    return;
  }
  // Staleness + screening-validity + robust-trust damping — see
  // SignOgd::observe; exact no-op at s̄ = 0, validity 1, trust 1.
  const double damp = (1.0 / (1.0 + fb.mean_staleness)) * fb.validity * fb.trust;
  k_ = project(k_ - delta() * damp * static_cast<double>(est.sign));
  publish_controller_step(k_, est.sign, damp);
  post_update(/*updated=*/true);
}

void ExtendedSignOgd::observe_sign(int sign) {
  k_ = project(k_ - delta() * static_cast<double>(sign));
  post_update(/*updated=*/true);
}

void ExtendedSignOgd::post_update(bool updated) {
  if (updated) {
    track_min_ = std::min(track_min_, k_);  // Line 6 (k′min / k′max track k_{m+1})
    track_max_ = std::max(track_max_, k_);
    ++n_;                                   // Line 7
  }
  const std::size_t m_cur = m_ - m0_;       // Line 5: M′′
  if (n_ >= update_window_) {               // Line 8
    const double widened_max = std::min(alpha_ * track_max_, kmax_);   // Line 9
    const double widened_min = std::max(track_min_ / alpha_, kmin_);
    const double b_new = widened_max - widened_min;                    // Line 10
    constexpr double kSqrt2Minus1 = 0.41421356237309515;
    if (b_new < kSqrt2Minus1 * b_ && m_cur >= m_prev_ && b_new > 0.0) {  // Line 11
      cur_kmin_ = widened_min;                                           // Line 12
      cur_kmax_ = widened_max;
      b_ = b_new;
      m_prev_ = m_cur;                                                   // Line 13
      m0_ = m_;                                                          // Line 14
      ++instances_;
      // Telemetry: Algorithm 3 restarted OGD on a shrunk [kmin, kmax].
      static const util::Counter c_shrink("ctrl.interval_shrinks");
      c_shrink.add(1);
      k_ = project(k_);  // k is provably inside the new interval; be safe
    }
    n_ = 0;                                                              // Line 15
    track_min_ = std::numeric_limits<double>::infinity();
    track_max_ = 0.0;
  }
  ++m_;
}

double ExtendedSignOgd::project(double k) const { return std::clamp(k, cur_kmin_, cur_kmax_); }

}  // namespace fedsparse::online
