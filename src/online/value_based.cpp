#include "online/value_based.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsparse::online {

ValueBased::ValueBased(const Config& cfg) : kmin_(cfg.kmin), kmax_(cfg.kmax) {
  if (!(kmin_ >= 1.0) || !(kmax_ > kmin_)) {
    throw std::invalid_argument("ValueBased: require 1 <= kmin < kmax");
  }
  k_ = cfg.initial_k > 0.0 ? project(cfg.initial_k) : 0.5 * (kmin_ + kmax_);
}

double ValueBased::delta() const {
  return (kmax_ - kmin_) / std::sqrt(2.0 * static_cast<double>(m_));
}

double ValueBased::probe_k() const {
  double kp = k_ - 0.5 * delta();
  kp = std::max(kp, kmin_);
  if (kp >= k_) kp = std::max(1.0, k_ - 1.0);
  return kp;
}

void ValueBased::observe(const RoundFeedback& fb) {
  const SignEstimate est = estimate_derivative_sign(fb, k_, probe_k());
  if (!est.valid) {
    ++m_;
    return;
  }
  observe_derivative(est.derivative);
}

void ValueBased::observe_derivative(double derivative) {
  k_ = project(k_ - delta() * derivative);
  ++m_;
}

double ValueBased::project(double k) const { return std::clamp(k, kmin_, kmax_); }

}  // namespace fedsparse::online
