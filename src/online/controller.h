// KController: the online decision-maker for the sparsity degree k.
//
// Per round m the federated simulation (i) reads `current_k()` (continuous;
// stochastic rounding happens in the simulation), (ii) optionally derives the
// probe degree k'_m = `probe_k()` used by the derivative-sign estimator of
// Section IV-E, and (iii) after the round reports a RoundFeedback. The
// controller then moves to k_{m+1}.
//
// Implementations: Algorithm 2 (SignOgd), Algorithm 3 (ExtendedSignOgd), the
// paper's comparison baselines (value-based descent, EXP3, continuous
// bandit), plus FixedK and ReplayK used by the figure harnesses.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fedsparse::online {

/// Everything a controller may need after round m completed.
struct RoundFeedback {
  double loss_prev = std::numeric_limits<double>::quiet_NaN();   // L̃(w(m−1))
  double loss_cur = std::numeric_limits<double>::quiet_NaN();    // L̃(w(m))
  double loss_probe = std::numeric_limits<double>::quiet_NaN();  // L̃(w'(m))
  bool probe_available = false;
  double round_time = 0.0;   // τ_m(k_m): measured time of this round
  double theta_probe = 0.0;  // θ_m(k'_m): one-round time had k'_m been used

  /// Mean upload staleness over the flush (buffered-async engine): 0 under
  /// the synchronized engine and for an all-fresh flush; s rounds for a
  /// client whose contribution waited s flushes in the buffer. Algorithms
  /// 2/3 damp their step by 1/(1 + mean_staleness) — a stale flush's probe
  /// losses mix gradients measured against old weights, so its derivative
  /// sign is noisier and the controller should trust it less. The damping is
  /// an exact no-op at 0 (×1.0), so synchronized traces are untouched.
  double mean_staleness = 0.0;

  /// Fraction of the flush that survived server-side screening
  /// (sparsify/validate.h): 1 on a clean round, lower when uploads were
  /// rejected as corrupt. Rejected uploads were emptied before aggregation,
  /// so the measured loss movement understates what k could have bought —
  /// Algorithms 2/3 scale their step by this factor. An exact no-op at 1
  /// (×1.0), so fault-free traces are untouched.
  double validity = 1.0;

  /// Weighted fraction of contributors the robust aggregation stage
  /// (sparsify/robust.h) did NOT flag as anti-aligned with the robust
  /// aggregate: 1 on clean rounds and whenever the stage is disabled.
  /// A low-trust round's probe losses were measured against an update the
  /// robust statistic had to fight for, so Algorithms 2/3 damp their step by
  /// this factor rather than chase poisoned probes. An exact no-op at 1.
  double trust = 1.0;
};

class KController {
 public:
  virtual ~KController() = default;

  virtual std::string name() const = 0;

  /// k_m (continuous, within [kmin, kmax]).
  virtual double current_k() const = 0;

  /// k'_m for the probe evaluation; <= 0 means "no probe needed".
  virtual double probe_k() const { return 0.0; }

  /// Consumes the round's outcome and advances to k_{m+1}.
  virtual void observe(const RoundFeedback& fb) = 0;
};

/// Static k (the paper's fixed-sparsity experiments, e.g. Fig. 4).
class FixedK final : public KController {
 public:
  explicit FixedK(double k) : k_(k) {}
  std::string name() const override { return "fixed"; }
  double current_k() const override { return k_; }
  void observe(const RoundFeedback&) override {}

 private:
  double k_;
};

/// Replays a recorded {k_m} sequence (the cross-application runs of
/// Figs. 7–8). Holds the last value once the sequence is exhausted.
class ReplayK final : public KController {
 public:
  explicit ReplayK(std::vector<double> sequence);
  std::string name() const override { return "replay"; }
  double current_k() const override;
  void observe(const RoundFeedback&) override { ++cursor_; }

 private:
  std::vector<double> sequence_;
  std::size_t cursor_ = 0;
};

}  // namespace fedsparse::online
