#include "online/continuous_bandit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "online/exp3.h"  // bandit_round_cost

namespace fedsparse::online {

ContinuousBandit::ContinuousBandit(const Config& cfg)
    : kmin_(cfg.kmin), kmax_(cfg.kmax), rng_(cfg.seed) {
  if (!(cfg.kmin >= 1.0) || !(cfg.kmax > cfg.kmin)) {
    throw std::invalid_argument("ContinuousBandit: require 1 <= kmin < kmax");
  }
  if (cfg.delta_frac <= 0.0 || cfg.delta_frac >= 0.5) {
    throw std::invalid_argument("ContinuousBandit: delta_frac in (0, 0.5)");
  }
  delta_ = cfg.delta_frac * (kmax_ - kmin_);
  const double lo = kmin_ + delta_, hi = kmax_ - delta_;
  x_ = cfg.initial_x > 0.0 ? std::clamp(cfg.initial_x, lo, hi) : 0.5 * (lo + hi);
  play_next();
}

void ContinuousBandit::play_next() {
  u_ = rng_.bernoulli(0.5) ? 1 : -1;
  k_played_ = x_ + delta_ * static_cast<double>(u_);
}

void ContinuousBandit::observe(const RoundFeedback& fb) {
  const double cost = bandit_round_cost(fb);
  double normalized = 0.0;
  if (std::isfinite(cost)) {
    max_cost_seen_ = std::max(max_cost_seen_, cost);
    normalized = max_cost_seen_ > 0.0 ? cost / max_cost_seen_ : 0.0;
  } else {
    normalized = 1.0;  // a failed round is maximally costly
  }
  const double g_hat = normalized / delta_ * static_cast<double>(u_);
  const double b = kmax_ - kmin_;
  const double step = b * delta_ / std::sqrt(2.0 * static_cast<double>(m_));
  x_ = std::clamp(x_ - step * g_hat, kmin_ + delta_, kmax_ - delta_);
  ++m_;
  play_next();
}

}  // namespace fedsparse::online
