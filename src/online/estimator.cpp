#include "online/estimator.h"

#include <cmath>

#include "online/controller.h"

namespace fedsparse::online {

SignEstimate estimate_derivative_sign(const RoundFeedback& fb, double km, double kprime) {
  SignEstimate out;
  if (!fb.probe_available || !(km != kprime)) return out;
  if (std::isnan(fb.loss_prev) || std::isnan(fb.loss_cur) || std::isnan(fb.loss_probe)) return out;

  const double drop_km = fb.loss_prev - fb.loss_cur;      // L̃(w(m−1)) − L̃(w(m))
  const double drop_kprime = fb.loss_prev - fb.loss_probe;  // L̃(w(m−1)) − L̃(w'(m))
  // Both rounds must have decreased the loss for (10) to have physical
  // meaning (Section IV-E).
  if (drop_km <= 0.0 || drop_kprime <= 0.0) return out;

  const double tau_hat_kprime = fb.theta_probe * drop_km / drop_kprime;  // Eq. (10)
  out.derivative = (fb.round_time - tau_hat_kprime) / (km - kprime);     // inside Eq. (11)
  out.sign = sign_of(out.derivative);
  out.valid = true;
  return out;
}

}  // namespace fedsparse::online
