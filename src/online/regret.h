// Regret machinery for validating Theorems 1 and 2.
//
// QuadraticCostEnv realizes the paper's assumptions exactly: a cost density
// t(k, l) = base + curvature·(k − k*)² that is convex in k (Assumption 2a),
// has bounded ∂t/∂k on the search interval (2b), and an l-independent
// minimizer (2c). Each round consumes a loss interval of width `dloss`, so
// τ_m(k) = dloss · t(k). Tests drive Algorithm 2/3 against this environment
// with exact or noise-corrupted signs and check R(M) against the bounds.
#pragma once

#include <cstddef>

#include "util/rng.h"

namespace fedsparse::online {

struct QuadraticCostEnv {
  double k_star = 0.0;     // argmin of t(k, ·) for every l (Assumption 2c)
  double curvature = 1.0;  // a in t(k) = base + a(k − k*)²
  double base = 1.0;
  double dloss = 1.0;      // per-round loss decrease (constant for simplicity)

  /// τ_m(k): time to traverse one round's loss interval at degree k.
  double tau(double k) const noexcept {
    const double d = k - k_star;
    return dloss * (base + curvature * d * d);
  }

  /// τ'_m(k).
  double derivative(double k) const noexcept { return dloss * 2.0 * curvature * (k - k_star); }

  /// Exact sign s_m = sign(τ'_m(k)).
  int exact_sign(double k) const noexcept {
    const double d = derivative(k);
    return (d > 0.0) - (d < 0.0);
  }

  /// G: bound on |τ'_m(k)| over [kmin, kmax] (inequality (4) of the paper).
  double g_bound(double kmin, double kmax) const noexcept;

  /// A noisy sign satisfying (6)–(7): correct with probability p, flipped
  /// with probability 1−p (p > 0.5). H = 1/(2p−1).
  int noisy_sign(double k, double correct_prob, util::Rng& rng) const;
};

/// Theorem 1 bound: R(M) <= G·B·sqrt(2M).
double regret_bound_exact(double g, double b, std::size_t m_rounds);

/// Theorem 2 bound: E[R(M)] <= G·H·B·sqrt(2M).
double regret_bound_estimated(double g, double h, double b, std::size_t m_rounds);

/// H for a flip-probability estimator: sign(E[ŝ]) = s requires p > 0.5 and
/// H = 1/(2p − 1) satisfies H·E[ŝ] = s.
double h_for_flip_probability(double correct_prob);

}  // namespace fedsparse::online
