#include "online/sign_ogd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsparse::online {

SignOgd::SignOgd(const Config& cfg) : kmin_(cfg.kmin), kmax_(cfg.kmax) {
  if (!(kmin_ >= 1.0) || !(kmax_ > kmin_)) {
    throw std::invalid_argument("SignOgd: require 1 <= kmin < kmax");
  }
  k_ = cfg.initial_k > 0.0 ? project(cfg.initial_k) : 0.5 * (kmin_ + kmax_);
}

double SignOgd::delta() const {
  return (kmax_ - kmin_) / std::sqrt(2.0 * static_cast<double>(m_));
}

double SignOgd::probe_k() const {
  // k'_m = k_m − δ_m/2 (Section IV-E); keep it a valid, distinct degree.
  double kp = k_ - 0.5 * delta();
  kp = std::max(kp, kmin_);
  if (kp >= k_) kp = std::max(1.0, k_ - 1.0);
  return kp;
}

void SignOgd::observe(const RoundFeedback& fb) {
  const SignEstimate est = estimate_derivative_sign(fb, k_, probe_k());
  if (!est.valid) {
    ++m_;  // the round still elapsed; k stays as-is
    return;
  }
  observe_sign(est.sign);
}

void SignOgd::observe_sign(int sign) {
  k_ = project(k_ - delta() * static_cast<double>(sign));
  ++m_;
}

double SignOgd::project(double k) const { return std::clamp(k, kmin_, kmax_); }

}  // namespace fedsparse::online
