#include "online/sign_ogd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace fedsparse::online {

// Telemetry publishes shared by the Algorithm 2/3 controllers: the k
// trajectory, the probe's derivative-sign decisions, and the staleness/
// validity step damping. All no-ops while telemetry is off.
void publish_controller_step(double k, int sign, double damp) noexcept {
  static const util::Gauge g_k("ctrl.k");
  static const util::Gauge g_damp("ctrl.step_damp");
  static const util::Counter c_pos("ctrl.probe_sign_pos");
  static const util::Counter c_neg("ctrl.probe_sign_neg");
  g_k.set(k);
  g_damp.set(damp);
  if (sign > 0) c_pos.add(1);
  if (sign < 0) c_neg.add(1);
}

void publish_controller_invalid() noexcept {
  static const util::Counter c_invalid("ctrl.probe_invalid");
  c_invalid.add(1);
}


SignOgd::SignOgd(const Config& cfg) : kmin_(cfg.kmin), kmax_(cfg.kmax) {
  if (!(kmin_ >= 1.0) || !(kmax_ > kmin_)) {
    throw std::invalid_argument("SignOgd: require 1 <= kmin < kmax");
  }
  k_ = cfg.initial_k > 0.0 ? project(cfg.initial_k) : 0.5 * (kmin_ + kmax_);
}

double SignOgd::delta() const {
  return (kmax_ - kmin_) / std::sqrt(2.0 * static_cast<double>(m_));
}

double SignOgd::probe_k() const {
  // k'_m = k_m − δ_m/2 (Section IV-E); keep it a valid, distinct degree.
  double kp = k_ - 0.5 * delta();
  kp = std::max(kp, kmin_);
  if (kp >= k_) kp = std::max(1.0, k_ - 1.0);
  return kp;
}

void SignOgd::observe(const RoundFeedback& fb) {
  const SignEstimate est = estimate_derivative_sign(fb, k_, probe_k());
  if (!est.valid) {
    publish_controller_invalid();
    ++m_;  // the round still elapsed; k stays as-is
    return;
  }
  // Staleness damping (buffered-async engine): a flush mixing stale uploads
  // yields a noisier derivative sign, so scale the step by 1/(1 + s̄). The
  // validity factor damps further when server-side screening rejected part
  // of the flush, and the trust factor when the robust aggregation stage
  // flagged anti-aligned contributors (the loss movement no longer reflects
  // k alone). At s̄ = 0, validity 1 and trust 1 all factors are exactly 1.0
  // and the update below is bit-identical to the synchronized observe_sign
  // path.
  const double damp = (1.0 / (1.0 + fb.mean_staleness)) * fb.validity * fb.trust;
  k_ = project(k_ - delta() * damp * static_cast<double>(est.sign));
  publish_controller_step(k_, est.sign, damp);
  ++m_;
}

void SignOgd::observe_sign(int sign) {
  k_ = project(k_ - delta() * static_cast<double>(sign));
  ++m_;
}

double SignOgd::project(double k) const { return std::clamp(k, kmin_, kmax_); }

}  // namespace fedsparse::online
