// Randomized k-element GS (Definition 2 of the paper): a continuous sparsity
// degree k is realized as ⌊k⌋ with probability ⌈k⌉−k and ⌈k⌉ with probability
// k−⌊k⌋ — stochastic rounding, unbiased in expectation.
#pragma once

#include <cstddef>

#include "util/rng.h"

namespace fedsparse::online {

/// One stochastic-rounding draw, clamped to [1, dim].
std::size_t stochastic_round_k(double k, std::size_t dim, util::Rng& rng);

/// Deterministic variant (nearest integer) used by the rounding ablation.
std::size_t deterministic_round_k(double k, std::size_t dim);

}  // namespace fedsparse::online
