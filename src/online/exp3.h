// EXP3 multi-armed-bandit baseline (ref [38], compared in Fig. 5).
//
// The paper treats each integer k as an arm. At full scale that is D ≈ 4·10^5
// arms, which is exactly why MAB methods do poorly here — every arm must be
// tried at least once. We expose the arm count: the default 64 log-spaced
// arms is a *stronger* baseline than all-integers (fewer arms to explore), so
// the comparison against the proposed method stays conservative.
//
// Reward shaping: the round's cost is time-per-unit-loss-decrease
// c_m = τ_m / (L̃(w(m−1)) − L̃(w(m))) — the integrand of the paper's objective
// — normalized into [0,1] against the running maximum cost. Rounds that fail
// to decrease the loss earn zero reward.
#pragma once

#include "online/controller.h"

namespace fedsparse::online {

class Exp3 final : public KController {
 public:
  struct Config {
    double kmin = 1.0;
    double kmax = 1.0;
    std::size_t num_arms = 64;
    double gamma = 0.1;  // exploration rate
    std::uint64_t seed = 1;
  };

  explicit Exp3(const Config& cfg);

  std::string name() const override { return "exp3"; }
  double current_k() const override { return arms_[current_arm_]; }
  void observe(const RoundFeedback& fb) override;

  const std::vector<double>& arms() const noexcept { return arms_; }
  const std::vector<double>& arm_weights() const noexcept { return weights_; }

 private:
  void draw_arm();
  std::vector<double> arm_probabilities() const;

  std::vector<double> arms_;
  std::vector<double> weights_;
  double gamma_;
  util::Rng rng_;
  std::size_t current_arm_ = 0;
  double max_cost_seen_ = 0.0;
};

/// Normalized cost used by both bandit baselines: time per unit loss
/// decrease, or +inf when the loss did not decrease.
double bandit_round_cost(const RoundFeedback& fb);

}  // namespace fedsparse::online
