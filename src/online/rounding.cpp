#include "online/rounding.h"

#include <algorithm>
#include <cmath>

namespace fedsparse::online {

std::size_t stochastic_round_k(double k, std::size_t dim, util::Rng& rng) {
  const double lo = std::floor(k);
  const double frac = k - lo;
  double chosen = lo;
  if (frac > 0.0 && rng.uniform() < frac) chosen = lo + 1.0;
  chosen = std::clamp(chosen, 1.0, static_cast<double>(dim));
  return static_cast<std::size_t>(chosen);
}

std::size_t deterministic_round_k(double k, std::size_t dim) {
  const double rounded = std::clamp(std::round(k), 1.0, static_cast<double>(dim));
  return static_cast<std::size_t>(rounded);
}

}  // namespace fedsparse::online
