#include "online/exp3.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fedsparse::online {

double bandit_round_cost(const RoundFeedback& fb) {
  const double drop = fb.loss_prev - fb.loss_cur;
  if (std::isnan(drop) || drop <= 0.0) return std::numeric_limits<double>::infinity();
  return fb.round_time / drop;
}

Exp3::Exp3(const Config& cfg) : gamma_(cfg.gamma), rng_(cfg.seed) {
  if (!(cfg.kmin >= 1.0) || !(cfg.kmax > cfg.kmin)) {
    throw std::invalid_argument("Exp3: require 1 <= kmin < kmax");
  }
  if (cfg.num_arms < 2) throw std::invalid_argument("Exp3: need at least 2 arms");
  if (cfg.gamma <= 0.0 || cfg.gamma > 1.0) throw std::invalid_argument("Exp3: gamma in (0,1]");
  // Log-spaced arm grid: sparsity spans orders of magnitude.
  const double log_lo = std::log(cfg.kmin), log_hi = std::log(cfg.kmax);
  arms_.resize(cfg.num_arms);
  for (std::size_t i = 0; i < cfg.num_arms; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(cfg.num_arms - 1);
    arms_[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  weights_.assign(cfg.num_arms, 1.0);
  draw_arm();
}

std::vector<double> Exp3::arm_probabilities() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  const auto n = static_cast<double>(arms_.size());
  std::vector<double> p(arms_.size());
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    p[i] = (1.0 - gamma_) * weights_[i] / total + gamma_ / n;
  }
  return p;
}

void Exp3::draw_arm() {
  const auto p = arm_probabilities();
  current_arm_ = rng_.categorical(p);
}

void Exp3::observe(const RoundFeedback& fb) {
  const double cost = bandit_round_cost(fb);
  double reward = 0.0;
  if (std::isfinite(cost)) {
    max_cost_seen_ = std::max(max_cost_seen_, cost);
    reward = max_cost_seen_ > 0.0 ? 1.0 - cost / max_cost_seen_ : 0.0;
  }
  const auto p = arm_probabilities();
  const double estimated = reward / std::max(p[current_arm_], 1e-12);
  const auto n = static_cast<double>(arms_.size());
  weights_[current_arm_] *= std::exp(gamma_ * estimated / n);
  // Guard against overflow: renormalize if weights grow too large.
  const double wmax = *std::max_element(weights_.begin(), weights_.end());
  if (wmax > 1e100) {
    for (auto& w : weights_) w /= wmax;
  }
  draw_arm();
}

}  // namespace fedsparse::online
