#include "online/factory.h"

#include <stdexcept>

#include "online/continuous_bandit.h"
#include "online/exp3.h"
#include "online/extended_sign_ogd.h"
#include "online/sign_ogd.h"
#include "online/value_based.h"

namespace fedsparse::online {

std::unique_ptr<KController> make_controller(const ControllerConfig& cfg) {
  if (cfg.name == "fixed") {
    if (cfg.fixed_k < 1.0) throw std::invalid_argument("make_controller: fixed requires fixed_k");
    return std::make_unique<FixedK>(cfg.fixed_k);
  }
  if (cfg.name == "sign_ogd") {
    return std::make_unique<SignOgd>(SignOgd::Config{cfg.kmin, cfg.kmax, cfg.initial_k});
  }
  if (cfg.name == "extended_sign_ogd") {
    return std::make_unique<ExtendedSignOgd>(ExtendedSignOgd::Config{
        cfg.kmin, cfg.kmax, cfg.initial_k, cfg.alpha, cfg.update_window});
  }
  if (cfg.name == "value_based") {
    return std::make_unique<ValueBased>(ValueBased::Config{cfg.kmin, cfg.kmax, cfg.initial_k});
  }
  if (cfg.name == "exp3") {
    return std::make_unique<Exp3>(
        Exp3::Config{cfg.kmin, cfg.kmax, cfg.exp3_arms, cfg.exp3_gamma, cfg.seed});
  }
  if (cfg.name == "continuous_bandit") {
    return std::make_unique<ContinuousBandit>(ContinuousBandit::Config{
        cfg.kmin, cfg.kmax, cfg.initial_k, cfg.bandit_delta_frac, cfg.seed});
  }
  throw std::invalid_argument("make_controller: unknown controller '" + cfg.name + "'");
}

}  // namespace fedsparse::online
