// Derivative-sign estimation from probe losses (Section IV-E, Eqs. (10)–(11)).
//
// Each client evaluates one held sample h at three weight vectors: w(m−1),
// w(m) (after the k_m update), and w'(m) (after the k'_m = k_m − δ_m/2
// update). The server averages them into L̃ values. The time the k'_m round
// *would have taken to reach the same loss* L̃(w(m)) is extrapolated as
//
//   τ̂_m(k') = θ_m(k') · (L̃(w(m−1)) − L̃(w(m))) / (L̃(w(m−1)) − L̃(w'(m)))
//
// and the derivative sign is sign((τ_m(k_m) − τ̂_m(k')) / (k_m − k')).
// If either loss difference is non-positive (a round that failed to decrease
// the loss — possible with minibatch noise), the estimate is invalid and the
// controller leaves k unchanged, exactly as the paper specifies.
#pragma once

namespace fedsparse::online {

struct RoundFeedback;

struct SignEstimate {
  bool valid = false;
  int sign = 0;         // sign of the estimated derivative, in {-1, 0, 1}
  double derivative = 0.0;  // the raw estimate (used by the value-based baseline)
};

/// `km` and `kprime` are the degrees actually played; requires km != kprime
/// for validity.
SignEstimate estimate_derivative_sign(const RoundFeedback& fb, double km, double kprime);

/// sign(x) with sign(0) == 0 (the paper's convention).
inline int sign_of(double x) noexcept { return (x > 0.0) - (x < 0.0); }

/// Telemetry publishes shared by the Algorithm 2/3 controllers (defined in
/// sign_ogd.cpp): the k trajectory ("ctrl.k"), the probe's sign decisions
/// ("ctrl.probe_sign_pos"/"_neg"), the staleness/validity step damping
/// ("ctrl.step_damp"), and invalid probes ("ctrl.probe_invalid"). No-ops
/// while telemetry is disabled.
void publish_controller_step(double k, int sign, double damp) noexcept;
void publish_controller_invalid() noexcept;

}  // namespace fedsparse::online
