// Value-based gradient (derivative) descent baseline (ref [36], compared in
// Fig. 5): identical to Algorithm 2 except the raw derivative *estimate*
// (Section IV-E without the sign(·)) multiplies the step size:
//
//   k_{m+1} = P_K(k_m − δ_m · d̂_m),   δ_m = B/√(2m).
//
// Because d̂_m has the units of time-per-element (and can be tiny or huge),
// the update magnitude is unnormalized — the instability the sign-based
// scheme removes.
#pragma once

#include "online/controller.h"
#include "online/estimator.h"

namespace fedsparse::online {

class ValueBased final : public KController {
 public:
  struct Config {
    double kmin = 1.0;
    double kmax = 1.0;
    double initial_k = 0.0;
  };

  explicit ValueBased(const Config& cfg);

  std::string name() const override { return "value_based"; }
  double current_k() const override { return k_; }
  double probe_k() const override;
  void observe(const RoundFeedback& fb) override;
  void observe_derivative(double derivative);

  double delta() const;

 private:
  double project(double k) const;

  double kmin_;
  double kmax_;
  double k_;
  std::size_t m_ = 1;
};

}  // namespace fedsparse::online
