// Algorithm 3: extended online learning with shrinking search intervals.
//
// Runs Algorithm 2 instances back to back. Every Mu valid updates it forms a
// candidate interval [k'min/α, α·k'max] from the k values the window
// produced; if the candidate width B' satisfies B' < (√2−1)·B *and* the
// current instance has run at least as long as the previous one (M'' ≥ M'),
// a new instance starts on the smaller interval — which provably lowers the
// combined regret bound (inequality (9) of the paper) and, empirically,
// removes the large-k fluctuation Algorithm 2 shows when communication is
// expensive (Fig. 6).
#pragma once

#include "online/controller.h"
#include "online/estimator.h"

namespace fedsparse::online {

class ExtendedSignOgd final : public KController {
 public:
  struct Config {
    double kmin = 1.0;
    double kmax = 1.0;
    double initial_k = 0.0;   // <=0 => midpoint
    double alpha = 1.5;       // interval expansion coefficient (α ≥ 1)
    std::size_t update_window = 20;  // Mu
  };

  explicit ExtendedSignOgd(const Config& cfg);

  std::string name() const override { return "extended_sign_ogd"; }
  double current_k() const override { return k_; }
  double probe_k() const override;
  void observe(const RoundFeedback& fb) override;
  void observe_sign(int sign);

  double delta() const;  // δ_m = B/√(2(m−m0))
  /// Current instance's search interval [lo, hi] (for tests / traces).
  double interval_lo() const noexcept { return cur_kmin_; }
  double interval_hi() const noexcept { return cur_kmax_; }
  std::size_t instances_started() const noexcept { return instances_; }

 private:
  void post_update(bool updated);
  double project(double k) const;

  // Outer (absolute) bounds.
  double kmin_;
  double kmax_;
  double alpha_;
  std::size_t update_window_;

  // Algorithm state (names follow the pseudocode).
  double k_;
  std::size_t m_ = 1;       // global round index of the upcoming update
  std::size_t m0_ = 0;      // round the current instance started at
  double cur_kmin_;         // K = [cur_kmin_, cur_kmax_]
  double cur_kmax_;
  double b_;                // B, current search width
  std::size_t n_ = 0;       // valid updates inside the current window
  std::size_t m_prev_ = 0;  // M′: length of the previous instance
  double track_min_;        // k′min
  double track_max_;        // k′max
  std::size_t instances_ = 1;
};

}  // namespace fedsparse::online
