// Algorithm 2: online learning for k from the (estimated) derivative sign.
//
//   k_{m+1} = P_K(k_m − δ_m · ŝ_m),   δ_m = B / √(2m),   K = [kmin, kmax].
//
// Regret: R(M) ≤ GB√(2M) with exact signs (Theorem 1) and
// E[R(M)] ≤ GHB√(2M) with estimated signs (Theorem 2). The round counter m
// advances every round; when the sign estimate is invalid the value of k is
// left unchanged for that round (Section IV-E).
#pragma once

#include "online/controller.h"
#include "online/estimator.h"

namespace fedsparse::online {

class SignOgd : public KController {
 public:
  struct Config {
    double kmin = 1.0;
    double kmax = 1.0;
    double initial_k = 0.0;  // <=0 => midpoint of [kmin, kmax]
  };

  explicit SignOgd(const Config& cfg);

  std::string name() const override { return "sign_ogd"; }
  double current_k() const override { return k_; }
  /// k'_m = k_m − δ_m/2, kept inside [kmin, kmax] and distinct from k_m.
  double probe_k() const override;
  void observe(const RoundFeedback& fb) override;

  /// Direct sign feeding (exact-sign experiments / regret tests). Advances m.
  void observe_sign(int sign);

  double delta() const;  // δ_m for the upcoming update
  std::size_t round_index() const noexcept { return m_; }
  double search_width() const noexcept { return kmax_ - kmin_; }  // B

 protected:
  double project(double k) const;

  double kmin_;
  double kmax_;
  double k_;
  std::size_t m_ = 1;  // index of the upcoming update
};

}  // namespace fedsparse::online
