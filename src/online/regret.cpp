#include "online/regret.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsparse::online {

double QuadraticCostEnv::g_bound(double kmin, double kmax) const noexcept {
  const double at_min = std::fabs(derivative(kmin));
  const double at_max = std::fabs(derivative(kmax));
  return std::max(at_min, at_max);
}

int QuadraticCostEnv::noisy_sign(double k, double correct_prob, util::Rng& rng) const {
  const int s = exact_sign(k);
  if (s == 0) return rng.bernoulli(0.5) ? 1 : -1;  // symmetric when s_m = 0 (Eq. (6))
  return rng.bernoulli(correct_prob) ? s : -s;
}

double regret_bound_exact(double g, double b, std::size_t m_rounds) {
  return g * b * std::sqrt(2.0 * static_cast<double>(m_rounds));
}

double regret_bound_estimated(double g, double h, double b, std::size_t m_rounds) {
  return g * h * b * std::sqrt(2.0 * static_cast<double>(m_rounds));
}

double h_for_flip_probability(double correct_prob) {
  if (correct_prob <= 0.5 || correct_prob > 1.0) {
    throw std::invalid_argument("h_for_flip_probability: need correct_prob in (0.5, 1]");
  }
  return 1.0 / (2.0 * correct_prob - 1.0);
}

}  // namespace fedsparse::online
