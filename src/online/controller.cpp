#include "online/controller.h"

#include <stdexcept>

namespace fedsparse::online {

ReplayK::ReplayK(std::vector<double> sequence) : sequence_(std::move(sequence)) {
  if (sequence_.empty()) throw std::invalid_argument("ReplayK: empty sequence");
}

double ReplayK::current_k() const {
  const std::size_t idx = cursor_ < sequence_.size() ? cursor_ : sequence_.size() - 1;
  return sequence_[idx];
}

}  // namespace fedsparse::online
