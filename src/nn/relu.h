// ReLU activation (elementwise max(0, x)).
#pragma once

#include "nn/layer.h"

namespace fedsparse::nn {

class ReLU final : public Layer {
 public:
  std::size_t out_features(std::size_t in_features) const override { return in_features; }

  void forward(const Matrix& x, Matrix& y) override {
    // reshape, not resize: every element (and mask slot) is written below.
    y.reshape(x.rows(), x.cols());
    mask_.resize(x.size());
    const float* in = x.data();
    float* out = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
      const bool pos = in[i] > 0.0f;
      mask_[i] = pos;
      out[i] = pos ? in[i] : 0.0f;
    }
  }

  void backward(const Matrix& dy, Matrix& dx) override {
    dx.reshape(dy.rows(), dy.cols());  // fully overwritten below
    const float* in = dy.data();
    float* out = dx.data();
    for (std::size_t i = 0; i < dy.size(); ++i) out[i] = mask_[i] ? in[i] : 0.0f;
  }

  std::string name() const override { return "ReLU"; }

 private:
  std::vector<char> mask_;
};

}  // namespace fedsparse::nn
