// Fully connected layer: y = x W^T + b.
#pragma once

#include "nn/layer.h"

namespace fedsparse::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in, std::size_t out);

  std::size_t param_count() const noexcept override { return in_ * out_ + out_; }
  void bind(std::span<float> weights, std::span<float> grads) override;
  void init_params(util::Rng& rng) override;
  std::size_t out_features(std::size_t in_features) const override;
  void set_grad_enabled(bool enabled) override { grad_enabled_ = enabled; }
  void forward(const Matrix& x, Matrix& y) override;
  void backward(const Matrix& dy, Matrix& dx) override;
  std::string name() const override;

 private:
  std::size_t in_;
  std::size_t out_;
  // Views into the model's flat vectors: W is (out x in) row-major, b follows.
  std::span<float> w_;
  std::span<float> b_;
  std::span<float> gw_;
  std::span<float> gb_;
  Matrix x_cache_;  // input copy for dW; skipped on inference-only forwards
  bool grad_enabled_ = true;
};

}  // namespace fedsparse::nn
