// Layer interface for the nn substrate.
//
// Layers operate on batches laid out as Matrix rows (batch x features). A
// layer's parameters live inside the owning Sequential's flat weight/gradient
// vectors; `bind()` hands each layer a span into those vectors. This flat
// layout is the contract the gradient-sparsification code depends on: the
// entire model is one D-dimensional vector, exactly as in the paper.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace fedsparse::nn {

using tensor::Matrix;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Number of scalar parameters this layer contributes to the flat vector.
  virtual std::size_t param_count() const noexcept { return 0; }

  /// Receives this layer's slices of the model-wide weight/grad vectors.
  /// Called at finalize() and again on every Sequential::bind_weights() —
  /// implementations must treat it as pure span assignment (no allocation,
  /// no one-shot initialization) so the owning model can rebind its weight
  /// chain to external storage (the shared-replica engine does this per
  /// round task).
  virtual void bind(std::span<float> weights, std::span<float> grads) {
    (void)weights;
    (void)grads;
  }

  /// Writes the initial parameter values into the bound weight span.
  virtual void init_params(util::Rng& rng) { (void)rng; }

  /// Output feature count given the input feature count; also validates the
  /// input dimension (throws std::invalid_argument on mismatch).
  virtual std::size_t out_features(std::size_t in_features) const = 0;

  /// Hint from the owning model: when false, the next forward() will never
  /// be followed by backward(), so layers may skip caching backward-only
  /// state (Conv2d's batched im2col columns, Linear's input copy).
  /// Inference-heavy paths (evaluation, probe losses) pass false. Default
  /// no-op for layers whose backward state is cheap.
  virtual void set_grad_enabled(bool enabled) { (void)enabled; }

  /// Forward pass: x is (batch x in), y is resized to (batch x out).
  /// Layers cache whatever they need for backward.
  virtual void forward(const Matrix& x, Matrix& y) = 0;

  /// Backward pass: dy is (batch x out); dx is resized to (batch x in).
  /// Parameter gradients are *accumulated* into the bound grad span.
  virtual void backward(const Matrix& dy, Matrix& dx) = 0;

  virtual std::string name() const = 0;
};

}  // namespace fedsparse::nn
