#include "nn/models.h"

#include <algorithm>
#include <stdexcept>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/maxpool.h"
#include "nn/relu.h"

namespace fedsparse::nn {

ModelFactory mlp(std::size_t in, std::vector<std::size_t> hidden, std::size_t classes) {
  return [=](util::Rng& rng) {
    auto model = std::make_unique<Sequential>(in);
    std::size_t prev = in;
    for (std::size_t h : hidden) {
      model->add(std::make_unique<Linear>(prev, h));
      model->add(std::make_unique<ReLU>());
      prev = h;
    }
    model->add(std::make_unique<Linear>(prev, classes));
    model->finalize(rng);
    return model;
  };
}

ModelFactory cnn(std::size_t channels, std::size_t height, std::size_t width, std::size_t c1,
                 std::size_t c2, std::size_t hidden, std::size_t classes) {
  return [=](util::Rng& rng) {
    auto model = std::make_unique<Sequential>(channels * height * width);
    model->add(std::make_unique<Conv2d>(channels, height, width, c1, 5, 1, 2));
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<MaxPool2d>(c1, height, width, 2));
    const std::size_t h2 = height / 2, w2 = width / 2;
    model->add(std::make_unique<Conv2d>(c1, h2, w2, c2, 5, 1, 2));
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<MaxPool2d>(c2, h2, w2, 2));
    const std::size_t flat = c2 * (h2 / 2) * (w2 / 2);
    model->add(std::make_unique<Linear>(flat, hidden));
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<Linear>(hidden, classes));
    model->finalize(rng);
    return model;
  };
}

namespace {
std::size_t scaled(std::size_t base, double scale, std::size_t floor_value) {
  return std::max<std::size_t>(floor_value, static_cast<std::size_t>(base * scale));
}
}  // namespace

ModelFactory cnn_femnist(double scale) {
  if (scale <= 0.0 || scale > 1.0) throw std::invalid_argument("cnn_femnist: scale in (0,1]");
  // Full scale: conv32 -> conv64 -> fc128 -> 62; D ≈ 470k (paper: D > 400k).
  return cnn(1, 28, 28, scaled(32, scale, 4), scaled(64, scale, 8), scaled(128, scale, 16), 62);
}

ModelFactory cnn_cifar(double scale) {
  if (scale <= 0.0 || scale > 1.0) throw std::invalid_argument("cnn_cifar: scale in (0,1]");
  return cnn(3, 32, 32, scaled(32, scale, 4), scaled(64, scale, 8), scaled(64, scale, 16), 10);
}

ModelFactory logistic(std::size_t in, std::size_t classes) {
  return [=](util::Rng& rng) {
    auto model = std::make_unique<Sequential>(in);
    model->add(std::make_unique<Linear>(in, classes));
    model->finalize(rng);
    return model;
  };
}

ModelFactory make_model(const std::string& name, std::size_t channels, std::size_t height,
                        std::size_t width, std::size_t classes, std::size_t hidden, double scale) {
  const std::size_t in = channels * height * width;
  if (name == "mlp") return mlp(in, {hidden}, classes);
  if (name == "logistic") return logistic(in, classes);
  if (name == "cnn") {
    return cnn(channels, height, width, scaled(32, scale, 4), scaled(64, scale, 8),
               scaled(128, scale, 16), classes);
  }
  throw std::invalid_argument("make_model: unknown model '" + name +
                              "' (expected mlp|logistic|cnn)");
}

}  // namespace fedsparse::nn
