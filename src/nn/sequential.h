// Sequential model with a flat D-dimensional parameter vector.
//
// The flat `weights()` / `grad()` views are the contract with the
// sparsification code: the paper's gradient vector ∇L(w, i) is exactly
// `grad()` after `forward_loss_grad`.
//
// Weight storage is *rebindable*: after finalize() the model owns its weight
// vector, but bind_weights() can point the whole parameter chain at external
// storage instead (the federated engine's shared global weight store, or one
// client's local vector). Gradients and activations always stay owned by the
// instance, which is what makes one Sequential per *thread* — rather than one
// per client — sufficient for the synchronized round engine.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/loss.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace fedsparse::nn {

class Sequential {
 public:
  /// `in_features` is the flat input dimension (e.g. C*H*W for images).
  explicit Sequential(std::size_t in_features) : in_features_(in_features) {}

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  /// Appends a layer; only valid before finalize().
  void add(std::unique_ptr<Layer> layer);

  /// Allocates the flat weight/grad vectors, binds layers, initializes
  /// parameters. Must be called exactly once before any forward pass.
  void finalize(util::Rng& rng);

  bool finalized() const noexcept { return finalized_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t in_features() const noexcept { return in_features_; }
  std::size_t num_classes() const noexcept { return out_features_; }

  std::span<float> weights() noexcept { return wspan_; }
  std::span<const float> weights() const noexcept { return wspan_; }
  std::span<const float> grad() const noexcept { return {grads_.data(), grads_.size()}; }

  /// Points the parameter chain at external storage of exactly dim() floats:
  /// every layer's weight span is re-derived from `w` while its grad span is
  /// untouched. The previously owned weight vector (if any) is released, so a
  /// workspace bound to a shared store holds no weight memory of its own.
  /// Cheap (O(#layers)) and idempotent — the round engine rebinds per task.
  void bind_weights(std::span<float> w);

  /// True when weights() aliases storage this instance does not own.
  bool weights_bound_externally() const noexcept {
    return finalized_ && wspan_.data() != weights_.data();
  }

  void set_weights(std::span<const float> w);
  void zero_grad() noexcept;

  /// Forward + loss + backward. The mean-batch gradient is *accumulated* into
  /// grad() (callers normally zero_grad() first). Returns the mean loss.
  double forward_loss_grad(const Matrix& x, std::span<const int> labels);

  /// Forward + loss only (no gradient). Usable concurrently from one thread
  /// per model instance.
  double forward_loss(const Matrix& x, std::span<const int> labels);

  /// Raw logits for a batch.
  Matrix predict(const Matrix& x);

  /// Fraction of rows whose argmax logit equals the label.
  double accuracy(const Matrix& x, std::span<const int> labels);

  /// Dense SGD step: w -= lr * grad().
  void sgd_step(float lr) noexcept;

  std::string describe() const;

 private:
  /// `for_grad` tells layers whether backward() will follow, so inference
  /// paths (evaluation, probe losses, predict) skip backward-only caches.
  Matrix run_forward(const Matrix& x, bool for_grad);

  std::size_t in_features_;
  std::size_t out_features_ = 0;
  std::size_t dim_ = 0;
  bool finalized_ = false;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<float> weights_;       // owned storage; empty once bound externally
  std::span<float> wspan_;           // active weight storage (owned or external)
  std::vector<float> grads_;
  std::vector<Matrix> activations_;  // scratch, reused across calls
};

}  // namespace fedsparse::nn
