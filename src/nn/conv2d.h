// 2D convolution lowered to GEMM via im2col.
//
// Input batches are flat rows of length in_channels*height*width; the layer
// carries the spatial geometry itself (networks are static graphs here).
#pragma once

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace fedsparse::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t height, std::size_t width, std::size_t out_channels,
         std::size_t ksize, std::size_t stride = 1, std::size_t pad = 0);

  std::size_t param_count() const noexcept override {
    return out_channels_ * geom_.col_rows() + out_channels_;
  }
  void bind(std::span<float> weights, std::span<float> grads) override;
  void init_params(util::Rng& rng) override;
  std::size_t out_features(std::size_t in_features) const override;
  void set_grad_enabled(bool enabled) override { grad_enabled_ = enabled; }
  void forward(const Matrix& x, Matrix& y) override;
  void backward(const Matrix& dy, Matrix& dx) override;
  std::string name() const override;

  std::size_t out_channels() const noexcept { return out_channels_; }
  const tensor::ConvGeometry& geometry() const noexcept { return geom_; }

 private:
  tensor::ConvGeometry geom_;
  std::size_t out_channels_;
  std::span<float> w_;   // (out_channels x C*k*k) row-major
  std::span<float> b_;   // (out_channels)
  std::span<float> gw_;
  std::span<float> gb_;
  // Batched im2col cache (batch x ckk*spatial): a grad-enabled forward
  // lowers every sample once and backward reads the same columns instead of
  // re-running the im2col scatter per sample — the classic memory-for-time
  // trade. Also replaces the former full input-batch copy (x_cache_).
  // Inference-only forwards (grad_enabled_ false) reuse row 0 as a
  // single-sample scratch so evaluation batches never materialize the cache.
  Matrix cols_cache_;
  bool grad_enabled_ = true;
  Matrix dcols_;     // scratch
};

}  // namespace fedsparse::nn
