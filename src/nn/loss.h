// Softmax cross-entropy loss head.
#pragma once

#include <span>

#include "tensor/matrix.h"

namespace fedsparse::nn {

using tensor::Matrix;

/// Numerically stable softmax + cross-entropy over logits rows.
class SoftmaxCrossEntropy {
 public:
  /// Mean loss over the batch; fills `dlogits` with the gradient of the mean
  /// loss w.r.t. the logits ((softmax - onehot)/batch).
  static double loss_and_grad(const Matrix& logits, std::span<const int> labels, Matrix& dlogits);

  /// Mean loss only (no gradient) — used for evaluation and the one-sample
  /// probe losses of the derivative-sign estimator.
  static double loss_only(const Matrix& logits, std::span<const int> labels);

  /// In-place row-wise softmax.
  static void softmax_rows(Matrix& m);
};

}  // namespace fedsparse::nn
