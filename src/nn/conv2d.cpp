#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

namespace fedsparse::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t height, std::size_t width,
               std::size_t out_channels, std::size_t ksize, std::size_t stride, std::size_t pad)
    : out_channels_(out_channels) {
  geom_.channels = in_channels;
  geom_.height = height;
  geom_.width = width;
  geom_.ksize = ksize;
  geom_.stride = stride;
  geom_.pad = pad;
  if (height + 2 * pad < ksize || width + 2 * pad < ksize) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
}

void Conv2d::bind(std::span<float> weights, std::span<float> grads) {
  const std::size_t wsize = out_channels_ * geom_.col_rows();
  w_ = weights.subspan(0, wsize);
  b_ = weights.subspan(wsize, out_channels_);
  gw_ = grads.subspan(0, wsize);
  gb_ = grads.subspan(wsize, out_channels_);
}

void Conv2d::init_params(util::Rng& rng) {
  const float std = std::sqrt(2.0f / static_cast<float>(geom_.col_rows()));
  for (auto& v : w_) v = static_cast<float>(rng.normal(0.0, std));
  for (auto& v : b_) v = 0.0f;
}

std::size_t Conv2d::out_features(std::size_t in_features) const {
  if (in_features != geom_.image_size()) {
    throw std::invalid_argument("Conv2d: expected " + std::to_string(geom_.image_size()) +
                                " inputs, got " + std::to_string(in_features));
  }
  return out_channels_ * geom_.col_cols();
}

void Conv2d::forward(const Matrix& x, Matrix& y) {
  const std::size_t batch = x.rows();
  const std::size_t spatial = geom_.col_cols();  // outH*outW
  const std::size_t ckk = geom_.col_rows();
  y.reshape(batch, out_channels_ * spatial);        // fully overwritten below
  // Grad-enabled: one cache row-region per sample, read back by backward.
  // Inference: a single scratch region, so eval-sized batches never pay
  // batch x ckk x spatial memory for columns nobody will read again.
  cols_cache_.reshape(grad_enabled_ ? batch : 1, ckk * spatial);
  const tensor::ConstMatrixView w(w_, out_channels_, ckk);
  for (std::size_t s = 0; s < batch; ++s) {
    const tensor::MatrixView cols(cols_cache_.row(grad_enabled_ ? s : 0), ckk, spatial);
    tensor::im2col(x.row(s), geom_, cols);
    // y_sample = W · cols + b: the bias fill overwrites every element, then
    // one blocked GEMM accumulates the (outC x ckk) · (ckk x spatial) product.
    tensor::MatrixView ys(y.row(s), out_channels_, spatial);
    for (std::size_t o = 0; o < out_channels_; ++o) {
      float* yrow = ys.row(o);
      for (std::size_t p = 0; p < spatial; ++p) yrow[p] = b_[o];
    }
    tensor::gemm_nn(w, cols, 1.0f, ys);
  }
}

void Conv2d::backward(const Matrix& dy, Matrix& dx) {
  const std::size_t batch = dy.rows();
  const std::size_t spatial = geom_.col_cols();
  const std::size_t ckk = geom_.col_rows();
  if (cols_cache_.rows() != batch || cols_cache_.cols() != ckk * spatial) {
    throw std::logic_error("Conv2d::backward: no cached forward for this batch");
  }
  dx.reshape(batch, geom_.image_size());
  tensor::zero(dx.flat());
  const tensor::ConstMatrixView w(w_, out_channels_, ckk);
  const tensor::MatrixView gw(gw_, out_channels_, ckk);
  for (std::size_t s = 0; s < batch; ++s) {
    const tensor::ConstMatrixView cols(cols_cache_.row(s), ckk, spatial);
    const tensor::ConstMatrixView dys(dy.row(s), out_channels_, spatial);
    // db(o) += sum_p dy(o, p), accumulated in double as before.
    for (std::size_t o = 0; o < out_channels_; ++o) {
      const float* dyrow = dys.row(o);
      double bsum = 0.0;
      for (std::size_t p = 0; p < spatial; ++p) bsum += dyrow[p];
      gb_[o] += static_cast<float>(bsum);
    }
    // dW += dy · colsᵀ (rows-dot-rows over the shared spatial axis).
    tensor::gemm_nt(dys, cols, 1.0f, gw);
    // dcols = Wᵀ · dy; then scatter back to image space.
    dcols_.reshape(ckk, spatial);
    tensor::zero(dcols_.flat());
    tensor::gemm_tn(w, dys, 1.0f, dcols_);
    tensor::col2im(dcols_, geom_, dx.row(s));
  }
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(geom_.channels) + "x" + std::to_string(geom_.height) + "x" +
         std::to_string(geom_.width) + " -> " + std::to_string(out_channels_) + ", k=" +
         std::to_string(geom_.ksize) + ")";
}

}  // namespace fedsparse::nn
