// Model factories.
//
// A ModelFactory builds a *freshly initialized* model; federated clients each
// invoke the factory and are then synchronized to the server's initial
// weights, so the RNG seed only matters for the master copy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.h"

namespace fedsparse::nn {

using ModelFactory = std::function<std::unique_ptr<Sequential>(util::Rng& rng)>;

/// Multi-layer perceptron: in -> hidden[0] -> ... -> classes, ReLU between.
ModelFactory mlp(std::size_t in, std::vector<std::size_t> hidden, std::size_t classes);

/// CNN for 28x28x1 inputs and 62 classes (FEMNIST geometry): the same
/// two-conv architecture as Wang et al. [16] used by the paper, D > 400,000.
/// `scale` in (0,1] shrinks channel/hidden counts for CPU-budget runs.
ModelFactory cnn_femnist(double scale = 1.0);

/// CNN for 32x32x3 inputs and 10 classes (CIFAR-10 geometry).
ModelFactory cnn_cifar(double scale = 1.0);

/// Generic small CNN: conv(k=5,pad=2,c1) -> ReLU -> pool2 -> conv(5,pad=2,c2)
/// -> ReLU -> pool2 -> fc(hidden) -> ReLU -> fc(classes).
ModelFactory cnn(std::size_t channels, std::size_t height, std::size_t width, std::size_t c1,
                 std::size_t c2, std::size_t hidden, std::size_t classes);

/// Multinomial logistic regression (single Linear layer) — used by fast tests.
ModelFactory logistic(std::size_t in, std::size_t classes);

/// Resolves a model by name ("mlp", "cnn") for the given dataset geometry.
/// `hidden` applies to the mlp; `scale` to the cnn variants.
ModelFactory make_model(const std::string& name, std::size_t channels, std::size_t height,
                        std::size_t width, std::size_t classes, std::size_t hidden = 64,
                        double scale = 1.0);

}  // namespace fedsparse::nn
