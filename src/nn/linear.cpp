#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

namespace fedsparse::nn {

Linear::Linear(std::size_t in, std::size_t out) : in_(in), out_(out) {
  if (in == 0 || out == 0) throw std::invalid_argument("Linear: zero dimension");
}

void Linear::bind(std::span<float> weights, std::span<float> grads) {
  w_ = weights.subspan(0, in_ * out_);
  b_ = weights.subspan(in_ * out_, out_);
  gw_ = grads.subspan(0, in_ * out_);
  gb_ = grads.subspan(in_ * out_, out_);
}

void Linear::init_params(util::Rng& rng) {
  // He initialization: suits the ReLU networks used throughout.
  const float std = std::sqrt(2.0f / static_cast<float>(in_));
  for (auto& v : w_) v = static_cast<float>(rng.normal(0.0, std));
  for (auto& v : b_) v = 0.0f;
}

std::size_t Linear::out_features(std::size_t in_features) const {
  if (in_features != in_) {
    throw std::invalid_argument("Linear: expected " + std::to_string(in_) + " inputs, got " +
                                std::to_string(in_features));
  }
  return out_;
}

void Linear::forward(const Matrix& x, Matrix& y) {
  if (grad_enabled_) x_cache_ = x;
  const std::size_t batch = x.rows();
  // reshape, not resize: every element is written by the bias fill before the
  // GEMM accumulates into it, so the O(batch*out) clear would be pure waste.
  y.reshape(batch, out_);
  for (std::size_t r = 0; r < batch; ++r) {
    float* yr = y.row(r);
    for (std::size_t o = 0; o < out_; ++o) yr[o] = b_[o];
  }
  // y += x · Wᵀ through the blocked dot-product kernel; W viewed in place.
  tensor::gemm_nt(x, tensor::ConstMatrixView(w_, out_, in_), 1.0f, y);
}

void Linear::backward(const Matrix& dy, Matrix& dx) {
  const std::size_t batch = dy.rows();
  if (x_cache_.rows() != batch) {
    throw std::logic_error("Linear::backward: no cached forward for this batch");
  }
  // dW += dyᵀ · x via the tiled kernel; db += column sums of dy.
  tensor::gemm_tn(dy, x_cache_, 1.0f, tensor::MatrixView(gw_, out_, in_));
  for (std::size_t r = 0; r < batch; ++r) {
    const float* dyr = dy.row(r);
    for (std::size_t o = 0; o < out_; ++o) gb_[o] += dyr[o];
  }
  // dx = dy · W: the view API accumulates, so clear once after the reshape.
  dx.reshape(batch, in_);
  tensor::zero(dx.flat());
  tensor::gemm_nn(dy, tensor::ConstMatrixView(w_, out_, in_), 1.0f, dx);
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

}  // namespace fedsparse::nn
