#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

namespace fedsparse::nn {

Linear::Linear(std::size_t in, std::size_t out) : in_(in), out_(out) {
  if (in == 0 || out == 0) throw std::invalid_argument("Linear: zero dimension");
}

void Linear::bind(std::span<float> weights, std::span<float> grads) {
  w_ = weights.subspan(0, in_ * out_);
  b_ = weights.subspan(in_ * out_, out_);
  gw_ = grads.subspan(0, in_ * out_);
  gb_ = grads.subspan(in_ * out_, out_);
}

void Linear::init_params(util::Rng& rng) {
  // He initialization: suits the ReLU networks used throughout.
  const float std = std::sqrt(2.0f / static_cast<float>(in_));
  for (auto& v : w_) v = static_cast<float>(rng.normal(0.0, std));
  for (auto& v : b_) v = 0.0f;
}

std::size_t Linear::out_features(std::size_t in_features) const {
  if (in_features != in_) {
    throw std::invalid_argument("Linear: expected " + std::to_string(in_) + " inputs, got " +
                                std::to_string(in_features));
  }
  return out_;
}

void Linear::forward(const Matrix& x, Matrix& y) {
  x_cache_ = x;
  const std::size_t batch = x.rows();
  y.resize(batch, out_);
  // y = x * W^T; view W as a Matrix without copying is not possible with the
  // span, so multiply manually row by row via gemm on a thin wrapper.
  // We instead compute per-row dot products: this is gemm_nt semantics.
  for (std::size_t r = 0; r < batch; ++r) {
    const float* xr = x.row(r);
    float* yr = y.row(r);
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wr = w_.data() + o * in_;
      float acc = b_[o];
      for (std::size_t i = 0; i < in_; ++i) acc += xr[i] * wr[i];
      yr[o] = acc;
    }
  }
}

void Linear::backward(const Matrix& dy, Matrix& dx) {
  const std::size_t batch = dy.rows();
  // dW += dy^T * x ; db += column sums of dy ; dx = dy * W
  for (std::size_t r = 0; r < batch; ++r) {
    const float* dyr = dy.row(r);
    const float* xr = x_cache_.row(r);
    for (std::size_t o = 0; o < out_; ++o) {
      const float d = dyr[o];
      if (d == 0.0f) continue;
      float* gwr = gw_.data() + o * in_;
      for (std::size_t i = 0; i < in_; ++i) gwr[i] += d * xr[i];
      gb_[o] += d;
    }
  }
  dx.resize(batch, in_);
  for (std::size_t r = 0; r < batch; ++r) {
    const float* dyr = dy.row(r);
    float* dxr = dx.row(r);
    for (std::size_t i = 0; i < in_; ++i) dxr[i] = 0.0f;
    for (std::size_t o = 0; o < out_; ++o) {
      const float d = dyr[o];
      if (d == 0.0f) continue;
      const float* wr = w_.data() + o * in_;
      for (std::size_t i = 0; i < in_; ++i) dxr[i] += d * wr[i];
    }
  }
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

}  // namespace fedsparse::nn
