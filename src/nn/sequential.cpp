#include "nn/sequential.h"

#include <stdexcept>

namespace fedsparse::nn {

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (finalized_) throw std::logic_error("Sequential::add after finalize");
  layers_.push_back(std::move(layer));
}

void Sequential::finalize(util::Rng& rng) {
  if (finalized_) throw std::logic_error("Sequential::finalize called twice");
  if (layers_.empty()) throw std::logic_error("Sequential: no layers");
  // Validate the shape chain and count parameters.
  std::size_t features = in_features_;
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    features = layer->out_features(features);
    total += layer->param_count();
  }
  out_features_ = features;
  dim_ = total;
  weights_.assign(total, 0.0f);
  grads_.assign(total, 0.0f);
  wspan_ = {weights_.data(), weights_.size()};
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const std::size_t n = layer->param_count();
    layer->bind(wspan_.subspan(offset, n), std::span<float>(grads_.data() + offset, n));
    layer->init_params(rng);
    offset += n;
  }
  activations_.resize(layers_.size() + 1);
  finalized_ = true;
}

void Sequential::bind_weights(std::span<float> w) {
  if (!finalized_) throw std::logic_error("Sequential::bind_weights before finalize");
  if (w.size() != dim_) throw std::invalid_argument("bind_weights: dimension mismatch");
  if (w.data() == wspan_.data()) return;  // already bound here
  wspan_ = w;
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const std::size_t n = layer->param_count();
    layer->bind(wspan_.subspan(offset, n), std::span<float>(grads_.data() + offset, n));
    offset += n;
  }
  // The owned vector is dead weight from now on; a per-thread workspace keeps
  // only grads + activations resident.
  weights_.clear();
  weights_.shrink_to_fit();
}

void Sequential::set_weights(std::span<const float> w) {
  if (w.size() != wspan_.size()) {
    throw std::invalid_argument("set_weights: dimension mismatch");
  }
  std::copy(w.begin(), w.end(), wspan_.begin());
}

void Sequential::zero_grad() noexcept { tensor::zero({grads_.data(), grads_.size()}); }

Matrix Sequential::run_forward(const Matrix& x, bool for_grad) {
  if (!finalized_) throw std::logic_error("Sequential: forward before finalize");
  if (x.cols() != in_features_) {
    throw std::invalid_argument("Sequential: input has " + std::to_string(x.cols()) +
                                " features, model expects " + std::to_string(in_features_));
  }
  activations_[0] = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->set_grad_enabled(for_grad);
    layers_[i]->forward(activations_[i], activations_[i + 1]);
  }
  return activations_.back();
}

double Sequential::forward_loss_grad(const Matrix& x, std::span<const int> labels) {
  const Matrix logits = run_forward(x, /*for_grad=*/true);
  Matrix grad_flow;
  const double loss = SoftmaxCrossEntropy::loss_and_grad(logits, labels, grad_flow);
  Matrix next;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward(grad_flow, next);
    std::swap(grad_flow, next);
  }
  return loss;
}

double Sequential::forward_loss(const Matrix& x, std::span<const int> labels) {
  const Matrix logits = run_forward(x, /*for_grad=*/false);
  return SoftmaxCrossEntropy::loss_only(logits, labels);
}

Matrix Sequential::predict(const Matrix& x) { return run_forward(x, /*for_grad=*/false); }

double Sequential::accuracy(const Matrix& x, std::span<const int> labels) {
  const Matrix logits = run_forward(x, /*for_grad=*/false);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.row(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (static_cast<int>(best) == labels[r]) ++correct;
  }
  return logits.rows() ? static_cast<double>(correct) / static_cast<double>(logits.rows()) : 0.0;
}

void Sequential::sgd_step(float lr) noexcept {
  for (std::size_t i = 0; i < wspan_.size(); ++i) wspan_[i] -= lr * grads_[i];
}

std::string Sequential::describe() const {
  std::string out = "Sequential[in=" + std::to_string(in_features_) + "]";
  for (const auto& layer : layers_) out += " -> " + layer->name();
  out += " (D=" + std::to_string(dim()) + ")";
  return out;
}

}  // namespace fedsparse::nn
