#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsparse::nn {

namespace {
// log(sum exp(row - max)) + max, returning also softmax into `out` if non-null.
double row_log_sum_exp(const float* row, std::size_t n, float* softmax_out) {
  float mx = row[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::exp(static_cast<double>(row[i]) - mx);
  if (softmax_out != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      softmax_out[i] = static_cast<float>(std::exp(static_cast<double>(row[i]) - mx) / sum);
    }
  }
  return std::log(sum) + mx;
}
}  // namespace

double SoftmaxCrossEntropy::loss_and_grad(const Matrix& logits, std::span<const int> labels,
                                          Matrix& dlogits) {
  const std::size_t batch = logits.rows(), classes = logits.cols();
  if (labels.size() != batch) throw std::invalid_argument("loss_and_grad: label count mismatch");
  // reshape, not resize: row_log_sum_exp writes the full softmax row before
  // the in-place (softmax - onehot)/batch conversion, so no zero-fill needed.
  dlogits.reshape(batch, classes);
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const int label = labels[r];
    if (label < 0 || static_cast<std::size_t>(label) >= classes) {
      throw std::invalid_argument("loss_and_grad: label out of range");
    }
    float* drow = dlogits.row(r);
    const double lse = row_log_sum_exp(logits.row(r), classes, drow);
    total += lse - logits.at(r, static_cast<std::size_t>(label));
    // drow currently holds softmax; convert to (softmax - onehot)/batch.
    drow[label] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) drow[c] *= inv_batch;
  }
  return total / static_cast<double>(batch);
}

double SoftmaxCrossEntropy::loss_only(const Matrix& logits, std::span<const int> labels) {
  const std::size_t batch = logits.rows(), classes = logits.cols();
  if (labels.size() != batch) throw std::invalid_argument("loss_only: label count mismatch");
  double total = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    const int label = labels[r];
    if (label < 0 || static_cast<std::size_t>(label) >= classes) {
      throw std::invalid_argument("loss_only: label out of range");
    }
    const double lse = row_log_sum_exp(logits.row(r), classes, nullptr);
    total += lse - logits.at(r, static_cast<std::size_t>(label));
  }
  return total / static_cast<double>(batch);
}

void SoftmaxCrossEntropy::softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    row_log_sum_exp(m.row(r), m.cols(), m.row(r));
  }
}

}  // namespace fedsparse::nn
