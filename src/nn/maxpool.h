// 2D max pooling (window == stride, the common non-overlapping case).
#pragma once

#include <cstdint>

#include "nn/layer.h"

namespace fedsparse::nn {

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::size_t channels, std::size_t height, std::size_t width, std::size_t window = 2);

  std::size_t out_features(std::size_t in_features) const override;
  void forward(const Matrix& x, Matrix& y) override;
  void backward(const Matrix& dy, Matrix& dx) override;
  std::string name() const override;

  std::size_t out_height() const noexcept { return height_ / window_; }
  std::size_t out_width() const noexcept { return width_ / window_; }

 private:
  std::size_t channels_;
  std::size_t height_;
  std::size_t width_;
  std::size_t window_;
  // argmax_[sample][output element] = flat input index of the max.
  std::vector<std::vector<std::uint32_t>> argmax_;
};

}  // namespace fedsparse::nn
