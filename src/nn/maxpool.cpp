#include "nn/maxpool.h"

#include <limits>
#include <stdexcept>

namespace fedsparse::nn {

MaxPool2d::MaxPool2d(std::size_t channels, std::size_t height, std::size_t width,
                     std::size_t window)
    : channels_(channels), height_(height), width_(width), window_(window) {
  if (window == 0 || height % window != 0 || width % window != 0) {
    throw std::invalid_argument("MaxPool2d: window must evenly divide the spatial dims");
  }
}

std::size_t MaxPool2d::out_features(std::size_t in_features) const {
  if (in_features != channels_ * height_ * width_) {
    throw std::invalid_argument("MaxPool2d: input feature mismatch");
  }
  return channels_ * out_height() * out_width();
}

void MaxPool2d::forward(const Matrix& x, Matrix& y) {
  const std::size_t batch = x.rows();
  const std::size_t oh = out_height(), ow = out_width();
  y.reshape(batch, channels_ * oh * ow);  // every output is written below
  argmax_.assign(batch, {});
  for (std::size_t s = 0; s < batch; ++s) {
    const float* in = x.row(s);
    float* out = y.row(s);
    auto& amax = argmax_[s];
    amax.resize(channels_ * oh * ow);
    std::size_t oidx = 0;
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* chan = in + c * height_ * width_;
      const std::size_t chan_base = c * height_ * width_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t wy = 0; wy < window_; ++wy) {
            const std::size_t iy = oy * window_ + wy;
            for (std::size_t wx = 0; wx < window_; ++wx) {
              const std::size_t ix = ox * window_ + wx;
              const float v = chan[iy * width_ + ix];
              if (v > best) {
                best = v;
                best_idx = chan_base + iy * width_ + ix;
              }
            }
          }
          out[oidx] = best;
          amax[oidx] = static_cast<std::uint32_t>(best_idx);
        }
      }
    }
  }
}

void MaxPool2d::backward(const Matrix& dy, Matrix& dx) {
  const std::size_t batch = dy.rows();
  // reshape + one explicit clear: resize() would zero-fill and then the
  // tensor::zero below cleared a second time.
  dx.reshape(batch, channels_ * height_ * width_);
  tensor::zero(dx.flat());
  for (std::size_t s = 0; s < batch; ++s) {
    const float* dyr = dy.row(s);
    float* dxr = dx.row(s);
    const auto& amax = argmax_[s];
    for (std::size_t i = 0; i < amax.size(); ++i) dxr[amax[i]] += dyr[i];
  }
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(window_) + "x" + std::to_string(window_) + ")";
}

}  // namespace fedsparse::nn
