#include "fl/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.h"

namespace fedsparse::fl {

bool NetworkConfig::trivial() const noexcept {
  if (rate_jitter_sigma != 0.0 || p_drop != 0.0) return false;
  for (const auto& p : profiles) {
    if (!p.is_default()) return false;
  }
  return true;
}

NetworkModel::NetworkModel(TimingModel nominal, NetworkConfig cfg, std::size_t num_clients,
                           std::uint64_t seed)
    : nominal_(nominal), cfg_(std::move(cfg)), n_(num_clients), rng_(seed ^ 0x4E7F10CULL) {
  if (!cfg_.profiles.empty() && cfg_.profiles.size() != n_) {
    throw std::invalid_argument("NetworkModel: profiles must be empty or one per client");
  }
  for (const auto& p : cfg_.profiles) {
    if (p.uplink_rate <= 0.0 || p.downlink_rate <= 0.0 || p.compute_multiplier <= 0.0) {
      throw std::invalid_argument("NetworkModel: profile rates must be positive");
    }
  }
  if (cfg_.rate_jitter_sigma < 0.0) {
    throw std::invalid_argument("NetworkModel: rate_jitter_sigma must be >= 0");
  }
  if (cfg_.p_drop < 0.0 || cfg_.p_drop > 1.0 || cfg_.p_recover < 0.0 || cfg_.p_recover > 1.0) {
    throw std::invalid_argument("NetworkModel: Markov probabilities must be in [0, 1]");
  }
  if (cfg_.p_drop > 0.0 && cfg_.p_recover == 0.0) {
    throw std::invalid_argument("NetworkModel: p_recover = 0 with churn strands every client");
  }
  heterogeneous_ = !cfg_.trivial();
  if (cfg_.profiles.empty()) cfg_.profiles.assign(n_, ClientProfile{});
  realized_ = cfg_.profiles;

  // Initial availability from the stationary distribution, so the first
  // rounds behave like the long-run chain instead of starting all-on.
  on_.assign(n_, 1);
  if (cfg_.p_drop > 0.0) {
    const double pi_on = cfg_.p_recover / (cfg_.p_drop + cfg_.p_recover);
    for (auto& s : on_) s = rng_.bernoulli(pi_on) ? 1 : 0;
  }
  rebuild_availability_lists();
}

void NetworkModel::rebuild_availability_lists() {
  online_ids_.clear();
  offline_ids_.clear();
  online_ids_.reserve(n_);
  if (!has_churn()) {
    // Identity list, built once: without churn every client is always on and
    // begin_round never has to touch the lists again.
    for (std::size_t i = 0; i < n_; ++i) online_ids_.push_back(i);
    return;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    if (on_[i]) {
      online_ids_.push_back(i);
    } else {
      offline_ids_.push_back(i);
    }
  }
}

void NetworkModel::begin_round(std::size_t round) {
  (void)round;
  if (!heterogeneous_) return;
  // Telemetry: availability before this round's transitions; churn flips are
  // counted against it below. No-ops (and no registration cost beyond the
  // first call) while telemetry is off.
  static const util::Gauge g_online("net.online_clients");
  static const util::Counter c_churn("net.churn_transitions");
  std::size_t churn_flips = 0;
  // One sequential pass keeps the fluctuation stream independent of thread
  // count and participant order. Draw order per client: jitter (up, down),
  // then the availability transition.
  const bool jitter = cfg_.rate_jitter_sigma > 0.0;
  const bool churn = cfg_.p_drop > 0.0;
  if (!jitter && !churn) return;
  if (churn) {
    online_ids_.clear();
    offline_ids_.clear();
  }
  for (std::size_t i = 0; i < n_; ++i) {
    if (jitter) {
      realized_[i].uplink_rate =
          cfg_.profiles[i].uplink_rate * std::exp(rng_.normal(0.0, cfg_.rate_jitter_sigma));
      realized_[i].downlink_rate =
          cfg_.profiles[i].downlink_rate * std::exp(rng_.normal(0.0, cfg_.rate_jitter_sigma));
    }
    if (churn) {
      const std::uint8_t was = on_[i];
      on_[i] = on_[i] ? (rng_.bernoulli(cfg_.p_drop) ? 0 : 1)
                      : (rng_.bernoulli(cfg_.p_recover) ? 1 : 0);
      if (on_[i] != was) ++churn_flips;
      // Classify in the pass that already holds the chain state: the
      // simulation's per-round scan becomes O(touched clients), not O(N).
      if (on_[i]) {
        online_ids_.push_back(i);
      } else {
        offline_ids_.push_back(i);
      }
    }
  }
  if (churn_flips > 0) c_churn.add(churn_flips);
  if (churn) g_online.set(static_cast<double>(online_ids_.size()));
}

bool NetworkModel::available(std::size_t i) const { return on_.empty() || on_[i] != 0; }

double NetworkModel::uplink_rate(std::size_t i) const { return realized_[i].uplink_rate; }

double NetworkModel::downlink_rate(std::size_t i) const { return realized_[i].downlink_rate; }

double NetworkModel::compute_time(std::size_t i) const {
  return nominal_.compute_time * realized_[i].compute_multiplier;
}

double NetworkModel::uplink_time(std::size_t i, double values) const {
  return nominal_.comm_part(values, 0.0) / realized_[i].uplink_rate;
}

double NetworkModel::downlink_time(std::size_t i, double values) const {
  return nominal_.comm_part(0.0, values) / realized_[i].downlink_rate;
}

RoundTiming NetworkModel::round_time(std::span<const std::size_t> ids,
                                     std::span<const double> uplink_values_per_slot,
                                     double legacy_uplink_values,
                                     double downlink_values) const {
  RoundTiming out;
  if (ids.empty()) {
    // Nobody participated: the server idles for one nominal compute round.
    out.time = nominal_.compute_time;
    return out;
  }
  if (!heterogeneous_) {
    // Homogeneous fast path — the exact legacy expression, so traces with
    // all-default profiles stay byte-identical to the pre-subsystem engine.
    // No straggler is reported: identical clients with (near-)identical
    // payloads would tie, and naming the tie-break winner reads as a device
    // problem that does not exist.
    out.time = nominal_.round_time(legacy_uplink_values, downlink_values);
    return out;
  }
  // Straggler-correct: the round ends when the last participant finishes its
  // compute + its own upload over its own link, plus the broadcast reaching
  // the slowest participating downlink.
  double worst = -1.0, best = std::numeric_limits<double>::infinity();
  double slowest_down = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < ids.size(); ++s) {
    const std::size_t i = ids[s];
    const double t = compute_time(i) + uplink_time(i, uplink_values_per_slot[s]);
    if (t > worst) {
      worst = t;
      out.slowest_client = static_cast<std::int64_t>(i);
    }
    best = std::min(best, t);
    slowest_down = std::min(slowest_down, realized_[i].downlink_rate);
  }
  // When several participants all finished at the same instant nobody
  // straggled (e.g. identical non-default profiles): report none rather
  // than the tie-break winner. Ties only among the slowest group still name
  // one of the binding clients, and a lone participant genuinely bound the
  // round.
  if (ids.size() > 1 && worst == best) out.slowest_client = -1;
  out.time = worst + nominal_.comm_part(0.0, downlink_values) / slowest_down;
  return out;
}

double NetworkModel::broadcast_time(std::span<const std::size_t> ids, double values) const {
  if (!heterogeneous_ || ids.empty()) return nominal_.comm_part(0.0, values);
  double slowest_down = std::numeric_limits<double>::infinity();
  for (const std::size_t i : ids) {
    slowest_down = std::min(slowest_down, realized_[i].downlink_rate);
  }
  return nominal_.comm_part(0.0, values) / slowest_down;
}

double NetworkModel::theta(double k, std::span<const std::size_t> ids) const {
  if (!heterogeneous_ || ids.empty()) return nominal_.theta(k);
  double worst = 0.0;
  double slowest_down = std::numeric_limits<double>::infinity();
  for (const std::size_t i : ids) {
    worst = std::max(worst, compute_time(i) + uplink_time(i, 2.0 * k));
    slowest_down = std::min(slowest_down, realized_[i].downlink_rate);
  }
  return worst + nominal_.comm_part(0.0, 2.0 * k) / slowest_down;
}

double NetworkModel::max_compute_multiplier(std::span<const std::size_t> ids) const {
  double worst = 0.0;
  for (const std::size_t i : ids) {
    worst = std::max(worst, realized_[i].compute_multiplier);
  }
  return worst;
}

// ---------------------------------------------------------------- scenarios

std::vector<std::string> scenario_names() {
  return {"uniform",     "bimodal",    "longtail_mobile", "metered_wan",
          "churn_heavy", "faulty_wan", "byzantine_mix"};
}

Scenario make_scenario(const std::string& name, std::size_t n, std::uint64_t seed) {
  Scenario s;
  s.name = name;
  util::Rng rng(seed ^ 0x5CE7A210ULL);
  if (name == "uniform") {
    s.description = "homogeneous clients (the paper's Section V model)";
    // Empty profiles: NetworkModel reduces to TimingModel bit-for-bit.
  } else if (name == "bimodal") {
    s.description = "3/4 fast fiber clients, 1/4 slow DSL stragglers";
    s.network.profiles.assign(n, ClientProfile{});
    // Deterministic slow-client placement: a seeded shuffle of client ids so
    // the slow quarter is not correlated with the dataset's client order.
    std::vector<std::size_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i;
    rng.shuffle(ids);
    const std::size_t slow = std::max<std::size_t>(1, n / 4);
    for (std::size_t j = 0; j < slow && j < n; ++j) {
      auto& p = s.network.profiles[ids[j]];
      p.uplink_rate = 0.1;       // 10x slower uplink dominates τ_m
      p.downlink_rate = 0.5;
      p.compute_multiplier = 2.0;
    }
  } else if (name == "longtail_mobile") {
    s.description = "log-normal mobile links with jitter and on/off churn";
    s.network.profiles.resize(n);
    for (auto& p : s.network.profiles) {
      // Heavy-tailed link quality: median ~0.5x nominal, occasional ~0.05x.
      p.uplink_rate = 0.5 * std::exp(rng.normal(0.0, 0.8));
      p.downlink_rate = 0.7 * std::exp(rng.normal(0.0, 0.5));
      p.compute_multiplier = std::exp(rng.normal(0.0, 0.4));
    }
    s.network.rate_jitter_sigma = 0.3;
    s.network.p_drop = 0.05;
    s.network.p_recover = 0.5;
  } else if (name == "metered_wan") {
    s.description = "uniform half-rate WAN where every transmitted value costs money";
    s.network.profiles.assign(n, ClientProfile{0.5, 0.5, 1.0});
    s.money_per_value = 0.002;
    s.weight_money = 1.0;
  } else if (name == "churn_heavy") {
    // The SparsyFed cross-device regime the tiered accumulators target: a
    // long-tail link population where most clients are offline in any given
    // round (stationary availability = p_recover/(p_drop+p_recover) ~ 0.27)
    // and sit on accumulated-but-unflushed gradient until they rejoin.
    s.description = "long-tail links with aggressive on/off churn; most clients idle per round";
    s.network.profiles.resize(n);
    for (auto& p : s.network.profiles) {
      p.uplink_rate = 0.4 * std::exp(rng.normal(0.0, 0.9));
      p.downlink_rate = 0.6 * std::exp(rng.normal(0.0, 0.5));
      p.compute_multiplier = std::exp(rng.normal(0.0, 0.5));
    }
    s.network.rate_jitter_sigma = 0.4;
    s.network.p_drop = 0.4;
    s.network.p_recover = 0.15;
  } else if (name == "faulty_wan") {
    // The metered-WAN link shape under an unreliable transport: one upload
    // in twenty is lost in transit and one in a hundred arrives tampered.
    // apply_scenario turns the server-side screening stage on with it.
    s.description = "half-rate WAN with 5% upload drops and 1% payload corruption";
    s.network.profiles.assign(n, ClientProfile{0.5, 0.5, 1.0});
    s.money_per_value = 0.002;
    s.weight_money = 1.0;
    s.faults.drop_prob = 0.05;
    s.faults.corrupt_prob = 0.01;
  } else if (name == "byzantine_mix") {
    // Long-tail mobile links carrying a colluding Byzantine cohort: ~20% of
    // clients sign-flip their sparsified uploads every round (finite values,
    // so norm screening alone cannot catch them). The scenario pairs the
    // attack with the trimmed-mean robust reduce; apply_scenario carries the
    // robust config into the SimulationConfig alongside the screen.
    s.description = "long-tail mobile links with a 20% sign-flip cohort and trimmed-mean defense";
    s.network.profiles.resize(n);
    for (auto& p : s.network.profiles) {
      p.uplink_rate = 0.5 * std::exp(rng.normal(0.0, 0.8));
      p.downlink_rate = 0.7 * std::exp(rng.normal(0.0, 0.5));
      p.compute_multiplier = std::exp(rng.normal(0.0, 0.4));
    }
    s.network.rate_jitter_sigma = 0.3;
    s.faults.adversary.attack = AttackKind::kSignFlip;
    s.faults.adversary.byzantine_fraction = 0.2;
    s.faults.adversary.cohort_seed = 77;
    s.robust.enabled = true;
    s.robust.kind = sparsify::RobustKind::kTrimmedMean;
    s.robust.trim_fraction = 0.25;
  } else {
    throw std::invalid_argument("make_scenario: unknown scenario '" + name +
                                "' (expected uniform|bimodal|longtail_mobile|metered_wan|"
                                "churn_heavy|faulty_wan|byzantine_mix)");
  }
  return s;
}

}  // namespace fedsparse::fl
