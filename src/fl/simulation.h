// The federated-learning simulation loop (Algorithm 1 + Fig. 3 of the paper).
//
// One Simulation wires together: N clients (local non-i.i.d. data and an
// accumulated gradient each), a sparsification Method (FAB-top-k or a
// baseline), a KController (fixed k, Algorithm 2/3, or a baseline), the
// normalized TimingModel, and the derivative-sign probe protocol of
// Section IV-E. It records everything the paper's figures plot.
//
// Round engine: the paper's synchronized methods keep every client at the
// same global weights w(m) by construction, so the engine stores ONE shared
// weight vector plus a pool of per-thread model workspaces (activations +
// gradient scratch; see nn::Sequential::bind_weights) that round tasks
// borrow by thread slot. The broadcast update is applied once in O(k)
// instead of once per client, and resident memory is O(D + n·D_accum) — no
// per-client model replicas. FedAvg-style methods, whose local weights
// genuinely diverge between aggregations, give each client its own weight
// vector consumed through the same workspace API; ReplicaMode::kPerReplica
// forces that layout for synchronized methods too, as the bitwise-equivalent
// reference engine used by tests and benchmarks.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/event_timeline.h"
#include "fl/faults.h"
#include "fl/metrics.h"
#include "fl/network.h"
#include "fl/resource.h"
#include "fl/timing.h"
#include "fl/trace.h"
#include "nn/models.h"
#include "online/controller.h"
#include "sparsify/method.h"
#include "util/thread_pool.h"

namespace fedsparse::fl {

class RoundRecorder;

/// Weight layout for synchronized (non-FedAvg) methods.
enum class ReplicaMode {
  /// One shared global weight vector; the update is applied once. Default.
  kShared,
  /// Every client owns a full weight vector and the identical update is
  /// applied n times — the reference engine, byte-identical to kShared,
  /// retained for equivalence tests and the round-scaling benchmark.
  kPerReplica,
};

/// How the server folds client uploads into global updates.
enum class AggregationMode {
  /// Algorithm 1's barrier: every sampled participant's upload is awaited and
  /// folded together; τ_m pays the slowest participant. The default, and the
  /// degenerate schedule of the event timeline (flush after the last arrival).
  kSynchronized,
  /// Buffered asynchrony (FedBuff-style): the server folds the first M
  /// arrivals of the round into the flush; later arrivals are buffered and
  /// join the NEXT flush with a staleness discount on their data weight.
  /// τ_m pays only the arrivals it waited for, which is where the wall-clock
  /// win over the barrier comes from under long-tail stragglers. With
  /// M = 0 (take everything) and no event triggering the flush IS the
  /// barrier: traces are byte-identical to kSynchronized (pinned by
  /// tests/async_engine_test.cpp).
  kBufferedAsync,
};

/// Knobs of AggregationMode::kBufferedAsync (ignored under kSynchronized).
struct AsyncConfig {
  /// Flush after this many arrivals per round; later arrivals defer to the
  /// next flush. 0 = accept every arrival (the degenerate barrier).
  std::size_t buffer_size = 0;

  /// λ of the staleness discount 1/(1 + λ·s): a contribution that waited s
  /// flushes in the buffer enters the aggregation with its data weight scaled
  /// down by that factor (then renormalized over the flush — see
  /// staleness_weighting). 0 weights stale and fresh uploads equally.
  double staleness_lambda = 0.25;

  /// Event-triggered uploads: an online client that was NOT sampled this
  /// round volunteers an upload when its accumulator mass clears the
  /// method's selection threshold — max_c chunk_max[c] >= trigger_scale ×
  /// upload_threshold_hint(i, k) — i.e. it is already holding entries the
  /// server would have selected. Triggered clients compute and upload
  /// exactly like sampled ones (fresh, staleness 0). 0 disables; requires
  /// tiered accumulators for the chunk summaries.
  double trigger_scale = 0.0;
};

/// Folds the staleness discount 1/(1 + λ·staleness[s]) into flush data
/// weights and renormalizes so they sum to 1 again (mass conservation: the
/// aggregate stays a convex combination of client values). An all-zero
/// staleness vector returns the weights bitwise unchanged — the ×1.0 path is
/// skipped entirely — which is what pins async ≡ sync at zero staleness.
/// Exposed for the async invariant tests.
void staleness_weighting(std::vector<double>& weights, std::span<const std::size_t> staleness,
                         double lambda);

struct SimulationConfig {
  float lr = 0.01f;          // η (paper's setting)
  std::size_t batch = 32;    // minibatch size (paper's setting)
  std::size_t max_rounds = 1000;
  double max_time = std::numeric_limits<double>::infinity();  // normalized
  double target_loss = 0.0;  // stop when global loss <= target (0 = never)

  double comm_time = 10.0;   // β
  double compute_time = 1.0;

  std::size_t eval_every = 10;           // global loss/accuracy cadence
  std::size_t eval_samples_per_client = 64;  // 0 = full local datasets
  std::size_t eval_test_samples = 512;       // 0 = full test set

  bool stochastic_rounding = true;  // Definition 2 (false: nearest integer)
  /// Charge the k'-probe's extra downlink (the paper overlaps it with the
  /// next round's computation and does not charge it; kept as an ablation).
  bool charge_probe_overhead = false;

  /// Fig. 1 support: once the global loss reaches `switch_at_loss`, the
  /// controller is replaced by FixedK(switch_to_k).
  double switch_at_loss = 0.0;
  double switch_to_k = 0.0;

  // --- extensions beyond the paper's evaluation (defaults disable them) ---

  /// Composite resource objective (paper Sections I/VI: energy, money).
  /// Defaults reduce to the pure training-time objective.
  double energy_per_compute = 1.0;
  double energy_per_value = 0.0;
  double money_per_value = 0.0;
  double weight_time = 1.0;
  double weight_energy = 0.0;
  double weight_money = 0.0;

  /// Heterogeneous client resources (paper future work): per-client compute
  /// time multipliers ~ exp(N(0, compute_time_spread)), folded into the
  /// network model's client profiles. 0 = homogeneous.
  double compute_time_spread = 0.0;

  /// Heterogeneous network & device model (fl/network.h): per-client
  /// uplink/downlink/compute profiles, per-round rate jitter, and Markov
  /// on/off availability. A trivial config (the default) reproduces the
  /// homogeneous TimingModel path bit-for-bit; a non-trivial one routes
  /// round timing through the straggler formula
  /// τ_m = max_i(compute_i + uplink_i(2·|J_i|)) + downlink(broadcast) and
  /// lets offline clients skip server rounds while they keep accumulating
  /// local gradients. Use apply_scenario() for the named presets.
  NetworkConfig network;

  /// Partial participation (paper future work): fraction of clients sampled
  /// uniformly each round. Non-participants still receive the broadcast
  /// update so weights remain synchronized.
  double participation = 1.0;

  /// Hand the methods each participant's accumulator chunk summaries so the
  /// per-client top-k scans prune clean/quiet chunks (O(touched) instead of
  /// O(D) per client). Selection outcomes are bitwise identical either way —
  /// tests/engine_test.cpp pins dense ≡ tiered traces — so false exists only
  /// as the reference side of that equivalence and for A/B timing.
  bool tiered_accumulators = true;

  /// Shared-store engine (default) or per-replica reference engine.
  ReplicaMode replica_mode = ReplicaMode::kShared;

  /// Sharded round engine (sparsify/shard_engine.h): partition participants
  /// into per-shard fleets with thread-local accumulator arenas, merge the
  /// per-shard candidate runs by tree reduction. 0 = auto (one shard per
  /// pool slot, capped at 16, when the pool has workers; 1 otherwise).
  /// Round traces are byte-identical at every shard count — pinned by
  /// tests/engine_test.cpp — so this is purely a throughput knob.
  std::size_t shards = 0;

  /// Fuse accumulate → chunk-summarize → threshold-scan into one pass over
  /// each dirty chunk (GradientAccumulator::add_scan): participants with a
  /// valid top-k threshold hint emit their candidate keys during gradient
  /// accumulation, and the method's selection consumes them instead of
  /// re-scanning. Bitwise identical on/off (the fused scan IS the hint
  /// filter's scan); false keeps the separate-pass reference for A/B timing.
  bool fused_prescan = true;

  /// Synchronized barrier (default) or buffered-async flushes. FedAvg-style
  /// methods reject kBufferedAsync (diverging local weights make a buffered
  /// flush of weight vectors meaningless — the constructor throws).
  AggregationMode aggregation = AggregationMode::kSynchronized;
  AsyncConfig async;

  /// Fault injection (fl/faults.h): upload drops, payload corruption,
  /// mid-round crashes, flush timeouts, retry-with-backoff. The default
  /// (trivial) config short-circuits every hook — traces stay byte-identical
  /// to a fault-free build, pinned by tests/fault_test.cpp.
  FaultConfig faults;

  /// Server-side upload screening (sparsify/validate.h), forwarded to the
  /// method. Disabled by default; a disabled screen is a bitwise no-op.
  sparsify::ValidationConfig validation;

  /// Byzantine-resilient aggregation (sparsify/robust.h), forwarded to the
  /// method: coordinate-wise trimmed-mean/median over transmitted
  /// coordinates plus cosine reputation feeding the quarantine machinery.
  /// Disabled by default; the disabled stage is a bitwise no-op.
  sparsify::RobustConfig robust;

  /// Telemetry (util/stats.h + fl/trace.h): per-stage spans, the metrics
  /// registry, and the optional Chrome-trace / metrics-JSONL streams. Off by
  /// default; an off run is byte-identical to one without telemetry compiled
  /// in (pinned by tests/stats_test.cpp), and an on run only reads clocks and
  /// bumps counters — it never perturbs RNG draws or float order.
  TelemetryConfig telemetry;

  std::size_t threads = 0;   // 0 = hardware concurrency
  std::uint64_t seed = 1;
};

/// Installs a named network/device scenario (fl/network.h registry) into a
/// simulation config: the network shape plus the scenario's composite-cost
/// knobs (e.g. metered WAN money weights).
void apply_scenario(const Scenario& s, SimulationConfig& cfg);

struct RoundRecord {
  std::size_t round = 0;     // m (1-based)
  double time = 0.0;         // cumulative normalized time after this round
  double k_continuous = 0.0; // k_m requested by the controller
  std::size_t k_used = 0;    // after stochastic rounding
  double train_loss = 0.0;   // weighted minibatch loss (cheap proxy)
  double global_loss = std::numeric_limits<double>::quiet_NaN();  // eval rounds only
  double accuracy = std::numeric_limits<double>::quiet_NaN();     // eval rounds only
  double uplink_values = 0.0;
  double downlink_values = 0.0;
  std::size_t participants = 0;      // clients in the server round (0: all offline)
  std::int64_t slowest_client = -1;  // straggler that bound τ_m (-1: homogeneous/idle)
  double mean_staleness = 0.0;       // mean flush staleness (0 under the barrier)
  std::size_t max_staleness = 0;     // longest wait folded by this flush
  std::size_t buffered_stale = 0;    // uploads still deferred after this round
  // Fault & defense counters (all zero on a clean round; see fl/faults.h and
  // sparsify/validate.h — surfaced as metrics.csv columns by bench/common.h).
  std::size_t dropped = 0;      // uploads lost: drops + flush timeouts + crashes
  std::size_t corrupted = 0;    // flushed uploads the corruption draw tampered
  std::size_t byzantine = 0;    // flushed uploads from the adversarial cohort
  std::size_t rejected = 0;     // uploads emptied by the screening stage
  std::size_t quarantined = 0;  // uploads dropped from quarantined clients
  std::size_t suspects = 0;     // contributors flagged by the robust stage
  double trust = 1.0;           // robust-stage round trust (damps feedback)
  bool degraded = false;        // too few valid uploads: aggregation skipped
};

struct SimulationResult {
  std::vector<RoundRecord> records;
  std::vector<double> k_sequence;  // continuous k_m per round (Figs. 5–8)
  std::vector<std::size_t> contributed_totals;  // per client, summed over rounds
  /// Realized per-client traffic over the whole run, in timing-model values
  /// (×4 for bytes: one value is a 32-bit float — see fl::values_to_bytes),
  /// plus how many server rounds each client actually joined. Offline or
  /// unsampled rounds charge a client nothing.
  std::vector<double> client_uplink_values;
  std::vector<double> client_downlink_values;
  std::vector<std::size_t> client_rounds_participated;
  std::size_t rounds_run = 0;
  double total_time = 0.0;   // cumulative composite cost (pure time by default)
  double final_loss = std::numeric_limits<double>::quiet_NaN();
  double final_accuracy = std::numeric_limits<double>::quiet_NaN();
  bool reached_target = false;
  std::size_t invalid_probe_rounds = 0;  // rounds where ŝ_m was unavailable

  /// Loss/accuracy series at eval rounds as (time, value) pairs.
  std::vector<std::pair<double, double>> loss_curve() const;
  std::vector<std::pair<double, double>> accuracy_curve() const;

  /// Mean of the second half of the k-sequence — "where the controller
  /// settled", the number scenario comparisons report.
  double tail_k_mean() const;

  /// The client that bound τ_m most often, with the number of rounds it
  /// bound; {-1, 0} when no round named a straggler (homogeneous network).
  std::pair<std::int64_t, std::size_t> modal_straggler() const;
};

class Simulation {
 public:
  /// Takes ownership of the dataset, method and controller. The model
  /// factory is invoked once per *workspace* (pool threads + caller) plus
  /// once for the master weights and once for evaluation — never per client.
  Simulation(SimulationConfig cfg, data::FederatedDataset dataset, nn::ModelFactory factory,
             std::unique_ptr<sparsify::Method> method,
             std::unique_ptr<online::KController> controller);
  ~Simulation();

  SimulationResult run();

  std::size_t dim() const noexcept { return dim_; }
  std::size_t num_clients() const noexcept { return clients_.size(); }
  const TimingModel& timing() const noexcept { return timing_; }
  const NetworkModel& network() const noexcept { return network_; }

  /// The last round's event schedule (transitions, upload arrivals, flush) —
  /// built serially every round in both aggregation modes, so tests can pin
  /// the event order across thread counts.
  const EventTimeline& timeline() const noexcept { return timeline_; }

  /// Uploads currently deferred in the async buffer (0 under kSynchronized
  /// and after every zero-staleness flush) — the async invariant tests drain
  /// this to prove deferred mass is never dropped.
  std::size_t pending_uploads() const noexcept { return pending_ids_.size(); }

  /// The injected fault schedule (trivial unless cfg.faults says otherwise).
  const FaultModel& faults() const noexcept { return fault_model_; }

  /// The faults injected in the last round, in injection order.
  std::span<const FaultEvent> fault_events() const noexcept {
    return {fault_events_.data(), fault_events_.size()};
  }

  /// Attaches a record/replay recorder (fl/replay.h): every non-empty flush
  /// is snapshotted as a ReplayRound. Not owned; nullptr detaches.
  void set_recorder(RoundRecorder* recorder) noexcept { recorder_ = recorder; }

  /// Client i's current weights — for post-run invariant checks (all clients
  /// must be identical after any GS round; Algorithm 1 Lines 13–15). Under
  /// the shared engine every client resolves to the shared store.
  std::span<const float> client_weights(std::size_t i) const;

 private:
  /// Everything one round's stages hand to the next. The lockstep monolith
  /// became this staged pipeline: begin → schedule → compute → server round →
  /// probe → apply → account → record, each stage a method below. `flush`
  /// points at the server round's participant set — part_ids_ under the
  /// barrier, flush_ids_ (accepted arrivals + buffered catch-ups) under
  /// buffered async — and `staleness` is slot-aligned with it (empty = all
  /// fresh).
  struct RoundContext {
    std::size_t m = 0;
    double k_cont = 0.0;
    double probe_k_cont = 0.0;
    std::size_t k_int = 0;
    const std::vector<std::size_t>* flush = nullptr;
    std::span<const std::size_t> staleness;
    double mean_staleness = 0.0;
    std::size_t max_staleness = 0;
    sparsify::RoundOutcome outcome;
    bool want_probe = false;
    sparsify::SparseVector probe_diff;
    ResourceModel round_resource;
    RoundTiming round_timing;
    online::RoundFeedback fb;
    double wall_time = 0.0;
    std::size_t dropped = 0;    // uploads lost to faults this round
    std::size_t corrupted = 0;  // corruption draws that fired on the flush
    std::size_t byzantine = 0;  // flushed uploads from the adversarial cohort
  };

  // --- pipeline stages (one round = one pass through all of them) ----------
  /// Controller k + stochastic rounding; advances the network state.
  void stage_begin(RoundContext& ctx);
  /// Samples participants, runs the async event-trigger scan, builds the
  /// round's event timeline, and resolves the flush set + staleness
  /// (barrier: flush = participants, all fresh).
  void stage_schedule(RoundContext& ctx);
  /// Arms fused prescans and runs local computation across the pool.
  void stage_compute(RoundContext& ctx);
  /// The server round over the flush set (selection + aggregation).
  void stage_server_round(RoundContext& ctx);
  /// The k'_m probe selection (before resets touch the accumulators).
  void stage_probe(RoundContext& ctx);
  /// Applies the global update and consumes transmitted accumulator entries.
  void stage_apply(RoundContext& ctx, SimulationResult& res);
  /// Timing, traffic accounting, probe losses, controller feedback.
  void stage_account(RoundContext& ctx, SimulationResult& res, double& time);
  /// Record + periodic evaluation; returns true when the run should stop.
  bool stage_record(RoundContext& ctx, SimulationResult& res, double time);
  /// Telemetry tail of a round (cfg_.telemetry.enabled only): publishes the
  /// round's gauges/counters/staleness histogram, drains the span sinks, and
  /// streams the Chrome-trace / JSONL files when paths were configured.
  void emit_telemetry(const RoundContext& ctx, const SimulationResult& res, double time);

  void evaluate(RoundRecord& rec);
  std::span<const float> global_weights();
  /// The executing thread's model workspace, rebound to the weights client
  /// `i` should compute against (shared store, or the client's own vector).
  nn::Sequential& bound_workspace(std::size_t i);
  /// Builds the server's view over the participating clients only, with data
  /// weights renormalized over the sample (`selected` indexes clients_) and
  /// the staleness discount folded in when `staleness` is non-empty.
  /// Returns a reference to member scratch reused across rounds.
  const sparsify::RoundInput& make_round_input(std::size_t round,
                                               const std::vector<std::size_t>& selected,
                                               std::span<const std::size_t> staleness = {});
  /// Samples the participating client subset for one round into member
  /// scratch (no per-round allocation once warm): availability filters
  /// first (an offline client cannot be reached), then uniform
  /// partial-participation sampling over the available clients.
  const std::vector<std::size_t>& sample_participants();
  /// Zeroes the consumed accumulator entries of client `i` (participant slot
  /// `s`) according to the outcome's reset encoding.
  void apply_reset(const sparsify::RoundOutcome& outcome, std::size_t i, std::size_t s);

  SimulationConfig cfg_;
  nn::ModelFactory factory_;
  std::unique_ptr<sparsify::Method> method_;
  std::unique_ptr<online::KController> controller_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<double> data_weights_;
  data::Dataset test_set_;
  TimingModel timing_;
  NetworkModel network_;
  ResourceModel resource_;
  Evaluator evaluator_;
  util::ThreadPool pool_;
  util::Rng rng_;
  std::size_t dim_ = 0;
  bool fedavg_style_ = false;       // method lets clients run local SGD
  bool per_client_weights_ = false; // clients own weight vectors (FedAvg or reference engine)

  // The shared global weight store w(m) (synchronized methods, kShared).
  std::vector<float> shared_weights_;
  // Per-thread model workspaces: slot_count() Sequentials whose weight chain
  // is rebound per task; each owns only gradients + activations.
  std::vector<std::unique_ptr<nn::Sequential>> workspaces_;

  // Round scratch, reused across rounds (no steady-state allocation).
  std::vector<float> fedavg_weights_;    // FedAvg weighted-average output
  std::vector<std::int32_t> part_slot_;  // client id -> participant slot (-1 = absent)
  std::vector<std::size_t> part_ids_;    // sampled participant ids
  std::vector<std::size_t> id_scratch_;  // availability filter + Fisher–Yates buffer
  std::vector<std::size_t> compute_ids_; // participants ∪ offline local trainers
  std::vector<double> uplink_slots_;     // per-participant uplink payloads
  std::vector<double> weight_storage_;   // renormalized data weights
  sparsify::RoundInput round_input_;
  bool prescan_round_ = false;           // fused prescan requested this round
  std::vector<double> mb_losses_;
  std::vector<double> probe_prev_, probe_cur_, probe_shift_;
  std::vector<float> shift_saved_;       // shared-store probe shift undo buffer
  bool switched_ = false;

  // Event schedule + buffered-async state (reused across rounds).
  EventTimeline timeline_;
  std::vector<std::size_t> prev_offline_;     // last round's offline set (churn diff)
  std::vector<std::pair<double, std::size_t>> arrival_scratch_;  // (arrival time, id)
  std::vector<std::size_t> triggered_ids_;    // event-triggered uploaders this round
  std::vector<std::size_t> flush_ids_;        // async flush set (sorted)
  std::vector<std::size_t> flush_staleness_;  // slot-aligned with flush_ids_
  std::vector<std::uint8_t> fresh_mask_;      // flush slot uploaded this round
  std::vector<std::size_t> fresh_ids_;        // fresh subset for round timing
  std::vector<double> fresh_uplink_;
  std::vector<std::size_t> accepted_ids_;     // this round's accepted arrivals (sorted)
  std::vector<std::uint8_t> pending_;         // client deferred in the buffer
  std::vector<std::size_t> pending_round_;    // round of FIRST deferral
  std::vector<std::size_t> pending_ids_;      // sorted ids with pending_ set

  // Telemetry state (all dormant unless cfg_.telemetry.enabled).
  std::unique_ptr<ChromeTraceWriter> trace_writer_;
  std::unique_ptr<MetricsJsonlWriter> jsonl_writer_;
  std::vector<util::Span> span_scratch_;  // per-round drain buffer
  bool telemetry_prev_ = false;           // global flag value to restore after run()

  // Fault-injection state (all dormant when fault_model_.trivial()).
  FaultModel fault_model_;
  RoundRecorder* recorder_ = nullptr;
  std::vector<FaultEvent> fault_events_;      // this round's injected faults
  std::vector<std::size_t> fault_strikes_;    // consecutive failed uploads per client
  std::vector<std::size_t> retry_after_;      // round gate: sit out while m <= gate
  std::vector<std::size_t> lost_ids_;         // dropped/timed-out uploaders this round
};

}  // namespace fedsparse::fl
