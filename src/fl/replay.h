// Deterministic record/replay for server rounds.
//
// Every fault report at fleet scale starts as "round 41283 diverged"; this
// harness turns it into a reproducible test case. RoundRecorder snapshots, at
// each flush, exactly what the method consumed — the slot-aligned client
// accumulator vectors (CSR over nonzeros), the staleness-folded data weights,
// the client ids, k, plus the round's EventTimeline and injected fault
// events — and a digest of what the method produced. replay() then re-drives
// sparsify::Method::round from the log alone, under any engine configuration
// (the log is engine-agnostic: sync vs buffered-async, shards 1 vs 8,
// tiered vs dense all reduce to the same RoundInput → RoundOutcome mapping),
// and checks the outcome digests byte-for-byte.
//
// What makes this sound:
//   * the recorded weights are post-staleness-fold, so the async engine's
//     discounting is baked into the log — replay needs no engine;
//   * payload corruption is NOT baked in: the tamper hook is pure in
//     (seed, round, client), so replay reconstructs the FaultModel from the
//     logged config and re-injects identical corruption;
//   * chunk summaries and prescans are omitted — selection is pinned
//     byte-identical with and without them, so dense replay matches;
//   * the digest covers the update payload, the reset lists, and the
//     contributed counts: everything the engine folds back into state.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fl/event_timeline.h"
#include "fl/faults.h"
#include "sparsify/method.h"

namespace fedsparse::fl {

/// One recorded flush: the full method input plus the outcome digest.
struct ReplayRound {
  std::uint32_t round = 0;
  std::uint32_t k = 0;
  std::vector<std::uint32_t> client_ids;
  std::vector<double> data_weights;  // staleness-folded, as the method saw them
  // CSR over slots: slot s's accumulator nonzeros are
  // (vec_indices, vec_values)[vec_offsets[s] .. vec_offsets[s+1]).
  std::vector<std::uint64_t> vec_offsets;
  std::vector<std::int32_t> vec_indices;
  std::vector<float> vec_values;
  std::vector<FaultEvent> faults;
  std::vector<Event> timeline;
  std::uint64_t digest = 0;
};

struct ReplayLog {
  std::uint64_t dim = 0;
  std::uint64_t seed = 0;  // simulation seed (reconstructs the FaultModel)
  std::string method;
  FaultConfig fault_config;  // includes AdversaryConfig (Byzantine cohorts)
  sparsify::ValidationConfig validation;
  sparsify::RobustConfig robust;
  std::vector<ReplayRound> rounds;

  /// Compact binary round-trip (magic + version header; throws on mismatch).
  void save(const std::string& path) const;
  static ReplayLog load(const std::string& path);
};

/// FNV-1a digest over everything a round outcome folds back into state:
/// update entries (or dense payload), reset encoding, contributed counts.
std::uint64_t outcome_digest(const sparsify::RoundOutcome& out);

/// Records rounds as the simulation runs them (Simulation::set_recorder).
class RoundRecorder {
 public:
  RoundRecorder(std::size_t dim, std::string method, std::uint64_t seed,
                const FaultConfig& faults, const sparsify::ValidationConfig& validation,
                const sparsify::RobustConfig& robust = {});

  void record(const sparsify::RoundInput& in, std::size_t k, std::span<const FaultEvent> faults,
              std::span<const Event> timeline, const sparsify::RoundOutcome& out);

  const ReplayLog& log() const noexcept { return log_; }
  ReplayLog take() noexcept { return std::move(log_); }

 private:
  ReplayLog log_;
};

struct ReplayResult {
  std::size_t rounds = 0;
  std::size_t mismatches = 0;  // rounds whose outcome digest diverged
  std::vector<std::uint64_t> digests;
};

/// Re-drives every recorded round through a fresh method instance at the
/// given shard count and compares outcome digests against the log.
ReplayResult replay(const ReplayLog& log, std::size_t shards);

}  // namespace fedsparse::fl
