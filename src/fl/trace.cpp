#include "fl/trace.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace fedsparse::fl {

namespace {

// Compact, locale-independent double formatting for JSON; NaN/Inf (not valid
// JSON numbers) become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kClientOffline: return "client_offline";
    case EventKind::kClientOnline: return "client_online";
    case EventKind::kUploadReady: return "upload_ready";
    case EventKind::kBufferFlush: return "buffer_flush";
    case EventKind::kUploadLost: return "upload_lost";
    case EventKind::kClientCrash: return "client_crash";
  }
  return "?";
}

}  // namespace

std::vector<StageTotal> stage_totals(std::span<const util::Span> spans) {
  std::vector<StageTotal> out;
  for (const util::Span& s : spans) {
    StageTotal* hit = nullptr;
    for (StageTotal& t : out) {
      if (std::strcmp(t.track, s.track) == 0) {
        hit = &t;
        break;
      }
    }
    if (hit == nullptr) {
      out.push_back({s.track, 0.0, 0});
      hit = &out.back();
    }
    hit->total_us += s.dur_us;
    ++hit->count;
  }
  // Name order, so the aggregation is independent of span timing.
  std::sort(out.begin(), out.end(), [](const StageTotal& a, const StageTotal& b) {
    return std::strcmp(a.track, b.track) < 0;
  });
  return out;
}

// ---------------------------------------------------------- Chrome trace ---

ChromeTraceWriter::~ChromeTraceWriter() { close(); }

bool ChromeTraceWriter::open(const std::string& path) {
  close();
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    util::log_warn() << "telemetry: cannot open chrome trace file '" << path << "'";
    return false;
  }
  std::fputs("{\"traceEvents\":[", f_);
  first_event_ = true;
  tracks_.clear();
  return true;
}

std::size_t ChromeTraceWriter::tid_for(const std::string& track) {
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    if (tracks_[t] == track) return t;
  }
  tracks_.push_back(track);
  const std::size_t tid = tracks_.size() - 1;
  // Announce the track the first time it appears, so the viewer labels the
  // row with the stage/shard name instead of a bare tid.
  std::fprintf(f_,
               "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
               "\"args\":{\"name\":\"%s\"}}",
               first_event_ ? "" : ",", tid, json_escape(track).c_str());
  first_event_ = false;
  return tid;
}

void ChromeTraceWriter::write_round(std::size_t round, std::span<const util::Span> spans,
                                    std::span<const Event> timeline) {
  if (f_ == nullptr) return;
  double round_start = 0.0;
  for (const util::Span& s : spans) {
    if (round_start == 0.0 || s.start_us < round_start) round_start = s.start_us;
  }
  for (const util::Span& s : spans) {
    const std::size_t tid = tid_for(s.track);
    std::fprintf(f_,
                 "%s\n{\"name\":\"%s\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":%s,"
                 "\"dur\":%s,\"pid\":1,\"tid\":%zu,\"args\":{\"round\":%zu}}",
                 first_event_ ? "" : ",", json_escape(s.track).c_str(),
                 json_number(s.start_us).c_str(), json_number(s.dur_us).c_str(), tid, round);
    first_event_ = false;
  }
  if (!timeline.empty()) {
    const std::size_t tid = tid_for("timeline");
    for (const Event& e : timeline) {
      // Simulated offsets are not wall time; anchoring them at the round's
      // first span keeps the instants inside the round's lane while args
      // carry the exact simulated value.
      std::fprintf(f_,
                   "%s\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":1,"
                   "\"tid\":%zu,\"args\":{\"round\":%zu,\"client\":%zu,\"sim_time\":%s}}",
                   first_event_ ? "" : ",", event_kind_name(e.kind),
                   json_number(round_start + e.time).c_str(), tid, round, e.client,
                   json_number(e.time).c_str());
      first_event_ = false;
    }
  }
}

void ChromeTraceWriter::close() {
  if (f_ == nullptr) return;
  std::fputs("\n]}\n", f_);
  std::fclose(f_);
  f_ = nullptr;
}

// -------------------------------------------------------- metrics JSONL ---

MetricsJsonlWriter::~MetricsJsonlWriter() { close(); }

bool MetricsJsonlWriter::open(const std::string& path) {
  close();
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    util::log_warn() << "telemetry: cannot open metrics jsonl file '" << path << "'";
    return false;
  }
  return true;
}

void MetricsJsonlWriter::write_round(const Row& row, std::span<const util::Span> spans,
                                     const std::vector<util::MetricSample>& scrape) {
  if (f_ == nullptr) return;
  std::string line = "{";
  const auto field = [&line](const char* key, const std::string& value) {
    if (line.size() > 1) line += ",";
    line += "\"";
    line += key;
    line += "\":";
    line += value;
  };
  field("round", std::to_string(row.round));
  field("time", json_number(row.time));
  field("k_continuous", json_number(row.k_continuous));
  field("k_used", std::to_string(row.k_used));
  field("train_loss", json_number(row.train_loss));
  field("global_loss", json_number(row.global_loss));
  field("uplink_values", json_number(row.uplink_values));
  field("uplink_bytes", json_number(row.uplink_bytes));
  field("downlink_values", json_number(row.downlink_values));
  field("downlink_bytes", json_number(row.downlink_bytes));
  field("participants", std::to_string(row.participants));
  field("online", std::to_string(row.online));
  field("mean_staleness", json_number(row.mean_staleness));
  field("max_staleness", std::to_string(row.max_staleness));
  field("dropped", std::to_string(row.dropped));
  field("corrupted", std::to_string(row.corrupted));
  field("byzantine", std::to_string(row.byzantine));
  field("rejected", std::to_string(row.rejected));
  field("quarantined", std::to_string(row.quarantined));
  field("degraded", row.degraded ? "true" : "false");
  field("suspects", std::to_string(row.suspects));
  field("trust", json_number(row.trust));

  std::string stages = "{";
  for (const StageTotal& t : stage_totals(spans)) {
    if (stages.size() > 1) stages += ",";
    stages += "\"" + json_escape(t.track) + "\":" + json_number(t.total_us);
  }
  stages += "}";
  field("stages_us", stages);

  std::string counters = "{", gauges = "{";
  const auto sub = [](std::string& obj, const std::string& key, const std::string& value) {
    if (obj.size() > 1) obj += ",";
    obj += "\"" + json_escape(key) + "\":" + value;
  };
  for (const util::MetricSample& m : scrape) {
    switch (m.kind) {
      case util::MetricKind::kCounter:
        sub(counters, m.name, json_number(m.value));
        break;
      case util::MetricKind::kGauge:
        sub(gauges, m.name, json_number(m.value));
        break;
      case util::MetricKind::kHistogram:
        sub(counters, m.name, json_number(m.value));
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          const std::string key =
              b < m.bounds.size() ? m.name + ".le_" + json_number(m.bounds[b])
                                  : m.name + ".overflow";
          sub(counters, key, std::to_string(m.buckets[b]));
        }
        break;
    }
  }
  counters += "}";
  gauges += "}";
  field("counters", counters);
  field("gauges", gauges);

  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), f_);
}

void MetricsJsonlWriter::close() {
  if (f_ == nullptr) return;
  std::fclose(f_);
  f_ = nullptr;
}

}  // namespace fedsparse::fl
