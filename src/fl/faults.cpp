#include "fl/faults.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/rng.h"
#include "util/stats.h"

namespace fedsparse::fl {

FaultModel::FaultModel(const FaultConfig& cfg, std::uint64_t sim_seed, std::size_t dim)
    : cfg_(cfg), dim_(dim) {
  std::uint64_t s = cfg.seed != 0 ? cfg.seed : (sim_seed ^ 0xFA017C0DEULL);
  seed_ = util::splitmix64(s);
  std::uint64_t c = cfg.adversary.cohort_seed != 0 ? cfg.adversary.cohort_seed
                                                   : (seed_ ^ 0xB12A57C0C0DEULL);
  cohort_seed_ = util::splitmix64(c);
}

std::uint64_t FaultModel::mix_with(std::uint64_t seed, std::size_t round, std::size_t client,
                                   std::uint64_t salt) {
  // Two SplitMix64 passes over the (seed, round, client, salt) tuple: cheap,
  // stateless, and well-mixed enough that per-salt streams are independent.
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(round) + 1)) ^
                    (0xC2B2AE3D27D4EB4FULL * (static_cast<std::uint64_t>(client) + 1)) ^ salt;
  (void)util::splitmix64(s);
  return util::splitmix64(s);
}

std::uint64_t FaultModel::mix(std::size_t round, std::size_t client, std::uint64_t salt) const {
  return mix_with(seed_, round, client, salt);
}

double FaultModel::draw(std::size_t round, std::size_t client, std::uint64_t salt) const {
  return static_cast<double>(mix(round, client, salt) >> 11) * 0x1.0p-53;
}

bool FaultModel::crashes(std::size_t round, std::size_t client) const {
  return cfg_.crash_prob > 0.0 && draw(round, client, 0x11) < cfg_.crash_prob;
}

bool FaultModel::drops_upload(std::size_t round, std::size_t client) const {
  return cfg_.drop_prob > 0.0 && draw(round, client, 0x22) < cfg_.drop_prob;
}

bool FaultModel::corrupts(std::size_t round, std::size_t client) const {
  return cfg_.corrupt_prob > 0.0 && draw(round, client, 0x33) < cfg_.corrupt_prob;
}

CorruptionMode FaultModel::corruption_mode(std::size_t round, std::size_t client) const {
  double total = 0.0;
  for (const double w : cfg_.corrupt_weights) total += w > 0.0 ? w : 0.0;
  const double u = draw(round, client, 0x44);
  if (total <= 0.0) return static_cast<CorruptionMode>(static_cast<int>(u * 4.0) & 3);
  double acc = 0.0;
  for (int m = 0; m < 4; ++m) {
    acc += cfg_.corrupt_weights[m] > 0.0 ? cfg_.corrupt_weights[m] : 0.0;
    if (u * total < acc) return static_cast<CorruptionMode>(m);
  }
  return CorruptionMode::kMagnitudeBlowup;
}

std::size_t FaultModel::backoff_rounds(std::size_t strikes) const noexcept {
  if (strikes == 0) return 0;
  std::size_t b = cfg_.retry_backoff_base;
  for (std::size_t s = 1; s < strikes && b < cfg_.retry_backoff_max; ++s) b *= 2;
  return b < cfg_.retry_backoff_max ? b : cfg_.retry_backoff_max;
}

void FaultModel::apply(std::size_t round, std::size_t client,
                       sparsify::SparseVector& payload) const {
  if (payload.empty()) return;
  if (!cfg_.adversary.trivial() && byzantine(client)) {
    attack_payload(round, client, payload);
  }
  if (corrupts(round, client)) corrupt_payload(round, client, payload);
}

bool FaultModel::byzantine(std::size_t client) const {
  if (cfg_.adversary.trivial()) return false;
  // Round-independent membership over the SHARED cohort seed: colluding
  // cohorts constructed from the same seed attack through the same clients.
  const double u =
      static_cast<double>(mix_with(cohort_seed_, 0, client, 0x66) >> 11) * 0x1.0p-53;
  return u < cfg_.adversary.byzantine_fraction;
}

void FaultModel::attack_payload(std::size_t round, std::size_t client,
                                sparsify::SparseVector& payload) const {
  if (payload.empty()) return;
  const AdversaryConfig& adv = cfg_.adversary;
  switch (adv.attack) {
    case AttackKind::kNone:
      break;
    case AttackKind::kSignFlip:
      for (auto& e : payload) e.value = -e.value;
      break;
    case AttackKind::kScaleBlowup: {
      const float scale = static_cast<float>(adv.scale);
      for (auto& e : payload) e.value *= scale;
      break;
    }
    case AttackKind::kTargetedPoison: {
      // Redirect the payload's whole mass onto the cohort's shared
      // contiguous coordinate block, at -scale × the payload's mean |value|
      // (round-dependent magnitude, round-independent target). The rewrite
      // keeps indices distinct and in-bounds: structurally valid by
      // construction.
      const std::size_t dim = dim_ > 0 ? dim_ : [&payload] {
        std::size_t hi = 0;
        for (const auto& e : payload) hi = std::max(hi, static_cast<std::size_t>(e.index));
        return hi + 1;
      }();
      double mean_abs = 0.0;
      for (const auto& e : payload) mean_abs += std::abs(static_cast<double>(e.value));
      mean_abs /= static_cast<double>(payload.size());
      const std::size_t base = mix_with(cohort_seed_, 0, 0, 0x77) % dim;
      const std::size_t count = std::min(payload.size(), dim);
      payload.resize(count);
      const float v = static_cast<float>(-adv.scale * mean_abs);
      for (std::size_t t = 0; t < count; ++t) {
        payload[t].index = static_cast<std::int32_t>((base + t) % dim);
        payload[t].value = v;
      }
      break;
    }
    case AttackKind::kColluding: {
      // Shared per-coordinate sign pattern: wherever two colluders' payloads
      // overlap they push the same way, at each client's own mean magnitude
      // (plausible norms, coordinated direction).
      double mean_abs = 0.0;
      for (const auto& e : payload) mean_abs += std::abs(static_cast<double>(e.value));
      mean_abs /= static_cast<double>(payload.size());
      const float mag = static_cast<float>(mean_abs);
      for (auto& e : payload) {
        const bool neg =
            (mix_with(cohort_seed_, 0, static_cast<std::size_t>(e.index), 0x88) & 1) != 0;
        e.value = neg ? -mag : mag;
      }
      break;
    }
  }
}

void FaultModel::corrupt_payload(std::size_t round, std::size_t client,
                                 sparsify::SparseVector& payload) const {
  if (payload.empty()) return;
  const std::uint64_t r = mix(round, client, 0x55);
  auto& entry = payload[r % payload.size()];
  switch (corruption_mode(round, client)) {
    case CorruptionMode::kNaN:
      entry.value = std::numeric_limits<float>::quiet_NaN();
      break;
    case CorruptionMode::kInf:
      entry.value = (r & 0x100) ? std::numeric_limits<float>::infinity()
                                : -std::numeric_limits<float>::infinity();
      break;
    case CorruptionMode::kBitFlip: {
      // Flip one random bit of the entry: low 32 choices hit the value, the
      // rest hit the index — modeling single-event upsets anywhere in the
      // (index, value) pair. Either way the screening stage must catch the
      // structurally broken results (out-of-range / duplicate index, NaN/Inf
      // value) and clipping bounds the finite ones.
      const unsigned bit = static_cast<unsigned>((r >> 32) % 64);
      if (bit < 32) {
        auto bits = std::bit_cast<std::uint32_t>(entry.value);
        bits ^= 1u << bit;
        entry.value = std::bit_cast<float>(bits);
      } else {
        auto bits = static_cast<std::uint32_t>(entry.index);
        bits ^= 1u << (bit - 32);
        entry.index = static_cast<std::int32_t>(bits);
      }
      break;
    }
    case CorruptionMode::kMagnitudeBlowup:
      entry.value *= 1.0e12f;
      break;
  }
}

void publish_fault_event(FaultKind kind) noexcept {
  static const util::Counter c_drop("faults.upload_drop");
  static const util::Counter c_corrupt("faults.payload_corrupt");
  static const util::Counter c_crash("faults.client_crash");
  static const util::Counter c_timeout("faults.flush_timeout");
  static const util::Counter c_adversarial("faults.adversarial_tamper");
  switch (kind) {
    case FaultKind::kUploadDrop: c_drop.add(1); break;
    case FaultKind::kPayloadCorrupt: c_corrupt.add(1); break;
    case FaultKind::kClientCrash: c_crash.add(1); break;
    case FaultKind::kFlushTimeout: c_timeout.add(1); break;
    case FaultKind::kAdversarialTamper: c_adversarial.add(1); break;
  }
}

}  // namespace fedsparse::fl
