#include "fl/faults.h"

#include <bit>
#include <cmath>
#include <limits>

#include "util/rng.h"
#include "util/stats.h"

namespace fedsparse::fl {

FaultModel::FaultModel(const FaultConfig& cfg, std::uint64_t sim_seed) : cfg_(cfg) {
  std::uint64_t s = cfg.seed != 0 ? cfg.seed : (sim_seed ^ 0xFA017C0DEULL);
  seed_ = util::splitmix64(s);
}

std::uint64_t FaultModel::mix(std::size_t round, std::size_t client, std::uint64_t salt) const {
  // Two SplitMix64 passes over the (seed, round, client, salt) tuple: cheap,
  // stateless, and well-mixed enough that per-salt streams are independent.
  std::uint64_t s = seed_ ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(round) + 1)) ^
                    (0xC2B2AE3D27D4EB4FULL * (static_cast<std::uint64_t>(client) + 1)) ^ salt;
  (void)util::splitmix64(s);
  return util::splitmix64(s);
}

double FaultModel::draw(std::size_t round, std::size_t client, std::uint64_t salt) const {
  return static_cast<double>(mix(round, client, salt) >> 11) * 0x1.0p-53;
}

bool FaultModel::crashes(std::size_t round, std::size_t client) const {
  return cfg_.crash_prob > 0.0 && draw(round, client, 0x11) < cfg_.crash_prob;
}

bool FaultModel::drops_upload(std::size_t round, std::size_t client) const {
  return cfg_.drop_prob > 0.0 && draw(round, client, 0x22) < cfg_.drop_prob;
}

bool FaultModel::corrupts(std::size_t round, std::size_t client) const {
  return cfg_.corrupt_prob > 0.0 && draw(round, client, 0x33) < cfg_.corrupt_prob;
}

CorruptionMode FaultModel::corruption_mode(std::size_t round, std::size_t client) const {
  double total = 0.0;
  for (const double w : cfg_.corrupt_weights) total += w > 0.0 ? w : 0.0;
  const double u = draw(round, client, 0x44);
  if (total <= 0.0) return static_cast<CorruptionMode>(static_cast<int>(u * 4.0) & 3);
  double acc = 0.0;
  for (int m = 0; m < 4; ++m) {
    acc += cfg_.corrupt_weights[m] > 0.0 ? cfg_.corrupt_weights[m] : 0.0;
    if (u * total < acc) return static_cast<CorruptionMode>(m);
  }
  return CorruptionMode::kMagnitudeBlowup;
}

std::size_t FaultModel::backoff_rounds(std::size_t strikes) const noexcept {
  if (strikes == 0) return 0;
  std::size_t b = cfg_.retry_backoff_base;
  for (std::size_t s = 1; s < strikes && b < cfg_.retry_backoff_max; ++s) b *= 2;
  return b < cfg_.retry_backoff_max ? b : cfg_.retry_backoff_max;
}

void FaultModel::apply(std::size_t round, std::size_t client,
                       sparsify::SparseVector& payload) const {
  if (payload.empty() || !corrupts(round, client)) return;
  corrupt_payload(round, client, payload);
}

void FaultModel::corrupt_payload(std::size_t round, std::size_t client,
                                 sparsify::SparseVector& payload) const {
  if (payload.empty()) return;
  const std::uint64_t r = mix(round, client, 0x55);
  auto& entry = payload[r % payload.size()];
  switch (corruption_mode(round, client)) {
    case CorruptionMode::kNaN:
      entry.value = std::numeric_limits<float>::quiet_NaN();
      break;
    case CorruptionMode::kInf:
      entry.value = (r & 0x100) ? std::numeric_limits<float>::infinity()
                                : -std::numeric_limits<float>::infinity();
      break;
    case CorruptionMode::kBitFlip: {
      // Flip one random bit of the entry: low 32 choices hit the value, the
      // rest hit the index — modeling single-event upsets anywhere in the
      // (index, value) pair. Either way the screening stage must catch the
      // structurally broken results (out-of-range / duplicate index, NaN/Inf
      // value) and clipping bounds the finite ones.
      const unsigned bit = static_cast<unsigned>((r >> 32) % 64);
      if (bit < 32) {
        auto bits = std::bit_cast<std::uint32_t>(entry.value);
        bits ^= 1u << bit;
        entry.value = std::bit_cast<float>(bits);
      } else {
        auto bits = static_cast<std::uint32_t>(entry.index);
        bits ^= 1u << (bit - 32);
        entry.index = static_cast<std::int32_t>(bits);
      }
      break;
    }
    case CorruptionMode::kMagnitudeBlowup:
      entry.value *= 1.0e12f;
      break;
  }
}

void publish_fault_event(FaultKind kind) noexcept {
  static const util::Counter c_drop("faults.upload_drop");
  static const util::Counter c_corrupt("faults.payload_corrupt");
  static const util::Counter c_crash("faults.client_crash");
  static const util::Counter c_timeout("faults.flush_timeout");
  switch (kind) {
    case FaultKind::kUploadDrop: c_drop.add(1); break;
    case FaultKind::kPayloadCorrupt: c_corrupt.add(1); break;
    case FaultKind::kClientCrash: c_crash.add(1); break;
    case FaultKind::kFlushTimeout: c_timeout.add(1); break;
  }
}

}  // namespace fedsparse::fl
