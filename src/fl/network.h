// Heterogeneous network & device model: per-client rate profiles, rate
// fluctuation, and Markov on/off availability.
//
// The paper's Section V timing model is a single (β, compute) pair — every
// client is identical and a round costs compute + β·(up+down)/(2D). Real
// cross-device deployments are nothing like that: uplinks differ by orders of
// magnitude, rates fluctuate round to round, and devices drop off the network
// entirely. NetworkModel generalizes TimingModel to per-client profiles while
// keeping the homogeneous case *byte-identical* to the legacy path:
//
//  * ClientProfile — uplink/downlink bandwidth multipliers (1 = the nominal β
//    link; 0.1 = ten times slower) and a compute-time multiplier.
//  * Fluctuation — per-round log-normal jitter on both link rates, and a
//    two-state Markov availability chain (on→off with p_drop, off→on with
//    p_recover). Both draw from a dedicated util::Rng stream, sequentially
//    over clients inside begin_round(), so realizations are reproducible and
//    independent of thread count.
//  * Straggler-correct synchronized timing —
//        τ_m = max_{i ∈ participants} (compute_i + uplink_i(2·|J_i|))
//              + downlink_slowest(broadcast payload)
//    replacing the homogeneous 2·max_i|J_i| shortcut: the client that binds
//    the round is the one whose compute PLUS its own payload over its own
//    link finishes last, not necessarily the one with the largest payload.
//
// When every profile is the default and fluctuation is off, round_time()
// delegates to TimingModel::round_time on the method's legacy payload values
// — the exact same floating-point expression as before this subsystem, so
// homogeneous simulation traces stay bit-reproducible (pinned by
// tests/network_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fl/faults.h"
#include "fl/timing.h"
#include "sparsify/robust.h"
#include "util/rng.h"

namespace fedsparse::fl {

/// Static per-client device/link characteristics. Rates are bandwidth
/// multipliers relative to the nominal β link: transmitting V values takes
/// β·V/(2D) / rate. compute_multiplier scales the nominal compute time.
struct ClientProfile {
  double uplink_rate = 1.0;
  double downlink_rate = 1.0;
  double compute_multiplier = 1.0;

  bool is_default() const noexcept {
    return uplink_rate == 1.0 && downlink_rate == 1.0 && compute_multiplier == 1.0;
  }
};

/// Full description of a heterogeneous client population. Default-constructed
/// it describes the paper's homogeneous world (NetworkModel then reduces to
/// TimingModel exactly).
struct NetworkConfig {
  /// One profile per client; empty means "every client is default".
  std::vector<ClientProfile> profiles;

  /// Log-normal per-round jitter on link rates: realized rate =
  /// base · exp(N(0, σ)), redrawn per (client, round). 0 disables.
  double rate_jitter_sigma = 0.0;

  /// Markov availability chain, advanced once per round per client:
  /// P(on→off) = p_drop, P(off→on) = p_recover. Initial states are drawn from
  /// the stationary distribution π_on = p_recover / (p_drop + p_recover).
  /// p_drop = 0 keeps every client always available.
  double p_drop = 0.0;
  double p_recover = 1.0;

  /// True when nothing deviates from the homogeneous model.
  bool trivial() const noexcept;
};

/// What one synchronized round cost and who bound it. slowest_client is -1
/// when no one straggled: homogeneous rounds, rounds with no participants,
/// and rounds where every participant finished at the same instant. Ties
/// within the slowest group alone name its lowest-slot member.
struct RoundTiming {
  double time = 0.0;                 // τ_m
  std::int64_t slowest_client = -1;  // client id of the binding straggler
};

class NetworkModel {
 public:
  /// Homogeneous model over `nominal` (identical to TimingModel semantics).
  NetworkModel() = default;

  /// `cfg.profiles` must be empty or have exactly `num_clients` entries.
  /// `seed` feeds the fluctuation stream (jitter + availability chain).
  NetworkModel(TimingModel nominal, NetworkConfig cfg, std::size_t num_clients,
               std::uint64_t seed);

  std::size_t num_clients() const noexcept { return n_; }
  const TimingModel& nominal() const noexcept { return nominal_; }

  /// False only when profiles/fluctuation all match the homogeneous model;
  /// the false path reproduces TimingModel arithmetic bit-for-bit.
  bool heterogeneous() const noexcept { return heterogeneous_; }
  bool has_churn() const noexcept { return cfg_.p_drop > 0.0; }

  /// Advances the fluctuation state to round m (1-based): redraws jitter
  /// multipliers and steps the availability chain once per client. Rounds
  /// must be visited in order; calling it twice for the same round re-draws.
  void begin_round(std::size_t round);

  /// Availability of client i in the current round.
  bool available(std::size_t i) const;

  /// Clients available / offline this round, ascending ids, maintained
  /// incrementally inside begin_round's per-client transition pass. The
  /// simulation iterates these instead of filtering 0..N-1 itself, so the
  /// per-round cost of availability bookkeeping sits in the one pass that
  /// already touches every chain state — and without churn the online list
  /// is the identity (built once) and offline is empty.
  std::span<const std::size_t> online_ids() const noexcept {
    return {online_ids_.data(), online_ids_.size()};
  }
  std::span<const std::size_t> offline_ids() const noexcept {
    return {offline_ids_.data(), offline_ids_.size()};
  }

  /// Realized (jittered) rates and compute time of client i this round.
  double uplink_rate(std::size_t i) const;
  double downlink_rate(std::size_t i) const;
  double compute_time(std::size_t i) const;

  /// Time for client i to transmit `values` payload values up / down.
  double uplink_time(std::size_t i, double values) const;
  double downlink_time(std::size_t i, double values) const;

  /// τ_m over the participating clients. `uplink_values_per_slot` is aligned
  /// with `ids` (slot s belongs to client ids[s]); `legacy_uplink_values` is
  /// the method's homogeneous accounting (2·max_i|J_i| or D) used verbatim on
  /// the homogeneous fast path. The broadcast term waits on the slowest
  /// participating downlink. Empty `ids` costs nothing (no round happened).
  RoundTiming round_time(std::span<const std::size_t> ids,
                         std::span<const double> uplink_values_per_slot,
                         double legacy_uplink_values, double downlink_values) const;

  /// Time for a broadcast of `values` to reach every participant (the
  /// slowest participating downlink binds it). Homogeneous: the nominal
  /// comm_part.
  double broadcast_time(std::span<const std::size_t> ids, double values) const;

  /// θ(k) analogue: hypothetical k-element bidirectional GS round (every
  /// participant uploads 2k values) over the given participants at the
  /// current realized rates. Matches TimingModel::theta exactly when
  /// homogeneous.
  double theta(double k, std::span<const std::size_t> ids) const;

  /// Largest realized compute multiplier among `ids` (scales per-round
  /// compute-bound resources such as energy_per_compute).
  double max_compute_multiplier(std::span<const std::size_t> ids) const;

 private:
  TimingModel nominal_{};
  NetworkConfig cfg_{};
  std::size_t n_ = 0;
  bool heterogeneous_ = false;
  util::Rng rng_{1};
  void rebuild_availability_lists();

  std::vector<ClientProfile> realized_;  // per-round jittered profiles
  std::vector<std::uint8_t> on_;         // availability states
  std::vector<std::size_t> online_ids_;  // ascending; identity when no churn
  std::vector<std::size_t> offline_ids_;
};

// ---------------------------------------------------------------- scenarios

/// A named preset: network shape plus the composite-resource knobs that give
/// the scenario its objective (e.g. metered WAN charges money per value).
/// Apply to a SimulationConfig with fl::apply_scenario (simulation.h).
struct Scenario {
  std::string name;
  std::string description;
  NetworkConfig network;
  /// Composite-objective overrides; 0 keeps the pure-time objective.
  double money_per_value = 0.0;
  double weight_money = 0.0;
  /// Fault injection (fl/faults.h); trivial by default. apply_scenario also
  /// enables server-side upload screening when this is non-trivial.
  FaultConfig faults;
  /// Robust aggregation (sparsify/robust.h); disabled by default. A scenario
  /// that ships Byzantine adversaries pairs them with a robust reduce here.
  sparsify::RobustConfig robust;
};

/// Registry names: "uniform", "bimodal", "longtail_mobile", "metered_wan",
/// "churn_heavy" (long-tail links, aggressive Markov off-rate — most clients
/// offline per round, the regime the tiered accumulators' dirty-chunk
/// pruning targets), "faulty_wan" (metered WAN links plus upload drops and
/// payload corruption — the fault-injection + screening regime),
/// "byzantine_mix" (long-tail mobile links with a 20% colluding sign-flip
/// cohort, defended by trimmed-mean robust aggregation).
std::vector<std::string> scenario_names();

/// Builds the preset for an n-client population. `seed` shapes the sampled
/// profiles (long-tail draws, bimodal assignment); the same (name, n, seed)
/// always yields the same scenario. Throws std::invalid_argument for unknown
/// names.
Scenario make_scenario(const std::string& name, std::size_t n, std::uint64_t seed = 1);

}  // namespace fedsparse::fl
