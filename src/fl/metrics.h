// Evaluation helpers: global (weighted) training loss, test accuracy, and
// the per-client contribution CDF of Fig. 4 (right).
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/models.h"
#include "util/rng.h"

namespace fedsparse::fl {

/// Owns one model replica used purely for evaluation, so evaluation never
/// perturbs client state (activations, probe caches).
class Evaluator {
 public:
  Evaluator(const nn::ModelFactory& factory, std::uint64_t seed);

  std::size_t dim() const noexcept { return model_->dim(); }
  void set_weights(std::span<const float> w) { model_->set_weights(w); }

  /// Mean loss on (a uniform subsample of) `ds`; max_samples == 0 => all.
  double loss(const data::Dataset& ds, std::size_t max_samples, util::Rng& rng);

  /// Classification accuracy on (a subsample of) `ds`.
  double accuracy(const data::Dataset& ds, std::size_t max_samples, util::Rng& rng);

 private:
  const data::Dataset* subsampled(const data::Dataset& ds, std::size_t max_samples,
                                  util::Rng& rng, data::Dataset& storage) const;

  std::unique_ptr<nn::Sequential> model_;
};

/// Per-client average contributed elements per round, the statistic whose CDF
/// the paper plots in Fig. 4 (right).
std::vector<double> contribution_per_round(const std::vector<std::size_t>& totals,
                                           std::size_t rounds);

/// One timing-model "value" is a 32-bit float (footnote 5): realized bytes on
/// the wire are values × 4.
inline double values_to_bytes(double values) noexcept { return values * 4.0; }

/// Realized per-client traffic summary, one row per client — the columns the
/// scenario sweep emits alongside the paper's fairness CDF.
struct ClientTrafficRow {
  std::size_t client = 0;
  std::size_t rounds_participated = 0;
  double uplink_bytes = 0.0;
  double downlink_bytes = 0.0;
};

/// Builds the traffic table from per-client totals (all three spans must have
/// equal length; they come straight from SimulationResult).
std::vector<ClientTrafficRow> client_traffic_rows(
    const std::vector<double>& uplink_values, const std::vector<double>& downlink_values,
    const std::vector<std::size_t>& rounds_participated);

}  // namespace fedsparse::fl
