// Evaluation helpers: global (weighted) training loss, test accuracy, and
// the per-client contribution CDF of Fig. 4 (right).
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/models.h"
#include "util/rng.h"

namespace fedsparse::fl {

/// Owns one model replica used purely for evaluation, so evaluation never
/// perturbs client state (activations, probe caches).
class Evaluator {
 public:
  Evaluator(const nn::ModelFactory& factory, std::uint64_t seed);

  std::size_t dim() const noexcept { return model_->dim(); }
  void set_weights(std::span<const float> w) { model_->set_weights(w); }

  /// Mean loss on (a uniform subsample of) `ds`; max_samples == 0 => all.
  double loss(const data::Dataset& ds, std::size_t max_samples, util::Rng& rng);

  /// Classification accuracy on (a subsample of) `ds`.
  double accuracy(const data::Dataset& ds, std::size_t max_samples, util::Rng& rng);

 private:
  const data::Dataset* subsampled(const data::Dataset& ds, std::size_t max_samples,
                                  util::Rng& rng, data::Dataset& storage) const;

  std::unique_ptr<nn::Sequential> model_;
};

/// Per-client average contributed elements per round, the statistic whose CDF
/// the paper plots in Fig. 4 (right).
std::vector<double> contribution_per_round(const std::vector<std::size_t>& totals,
                                           std::size_t rounds);

}  // namespace fedsparse::fl
