// Federated client state: local dataset, accumulated gradient, optional local
// weights, and the one-sample probe losses of the derivative-sign estimator
// (Sec. IV-E).
//
// A client does NOT own a model replica. In the paper's synchronized top-k
// methods every client holds the same global weights w(m) by construction, so
// the simulation keeps ONE shared weight vector and a small pool of
// per-thread model workspaces (nn::Sequential instances whose weight chain is
// rebound via bind_weights). Every compute entry point below borrows such a
// workspace, already bound to the weights this client should see: the shared
// store for synchronized methods, or this client's own `local weights` for
// FedAvg-style methods and the per-replica reference engine.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/minibatch.h"
#include "nn/models.h"
#include "sparsify/accumulator.h"
#include "sparsify/sparse_vector.h"
#include "sparsify/topk.h"
#include "util/rng.h"

namespace fedsparse::fl {

class Client {
 public:
  Client(std::size_t id, data::Dataset dataset, std::size_t dim, std::uint64_t seed);

  std::size_t id() const noexcept { return id_; }
  std::size_t num_samples() const noexcept { return dataset_.size(); }
  const data::Dataset& dataset() const noexcept { return dataset_; }
  std::size_t dim() const noexcept { return accumulator_.dim(); }

  // --- local weight ownership ----------------------------------------------

  /// Gives this client its own copy of the weights (FedAvg-style methods,
  /// per-replica reference engine). Shared-store clients never call this and
  /// hold no weight memory at all.
  void allocate_weights(std::span<const float> init);
  bool owns_weights() const noexcept { return !weights_.empty(); }
  std::span<float> weights() noexcept { return {weights_.data(), weights_.size()}; }
  std::span<const float> weights() const noexcept { return {weights_.data(), weights_.size()}; }
  void set_weights(std::span<const float> w);

  /// Applies the broadcast update to the client-owned weights:
  /// w -= lr * dense(update). Only meaningful when owns_weights().
  void apply_sparse_update(const sparsify::SparseVector& update, float lr);
  void apply_dense_update(std::span<const float> update, float lr);

  // --- accumulated gradient ------------------------------------------------

  /// The chunk-tiered accumulated gradient a_i. Round-path consumers read
  /// values AND chunk summaries through it (sparsify::GradientAccumulator)
  /// rather than a raw span, so selection scans can prune clean chunks —
  /// an idle client that missed rounds keeps only its dirty chunks hot.
  /// Mutations (add / reset) go through the same object, keeping the
  /// summaries consistent by construction.
  sparsify::GradientAccumulator& accumulator() noexcept { return accumulator_; }
  const sparsify::GradientAccumulator& accumulator() const noexcept { return accumulator_; }

  // --- round computation (all take a borrowed, already-bound workspace) ----

  /// One local round (Line 4 of Algorithm 1): sample a minibatch at the
  /// current weights w(m−1), compute the gradient, add it to the accumulated
  /// gradient a_i, pick the probe sample h and record f_{i,h}(w(m−1)).
  /// Returns the minibatch training loss.
  double compute_round_gradient(nn::Sequential& model, std::size_t round, std::size_t batch);

  /// FedAvg-style round: compute the minibatch gradient and immediately apply
  /// it to the bound weights (the client's own vector; no accumulator).
  double local_update(nn::Sequential& model, std::size_t round, std::size_t batch, float lr);

  // --- fused accumulate + threshold prescan --------------------------------

  /// Arms the fused single-pass sweep for `round`: the next
  /// compute_round_gradient(round) accumulates via
  /// GradientAccumulator::add_scan, emitting the selection keys of every
  /// entry with |a_ij| >= threshold while the dirty chunks are still hot in
  /// cache, instead of a separate post-accumulate scan. `threshold` is the
  /// method's current top-k hint for this client and `cap` the hint-filter
  /// key budget (sparsify::topk_hint_cap); both are echoed into the view so
  /// the selection can verify it is consuming the scan it would have run.
  void request_prescan(float threshold, std::size_t k, std::size_t cap, std::size_t round);

  /// The armed-and-executed prescan for `round`, as the view
  /// sparsify::select() consumes; a default (invalid) view when no prescan
  /// ran for that round. Valid views stay readable until the next
  /// request_prescan (probe rounds re-read them; the k mismatch makes the
  /// selection ignore them there).
  sparsify::PrescanView prescan_view(std::size_t round) const;

  // --- probe losses (Section IV-E) -----------------------------------------

  /// f_{i,h}(w(m−1)), recorded during compute_round_gradient.
  double probe_loss_prev() const noexcept { return probe_loss_prev_; }

  /// f_{i,h} at the weights the workspace is currently bound to.
  double probe_loss_now(nn::Sequential& model);

  /// f_{i,h}(w'(m)) where w' = bound weights + lr*dense(diff): applies the
  /// delta to the bound weights temporarily, evaluates, and restores them
  /// exactly. Only safe when this client owns the bound weights (the shared
  /// engine shifts its store once centrally instead).
  double probe_loss_shifted(nn::Sequential& model, const sparsify::SparseVector& diff, float lr);

  /// Local loss over (a subsample of) the client's full dataset at the bound
  /// weights; `max_samples == 0` means all samples.
  double full_local_loss(nn::Sequential& model, std::size_t max_samples, util::Rng& rng);

  // --- realized traffic & participation (network-model bookkeeping) --------

  /// Records one server round this client participated in: its own uplink
  /// payload and the broadcast downlink it received, in timing-model values.
  void note_round(double uplink_values, double downlink_values) noexcept {
    ++rounds_participated_;
    uplink_values_total_ += uplink_values;
    downlink_values_total_ += downlink_values;
  }

  /// Records a broadcast this client received without participating (online
  /// but unsampled clients still listen so their weights stay synchronized).
  void note_broadcast(double downlink_values) noexcept {
    downlink_values_total_ += downlink_values;
  }
  std::size_t rounds_participated() const noexcept { return rounds_participated_; }
  double uplink_values_total() const noexcept { return uplink_values_total_; }
  double downlink_values_total() const noexcept { return downlink_values_total_; }

 private:
  std::size_t id_;
  data::Dataset dataset_;
  std::vector<float> weights_;  // empty unless this client owns its weights
  sparsify::GradientAccumulator accumulator_;
  util::Rng rng_;

  // Probe sample h (one row) for the current round.
  tensor::Matrix probe_x_;
  std::vector<int> probe_y_;
  double probe_loss_prev_ = 0.0;

  // Fused-prescan state (see request_prescan). prescan_round_ == 0 means
  // "never armed"; the view is only valid for the round it executed in.
  std::vector<std::uint64_t> prescan_keys_;
  float prescan_threshold_ = 0.0f;
  std::uint32_t prescan_k_ = 0;
  std::size_t prescan_cap_ = 0;
  std::size_t prescan_round_ = 0;
  bool prescan_complete_ = false;
  bool prescan_done_ = false;  // add_scan actually ran for prescan_round_

  // Realized traffic over the run (values; ×4 for bytes).
  std::size_t rounds_participated_ = 0;
  double uplink_values_total_ = 0.0;
  double downlink_values_total_ = 0.0;
};

}  // namespace fedsparse::fl
