// Federated client: local dataset, model replica, accumulated gradient, and
// the one-sample probe losses of the derivative-sign estimator (Sec. IV-E).
#pragma once

#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "data/minibatch.h"
#include "nn/models.h"
#include "sparsify/accumulator.h"
#include "sparsify/sparse_vector.h"
#include "util/rng.h"

namespace fedsparse::fl {

class Client {
 public:
  /// The model is built from `factory` and then overwritten with the server's
  /// initial weights, so all clients start synchronized.
  Client(std::size_t id, data::Dataset dataset, const nn::ModelFactory& factory,
         std::uint64_t seed);

  std::size_t id() const noexcept { return id_; }
  std::size_t num_samples() const noexcept { return dataset_.size(); }
  const data::Dataset& dataset() const noexcept { return dataset_; }

  std::size_t dim() const noexcept { return model_->dim(); }
  std::span<const float> weights() const noexcept { return model_->weights(); }
  void set_weights(std::span<const float> w) { model_->set_weights(w); }

  std::span<const float> accumulated() const noexcept { return accumulator_.value(); }

  /// One local round (Line 4 of Algorithm 1): sample a minibatch at the
  /// current weights w(m−1), compute the gradient, add it to the accumulated
  /// gradient a_i, pick the probe sample h and record f_{i,h}(w(m−1)).
  /// Returns the minibatch training loss.
  double compute_round_gradient(std::size_t round, std::size_t batch);

  /// FedAvg-style round: compute the minibatch gradient at the local weights
  /// and immediately apply it locally (no accumulator involved).
  double local_update(std::size_t round, std::size_t batch, float lr);

  /// Applies the broadcast sparse update: w -= lr * dense(update).
  void apply_sparse_update(const sparsify::SparseVector& update, float lr);
  /// Dense variant (send-all).
  void apply_dense_update(std::span<const float> update, float lr);

  /// Zeroes the accumulated entries the server consumed (Line 17, Alg. 1).
  void reset_accumulated(std::span<const std::int32_t> indices);
  void reset_all_accumulated() noexcept { accumulator_.reset_all(); }

  // --- probe losses (Section IV-E) -----------------------------------------

  /// f_{i,h}(w(m−1)), recorded during compute_round_gradient.
  double probe_loss_prev() const noexcept { return probe_loss_prev_; }

  /// f_{i,h}(current weights) — call after applying the k_m update for
  /// f_{i,h}(w(m)).
  double probe_loss_now();

  /// f_{i,h}(w'(m)) where w' = current weights + lr*dense(diff): applies the
  /// delta temporarily, evaluates, and restores the weights exactly.
  double probe_loss_shifted(const sparsify::SparseVector& diff, float lr);

  /// Local loss over (a subsample of) the client's full dataset at the
  /// current weights; `max_samples == 0` means all samples.
  double full_local_loss(std::size_t max_samples, util::Rng& rng);

 private:
  std::size_t id_;
  data::Dataset dataset_;
  std::unique_ptr<nn::Sequential> model_;
  sparsify::GradientAccumulator accumulator_;
  util::Rng rng_;

  // Probe sample h (one row) for the current round.
  tensor::Matrix probe_x_;
  std::vector<int> probe_y_;
  double probe_loss_prev_ = 0.0;
};

}  // namespace fedsparse::fl
