// The paper's normalized timing model (Section V, footnotes 3 and 5).
//
//  * Computation of one round (all clients in parallel) costs 1.
//  * `comm_time` (β) is the time to exchange the full D-dimensional gradient
//    (uplink + downlink) between the clients and the server.
//  * Payloads scale proportionally: sending V values in total (uplink plus
//    downlink, where one index/value pair counts as 2 values) costs
//    β·V/(2D). Client uplinks are parallel, so `uplink_values` is the
//    per-client payload.
//
// Consistency check built into the model: a k-element bidirectional GS round
// costs 1 + 2βk/D, and FedAvg syncing every ⌊D/(2k)⌋ rounds averages to the
// same communication per round — exactly the paper's matched-budget setup.
//
// This model is the *homogeneous* special case. Heterogeneous populations
// (per-client rates, stragglers, availability churn) are modelled by
// fl::NetworkModel (fl/network.h), which uses TimingModel as the nominal link
// and reduces to it bit-for-bit when every client profile is the default.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace fedsparse::fl {

struct TimingModel {
  double comm_time = 10.0;   // β
  double compute_time = 1.0;
  std::size_t dim = 1;       // D

  /// Total normalized time of one round with the given payloads.
  double round_time(double uplink_values, double downlink_values) const {
    if (dim == 0) throw std::invalid_argument("TimingModel: dim == 0");
    return compute_time + comm_time * (uplink_values + downlink_values) /
                              (2.0 * static_cast<double>(dim));
  }

  /// θ(k): one-round time of k-element bidirectional GS (2k values per
  /// direction). Accepts continuous k — used by the derivative-sign
  /// estimator's τ̂ extrapolation.
  double theta(double k) const { return round_time(2.0 * k, 2.0 * k); }

  /// Communication-only part of round_time (no computation).
  double comm_part(double uplink_values, double downlink_values) const {
    return round_time(uplink_values, downlink_values) - compute_time;
  }
};

}  // namespace fedsparse::fl
