// Composite resource model — the paper's stated extension beyond time:
// "our online learning algorithm can be directly extended to the minimization
// of other types of additive resources, such as energy, monetary cost, or a
// sum of them" (Sections I and VI).
//
// A round's cost is a weighted sum of three additive resources:
//   time   — the normalized timing model of Section V (TimingModel),
//   energy — energy_per_compute per computation round plus energy_per_value
//            per transmitted value (uplink + downlink),
//   money  — money_per_value per transmitted value (e.g. metered WAN egress).
//
// The caller decides what one "value" of payload means. The federated
// simulation prices value-based terms on FLEET totals — the sum of every
// participant's uplink plus the broadcast each of them receives — while the
// time term stays the synchronized max over parallel links (NetworkModel);
// additive resources sum across devices, waiting does not.
//
// With the default weights (1, 0, 0) the model reduces exactly to the paper's
// training-time objective; the adaptive-k machinery is agnostic to which
// combination it minimizes because the cost stays additive over rounds.
#pragma once

#include "fl/timing.h"

namespace fedsparse::fl {

struct ResourceModel {
  TimingModel timing;

  double energy_per_compute = 1.0;  // energy of one local computation round
  double energy_per_value = 0.0;    // energy per transmitted value
  double money_per_value = 0.0;     // monetary cost per transmitted value

  double weight_time = 1.0;
  double weight_energy = 0.0;
  double weight_money = 0.0;

  /// Composite cost of one round whose wall-clock time was computed
  /// externally (e.g. by the heterogeneous NetworkModel straggler formula).
  /// The payloads still drive the energy/money terms.
  double round_cost_given_time(double time, double uplink_values,
                               double downlink_values) const {
    const double energy =
        energy_per_compute + energy_per_value * (uplink_values + downlink_values);
    const double money = money_per_value * (uplink_values + downlink_values);
    return weight_time * time + weight_energy * energy + weight_money * money;
  }

  /// Composite cost of one round with the given payloads (homogeneous time).
  double round_cost(double uplink_values, double downlink_values) const {
    return round_cost_given_time(timing.round_time(uplink_values, downlink_values),
                                 uplink_values, downlink_values);
  }

  /// θ(k) analogue under the composite cost (continuous k). Heterogeneous
  /// callers compose round_cost_given_time with NetworkModel::theta and
  /// their own fleet payload totals instead.
  double theta_cost(double k) const { return round_cost(2.0 * k, 2.0 * k); }

  /// True when the model is pure training time (the paper's default).
  bool is_pure_time() const noexcept {
    return weight_time == 1.0 && weight_energy == 0.0 && weight_money == 0.0;
  }
};

}  // namespace fedsparse::fl
