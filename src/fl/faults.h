// Seeded, deterministic fault injection for the federated round engine.
//
// The paper's Algorithms 2/3 assume every sampled client delivers an intact
// top-k payload; at fleet scale lost, late, and corrupted uploads are the
// common case. FaultModel composes with fl::NetworkModel: the network decides
// who is online and how long transfers take, the fault model decides which of
// those transfers fail or arrive poisoned —
//
//   * kClientCrash  — the client dies mid-round: no local step, no upload
//                     (its accumulator and rng stream are simply not touched);
//   * kUploadDrop   — the local step ran (mass accumulated) but the payload
//                     never reached the server: the client is excluded from
//                     the flush, gets no reset, and the accumulated mass rides
//                     to its next successful upload (mass conservation holds
//                     under any fault schedule);
//   * kFlushTimeout — the payload exists but its arrival estimate exceeds the
//                     server's flush deadline; treated like a drop, charged to
//                     the server's impatience rather than the wire;
//   * kPayloadCorrupt — the payload arrives tampered (NaN / Inf / bit-flip /
//                     magnitude-blowup): injected through the
//                     sparsify::UploadTamper seam after selection, caught by
//                     the screening stage (sparsify/validate.h) before it can
//                     reach the aggregation arena.
//
// Failed uploaders retry with exponential backoff: after `s` consecutive
// failures a client sits out min(base · 2^(s-1), max) rounds before it is
// eligible for sampling again, then flushes everything it accumulated.
//
// Beyond accidental faults, the model carries a seeded Byzantine cohort
// (AdversaryConfig): a round-independent subset of clients whose uploads are
// adversarially transformed — sign-flipped, scaled within finiteness limits,
// redirected onto a shared target block, or colluding on a shared sign
// pattern — through the same UploadTamper seam. Adversarial payloads stay
// structurally valid on purpose: they are the robust-aggregation stage's
// problem (sparsify/robust.h), not screening's.
//
// Determinism contract: every draw is a pure function of
// (seed, round, client) — no shared RNG stream — so the fault schedule is
// identical across thread counts, shard counts, and the sync/async engines,
// which is what makes faulted runs replayable (fl/replay.h). A trivial()
// config short-circuits every hook: the zero-fault configuration is
// byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <cstddef>

#include "sparsify/validate.h"

namespace fedsparse::fl {

enum class FaultKind : std::uint8_t {
  kUploadDrop = 0,
  kPayloadCorrupt = 1,
  kClientCrash = 2,
  kFlushTimeout = 3,
  kAdversarialTamper = 4,
};

enum class CorruptionMode : std::uint8_t {
  kNaN = 0,
  kInf = 1,
  kBitFlip = 2,
  kMagnitudeBlowup = 3,
};

/// Adversarial (Byzantine) attack kinds. Unlike CorruptionMode these produce
/// perfectly WELL-FORMED uploads — in-bounds, duplicate-free, finite — that
/// pass structural screening and must be absorbed by the robust-aggregation
/// stage (sparsify/robust.h) instead.
enum class AttackKind : std::uint8_t {
  kNone = 0,
  /// Cohort negates every uploaded value: anti-aligned with the honest mean.
  kSignFlip = 1,
  /// Cohort inflates its values by `scale` — finite, so screening's
  /// structural checks pass and only norm clipping / trimming can bound it.
  kScaleBlowup = 2,
  /// Cohort redirects its entire payload mass onto a shared contiguous
  /// coordinate block (derived from the cohort seed), pushing those
  /// coordinates hard in a common direction.
  kTargetedPoison = 3,
  /// Cohort members upload a shared pseudo-random sign pattern (derived per
  /// coordinate from the cohort seed) at their own magnitudes: colluders
  /// agree wherever their payloads overlap, honest clients do not.
  kColluding = 4,
};

/// Seeded Byzantine cohort riding inside FaultConfig. Cohort membership is a
/// pure, ROUND-INDEPENDENT draw per client (a persistent adversary, not a
/// transient fault), and every transform is pure in
/// (seed, round, client, payload) — attacked runs replay exactly.
struct AdversaryConfig {
  AttackKind attack = AttackKind::kNone;
  /// Per-client probability of belonging to the Byzantine cohort.
  double byzantine_fraction = 0.0;
  /// Value multiplier for kScaleBlowup / magnitude for kTargetedPoison.
  double scale = 20.0;
  /// Colluders share this seed for membership, target blocks, and sign
  /// patterns; 0 derives one from the fault-stream seed.
  std::uint64_t cohort_seed = 0;

  bool trivial() const noexcept {
    return attack == AttackKind::kNone || byzantine_fraction <= 0.0;
  }
};

struct FaultConfig {
  double drop_prob = 0.0;     // per (round, uploader): payload lost in transit
  double corrupt_prob = 0.0;  // per (round, uploader): payload tampered in transit
  double crash_prob = 0.0;    // per (round, participant): client dies mid-round
  /// Server flush deadline in timing-model units; an upload whose arrival
  /// estimate exceeds it is dropped. 0 disables.
  double flush_timeout = 0.0;
  /// Relative mix of corruption modes, indexed by CorruptionMode. Need not
  /// sum to 1; all-zero falls back to uniform.
  double corrupt_weights[4] = {1.0, 1.0, 1.0, 1.0};
  std::size_t retry_backoff_base = 1;  // rounds out after the first failure
  std::size_t retry_backoff_max = 8;   // exponential backoff cap, in rounds
  /// Fault-stream seed; 0 derives one from the simulation seed.
  std::uint64_t seed = 0;
  /// Byzantine cohort (adversarial, well-formed tampering).
  AdversaryConfig adversary;

  bool trivial() const noexcept {
    return drop_prob == 0.0 && corrupt_prob == 0.0 && crash_prob == 0.0 &&
           flush_timeout == 0.0 && adversary.trivial();
  }
};

/// One injected fault, as recorded per round for metrics and replay.
struct FaultEvent {
  std::uint32_t round = 0;
  std::uint32_t client = 0;
  FaultKind kind = FaultKind::kUploadDrop;
  CorruptionMode mode = CorruptionMode::kNaN;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultModel final : public sparsify::UploadTamper {
 public:
  FaultModel() = default;
  /// `dim` bounds the coordinate space for targeted-poisoning attacks; 0
  /// (unknown) derives a bound from the payload being attacked.
  FaultModel(const FaultConfig& cfg, std::uint64_t sim_seed, std::size_t dim = 0);

  const FaultConfig& config() const noexcept { return cfg_; }
  bool trivial() const noexcept { return cfg_.trivial(); }

  // Stateless draws — pure in (seed, round, client).
  bool crashes(std::size_t round, std::size_t client) const;
  bool drops_upload(std::size_t round, std::size_t client) const;
  bool corrupts(std::size_t round, std::size_t client) const;
  CorruptionMode corruption_mode(std::size_t round, std::size_t client) const;

  /// Arrival-deadline check: true when the upload's arrival estimate misses
  /// the server's flush deadline (0 deadline = never).
  bool times_out(double arrival_time) const noexcept {
    return cfg_.flush_timeout > 0.0 && arrival_time > cfg_.flush_timeout;
  }

  /// Backoff after the `strikes`-th consecutive failed upload (strikes >= 1).
  std::size_t backoff_rounds(std::size_t strikes) const noexcept;

  /// sparsify::UploadTamper: corrupts `payload` in place when the
  /// (round, client) corruption draw fires. Pure — probe rounds and replays
  /// tamper identically.
  void apply(std::size_t round, std::size_t client, sparsify::SparseVector& payload) const override;

  /// The corruption itself, unconditionally applied (exposed for tests).
  void corrupt_payload(std::size_t round, std::size_t client,
                       sparsify::SparseVector& payload) const;

  /// Persistent cohort membership: a pure, round-independent draw per client
  /// against adversary.byzantine_fraction (false when the adversary config
  /// is trivial).
  bool byzantine(std::size_t client) const;

  /// The attack transform itself, unconditionally applied (exposed for
  /// tests). Pure in (round, client, payload); always leaves the payload
  /// structurally valid and finite.
  void attack_payload(std::size_t round, std::size_t client,
                      sparsify::SparseVector& payload) const;

 private:
  static std::uint64_t mix_with(std::uint64_t seed, std::size_t round, std::size_t client,
                                std::uint64_t salt);
  std::uint64_t mix(std::size_t round, std::size_t client, std::uint64_t salt) const;
  double draw(std::size_t round, std::size_t client, std::uint64_t salt) const;

  FaultConfig cfg_;
  std::uint64_t seed_ = 0;
  std::uint64_t cohort_seed_ = 0;  // shared colluder stream (derived when 0)
  std::size_t dim_ = 0;
};

/// Telemetry: bumps the per-kind fault counter (faults.upload_drop,
/// faults.payload_corrupt, faults.client_crash, faults.flush_timeout,
/// faults.adversarial_tamper). A branch-on-one-atomic no-op while telemetry
/// is disabled.
void publish_fault_event(FaultKind kind) noexcept;

}  // namespace fedsparse::fl
