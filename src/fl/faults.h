// Seeded, deterministic fault injection for the federated round engine.
//
// The paper's Algorithms 2/3 assume every sampled client delivers an intact
// top-k payload; at fleet scale lost, late, and corrupted uploads are the
// common case. FaultModel composes with fl::NetworkModel: the network decides
// who is online and how long transfers take, the fault model decides which of
// those transfers fail or arrive poisoned —
//
//   * kClientCrash  — the client dies mid-round: no local step, no upload
//                     (its accumulator and rng stream are simply not touched);
//   * kUploadDrop   — the local step ran (mass accumulated) but the payload
//                     never reached the server: the client is excluded from
//                     the flush, gets no reset, and the accumulated mass rides
//                     to its next successful upload (mass conservation holds
//                     under any fault schedule);
//   * kFlushTimeout — the payload exists but its arrival estimate exceeds the
//                     server's flush deadline; treated like a drop, charged to
//                     the server's impatience rather than the wire;
//   * kPayloadCorrupt — the payload arrives tampered (NaN / Inf / bit-flip /
//                     magnitude-blowup): injected through the
//                     sparsify::UploadTamper seam after selection, caught by
//                     the screening stage (sparsify/validate.h) before it can
//                     reach the aggregation arena.
//
// Failed uploaders retry with exponential backoff: after `s` consecutive
// failures a client sits out min(base · 2^(s-1), max) rounds before it is
// eligible for sampling again, then flushes everything it accumulated.
//
// Determinism contract: every draw is a pure function of
// (seed, round, client) — no shared RNG stream — so the fault schedule is
// identical across thread counts, shard counts, and the sync/async engines,
// which is what makes faulted runs replayable (fl/replay.h). A trivial()
// config short-circuits every hook: the zero-fault configuration is
// byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <cstddef>

#include "sparsify/validate.h"

namespace fedsparse::fl {

enum class FaultKind : std::uint8_t {
  kUploadDrop = 0,
  kPayloadCorrupt = 1,
  kClientCrash = 2,
  kFlushTimeout = 3,
};

enum class CorruptionMode : std::uint8_t {
  kNaN = 0,
  kInf = 1,
  kBitFlip = 2,
  kMagnitudeBlowup = 3,
};

struct FaultConfig {
  double drop_prob = 0.0;     // per (round, uploader): payload lost in transit
  double corrupt_prob = 0.0;  // per (round, uploader): payload tampered in transit
  double crash_prob = 0.0;    // per (round, participant): client dies mid-round
  /// Server flush deadline in timing-model units; an upload whose arrival
  /// estimate exceeds it is dropped. 0 disables.
  double flush_timeout = 0.0;
  /// Relative mix of corruption modes, indexed by CorruptionMode. Need not
  /// sum to 1; all-zero falls back to uniform.
  double corrupt_weights[4] = {1.0, 1.0, 1.0, 1.0};
  std::size_t retry_backoff_base = 1;  // rounds out after the first failure
  std::size_t retry_backoff_max = 8;   // exponential backoff cap, in rounds
  /// Fault-stream seed; 0 derives one from the simulation seed.
  std::uint64_t seed = 0;

  bool trivial() const noexcept {
    return drop_prob == 0.0 && corrupt_prob == 0.0 && crash_prob == 0.0 && flush_timeout == 0.0;
  }
};

/// One injected fault, as recorded per round for metrics and replay.
struct FaultEvent {
  std::uint32_t round = 0;
  std::uint32_t client = 0;
  FaultKind kind = FaultKind::kUploadDrop;
  CorruptionMode mode = CorruptionMode::kNaN;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultModel final : public sparsify::UploadTamper {
 public:
  FaultModel() = default;
  FaultModel(const FaultConfig& cfg, std::uint64_t sim_seed);

  const FaultConfig& config() const noexcept { return cfg_; }
  bool trivial() const noexcept { return cfg_.trivial(); }

  // Stateless draws — pure in (seed, round, client).
  bool crashes(std::size_t round, std::size_t client) const;
  bool drops_upload(std::size_t round, std::size_t client) const;
  bool corrupts(std::size_t round, std::size_t client) const;
  CorruptionMode corruption_mode(std::size_t round, std::size_t client) const;

  /// Arrival-deadline check: true when the upload's arrival estimate misses
  /// the server's flush deadline (0 deadline = never).
  bool times_out(double arrival_time) const noexcept {
    return cfg_.flush_timeout > 0.0 && arrival_time > cfg_.flush_timeout;
  }

  /// Backoff after the `strikes`-th consecutive failed upload (strikes >= 1).
  std::size_t backoff_rounds(std::size_t strikes) const noexcept;

  /// sparsify::UploadTamper: corrupts `payload` in place when the
  /// (round, client) corruption draw fires. Pure — probe rounds and replays
  /// tamper identically.
  void apply(std::size_t round, std::size_t client, sparsify::SparseVector& payload) const override;

  /// The corruption itself, unconditionally applied (exposed for tests).
  void corrupt_payload(std::size_t round, std::size_t client,
                       sparsify::SparseVector& payload) const;

 private:
  std::uint64_t mix(std::size_t round, std::size_t client, std::uint64_t salt) const;
  double draw(std::size_t round, std::size_t client, std::uint64_t salt) const;

  FaultConfig cfg_;
  std::uint64_t seed_ = 0;
};

/// Telemetry: bumps the per-kind fault counter (faults.upload_drop,
/// faults.payload_corrupt, faults.client_crash, faults.flush_timeout).
/// A branch-on-one-atomic no-op while telemetry is disabled.
void publish_fault_event(FaultKind kind) noexcept;

}  // namespace fedsparse::fl
