// Event timeline: the deterministic scheduler under the round engines.
//
// The synchronized loop of Algorithm 1 hides a schedule: clients finish their
// local computation and uploads at NetworkModel-determined instants, churn
// flips availability between rounds, and the server decides when to fold the
// arrivals into a global update. This component makes that schedule explicit
// as an ordered event sequence per round:
//
//   kClientOffline / kClientOnline — availability transitions observed at the
//       round boundary (time 0 of the round);
//   kUploadReady — client i's upload arrives at the server at
//       compute_i + uplink_i(payload), per the realized per-round rates;
//   kBufferFlush — the server folds the buffered arrivals into one
//       aggregation (the synchronized engine flushes after the LAST arrival —
//       the barrier; the buffered-async engine after the M-th).
//
// Determinism contract: events are built serially by the simulation and
// totally ordered by (time, kind, client) — client id breaks every tie — so
// the drained sequence is identical at every thread count. The equivalence
// tests pin exactly this (same events at threads 1/2/8), and the
// synchronized engine's flush set, being sorted by id afterwards, reproduces
// the lockstep loop's participant order bit-for-bit: the barrier case is the
// degenerate schedule where arrival order cannot matter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fedsparse::fl {

enum class EventKind : std::uint8_t {
  kClientOffline = 0,  // transition observed at the round boundary
  kClientOnline = 1,
  kUploadReady = 2,  // upload arrival at the server
  kBufferFlush = 3,  // server folds the buffer into a global update
  kUploadLost = 4,   // fault model: upload dropped in transit or past deadline
  kClientCrash = 5,  // fault model: client died mid-round (no compute)
};

struct Event {
  double time = 0.0;        // offset from the round start, normalized units
  EventKind kind = EventKind::kUploadReady;
  std::size_t client = 0;   // kBufferFlush: number of arrivals folded

  friend bool operator==(const Event&, const Event&) = default;
};

class EventTimeline {
 public:
  void clear() noexcept { events_.clear(); sealed_ = false; }

  /// Appends an event (any order); call seal() before reading.
  void push(double time, EventKind kind, std::size_t client) {
    events_.push_back(Event{time, kind, client});
    sealed_ = false;
  }

  /// Establishes the total (time, kind, client) order. Stable by
  /// construction: all three keys participate, and (kind, client) is unique
  /// per round, so the order does not depend on insertion order.
  void seal();

  std::span<const Event> events() const noexcept { return {events_.data(), events_.size()}; }
  std::size_t size() const noexcept { return events_.size(); }
  bool sealed() const noexcept { return sealed_; }

 private:
  std::vector<Event> events_;
  bool sealed_ = false;
};

}  // namespace fedsparse::fl
