#include "fl/replay.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace fedsparse::fl {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void fnv(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void fnv_vec(std::uint64_t& h, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  fnv(h, &n, sizeof n);
  if (!v.empty()) fnv(h, v.data(), v.size() * sizeof(T));
}

// --- binary io ------------------------------------------------------------

// "FRL2": v2 appended AdversaryConfig to FaultConfig and RobustConfig to the
// header — both POD-serialized, so the struct layouts are part of the format.
constexpr std::uint32_t kMagic = 0x46524C32;

struct Writer {
  std::FILE* f;
  void raw(const void* p, std::size_t n) {
    if (std::fwrite(p, 1, n, f) != n) throw std::runtime_error("replay log: short write");
  }
  template <typename T>
  void pod(const T& v) {
    raw(&v, sizeof v);
  }
  template <typename T>
  void vec(const std::vector<T>& v) {
    pod(static_cast<std::uint64_t>(v.size()));
    if (!v.empty()) raw(v.data(), v.size() * sizeof(T));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    if (!s.empty()) raw(s.data(), s.size());
  }
};

struct Reader {
  std::FILE* f;
  void raw(void* p, std::size_t n) {
    if (std::fread(p, 1, n, f) != n) throw std::runtime_error("replay log: short read");
  }
  template <typename T>
  void pod(T& v) {
    raw(&v, sizeof v);
  }
  template <typename T>
  void vec(std::vector<T>& v) {
    std::uint64_t n = 0;
    pod(n);
    v.resize(n);
    if (n != 0) raw(v.data(), n * sizeof(T));
  }
  void str(std::string& s) {
    std::uint64_t n = 0;
    pod(n);
    s.resize(n);
    if (n != 0) raw(s.data(), n);
  }
};

}  // namespace

std::uint64_t outcome_digest(const sparsify::RoundOutcome& out) {
  std::uint64_t h = kFnvOffset;
  const auto kind = static_cast<std::uint32_t>(out.kind);
  fnv(h, &kind, sizeof kind);
  fnv_vec(h, out.update);
  fnv_vec(h, out.dense);
  const auto reset = static_cast<std::uint32_t>(out.reset_kind);
  fnv(h, &reset, sizeof reset);
  fnv_vec(h, out.reset_indices);
  fnv_vec(h, out.reset_offsets);
  fnv_vec(h, out.uniform_reset);
  fnv_vec(h, out.contributed);
  return h;
}

RoundRecorder::RoundRecorder(std::size_t dim, std::string method, std::uint64_t seed,
                             const FaultConfig& faults,
                             const sparsify::ValidationConfig& validation,
                             const sparsify::RobustConfig& robust) {
  log_.dim = dim;
  log_.seed = seed;
  log_.method = std::move(method);
  log_.fault_config = faults;
  log_.validation = validation;
  log_.robust = robust;
}

void RoundRecorder::record(const sparsify::RoundInput& in, std::size_t k,
                           std::span<const FaultEvent> faults, std::span<const Event> timeline,
                           const sparsify::RoundOutcome& out) {
  ReplayRound r;
  r.round = static_cast<std::uint32_t>(in.round);
  r.k = static_cast<std::uint32_t>(k);
  const std::size_t n = in.client_vectors.size();
  r.client_ids.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    r.client_ids.push_back(
        static_cast<std::uint32_t>(in.client_ids.empty() ? s : in.client_ids[s]));
  }
  r.data_weights.assign(in.data_weights.begin(), in.data_weights.end());
  r.vec_offsets.reserve(n + 1);
  r.vec_offsets.push_back(0);
  for (std::size_t s = 0; s < n; ++s) {
    const auto vec = in.client_vectors[s];
    for (std::size_t j = 0; j < vec.size(); ++j) {
      if (vec[j] != 0.0f) {
        r.vec_indices.push_back(static_cast<std::int32_t>(j));
        r.vec_values.push_back(vec[j]);
      }
    }
    r.vec_offsets.push_back(r.vec_indices.size());
  }
  r.faults.assign(faults.begin(), faults.end());
  r.timeline.assign(timeline.begin(), timeline.end());
  r.digest = outcome_digest(out);
  log_.rounds.push_back(std::move(r));
}

void ReplayLog::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("replay log: cannot open " + path);
  try {
    Writer w{f};
    w.pod(kMagic);
    w.pod(dim);
    w.pod(seed);
    w.str(method);
    w.pod(fault_config);
    w.pod(validation);
    w.pod(robust);
    w.pod(static_cast<std::uint64_t>(rounds.size()));
    for (const ReplayRound& r : rounds) {
      w.pod(r.round);
      w.pod(r.k);
      w.vec(r.client_ids);
      w.vec(r.data_weights);
      w.vec(r.vec_offsets);
      w.vec(r.vec_indices);
      w.vec(r.vec_values);
      w.vec(r.faults);
      w.vec(r.timeline);
      w.pod(r.digest);
    }
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
}

ReplayLog ReplayLog::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("replay log: cannot open " + path);
  ReplayLog log;
  try {
    Reader rd{f};
    std::uint32_t magic = 0;
    rd.pod(magic);
    if (magic != kMagic) throw std::runtime_error("replay log: bad magic in " + path);
    rd.pod(log.dim);
    rd.pod(log.seed);
    rd.str(log.method);
    rd.pod(log.fault_config);
    rd.pod(log.validation);
    rd.pod(log.robust);
    std::uint64_t n = 0;
    rd.pod(n);
    log.rounds.resize(n);
    for (ReplayRound& r : log.rounds) {
      rd.pod(r.round);
      rd.pod(r.k);
      rd.vec(r.client_ids);
      rd.vec(r.data_weights);
      rd.vec(r.vec_offsets);
      rd.vec(r.vec_indices);
      rd.vec(r.vec_values);
      rd.vec(r.faults);
      rd.vec(r.timeline);
      rd.pod(r.digest);
    }
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
  return log;
}

ReplayResult replay(const ReplayLog& log, std::size_t shards) {
  auto method = sparsify::make_method(log.method, log.dim, log.seed);
  method->set_sharding(shards);
  method->set_validation(log.validation);
  method->set_robust(log.robust);
  // dim flows into the FaultModel so targeted-coordinate poisoning lands on
  // the same coordinates it hit during recording.
  const FaultModel faults(log.fault_config, log.seed, log.dim);

  ReplayResult res;
  std::vector<float> dense;                       // slot-major dense vectors
  std::vector<std::size_t> ids;
  sparsify::RoundInput in;
  for (const ReplayRound& r : log.rounds) {
    const std::size_t n = r.client_ids.size();
    dense.assign(n * log.dim, 0.0f);
    for (std::size_t s = 0; s < n; ++s) {
      float* vec = dense.data() + s * log.dim;
      for (std::uint64_t p = r.vec_offsets[s]; p < r.vec_offsets[s + 1]; ++p) {
        vec[static_cast<std::size_t>(r.vec_indices[p])] = r.vec_values[p];
      }
    }
    ids.assign(r.client_ids.begin(), r.client_ids.end());
    in.client_vectors.clear();
    for (std::size_t s = 0; s < n; ++s) {
      in.client_vectors.emplace_back(dense.data() + s * log.dim, log.dim);
    }
    in.data_weights = {r.data_weights.data(), r.data_weights.size()};
    in.client_ids = {ids.data(), ids.size()};
    in.client_chunk_max.clear();
    in.client_prescan.clear();
    in.tamper = faults.trivial() ? nullptr : &faults;
    in.dim = log.dim;
    in.round = r.round;
    const sparsify::RoundOutcome out = method->round(in, r.k);
    const std::uint64_t d = outcome_digest(out);
    res.digests.push_back(d);
    if (d != r.digest) ++res.mismatches;
    ++res.rounds;
  }
  return res;
}

}  // namespace fedsparse::fl
