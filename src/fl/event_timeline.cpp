#include "fl/event_timeline.h"

#include <algorithm>

namespace fedsparse::fl {

void EventTimeline::seal() {
  std::sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return static_cast<std::uint8_t>(a.kind) < static_cast<std::uint8_t>(b.kind);
    return a.client < b.client;
  });
  sealed_ = true;
}

}  // namespace fedsparse::fl
