#include "fl/metrics.h"

#include <stdexcept>

namespace fedsparse::fl {

Evaluator::Evaluator(const nn::ModelFactory& factory, std::uint64_t seed) {
  util::Rng rng(seed);
  model_ = factory(rng);
}

const data::Dataset* Evaluator::subsampled(const data::Dataset& ds, std::size_t max_samples,
                                           util::Rng& rng, data::Dataset& storage) const {
  if (max_samples == 0 || ds.size() <= max_samples) return &ds;
  std::vector<std::size_t> idx(max_samples);
  for (auto& v : idx) v = rng.uniform_u64(ds.size());
  storage = ds.subset(idx);
  return &storage;
}

double Evaluator::loss(const data::Dataset& ds, std::size_t max_samples, util::Rng& rng) {
  data::Dataset storage;
  const data::Dataset* use = subsampled(ds, max_samples, rng, storage);
  return model_->forward_loss(use->x, use->y);
}

double Evaluator::accuracy(const data::Dataset& ds, std::size_t max_samples, util::Rng& rng) {
  data::Dataset storage;
  const data::Dataset* use = subsampled(ds, max_samples, rng, storage);
  return model_->accuracy(use->x, use->y);
}

std::vector<ClientTrafficRow> client_traffic_rows(
    const std::vector<double>& uplink_values, const std::vector<double>& downlink_values,
    const std::vector<std::size_t>& rounds_participated) {
  if (uplink_values.size() != downlink_values.size() ||
      uplink_values.size() != rounds_participated.size()) {
    throw std::invalid_argument("client_traffic_rows: per-client spans differ in length");
  }
  std::vector<ClientTrafficRow> rows(uplink_values.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].client = i;
    rows[i].rounds_participated = rounds_participated[i];
    rows[i].uplink_bytes = values_to_bytes(uplink_values[i]);
    rows[i].downlink_bytes = values_to_bytes(downlink_values[i]);
  }
  return rows;
}

std::vector<double> contribution_per_round(const std::vector<std::size_t>& totals,
                                           std::size_t rounds) {
  std::vector<double> out(totals.size(), 0.0);
  if (rounds == 0) return out;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    out[i] = static_cast<double>(totals[i]) / static_cast<double>(rounds);
  }
  return out;
}

}  // namespace fedsparse::fl
