#include "fl/simulation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "online/estimator.h"
#include "online/rounding.h"
#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/logging.h"
#include "util/stats.h"

namespace fedsparse::fl {

Simulation::Simulation(SimulationConfig cfg, data::FederatedDataset dataset,
                       nn::ModelFactory factory, std::unique_ptr<sparsify::Method> method,
                       std::unique_ptr<online::KController> controller)
    : cfg_(cfg),
      factory_(std::move(factory)),
      method_(std::move(method)),
      controller_(std::move(controller)),
      test_set_(std::move(dataset.test)),
      evaluator_(factory_, cfg.seed ^ 0xE7A1ULL),
      pool_(cfg.threads),
      rng_(cfg.seed) {
  if (!method_) throw std::invalid_argument("Simulation: null method");
  if (!controller_) throw std::invalid_argument("Simulation: null controller");
  if (dataset.clients.empty()) throw std::invalid_argument("Simulation: no clients");
  if (cfg_.lr <= 0.0f) throw std::invalid_argument("Simulation: lr must be positive");
  if (cfg_.batch == 0) throw std::invalid_argument("Simulation: batch must be positive");

  if (cfg_.participation <= 0.0 || cfg_.participation > 1.0) {
    throw std::invalid_argument("Simulation: participation must be in (0, 1]");
  }
  data_weights_ = dataset.data_weights();

  // Master initialization: the one weight vector everything starts from. Its
  // dimension sizes every client's accumulator.
  util::Rng master_rng(cfg.seed ^ 0x5EEDULL);
  const auto master = factory_(master_rng);
  dim_ = master->dim();

  clients_.reserve(dataset.clients.size());
  std::uint64_t seed_state = cfg.seed ^ 0xC11E27ULL;
  for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
    clients_.push_back(std::make_unique<Client>(i, std::move(dataset.clients[i]), dim_,
                                                util::splitmix64(seed_state)));
  }
  timing_ = TimingModel{cfg.comm_time, cfg.compute_time, dim_};
  resource_.timing = timing_;
  resource_.energy_per_compute = cfg.energy_per_compute;
  resource_.energy_per_value = cfg.energy_per_value;
  resource_.money_per_value = cfg.money_per_value;
  resource_.weight_time = cfg.weight_time;
  resource_.weight_energy = cfg.weight_energy;
  resource_.weight_money = cfg.weight_money;

  // Network & device model. The legacy compute_time_spread knob folds into
  // the client profiles (same RNG stream as before), multiplying on top of
  // any explicitly configured profile.
  NetworkConfig net_cfg = cfg.network;
  if (cfg.compute_time_spread > 0.0) {
    if (net_cfg.profiles.empty()) net_cfg.profiles.assign(clients_.size(), ClientProfile{});
    util::Rng het_rng(cfg.seed ^ 0x4E7E20ULL);
    for (auto& profile : net_cfg.profiles) {
      profile.compute_multiplier *= std::exp(het_rng.normal(0.0, cfg.compute_time_spread));
    }
  }
  network_ = NetworkModel(timing_, std::move(net_cfg), clients_.size(), cfg.seed);

  // Weight layout: the shared store always holds w(m) for synchronized
  // methods; FedAvg-style methods (diverging local weights) and the
  // per-replica reference engine give every client its own vector.
  fedavg_style_ = method_->local_update_style();
  per_client_weights_ = fedavg_style_ || cfg.replica_mode == ReplicaMode::kPerReplica;
  shared_weights_.assign(master->weights().begin(), master->weights().end());
  if (per_client_weights_) {
    for (auto& c : clients_) c->allocate_weights(master->weights());
  }
  evaluator_.set_weights(master->weights());

  // Per-thread model workspaces: pool workers plus the calling thread. Each
  // keeps only gradients + activations once its weight chain is rebound.
  workspaces_.reserve(pool_.slot_count());
  for (std::size_t t = 0; t < pool_.slot_count(); ++t) {
    util::Rng ws_rng(cfg.seed ^ (0x3A7E0000ULL + t));
    workspaces_.push_back(factory_(ws_rng));
    if (workspaces_.back()->dim() != dim_) {
      throw std::logic_error("Simulation: factory dim mismatch");
    }
    workspaces_.back()->bind_weights({shared_weights_.data(), shared_weights_.size()});
  }

  // Let large GEMMs inside workspace forward/backward split their M loop
  // across this pool. Nested parallel_for calls are safe: the caller always
  // drains chunks itself, so a busy pool just means the inner call runs
  // serially.
  tensor::set_parallel_pool(&pool_);

  // Sharded round engine: auto mode gives the method one shard per pool slot
  // (capped — past ~16 shards the tree-merge constant outweighs the split)
  // whenever the pool actually has workers. Shard count never changes round
  // traces (pinned by tests), so auto can track the thread count freely.
  const std::size_t eff_shards =
      cfg_.shards != 0 ? cfg_.shards
                       : (pool_.size() > 1 ? std::min<std::size_t>(16, pool_.slot_count()) : 1);
  method_->set_sharding(eff_shards);

  util::log_info() << "Simulation: " << clients_.size() << " clients, D=" << dim_
                   << ", method=" << method_->name() << ", controller=" << controller_->name()
                   << ", beta=" << cfg.comm_time << ", engine="
                   << (per_client_weights_ ? "per-replica" : "shared") << " ("
                   << workspaces_.size() << " workspaces, " << eff_shards << " shards)";
}

Simulation::~Simulation() {
  // Unregister only if still pointing at our pool (last Simulation wins when
  // several coexist; they must not run concurrently in one process).
  if (tensor::parallel_pool() == &pool_) tensor::set_parallel_pool(nullptr);
}

std::span<const float> Simulation::client_weights(std::size_t i) const {
  const Client& c = *clients_.at(i);
  if (c.owns_weights()) return c.weights();
  return {shared_weights_.data(), shared_weights_.size()};
}

nn::Sequential& Simulation::bound_workspace(std::size_t i) {
  nn::Sequential& ws = *workspaces_[pool_.current_slot()];
  if (per_client_weights_) {
    ws.bind_weights(clients_[i]->weights());
  } else {
    ws.bind_weights({shared_weights_.data(), shared_weights_.size()});
  }
  return ws;
}

const std::vector<std::size_t>& Simulation::sample_participants() {
  // Availability gates reachability: an offline client can be neither
  // sampled nor waited on. The network maintains the online list inside its
  // own per-client transition pass, so nothing here is O(N): full
  // participation reads the list straight through, and partial participation
  // copies it once for the in-place shuffle. Without churn the list is the
  // identity and the sampling consumes rng_ exactly as the pre-network
  // engine did.
  const auto online = network_.online_ids();
  const std::size_t avail = online.size();
  if (cfg_.participation >= 1.0 || avail <= 1) {
    part_ids_.assign(online.begin(), online.end());
    return part_ids_;
  }
  id_scratch_.assign(online.begin(), online.end());
  const auto take = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(cfg_.participation * static_cast<double>(avail))));
  // Partial Fisher–Yates: the first `take` entries are a uniform sample.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng_.uniform_u64(avail - i);
    std::swap(id_scratch_[i], id_scratch_[j]);
  }
  part_ids_.assign(id_scratch_.begin(), id_scratch_.begin() + static_cast<std::ptrdiff_t>(take));
  std::sort(part_ids_.begin(), part_ids_.end());
  return part_ids_;
}

const sparsify::RoundInput& Simulation::make_round_input(
    std::size_t round, const std::vector<std::size_t>& selected) {
  round_input_.dim = dim_;
  round_input_.round = round;
  // Stable ids so methods key cross-round per-client state (e.g. top-k
  // threshold hints) by client, not by participant slot.
  round_input_.client_ids = {selected.data(), selected.size()};
  round_input_.client_vectors.clear();
  round_input_.client_chunk_max.clear();
  round_input_.client_prescan.clear();
  weight_storage_.clear();
  double total = 0.0;
  for (const std::size_t i : selected) total += data_weights_[i];
  // Tiered round view: the methods see each accumulator's chunk summaries
  // next to its values and prune their selection scans on them. FedAvg-style
  // inputs are client weights — no accumulator, no summaries.
  const bool tiered = cfg_.tiered_accumulators && !fedavg_style_;
  for (const std::size_t i : selected) {
    weight_storage_.push_back(total > 0.0 ? data_weights_[i] / total
                                          : 1.0 / static_cast<double>(selected.size()));
    round_input_.client_vectors.push_back(fedavg_style_
                                              ? std::span<const float>(clients_[i]->weights())
                                              : clients_[i]->accumulator().value());
    if (tiered) {
      round_input_.client_chunk_max.push_back(clients_[i]->accumulator().chunk_max());
    }
    // Slot-aligned fused-prescan views: clients that did not run one this
    // round contribute a default (invalid) view the selection ignores.
    if (prescan_round_) {
      round_input_.client_prescan.push_back(clients_[i]->prescan_view(round));
    }
  }
  round_input_.data_weights = {weight_storage_.data(), weight_storage_.size()};
  return round_input_;
}

void Simulation::apply_reset(const sparsify::RoundOutcome& outcome, std::size_t i,
                             std::size_t s) {
  using ResetKind = sparsify::RoundOutcome::ResetKind;
  switch (outcome.reset_kind) {
    case ResetKind::kNone:
      break;
    case ResetKind::kAll:
      clients_[i]->accumulator().reset_all();
      break;
    case ResetKind::kPerClient:
    case ResetKind::kUniform:
      clients_[i]->accumulator().reset_indices(outcome.reset_for(s));
      break;
  }
}

std::span<const float> Simulation::global_weights() {
  if (!fedavg_style_) {
    if (!per_client_weights_) return {shared_weights_.data(), shared_weights_.size()};
    return clients_[0]->weights();
  }
  // FedAvg between synchronizations: the virtual global model is the
  // data-weighted average of the local weights, computed over disjoint index
  // ranges across the pool. Per coordinate the clients accumulate in
  // ascending order exactly as in the serial loop, so the threaded result is
  // bitwise-identical.
  fedavg_weights_.resize(dim_);
  float* fw = fedavg_weights_.data();
  pool_.parallel_for_ranges(dim_, [&](std::size_t begin, std::size_t end) {
    std::fill(fw + begin, fw + end, 0.0f);
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      const auto w = clients_[i]->weights();
      const auto dw = static_cast<float>(data_weights_[i]);
      for (std::size_t j = begin; j < end; ++j) fw[j] += dw * w[j];
    }
  });
  return {fedavg_weights_.data(), fedavg_weights_.size()};
}

void Simulation::evaluate(RoundRecord& rec) {
  evaluator_.set_weights(global_weights());
  double loss = 0.0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    loss += data_weights_[i] *
            evaluator_.loss(clients_[i]->dataset(), cfg_.eval_samples_per_client, rng_);
  }
  rec.global_loss = loss;
  rec.accuracy = evaluator_.accuracy(test_set_, cfg_.eval_test_samples, rng_);
}

SimulationResult Simulation::run() {
  const std::size_t n = clients_.size();
  SimulationResult res;
  res.contributed_totals.assign(n, 0);

  mb_losses_.assign(n, 0.0);
  double time = 0.0;

  for (std::size_t m = 1; m <= cfg_.max_rounds; ++m) {
    const double k_cont = controller_->current_k();
    const double probe_k_cont = controller_->probe_k();
    const std::size_t k_int = cfg_.stochastic_rounding
                                  ? online::stochastic_round_k(k_cont, dim_, rng_)
                                  : online::deterministic_round_k(k_cont, dim_);

    // Advance the network fluctuation state (rate jitter + availability
    // chain) before anything reads it. A trivial network is a no-op.
    network_.begin_round(m);

    // (A) Local computation at w(m−1) in parallel over the per-thread
    // workspaces. Participants feed the server round; offline clients keep
    // training locally — their gradients pile up in the accumulator until
    // they rejoin (the FAB/FUB catch-up dynamic) — but cannot upload, be
    // waited on, or be sampled. Client RNG streams are keyed by (client,
    // round), so who computes never perturbs anyone else's draw.
    const std::vector<std::size_t>& part = sample_participants();
    compute_ids_.assign(part.begin(), part.end());
    if (network_.has_churn()) {
      const auto offline = network_.offline_ids();
      compute_ids_.insert(compute_ids_.end(), offline.begin(), offline.end());
    }

    // Fused prescan: arm each participant whose method hint is live so its
    // gradient accumulation below emits this round's selection candidates in
    // the same pass (Client::request_prescan). The gate mirrors the selection
    // prefilter gate exactly — when select() would not run the hint filter,
    // there is nothing to fuse.
    prescan_round_ = false;
    if (cfg_.fused_prescan && cfg_.tiered_accumulators && !fedavg_style_ &&
        dim_ >= sparsify::kTopKPrefilterMinDim && k_int >= 1 && k_int < dim_) {
      const std::size_t cap = sparsify::topk_hint_cap(k_int);
      for (const std::size_t i : part) {
        const float t = method_->upload_threshold_hint(i);
        if (t > 0.0f) {
          clients_[i]->request_prescan(t, k_int, cap, m);
          prescan_round_ = true;
        }
      }
    }
    pool_.parallel_for(
        compute_ids_.size(),
        [&](std::size_t s) {
          const std::size_t i = compute_ids_[s];
          nn::Sequential& ws = bound_workspace(i);
          mb_losses_[i] = fedavg_style_
                              ? clients_[i]->local_update(ws, m, cfg_.batch, cfg_.lr)
                              : clients_[i]->compute_round_gradient(ws, m, cfg_.batch);
        },
        /*grain=*/1);

    // Per-round compute-bound resources (e.g. energy per computation) scale
    // with the slowest participant's realized device speed. An empty round
    // (every client offline) skips the server exchange entirely and falls
    // through the shared record/eval/stop tail as one idle compute round.
    ResourceModel round_resource = resource_;
    if (network_.heterogeneous() && !part.empty()) {
      round_resource.energy_per_compute =
          resource_.energy_per_compute * network_.max_compute_multiplier(part);
    }

    // (1)–(2) Server round: selection + aggregation over the participants.
    // An empty round leaves the default outcome: zero payloads, no resets.
    sparsify::RoundOutcome outcome;
    if (!part.empty()) {
      outcome = method_->round(make_round_input(m, part), k_int);
    }

    // (3) Probe selection k'_m (derived before resets touch the accumulators).
    bool want_probe = !part.empty() && probe_k_cont > 0.0 && !fedavg_style_ &&
                      outcome.kind == sparsify::RoundOutcome::Kind::kSparseUpdate;
    sparsify::SparseVector probe_diff;
    if (want_probe) {
      std::size_t probe_k_int = cfg_.stochastic_rounding
                                    ? online::stochastic_round_k(probe_k_cont, dim_, rng_)
                                    : online::deterministic_round_k(probe_k_cont, dim_);
      if (probe_k_int >= k_int) probe_k_int = k_int > 1 ? k_int - 1 : 0;
      if (probe_k_int >= 1) {
        // round_input_ still holds this round's view (want_probe implies a
        // non-empty participant set built it above).
        const sparsify::RoundOutcome probe_outcome =
            method_->probe_round(round_input_, probe_k_int);
        probe_diff = sparsify::sparse_subtract(outcome.update, probe_outcome.update);
      } else {
        want_probe = false;
      }
    }

    // (B)/(C) Apply the global update and consume transmitted accumulator
    // entries. An empty round exchanged nothing and touches nobody.
    if (!part.empty() && per_client_weights_) {
      // FedAvg / per-replica reference engine: every client's own vector is
      // touched in one fused parallel pass (apply + reset per client).
      part_slot_.assign(n, -1);
      for (std::size_t s = 0; s < part.size(); ++s) {
        part_slot_[part[s]] = static_cast<std::int32_t>(s);
      }
      // kLocalOnly with a local-update method means no apply AND no resets —
      // skip the barrier entirely instead of forking n no-op tasks.
      const bool round_touches_clients =
          outcome.kind != sparsify::RoundOutcome::Kind::kLocalOnly || !fedavg_style_;
      if (round_touches_clients) {
        pool_.parallel_for(
            n,
            [&](std::size_t i) {
              switch (outcome.kind) {
                case sparsify::RoundOutcome::Kind::kSparseUpdate:
                  clients_[i]->apply_sparse_update(outcome.update, cfg_.lr);
                  break;
                case sparsify::RoundOutcome::Kind::kDenseUpdate:
                  clients_[i]->apply_dense_update(outcome.dense, cfg_.lr);
                  break;
                case sparsify::RoundOutcome::Kind::kWeightAverage:
                  // An offline FedAvg client misses the synchronization and
                  // keeps its diverging local weights until it rejoins.
                  // (Synchronized methods never emit kWeightAverage; their
                  // per-replica layout must mirror the shared store exactly.)
                  if (!fedavg_style_ || network_.available(i)) {
                    clients_[i]->set_weights({outcome.dense.data(), outcome.dense.size()});
                  }
                  break;
                case sparsify::RoundOutcome::Kind::kLocalOnly:
                  break;
              }
              const std::int32_t s = part_slot_[i];
              if (!fedavg_style_ && s >= 0) {
                apply_reset(outcome, i, static_cast<std::size_t>(s));
              }
            },
            /*grain=*/1);
      }
    } else if (!part.empty()) {
      // Shared store: the synchronized update is applied ONCE — O(k) sparse,
      // O(D) dense — independent of the client count. Only the participants'
      // accumulators need per-client work.
      const std::span<float> sw{shared_weights_.data(), shared_weights_.size()};
      switch (outcome.kind) {
        case sparsify::RoundOutcome::Kind::kSparseUpdate:
          sparsify::axpy_sparse(-cfg_.lr, outcome.update, sw);
          break;
        case sparsify::RoundOutcome::Kind::kDenseUpdate:
          if (outcome.dense.size() != sw.size()) {
            throw std::invalid_argument("Simulation: dense update dimension mismatch");
          }
          for (std::size_t j = 0; j < sw.size(); ++j) sw[j] -= cfg_.lr * outcome.dense[j];
          break;
        case sparsify::RoundOutcome::Kind::kWeightAverage:
          if (outcome.dense.size() != sw.size()) {
            throw std::invalid_argument("Simulation: weight average dimension mismatch");
          }
          std::copy(outcome.dense.begin(), outcome.dense.end(), sw.begin());
          break;
        case sparsify::RoundOutcome::Kind::kLocalOnly:
          break;
      }
      pool_.parallel_for(
          part.size(), [&](std::size_t s) { apply_reset(outcome, part[s], s); },
          /*grain=*/1);
    }
    for (std::size_t s = 0; s < part.size(); ++s) {
      res.contributed_totals[part[s]] += outcome.contributed[s];
    }

    // Straggler-correct synchronized timing: τ_m maxes each participant's
    // compute + own-payload-over-own-link, then adds the broadcast over the
    // slowest participating downlink. The homogeneous fast path inside
    // round_time() reproduces the legacy TimingModel expression bit-for-bit.
    uplink_slots_.resize(part.size());
    for (std::size_t s = 0; s < part.size(); ++s) uplink_slots_[s] = outcome.client_uplink(s);
    const RoundTiming round_timing = network_.round_time(
        part, uplink_slots_, outcome.uplink_values, outcome.downlink_values);

    // Composite-resource payload totals: synchronized *time* maxes over the
    // parallel uplinks, but additive resources (energy, money) price the
    // whole fleet — every participant's own uplink, plus the broadcast every
    // ONLINE client receives (non-participants still listen so their weights
    // stay synchronized). Pure-time objectives (the default) are untouched:
    // the payload arguments only feed the zero-weighted terms.
    double fleet_uplink = 0.0;
    for (std::size_t s = 0; s < part.size(); ++s) fleet_uplink += uplink_slots_[s];
    const double n_part = static_cast<double>(part.size());
    const std::size_t online = network_.online_ids().size();
    const double n_online = static_cast<double>(online);
    const double fleet_downlink = n_online * outcome.downlink_values;

    // Realized per-client traffic: participants pay their own uplink payload
    // and the broadcast downlink; online non-participants receive the
    // broadcast too (they stay synchronized) but upload nothing; offline
    // clients exchange nothing. FedAvg's kLocalOnly rounds exchange nothing —
    // they are not server rounds and do not count as participation.
    if (outcome.kind != sparsify::RoundOutcome::Kind::kLocalOnly) {
      for (std::size_t s = 0; s < part.size(); ++s) {
        clients_[part[s]]->note_round(uplink_slots_[s], outcome.downlink_values);
      }
      if (outcome.downlink_values > 0.0 && part.size() < online) {
        // Both lists are sorted ascending and part ⊆ online, so one merge
        // walk charges every online non-participant — O(online), not O(N).
        std::size_t next = 0;
        for (const std::size_t i : network_.online_ids()) {
          if (next < part.size() && part[next] == i) {
            ++next;
            continue;
          }
          clients_[i]->note_broadcast(outcome.downlink_values);
        }
      }
    }

    // (B)–(D) One-sample probe losses over participants, averaged by the
    // server (Sec. IV-E). The controller minimizes the composite round cost
    // (pure time under the paper's defaults).
    online::RoundFeedback fb;
    fb.round_time =
        round_resource.round_cost_given_time(round_timing.time, fleet_uplink, fleet_downlink);
    double wall_time = fb.round_time;
    if (!fedavg_style_ && !part.empty()) {
      probe_prev_.resize(part.size());
      probe_cur_.resize(part.size());
      probe_shift_.resize(part.size());
      if (per_client_weights_) {
        pool_.parallel_for(
            part.size(),
            [&](std::size_t s) {
              Client& c = *clients_[part[s]];
              nn::Sequential& ws = bound_workspace(part[s]);
              probe_prev_[s] = c.probe_loss_prev();
              probe_cur_[s] = c.probe_loss_now(ws);
              if (want_probe) probe_shift_[s] = c.probe_loss_shifted(ws, probe_diff, cfg_.lr);
            },
            /*grain=*/1);
      } else {
        pool_.parallel_for(
            part.size(),
            [&](std::size_t s) {
              Client& c = *clients_[part[s]];
              probe_prev_[s] = c.probe_loss_prev();
              probe_cur_[s] = c.probe_loss_now(bound_workspace(part[s]));
            },
            /*grain=*/1);
        if (want_probe) {
          // Shift the shared store to w'(m) once, let every participant read
          // it concurrently, then restore the saved values exactly — the
          // same save/evaluate/restore a per-replica client performs, done
          // once instead of n times.
          const std::span<float> sw{shared_weights_.data(), shared_weights_.size()};
          shift_saved_.resize(probe_diff.size());
          for (std::size_t i = 0; i < probe_diff.size(); ++i) {
            const auto idx = static_cast<std::size_t>(probe_diff[i].index);
            shift_saved_[i] = sw[idx];
            sw[idx] += cfg_.lr * probe_diff[i].value;
          }
          pool_.parallel_for(
              part.size(),
              [&](std::size_t s) {
                probe_shift_[s] = clients_[part[s]]->probe_loss_now(bound_workspace(part[s]));
              },
              /*grain=*/1);
          for (std::size_t i = 0; i < probe_diff.size(); ++i) {
            sw[static_cast<std::size_t>(probe_diff[i].index)] = shift_saved_[i];
          }
        }
      }
      fb.loss_prev = util::mean_of(probe_prev_);
      fb.loss_cur = util::mean_of(probe_cur_);
      if (want_probe) {
        fb.loss_probe = util::mean_of(probe_shift_);
        fb.probe_available = true;
        // θ_m(k') from the SAME heterogeneous model that produced τ_m, so
        // Algorithms 2/3 compare like with like under stragglers; value-based
        // resource terms price the same fleet totals as τ_m (n uplinks of 2k'
        // values, the 2k'-value broadcast to n participants).
        fb.theta_probe = round_resource.round_cost_given_time(
            network_.theta(probe_k_cont, part), n_part * 2.0 * probe_k_cont,
            n_online * 2.0 * probe_k_cont);
        if (cfg_.charge_probe_overhead) {
          // Step ③ of Fig. 3: the k/k' difference entries on the downlink,
          // carried by the slowest participating link.
          const double extra = 2.0 * static_cast<double>(probe_diff.size());
          const double t_full =
              network_.heterogeneous()
                  ? timing_.compute_time + network_.broadcast_time(part, extra)
                  : timing_.round_time(0.0, extra);
          wall_time += round_resource.round_cost_given_time(t_full, 0.0, n_online * extra) -
                       round_resource.round_cost(0.0, 0.0);
        }
        const auto est = online::estimate_derivative_sign(fb, k_cont, probe_k_cont);
        if (!est.valid) ++res.invalid_probe_rounds;
      }
    }
    time += wall_time;
    // An all-offline round exercised no choice of k: feeding its zero/NaN
    // losses to a controller would punish whatever arm or perturbation it
    // happened to be playing (EXP3, continuous bandit) for churn k cannot
    // influence. The round still elapsed in time; k simply carries over.
    if (!part.empty()) controller_->observe(fb);

    // Record + periodic evaluation.
    RoundRecord rec;
    rec.round = m;
    rec.time = time;
    rec.k_continuous = k_cont;
    rec.k_used = k_int;
    rec.uplink_values = outcome.uplink_values;
    rec.downlink_values = outcome.downlink_values;
    rec.participants = part.size();
    rec.slowest_client = round_timing.slowest_client;
    if (part.empty()) {
      rec.train_loss = std::numeric_limits<double>::quiet_NaN();  // no server round
    } else {
      double tl = 0.0;
      for (std::size_t s = 0; s < part.size(); ++s) tl += weight_storage_[s] * mb_losses_[part[s]];
      rec.train_loss = tl;
    }
    const bool out_of_time = time >= cfg_.max_time;
    const bool eval_round =
        (cfg_.eval_every > 0 && m % cfg_.eval_every == 0) || m == cfg_.max_rounds || out_of_time;
    if (eval_round) evaluate(rec);
    res.k_sequence.push_back(k_cont);
    res.records.push_back(rec);
    res.rounds_run = m;
    res.total_time = time;

    if (eval_round && !std::isnan(rec.global_loss)) {
      res.final_loss = rec.global_loss;
      res.final_accuracy = rec.accuracy;
      // Fig. 1: switch to a fixed k once the target loss ψ is reached.
      if (!switched_ && cfg_.switch_at_loss > 0.0 && rec.global_loss <= cfg_.switch_at_loss) {
        controller_ = std::make_unique<online::FixedK>(cfg_.switch_to_k);
        switched_ = true;
        util::log_debug() << "round " << m << ": loss " << rec.global_loss
                          << " reached psi; switching to k=" << cfg_.switch_to_k;
      }
      if (cfg_.target_loss > 0.0 && rec.global_loss <= cfg_.target_loss) {
        res.reached_target = true;
        break;
      }
    }
    if (out_of_time) break;
  }

  // Guarantee final metrics even if the last round was not an eval round.
  if (std::isnan(res.final_loss) && !res.records.empty()) {
    RoundRecord& last = res.records.back();
    if (std::isnan(last.global_loss)) evaluate(last);
    res.final_loss = last.global_loss;
    res.final_accuracy = last.accuracy;
  }

  // Realized per-client traffic and participation (fl/metrics columns).
  res.client_uplink_values.resize(n);
  res.client_downlink_values.resize(n);
  res.client_rounds_participated.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.client_uplink_values[i] = clients_[i]->uplink_values_total();
    res.client_downlink_values[i] = clients_[i]->downlink_values_total();
    res.client_rounds_participated[i] = clients_[i]->rounds_participated();
  }
  return res;
}

void apply_scenario(const Scenario& s, SimulationConfig& cfg) {
  cfg.network = s.network;
  if (s.weight_money != 0.0) {
    cfg.weight_money = s.weight_money;
    cfg.money_per_value = s.money_per_value;
  }
}

std::vector<std::pair<double, double>> SimulationResult::loss_curve() const {
  std::vector<std::pair<double, double>> out;
  for (const auto& r : records) {
    if (!std::isnan(r.global_loss)) out.emplace_back(r.time, r.global_loss);
  }
  return out;
}

double SimulationResult::tail_k_mean() const {
  if (k_sequence.empty()) return 0.0;
  double sum = 0.0;
  const std::size_t begin = k_sequence.size() / 2;
  for (std::size_t i = begin; i < k_sequence.size(); ++i) sum += k_sequence[i];
  return sum / static_cast<double>(k_sequence.size() - begin);
}

std::pair<std::int64_t, std::size_t> SimulationResult::modal_straggler() const {
  std::map<std::int64_t, std::size_t> counts;
  for (const auto& r : records) {
    if (r.slowest_client >= 0) ++counts[r.slowest_client];
  }
  std::pair<std::int64_t, std::size_t> modal{-1, 0};
  for (const auto& [client, rounds] : counts) {
    if (rounds > modal.second) modal = {client, rounds};
  }
  return modal;
}

std::vector<std::pair<double, double>> SimulationResult::accuracy_curve() const {
  std::vector<std::pair<double, double>> out;
  for (const auto& r : records) {
    if (!std::isnan(r.accuracy)) out.emplace_back(r.time, r.accuracy);
  }
  return out;
}

}  // namespace fedsparse::fl
