#include "fl/simulation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "fl/replay.h"
#include "online/estimator.h"
#include "online/rounding.h"
#include "sparsify/topk.h"
#include "tensor/matrix.h"
#include "util/logging.h"
#include "util/stats.h"

namespace fedsparse::fl {

Simulation::Simulation(SimulationConfig cfg, data::FederatedDataset dataset,
                       nn::ModelFactory factory, std::unique_ptr<sparsify::Method> method,
                       std::unique_ptr<online::KController> controller)
    : cfg_(cfg),
      factory_(std::move(factory)),
      method_(std::move(method)),
      controller_(std::move(controller)),
      test_set_(std::move(dataset.test)),
      evaluator_(factory_, cfg.seed ^ 0xE7A1ULL),
      pool_(cfg.threads),
      rng_(cfg.seed) {
  if (!method_) throw std::invalid_argument("Simulation: null method");
  if (!controller_) throw std::invalid_argument("Simulation: null controller");
  if (dataset.clients.empty()) throw std::invalid_argument("Simulation: no clients");
  if (cfg_.lr <= 0.0f) throw std::invalid_argument("Simulation: lr must be positive");
  if (cfg_.batch == 0) throw std::invalid_argument("Simulation: batch must be positive");

  if (cfg_.participation <= 0.0 || cfg_.participation > 1.0) {
    throw std::invalid_argument("Simulation: participation must be in (0, 1]");
  }
  data_weights_ = dataset.data_weights();

  // Master initialization: the one weight vector everything starts from. Its
  // dimension sizes every client's accumulator.
  util::Rng master_rng(cfg.seed ^ 0x5EEDULL);
  const auto master = factory_(master_rng);
  dim_ = master->dim();

  clients_.reserve(dataset.clients.size());
  std::uint64_t seed_state = cfg.seed ^ 0xC11E27ULL;
  for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
    clients_.push_back(std::make_unique<Client>(i, std::move(dataset.clients[i]), dim_,
                                                util::splitmix64(seed_state)));
  }
  timing_ = TimingModel{cfg.comm_time, cfg.compute_time, dim_};
  resource_.timing = timing_;
  resource_.energy_per_compute = cfg.energy_per_compute;
  resource_.energy_per_value = cfg.energy_per_value;
  resource_.money_per_value = cfg.money_per_value;
  resource_.weight_time = cfg.weight_time;
  resource_.weight_energy = cfg.weight_energy;
  resource_.weight_money = cfg.weight_money;

  // Network & device model. The legacy compute_time_spread knob folds into
  // the client profiles (same RNG stream as before), multiplying on top of
  // any explicitly configured profile.
  NetworkConfig net_cfg = cfg.network;
  if (cfg.compute_time_spread > 0.0) {
    if (net_cfg.profiles.empty()) net_cfg.profiles.assign(clients_.size(), ClientProfile{});
    util::Rng het_rng(cfg.seed ^ 0x4E7E20ULL);
    for (auto& profile : net_cfg.profiles) {
      profile.compute_multiplier *= std::exp(het_rng.normal(0.0, cfg.compute_time_spread));
    }
  }
  network_ = NetworkModel(timing_, std::move(net_cfg), clients_.size(), cfg.seed);

  // Weight layout: the shared store always holds w(m) for synchronized
  // methods; FedAvg-style methods (diverging local weights) and the
  // per-replica reference engine give every client its own vector.
  fedavg_style_ = method_->local_update_style();
  if (cfg_.aggregation == AggregationMode::kBufferedAsync) {
    if (fedavg_style_) {
      throw std::invalid_argument(
          "Simulation: buffered-async aggregation requires gradient-accumulating methods "
          "(FedAvg-style local weights diverge between flushes)");
    }
    if (cfg_.async.staleness_lambda < 0.0) {
      throw std::invalid_argument("Simulation: staleness_lambda must be >= 0");
    }
    if (cfg_.async.trigger_scale < 0.0) {
      throw std::invalid_argument("Simulation: trigger_scale must be >= 0");
    }
  }
  pending_.assign(clients_.size(), 0);
  pending_round_.assign(clients_.size(), 0);
  per_client_weights_ = fedavg_style_ || cfg.replica_mode == ReplicaMode::kPerReplica;
  shared_weights_.assign(master->weights().begin(), master->weights().end());
  if (per_client_weights_) {
    for (auto& c : clients_) c->allocate_weights(master->weights());
  }
  evaluator_.set_weights(master->weights());

  // Per-thread model workspaces: pool workers plus the calling thread. Each
  // keeps only gradients + activations once its weight chain is rebound.
  workspaces_.reserve(pool_.slot_count());
  for (std::size_t t = 0; t < pool_.slot_count(); ++t) {
    util::Rng ws_rng(cfg.seed ^ (0x3A7E0000ULL + t));
    workspaces_.push_back(factory_(ws_rng));
    if (workspaces_.back()->dim() != dim_) {
      throw std::logic_error("Simulation: factory dim mismatch");
    }
    workspaces_.back()->bind_weights({shared_weights_.data(), shared_weights_.size()});
  }

  // Let large GEMMs inside workspace forward/backward split their M loop
  // across this pool. Nested parallel_for calls are safe: the caller always
  // drains chunks itself, so a busy pool just means the inner call runs
  // serially.
  tensor::set_parallel_pool(&pool_);

  // Sharded round engine: auto mode gives the method one shard per pool slot
  // (capped — past ~16 shards the tree-merge constant outweighs the split)
  // whenever the pool actually has workers. Shard count never changes round
  // traces (pinned by tests), so auto can track the thread count freely.
  const std::size_t eff_shards =
      cfg_.shards != 0 ? cfg_.shards
                       : (pool_.size() > 1 ? std::min<std::size_t>(16, pool_.slot_count()) : 1);
  method_->set_sharding(eff_shards);

  // Fault injection + server-side screening. Both default to no-ops: a
  // trivial fault model short-circuits every hook and a disabled validator
  // returns uploads untouched, so the zero-fault configuration stays
  // byte-identical to a build without either (tests/fault_test.cpp).
  fault_model_ = FaultModel(cfg_.faults, cfg.seed, dim_);
  method_->set_validation(cfg_.validation);
  method_->set_robust(cfg_.robust);
  fault_strikes_.assign(clients_.size(), 0);
  retry_after_.assign(clients_.size(), 0);

  util::log_info() << "Simulation: " << clients_.size() << " clients, D=" << dim_
                   << ", method=" << method_->name() << ", controller=" << controller_->name()
                   << ", beta=" << cfg.comm_time << ", engine="
                   << (per_client_weights_ ? "per-replica" : "shared") << " ("
                   << workspaces_.size() << " workspaces, " << eff_shards << " shards)";
}

Simulation::~Simulation() {
  // Unregister only if still pointing at our pool (last Simulation wins when
  // several coexist; they must not run concurrently in one process).
  if (tensor::parallel_pool() == &pool_) tensor::set_parallel_pool(nullptr);
}

std::span<const float> Simulation::client_weights(std::size_t i) const {
  const Client& c = *clients_.at(i);
  if (c.owns_weights()) return c.weights();
  return {shared_weights_.data(), shared_weights_.size()};
}

nn::Sequential& Simulation::bound_workspace(std::size_t i) {
  nn::Sequential& ws = *workspaces_[pool_.current_slot()];
  if (per_client_weights_) {
    ws.bind_weights(clients_[i]->weights());
  } else {
    ws.bind_weights({shared_weights_.data(), shared_weights_.size()});
  }
  return ws;
}

const std::vector<std::size_t>& Simulation::sample_participants() {
  // Availability gates reachability: an offline client can be neither
  // sampled nor waited on. The network maintains the online list inside its
  // own per-client transition pass, so nothing here is O(N): full
  // participation reads the list straight through, and partial participation
  // copies it once for the in-place shuffle. Without churn the list is the
  // identity and the sampling consumes rng_ exactly as the pre-network
  // engine did.
  const auto online = network_.online_ids();
  const std::size_t avail = online.size();
  if (cfg_.participation >= 1.0 || avail <= 1) {
    part_ids_.assign(online.begin(), online.end());
    return part_ids_;
  }
  id_scratch_.assign(online.begin(), online.end());
  const auto take = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(cfg_.participation * static_cast<double>(avail))));
  // Partial Fisher–Yates: the first `take` entries are a uniform sample.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng_.uniform_u64(avail - i);
    std::swap(id_scratch_[i], id_scratch_[j]);
  }
  part_ids_.assign(id_scratch_.begin(), id_scratch_.begin() + static_cast<std::ptrdiff_t>(take));
  std::sort(part_ids_.begin(), part_ids_.end());
  return part_ids_;
}

void staleness_weighting(std::vector<double>& weights, std::span<const std::size_t> staleness,
                         double lambda) {
  // All-fresh flushes skip the fold entirely so the weights stay bitwise
  // untouched — this is what pins zero-staleness async ≡ sync byte-identity.
  bool any_stale = false;
  for (const std::size_t s : staleness) {
    if (s != 0) {
      any_stale = true;
      break;
    }
  }
  if (!any_stale) return;
  double total = 0.0;
  for (std::size_t s = 0; s < weights.size(); ++s) {
    weights[s] *= 1.0 / (1.0 + lambda * static_cast<double>(staleness[s]));
    total += weights[s];
  }
  if (total > 0.0) {
    for (double& w : weights) w /= total;
  }
}

const sparsify::RoundInput& Simulation::make_round_input(
    std::size_t round, const std::vector<std::size_t>& selected,
    std::span<const std::size_t> staleness) {
  round_input_.dim = dim_;
  round_input_.round = round;
  // In-transit tampering seam: the pipeline invokes it on each upload after
  // selection. Pure in (seed, round, client), so probe re-selections and
  // replays corrupt identically; nullptr when no faults are configured.
  round_input_.tamper = fault_model_.trivial() ? nullptr : &fault_model_;
  // Stable ids so methods key cross-round per-client state (e.g. top-k
  // threshold hints) by client, not by participant slot.
  round_input_.client_ids = {selected.data(), selected.size()};
  round_input_.client_vectors.clear();
  round_input_.client_chunk_max.clear();
  round_input_.client_prescan.clear();
  weight_storage_.clear();
  double total = 0.0;
  for (const std::size_t i : selected) total += data_weights_[i];
  // Tiered round view: the methods see each accumulator's chunk summaries
  // next to its values and prune their selection scans on them. FedAvg-style
  // inputs are client weights — no accumulator, no summaries.
  const bool tiered = cfg_.tiered_accumulators && !fedavg_style_;
  for (const std::size_t i : selected) {
    weight_storage_.push_back(total > 0.0 ? data_weights_[i] / total
                                          : 1.0 / static_cast<double>(selected.size()));
    round_input_.client_vectors.push_back(fedavg_style_
                                              ? std::span<const float>(clients_[i]->weights())
                                              : clients_[i]->accumulator().value());
    if (tiered) {
      round_input_.client_chunk_max.push_back(clients_[i]->accumulator().chunk_max());
    }
    // Slot-aligned fused-prescan views: clients that did not run one this
    // round contribute a default (invalid) view the selection ignores.
    if (prescan_round_) {
      round_input_.client_prescan.push_back(clients_[i]->prescan_view(round));
    }
  }
  // Buffered-async flushes discount stale contributions before the methods
  // ever see the weights; methods stay staleness-oblivious (sparsify/method.h).
  if (!staleness.empty()) {
    staleness_weighting(weight_storage_, staleness, cfg_.async.staleness_lambda);
  }
  round_input_.data_weights = {weight_storage_.data(), weight_storage_.size()};
  return round_input_;
}

void Simulation::apply_reset(const sparsify::RoundOutcome& outcome, std::size_t i,
                             std::size_t s) {
  using ResetKind = sparsify::RoundOutcome::ResetKind;
  switch (outcome.reset_kind) {
    case ResetKind::kNone:
      break;
    case ResetKind::kAll:
      clients_[i]->accumulator().reset_all();
      break;
    case ResetKind::kPerClient:
    case ResetKind::kUniform:
      clients_[i]->accumulator().reset_indices(outcome.reset_for(s));
      break;
  }
}

std::span<const float> Simulation::global_weights() {
  if (!fedavg_style_) {
    if (!per_client_weights_) return {shared_weights_.data(), shared_weights_.size()};
    return clients_[0]->weights();
  }
  // FedAvg between synchronizations: the virtual global model is the
  // data-weighted average of the local weights, computed over disjoint index
  // ranges across the pool. Per coordinate the clients accumulate in
  // ascending order exactly as in the serial loop, so the threaded result is
  // bitwise-identical.
  fedavg_weights_.resize(dim_);
  float* fw = fedavg_weights_.data();
  pool_.parallel_for_ranges(dim_, [&](std::size_t begin, std::size_t end) {
    std::fill(fw + begin, fw + end, 0.0f);
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      const auto w = clients_[i]->weights();
      const auto dw = static_cast<float>(data_weights_[i]);
      for (std::size_t j = begin; j < end; ++j) fw[j] += dw * w[j];
    }
  });
  return {fedavg_weights_.data(), fedavg_weights_.size()};
}

void Simulation::evaluate(RoundRecord& rec) {
  evaluator_.set_weights(global_weights());
  double loss = 0.0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    loss += data_weights_[i] *
            evaluator_.loss(clients_[i]->dataset(), cfg_.eval_samples_per_client, rng_);
  }
  rec.global_loss = loss;
  rec.accuracy = evaluator_.accuracy(test_set_, cfg_.eval_test_samples, rng_);
}

// ---------------------------------------------------------------------------
// The staged round pipeline. One round is one pass through the stages below.
// The synchronized barrier is the degenerate schedule of the same pipeline —
// the flush fires after the last arrival — so both aggregation modes share
// every stage, and zero-staleness async ≡ sync byte-identity falls out of the
// shared code path instead of being re-proved per feature.
// ---------------------------------------------------------------------------

void Simulation::stage_begin(RoundContext& ctx) {
  ctx.k_cont = controller_->current_k();
  ctx.probe_k_cont = controller_->probe_k();
  ctx.k_int = cfg_.stochastic_rounding ? online::stochastic_round_k(ctx.k_cont, dim_, rng_)
                                       : online::deterministic_round_k(ctx.k_cont, dim_);

  // Advance the network fluctuation state (rate jitter + availability
  // chain) before anything reads it. A trivial network is a no-op.
  network_.begin_round(ctx.m);
}

void Simulation::stage_schedule(RoundContext& ctx) {
  const bool async = cfg_.aggregation == AggregationMode::kBufferedAsync;

  // Participants feed the server round; offline clients keep training
  // locally — their gradients pile up in the accumulator until they rejoin
  // (the FAB/FUB catch-up dynamic) — but cannot upload, be waited on, or be
  // sampled. Client RNG streams are keyed by (client, round), so who
  // computes never perturbs anyone else's draw.
  const std::vector<std::size_t>& part = sample_participants();

  // Fault pre-pass (dormant under a trivial model): clients serving a retry
  // backoff sit the round out, and crash draws kill participants before
  // their local step — no compute, no upload, accumulator and RNG stream
  // untouched. Both filters run on the sampled set, so the sampling RNG
  // consumption is identical with and without faults.
  fault_events_.clear();
  lost_ids_.clear();
  const auto note_failure = [&](std::size_t i) {
    ++fault_strikes_[i];
    retry_after_[i] = ctx.m + fault_model_.backoff_rounds(fault_strikes_[i]);
  };
  if (!fault_model_.trivial()) {
    std::erase_if(part_ids_, [&](std::size_t i) { return retry_after_[i] >= ctx.m; });
    std::erase_if(part_ids_, [&](std::size_t i) {
      if (!fault_model_.crashes(ctx.m, i)) return false;
      fault_events_.push_back({static_cast<std::uint32_t>(ctx.m), static_cast<std::uint32_t>(i),
                               FaultKind::kClientCrash, CorruptionMode::kNaN});
      note_failure(i);
      return true;
    });
  }
  compute_ids_.assign(part.begin(), part.end());

  // Event-triggered uploads: an online client that was NOT sampled this
  // round volunteers an upload when its accumulator mass already clears the
  // method's selection threshold — it is demonstrably holding entries the
  // server would have picked. Triggered clients compute and upload exactly
  // like sampled ones. The scan is an early-exit walk over chunk summaries:
  // O(chunks) per unsampled online client, nothing when disabled.
  triggered_ids_.clear();
  if (async && cfg_.async.trigger_scale > 0.0 && cfg_.tiered_accumulators && !fedavg_style_) {
    const auto scale = static_cast<float>(cfg_.async.trigger_scale);
    std::size_t next = 0;
    for (const std::size_t i : network_.online_ids()) {
      if (next < part.size() && part[next] == i) {
        ++next;
        continue;
      }
      if (pending_[i]) continue;  // already buffered — joins the flush anyway
      const float hint = method_->upload_threshold_hint(i, ctx.k_int);
      if (hint <= 0.0f) continue;
      const float bar = scale * hint;
      for (const float cm : clients_[i]->accumulator().chunk_max()) {
        if (cm >= bar) {
          triggered_ids_.push_back(i);
          break;
        }
      }
    }
    compute_ids_.insert(compute_ids_.end(), triggered_ids_.begin(), triggered_ids_.end());
  }
  if (network_.has_churn()) {
    const auto offline = network_.offline_ids();
    compute_ids_.insert(compute_ids_.end(), offline.begin(), offline.end());
  }

  // --- the round's event schedule ------------------------------------------
  // Built serially in BOTH modes from the network model alone (no RNG, no
  // thread-pool state), totally ordered by (time, kind, client) at seal():
  // the event order is identical at every thread count, which the async
  // engine tests pin.
  timeline_.clear();
  if (network_.has_churn()) {
    // Diff the sorted offline sets of the previous and current round with
    // one merge walk: present only now = went offline, present only before =
    // came back online.
    const auto cur = network_.offline_ids();
    std::size_t a = 0, b = 0;
    while (a < prev_offline_.size() || b < cur.size()) {
      if (b == cur.size() || (a < prev_offline_.size() && prev_offline_[a] < cur[b])) {
        timeline_.push(0.0, EventKind::kClientOnline, prev_offline_[a++]);
      } else if (a == prev_offline_.size() || cur[b] < prev_offline_[a]) {
        timeline_.push(0.0, EventKind::kClientOffline, cur[b++]);
      } else {
        ++a;
        ++b;
      }
    }
    prev_offline_.assign(cur.begin(), cur.end());
  }
  // Crashes happened before any compute: they anchor at the round start.
  for (const FaultEvent& e : fault_events_) {
    timeline_.push(0.0, EventKind::kClientCrash, e.client);
  }

  // Upload arrivals: each uploader lands at compute + own-payload-over-own-
  // link, the payload estimated at the full 2k it may send. Ties (the
  // homogeneous network) resolve by client id via the sort's second key.
  arrival_scratch_.clear();
  const double est_payload = 2.0 * static_cast<double>(std::min(ctx.k_int, dim_));
  for (const std::size_t i : part) {
    arrival_scratch_.emplace_back(network_.compute_time(i) + network_.uplink_time(i, est_payload),
                                  i);
  }
  for (const std::size_t i : triggered_ids_) {
    arrival_scratch_.emplace_back(network_.compute_time(i) + network_.uplink_time(i, est_payload),
                                  i);
  }
  std::sort(arrival_scratch_.begin(), arrival_scratch_.end());

  // Upload losses: the local step ran (mass accumulated) but the payload
  // either dropped in transit or missed the server's flush deadline. Either
  // way the client leaves the flush set, gets no reset — its mass rides to
  // the next successful upload — and starts its retry backoff.
  if (!fault_model_.trivial()) {
    std::erase_if(arrival_scratch_, [&](const std::pair<double, std::size_t>& a) {
      const std::size_t i = a.second;
      FaultKind kind;
      if (fault_model_.drops_upload(ctx.m, i)) {
        kind = FaultKind::kUploadDrop;
      } else if (fault_model_.times_out(a.first)) {
        kind = FaultKind::kFlushTimeout;
      } else {
        return false;
      }
      fault_events_.push_back({static_cast<std::uint32_t>(ctx.m), static_cast<std::uint32_t>(i),
                               kind, CorruptionMode::kNaN});
      timeline_.push(a.first, EventKind::kUploadLost, i);
      lost_ids_.push_back(i);
      note_failure(i);
      return true;
    });
    std::sort(lost_ids_.begin(), lost_ids_.end());
    // A delivered upload clears its client's consecutive-failure streak.
    for (const auto& [t, i] : arrival_scratch_) fault_strikes_[i] = 0;
  }
  for (const auto& [t, i] : arrival_scratch_) timeline_.push(t, EventKind::kUploadReady, i);

  const std::size_t arrivals = arrival_scratch_.size();
  std::size_t accept = arrivals;
  if (async && cfg_.async.buffer_size > 0) accept = std::min(cfg_.async.buffer_size, arrivals);
  const double flush_time = accept > 0 ? arrival_scratch_[accept - 1].first : 0.0;

  if (!async) {
    // Barrier: the flush is the whole participant set minus lost uploaders
    // (they computed — compute_ids_ keeps them — but never reached the
    // server), all fresh, fired after the last surviving arrival — arrival
    // order is unobservable by construction, which is exactly what makes it
    // the degenerate case.
    if (!lost_ids_.empty()) {
      std::erase_if(part_ids_, [&](std::size_t i) {
        return std::binary_search(lost_ids_.begin(), lost_ids_.end(), i);
      });
    }
    timeline_.push(flush_time, EventKind::kBufferFlush, part.size());
    timeline_.seal();
    ctx.flush = &part_ids_;
    ctx.staleness = {};
    ctx.mean_staleness = 0.0;
    return;
  }

  accepted_ids_.clear();
  for (std::size_t s = 0; s < accept; ++s) accepted_ids_.push_back(arrival_scratch_[s].second);
  std::sort(accepted_ids_.begin(), accepted_ids_.end());

  // The flush = accepted arrivals ∪ online buffered catch-ups: every
  // contribution deferred at an earlier flush joins the next flush its
  // client is reachable for (the rejoin catch-up — no starvation, buffered
  // mass waits at most one flush once its client is back online).
  flush_ids_.assign(accepted_ids_.begin(), accepted_ids_.end());
  for (const std::size_t i : pending_ids_) {
    if (!network_.available(i)) continue;
    if (std::binary_search(accepted_ids_.begin(), accepted_ids_.end(), i)) continue;
    flush_ids_.push_back(i);
  }
  std::sort(flush_ids_.begin(), flush_ids_.end());

  // Slot-aligned staleness + freshness; flushed members leave the buffer.
  // Staleness counts whole flush windows waited: m − first-deferral round.
  // A re-sampled pending client flushes its accumulated (old + new) mass
  // with that staleness but counts as fresh for timing — it did upload now.
  flush_staleness_.resize(flush_ids_.size());
  fresh_mask_.resize(flush_ids_.size());
  ctx.mean_staleness = 0.0;
  for (std::size_t s = 0; s < flush_ids_.size(); ++s) {
    const std::size_t i = flush_ids_[s];
    flush_staleness_[s] = pending_[i] ? ctx.m - pending_round_[i] : 0;
    fresh_mask_[s] = std::binary_search(accepted_ids_.begin(), accepted_ids_.end(), i) ? 1 : 0;
    pending_[i] = 0;
    ctx.mean_staleness += static_cast<double>(flush_staleness_[s]);
    ctx.max_staleness = std::max(ctx.max_staleness, flush_staleness_[s]);
  }
  if (!flush_ids_.empty()) ctx.mean_staleness /= static_cast<double>(flush_ids_.size());

  // Enter this round's deferrals into the buffer. An arrival beyond the
  // buffer whose client just flushed anyway (as a catch-up) defers nothing —
  // its whole accumulator, this round's gradient included, was folded. The
  // FIRST deferral round sticks (staleness measures total wait). Then drop
  // flushed members from the pending list and restore id order.
  for (std::size_t s = accept; s < arrivals; ++s) {
    const std::size_t i = arrival_scratch_[s].second;
    if (std::binary_search(flush_ids_.begin(), flush_ids_.end(), i)) continue;
    if (!pending_[i]) {
      pending_[i] = 1;
      pending_round_[i] = ctx.m;
      pending_ids_.push_back(i);
    }
  }
  std::erase_if(pending_ids_, [&](std::size_t i) { return pending_[i] == 0; });
  std::sort(pending_ids_.begin(), pending_ids_.end());

  timeline_.push(flush_time, EventKind::kBufferFlush, flush_ids_.size());
  timeline_.seal();
  ctx.flush = &flush_ids_;
  ctx.staleness = {flush_staleness_.data(), flush_staleness_.size()};
}

void Simulation::stage_compute(RoundContext& ctx) {
  // (A) Local computation at w(m−1) in parallel over the per-thread
  // workspaces.
  //
  // Fused prescan: arm each uploader whose method hint is live so its
  // gradient accumulation below emits this round's selection candidates in
  // the same pass (Client::request_prescan). The gate mirrors the selection
  // prefilter gate exactly — when select() would not run the hint filter,
  // there is nothing to fuse. Buffered catch-ups do not recompute, so they
  // carry no prescan; selection falls back to scanning their chunks.
  prescan_round_ = false;
  if (cfg_.fused_prescan && cfg_.tiered_accumulators && !fedavg_style_ &&
      dim_ >= sparsify::kTopKPrefilterMinDim && ctx.k_int >= 1 && ctx.k_int < dim_) {
    const std::size_t cap = sparsify::topk_hint_cap(ctx.k_int);
    for (const std::size_t i : part_ids_) {
      const float t = method_->upload_threshold_hint(i, ctx.k_int);
      if (t > 0.0f) {
        clients_[i]->request_prescan(t, ctx.k_int, cap, ctx.m);
        prescan_round_ = true;
      }
    }
    for (const std::size_t i : triggered_ids_) {
      const float t = method_->upload_threshold_hint(i, ctx.k_int);
      if (t > 0.0f) {
        clients_[i]->request_prescan(t, ctx.k_int, cap, ctx.m);
        prescan_round_ = true;
      }
    }
  }
  pool_.parallel_for(
      compute_ids_.size(),
      [&](std::size_t s) {
        const std::size_t i = compute_ids_[s];
        nn::Sequential& ws = bound_workspace(i);
        mb_losses_[i] = fedavg_style_
                            ? clients_[i]->local_update(ws, ctx.m, cfg_.batch, cfg_.lr)
                            : clients_[i]->compute_round_gradient(ws, ctx.m, cfg_.batch);
      },
      /*grain=*/1);
}

void Simulation::stage_server_round(RoundContext& ctx) {
  const std::vector<std::size_t>& flush = *ctx.flush;

  // Per-round compute-bound resources (e.g. energy per computation) scale
  // with the slowest flushed client's realized device speed. An empty round
  // (every client offline) skips the server exchange entirely and falls
  // through the shared record/eval/stop tail as one idle compute round.
  ctx.round_resource = resource_;
  if (network_.heterogeneous() && !flush.empty()) {
    ctx.round_resource.energy_per_compute =
        resource_.energy_per_compute * network_.max_compute_multiplier(flush);
  }

  // (1)–(2) Server round: selection + aggregation over the flush set.
  // An empty round leaves the default outcome: zero payloads, no resets.
  ctx.dropped = fault_events_.size();  // schedule-stage events are all losses
  if (!flush.empty()) {
    // Corruption draws are counted here (pure per (round, client), so this
    // mirrors exactly what the tamper hook does inside the pipeline) and
    // recorded as fault events for metrics and replay.
    if (!fault_model_.trivial() && fault_model_.config().corrupt_prob > 0.0) {
      for (const std::size_t i : flush) {
        if (!fault_model_.corrupts(ctx.m, i)) continue;
        fault_events_.push_back({static_cast<std::uint32_t>(ctx.m), static_cast<std::uint32_t>(i),
                                 FaultKind::kPayloadCorrupt,
                                 fault_model_.corruption_mode(ctx.m, i)});
        ++ctx.corrupted;
      }
    }
    // Byzantine cohort membership mirrors the same way: round-independent and
    // pure per client, so the event log matches the adversarial tampers the
    // pipeline's UploadTamper seam applies.
    if (!fault_model_.config().adversary.trivial()) {
      for (const std::size_t i : flush) {
        if (!fault_model_.byzantine(i)) continue;
        fault_events_.push_back({static_cast<std::uint32_t>(ctx.m), static_cast<std::uint32_t>(i),
                                 FaultKind::kAdversarialTamper, CorruptionMode::kNaN});
        ++ctx.byzantine;
      }
    }
    ctx.outcome = method_->round(make_round_input(ctx.m, flush, ctx.staleness), ctx.k_int);
    if (recorder_ != nullptr) {
      // round_input_ still holds this round's (pre-tamper) method input.
      recorder_->record(round_input_, ctx.k_int, fault_events(), timeline_.events(), ctx.outcome);
    }
  }
}

void Simulation::stage_probe(RoundContext& ctx) {
  // (3) Probe selection k'_m (derived before resets touch the accumulators).
  const std::vector<std::size_t>& flush = *ctx.flush;
  // A degraded round (screening rejected too many uploads) held the weights:
  // there is no meaningful k vs k' comparison to probe.
  ctx.want_probe = !flush.empty() && ctx.probe_k_cont > 0.0 && !fedavg_style_ &&
                   ctx.outcome.kind == sparsify::RoundOutcome::Kind::kSparseUpdate &&
                   !ctx.outcome.validation.degraded;
  if (!ctx.want_probe) return;
  std::size_t probe_k_int = cfg_.stochastic_rounding
                                ? online::stochastic_round_k(ctx.probe_k_cont, dim_, rng_)
                                : online::deterministic_round_k(ctx.probe_k_cont, dim_);
  if (probe_k_int >= ctx.k_int) probe_k_int = ctx.k_int > 1 ? ctx.k_int - 1 : 0;
  if (probe_k_int >= 1) {
    // round_input_ still holds this round's view (want_probe implies a
    // non-empty flush set built it above).
    const sparsify::RoundOutcome probe_outcome = method_->probe_round(round_input_, probe_k_int);
    ctx.probe_diff = sparsify::sparse_subtract(ctx.outcome.update, probe_outcome.update);
  } else {
    ctx.want_probe = false;
  }
}

void Simulation::stage_apply(RoundContext& ctx, SimulationResult& res) {
  const std::vector<std::size_t>& flush = *ctx.flush;
  const sparsify::RoundOutcome& outcome = ctx.outcome;
  const std::size_t n = clients_.size();

  // (B)/(C) Apply the global update and consume transmitted accumulator
  // entries. An empty round exchanged nothing and touches nobody. Resets run
  // only for flushed slots, so a deferred client's accumulator keeps every
  // gradient until the flush that folds it — buffered mass cannot be lost.
  if (!flush.empty() && per_client_weights_) {
    // FedAvg / per-replica reference engine: every client's own vector is
    // touched in one fused parallel pass (apply + reset per client).
    part_slot_.assign(n, -1);
    for (std::size_t s = 0; s < flush.size(); ++s) {
      part_slot_[flush[s]] = static_cast<std::int32_t>(s);
    }
    // kLocalOnly with a local-update method means no apply AND no resets —
    // skip the barrier entirely instead of forking n no-op tasks.
    const bool round_touches_clients =
        outcome.kind != sparsify::RoundOutcome::Kind::kLocalOnly || !fedavg_style_;
    if (round_touches_clients) {
      pool_.parallel_for(
          n,
          [&](std::size_t i) {
            switch (outcome.kind) {
              case sparsify::RoundOutcome::Kind::kSparseUpdate:
                clients_[i]->apply_sparse_update(outcome.update, cfg_.lr);
                break;
              case sparsify::RoundOutcome::Kind::kDenseUpdate:
                clients_[i]->apply_dense_update(outcome.dense, cfg_.lr);
                break;
              case sparsify::RoundOutcome::Kind::kWeightAverage:
                // An offline FedAvg client misses the synchronization and
                // keeps its diverging local weights until it rejoins.
                // (Synchronized methods never emit kWeightAverage; their
                // per-replica layout must mirror the shared store exactly.)
                if (!fedavg_style_ || network_.available(i)) {
                  clients_[i]->set_weights({outcome.dense.data(), outcome.dense.size()});
                }
                break;
              case sparsify::RoundOutcome::Kind::kLocalOnly:
                break;
            }
            const std::int32_t s = part_slot_[i];
            if (!fedavg_style_ && s >= 0) {
              apply_reset(outcome, i, static_cast<std::size_t>(s));
            }
          },
          /*grain=*/1);
    }
  } else if (!flush.empty()) {
    // Shared store: the synchronized update is applied ONCE — O(k) sparse,
    // O(D) dense — independent of the client count. Only the flushed
    // clients' accumulators need per-client work.
    const std::span<float> sw{shared_weights_.data(), shared_weights_.size()};
    switch (outcome.kind) {
      case sparsify::RoundOutcome::Kind::kSparseUpdate:
        sparsify::axpy_sparse(-cfg_.lr, outcome.update, sw);
        break;
      case sparsify::RoundOutcome::Kind::kDenseUpdate:
        if (outcome.dense.size() != sw.size()) {
          throw std::invalid_argument("Simulation: dense update dimension mismatch");
        }
        for (std::size_t j = 0; j < sw.size(); ++j) sw[j] -= cfg_.lr * outcome.dense[j];
        break;
      case sparsify::RoundOutcome::Kind::kWeightAverage:
        if (outcome.dense.size() != sw.size()) {
          throw std::invalid_argument("Simulation: weight average dimension mismatch");
        }
        std::copy(outcome.dense.begin(), outcome.dense.end(), sw.begin());
        break;
      case sparsify::RoundOutcome::Kind::kLocalOnly:
        break;
    }
    pool_.parallel_for(
        flush.size(), [&](std::size_t s) { apply_reset(outcome, flush[s], s); },
        /*grain=*/1);
  }
  for (std::size_t s = 0; s < flush.size(); ++s) {
    res.contributed_totals[flush[s]] += outcome.contributed[s];
  }
}

void Simulation::stage_account(RoundContext& ctx, SimulationResult& res, double& time) {
  const std::vector<std::size_t>& flush = *ctx.flush;
  const sparsify::RoundOutcome& outcome = ctx.outcome;

  // Straggler-correct round timing. Synchronized: τ_m maxes each
  // participant's compute + own-payload-over-own-link, then adds the
  // broadcast over the slowest participating downlink (the homogeneous fast
  // path inside round_time() reproduces the legacy TimingModel expression
  // bit-for-bit). Buffered async: τ_m waits only on FRESH arrivals — a
  // buffered contribution's transit overlapped an earlier round's window and
  // costs this flush nothing. That is the wall-clock win over the barrier;
  // with every slot fresh the subset IS the flush and the legacy max below
  // reproduces outcome.uplink_values exactly (2·|J| payloads are integers,
  // exact in double), keeping the degenerate case bitwise synchronized.
  uplink_slots_.resize(flush.size());
  for (std::size_t s = 0; s < flush.size(); ++s) uplink_slots_[s] = outcome.client_uplink(s);
  if (cfg_.aggregation == AggregationMode::kSynchronized) {
    ctx.round_timing =
        network_.round_time(flush, uplink_slots_, outcome.uplink_values, outcome.downlink_values);
  } else {
    fresh_ids_.clear();
    fresh_uplink_.clear();
    double fresh_legacy = 0.0;
    for (std::size_t s = 0; s < flush.size(); ++s) {
      if (!fresh_mask_[s]) continue;
      fresh_ids_.push_back(flush[s]);
      fresh_uplink_.push_back(uplink_slots_[s]);
      fresh_legacy = std::max(fresh_legacy, uplink_slots_[s]);
    }
    ctx.round_timing =
        network_.round_time(fresh_ids_, fresh_uplink_, fresh_legacy, outcome.downlink_values);
  }

  // Composite-resource payload totals: round *time* maxes over the parallel
  // uplinks, but additive resources (energy, money) price the whole fleet —
  // every flushed upload (buffered ones are charged at the flush that folds
  // them, exactly once), plus the broadcast every ONLINE client receives
  // (non-participants still listen so their weights stay synchronized).
  // Pure-time objectives (the default) are untouched: the payload arguments
  // only feed the zero-weighted terms.
  double fleet_uplink = 0.0;
  for (std::size_t s = 0; s < flush.size(); ++s) fleet_uplink += uplink_slots_[s];
  const double n_part = static_cast<double>(flush.size());
  const std::size_t online = network_.online_ids().size();
  const double n_online = static_cast<double>(online);
  const double fleet_downlink = n_online * outcome.downlink_values;

  // Realized per-client traffic: flushed clients pay their own uplink
  // payload and the broadcast downlink; online non-participants receive the
  // broadcast too (they stay synchronized) but upload nothing; offline
  // clients exchange nothing. FedAvg's kLocalOnly rounds exchange nothing —
  // they are not server rounds and do not count as participation.
  if (outcome.kind != sparsify::RoundOutcome::Kind::kLocalOnly) {
    for (std::size_t s = 0; s < flush.size(); ++s) {
      clients_[flush[s]]->note_round(uplink_slots_[s], outcome.downlink_values);
    }
    if (outcome.downlink_values > 0.0 && flush.size() < online) {
      // Both lists are sorted ascending and flush ⊆ online, so one merge
      // walk charges every online non-participant — O(online), not O(N).
      std::size_t next = 0;
      for (const std::size_t i : network_.online_ids()) {
        if (next < flush.size() && flush[next] == i) {
          ++next;
          continue;
        }
        clients_[i]->note_broadcast(outcome.downlink_values);
      }
    }
  }

  // (B)–(D) One-sample probe losses over the flush set, averaged by the
  // server (Sec. IV-E). The controller minimizes the composite round cost
  // (pure time under the paper's defaults).
  online::RoundFeedback& fb = ctx.fb;
  fb.round_time = ctx.round_resource.round_cost_given_time(ctx.round_timing.time, fleet_uplink,
                                                           fleet_downlink);
  fb.mean_staleness = ctx.mean_staleness;
  fb.validity = ctx.outcome.validation.valid_fraction;
  fb.trust = ctx.outcome.robust.mean_trust;
  ctx.wall_time = fb.round_time;
  if (!fedavg_style_ && !flush.empty()) {
    probe_prev_.resize(flush.size());
    probe_cur_.resize(flush.size());
    probe_shift_.resize(flush.size());
    if (per_client_weights_) {
      pool_.parallel_for(
          flush.size(),
          [&](std::size_t s) {
            Client& c = *clients_[flush[s]];
            nn::Sequential& ws = bound_workspace(flush[s]);
            probe_prev_[s] = c.probe_loss_prev();
            probe_cur_[s] = c.probe_loss_now(ws);
            if (ctx.want_probe) probe_shift_[s] = c.probe_loss_shifted(ws, ctx.probe_diff, cfg_.lr);
          },
          /*grain=*/1);
    } else {
      pool_.parallel_for(
          flush.size(),
          [&](std::size_t s) {
            Client& c = *clients_[flush[s]];
            probe_prev_[s] = c.probe_loss_prev();
            probe_cur_[s] = c.probe_loss_now(bound_workspace(flush[s]));
          },
          /*grain=*/1);
      if (ctx.want_probe) {
        // Shift the shared store to w'(m) once, let every participant read
        // it concurrently, then restore the saved values exactly — the
        // same save/evaluate/restore a per-replica client performs, done
        // once instead of n times.
        const std::span<float> sw{shared_weights_.data(), shared_weights_.size()};
        shift_saved_.resize(ctx.probe_diff.size());
        for (std::size_t i = 0; i < ctx.probe_diff.size(); ++i) {
          const auto idx = static_cast<std::size_t>(ctx.probe_diff[i].index);
          shift_saved_[i] = sw[idx];
          sw[idx] += cfg_.lr * ctx.probe_diff[i].value;
        }
        pool_.parallel_for(
            flush.size(),
            [&](std::size_t s) {
              probe_shift_[s] = clients_[flush[s]]->probe_loss_now(bound_workspace(flush[s]));
            },
            /*grain=*/1);
        for (std::size_t i = 0; i < ctx.probe_diff.size(); ++i) {
          sw[static_cast<std::size_t>(ctx.probe_diff[i].index)] = shift_saved_[i];
        }
      }
    }
    fb.loss_prev = util::mean_of(probe_prev_);
    fb.loss_cur = util::mean_of(probe_cur_);
    if (ctx.want_probe) {
      fb.loss_probe = util::mean_of(probe_shift_);
      fb.probe_available = true;
      // θ_m(k') from the SAME heterogeneous model that produced τ_m, so
      // Algorithms 2/3 compare like with like under stragglers; value-based
      // resource terms price the same fleet totals as τ_m (n uplinks of 2k'
      // values, the 2k'-value broadcast to n participants).
      fb.theta_probe = ctx.round_resource.round_cost_given_time(
          network_.theta(ctx.probe_k_cont, flush), n_part * 2.0 * ctx.probe_k_cont,
          n_online * 2.0 * ctx.probe_k_cont);
      if (cfg_.charge_probe_overhead) {
        // Step ③ of Fig. 3: the k/k' difference entries on the downlink,
        // carried by the slowest participating link.
        const double extra = 2.0 * static_cast<double>(ctx.probe_diff.size());
        const double t_full = network_.heterogeneous()
                                  ? timing_.compute_time + network_.broadcast_time(flush, extra)
                                  : timing_.round_time(0.0, extra);
        ctx.wall_time += ctx.round_resource.round_cost_given_time(t_full, 0.0, n_online * extra) -
                         ctx.round_resource.round_cost(0.0, 0.0);
      }
      const auto est = online::estimate_derivative_sign(fb, ctx.k_cont, ctx.probe_k_cont);
      if (!est.valid) ++res.invalid_probe_rounds;
    }
  }
  time += ctx.wall_time;
  // An all-offline round exercised no choice of k: feeding its zero/NaN
  // losses to a controller would punish whatever arm or perturbation it
  // happened to be playing (EXP3, continuous bandit) for churn k cannot
  // influence. The round still elapsed in time; k simply carries over.
  if (!flush.empty()) controller_->observe(fb);
}

bool Simulation::stage_record(RoundContext& ctx, SimulationResult& res, double time) {
  const std::vector<std::size_t>& flush = *ctx.flush;

  // Record + periodic evaluation.
  RoundRecord rec;
  rec.round = ctx.m;
  rec.time = time;
  rec.k_continuous = ctx.k_cont;
  rec.k_used = ctx.k_int;
  rec.uplink_values = ctx.outcome.uplink_values;
  rec.downlink_values = ctx.outcome.downlink_values;
  rec.participants = flush.size();
  rec.slowest_client = ctx.round_timing.slowest_client;
  rec.mean_staleness = ctx.mean_staleness;
  rec.max_staleness = ctx.max_staleness;
  rec.buffered_stale = pending_ids_.size();
  rec.dropped = ctx.dropped;
  rec.corrupted = ctx.corrupted;
  rec.byzantine = ctx.byzantine;
  rec.rejected = ctx.outcome.validation.rejected;
  rec.quarantined = ctx.outcome.validation.quarantined;
  rec.degraded = ctx.outcome.validation.degraded;
  rec.suspects = ctx.outcome.robust.suspects;
  rec.trust = ctx.outcome.robust.mean_trust;
  if (flush.empty()) {
    rec.train_loss = std::numeric_limits<double>::quiet_NaN();  // no server round
  } else {
    // weight_storage_ still holds the flush's normalized (and, under async,
    // staleness-discounted) data weights from make_round_input.
    double tl = 0.0;
    for (std::size_t s = 0; s < flush.size(); ++s) tl += weight_storage_[s] * mb_losses_[flush[s]];
    rec.train_loss = tl;
  }
  const bool out_of_time = time >= cfg_.max_time;
  const bool eval_round = (cfg_.eval_every > 0 && ctx.m % cfg_.eval_every == 0) ||
                          ctx.m == cfg_.max_rounds || out_of_time;
  if (eval_round) evaluate(rec);
  res.k_sequence.push_back(ctx.k_cont);
  res.records.push_back(rec);
  res.rounds_run = ctx.m;
  res.total_time = time;

  if (eval_round && !std::isnan(rec.global_loss)) {
    res.final_loss = rec.global_loss;
    res.final_accuracy = rec.accuracy;
    // Fig. 1: switch to a fixed k once the target loss ψ is reached.
    if (!switched_ && cfg_.switch_at_loss > 0.0 && rec.global_loss <= cfg_.switch_at_loss) {
      controller_ = std::make_unique<online::FixedK>(cfg_.switch_to_k);
      switched_ = true;
      util::log_debug() << "round " << ctx.m << ": loss " << rec.global_loss
                        << " reached psi; switching to k=" << cfg_.switch_to_k;
    }
    if (cfg_.target_loss > 0.0 && rec.global_loss <= cfg_.target_loss) {
      res.reached_target = true;
      return true;
    }
  }
  return out_of_time;
}

void Simulation::emit_telemetry(const RoundContext& ctx, const SimulationResult& res,
                                double time) {
  // Function-local statics register each metric once per process; every
  // Simulation publishes into the same registry totals.
  static const util::Gauge g_k_cont("fl.k_continuous");
  static const util::Gauge g_k_used("fl.k_used");
  static const util::Gauge g_online("fl.online_clients");
  static const util::Gauge g_pending("fl.pending_uploads");
  static const util::Gauge g_mean_staleness("fl.mean_staleness");
  static const util::Counter c_rounds("fl.rounds");
  static const util::Counter c_participants("fl.participants");
  static const util::Counter c_uplink("fl.uplink_values");
  static const util::Counter c_downlink("fl.downlink_values");
  static const util::Counter c_dropped("fl.faults.dropped");
  static const util::Counter c_corrupted("fl.faults.corrupted");
  static const util::Counter c_byzantine("fl.faults.byzantine");
  static const util::Counter c_rejected("fl.validation.rejected");
  static const util::Counter c_quarantined("fl.validation.quarantined");
  static const util::Counter c_degraded("fl.validation.degraded_rounds");
  static const util::Counter c_suspects("fl.robust.suspects");
  static const util::Gauge g_trust("fl.robust.mean_trust");
  static const util::Histogram h_staleness("fl.staleness",
                                           {0.0, 1.0, 2.0, 4.0, 8.0, 16.0});

  const RoundRecord& rec = res.records.back();
  const std::size_t online = network_.heterogeneous() && network_.has_churn()
                                 ? network_.online_ids().size()
                                 : clients_.size();
  g_k_cont.set(rec.k_continuous);
  g_k_used.set(static_cast<double>(rec.k_used));
  g_online.set(static_cast<double>(online));
  g_pending.set(static_cast<double>(pending_ids_.size()));
  g_mean_staleness.set(rec.mean_staleness);
  c_rounds.add(1);
  c_participants.add(rec.participants);
  c_uplink.add(static_cast<std::uint64_t>(std::llround(
      std::max(0.0, rec.uplink_values * static_cast<double>(rec.participants)))));
  c_downlink.add(static_cast<std::uint64_t>(std::llround(std::max(0.0, rec.downlink_values))));
  if (rec.dropped > 0) c_dropped.add(rec.dropped);
  if (rec.corrupted > 0) c_corrupted.add(rec.corrupted);
  if (rec.byzantine > 0) c_byzantine.add(rec.byzantine);
  if (rec.rejected > 0) c_rejected.add(rec.rejected);
  if (rec.quarantined > 0) c_quarantined.add(rec.quarantined);
  if (rec.degraded) c_degraded.add(1);
  if (rec.suspects > 0) c_suspects.add(rec.suspects);
  g_trust.set(rec.trust);
  for (const FaultEvent& e : fault_events_) publish_fault_event(e.kind);
  for (std::size_t s = 0; s < rec.participants; ++s) {
    h_staleness.observe(
        ctx.staleness.empty() ? 0.0 : static_cast<double>(ctx.staleness[s]));
  }

  span_scratch_.clear();
  util::SpanSink::instance().drain(span_scratch_);
  if (trace_writer_ != nullptr) {
    trace_writer_->write_round(ctx.m, {span_scratch_.data(), span_scratch_.size()},
                               timeline_.events());
  }
  if (jsonl_writer_ != nullptr) {
    MetricsJsonlWriter::Row row;
    row.round = rec.round;
    row.time = time;
    row.k_continuous = rec.k_continuous;
    row.k_used = rec.k_used;
    row.train_loss = rec.train_loss;
    row.global_loss = rec.global_loss;
    row.uplink_values = rec.uplink_values;
    row.uplink_bytes = values_to_bytes(rec.uplink_values);
    row.downlink_values = rec.downlink_values;
    row.downlink_bytes = values_to_bytes(rec.downlink_values);
    row.participants = rec.participants;
    row.online = online;
    row.mean_staleness = rec.mean_staleness;
    row.max_staleness = rec.max_staleness;
    row.dropped = rec.dropped;
    row.corrupted = rec.corrupted;
    row.byzantine = rec.byzantine;
    row.rejected = rec.rejected;
    row.quarantined = rec.quarantined;
    row.degraded = rec.degraded;
    row.suspects = rec.suspects;
    row.trust = rec.trust;
    jsonl_writer_->write_round(row, {span_scratch_.data(), span_scratch_.size()},
                               util::MetricRegistry::instance().scrape());
  }
}

SimulationResult Simulation::run() {
  const std::size_t n = clients_.size();
  SimulationResult res;
  res.contributed_totals.assign(n, 0);

  mb_losses_.assign(n, 0.0);
  double time = 0.0;

  const bool telemetry = cfg_.telemetry.enabled;
  telemetry_prev_ = util::telemetry_enabled();
  if (telemetry) {
    util::set_telemetry_enabled(true);
    // Spans left over from a previous (undrained) run would otherwise leak
    // into this run's first round.
    util::SpanSink::instance().discard();
    if (!cfg_.telemetry.chrome_trace_path.empty()) {
      trace_writer_ = std::make_unique<ChromeTraceWriter>();
      if (!trace_writer_->open(cfg_.telemetry.chrome_trace_path)) trace_writer_.reset();
    }
    if (!cfg_.telemetry.metrics_jsonl_path.empty()) {
      jsonl_writer_ = std::make_unique<MetricsJsonlWriter>();
      if (!jsonl_writer_->open(cfg_.telemetry.metrics_jsonl_path)) jsonl_writer_.reset();
    }
  }

  for (std::size_t m = 1; m <= cfg_.max_rounds; ++m) {
    RoundContext ctx;
    ctx.m = m;
    bool stop = false;
    {
      FEDSPARSE_SPAN("stage_begin");
      stage_begin(ctx);
    }
    {
      FEDSPARSE_SPAN("stage_schedule");
      stage_schedule(ctx);
    }
    {
      FEDSPARSE_SPAN("stage_compute");
      stage_compute(ctx);
    }
    {
      FEDSPARSE_SPAN("stage_server_round");
      stage_server_round(ctx);
    }
    {
      FEDSPARSE_SPAN("stage_probe");
      stage_probe(ctx);
    }
    {
      FEDSPARSE_SPAN("stage_apply");
      stage_apply(ctx, res);
    }
    {
      FEDSPARSE_SPAN("stage_account");
      stage_account(ctx, res, time);
    }
    {
      FEDSPARSE_SPAN("stage_record");
      stop = stage_record(ctx, res, time);
    }
    if (telemetry) emit_telemetry(ctx, res, time);
    if (stop) break;
  }

  if (telemetry) {
    if (trace_writer_ != nullptr) trace_writer_->close();
    if (jsonl_writer_ != nullptr) jsonl_writer_->close();
    trace_writer_.reset();
    jsonl_writer_.reset();
    util::set_telemetry_enabled(telemetry_prev_);
  }

  // Guarantee final metrics even if the last round was not an eval round.
  if (std::isnan(res.final_loss) && !res.records.empty()) {
    RoundRecord& last = res.records.back();
    if (std::isnan(last.global_loss)) evaluate(last);
    res.final_loss = last.global_loss;
    res.final_accuracy = last.accuracy;
  }

  // Realized per-client traffic and participation (fl/metrics columns).
  res.client_uplink_values.resize(n);
  res.client_downlink_values.resize(n);
  res.client_rounds_participated.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.client_uplink_values[i] = clients_[i]->uplink_values_total();
    res.client_downlink_values[i] = clients_[i]->downlink_values_total();
    res.client_rounds_participated[i] = clients_[i]->rounds_participated();
  }
  return res;
}

void apply_scenario(const Scenario& s, SimulationConfig& cfg) {
  cfg.network = s.network;
  if (s.weight_money != 0.0) {
    cfg.weight_money = s.weight_money;
    cfg.money_per_value = s.money_per_value;
  }
  cfg.faults = s.faults;
  // A faulty scenario without the screen would feed corrupted payloads
  // straight into the aggregation arena; turn the defense on with it.
  if (!s.faults.trivial()) cfg.validation.enabled = true;
  // Scenarios that ship a robust-aggregation config carry it through; a
  // disabled (trivial) scenario config leaves whatever the caller set.
  if (s.robust.enabled) cfg.robust = s.robust;
}

std::vector<std::pair<double, double>> SimulationResult::loss_curve() const {
  std::vector<std::pair<double, double>> out;
  for (const auto& r : records) {
    if (!std::isnan(r.global_loss)) out.emplace_back(r.time, r.global_loss);
  }
  return out;
}

double SimulationResult::tail_k_mean() const {
  if (k_sequence.empty()) return 0.0;
  double sum = 0.0;
  const std::size_t begin = k_sequence.size() / 2;
  for (std::size_t i = begin; i < k_sequence.size(); ++i) sum += k_sequence[i];
  return sum / static_cast<double>(k_sequence.size() - begin);
}

std::pair<std::int64_t, std::size_t> SimulationResult::modal_straggler() const {
  std::map<std::int64_t, std::size_t> counts;
  for (const auto& r : records) {
    if (r.slowest_client >= 0) ++counts[r.slowest_client];
  }
  std::pair<std::int64_t, std::size_t> modal{-1, 0};
  for (const auto& [client, rounds] : counts) {
    if (rounds > modal.second) modal = {client, rounds};
  }
  return modal;
}

std::vector<std::pair<double, double>> SimulationResult::accuracy_curve() const {
  std::vector<std::pair<double, double>> out;
  for (const auto& r : records) {
    if (!std::isnan(r.accuracy)) out.emplace_back(r.time, r.accuracy);
  }
  return out;
}

}  // namespace fedsparse::fl
