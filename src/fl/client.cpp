#include "fl/client.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fedsparse::fl {

Client::Client(std::size_t id, data::Dataset dataset, std::size_t dim, std::uint64_t seed)
    : id_(id),
      dataset_(std::move(dataset)),
      accumulator_(dim),
      rng_(seed),
      probe_x_(1, 1) {
  if (dataset_.empty()) {
    throw std::invalid_argument("Client " + std::to_string(id) + ": empty dataset");
  }
  if (dim == 0) {
    throw std::invalid_argument("Client " + std::to_string(id) + ": zero model dimension");
  }
  probe_x_.resize(1, dataset_.feature_dim());
  probe_y_.assign(1, 0);
}

void Client::allocate_weights(std::span<const float> init) {
  if (init.size() != dim()) {
    throw std::invalid_argument("allocate_weights: dimension mismatch");
  }
  weights_.assign(init.begin(), init.end());
}

void Client::set_weights(std::span<const float> w) {
  if (w.size() != weights_.size()) {
    throw std::invalid_argument("set_weights: dimension mismatch");
  }
  std::copy(w.begin(), w.end(), weights_.begin());
}

double Client::compute_round_gradient(nn::Sequential& model, std::size_t round,
                                      std::size_t batch) {
  util::Rng round_rng = rng_.split(0x1000 + round);
  const auto mb = data::sample_minibatch(dataset_, batch, round_rng);

  // Probe sample h: one random member of this minibatch (Section IV-E).
  const std::size_t h = round_rng.uniform_u64(mb.indices.size());
  std::memcpy(probe_x_.row(0), mb.x.row(h), mb.x.cols() * sizeof(float));
  probe_y_[0] = mb.y[h];
  probe_loss_prev_ = model.forward_loss(probe_x_, probe_y_);  // f_{i,h}(w(m−1))

  model.zero_grad();
  const double loss = model.forward_loss_grad(mb.x, mb.y);
  if (prescan_round_ == round && prescan_threshold_ > 0.0f) {
    // Fused sweep: accumulate and emit this round's selection candidates in
    // the same pass over each dirty chunk (see request_prescan).
    prescan_complete_ =
        accumulator_.add_scan(model.grad(), prescan_threshold_, prescan_cap_, prescan_keys_);
    prescan_done_ = true;
  } else {
    accumulator_.add(model.grad());
  }
  return loss;
}

void Client::request_prescan(float threshold, std::size_t k, std::size_t cap,
                             std::size_t round) {
  prescan_threshold_ = threshold;
  prescan_k_ = static_cast<std::uint32_t>(k);
  prescan_cap_ = cap;
  prescan_round_ = round;
  prescan_done_ = false;
}

sparsify::PrescanView Client::prescan_view(std::size_t round) const {
  sparsify::PrescanView view;
  if (prescan_round_ != round || !prescan_done_) return view;
  view.keys = {prescan_keys_.data(), prescan_keys_.size()};
  view.threshold = prescan_threshold_;
  view.k = prescan_k_;
  view.complete = prescan_complete_;
  return view;
}

double Client::local_update(nn::Sequential& model, std::size_t round, std::size_t batch,
                            float lr) {
  util::Rng round_rng = rng_.split(0x1000 + round);
  const auto mb = data::sample_minibatch(dataset_, batch, round_rng);
  model.zero_grad();
  const double loss = model.forward_loss_grad(mb.x, mb.y);
  model.sgd_step(lr);
  return loss;
}

void Client::apply_sparse_update(const sparsify::SparseVector& update, float lr) {
  sparsify::axpy_sparse(-lr, update, weights());
}

void Client::apply_dense_update(std::span<const float> update, float lr) {
  auto w = weights();
  if (update.size() != w.size()) {
    throw std::invalid_argument("apply_dense_update: dimension mismatch");
  }
  for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr * update[i];
}

double Client::probe_loss_now(nn::Sequential& model) {
  return model.forward_loss(probe_x_, probe_y_);
}

double Client::probe_loss_shifted(nn::Sequential& model, const sparsify::SparseVector& diff,
                                  float lr) {
  auto w = model.weights();
  // w'(m) differs from w(m) by lr * diff on a few coordinates: apply, eval,
  // restore exactly (floating-point add/sub of the same quantity is not
  // perfectly reversible, so save the original values instead).
  std::vector<float> saved(diff.size());
  for (std::size_t i = 0; i < diff.size(); ++i) {
    const auto idx = static_cast<std::size_t>(diff[i].index);
    saved[i] = w[idx];
    w[idx] += lr * diff[i].value;
  }
  const double loss = model.forward_loss(probe_x_, probe_y_);
  for (std::size_t i = 0; i < diff.size(); ++i) {
    w[static_cast<std::size_t>(diff[i].index)] = saved[i];
  }
  return loss;
}

double Client::full_local_loss(nn::Sequential& model, std::size_t max_samples, util::Rng& rng) {
  if (max_samples == 0 || dataset_.size() <= max_samples) {
    return model.forward_loss(dataset_.x, dataset_.y);
  }
  std::vector<std::size_t> idx(max_samples);
  for (auto& v : idx) v = rng.uniform_u64(dataset_.size());
  const data::Dataset sub = dataset_.subset(idx);
  return model.forward_loss(sub.x, sub.y);
}

}  // namespace fedsparse::fl
