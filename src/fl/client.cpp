#include "fl/client.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fedsparse::fl {

Client::Client(std::size_t id, data::Dataset dataset, const nn::ModelFactory& factory,
               std::uint64_t seed)
    : id_(id),
      dataset_(std::move(dataset)),
      model_(nullptr),
      accumulator_(0),
      rng_(seed),
      probe_x_(1, 1) {
  if (dataset_.empty()) {
    throw std::invalid_argument("Client " + std::to_string(id) + ": empty dataset");
  }
  util::Rng init_rng = rng_.split(0xF00D);
  model_ = factory(init_rng);
  accumulator_ = sparsify::GradientAccumulator(model_->dim());
  probe_x_.resize(1, dataset_.feature_dim());
  probe_y_.assign(1, 0);
}

double Client::compute_round_gradient(std::size_t round, std::size_t batch) {
  util::Rng round_rng = rng_.split(0x1000 + round);
  const auto mb = data::sample_minibatch(dataset_, batch, round_rng);

  // Probe sample h: one random member of this minibatch (Section IV-E).
  const std::size_t h = round_rng.uniform_u64(mb.indices.size());
  std::memcpy(probe_x_.row(0), mb.x.row(h), mb.x.cols() * sizeof(float));
  probe_y_[0] = mb.y[h];
  probe_loss_prev_ = model_->forward_loss(probe_x_, probe_y_);  // f_{i,h}(w(m−1))

  model_->zero_grad();
  const double loss = model_->forward_loss_grad(mb.x, mb.y);
  accumulator_.add(model_->grad());
  return loss;
}

double Client::local_update(std::size_t round, std::size_t batch, float lr) {
  util::Rng round_rng = rng_.split(0x1000 + round);
  const auto mb = data::sample_minibatch(dataset_, batch, round_rng);
  model_->zero_grad();
  const double loss = model_->forward_loss_grad(mb.x, mb.y);
  model_->sgd_step(lr);
  return loss;
}

void Client::apply_sparse_update(const sparsify::SparseVector& update, float lr) {
  auto w = model_->weights();
  for (const auto& e : update) {
    w[static_cast<std::size_t>(e.index)] -= lr * e.value;
  }
}

void Client::apply_dense_update(std::span<const float> update, float lr) {
  auto w = model_->weights();
  if (update.size() != w.size()) {
    throw std::invalid_argument("apply_dense_update: dimension mismatch");
  }
  for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr * update[i];
}

void Client::reset_accumulated(std::span<const std::int32_t> indices) {
  accumulator_.reset_indices(indices);
}

double Client::probe_loss_now() { return model_->forward_loss(probe_x_, probe_y_); }

double Client::probe_loss_shifted(const sparsify::SparseVector& diff, float lr) {
  auto w = model_->weights();
  // w'(m) differs from w(m) by lr * diff on a few coordinates: apply, eval,
  // restore exactly (floating-point add/sub of the same quantity is not
  // perfectly reversible, so save the original values instead).
  std::vector<float> saved(diff.size());
  for (std::size_t i = 0; i < diff.size(); ++i) {
    const auto idx = static_cast<std::size_t>(diff[i].index);
    saved[i] = w[idx];
    w[idx] += lr * diff[i].value;
  }
  const double loss = model_->forward_loss(probe_x_, probe_y_);
  for (std::size_t i = 0; i < diff.size(); ++i) {
    w[static_cast<std::size_t>(diff[i].index)] = saved[i];
  }
  return loss;
}

double Client::full_local_loss(std::size_t max_samples, util::Rng& rng) {
  if (max_samples == 0 || dataset_.size() <= max_samples) {
    return model_->forward_loss(dataset_.x, dataset_.y);
  }
  std::vector<std::size_t> idx(max_samples);
  for (auto& v : idx) v = rng.uniform_u64(dataset_.size());
  const data::Dataset sub = dataset_.subset(idx);
  return model_->forward_loss(sub.x, sub.y);
}

}  // namespace fedsparse::fl
