// Telemetry exporters: per-round Chrome trace-event JSON and a round-metrics
// JSONL stream.
//
// The collection layer (util/stats.h: MetricRegistry + SpanSink) is
// deliberately below fl/ so sparsify/ and online/ can publish without a
// dependency on the simulation; this header owns everything that needs fl
// types — the event timeline instants and the per-round record fields — and
// the file formats:
//
//  * ChromeTraceWriter emits the trace-event JSON array format
//    ({"traceEvents": [...]}): one "M" thread_name metadata event the first
//    time a track appears, one complete "X" event per drained span (ts/dur in
//    µs on the process steady-clock epoch), and one instant "i" event per
//    EventTimeline entry on a dedicated "timeline" track. Tracks map to tids
//    in first-appearance order, so the eight stage_* tracks, the pipeline_*
//    tracks and the per-shard tracks each get their own row in
//    chrome://tracing / Perfetto.
//  * MetricsJsonlWriter emits one JSON object per round: the round-record
//    scalars, per-stage span totals ("stages_us"), and the registry scrape's
//    counters and gauges — everything scripts/trace_summary.py consumes.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "fl/event_timeline.h"
#include "util/stats.h"

namespace fedsparse::fl {

/// Telemetry knobs on SimulationConfig. Default off: the run is pinned
/// byte-identical to a build without telemetry. When enabled, spans and
/// metrics are collected every round; each non-empty path additionally
/// streams the corresponding file.
struct TelemetryConfig {
  bool enabled = false;
  std::string chrome_trace_path;   // per-round Chrome trace-event JSON
  std::string metrics_jsonl_path;  // per-round metrics JSONL
};

/// Aggregated wall time per span track within one drain, in track name order.
struct StageTotal {
  const char* track = nullptr;
  double total_us = 0.0;
  std::size_t count = 0;
};

/// Groups a drained (sorted) span batch by track. Deterministic: the drain
/// order is pinned, and totals are summed in that order.
std::vector<StageTotal> stage_totals(std::span<const util::Span> spans);

class ChromeTraceWriter {
 public:
  ChromeTraceWriter() = default;
  ~ChromeTraceWriter();
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Truncates `path` and writes the JSON preamble. Returns false (and logs)
  /// when the file cannot be opened.
  bool open(const std::string& path);
  bool is_open() const noexcept { return f_ != nullptr; }

  /// Appends one round's spans (already drained+sorted) and timeline events.
  /// Timeline instants are placed at the round's first span timestamp plus
  /// the event's simulated offset, and carry {round, client, kind, sim_time}
  /// args.
  void write_round(std::size_t round, std::span<const util::Span> spans,
                   std::span<const Event> timeline);

  /// Writes the closing brackets; the file is valid JSON afterwards.
  void close();

 private:
  std::size_t tid_for(const std::string& track);

  std::FILE* f_ = nullptr;
  bool first_event_ = true;
  std::vector<std::string> tracks_;  // index = tid
};

class MetricsJsonlWriter {
 public:
  /// The per-round scalars exported to JSONL (a flat mirror of RoundRecord
  /// plus realized bytes; kept separate so this header does not depend on
  /// simulation.h).
  struct Row {
    std::size_t round = 0;
    double time = 0.0;
    double k_continuous = 0.0;
    std::size_t k_used = 0;
    double train_loss = 0.0;
    double global_loss = 0.0;  // NaN when the round was not evaluated
    double uplink_values = 0.0;
    double uplink_bytes = 0.0;
    double downlink_values = 0.0;
    double downlink_bytes = 0.0;
    std::size_t participants = 0;
    std::size_t online = 0;
    double mean_staleness = 0.0;
    std::size_t max_staleness = 0;
    std::size_t dropped = 0;
    std::size_t corrupted = 0;
    std::size_t byzantine = 0;
    std::size_t rejected = 0;
    std::size_t quarantined = 0;
    bool degraded = false;
    std::size_t suspects = 0;
    double trust = 1.0;
  };

  MetricsJsonlWriter() = default;
  ~MetricsJsonlWriter();
  MetricsJsonlWriter(const MetricsJsonlWriter&) = delete;
  MetricsJsonlWriter& operator=(const MetricsJsonlWriter&) = delete;

  bool open(const std::string& path);
  bool is_open() const noexcept { return f_ != nullptr; }

  /// One line: the row's scalars, "stages_us" from the spans, and the
  /// scrape's counters/gauges (histograms export their total count plus
  /// per-bucket counts under "<name>.le_<bound>" / "<name>.overflow").
  void write_round(const Row& row, std::span<const util::Span> spans,
                   const std::vector<util::MetricSample>& scrape);

  void close();

 private:
  std::FILE* f_ = nullptr;
};

}  // namespace fedsparse::fl
