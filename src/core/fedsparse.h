// Umbrella header: the full public API of the fedsparse library.
//
// Reproduction of "Adaptive Gradient Sparsification for Efficient Federated
// Learning: An Online Learning Approach" (Han, Wang, Leung — ICDCS 2020).
//
//  * sparsify/   — FAB-top-k (the paper's GS contribution) and baselines
//  * online/     — Algorithms 2 & 3 for adapting k, and baselines
//  * fl/         — the federated simulation with the paper's timing model
//  * nn/, data/, tensor/, util/ — substrates
//  * core/       — FederatedTrainer, the turnkey entry point
#pragma once

#include "core/trainer.h"
#include "data/dataset.h"
#include "data/minibatch.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/faults.h"
#include "fl/metrics.h"
#include "fl/network.h"
#include "fl/replay.h"
#include "fl/simulation.h"
#include "fl/timing.h"
#include "nn/models.h"
#include "nn/sequential.h"
#include "online/continuous_bandit.h"
#include "online/controller.h"
#include "online/estimator.h"
#include "online/exp3.h"
#include "online/extended_sign_ogd.h"
#include "online/factory.h"
#include "online/regret.h"
#include "online/rounding.h"
#include "online/sign_ogd.h"
#include "online/value_based.h"
#include "sparsify/accumulator.h"
#include "sparsify/fab_topk.h"
#include "sparsify/method.h"
#include "sparsify/sparse_vector.h"
#include "sparsify/topk.h"
#include "sparsify/validate.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
