#include "core/trainer.h"

#include <algorithm>
#include <stdexcept>

#include "sparsify/method.h"
#include "util/logging.h"

namespace fedsparse::core {

data::SyntheticConfig resolve_dataset(const DatasetSpec& spec) {
  data::SyntheticConfig cfg;
  if (spec.name == "custom") {
    cfg = spec.custom;
  } else if (spec.name == "femnist") {
    cfg = data::femnist_like(spec.scale, spec.seed);
  } else if (spec.name == "cifar") {
    cfg = data::cifar_like(spec.scale, spec.seed);
  } else {
    throw std::invalid_argument("resolve_dataset: unknown dataset '" + spec.name +
                                "' (expected femnist|cifar|custom)");
  }
  if (spec.prototype_sparsity > 0.0) cfg.prototype_sparsity = spec.prototype_sparsity;
  return cfg;
}

nn::ModelFactory resolve_model(const ModelSpec& spec, const data::SyntheticConfig& data_cfg) {
  return nn::make_model(spec.name, data_cfg.channels, data_cfg.height, data_cfg.width,
                        data_cfg.num_classes, spec.hidden, spec.cnn_scale);
}

FederatedTrainer::FederatedTrainer(TrainerConfig cfg) : cfg_(std::move(cfg)) {
  data_cfg_ = resolve_dataset(cfg_.dataset);
  factory_ = resolve_model(cfg_.model, data_cfg_);
  util::Rng probe_rng(7);
  dim_ = factory_(probe_rng)->dim();

  // Auto-fill the controller search interval: kmin = max(2, 0.002·D),
  // kmax = D — the paper's Fig. 5 configuration.
  auto& kc = cfg_.controller;
  if (kc.kmin <= 0.0) kc.kmin = std::max(2.0, 0.002 * static_cast<double>(dim_));
  if (kc.kmax <= 0.0) kc.kmax = static_cast<double>(dim_);
  if (kc.seed == 1) kc.seed = cfg_.sim.seed ^ 0x5157ULL;
}

fl::SimulationResult FederatedTrainer::run() {
  data::FederatedDataset dataset = data::make_synthetic(data_cfg_);
  if (!cfg_.scenario.empty()) {
    fl::apply_scenario(fl::make_scenario(cfg_.scenario, dataset.clients.size(), cfg_.sim.seed),
                       cfg_.sim);
  }
  auto method = sparsify::make_method(cfg_.method, dim_, cfg_.sim.seed ^ 0x3E7ULL);
  auto controller = online::make_controller(cfg_.controller);
  fl::Simulation sim(cfg_.sim, std::move(dataset), factory_, std::move(method),
                     std::move(controller));
  return sim.run();
}

}  // namespace fedsparse::core
