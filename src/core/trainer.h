// FederatedTrainer: the library's top-level public API.
//
// Wires a dataset spec, a model spec, a sparsification method and a
// k-controller into a ready-to-run federated simulation. This is what the
// examples and every figure harness use:
//
//   core::TrainerConfig cfg;
//   cfg.dataset.name = "femnist";
//   cfg.method = "fab_topk";
//   cfg.controller.name = "fixed";  cfg.controller.fixed_k = 1000;
//   cfg.sim.comm_time = 10.0;
//   auto result = core::FederatedTrainer(cfg).run();
#pragma once

#include <cstdint>
#include <string>

#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "online/factory.h"

namespace fedsparse::core {

struct DatasetSpec {
  /// "femnist" | "cifar" | "custom" (uses `custom` below).
  std::string name = "femnist";
  /// Shrinks clients/samples for CPU-budget runs; 1.0 = paper scale.
  double scale = 0.15;
  /// Overrides the generator's prototype sparsity when in (0, 1]; real image
  /// data is effectively sparse (see DESIGN.md §6). 0 keeps the default.
  double prototype_sparsity = 0.0;
  data::SyntheticConfig custom;
  std::uint64_t seed = 1;
};

struct ModelSpec {
  /// "mlp" | "logistic" | "cnn".
  std::string name = "mlp";
  std::size_t hidden = 64;  // mlp hidden width
  double cnn_scale = 0.25;  // channel/hidden multiplier for "cnn"
};

struct TrainerConfig {
  DatasetSpec dataset;
  ModelSpec model;
  /// Sparsification method (see sparsify::make_method).
  std::string method = "fab_topk";
  /// Named network/device scenario from the fl::make_scenario registry
  /// ("uniform" | "bimodal" | "longtail_mobile" | "metered_wan"); empty keeps
  /// whatever `sim.network` already says (the homogeneous default).
  std::string scenario;
  /// k controller; kmin/kmax of 0 are auto-filled as
  /// kmin = max(2, 0.002·D) and kmax = D (the paper's Fig. 5 setting).
  online::ControllerConfig controller;
  fl::SimulationConfig sim;
};

class FederatedTrainer {
 public:
  explicit FederatedTrainer(TrainerConfig cfg);

  /// Builds dataset, clients and controller, runs the simulation.
  fl::SimulationResult run();

  /// Model dimension D for the configured dataset+model (cheap: builds one
  /// throwaway replica).
  std::size_t dim() const { return dim_; }
  const data::SyntheticConfig& dataset_config() const noexcept { return data_cfg_; }

 private:
  TrainerConfig cfg_;
  data::SyntheticConfig data_cfg_;
  nn::ModelFactory factory_;
  std::size_t dim_ = 0;
};

/// Resolves a DatasetSpec into a concrete synthetic configuration.
data::SyntheticConfig resolve_dataset(const DatasetSpec& spec);

/// Builds the model factory for a spec + dataset geometry.
nn::ModelFactory resolve_model(const ModelSpec& spec, const data::SyntheticConfig& data_cfg);

}  // namespace fedsparse::core
