#!/usr/bin/env python3
"""Summarize a fedsparse round-metrics JSONL trace (fl/trace.h).

Prints a per-stage wall-time table (from each round's "stages_us" span
totals) and the top-N counters/gauges from the final round's registry scrape.
Optionally validates a Chrome trace-event JSON file emitted alongside it.

Usage:
  trace_summary.py METRICS.jsonl [--top N] [--chrome TRACE.json]
  trace_summary.py --smoke        # self-check (run under ctest)
"""

import argparse
import json
import os
import sys
import tempfile


def load_jsonl(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{lineno}: invalid JSON: {e}")
    if not rows:
        raise SystemExit(f"{path}: no rounds found")
    return rows


def stage_table(rows):
    """Aggregates stages_us over all rounds -> [(stage, total_us, rounds_seen)]."""
    totals = {}
    seen = {}
    for row in rows:
        for stage, us in row.get("stages_us", {}).items():
            totals[stage] = totals.get(stage, 0.0) + float(us)
            seen[stage] = seen.get(stage, 0) + 1
    return sorted(
        ((s, totals[s], seen[s]) for s in totals), key=lambda t: t[1], reverse=True
    )


def print_stage_table(rows, out=sys.stdout):
    table = stage_table(rows)
    if not table:
        print("no span data (telemetry ran without stages_us)", file=out)
        return
    grand = sum(t[1] for t in table)
    print(f"per-stage wall time over {len(rows)} rounds:", file=out)
    print(f"  {'stage':<24} {'total ms':>10} {'mean us/round':>14} {'share':>7}", file=out)
    for stage, total_us, n in table:
        share = 100.0 * total_us / grand if grand > 0 else 0.0
        print(
            f"  {stage:<24} {total_us / 1000.0:>10.3f} {total_us / n:>14.1f} {share:>6.1f}%",
            file=out,
        )


def print_top_counters(rows, top, out=sys.stdout):
    last = rows[-1]
    counters = last.get("counters", {})
    gauges = last.get("gauges", {})
    ranked = sorted(counters.items(), key=lambda kv: (-float(kv[1] or 0), kv[0]))
    print(f"\ntop {min(top, len(ranked))} counters (cumulative, final round):", file=out)
    for name, value in ranked[:top]:
        print(f"  {name:<40} {float(value or 0):>16,.0f}", file=out)
    if gauges:
        print("\ngauges (final round):", file=out)
        for name in sorted(gauges):
            v = gauges[name]
            print(f"  {name:<40} {float(v):>16.4f}" if v is not None else f"  {name:<40} {'n/a':>16}", file=out)


def validate_chrome(path, out=sys.stdout):
    """Validates a Chrome trace-event JSON file; returns spans-per-track."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit(f"{path}: missing traceEvents array")
    tracks = {}
    names = {}
    for e in events:
        ph = e.get("ph")
        if ph == "M" and e.get("name") == "thread_name":
            names[e.get("tid")] = e.get("args", {}).get("name", "?")
        elif ph == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in e:
                    raise SystemExit(f"{path}: complete event missing '{key}': {e}")
            tracks[e["tid"]] = tracks.get(e["tid"], 0) + 1
    if not tracks:
        raise SystemExit(f"{path}: no complete ('X') span events")
    print(f"\n{path}: valid Chrome trace, {len(events)} events:", file=out)
    for tid in sorted(tracks):
        print(f"  track {names.get(tid, tid):<24} {tracks[tid]:>8} spans", file=out)
    return {names.get(tid, tid): n for tid, n in tracks.items()}


def smoke():
    """Self-check: synthesize a tiny trace pair, summarize, assert the math."""
    rows = [
        {
            "round": m,
            "time": 10.0 * m,
            "stages_us": {"stage_compute": 100.0 * m, "stage_server_round": 50.0},
            "counters": {"fl.rounds": m, "fl.participants": 4 * m},
            "gauges": {"fl.k_used": 20.0},
        }
        for m in (1, 2, 3)
    ]
    with tempfile.TemporaryDirectory() as d:
        jsonl = os.path.join(d, "metrics.jsonl")
        with open(jsonl, "w", encoding="utf-8") as f:
            for row in rows:
                f.write(json.dumps(row) + "\n")
        loaded = load_jsonl(jsonl)
        table = dict((s, t) for s, t, _ in stage_table(loaded))
        assert abs(table["stage_compute"] - 600.0) < 1e-9, table
        assert abs(table["stage_server_round"] - 150.0) < 1e-9, table
        assert loaded[-1]["counters"]["fl.participants"] == 12

        chrome = os.path.join(d, "trace.json")
        with open(chrome, "w", encoding="utf-8") as f:
            json.dump(
                {
                    "traceEvents": [
                        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
                         "args": {"name": "stage_compute"}},
                        {"name": "stage_compute", "cat": "round", "ph": "X", "ts": 1.0,
                         "dur": 100.0, "pid": 1, "tid": 0, "args": {"round": 1}},
                    ]
                },
                f,
            )
        per_track = validate_chrome(chrome)
        assert per_track == {"stage_compute": 1}, per_track

        print_stage_table(loaded)
        print_top_counters(loaded, top=5)
    print("trace_summary smoke OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("jsonl", nargs="?", help="round-metrics JSONL file")
    ap.add_argument("--top", type=int, default=10, help="counters to show (default 10)")
    ap.add_argument("--chrome", help="also validate this Chrome trace-event JSON file")
    ap.add_argument("--smoke", action="store_true", help="run the self-check and exit")
    args = ap.parse_args()

    if args.smoke:
        smoke()
        return
    if not args.jsonl:
        ap.error("JSONL path required (or --smoke)")
    rows = load_jsonl(args.jsonl)
    print_stage_table(rows)
    print_top_counters(rows, args.top)
    if args.chrome:
        validate_chrome(args.chrome)


if __name__ == "__main__":
    main()
