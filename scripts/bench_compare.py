#!/usr/bin/env python3
"""Diff two BENCH_micro.json files (as written by bench/emit_json).

Usage: bench_compare.py OLD.json NEW.json [--threshold PCT]

Prints a per-kernel table of ns/op deltas and exits nonzero when any kernel
regressed by more than --threshold percent (default 10). Intended for CI once
a baseline artifact is being archived; until then it is a manual tool:

    ./build/emit_json /tmp/before.json   # on the old commit
    ./build/emit_json /tmp/after.json    # on the new commit
    scripts/bench_compare.py /tmp/before.json /tmp/after.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {k["name"]: k for k in doc.get("kernels", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated regression in percent (default 10)")
    args = ap.parse_args()

    try:
        old, new = load(args.old), load(args.new)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    shared = sorted(set(old) & set(new))
    if not shared:
        print("no kernels in common between the two files", file=sys.stderr)
        return 2

    regressions = []
    print(f"{'kernel':<32} {'old ns/op':>14} {'new ns/op':>14} {'delta':>8}")
    for name in shared:
        o, n = old[name]["ns_per_op"], new[name]["ns_per_op"]
        delta = (n - o) / o * 100.0 if o else 0.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  <-- REGRESSION"
        print(f"{name:<32} {o:>14.0f} {n:>14.0f} {delta:>+7.1f}%{flag}")
    for name in sorted(set(old) ^ set(new)):
        side = "old only" if name in old else "new only"
        print(f"{name:<32} ({side})")

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed past {args.threshold}%",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
